package mixedrel_test

import (
	"fmt"
	"time"

	"mixedrel"
)

// MEBF combines an error rate with an execution time: halving the
// execution time doubles the number of executions completed between
// failures.
func ExampleMEBF() {
	fit := 2.0 // failures per unit time (a.u.)
	fmt.Println(mixedrel.MEBF(fit, 500*time.Millisecond))
	fmt.Println(mixedrel.MEBF(fit, 250*time.Millisecond))
	// Output:
	// 1
	// 2
}

// TRECurve reclassifies silent data corruptions as tolerable once their
// worst relative error fits inside the tolerated margin.
func ExampleTRECurve() {
	relErrs := []float64{0.0001, 0.02, 5.0} // one per observed SDC
	for _, p := range mixedrel.TRECurve(30, relErrs, []float64{0, 0.001, 0.1}) {
		fmt.Printf("TRE %g%%: FIT %.0f\n", 100*p.TRE, p.FIT)
	}
	// Output:
	// TRE 0%: FIT 30
	// TRE 0.1%: FIT 20
	// TRE 10%: FIT 10
}

// Golden runs a kernel fault-free; the microbenchmarks' invertible
// operation chains return each thread's seed value exactly, in every
// precision.
func ExampleGolden() {
	k := mixedrel.NewMicro(mixedrel.MicroMUL, 2, 100, 7)
	for _, f := range []mixedrel.Format{mixedrel.Half, mixedrel.Double} {
		out := mixedrel.Golden(k, f)
		fmt.Println(f, out[0] == mixedrel.Golden(k, mixedrel.Single)[0])
	}
	// Output:
	// half true
	// double true
}

// A beam experiment is deterministic in its seed.
func ExampleBeamExperiment() {
	gpu := mixedrel.NewGPU()
	m, _ := gpu.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(8, 1), 1e6, 1e3), mixedrel.Half)
	a, _ := mixedrel.BeamExperiment{Mapping: m, Trials: 100, Seed: 42}.Run()
	b, _ := mixedrel.BeamExperiment{Mapping: m, Trials: 100, Seed: 42}.Run()
	fmt.Println(a.SDC == b.SDC, a.FITSDC == b.FITSDC)
	// Output:
	// true true
}
