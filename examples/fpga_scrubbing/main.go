// FPGA persistent-fault study: configuration-memory upsets stay until
// the bitstream is rewritten, so a single strike corrupts *every*
// subsequent execution. This example shows why the paper reprograms the
// FPGA after each observed error: it measures how many executions in a
// row a single configuration upset corrupts, per precision, and compares
// one-shot (scrubbed) versus accumulated operation.
//
//	go run ./examples/fpga_scrubbing
package main

import (
	"fmt"
	"log"

	"mixedrel"
)

func main() {
	fpga := mixedrel.NewFPGA()
	kernel := mixedrel.NewGEMM(16, 9)
	workload := mixedrel.NewWorkload(kernel, 512, 64)

	fmt.Println("Configuration-memory upsets on the Zynq model, GEMM 128x128:")
	fmt.Println("a persistent fault corrupts one hardware operator instance, i.e.")
	fmt.Println("every execution re-runs through the broken unit until scrubbed.")
	fmt.Println()
	fmt.Printf("%-8s  %-14s  %-18s\n", "format", "P(SDC|strike)", "runs corrupted")
	for _, format := range mixedrel.Formats {
		mapping, err := fpga.Map(workload, format)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mixedrel.BeamExperiment{
			Mapping: mapping,
			Trials:  800,
			Seed:    17,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		pSDC := float64(res.SDC) / float64(res.Trials)
		// Without scrubbing, a persistent SDC-producing upset corrupts
		// every following run; the expected number of corrupted
		// executions before a scrub at interval T is T/execTime.
		const scrubEverySeconds = 60.0
		runsPerScrub := scrubEverySeconds / mapping.Time.Seconds()
		fmt.Printf("%-8v  %-14.3f  %-18.0f\n", format, pSDC, pSDC*runsPerScrub)
	}

	fmt.Println("\nWith a 60 s scrubbing interval, every SDC-producing upset would")
	fmt.Println("poison tens of consecutive runs — which is why the paper (and any")
	fmt.Println("real deployment) reloads the bitstream as soon as an error is seen,")
	fmt.Println("and why FPGA reliability work pairs TMR with configuration scrubbing.")
}
