// Mitigation cost-benefit: how much silent-data-corruption risk do TMR
// and ABFT remove from a matrix multiplication, at what compute
// overhead, and how does the answer change with precision? This extends
// the paper's measurement study toward the mitigation work its group
// published separately.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"

	"mixedrel"
)

func main() {
	g := mixedrel.NewGEMM(16, 7)
	schemes := []struct {
		name string
		k    mixedrel.Kernel
	}{
		{"unprotected", g},
		{"TMR (vote of 3)", mixedrel.NewTMR(g)},
		{"ABFT (checksums)", mixedrel.NewABFTGEMM(g)},
	}

	fmt.Println("1000 injected faults per configuration, uniform over")
	fmt.Println("operation / operand / input-memory sites:")
	fmt.Println()
	for _, f := range []mixedrel.Format{mixedrel.Double, mixedrel.Single, mixedrel.Half} {
		fmt.Printf("-- %v --\n", f)
		fmt.Printf("%-18s  %-13s  %-10s  %-10s  %-9s\n",
			"scheme", "residual PVF", "corrected", "detected", "overhead")
		for _, s := range schemes {
			rep, err := mixedrel.EvaluateMitigation(s.k, g, f, 1000, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s  %-13.3f  %-10d  %-10d  %.2fx\n",
				s.name, rep.ResidualPVF, rep.Corrected, rep.Detected, rep.OverheadOps)
		}
		fmt.Println()
	}

	fmt.Println("Observations: TMR removes every single-replica fault at a flat 3x")
	fmt.Println("cost but cannot vote away corrupted inputs. ABFT repairs located")
	fmt.Println("single-element errors for a fraction of the cost — but its checksum")
	fmt.Println("tolerance must widen as precision shrinks, so at half precision")
	fmt.Println("small corruptions slip under the threshold and its residual PVF")
	fmt.Println("rises: mitigation and precision interact, just like FIT and")
	fmt.Println("precision do in the paper.")
}
