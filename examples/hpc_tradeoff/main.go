// HPC performance-reliability trade-off: should a workload drop to a
// lower precision? The answer depends on the device. This example sweeps
// the paper's three HPC kernels over the Xeon Phi and GPU models and
// reports the Mean Executions Between Failures — the figure of merit
// that combines error rate and speed (paper Figs. 9 and 13).
//
//	go run ./examples/hpc_tradeoff
package main

import (
	"fmt"
	"log"

	"mixedrel"
)

type workloadSpec struct {
	name     string
	kernel   mixedrel.Kernel
	opScale  float64
	dataScal float64
}

func main() {
	specs := []workloadSpec{
		{"LavaMD", mixedrel.NewLavaMD(2, 4, 1), 1e7, 4e4},
		{"MxM", mixedrel.NewGEMM(16, 1), 2.1e6, 1.6e4},
		{"LUD", mixedrel.NewLUD(16, 1), 1e7, 1e4},
	}
	devices := []mixedrel.Device{mixedrel.NewXeonPhi(), mixedrel.NewGPU()}

	for _, device := range devices {
		fmt.Printf("== %s ==\n", device.Name())
		fmt.Printf("%-8s  %-8s  %-10s  %-12s  %-10s  %s\n",
			"kernel", "format", "exec time", "FIT-SDC", "MEBF", "verdict")
		for _, spec := range specs {
			w := mixedrel.NewWorkload(spec.kernel, spec.opScale, spec.dataScal)
			var bestFormat mixedrel.Format
			bestMEBF := -1.0
			type row struct {
				f    mixedrel.Format
				t    string
				fit  float64
				mebf float64
			}
			var rows []row
			for _, format := range mixedrel.Formats {
				if !device.Supports(format) {
					continue
				}
				m, err := device.Map(w, format)
				if err != nil {
					log.Fatal(err)
				}
				res, err := mixedrel.BeamExperiment{Mapping: m, Trials: 1500, Seed: 3}.Run()
				if err != nil {
					log.Fatal(err)
				}
				mebf := mixedrel.MEBF(res.FITSDC, m.Time)
				rows = append(rows, row{format, m.Time.Round(1e6).String(), res.FITSDC, mebf})
				if mebf > bestMEBF {
					bestMEBF, bestFormat = mebf, format
				}
			}
			for _, r := range rows {
				verdict := ""
				if r.f == bestFormat {
					verdict = "<- most executions between failures"
				}
				fmt.Printf("%-8s  %-8v  %-10s  %-12.4g  %-10.4g  %s\n",
					spec.name, r.f, r.t, r.fit, r.mebf, verdict)
			}
		}
		fmt.Println()
	}

	fmt.Println("On the GPU, lower precision wins across the board (smaller data,")
	fmt.Println("faster execution). On the Xeon Phi the compiler can turn the")
	fmt.Println("tables: when the single-precision build runs slower (MxM's")
	fmt.Println("prefetch behavior) or instantiates more registers, double wins.")
}
