// CNN reliability study: how does reducing precision change the
// *criticality* of soft errors in neural networks? Reproduces the
// paper's two CNN analyses on the library's models:
//
//   - MNIST on the FPGA: what share of silent data corruptions flips
//     the classification (critical) versus only perturbing the
//     probability vector (tolerable)?
//   - YOLO on the GPU: do faults change detections or classifications?
//
// go run ./examples/cnn_reliability
package main

import (
	"fmt"
	"log"

	"mixedrel"
)

func main() {
	mnistStudy()
	yoloStudy()
}

func mnistStudy() {
	fmt.Println("MNIST CNN on the Zynq FPGA model — classification criticality")
	fmt.Println("(2000 simulated beam strikes per precision)")

	mnist := mixedrel.NewMNIST(1, 7)
	fpga := mixedrel.NewFPGA()
	workload := mixedrel.NewWorkload(mnist, 1, 1)

	fmt.Printf("%-8s  %-6s  %-9s  %-10s  %-14s\n",
		"format", "SDCs", "critical", "tolerable", "critical share")
	for _, format := range mixedrel.Formats {
		mapping, err := fpga.Map(workload, format)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mixedrel.BeamExperiment{
			Mapping:     mapping,
			Trials:      2000,
			Seed:        11,
			KeepOutputs: true,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		crit := mixedrel.ClassifyMNIST(mnist, mixedrel.Golden(mnist, format), res.Outputs)
		fmt.Printf("%-8v  %-6d  %-9d  %-10d  %.1f%%\n",
			format, crit.SDCs, crit.Critical, crit.Tolerable,
			100*crit.CriticalFraction())
	}
	fmt.Println("\nAs in the paper (Fig. 3), most CNN errors are tolerable, but the")
	fmt.Println("critical share grows as precision shrinks: a flipped bit in a")
	fmt.Println("16-bit activation moves the value much further than in a 64-bit one.")
	fmt.Println()
}

func yoloStudy() {
	fmt.Println("YOLO detector on the Volta GPU model — detection criticality")
	fmt.Println("(2000 simulated beam strikes per precision)")

	yolo := mixedrel.NewYOLO(7)
	gpu := mixedrel.NewGPU()
	workload := mixedrel.NewWorkload(yolo, 1e5, 500)

	fmt.Printf("%-8s  %-6s  %-10s  %-18s  %-22s\n",
		"format", "SDCs", "tolerable", "detection changed", "classification changed")
	for _, format := range mixedrel.Formats {
		mapping, err := gpu.Map(workload, format)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mixedrel.BeamExperiment{
			Mapping:     mapping,
			Trials:      2000,
			Seed:        13,
			KeepOutputs: true,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		crit := mixedrel.ClassifyYOLO(yolo, mixedrel.Golden(yolo, format), res.Outputs)
		tf, df, cf := crit.Fractions()
		fmt.Printf("%-8v  %-6d  %-10s  %-18s  %-22s\n",
			format, crit.SDCs,
			fmt.Sprintf("%.1f%%", 100*tf),
			fmt.Sprintf("%.1f%%", 100*df),
			fmt.Sprintf("%.1f%%", 100*cf))
	}
	fmt.Println("\nAs in the paper (Fig. 11c), the share of SDCs that corrupt the")
	fmt.Println("detector's output — boxes or classes — rises at lower precision.")
}
