// Quickstart: evaluate the reliability of a matrix multiplication on the
// Volta GPU model at all three precisions — the minimal end-to-end use
// of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mixedrel"
)

func main() {
	gpu := mixedrel.NewGPU()

	// A 16x16 executable GEMM instance, scaled to a 2048x2048 run for
	// exposure and timing (ops grow n^3, data n^2).
	kernel := mixedrel.NewGEMM(16, 42)
	workload := mixedrel.NewWorkload(kernel, 2.1e6, 1.6e4)

	fmt.Println("GEMM on the Volta GPU model, 2000 simulated beam strikes each:")
	fmt.Printf("%-8s  %-10s  %-12s  %-12s  %-10s\n",
		"format", "exec time", "FIT-SDC", "FIT-DUE", "MEBF")
	for _, format := range mixedrel.Formats {
		mapping, err := gpu.Map(workload, format)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mixedrel.BeamExperiment{
			Mapping: mapping,
			Trials:  2000,
			Seed:    1,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v  %-10v  %-12.4g  %-12.4g  %-10.4g\n",
			format, mapping.Time.Round(1e6), res.FITSDC, res.FITDUE,
			mixedrel.MEBF(res.FITSDC, mapping.Time))
	}

	fmt.Println("\nLower precision halves the exposed data and uses the bigger")
	fmt.Println("FP32/half core pool, so FIT drops and MEBF rises — the paper's")
	fmt.Println("headline result for GPUs.")
}
