// Package beam simulates an accelerated-neutron-beam campaign like the
// paper's ChipIR runs: strikes are sampled over the device's sensitive
// resources proportionally to bits x cross-section, each strike is
// translated into a concrete fault in an actual execution of the
// workload, and the outcome (masked / SDC / DUE) is classified against
// the golden output.
//
// The FIT rate follows as
//
//	FIT_outcome = (Σ unprotected bits x σ) x P(outcome | strike)
//
// in the same arbitrary units the paper reports. This is the standard
// decomposition of beam results into exposure (which only the device
// model knows) and propagation (which only running the workload with the
// fault can tell) — combining the two is exactly how the paper relates
// its beam and fault-injection data (Section 3.3).
//
// Strike translation per resource class:
//
//	ConfigMemory   -> persistent corruption of one hardware operator
//	                  instance (every UnrollFactor-th dynamic op of one
//	                  kind), until "reprogramming" — i.e. for the whole
//	                  observed execution
//	FunctionalUnit -> with probability VulnFraction, a single dynamic
//	                  operation's result bit flips
//	RegisterFile   -> a single dynamic operation's input operand bit
//	                  flips (if unprotected)
//	MemorySRAM     -> an input-array element bit flips before the run
//	ControlLogic   -> legacy: DUE with probability DUEFraction, else
//	                  masked; with Experiment.BehavioralDUE, a concrete
//	                  control-state corruption (loop counter / index /
//	                  pointer) runs the workload and the DUE rate
//	                  emerges from observed crashes and watchdog hangs
package beam

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/inject"
	"mixedrel/internal/rng"
	"mixedrel/internal/stats"
)

// MBU models multi-bit upsets: the probability that a strike on an SRAM
// resource upsets 2 or 3 adjacent cells instead of one (Quinn et al.,
// the paper's [8], measured exactly this growth with technology
// scaling). The zero value disables MBUs, which is the paper's baseline
// single-bit analysis.
type MBU struct {
	P2, P3 float64
}

// Enabled reports whether any multi-bit probability is set.
func (m MBU) Enabled() bool { return m.P2 > 0 || m.P3 > 0 }

// sampleWidth draws an upset width (1, 2, or 3 adjacent bits).
func (m MBU) sampleWidth(r *rng.Rand) int {
	u := r.Float64()
	switch {
	case u < m.P3:
		return 3
	case u < m.P3+m.P2:
		return 2
	default:
		return 1
	}
}

// sramClass reports whether strikes on this class hit SRAM cells (where
// adjacent-bit MBUs are physically meaningful).
func sramClass(c arch.ResourceClass) bool {
	switch c {
	case arch.RegisterFile, arch.MemorySRAM, arch.ConfigMemory:
		return true
	}
	return false
}

// Experiment is one beam campaign: a mapped workload plus the number of
// simulated strikes.
type Experiment struct {
	Mapping *arch.Mapping
	// Trials is the number of simulated strikes. The paper's 100+ hours
	// per configuration collect O(100) errors; a few thousand simulated
	// strikes give comparable statistics.
	Trials int
	Seed   uint64
	// KeepOutputs retains decoded faulty outputs of SDC trials (for CNN
	// criticality post-processing).
	KeepOutputs bool
	// Workers, when above 1, runs trials on that many goroutines with
	// per-trial random streams: deterministic in Seed and independent
	// of scheduling, but a different (equally valid) sample than the
	// default sequential mode.
	Workers int
	// MBU enables multi-bit upsets on SRAM resources. With MBUs
	// enabled, SECDED-protected resources (Protected exposures) join
	// the campaign: single-bit strikes are corrected (masked) but
	// double-bit strikes are detected-uncorrectable, i.e. DUEs —
	// exactly how the Xeon Phi MCA turns register-file MBUs into
	// machine checks.
	MBU MBU
	// BehavioralDUE replaces the constant ControlLogic DUEFraction with
	// actual control-state fault injection (inject.SiteControl
	// semantics): each control strike runs the workload with a
	// corrupted loop counter / index / pointer, and FIT_DUE emerges
	// from the observed crash/hang rate instead of an asserted
	// constant. The watchdog and (optional) FP trap also arm for the
	// datapath strike classes, so e.g. a NaN-producing register flip
	// can surface as a crash rather than an SDC.
	BehavioralDUE bool
	// Watchdog is the op-budget hang-detection factor used by
	// behavioral runs (0 means inject.DefaultWatchdogFactor).
	Watchdog float64
	// TrapNonFinite arms the FP trap in behavioral runs.
	TrapNonFinite bool
	// Checkpoint, when non-nil, journals classified trials for
	// crash-tolerant resume, exactly like inject.Campaign.Checkpoint
	// (per-trial random streams regardless of Workers; byte-identical
	// aggregates across interruptions).
	Checkpoint *exec.Checkpoint
	// Context, when non-nil, makes the campaign cancellable exactly like
	// inject.Campaign.Context: in-flight trials drain, the journal (if
	// any) is flushed and synced, and Run returns an *exec.Interrupted.
	Context context.Context
}

// ClassCounts tallies outcomes attributed to one resource class.
type ClassCounts struct {
	Strikes, SDC, DUE, Masked int
}

// Result summarizes a beam campaign.
type Result struct {
	Trials           int
	SDC, DUE, Masked int
	// DUECrash and DUEHang split the behavioral DUEs by detector
	// (constant-DUEFraction and SECDED DUEs carry no split).
	DUECrash, DUEHang  int
	ExposureRate       float64
	FITSDC, FITDUE     float64
	FITSDCLo, FITSDCHi float64 // 95% Poisson CI on FITSDC
	RelErrs            []float64
	Outputs            [][]float64
	ByClass            map[arch.ResourceClass]*ClassCounts
	// Aborted diagnoses trials whose execution panicked inside the
	// simulator; they are excluded from every rate denominator.
	Aborted []inject.AbortedSample
	// CheckpointDegraded/CheckpointError mirror inject.Result's fields:
	// the journal hit a persistent I/O failure and checkpointing was
	// disabled mid-campaign. Infrastructure status, not beam statistics;
	// byte-identity comparisons clear them first.
	CheckpointDegraded bool   `json:",omitempty"`
	CheckpointError    string `json:",omitempty"`
}

// Classified returns how many trials produced a masked/SDC/DUE
// classification (Trials minus aborted trials).
func (r *Result) Classified() int { return r.Trials - len(r.Aborted) }

// Run executes the campaign. Results are deterministic in Experiment.Seed.
func (e Experiment) Run() (*Result, error) {
	m := e.Mapping
	if m == nil {
		return nil, fmt.Errorf("beam: experiment has no mapping")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if e.Trials <= 0 {
		return nil, fmt.Errorf("beam: %d trials", e.Trials)
	}

	// Only unprotected resources can produce observable events in the
	// single-bit baseline; with MBUs enabled, SECDED-protected SRAM
	// joins the campaign (double-bit upsets defeat the correction).
	var exposures []arch.Exposure
	var rate float64
	for _, x := range m.Exposures {
		if x.Rate() <= 0 {
			continue
		}
		if x.Protected && !e.MBU.Enabled() {
			continue
		}
		exposures = append(exposures, x)
		rate += x.Rate()
	}
	if len(exposures) == 0 {
		return nil, fmt.Errorf("beam: mapping has no unprotected exposure")
	}

	// The runner memoizes the golden output and reuses per-worker
	// scratch buffers across trials; fault-free execution happens at
	// most once per (kernel, format, wrap) in the whole process.
	runner := inject.NewRunner(m.Kernel, m.Format, m.WrapKey, m.Wrap)

	res := &Result{Trials: e.Trials, ExposureRate: rate,
		ByClass: make(map[arch.ResourceClass]*ClassCounts)}
	for _, x := range exposures {
		res.ByClass[x.Class] = &ClassCounts{}
	}

	watchdog := e.Watchdog
	if watchdog <= 0 && (e.BehavioralDUE || e.TrapNonFinite) {
		watchdog = inject.DefaultWatchdogFactor
	}
	ctx := &trialCtx{exp: e, exposures: exposures, rate: rate,
		runner: runner, arrayLens: runner.ArrayLens(), watchdog: watchdog}

	// Sequential mode (Workers <= 1) threads one random stream through
	// the trials in order; parallel mode gives every trial its own
	// stream derived from the campaign seed, so the outcome is
	// deterministic in Seed and independent of scheduling (but a
	// different — equally valid — sample than the sequential one).
	// Checkpointed campaigns always use per-trial streams (resume must
	// not depend on which trials a previous invocation completed).
	outs := make([]trialOutcome, e.Trials)
	perTrial := e.Workers > 1
	if e.Checkpoint != nil {
		perTrial = true
		if err := e.runCheckpointed(ctx, outs, res); err != nil {
			return nil, err
		}
	} else {
		err := exec.SampleCtx(e.Context, e.Workers, e.Trials, e.Seed, func(t int, r *rng.Rand) error {
			outs[t] = ctx.runTrial(r)
			return nil
		})
		if isCtxErr(err) {
			return nil, &exec.Interrupted{Journaled: -1, Cause: err}
		}
		if err != nil {
			return nil, err
		}
	}
	for t, o := range outs {
		if o.aborted {
			var seed uint64
			if perTrial {
				seed = exec.SampleSeed(e.Seed, t)
			}
			res.Aborted = append(res.Aborted, inject.AbortedSample{
				Index: t, Seed: seed, Fault: o.fault, Panic: o.panicMsg})
			continue
		}
		res.record(o, e.KeepOutputs)
	}

	n := float64(res.Classified())
	if n > 0 {
		res.FITSDC = rate * float64(res.SDC) / n
		res.FITDUE = rate * float64(res.DUE) / n
		lo, hi := stats.PoissonCI(int64(res.SDC), 0.95)
		res.FITSDCLo = rate * lo / n
		res.FITSDCHi = rate * hi / n
	}
	return res, nil
}

// isCtxErr reports whether err is a context cancellation or deadline —
// the signals the campaign converts into graceful interruption.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runCheckpointed executes the campaign's missing trials against the
// checkpoint journal, returning exec.ErrPartial while incomplete, an
// *exec.Interrupted after context cancellation (journal flushed), and
// surfacing journal degradation on res.
func (e Experiment) runCheckpointed(ctx *trialCtx, outs []trialOutcome, res *Result) error {
	j, err := e.Checkpoint.Open()
	if err != nil {
		return err
	}
	defer j.Close()

	var ran atomic.Int64
	limit := int64(e.Checkpoint.Limit)
	err = exec.SampleResumeCtx(e.Context, e.Workers, e.Trials, e.Seed, func(t int) bool {
		if _, ok := j.Done(t); ok {
			return true
		}
		return limit > 0 && ran.Load() >= limit
	}, func(t int, r *rng.Rand) error {
		if limit > 0 && ran.Add(1) > limit {
			return nil
		}
		return j.Record(t, ctx.runTrial(r).record())
	})
	if isCtxErr(err) {
		if cerr := j.Close(); cerr != nil {
			return cerr
		}
		journaled := j.Len()
		if deg, _ := j.Degraded(); deg {
			journaled = 0
		}
		return &exec.Interrupted{Journaled: journaled, Cause: err}
	}
	if err != nil {
		return err
	}
	if err := j.Close(); err != nil {
		return err
	}
	if deg, derr := j.Degraded(); deg {
		res.CheckpointDegraded = true
		res.CheckpointError = fmt.Sprint(derr)
	}
	for t := range outs {
		raw, ok := j.Done(t)
		if !ok {
			return exec.ErrPartial
		}
		var rec trialRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("beam: corrupt checkpoint record %d: %w", t, err)
		}
		outs[t] = rec.outcome()
	}
	return nil
}

// trialOutcome is the classified result of one simulated strike.
type trialOutcome struct {
	class   arch.ResourceClass
	outcome int // 0 masked, 1 SDC, 2 DUE
	// cause splits behavioral DUEs by detector (CauseNone for the
	// constant-DUEFraction and SECDED paths).
	cause  inject.DUECause
	relErr float64
	output []float64
	// aborted marks a trial whose execution panicked in the simulator;
	// fault/panicMsg carry its replay diagnostic.
	aborted         bool
	fault, panicMsg string
}

const (
	outMasked = iota
	outSDC
	outDUE
)

// trialRecord is trialOutcome's checkpoint encoding; floats travel as
// IEEE bit patterns so resume stays bit-exact (JSON has no NaN/Inf).
type trialRecord struct {
	Class      int      `json:"cl"`
	Outcome    int      `json:"o,omitempty"`
	Cause      int      `json:"c,omitempty"`
	RelErrBits uint64   `json:"r,omitempty"`
	OutputBits []uint64 `json:"out,omitempty"`
	Aborted    bool     `json:"ab,omitempty"`
	Fault      string   `json:"f,omitempty"`
	Panic      string   `json:"p,omitempty"`
}

func (o trialOutcome) record() trialRecord {
	rec := trialRecord{
		Class:      int(o.class),
		Outcome:    o.outcome,
		Cause:      int(o.cause),
		RelErrBits: math.Float64bits(o.relErr),
		Aborted:    o.aborted,
		Fault:      o.fault,
		Panic:      o.panicMsg,
	}
	if o.output != nil {
		rec.OutputBits = make([]uint64, len(o.output))
		for i, v := range o.output {
			rec.OutputBits[i] = math.Float64bits(v)
		}
	}
	return rec
}

func (rec trialRecord) outcome() trialOutcome {
	o := trialOutcome{
		class:    arch.ResourceClass(rec.Class),
		outcome:  rec.Outcome,
		cause:    inject.DUECause(rec.Cause),
		relErr:   math.Float64frombits(rec.RelErrBits),
		aborted:  rec.Aborted,
		fault:    rec.Fault,
		panicMsg: rec.Panic,
	}
	if rec.OutputBits != nil {
		o.output = make([]float64, len(rec.OutputBits))
		for i, b := range rec.OutputBits {
			o.output[i] = math.Float64frombits(b)
		}
	}
	return o
}

// record folds one trial into the aggregate result.
func (res *Result) record(o trialOutcome, keep bool) {
	cc := res.ByClass[o.class]
	cc.Strikes++
	switch o.outcome {
	case outSDC:
		res.SDC++
		cc.SDC++
		res.RelErrs = append(res.RelErrs, o.relErr)
		if keep {
			res.Outputs = append(res.Outputs, o.output)
		}
	case outDUE:
		res.DUE++
		cc.DUE++
		switch o.cause {
		case inject.CauseWatchdog:
			res.DUEHang++
		case inject.CauseSegfault, inject.CauseTrap:
			res.DUECrash++
		}
	default:
		res.Masked++
		cc.Masked++
	}
}

// trialCtx holds the immutable campaign state shared by trials.
type trialCtx struct {
	exp       Experiment
	exposures []arch.Exposure
	rate      float64
	runner    *inject.Runner
	arrayLens []int
	watchdog  float64
}

// run executes one faulty run under the trial's fault spec with the
// campaign's detectors armed, folding the classification into out. A
// simulator panic becomes an aborted-trial diagnostic.
func (c *trialCtx) run(spec inject.FaultSpec, out *trialOutcome) {
	spec.Watchdog = c.watchdog
	spec.TrapNonFinite = c.exp.TrapNonFinite
	rr, abort := c.runner.RunSpec(spec, c.exp.KeepOutputs)
	if abort != nil {
		out.aborted = true
		out.fault = spec.Desc()
		out.panicMsg = abort.String()
		return
	}
	switch rr.Outcome {
	case inject.SDC:
		out.outcome = outSDC
		out.relErr = rr.MaxRelErr
		out.output = rr.Output
	case inject.CrashDUE, inject.HangDUE:
		out.outcome = outDUE
		out.cause = rr.Cause
	}
}

// runTrial simulates one strike, drawing all randomness from r.
func (c *trialCtx) runTrial(r *rng.Rand) trialOutcome {
	e := c.exp
	m := e.Mapping
	x := sampleExposure(r, c.exposures, c.rate)
	out := trialOutcome{class: x.Class}

	width := 1
	if e.MBU.Enabled() && sramClass(x.Class) {
		width = e.MBU.sampleWidth(r)
	}
	if x.Protected {
		// SECDED: single-bit corrected; multi-bit detected
		// uncorrectable -> machine check (DUE).
		if width >= 2 {
			out.outcome = outDUE
		}
		return out
	}

	switch x.Class {
	case arch.ControlLogic:
		if !e.BehavioralDUE {
			// Legacy model: an asserted constant DUE probability.
			if r.Float64() < x.DUEFraction {
				out.outcome = outDUE
			}
			return out
		}
		// Behavioral model: the strike corrupts actual control state
		// (loop counter / index / pointer) and the DUE rate emerges
		// from running the workload with it.
		cf := inject.SampleControlFault(r, m.Counts)
		c.run(inject.FaultSpec{Control: &cf}, &out)

	case arch.ConfigMemory:
		kind := sampleOpKind(r, x.OpWeights, m.Counts)
		mod := m.UnrollFactor
		if mod == 0 {
			mod = 1
		}
		fault := inject.OpFault{
			Kind:   kind,
			Index:  r.Uint64n(mod),
			Modulo: mod,
			Bit:    r.Intn(m.Format.Width()),
			Width:  width,
			Target: inject.TargetResult,
		}
		c.run(inject.FaultSpec{Op: &fault}, &out)

	case arch.FunctionalUnit:
		if r.Float64() >= x.Vuln() {
			return out
		}
		// A functional-unit strike lands either on the floating-point
		// datapath or — proportionally to the weighted integer
		// sequencing state of software routines — on an integer
		// decision (table index / shift count).
		intW := x.IntStateWeight * float64(m.Counts.IntSites)
		var opW float64
		for op, w := range x.OpWeights {
			if m.Counts.ByOp[op] > 0 {
				opW += w
			}
		}
		if intW > 0 && r.Float64() < intW/(intW+opW) {
			fault := inject.OpFault{
				Index:  r.Uint64n(m.Counts.IntSites),
				Bit:    r.Intn(5),
				Target: inject.TargetIntState,
			}
			c.run(inject.FaultSpec{Op: &fault}, &out)
			break
		}
		kind := sampleOpKind(r, x.OpWeights, m.Counts)
		fault := inject.OpFault{
			Kind:   kind,
			Index:  r.Uint64n(m.Counts.ByOp[kind]),
			Bit:    r.Intn(m.Format.Width()),
			Width:  width,
			Target: inject.TargetResult,
		}
		c.run(inject.FaultSpec{Op: &fault}, &out)

	case arch.RegisterFile:
		fault := inject.SampleOpFault(r, m.Counts, m.Format, 0, true, inject.TargetOperand)
		fault.Width = width
		c.run(inject.FaultSpec{Op: &fault}, &out)

	case arch.MemorySRAM:
		mf := inject.SampleMemFault(r, c.arrayLens, m.Format)
		mf.Width = width
		c.run(inject.FaultSpec{Mem: []inject.MemFault{mf}}, &out)

	default:
		panic(fmt.Sprintf("beam: unhandled resource class %v", x.Class))
	}
	return out
}

// sampleExposure picks an exposure proportionally to its rate.
func sampleExposure(r *rng.Rand, exposures []arch.Exposure, total float64) arch.Exposure {
	u := r.Float64() * total
	for _, x := range exposures {
		u -= x.Rate()
		if u < 0 {
			return x
		}
	}
	return exposures[len(exposures)-1]
}

// sampleOpKind picks an operation kind proportionally to weights,
// restricted to kinds the kernel actually executed.
func sampleOpKind(r *rng.Rand, weights [fp.NumOps]float64, counts fp.OpCounts) fp.Op {
	var total float64
	for op, w := range weights {
		if counts.ByOp[op] > 0 {
			total += w
		}
	}
	if total <= 0 {
		// Fall back to uniform over executed kinds.
		var kinds []fp.Op
		for op := fp.Op(0); int(op) < fp.NumOps; op++ {
			if counts.ByOp[op] > 0 {
				kinds = append(kinds, op)
			}
		}
		return kinds[r.Intn(len(kinds))]
	}
	u := r.Float64() * total
	for op, w := range weights {
		if counts.ByOp[op] == 0 {
			continue
		}
		u -= w
		if u < 0 {
			return fp.Op(op)
		}
	}
	for op := fp.NumOps - 1; op >= 0; op-- {
		if counts.ByOp[op] > 0 {
			return fp.Op(op)
		}
	}
	panic("beam: no executed operations")
}

// MarshalJSON encodes the result with non-finite relative errors (and
// output values) clamped to +-MaxFloat64, since JSON has no Inf/NaN.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result
	safe := alias(*r)
	safe.RelErrs = stats.ClampNonFinite(r.RelErrs)
	if r.Outputs != nil {
		safe.Outputs = make([][]float64, len(r.Outputs))
		for i, o := range r.Outputs {
			safe.Outputs[i] = stats.ClampNonFinite(o)
		}
	}
	return json.Marshal(safe)
}
