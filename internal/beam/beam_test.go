package beam

import (
	"math"
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/fpga"
	"mixedrel/internal/gpu"
	"mixedrel/internal/kernels"
	"mixedrel/internal/xeonphi"
)

func mustMap(t *testing.T, d arch.Device, k kernels.Kernel, f fp.Format) *arch.Mapping {
	t.Helper()
	m, err := d.Map(arch.NewWorkload(k, 1e6, 1), f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	if _, err := (Experiment{}).Run(); err == nil {
		t.Error("nil mapping accepted")
	}
	m := mustMap(t, gpu.New(), kernels.NewGEMM(8, 1), fp.Single)
	if _, err := (Experiment{Mapping: m, Trials: 0}).Run(); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	m := mustMap(t, gpu.New(), kernels.NewGEMM(8, 1), fp.Single)
	e := Experiment{Mapping: m, Trials: 200, Seed: 5}
	a, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.SDC != b.SDC || a.DUE != b.DUE || a.FITSDC != b.FITSDC {
		t.Errorf("beam campaign not deterministic")
	}
}

func TestOutcomeCountsConsistent(t *testing.T) {
	m := mustMap(t, gpu.New(), kernels.NewGEMM(8, 1), fp.Single)
	res, err := Experiment{Mapping: m, Trials: 300, Seed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC+res.DUE+res.Masked != res.Trials {
		t.Errorf("outcomes %d+%d+%d != %d trials", res.SDC, res.DUE, res.Masked, res.Trials)
	}
	var strikes int
	for _, cc := range res.ByClass {
		strikes += cc.Strikes
		if cc.SDC+cc.DUE+cc.Masked != cc.Strikes {
			t.Errorf("class counts inconsistent: %+v", cc)
		}
	}
	if strikes != res.Trials {
		t.Errorf("per-class strikes %d != %d trials", strikes, res.Trials)
	}
	if len(res.RelErrs) != res.SDC {
		t.Errorf("one rel-err per SDC: %d vs %d", len(res.RelErrs), res.SDC)
	}
}

func TestFITBounds(t *testing.T) {
	m := mustMap(t, gpu.New(), kernels.NewGEMM(8, 1), fp.Half)
	res, err := Experiment{Mapping: m, Trials: 400, Seed: 11}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FITSDC < 0 || res.FITSDC > res.ExposureRate {
		t.Errorf("FITSDC %v outside [0, exposure %v]", res.FITSDC, res.ExposureRate)
	}
	if res.SDC > 0 && !(res.FITSDCLo < res.FITSDC && res.FITSDC < res.FITSDCHi) {
		t.Errorf("CI [%v, %v] does not bracket FIT %v", res.FITSDCLo, res.FITSDCHi, res.FITSDC)
	}
}

// Protected resources must never produce events: on the Xeon Phi the
// register file is ECC'd, so no RegisterFile strikes appear.
func TestProtectedResourcesExcluded(t *testing.T) {
	m := mustMap(t, xeonphi.New(), kernels.NewGEMM(8, 1), fp.Single)
	res, err := Experiment{Mapping: m, Trials: 300, Seed: 13}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ByClass[arch.RegisterFile]; ok {
		t.Error("protected register file received strikes")
	}
}

// The FPGA mapping has no control logic: a beam campaign must observe
// zero DUEs, matching the paper's FPGA observation.
func TestFPGANoDUE(t *testing.T) {
	d := fpga.New()
	m, err := d.Map(arch.NewWorkload(kernels.NewGEMM(12, 3), 512, 64), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Experiment{Mapping: m, Trials: 300, Seed: 17}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DUE != 0 {
		t.Errorf("FPGA campaign observed %d DUEs", res.DUE)
	}
	if res.SDC == 0 {
		t.Error("FPGA campaign observed no SDCs at all")
	}
}

// GPU campaigns on control-heavy kernels must observe DUEs.
func TestGPUObservesDUE(t *testing.T) {
	m := mustMap(t, gpu.New(), kernels.NewLavaMD(2, 3, 3), fp.Single)
	res, err := Experiment{Mapping: m, Trials: 500, Seed: 19}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DUE == 0 {
		t.Error("no DUEs observed on a GPU LavaMD campaign")
	}
	if res.FITDUE <= 0 {
		t.Error("FITDUE should be positive")
	}
}

func TestKeepOutputs(t *testing.T) {
	m := mustMap(t, gpu.New(), kernels.NewGEMM(6, 5), fp.Single)
	res, err := Experiment{Mapping: m, Trials: 200, Seed: 23, KeepOutputs: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != res.SDC {
		t.Errorf("outputs %d != SDCs %d", len(res.Outputs), res.SDC)
	}
}

// Cross-device, same workload: FIT in consistent units. The FPGA's
// config memory is orders of magnitude more exposed per useful op than
// the GPU's logic — sanity-check only that both produce finite values.
func TestFITFinite(t *testing.T) {
	for _, tc := range []struct {
		d arch.Device
		f fp.Format
	}{
		{fpga.New(), fp.Half},
		{xeonphi.New(), fp.Double},
		{gpu.New(), fp.Single},
	} {
		m := mustMap(t, tc.d, kernels.NewGEMM(8, 1), tc.f)
		res, err := Experiment{Mapping: m, Trials: 150, Seed: 29}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.FITSDC) || math.IsInf(res.FITSDC, 0) {
			t.Errorf("%s: FIT not finite", tc.d.Name())
		}
	}
}
