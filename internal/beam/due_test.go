package beam

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/xeonphi"
)

// TestBehavioralDUEDeterministic: the behavioral model must stay a pure
// function of the seed and keep the outcome accounting consistent.
func TestBehavioralDUEDeterministic(t *testing.T) {
	m := mustMap(t, xeonphi.New(), kernels.NewGEMM(8, 1), fp.Single)
	e := Experiment{Mapping: m, Trials: 300, Seed: 5, BehavioralDUE: true, TrapNonFinite: true}
	a, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("behavioral beam campaign not deterministic")
	}
	if a.SDC+a.DUE+a.Masked != a.Classified() {
		t.Errorf("outcomes %d+%d+%d != %d classified", a.SDC, a.DUE, a.Masked, a.Classified())
	}
	if a.DUECrash+a.DUEHang > a.DUE {
		t.Errorf("crash %d + hang %d exceeds DUE %d", a.DUECrash, a.DUEHang, a.DUE)
	}
	if a.DUE == 0 {
		t.Error("behavioral campaign on a control-heavy device observed no DUEs")
	}
	if a.DUECrash+a.DUEHang == 0 {
		t.Error("behavioral DUEs carry no detector split")
	}
}

// TestBehavioralVsConstantDUE: both models must observe DUEs on the
// Xeon Phi mapping; the behavioral rate comes from actual crashes and
// hangs, not the calibrated constant, so the split is populated only
// for the behavioral run.
func TestBehavioralVsConstantDUE(t *testing.T) {
	m := mustMap(t, xeonphi.New(), kernels.NewGEMM(8, 1), fp.Single)
	konst, err := Experiment{Mapping: m, Trials: 400, Seed: 9}.Run()
	if err != nil {
		t.Fatal(err)
	}
	behav, err := Experiment{Mapping: m, Trials: 400, Seed: 9, BehavioralDUE: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if konst.DUECrash+konst.DUEHang != 0 {
		t.Errorf("constant model produced a detector split: crash %d hang %d",
			konst.DUECrash, konst.DUEHang)
	}
	if behav.DUE == 0 || behav.FITDUE <= 0 {
		t.Errorf("behavioral model observed no DUEs (DUE=%d FITDUE=%g)", behav.DUE, behav.FITDUE)
	}
}

// TestBeamCheckpointResume: an interrupted-then-resumed behavioral
// campaign must match both an uninterrupted checkpointed run and a
// plain parallel run.
func TestBeamCheckpointResume(t *testing.T) {
	m := mustMap(t, xeonphi.New(), kernels.NewGEMM(6, 2), fp.Single)
	base := Experiment{Mapping: m, Trials: 30, Seed: 11, BehavioralDUE: true, TrapNonFinite: true}
	dir := t.TempDir()

	var resumed *Result
	for i := 0; ; i++ {
		e := base
		e.Checkpoint = &exec.Checkpoint{Path: filepath.Join(dir, "a.ckpt"), Limit: 11, Every: 4}
		res, err := e.Run()
		if err == nil {
			resumed = res
			break
		}
		if !errors.Is(err, exec.ErrPartial) {
			t.Fatal(err)
		}
		if i > 10 {
			t.Fatal("campaign never completed")
		}
	}

	e := base
	e.Checkpoint = &exec.Checkpoint{Path: filepath.Join(dir, "b.ckpt")}
	oneShot, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, oneShot) {
		t.Errorf("resumed result differs from uninterrupted run:\n%+v\nvs\n%+v", resumed, oneShot)
	}

	e = base
	e.Workers = 2
	parallel, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, parallel) {
		t.Errorf("checkpointed result differs from parallel run:\n%+v\nvs\n%+v", resumed, parallel)
	}
}
