package beam

import (
	"fmt"
	"math"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/inject"
	"mixedrel/internal/rng"
)

// Accumulation simulates what the paper deliberately avoids (Section 4):
// leaving an FPGA in the beam *without* reprogramming after errors.
// Configuration-memory upsets then pile up, each one permanently
// corrupting another hardware operator instance, until the circuit stops
// producing anything useful — the regime in which the paper notes DUEs
// would eventually appear on FPGAs ("after several radiation-induced
// modifications the circuit stops working", citing Quinn et al.).
//
// The simulation repeatedly adds a random persistent operator fault to a
// growing set, re-runs the workload with all accumulated faults active,
// and classifies the output. Rounds are averaged to estimate, for every
// accumulation depth k, the probability that the output is corrupted and
// the probability that the circuit is functionally dead (a large share
// of the outputs are non-finite or wildly out of range).
type Accumulation struct {
	Mapping *arch.Mapping
	// MaxFaults is the deepest accumulation level simulated.
	MaxFaults int
	// Rounds is the number of independent accumulation sequences
	// averaged per level.
	Rounds int
	Seed   uint64
}

// AccumulationPoint is the outcome distribution at one accumulation
// depth.
type AccumulationPoint struct {
	Faults int
	// PSDC is the probability that the output differs from golden.
	PSDC float64
	// PDead is the probability the circuit is functionally dead: at
	// least half of the outputs non-finite or more than 10^6 times off.
	PDead float64
}

// AccumulationResult is the per-depth outcome curve.
type AccumulationResult struct {
	Points []AccumulationPoint
}

// Run executes the accumulation simulation. Results are deterministic
// in Seed.
func (a Accumulation) Run() (*AccumulationResult, error) {
	m := a.Mapping
	if m == nil {
		return nil, fmt.Errorf("beam: accumulation has no mapping")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if a.MaxFaults <= 0 || a.Rounds <= 0 {
		return nil, fmt.Errorf("beam: accumulation needs positive MaxFaults and Rounds")
	}
	cfg := m.ExposureFor(arch.ConfigMemory)
	if cfg.Bits <= 0 {
		return nil, fmt.Errorf("beam: %s has no configuration memory to accumulate faults in", m.DeviceName)
	}
	mod := m.UnrollFactor
	if mod == 0 {
		mod = 1
	}

	golden := exec.Artifact(m.Kernel, m.Format, m.WrapKey, m.Wrap).Golden()
	r := rng.New(a.Seed)

	sdc := make([]int, a.MaxFaults+1)
	dead := make([]int, a.MaxFaults+1)
	for round := 0; round < a.Rounds; round++ {
		var faults []inject.OpFault
		for k := 1; k <= a.MaxFaults; k++ {
			kind := sampleOpKind(r, cfg.OpWeights, m.Counts)
			faults = append(faults, inject.OpFault{
				Kind:   kind,
				Index:  r.Uint64n(mod),
				Modulo: mod,
				Bit:    r.Intn(m.Format.Width()),
				Target: inject.TargetResult,
			})
			rr := inject.RunMulti(m.Kernel, m.Format, golden, faults, nil, true, m.Wrap)
			if rr.Outcome == inject.SDC {
				sdc[k]++
				if isDead(golden, rr.Output) {
					dead[k]++
				}
			}
		}
	}

	res := &AccumulationResult{}
	for k := 1; k <= a.MaxFaults; k++ {
		res.Points = append(res.Points, AccumulationPoint{
			Faults: k,
			PSDC:   float64(sdc[k]) / float64(a.Rounds),
			PDead:  float64(dead[k]) / float64(a.Rounds),
		})
	}
	return res, nil
}

// isDead reports whether the output indicates a functionally broken
// circuit: at least half the elements non-finite or off by a factor of
// a million.
func isDead(golden, out []float64) bool {
	if len(out) == 0 {
		return false
	}
	bad := 0
	for i, v := range out {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			bad++
		case golden[i] != 0 && math.Abs(v/golden[i]) > 1e6:
			bad++
		case golden[i] != 0 && math.Abs(v/golden[i]) < 1e-6:
			bad++
		}
	}
	return 2*bad >= len(out)
}
