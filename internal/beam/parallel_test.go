package beam

import (
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/gpu"
	"mixedrel/internal/kernels"
)

// Parallel campaigns must be deterministic in the seed regardless of
// worker count.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	m, err := gpu.New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 1e6, 1e3), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := Experiment{Mapping: m, Trials: 300, Seed: 9, Workers: workers,
			KeepOutputs: true}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(2), run(4), run(8)
	if a.SDC != b.SDC || b.SDC != c.SDC || a.DUE != b.DUE || b.DUE != c.DUE {
		t.Fatalf("worker counts disagree: %d/%d vs %d/%d vs %d/%d",
			a.SDC, a.DUE, b.SDC, b.DUE, c.SDC, c.DUE)
	}
	// Order-sensitive artifacts must match too.
	if len(a.RelErrs) != len(b.RelErrs) {
		t.Fatal("rel-err counts differ")
	}
	for i := range a.RelErrs {
		if a.RelErrs[i] != b.RelErrs[i] {
			t.Fatalf("rel-err order differs at %d", i)
		}
	}
	for i := range a.Outputs {
		for j := range a.Outputs[i] {
			if a.Outputs[i][j] != b.Outputs[i][j] {
				t.Fatalf("outputs differ at %d/%d", i, j)
			}
		}
	}
}

// The parallel and sequential estimators must agree statistically: same
// exposure, outcome fractions within sampling error.
func TestParallelAgreesWithSequential(t *testing.T) {
	m, err := gpu.New().Map(arch.NewWorkload(kernels.NewGEMM(10, 2), 1e6, 1e3), fp.Half)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 1500
	seq, err := Experiment{Mapping: m, Trials: trials, Seed: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := Experiment{Mapping: m, Trials: trials, Seed: 4, Workers: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seq.ExposureRate != par.ExposureRate {
		t.Fatal("exposure rate should be identical")
	}
	// Fractions within 5 sigma of each other.
	ps := float64(seq.SDC) / trials
	pp := float64(par.SDC) / trials
	sigma := 5 * 0.5 / 38.7 // 5*sqrt(p(1-p)/n) upper bound
	if diff := ps - pp; diff > sigma || diff < -sigma {
		t.Errorf("SDC fraction %v (seq) vs %v (par) differ beyond noise", ps, pp)
	}
}

func TestParallelCountsConsistent(t *testing.T) {
	m, err := gpu.New().Map(arch.NewWorkload(kernels.NewLavaMD(2, 3, 1), 1e6, 1e3), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Experiment{Mapping: m, Trials: 400, Seed: 6, Workers: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC+res.DUE+res.Masked != res.Trials {
		t.Errorf("outcomes do not sum to trials: %+v", res)
	}
	strikes := 0
	for _, cc := range res.ByClass {
		strikes += cc.Strikes
	}
	if strikes != res.Trials {
		t.Errorf("per-class strikes %d != trials %d", strikes, res.Trials)
	}
}
