package beam

import (
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/fpga"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
	"mixedrel/internal/xeonphi"
)

func TestMBUSampleWidthDistribution(t *testing.T) {
	m := MBU{P2: 0.2, P3: 0.1}
	r := rng.New(1)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.sampleWidth(r)]++
	}
	if got := float64(counts[2]) / n; got < 0.17 || got > 0.23 {
		t.Errorf("P2 sample %v, want ~0.2", got)
	}
	if got := float64(counts[3]) / n; got < 0.08 || got > 0.12 {
		t.Errorf("P3 sample %v, want ~0.1", got)
	}
	if counts[1]+counts[2]+counts[3] != n {
		t.Error("unexpected widths sampled")
	}
}

func TestMBUDisabledByDefault(t *testing.T) {
	if (MBU{}).Enabled() {
		t.Error("zero MBU must be disabled")
	}
	if !(MBU{P2: 0.1}).Enabled() {
		t.Error("P2 > 0 must enable MBUs")
	}
}

// With MBUs enabled, the Phi's ECC-protected register file joins the
// campaign and produces DUEs; without them it is invisible.
func TestMBUTurnsProtectedSRAMIntoDUEs(t *testing.T) {
	m, err := xeonphi.New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 1e6, 1), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Experiment{Mapping: m, Trials: 400, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base.ByClass[arch.RegisterFile]; ok {
		t.Fatal("protected RF sampled without MBUs")
	}
	mbu, err := Experiment{Mapping: m, Trials: 400, Seed: 3, MBU: MBU{P2: 0.2, P3: 0.05}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := mbu.ByClass[arch.RegisterFile]
	if !ok || rf.Strikes == 0 {
		t.Fatal("protected RF not sampled with MBUs enabled")
	}
	if rf.SDC != 0 {
		t.Errorf("SECDED RF produced %d SDCs; multi-bit upsets must be detected, not silent", rf.SDC)
	}
	if rf.DUE == 0 {
		t.Error("RF multi-bit upsets produced no DUEs")
	}
	if mbu.FITDUE <= base.FITDUE {
		t.Errorf("MBU DUE FIT %v not above baseline %v", mbu.FITDUE, base.FITDUE)
	}
}

func TestAccumulationValidation(t *testing.T) {
	if _, err := (Accumulation{}).Run(); err == nil {
		t.Error("nil mapping accepted")
	}
	m, err := fpga.New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 1, 1), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Accumulation{Mapping: m, MaxFaults: 0, Rounds: 5}).Run(); err == nil {
		t.Error("zero MaxFaults accepted")
	}
	// A GPU mapping has no configuration memory to accumulate in.
	gm, err := xeonphi.New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 1e6, 1), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Accumulation{Mapping: gm, MaxFaults: 3, Rounds: 5}).Run(); err == nil {
		t.Error("accumulation on a device without config memory accepted")
	}
}

func TestAccumulationCurve(t *testing.T) {
	m, err := fpga.New().Map(arch.NewWorkload(kernels.NewGEMM(10, 1), 512, 64), fp.Double)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Accumulation{Mapping: m, MaxFaults: 5, Rounds: 30, Seed: 11}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points", len(res.Points))
	}
	for i, p := range res.Points {
		if p.Faults != i+1 {
			t.Errorf("point %d has depth %d", i, p.Faults)
		}
		if p.PSDC < 0 || p.PSDC > 1 || p.PDead < 0 || p.PDead > 1 {
			t.Errorf("probabilities out of range: %+v", p)
		}
		if p.PDead > p.PSDC {
			t.Errorf("dead without SDC at depth %d: %+v", p.Faults, p)
		}
	}
	// A persistent fault in a U=1 datapath corrupts nearly every run.
	if res.Points[0].PSDC < 0.8 {
		t.Errorf("single persistent fault PSDC %v suspiciously low", res.Points[0].PSDC)
	}
	// Deeper accumulation cannot make the circuit healthier (allowing
	// sampling noise).
	if res.Points[4].PDead+0.15 < res.Points[0].PDead {
		t.Errorf("P(dead) decreased with accumulation: %+v", res.Points)
	}
}

func TestAccumulationDeterministic(t *testing.T) {
	m, err := fpga.New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 512, 64), fp.Half)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Accumulation{Mapping: m, MaxFaults: 3, Rounds: 10, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Accumulation{Mapping: m, MaxFaults: 3, Rounds: 10, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("accumulation not deterministic at depth %d", i+1)
		}
	}
}

func TestIsDead(t *testing.T) {
	golden := []float64{1, 2, 3, 4}
	if isDead(golden, []float64{1, 2, 3, 4}) {
		t.Error("healthy output marked dead")
	}
	nan := func() float64 { return 0.0 / func() float64 { return 0 }() }
	_ = nan
	if !isDead(golden, []float64{1e10, 2e10, 3, 4}) {
		t.Error("half the outputs 1e10x off should be dead")
	}
	if !isDead(golden, []float64{1e-10, 2e-10, 3, 4}) {
		t.Error("half the outputs vanished should be dead")
	}
	if isDead(golden, []float64{1e10, 2, 3, 4}) {
		t.Error("a quarter off should not be dead")
	}
	if isDead(nil, nil) {
		t.Error("empty output cannot be dead")
	}
}
