package exec

import (
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func TestArtifactMatchesDirectComputation(t *testing.T) {
	k := kernels.NewGEMM(8, 42)
	for _, f := range []fp.Format{fp.Double, fp.Single, fp.Half} {
		art := Artifact(k, f, "", nil)
		want := kernels.Golden(k, f)
		got := art.GoldenBits()
		if len(got) != len(want) {
			t.Fatalf("%v: golden length %d, want %d", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: golden[%d] = %#x, want %#x", f, i, got[i], want[i])
			}
		}
		if art.Counts != kernels.Profile(k, f) {
			t.Fatalf("%v: cached counts %+v differ from direct profile %+v",
				f, art.Counts, kernels.Profile(k, f))
		}
	}
}

func TestArtifactMatchesDirectComputationWrapped(t *testing.T) {
	shape := fp.ExpShape{Terms: 5, Squarings: 1, IntSites: 1}
	k := kernels.NewLavaMD(1, 3, 7) // exercises exp
	art := Artifact(k, fp.Single, shape.Key(), fp.WrapExp(shape))
	want := kernels.GoldenWith(k, fp.Single, fp.WrapExp(shape))
	got := art.GoldenBits()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped golden[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if wc := kernels.ProfileWith(k, fp.Single, fp.WrapExp(shape)); art.Counts != wc {
		t.Fatalf("wrapped counts %+v differ from direct profile %+v", art.Counts, wc)
	}
}

func TestArtifactSharedAcrossEqualKeys(t *testing.T) {
	a := Artifact(kernels.NewGEMM(8, 42), fp.Double, "", nil)
	b := Artifact(kernels.NewGEMM(8, 42), fp.Double, "", nil)
	if a != b {
		t.Fatal("two kernels with equal keys should share one cached artifact")
	}
}

func TestCopyInputsLeavesCachePristine(t *testing.T) {
	k := kernels.NewGEMM(8, 43)
	art := Artifact(k, fp.Double, "", nil)
	in := art.NewInputs()
	for _, arr := range in {
		for i := range arr {
			arr[i] = ^arr[i]
		}
	}
	fresh := art.NewInputs()
	want := k.Inputs(fp.Double)
	for ai := range want {
		for i := range want[ai] {
			if fresh[ai][i] != want[ai][i] {
				t.Fatalf("cached inputs corrupted at [%d][%d]", ai, i)
			}
		}
	}
	// CopyInputs reuses the destination backing arrays and restores the
	// pristine values.
	restored := art.CopyInputs(in)
	for ai := range want {
		if &restored[ai][0] != &in[ai][0] {
			t.Fatalf("CopyInputs reallocated array %d", ai)
		}
		for i := range want[ai] {
			if restored[ai][i] != want[ai][i] {
				t.Fatalf("CopyInputs did not restore [%d][%d]", ai, i)
			}
		}
	}
}
