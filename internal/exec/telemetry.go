package exec

import "mixedrel/internal/telemetry"

// Execution-engine metrics. Counters are process-wide and always live
// (an atomic add per event); the fsync histogram only records when
// telemetry timing is enabled, because it needs wall-clock reads.
// Nothing here feeds back into scheduling or results — the telemetry
// analyzer proves these values never reach kernel Run paths, report
// rendering, or journal records.
var (
	// mJobs counts jobs completed by ForEach across all call sites
	// (each job is typically one injection sample).
	mJobs = telemetry.NewCounter("exec_jobs")
	// mHelpers tracks live helper goroutines; its peak is the realized
	// worker occupancy of the process-wide token pool.
	mHelpers = telemetry.NewGauge("exec_helpers")
	// mHelpersDenied counts helper slots refused because the token pool
	// was exhausted — the queue-pressure signal: work that wanted to
	// parallelize but ran inline on the caller instead.
	mHelpersDenied = telemetry.NewCounter("exec_helpers_denied")

	// mArtifactLookups / mArtifactComputes measure the artifact memo:
	// hits per process = lookups - computes.
	mArtifactLookups  = telemetry.NewCounter("exec_artifact_lookups")
	mArtifactComputes = telemetry.NewCounter("exec_artifact_computes")
	// mArtifactUncached counts configurations that bypassed the memo
	// entirely (unidentifiable kernel or wrap key).
	mArtifactUncached = telemetry.NewCounter("exec_artifact_uncached")
	// mArtifactEvictions counts entries dropped by ResetCache.
	mArtifactEvictions = telemetry.NewCounter("exec_artifact_evictions")

	// mJournalRecords counts samples appended to checkpoint journals;
	// mJournalFsyncs counts flush-and-sync barriers, each timed into
	// mJournalFsyncNs when telemetry is enabled.
	mJournalRecords = telemetry.NewCounter("checkpoint_records")
	mJournalFsyncs  = telemetry.NewCounter("checkpoint_fsyncs")
	mJournalFsyncNs = telemetry.NewHistogram("checkpoint_fsync_ns")
	// Journal failure-policy counters: I/O errors observed on
	// flush/sync attempts, retries spent on them, journals that gave up
	// and degraded (checkpointing disabled, campaign continues), and
	// torn-line compactions (attempted rewrites and their failures).
	mJournalIOErrors      = telemetry.NewCounter("checkpoint_io_errors")
	mJournalRetries       = telemetry.NewCounter("checkpoint_retries")
	mJournalDegraded      = telemetry.NewCounter("checkpoint_degraded")
	mJournalCompactions   = telemetry.NewCounter("checkpoint_compactions")
	mJournalCompactErrors = telemetry.NewCounter("checkpoint_compact_errors")

	// mCancelledJobs counts jobs skipped by context cancellation — the
	// graceful-drain signal: work that was planned but never started
	// because the campaign's context fired first.
	mCancelledJobs = telemetry.NewCounter("exec_cancelled_jobs")

	// mGuardPanics counts panics recovered by Guard. This includes the
	// injector's intentional behavioral-DUE control panics (watchdog,
	// trap, segfault), which also terminate samples through Guard; a
	// kernel bug and a simulated crash are indistinguishable here by
	// design — both are "execution died before classification".
	mGuardPanics = telemetry.NewCounter("exec_guard_panics")
)
