package exec

import (
	"sync"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/traceir"
)

// Artifacts bundles the memoized fault-free products of one
// (kernel, format, wrap) configuration: the dynamic operation profile,
// the golden output (raw and decoded), and the pristine encoded inputs.
// All slices returned by accessors other than CopyInputs/NewInputs are
// shared and must be treated as immutable.
type Artifacts struct {
	// Counts is the dynamic operation profile with the wrap applied,
	// Loads/Stores included — exactly kernels.ProfileWith's result.
	Counts fp.OpCounts

	golden  []fp.Bits
	decoded []float64
	inputs  [][]fp.Bits
	lens    []int
	results []fp.Bits
	prog    *traceir.Program
}

// GoldenBits returns the fault-free output in the configuration's
// format. Shared; do not mutate.
func (a *Artifacts) GoldenBits() []fp.Bits { return a.golden }

// Golden returns the decoded fault-free output. Shared; do not mutate.
func (a *Artifacts) Golden() []float64 { return a.decoded }

// ArrayLens returns the input array lengths (for memory-fault
// sampling). Shared; do not mutate.
func (a *Artifacts) ArrayLens() []int { return a.lens }

// Results returns the per-operation result trace of the fault-free run:
// element i is the bits produced by the i-th dynamic arithmetic
// operation (post-wrap order). Until a fault is applied, a faulty run's
// operations see bit-identical operands, so injectors replay this trace
// instead of recomputing the pre-fault prefix. Nil when the kernel
// exceeds the recording cap. Shared; do not mutate.
func (a *Artifacts) Results() []fp.Bits { return a.results }

// Prog returns the compiled trace program for the configuration — the
// optimized region IR over the same result trace Results() exposes —
// or nil when the execution overflowed the compilation cap. Immutable
// and safe for concurrent replays.
func (a *Artifacts) Prog() *traceir.Program { return a.prog }

// NewInputs returns a freshly allocated mutable copy of the kernel's
// pristine encoded inputs.
func (a *Artifacts) NewInputs() [][]fp.Bits { return a.CopyInputs(nil) }

// CopyInputs fills dst with the kernel's pristine encoded inputs,
// reusing dst's backing arrays where they fit, and returns it. This is
// the scratch-buffer path of fault injection: campaigns hold one dst per
// worker so repeated runs re-encode nothing and allocate nothing.
func (a *Artifacts) CopyInputs(dst [][]fp.Bits) [][]fp.Bits {
	if cap(dst) < len(a.inputs) {
		dst = make([][]fp.Bits, len(a.inputs))
	}
	dst = dst[:len(a.inputs)]
	for i, src := range a.inputs {
		if cap(dst[i]) < len(src) {
			dst[i] = make([]fp.Bits, len(src))
		}
		dst[i] = dst[i][:len(src)]
		copy(dst[i], src)
	}
	return dst
}

// cacheKey identifies one cached configuration.
type cacheKey struct {
	kernel string
	format fp.Format
	wrap   string
}

// cacheSlot guarantees the artifacts of one key are computed exactly
// once even under concurrent first access.
type cacheSlot struct {
	once sync.Once
	art  *Artifacts
}

var cacheMap sync.Map // cacheKey -> *cacheSlot

// Artifact returns the memoized fault-free artifacts for (k, f, wrap).
// wrapKey must uniquely identify wrap's arithmetic behavior (empty for a
// nil wrap); the cache key is (k.Key(), f, wrapKey). Configurations that
// cannot be identified — k.Key() empty, or a non-nil wrap with an empty
// wrapKey — are computed uncached, so correctness never depends on key
// discipline. Safe for concurrent use; each configuration is executed at
// most once per process.
func Artifact(k kernels.Kernel, f fp.Format, wrapKey string, wrap func(fp.Env) fp.Env) *Artifacts {
	kk := k.Key()
	if kk == "" || (wrap != nil && wrapKey == "") {
		mArtifactUncached.Inc()
		return compute(k, f, wrap)
	}
	if wrap == nil {
		wrapKey = ""
	}
	mArtifactLookups.Inc()
	v, _ := cacheMap.LoadOrStore(cacheKey{kernel: kk, format: f, wrap: wrapKey}, &cacheSlot{})
	slot := v.(*cacheSlot)
	slot.once.Do(func() {
		mArtifactComputes.Inc()
		slot.art = compute(k, f, wrap)
	})
	return slot.art
}

// ResetCache drops every memoized artifact. Intended for tests that
// measure cold-path behavior.
func ResetCache() {
	cacheMap.Range(func(key, _ any) bool {
		cacheMap.Delete(key)
		mArtifactEvictions.Inc()
		return true
	})
}

// compute executes the kernel once through a counting environment over
// a trace recorder, yielding profile, golden output, the per-operation
// result trace, and the compiled trace program from a single
// fault-free run (fp.Counting and traceir.Recorder delegate arithmetic
// unchanged, so the counted run's output is bit-identical to
// kernels.GoldenWith's). The recorder sits below fp.Counting — the
// same stream position an injecting environment occupies in a faulty
// run — so trace index i is exactly the i-th operation an injector
// observes, and each recorded batch call is the batch call the
// injector sees.
func compute(k kernels.Kernel, f fp.Format, wrap func(fp.Env) fp.Env) *Artifacts {
	in := k.Inputs(f)
	// Keep a pristine copy: the Kernel contract forbids Run from
	// mutating in, but artifacts outlive the process-local call and a
	// defensive copy is a one-time cost per configuration.
	pristine := make([][]fp.Bits, len(in))
	lens := make([]int, len(in))
	for i, arr := range in {
		pristine[i] = append([]fp.Bits(nil), arr...)
		lens[i] = len(arr)
	}

	rec := traceir.NewRecorder(fp.NewMachine(f))
	counting := fp.NewCounting(rec)
	var env fp.Env = counting
	if wrap != nil {
		env = wrap(env)
	}
	out := k.Run(env, in)
	counts := counting.Counts
	for _, arr := range in {
		counts.Loads += uint64(len(arr))
	}
	counts.Stores += uint64(len(out))

	return &Artifacts{
		Counts:  counts,
		golden:  out,
		decoded: kernels.Decode(f, out),
		inputs:  pristine,
		lens:    lens,
		results: rec.Results(),
		prog:    rec.Compile(),
	}
}
