package exec

import (
	"sync"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// Artifacts bundles the memoized fault-free products of one
// (kernel, format, wrap) configuration: the dynamic operation profile,
// the golden output (raw and decoded), and the pristine encoded inputs.
// All slices returned by accessors other than CopyInputs/NewInputs are
// shared and must be treated as immutable.
type Artifacts struct {
	// Counts is the dynamic operation profile with the wrap applied,
	// Loads/Stores included — exactly kernels.ProfileWith's result.
	Counts fp.OpCounts

	golden  []fp.Bits
	decoded []float64
	inputs  [][]fp.Bits
	lens    []int
	results []fp.Bits
}

// GoldenBits returns the fault-free output in the configuration's
// format. Shared; do not mutate.
func (a *Artifacts) GoldenBits() []fp.Bits { return a.golden }

// Golden returns the decoded fault-free output. Shared; do not mutate.
func (a *Artifacts) Golden() []float64 { return a.decoded }

// ArrayLens returns the input array lengths (for memory-fault
// sampling). Shared; do not mutate.
func (a *Artifacts) ArrayLens() []int { return a.lens }

// Results returns the per-operation result trace of the fault-free run:
// element i is the bits produced by the i-th dynamic arithmetic
// operation (post-wrap order). Until a fault is applied, a faulty run's
// operations see bit-identical operands, so injectors replay this trace
// instead of recomputing the pre-fault prefix. Nil when the kernel
// exceeds the recording cap. Shared; do not mutate.
func (a *Artifacts) Results() []fp.Bits { return a.results }

// NewInputs returns a freshly allocated mutable copy of the kernel's
// pristine encoded inputs.
func (a *Artifacts) NewInputs() [][]fp.Bits { return a.CopyInputs(nil) }

// CopyInputs fills dst with the kernel's pristine encoded inputs,
// reusing dst's backing arrays where they fit, and returns it. This is
// the scratch-buffer path of fault injection: campaigns hold one dst per
// worker so repeated runs re-encode nothing and allocate nothing.
func (a *Artifacts) CopyInputs(dst [][]fp.Bits) [][]fp.Bits {
	if cap(dst) < len(a.inputs) {
		dst = make([][]fp.Bits, len(a.inputs))
	}
	dst = dst[:len(a.inputs)]
	for i, src := range a.inputs {
		if cap(dst[i]) < len(src) {
			dst[i] = make([]fp.Bits, len(src))
		}
		dst[i] = dst[i][:len(src)]
		copy(dst[i], src)
	}
	return dst
}

// cacheKey identifies one cached configuration.
type cacheKey struct {
	kernel string
	format fp.Format
	wrap   string
}

// cacheSlot guarantees the artifacts of one key are computed exactly
// once even under concurrent first access.
type cacheSlot struct {
	once sync.Once
	art  *Artifacts
}

var cacheMap sync.Map // cacheKey -> *cacheSlot

// Artifact returns the memoized fault-free artifacts for (k, f, wrap).
// wrapKey must uniquely identify wrap's arithmetic behavior (empty for a
// nil wrap); the cache key is (k.Key(), f, wrapKey). Configurations that
// cannot be identified — k.Key() empty, or a non-nil wrap with an empty
// wrapKey — are computed uncached, so correctness never depends on key
// discipline. Safe for concurrent use; each configuration is executed at
// most once per process.
func Artifact(k kernels.Kernel, f fp.Format, wrapKey string, wrap func(fp.Env) fp.Env) *Artifacts {
	kk := k.Key()
	if kk == "" || (wrap != nil && wrapKey == "") {
		return compute(k, f, wrap)
	}
	if wrap == nil {
		wrapKey = ""
	}
	v, _ := cacheMap.LoadOrStore(cacheKey{kernel: kk, format: f, wrap: wrapKey}, &cacheSlot{})
	slot := v.(*cacheSlot)
	slot.once.Do(func() { slot.art = compute(k, f, wrap) })
	return slot.art
}

// ResetCache drops every memoized artifact. Intended for tests that
// measure cold-path behavior.
func ResetCache() {
	cacheMap.Range(func(key, _ any) bool {
		cacheMap.Delete(key)
		return true
	})
}

// maxRecordedOps bounds the per-configuration result trace: beyond this
// many dynamic operations (32 MiB of Bits) the trace is dropped and
// injectors fall back to full recomputation.
const maxRecordedOps = 1 << 22

// recorder wraps the reference machine and appends every operation
// result to a trace. It sits below fp.Counting — the same stream
// position an injecting environment occupies in a faulty run — so trace
// index i is exactly the i-th operation an injector observes.
type recorder struct {
	inner fp.Env
	trace []fp.Bits
}

func (r *recorder) rec(b fp.Bits) fp.Bits {
	if len(r.trace) < maxRecordedOps {
		r.trace = append(r.trace, b)
	}
	return b
}

func (r *recorder) Format() fp.Format          { return r.inner.Format() }
func (r *recorder) Add(a, b fp.Bits) fp.Bits   { return r.rec(r.inner.Add(a, b)) }
func (r *recorder) Sub(a, b fp.Bits) fp.Bits   { return r.rec(r.inner.Sub(a, b)) }
func (r *recorder) Mul(a, b fp.Bits) fp.Bits   { return r.rec(r.inner.Mul(a, b)) }
func (r *recorder) Div(a, b fp.Bits) fp.Bits   { return r.rec(r.inner.Div(a, b)) }
func (r *recorder) FMA(a, b, c fp.Bits) fp.Bits { return r.rec(r.inner.FMA(a, b, c)) }
func (r *recorder) Sqrt(a fp.Bits) fp.Bits     { return r.rec(r.inner.Sqrt(a)) }
func (r *recorder) Exp(a fp.Bits) fp.Bits      { return r.rec(r.inner.Exp(a)) }
func (r *recorder) FromFloat64(v float64) fp.Bits { return r.inner.FromFloat64(v) }
func (r *recorder) ToFloat64(b fp.Bits) float64   { return r.inner.ToFloat64(b) }

// compute executes the kernel once through a counting environment,
// yielding profile, golden output, and the per-operation result trace
// from a single fault-free run (fp.Counting and the recorder delegate
// arithmetic unchanged, so the counted run's output is bit-identical to
// kernels.GoldenWith's).
func compute(k kernels.Kernel, f fp.Format, wrap func(fp.Env) fp.Env) *Artifacts {
	in := k.Inputs(f)
	// Keep a pristine copy: the Kernel contract forbids Run from
	// mutating in, but artifacts outlive the process-local call and a
	// defensive copy is a one-time cost per configuration.
	pristine := make([][]fp.Bits, len(in))
	lens := make([]int, len(in))
	for i, arr := range in {
		pristine[i] = append([]fp.Bits(nil), arr...)
		lens[i] = len(arr)
	}

	rec := &recorder{inner: fp.NewMachine(f)}
	counting := fp.NewCounting(rec)
	var env fp.Env = counting
	if wrap != nil {
		env = wrap(env)
	}
	out := k.Run(env, in)
	counts := counting.Counts
	for _, arr := range in {
		counts.Loads += uint64(len(arr))
	}
	counts.Stores += uint64(len(out))

	results := rec.trace
	if counts.Total() > maxRecordedOps {
		results = nil // truncated trace: unusable for replay
	}

	return &Artifacts{
		Counts:  counts,
		golden:  out,
		decoded: kernels.Decode(f, out),
		inputs:  pristine,
		lens:    lens,
		results: results,
	}
}
