package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"mixedrel/internal/rng"
)

func TestForEachMatchesSequential(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		got := make([]int, len(want))
		if err := ForEach(workers, len(got), func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachReportsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 50, func(i int) error {
			if i == 7 || i == 33 {
				return fmt.Errorf("job %d: %w", i, boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		// Job 7 always runs (it is before 33 in claim order), so the
		// lowest-indexed error among jobs that ran is job 7's.
		if got := err.Error(); got != "job 7: boom" {
			t.Fatalf("workers=%d: err = %q, want job 7's", workers, got)
		}
	}
}

func TestForEachErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(1, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("sequential mode ran %d jobs after error at index 3, want 4", n)
	}
}

func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	old := MaxWorkers()
	SetMaxWorkers(3)
	defer SetMaxWorkers(old)

	var sum atomic.Int64
	err := ForEach(4, 8, func(i int) error {
		return ForEach(4, 8, func(j int) error {
			sum.Add(int64(i*8 + j))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Load(), int64(64*63/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestSampleSequentialIsSingleStream(t *testing.T) {
	const n, seed = 64, 12345
	want := make([]uint64, n)
	r := rng.New(seed)
	for i := range want {
		want[i] = r.Uint64()
	}
	got := make([]uint64, n)
	if err := Sample(1, n, seed, func(i int, r *rng.Rand) error {
		got[i] = r.Uint64()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d (single-stream order)", i, got[i], want[i])
		}
	}
}

func TestSampleParallelIndependentOfWorkerCount(t *testing.T) {
	const n, seed = 64, 999
	run := func(workers int) []uint64 {
		out := make([]uint64, n)
		if err := Sample(workers, n, seed, func(i int, r *rng.Rand) error {
			out[i] = r.Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(2), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample differs at %d: workers=2 gives %d, workers=8 gives %d", i, a[i], b[i])
		}
	}
}

func TestSetMaxWorkersFloor(t *testing.T) {
	old := MaxWorkers()
	defer SetMaxWorkers(old)
	SetMaxWorkers(-5)
	if got := MaxWorkers(); got != 1 {
		t.Fatalf("MaxWorkers after SetMaxWorkers(-5) = %d, want 1", got)
	}
}
