package exec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixedrel/internal/rng"
)

func TestGuardRecoversPanic(t *testing.T) {
	abort := Guard(func() { panic("kaboom") })
	if abort == nil {
		t.Fatal("panic not recovered")
	}
	if abort.Value != "kaboom" || abort.String() != "kaboom" {
		t.Errorf("abort value %v", abort.Value)
	}
	if abort.Stack == "" {
		t.Error("abort without a stack")
	}
	if abort := Guard(func() {}); abort != nil {
		t.Errorf("clean run aborted: %v", abort)
	}
}

func TestCheckpointEmptyPath(t *testing.T) {
	if _, err := (Checkpoint{}).Open(); err == nil {
		t.Error("empty checkpoint path accepted")
	}
}

func TestJournalRecordReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, err := Checkpoint{Path: path, Every: 2}.Open()
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		N int `json:"n"`
	}
	for i := 0; i < 5; i++ {
		if err := j.Record(i, rec{N: i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 5 {
		t.Errorf("journal holds %d records, want 5", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	j2, err := Checkpoint{Path: path}.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 {
		t.Fatalf("reloaded %d records, want 5", j2.Len())
	}
	for i := 0; i < 5; i++ {
		raw, ok := j2.Done(i)
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		var r rec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		if r.N != i*10 {
			t.Errorf("record %d holds %d, want %d", i, r.N, i*10)
		}
	}
}

// TestJournalTornTail: a crash mid-write leaves a torn final line; the
// reload must skip it, and appends must start on a fresh line.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	j, err := Checkpoint{Path: path, Every: 1}.Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a truncated record without a newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":3,"v":tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Checkpoint{Path: path, Every: 1}.Open()
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 {
		t.Fatalf("reloaded %d records, want 3 (torn tail skipped)", j2.Len())
	}
	if _, ok := j2.Done(3); ok {
		t.Error("torn record 3 resurrected")
	}
	if err := j2.Record(3, 42); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The re-recorded sample must parse on reload: the torn line was
	// newline-terminated before appending.
	j3, err := Checkpoint{Path: path}.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 4 {
		t.Fatalf("final reload has %d records, want 4", j3.Len())
	}
	raw, ok := j3.Done(3)
	if !ok || strings.TrimSpace(string(raw)) != "42" {
		t.Errorf("record 3 = %q, ok=%v, want 42", raw, ok)
	}
}

// TestSampleResumeStreamDerivation: every item's stream must equal
// rng.New(SampleSeed(seed, i)) regardless of worker count or skips, the
// property byte-identical resume rests on.
func TestSampleResumeStreamDerivation(t *testing.T) {
	const n, seed = 12, 99
	want := make([]uint64, n)
	for i := range want {
		want[i] = rng.New(SampleSeed(seed, i)).Uint64()
	}
	for _, workers := range []int{1, 3} {
		got := make([]uint64, n)
		err := SampleResume(workers, n, seed, nil, func(i int, r *rng.Rand) error {
			got[i] = r.Uint64()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d item %d drew %#x, want %#x", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSampleResumeSkips(t *testing.T) {
	const n, seed = 10, 7
	ran := make([]bool, n)
	err := SampleResume(1, n, seed, func(i int) bool { return i%2 == 0 }, func(i int, r *rng.Rand) error {
		ran[i] = true
		if want := rng.New(SampleSeed(seed, i)).Uint64(); r.Uint64() != want {
			t.Errorf("item %d stream depends on skipped items", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if r != (i%2 == 1) {
			t.Errorf("item %d ran=%v", i, r)
		}
	}
}
