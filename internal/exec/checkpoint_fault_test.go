package exec

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file tests the journal's failure policy through a scripted fake
// FS: transient errors retry, persistent errors degrade (never failing
// the campaign), short writes leave recoverable torn tails, and failed
// compactions fall back to appending. The richer randomized coverage
// lives in internal/chaos; these tests pin the exact policy edges.

var errScripted = errors.New("scripted I/O failure")

// fakeFS is an in-memory exec.FS whose next operations can be scripted
// to fail. Counters are guarded by mu; the journal serializes its I/O,
// so the scripting needs no more than that.
type fakeFS struct {
	mu    sync.Mutex
	files map[string][]byte
	// failWrites/failSyncs make the next N of each operation fail.
	failWrites, failSyncs int
	// shortWrites makes the next N writes land half their payload and
	// fail (a torn tail).
	shortWrites int
	// failCreates/failRenames script the compaction path.
	failCreates, failRenames int
	writes, syncs            int
}

func newFakeFS() *fakeFS { return &fakeFS{files: make(map[string][]byte)} }

func (m *fakeFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (m *fakeFS) MkdirAll(path string, perm os.FileMode) error { return nil }

func (m *fakeFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		m.files[path] = nil
	}
	return &fakeFile{fs: m, path: path}, nil
}

func (m *fakeFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failCreates > 0 {
		m.failCreates--
		return nil, errScripted
	}
	m.files[path] = nil
	return &fakeFile{fs: m, path: path}, nil
}

func (m *fakeFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failRenames > 0 {
		m.failRenames--
		return errScripted
	}
	b, ok := m.files[oldpath]
	if !ok {
		return os.ErrNotExist
	}
	m.files[newpath] = b
	delete(m.files, oldpath)
	return nil
}

func (m *fakeFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
	return nil
}

type fakeFile struct {
	fs   *fakeFS
	path string
}

func (f *fakeFile) Write(p []byte) (int, error) {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes++
	if m.shortWrites > 0 {
		m.shortWrites--
		n := len(p) / 2
		m.files[f.path] = append(m.files[f.path], p[:n]...)
		return n, fmt.Errorf("short write: %w", errScripted)
	}
	if m.failWrites > 0 {
		m.failWrites--
		return 0, errScripted
	}
	m.files[f.path] = append(m.files[f.path], p...)
	return len(p), nil
}

func (f *fakeFile) Sync() error {
	m := f.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs++
	if m.failSyncs > 0 {
		m.failSyncs--
		return errScripted
	}
	return nil
}

func (f *fakeFile) Close() error { return nil }

// openOn opens a journal on fs with a tight flush cadence, no backoff
// sleeps, and the given retry budget.
func openOn(t *testing.T, fs FS, retries int) *Journal {
	t.Helper()
	j, err := Checkpoint{Path: "j", Every: 1, Retries: retries, RetryBackoff: -1, FS: fs}.Open()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJournalRetriesTransientSyncFailure: two scripted sync failures
// are inside a 3-retry budget; the journal must not degrade and the
// record must be durable.
func TestJournalRetriesTransientSyncFailure(t *testing.T) {
	fs := newFakeFS()
	fs.failSyncs = 2
	j := openOn(t, fs, 3)
	if err := j.Record(0, "v"); err != nil {
		t.Fatal(err)
	}
	if deg, derr := j.Degraded(); deg {
		t.Fatalf("degraded on a transient failure: %v", derr)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openOn(t, fs, 0)
	defer j2.Close()
	if _, ok := j2.Done(0); !ok {
		t.Fatal("record lost despite successful retry")
	}
}

// TestJournalDegradesOnPersistentWriteFailure: failures outlasting the
// retry budget degrade the journal; Record and Close keep succeeding
// and the in-memory map stays complete.
func TestJournalDegradesOnPersistentWriteFailure(t *testing.T) {
	fs := newFakeFS()
	fs.failWrites = 1000
	j := openOn(t, fs, 2)
	for i := 0; i < 5; i++ {
		if err := j.Record(i, i); err != nil {
			t.Fatalf("Record(%d) after degrade: %v", i, err)
		}
	}
	deg, derr := j.Degraded()
	if !deg || !errors.Is(derr, errScripted) {
		t.Fatalf("degraded=%v err=%v", deg, derr)
	}
	for i := 0; i < 5; i++ {
		if _, ok := j.Done(i); !ok {
			t.Fatalf("in-memory record %d lost", i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close of a degraded journal: %v", err)
	}
	if fs.writes > 4 {
		// 1 attempt + 2 retries, then degraded: no further I/O.
		t.Fatalf("degraded journal kept writing (%d writes)", fs.writes)
	}
}

// TestJournalShortWriteRecovers: a short write tears a line; the retry
// newline-terminates and rewrites, and reload sees every record exactly
// once (duplicates collapse by index).
func TestJournalShortWriteRecovers(t *testing.T) {
	fs := newFakeFS()
	j := openOn(t, fs, 3)
	if err := j.Record(0, "first"); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.shortWrites = 1
	fs.mu.Unlock()
	if err := j.Record(1, "second"); err != nil {
		t.Fatal(err)
	}
	if deg, _ := j.Degraded(); deg {
		t.Fatal("degraded on a recoverable short write")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("j")
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("journal does not end on a line boundary: %q", data)
	}
	j2 := openOn(t, fs, 0)
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2 (journal: %q)", j2.Len(), data)
	}
	if raw, _ := j2.Done(1); string(raw) != `"second"` {
		t.Fatalf("record 1 = %s", raw)
	}
}

// TestJournalErrorThenRecover: a journal that degraded in one
// invocation resumes cleanly in the next (fresh handle, healthy disk):
// only the unsynced tail is lost, never previously durable records.
func TestJournalErrorThenRecover(t *testing.T) {
	fs := newFakeFS()
	j := openOn(t, fs, 0)
	if err := j.Record(0, "durable"); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.failWrites = 1000 // disk dies now
	fs.mu.Unlock()
	if err := j.Record(1, "lost"); err != nil {
		t.Fatal(err)
	}
	if deg, _ := j.Degraded(); !deg {
		t.Fatal("not degraded")
	}
	j.Close()

	fs.mu.Lock()
	fs.failWrites = 0 // disk recovers before the next invocation
	fs.mu.Unlock()
	j2 := openOn(t, fs, 0)
	if j2.Len() != 1 {
		t.Fatalf("resume sees %d records, want just the durable one", j2.Len())
	}
	if _, ok := j2.Done(0); !ok {
		t.Fatal("durable record lost")
	}
	if err := j2.Record(1, "rewritten"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if deg, _ := j2.Degraded(); deg {
		t.Fatal("fresh journal degraded on a healthy disk")
	}
	j3 := openOn(t, fs, 0)
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("final journal holds %d records, want 2", j3.Len())
	}
}

// TestJournalCompactionFailureFallsBack: damaged lines trigger
// compaction at Open; when the scratch create or the rename fails, the
// journal must still open and append to the original file.
func TestJournalCompactionFailureFallsBack(t *testing.T) {
	for _, tc := range []struct {
		name   string
		script func(*fakeFS)
	}{
		{"create-fails", func(m *fakeFS) { m.failCreates = 1 }},
		{"rename-fails", func(m *fakeFS) { m.failRenames = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFakeFS()
			fs.files["j"] = []byte(`{"i":0,"v":"ok"}` + "\n" + `{"i":1,"v":tor`)
			tc.script(fs)
			j := openOn(t, fs, 0)
			if j.Len() != 1 {
				t.Fatalf("loaded %d records", j.Len())
			}
			if err := j.Record(1, "redone"); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, ok := fs.files["j.compact"]; ok {
				t.Fatal("failed compaction left its scratch file")
			}
			j2 := openOn(t, fs, 0)
			defer j2.Close()
			if j2.Len() != 2 {
				t.Fatalf("reload after fallback: %d records", j2.Len())
			}
		})
	}
}

// TestJournalCompactionRewrites: a successful compaction drops the
// damaged line and leaves only whole records on disk.
func TestJournalCompactionRewrites(t *testing.T) {
	fs := newFakeFS()
	fs.files["j"] = []byte(`{"i":3,"v":7}` + "\n" + "garbage-line\n" + `{"i":1,"v":5}` + "\n")
	j := openOn(t, fs, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("j")
	want := `{"i":1,"v":5}` + "\n" + `{"i":3,"v":7}` + "\n"
	if string(data) != want {
		t.Fatalf("compacted journal:\n%q\nwant:\n%q", data, want)
	}
}

// TestJournalRetryBackoffSchedule: the sleeps between retries follow
// the doubling schedule off the configured base.
func TestJournalRetryBackoffSchedule(t *testing.T) {
	fs := newFakeFS()
	fs.failSyncs = 3
	j, err := Checkpoint{Path: "j", Every: 1, Retries: 3, RetryBackoff: time.Millisecond, FS: fs}.Open()
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	j.setSleep(func(d time.Duration) { slept = append(slept, d) })
	if err := j.Record(0, "v"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
	if deg, _ := j.Degraded(); deg {
		t.Fatal("degraded inside the retry budget")
	}
}
