package exec

import (
	"fmt"
	"runtime/debug"
)

// Abort is the diagnostic record of a panic recovered by Guard: a
// sample whose execution died inside the simulator instead of producing
// a classifiable outcome.
type Abort struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery. It is
	// diagnostic-only: stacks contain addresses and goroutine ids, so
	// they must never reach report tables or checkpoint journals, where
	// byte-identical reproduction is the contract.
	Stack string
}

// String renders the panic value without the nondeterministic stack.
func (a *Abort) String() string { return fmt.Sprint(a.Value) }

// Guard runs fn and converts a panic into an *Abort diagnostic (nil
// when fn returns normally). It is the ONLY recover point in the
// simulator — enforced by the panicsafety analyzer — so panic isolation
// stays a property of the execution engine instead of being scattered
// through campaign code, and a swallowed panic can never silently turn
// a simulator bug into a masked outcome.
func Guard(fn func()) (abort *Abort) {
	defer func() {
		if v := recover(); v != nil {
			mGuardPanics.Inc()
			abort = &Abort{Value: v, Stack: string(debug.Stack())}
		}
	}()
	fn()
	return nil
}
