package exec

import (
	"io"
	"os"
)

// FS is the checkpoint I/O seam: every filesystem operation the
// Checkpoint/Journal machinery performs goes through one of these
// methods. Production code always uses the package-os implementation
// (a nil Checkpoint.FS); the only other implementation lives in
// internal/chaos, which injects deterministic write/sync/rename
// failures for the soak harness. The chaos mixedrelvet analyzer proves
// that no production binary can link the fault-injecting layer — the
// seam exists so the journal's error handling can be exercised, not so
// callers can redirect campaign state.
type FS interface {
	// ReadFile loads the whole journal, returning os.ErrNotExist-
	// compatible errors for a journal that does not exist yet.
	ReadFile(path string) ([]byte, error)
	// MkdirAll creates the journal's parent directories.
	MkdirAll(path string, perm os.FileMode) error
	// OpenAppend opens path for appending, creating it if needed.
	OpenAppend(path string) (File, error)
	// Create truncates-or-creates path for writing (compaction scratch).
	Create(path string) (File, error)
	// Rename atomically replaces newpath with oldpath (journal
	// compaction commits through here).
	Rename(oldpath, newpath string) error
	// Remove deletes path (compaction scratch cleanup; best-effort).
	Remove(path string) error
}

// File is the journal's handle: sequential appends plus a durability
// barrier. A short write (n < len(p) with a non-nil error) may leave a
// torn tail on disk — exactly what a crash does — and the journal's
// retry path is designed to recover from it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the production FS, delegating straight to package os.
type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}
