package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mixedrel/internal/rng"
	"mixedrel/internal/telemetry"
)

// ErrPartial reports that a checkpointed campaign stopped before every
// sample was classified (an interruption, or a Checkpoint.Limit bound).
// Re-running the same campaign with the same checkpoint path resumes
// from the journal and — once all samples are present — produces a
// result byte-identical to an uninterrupted run.
var ErrPartial = errors.New("exec: campaign incomplete; re-run with the same checkpoint to resume")

// ErrInterrupted is the errors.Is target of *Interrupted: a campaign
// stopped by context cancellation after a graceful drain.
var ErrInterrupted = errors.New("exec: campaign interrupted")

// Interrupted reports a campaign that was cancelled (context done)
// after a graceful drain: in-flight samples finished, the checkpoint
// journal — when there was one — was flushed and synced, and nothing
// was left half-written. errors.Is(err, ErrInterrupted) matches it.
type Interrupted struct {
	// Journaled is the number of classified samples safely in the
	// journal at interruption, or -1 when the campaign had no
	// checkpoint (nothing to resume from).
	Journaled int
	// Cause is the context error that stopped the campaign
	// (context.Canceled or context.DeadlineExceeded).
	Cause error
}

func (e *Interrupted) Error() string {
	if e.Journaled < 0 {
		return fmt.Sprintf("exec: campaign interrupted (%v); no checkpoint to resume from", e.Cause)
	}
	return fmt.Sprintf("exec: campaign interrupted (%v); %d samples journaled, re-run with the same checkpoint to resume", e.Cause, e.Journaled)
}

func (e *Interrupted) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrInterrupted) true for any *Interrupted.
func (e *Interrupted) Is(target error) bool { return target == ErrInterrupted }

// DefaultRetries and DefaultRetryBackoff are the journal's transient
// I/O failure policy: a failed flush/sync is retried this many times,
// sleeping backoff, 2*backoff, 4*backoff ... between attempts, before
// the journal declares the failure persistent and degrades.
const (
	DefaultRetries      = 3
	DefaultRetryBackoff = 5 * time.Millisecond
)

// Checkpoint configures crash-tolerant, resumable campaign execution.
// A checkpointed campaign writes each classified sample to an
// append-only JSONL journal at Path; a later run with the same
// configuration skips journaled samples and fills in only the missing
// ones. Because every sample's random stream is derived from
// (seed, index) alone — never from which samples already ran — the
// final aggregate is byte-identical whether the campaign ran in one
// pass or was interrupted and resumed arbitrarily many times.
//
// Journal I/O failures are survivable: transient errors are retried
// with bounded backoff, and persistent failure (ENOSPC, a dead disk)
// flips the journal into degraded mode — checkpointing stops, loudly
// (telemetry counters, Journal.Degraded, the campaign result's
// CheckpointDegraded flag), but the campaign itself completes in
// memory rather than aborting.
type Checkpoint struct {
	// Path is the journal file. It is created on first use and appended
	// to on resume; delete it to restart a campaign from scratch.
	Path string
	// Every is the flush-and-sync cadence in samples (default 64). A
	// crash loses at most the unsynced tail; a torn final line is
	// detected and ignored on reload.
	Every int
	// Limit, when positive, bounds how many NEW samples this invocation
	// classifies before returning ErrPartial — a deterministic
	// interruption point, used by resume tests and incremental runs.
	Limit int
	// Retries bounds how many times a failed journal flush/sync is
	// retried before the journal degrades (0 = DefaultRetries;
	// negative = no retries).
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling on
	// each subsequent attempt (0 = DefaultRetryBackoff; negative = no
	// sleep, for harnesses that inject persistent failures on purpose).
	RetryBackoff time.Duration
	// FS overrides the filesystem the journal talks to (nil = the real
	// one). The only non-OS implementation is internal/chaos's
	// fault-injecting layer; the chaos analyzer keeps it out of
	// production binaries.
	FS FS
}

func (c Checkpoint) fs() FS {
	if c.FS != nil {
		return c.FS
	}
	return osFS{}
}

// Open loads the journal at c.Path (tolerating a torn tail line from a
// crashed writer) and opens it for appending. When damaged lines are
// found, the journal is first compacted: the surviving records are
// rewritten to a scratch file which is renamed over the original, so
// repeated crashes cannot accrete garbage. Compaction is best-effort —
// on any error the original journal is appended to as-is (damaged
// lines are skipped on every load anyway).
func (c Checkpoint) Open() (*Journal, error) {
	if c.Path == "" {
		return nil, fmt.Errorf("exec: checkpoint with empty path")
	}
	every := c.Every
	if every <= 0 {
		every = 64
	}
	retries := c.Retries
	switch {
	case retries == 0:
		retries = DefaultRetries
	case retries < 0:
		retries = 0
	}
	backoff := c.RetryBackoff
	switch {
	case backoff == 0:
		backoff = DefaultRetryBackoff
	case backoff < 0:
		backoff = 0
	}
	fsys := c.fs()
	if dir := filepath.Dir(c.Path); dir != "." {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	j := &Journal{
		fs: fsys, path: c.Path,
		done:    make(map[int]json.RawMessage),
		every:   every,
		retries: retries, backoff: backoff,
		sleep: time.Sleep,
	}
	data, err := fsys.ReadFile(c.Path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	damaged := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var jl journalLine
		if json.Unmarshal(line, &jl) != nil {
			// A torn line from a crash mid-write: the sample it would
			// have recorded simply re-runs on resume.
			damaged++
			continue
		}
		j.done[jl.I] = jl.V
	}
	compacted := false
	if damaged > 0 {
		compacted = j.compact()
	}
	f, err := fsys.OpenAppend(c.Path)
	if err != nil {
		return nil, err
	}
	j.f = f
	if !compacted && len(data) > 0 && data[len(data)-1] != '\n' {
		// A torn tail without a newline: terminate it on the first
		// flush so appended records start on their own line instead of
		// merging into the damaged one.
		j.needTerm = true
	}
	return j, nil
}

// journalLine is one journal record: sample index plus its encoded
// classified outcome.
type journalLine struct {
	I int             `json:"i"`
	V json.RawMessage `json:"v"`
}

// Journal is an append-only JSONL record of classified samples. It is
// safe for concurrent Record calls from campaign workers.
//
// I/O failure semantics: Record and Close never fail the campaign on
// I/O errors. A failed flush/sync is retried (bounded, with backoff);
// if the failure is persistent the journal degrades — the file handle
// is abandoned, subsequent records stay in memory only, and Degraded
// reports the state so campaigns can surface it. Degradation trades
// resumability for completion: the in-flight campaign still finishes
// and aggregates correctly, it just cannot crash-resume past the last
// durable record.
type Journal struct {
	mu   sync.Mutex
	fs   FS
	path string
	f    File
	// buf accumulates encoded lines between flushes; needTerm records
	// that the file may end mid-line (a torn tail from a crashed writer
	// or a short write), so the next flush starts with a newline.
	buf      []byte
	needTerm bool
	done     map[int]json.RawMessage
	pending  int
	every    int
	retries  int
	backoff  time.Duration
	sleep    func(time.Duration)
	closed   bool
	degraded bool
	degErr   error
}

// Done returns sample i's journaled outcome, if present.
func (j *Journal) Done(i int) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.done[i]
	return v, ok
}

// Len returns the number of journaled samples.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Degraded reports whether the journal abandoned persistence after a
// persistent I/O failure, and the error that tripped it.
func (j *Journal) Degraded() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded, j.degErr
}

// setSleep replaces the retry-backoff sleeper (test hook: the backoff
// schedule is asserted without waiting it out).
func (j *Journal) setSleep(fn func(time.Duration)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sleep = fn
}

// Record journals sample i's classified outcome, flushing and syncing
// every Every records so a crash loses at most the unsynced tail. It
// returns an error only for unencodable values; I/O failures go
// through the retry-then-degrade policy instead of failing the
// campaign.
func (j *Journal) Record(i int, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(journalLine{I: i, V: raw})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done[i] = raw
	mJournalRecords.Inc()
	if j.degraded {
		return nil
	}
	j.buf = append(j.buf, line...)
	j.buf = append(j.buf, '\n')
	j.pending++
	if j.pending >= j.every {
		j.pending = 0
		j.flushLocked()
	}
	return nil
}

// Close flushes, syncs, and closes the journal. Safe to call twice.
// Like Record, it absorbs I/O failure into degraded mode: callers that
// care inspect Degraded afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.degraded {
		return nil
	}
	j.flushLocked()
	if j.degraded {
		return nil
	}
	if err := j.f.Close(); err != nil {
		j.degradeLocked(err)
	}
	return nil
}

// flushLocked writes the buffered lines and syncs, retrying transient
// failures with exponential backoff and degrading the journal after
// persistent ones. The retry strategy is torn-tail aware: after any
// failed write the file may end mid-line, so the next attempt first
// emits a newline terminator and then rewrites the entire buffer.
// Records whose lines made it to disk before the tear are written
// twice — harmless, since reload keeps the last value per index and
// skips unparsable fragments.
func (j *Journal) flushLocked() {
	var err error
	for attempt := 0; attempt <= j.retries; attempt++ {
		if attempt > 0 {
			mJournalRetries.Inc()
			if j.backoff > 0 {
				j.sleep(j.backoff << (attempt - 1))
			}
		}
		if err = j.tryFlushLocked(); err == nil {
			return
		}
		mJournalIOErrors.Inc()
	}
	j.degradeLocked(err)
}

// tryFlushLocked is one write-and-sync attempt.
func (j *Journal) tryFlushLocked() error {
	if len(j.buf) > 0 || j.needTerm {
		payload := j.buf
		if j.needTerm {
			payload = make([]byte, 0, len(j.buf)+1)
			payload = append(payload, '\n')
			payload = append(payload, j.buf...)
		}
		n, err := j.f.Write(payload)
		if err != nil {
			if n > 0 {
				// A short write left a (possibly) torn tail; the next
				// attempt must start on a fresh line.
				j.needTerm = true
			}
			return err
		}
		j.buf = j.buf[:0]
		j.needTerm = false
	}
	start := telemetry.Clock()
	if err := j.f.Sync(); err != nil {
		return err
	}
	mJournalFsyncs.Inc()
	mJournalFsyncNs.ObserveSince(start)
	return nil
}

// degradeLocked abandons persistence: the file handle is closed
// (best-effort), buffered-but-unwritten lines are dropped from the
// write path (their records remain in the in-memory map, so the
// current invocation still aggregates them), and the journal reports
// itself degraded. Loud by design — the counter, the campaign result
// flag, and the CLI warning all hang off this state — but never fatal.
func (j *Journal) degradeLocked(err error) {
	if j.degraded {
		return
	}
	j.degraded = true
	j.degErr = err
	j.buf = nil
	mJournalDegraded.Inc()
	if j.f != nil {
		j.f.Close()
	}
}

// compact rewrites the surviving records to a scratch file and renames
// it over the journal, dropping damaged lines accumulated by earlier
// crashes. Records are written in ascending index order so the
// compacted journal's bytes are a pure function of its contents. Any
// failure leaves the original journal in place (reload skips damage
// anyway); reports success.
func (j *Journal) compact() bool {
	tmp := j.path + ".compact"
	f, err := j.fs.Create(tmp)
	if err != nil {
		mJournalCompactErrors.Inc()
		return false
	}
	keys := make([]int, 0, len(j.done))
	for i := range j.done {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	var buf []byte
	for _, i := range keys {
		line, err := json.Marshal(journalLine{I: i, V: j.done[i]})
		if err != nil {
			continue
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	write := func() error {
		if _, err := f.Write(buf); err != nil {
			return err
		}
		return f.Sync()
	}
	if err := write(); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		mJournalCompactErrors.Inc()
		return false
	}
	if err := f.Close(); err != nil {
		j.fs.Remove(tmp)
		mJournalCompactErrors.Inc()
		return false
	}
	// A kill between the record rewrite above and this rename leaves
	// only the orphan scratch file: the original journal is untouched
	// and the next Open simply compacts again.
	if err := j.fs.Rename(tmp, j.path); err != nil {
		j.fs.Remove(tmp)
		mJournalCompactErrors.Inc()
		return false
	}
	mJournalCompactions.Inc()
	return true
}

// SampleResume is the checkpointing variant of Sample: item i always
// draws its stream from the i-th output of a master stream seeded by
// seed — the parallel-mode derivation — REGARDLESS of workers, so a
// sample depends only on (seed, i) and never on which items a previous,
// interrupted invocation already completed. Items for which skip
// reports true are not run. This is why checkpointed campaigns resume
// byte-identically: re-running item i in a later process re-creates the
// exact stream it would have had in the first.
func SampleResume(workers, n int, seed uint64, skip func(i int) bool, fn func(i int, r *rng.Rand) error) error {
	return SampleResumeCtx(nil, workers, n, seed, skip, fn)
}

// SampleResumeCtx is SampleResume under a context: cancellation stops
// dispatching new items, lets in-flight items finish (so their journal
// records are whole), and returns ctx.Err(). Because item streams are
// (seed, i)-addressed, a cancelled invocation resumes exactly like a
// crashed one — minus the torn tail. A nil ctx is SampleResume.
func SampleResumeCtx(ctx context.Context, workers, n int, seed uint64, skip func(i int) bool, fn func(i int, r *rng.Rand) error) error {
	if n <= 0 {
		return nil
	}
	master := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	run := func(i int) error {
		if skip != nil && skip(i) {
			return nil
		}
		return fn(i, rng.New(seeds[i]))
	}
	if workers <= 1 {
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		for i := 0; i < n; i++ {
			if cancelled(done) {
				mCancelledJobs.Add(uint64(n - i))
				return ctx.Err()
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	return forEach(ctx, workers, n, run)
}

// SampleSeed returns the per-item stream seed item i receives in
// parallel and checkpointed sampling modes — enough to replay one
// sample in isolation (rng.New(SampleSeed(seed, i))).
func SampleSeed(seed uint64, i int) uint64 {
	r := rng.New(seed)
	var s uint64
	for k := 0; k <= i; k++ {
		s = r.Uint64()
	}
	return s
}

// stratumRoot decorrelates the stratified seed chain from the flat
// per-sample chain: it is the splitmix64 golden-ratio increment, so a
// campaign seed's stratified streams never coincide with the streams
// the same seed produces under uniform (seed, index) addressing.
const stratumRoot = 0x9e3779b97f4a7c15

// StratumSeed derives the random-stream root of one stratum of a
// stratified campaign. Sample j of stratum h then draws its private
// stream from the j-th output of rng.New(StratumSeed(seed, h)) — the
// (seed, stratum, index) analogue of SampleSeed's (seed, index)
// addressing, with the same resume property: a sample's stream depends
// only on its address, never on which samples already ran, on worker
// count, or on how the adaptive allocator reached it.
func StratumSeed(seed uint64, stratum int) uint64 {
	return SampleSeed(seed^stratumRoot, stratum)
}

// SampleKey packs a (stratum, index) address into the journal's flat
// integer key space: stratified campaigns record sample (h, j) under
// key h<<32 | j. It panics when either coordinate leaves its 31/32-bit
// field — far beyond any real campaign, but an overflow here would
// silently alias journal records.
func SampleKey(stratum, index int) int {
	if stratum < 0 || index < 0 || stratum >= 1<<31 || index >= 1<<32 {
		panic(fmt.Sprintf("exec: sample key (%d, %d) out of range", stratum, index))
	}
	return stratum<<32 | index
}
