package exec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mixedrel/internal/rng"
	"mixedrel/internal/telemetry"
)

// ErrPartial reports that a checkpointed campaign stopped before every
// sample was classified (an interruption, or a Checkpoint.Limit bound).
// Re-running the same campaign with the same checkpoint path resumes
// from the journal and — once all samples are present — produces a
// result byte-identical to an uninterrupted run.
var ErrPartial = errors.New("exec: campaign incomplete; re-run with the same checkpoint to resume")

// Checkpoint configures crash-tolerant, resumable campaign execution.
// A checkpointed campaign writes each classified sample to an
// append-only JSONL journal at Path; a later run with the same
// configuration skips journaled samples and fills in only the missing
// ones. Because every sample's random stream is derived from
// (seed, index) alone — never from which samples already ran — the
// final aggregate is byte-identical whether the campaign ran in one
// pass or was interrupted and resumed arbitrarily many times.
type Checkpoint struct {
	// Path is the journal file. It is created on first use and appended
	// to on resume; delete it to restart a campaign from scratch.
	Path string
	// Every is the flush-and-sync cadence in samples (default 64). A
	// crash loses at most the unsynced tail; a torn final line is
	// detected and ignored on reload.
	Every int
	// Limit, when positive, bounds how many NEW samples this invocation
	// classifies before returning ErrPartial — a deterministic
	// interruption point, used by resume tests and incremental runs.
	Limit int
}

// Open loads the journal at c.Path (tolerating a torn tail line from a
// crashed writer) and opens it for appending.
func (c Checkpoint) Open() (*Journal, error) {
	if c.Path == "" {
		return nil, fmt.Errorf("exec: checkpoint with empty path")
	}
	every := c.Every
	if every <= 0 {
		every = 64
	}
	if dir := filepath.Dir(c.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	j := &Journal{done: make(map[int]json.RawMessage), every: every}
	data, err := os.ReadFile(c.Path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var jl journalLine
		if json.Unmarshal(line, &jl) != nil {
			// A torn line from a crash mid-write: the sample it would
			// have recorded simply re-runs on resume.
			continue
		}
		j.done[jl.I] = jl.V
	}
	f, err := os.OpenFile(c.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		// Terminate a torn tail so appended records start on their own
		// line instead of merging into the damaged one.
		if _, err := j.w.WriteString("\n"); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// journalLine is one journal record: sample index plus its encoded
// classified outcome.
type journalLine struct {
	I int             `json:"i"`
	V json.RawMessage `json:"v"`
}

// Journal is an append-only JSONL record of classified samples. It is
// safe for concurrent Record calls from campaign workers.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	done    map[int]json.RawMessage
	pending int
	every   int
	closed  bool
}

// Done returns sample i's journaled outcome, if present.
func (j *Journal) Done(i int) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.done[i]
	return v, ok
}

// Len returns the number of journaled samples.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record journals sample i's classified outcome, flushing and syncing
// every Every records so a crash loses at most the unsynced tail.
func (j *Journal) Record(i int, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(journalLine{I: i, V: raw})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done[i] = raw
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	mJournalRecords.Inc()
	j.pending++
	if j.pending >= j.every {
		j.pending = 0
		if err := j.w.Flush(); err != nil {
			return err
		}
		start := telemetry.Clock()
		err := j.f.Sync()
		mJournalFsyncs.Inc()
		mJournalFsyncNs.ObserveSince(start)
		return err
	}
	return nil
}

// Close flushes, syncs, and closes the journal. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// SampleResume is the checkpointing variant of Sample: item i always
// draws its stream from the i-th output of a master stream seeded by
// seed — the parallel-mode derivation — REGARDLESS of workers, so a
// sample depends only on (seed, i) and never on which items a previous,
// interrupted invocation already completed. Items for which skip
// reports true are not run. This is why checkpointed campaigns resume
// byte-identically: re-running item i in a later process re-creates the
// exact stream it would have had in the first.
func SampleResume(workers, n int, seed uint64, skip func(i int) bool, fn func(i int, r *rng.Rand) error) error {
	if n <= 0 {
		return nil
	}
	master := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	run := func(i int) error {
		if skip != nil && skip(i) {
			return nil
		}
		return fn(i, rng.New(seeds[i]))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	return ForEach(workers, n, run)
}

// SampleSeed returns the per-item stream seed item i receives in
// parallel and checkpointed sampling modes — enough to replay one
// sample in isolation (rng.New(SampleSeed(seed, i))).
func SampleSeed(seed uint64, i int) uint64 {
	r := rng.New(seed)
	var s uint64
	for k := 0; k <= i; k++ {
		s = r.Uint64()
	}
	return s
}

// stratumRoot decorrelates the stratified seed chain from the flat
// per-sample chain: it is the splitmix64 golden-ratio increment, so a
// campaign seed's stratified streams never coincide with the streams
// the same seed produces under uniform (seed, index) addressing.
const stratumRoot = 0x9e3779b97f4a7c15

// StratumSeed derives the random-stream root of one stratum of a
// stratified campaign. Sample j of stratum h then draws its private
// stream from the j-th output of rng.New(StratumSeed(seed, h)) — the
// (seed, stratum, index) analogue of SampleSeed's (seed, index)
// addressing, with the same resume property: a sample's stream depends
// only on its address, never on which samples already ran, on worker
// count, or on how the adaptive allocator reached it.
func StratumSeed(seed uint64, stratum int) uint64 {
	return SampleSeed(seed^stratumRoot, stratum)
}

// SampleKey packs a (stratum, index) address into the journal's flat
// integer key space: stratified campaigns record sample (h, j) under
// key h<<32 | j. It panics when either coordinate leaves its 31/32-bit
// field — far beyond any real campaign, but an overflow here would
// silently alias journal records.
func SampleKey(stratum, index int) int {
	if stratum < 0 || index < 0 || stratum >= 1<<31 || index >= 1<<32 {
		panic(fmt.Sprintf("exec: sample key (%d, %d) out of range", stratum, index))
	}
	return stratum<<32 | index
}
