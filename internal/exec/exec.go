// Package exec is the campaign execution engine: a shared bounded
// scheduler for cross-configuration parallelism plus a process-wide memo
// cache of fault-free campaign artifacts (golden outputs, operation
// profiles, pristine encoded inputs).
//
// Determinism is the organizing constraint. Every parallel construct in
// this package is designed so that results are bitwise-identical to the
// sequential order of the same work:
//
//   - ForEach runs index-addressed jobs; callers store job i's result in
//     slot i, so assembly order never depends on scheduling.
//   - Sample derives the random stream for each item from the campaign
//     seed alone (never from goroutine interleaving). Sequential mode
//     (workers <= 1) threads one stream through all items — the seed
//     repo's historical sampling — while parallel mode gives item i the
//     stream seeded by the i-th draw of a master stream. Which mode runs
//     is decided purely by the workers parameter, never by pool
//     occupancy, so a given (workers, seed) pair always produces the
//     same sample.
//
// The scheduler is a single process-wide token pool rather than
// per-call-site worker counts, so nested fan-out (experiments over
// configurations over trials) cannot multiply into unbounded goroutines:
// a worker that cannot get a token simply runs jobs inline on its own
// goroutine.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mixedrel/internal/rng"
)

var (
	poolMu   sync.Mutex
	poolSize = runtime.GOMAXPROCS(0)
	// tokens gates helper goroutines across every concurrent ForEach in
	// the process. Capacity is poolSize-1: the caller's goroutine always
	// counts as one worker, so total parallelism stays <= poolSize.
	tokens = make(chan struct{}, helperCap(runtime.GOMAXPROCS(0)))
)

func helperCap(n int) int {
	if n < 1 {
		return 0
	}
	return n - 1
}

// MaxWorkers returns the process-wide parallelism bound.
func MaxWorkers() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolSize
}

// SetMaxWorkers bounds total parallelism across all concurrent ForEach
// calls to n goroutines (minimum 1, i.e. fully sequential). It replaces
// the token pool, so it should be called at startup or between runs, not
// while work is in flight (in-flight helpers drain against the pool they
// were acquired from).
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 1
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	poolSize = n
	tokens = make(chan struct{}, helperCap(n))
}

// acquireToken claims one helper slot if any is free. It returns the
// pool the token must be released to (the pool may be swapped by
// SetMaxWorkers between acquire and release).
func acquireToken() (chan struct{}, bool) {
	poolMu.Lock()
	t := tokens
	poolMu.Unlock()
	select {
	case t <- struct{}{}:
		return t, true
	default:
		mHelpersDenied.Inc()
		return nil, false
	}
}

// ForEach runs fn(0..n-1), using up to workers goroutines (the caller
// plus up to workers-1 helpers, subject to the process-wide token pool).
// workers <= 1 runs inline. On error, remaining unstarted jobs are
// cancelled (in-flight jobs run to completion) and the lowest-indexed
// error among jobs that ran is returned. fn must be safe for concurrent
// invocation when workers > 1.
func ForEach(workers, n int, fn func(i int) error) error {
	return forEach(nil, workers, n, fn)
}

// ForEachCtx is ForEach under a context: once ctx is done, no new job
// starts — in-flight jobs drain to completion, so every job either ran
// fully or not at all — and ctx.Err() is returned (job errors that
// happened before cancellation win). A nil ctx is ForEach. The
// cancellation check is a non-blocking channel read per job dispatch,
// nothing per-operation, so campaigns pay for cancellability only at
// sample granularity.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return forEach(ctx, workers, n, fn)
}

// cancelled is the non-blocking poll of a context's done channel.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ran := 0
		for i := 0; i < n; i++ {
			if cancelled(done) {
				mJobs.Add(uint64(ran))
				mCancelledJobs.Add(uint64(n - i))
				return ctx.Err()
			}
			ran++
			if err := fn(i); err != nil {
				mJobs.Add(uint64(ran))
				return err
			}
		}
		mJobs.Add(uint64(ran))
		return nil
	}

	var (
		next     atomic.Int64
		ranTotal atomic.Int64
		stop     atomic.Bool
		ctxStop  atomic.Bool
		errMu    sync.Mutex
		errIdx   = n
		firstErr error
	)
	next.Store(-1)
	worker := func() {
		// Job counting is batched per worker: one atomic add at exit
		// instead of one per job, so instrumentation cost stays off the
		// per-sample path.
		ran := 0
		defer func() {
			mJobs.Add(uint64(ran))
			ranTotal.Add(int64(ran))
		}()
		for !stop.Load() {
			if cancelled(done) {
				ctxStop.Store(true)
				stop.Store(true)
				return
			}
			i := int(next.Add(1))
			if i >= n {
				return
			}
			ran++
			if err := fn(i); err != nil {
				errMu.Lock()
				if i < errIdx {
					errIdx, firstErr = i, err
				}
				errMu.Unlock()
				stop.Store(true)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for h := 0; h < workers-1; h++ {
		pool, ok := acquireToken()
		if !ok {
			break // pool exhausted: the caller still runs everything
		}
		wg.Add(1)
		mHelpers.Add(1)
		go func() {
			defer func() {
				mHelpers.Add(-1)
				<-pool
				wg.Done()
			}()
			worker()
		}()
	}
	worker()
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if ctxStop.Load() {
		if skipped := int64(n) - ranTotal.Load(); skipped > 0 {
			mCancelledJobs.Add(uint64(skipped))
		}
		return ctx.Err()
	}
	return nil
}

// Sample runs fn(0..n-1), handing each call a deterministic random
// stream derived from seed. With workers <= 1 a single stream threads
// through all items in order (the historical sequential sampling); with
// workers > 1 item i gets its own stream seeded by the i-th draw of a
// master stream — deterministic in seed and independent of scheduling,
// but a different (equally valid) sample than sequential mode. The mode
// depends only on workers, never on pool occupancy.
func Sample(workers, n int, seed uint64, fn func(i int, r *rng.Rand) error) error {
	return SampleCtx(nil, workers, n, seed, fn)
}

// SampleCtx is Sample under a context: cancellation stops dispatching
// new items (in-flight items drain) and returns ctx.Err(). The
// sequential single-stream mode cannot resume a half-threaded stream,
// so an interrupted sequential sample is simply abandoned — campaigns
// that need resumable interruption checkpoint with per-item streams
// (SampleResumeCtx). A nil ctx is Sample.
func SampleCtx(ctx context.Context, workers, n int, seed uint64, fn func(i int, r *rng.Rand) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			if cancelled(done) {
				mCancelledJobs.Add(uint64(n - i))
				return ctx.Err()
			}
			if err := fn(i, r); err != nil {
				return err
			}
		}
		return nil
	}
	master := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return forEach(ctx, workers, n, func(i int) error {
		return fn(i, rng.New(seeds[i]))
	})
}
