// Package analysis is a self-contained static-analysis framework for the
// repo-specific invariant checkers under internal/analysis/... and the
// cmd/mixedrelvet multichecker.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, Reportf) so the analyzers could be ported to the real
// framework by changing imports, but the driver is built entirely on the
// standard library (go/parser + go/types + the "source" importer): the
// build environment has no module proxy access, and the invariants these
// analyzers enforce are too important to leave contingent on a network
// fetch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections.
	Name string
	// Doc is a one-paragraph description of the enforced invariant. The
	// first line is used as a summary.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// violations through pass.Report. The returned value is unused by the
	// driver (kept for go/analysis signature compatibility).
	Run func(*Pass) (interface{}, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path as resolved by the loader
	// ("mixedrel/internal/fp", or a testdata-relative path under
	// analysistest).
	Path string
	Fset *token.FileSet
	// Files holds the package's parsed files, including in-package
	// _test.go files when the loader was asked for them.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Every analyzer
// in the suite restricts itself to non-test code: tests legitimately use
// native floats, wall clocks, goroutines and raw bit patterns to check
// the deterministic core from outside.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// allowDirective is the comment escape hatch: a declaration or statement
// preceded by
//
//	//mixedrelvet:allow <analyzer-name> [reason]
//
// is exempt from that analyzer. The reason is free text; requiring the
// analyzer name keeps one exemption from silencing the whole suite.
const allowDirective = "//mixedrelvet:allow"

// Allowed reports whether node (or a comment group attached to it via
// file comment maps built lazily per pass) carries an allow directive for
// this pass's analyzer. Directives are matched against the comment group
// immediately preceding the node's line.
func (p *Pass) Allowed(file *ast.File, node ast.Node) bool {
	if node == nil {
		return false
	}
	nodeLine := p.Fset.Position(node.Pos()).Line
	for _, cg := range file.Comments {
		endLine := p.Fset.Position(cg.End()).Line
		if endLine != nodeLine-1 && endLine != nodeLine {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
			if name, _, _ := strings.Cut(rest, " "); name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to each package and returns the
// collected diagnostics sorted by position. Analyzer run errors are
// returned after all packages have been attempted.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	var errs []string
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, pkg.Path, err))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if len(errs) > 0 {
		return findings, fmt.Errorf("analyzer errors:\n  %s", strings.Join(errs, "\n  "))
	}
	return findings, nil
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Named unwraps t to a *types.Named, looking through pointers but not
// through other composites. Returns nil if t is not (a pointer to) a
// named type.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsPkgType reports whether t is (a pointer to) a named type called
// typeName declared in a package whose *name* is pkgName. Matching by
// package name rather than full import path keeps the analyzers testable
// under analysistest, where stand-in packages live at short fake import
// paths; no two packages in this repository share a name.
func IsPkgType(t types.Type, pkgName, typeName string) bool {
	n := Named(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// CalleeFunc resolves the called function or method of call, or nil for
// indirect calls through non-constant function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
