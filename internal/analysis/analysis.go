// Package analysis is a self-contained static-analysis framework for the
// repo-specific invariant checkers under internal/analysis/... and the
// cmd/mixedrelvet multichecker.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, Facts, Requires) so the analyzers could be ported to
// the real framework by changing imports, but the driver is built
// entirely on the standard library (go/parser + go/types + the "source"
// importer): the build environment has no module proxy access, and the
// invariants these analyzers enforce are too important to leave
// contingent on a network fetch.
//
// Beyond the per-package model of the original framework, the driver is
// an interprocedural fact engine:
//
//   - analyzers export typed Facts on functions, types and packages
//     (e.g. softfloat.UsesNativeFloat, determinism.NondetSource,
//     hotalloc.Allocates, compiledreplay.ConsumesTrace);
//   - packages are analyzed in topological import order, so a pass sees
//     the facts of everything it imports — taint propagates through
//     helpers in any package, not just the one under analysis;
//   - once-computed per-package artifacts (the AST inspector, the
//     intra-package call graph) are shared between analyzers through
//     Requires;
//   - import-independent packages run in parallel under the repo's own
//     bounded scheduler (exec.ForEach), with diagnostics sorted into a
//     byte-identical order at any worker count;
//   - per-package results (diagnostics and facts) are memoized in an
//     on-disk cache keyed by a content hash of the package's sources,
//     its dependencies' keys, and the analyzer fingerprint, so a warm
//     run re-analyzes nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections.
	Name string
	// Doc is a one-paragraph description of the enforced invariant. The
	// first line is used as a summary.
	Doc string
	// Version participates in the result-cache key: bump it whenever the
	// analyzer's logic changes so stale cached diagnostics and facts are
	// invalidated.
	Version int
	// Requires lists analyzers whose results this analyzer consumes via
	// Pass.ResultOf. They run first on the same package. Used for shared
	// per-package artifacts (inspect.Analyzer, callgraph.Analyzer).
	Requires []*Analyzer
	// FactTypes lists prototype values (pointers to the concrete fact
	// structs) for every fact type the analyzer exports. Facts of
	// unlisted types cannot be exported, cached, or decoded.
	FactTypes []Fact
	// Run applies the analyzer to one type-checked package, reporting
	// violations through pass.Report and exporting facts through
	// pass.ExportObjectFact / pass.ExportPackageFact. The returned value
	// is stored in Pass.ResultOf for analyzers that Require this one.
	Run func(*Pass) (interface{}, error)
}

// Fact is a typed, serializable datum an analyzer attaches to a function,
// type, or package, visible to later passes over importing packages.
// Implementations must be pointers to JSON-(de)serializable structs and
// should implement fmt.Stringer for fact assertions in analysistest.
type Fact interface{ AFact() }

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path as resolved by the loader
	// ("mixedrel/internal/fp", or a testdata-relative path under
	// analysistest).
	Path string
	Fset *token.FileSet
	// Files holds the package's parsed files, including in-package
	// _test.go files when the loader was asked for them.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// ResultOf holds the results of the analyzers named in
	// Analyzer.Requires, keyed by analyzer.
	ResultOf map[*Analyzer]interface{}

	// facts is the driver's fact accessor; directives the package's
	// parsed //mixedrelvet: comments. Both are populated by the driver.
	facts      *factAccess
	directives *directiveSet
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Every analyzer
// in the suite restricts itself to non-test code: tests legitimately use
// native floats, wall clocks, goroutines and raw bit patterns to check
// the deterministic core from outside.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Allowed reports whether node carries (or is covered by) an allow
// directive for this pass's analyzer:
//
//	//mixedrelvet:allow <analyzer-name> [reason]
//
// on the line of the node or the line above it. A matched directive is
// recorded as used; the driver reports directives that no analyzer ever
// matched, so stale exemptions surface as diagnostics instead of
// silently outliving the code they excused.
func (p *Pass) Allowed(file *ast.File, node ast.Node) bool {
	if node == nil || p.directives == nil {
		return false
	}
	return p.directives.allowed(p.Fset, file, node, p.Analyzer.Name)
}

// HotPath reports whether the declaration carries a
// //mixedrelvet:hotpath directive, marking it as a root whose transitive
// callees the hotalloc analyzer proves allocation-free. Matched
// directives are recorded as used.
func (p *Pass) HotPath(file *ast.File, node ast.Node) bool {
	if node == nil || p.directives == nil {
		return false
	}
	return p.directives.hotPath(p.Fset, file, node)
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. The fact becomes visible to this analyzer's passes over
// every package that (transitively) imports this one.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.facts.export(p, obj, fact)
}

// ImportObjectFact copies the fact of the receiver's type attached to obj
// into fact (a pointer), reporting whether one was found. obj may belong
// to any already-analyzed package, including the one under analysis.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.importObject(p.Analyzer.Name, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.exportPackage(p, fact)
}

// ImportPackageFact copies the package fact of the receiver's type
// attached to pkg into fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	return p.facts.importPackage(p.Analyzer.Name, pkg.Path(), fact)
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// lessFinding orders findings by position then analyzer: the canonical,
// scheduling-independent output order.
func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// Named unwraps t to a *types.Named, looking through pointers but not
// through other composites. Returns nil if t is not (a pointer to) a
// named type.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsPkgType reports whether t is (a pointer to) a named type called
// typeName declared in a package whose *name* is pkgName. Matching by
// package name rather than full import path keeps the analyzers testable
// under analysistest, where stand-in packages live at short fake import
// paths; no two packages in this repository share a name.
func IsPkgType(t types.Type, pkgName, typeName string) bool {
	n := Named(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// CalleeFunc resolves the called function or method of call, or nil for
// indirect calls through non-constant function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncShortName renders a function as Name or (Recv).Name without
// package qualification, the form used in diagnostics.
func FuncShortName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		q := func(*types.Package) string { return "" }
		return "(" + types.TypeString(sig.Recv().Type(), q) + ")." + fn.Name()
	}
	return fn.Name()
}
