package boundedgo_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/boundedgo"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), boundedgo.Analyzer, "b", "internal/exec")
}
