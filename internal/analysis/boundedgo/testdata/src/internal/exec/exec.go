// Package exec stands in for the real scheduler package at the exempt
// import path: the one place goroutines may be launched.
package exec

func forEach(n int, job func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			job(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// ForEach is the exported entry point of the stand-in.
func ForEach(n int, job func(int)) { forEach(n, job) }
