package b

// Tests race goroutines against the deterministic core from outside;
// _test.go files are exempt.
func hammer(f func(), n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			f()
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
