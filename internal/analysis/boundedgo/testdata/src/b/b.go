// Package b launches goroutines outside the scheduler package.
package b

import "sync"

func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() { // want `go statement outside internal/exec escapes the bounded deterministic scheduler`
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want `go statement outside internal/exec escapes the bounded deterministic scheduler`
}

// drainStdin is the kind of OS-boundary helper the directive exists for:
// a reader goroutine that never touches campaign state.
func drainStdin(read func() bool) {
	//mixedrelvet:allow boundedgo OS-boundary reader, touches no campaign state
	go func() {
		for read() {
		}
	}()
}
