// Package boundedgo forbids `go` statements outside internal/exec.
//
// PR 1 centralized all concurrency in the campaign execution engine: a
// single process-wide token pool bounds total parallelism, and the
// engine's constructs (ForEach, Sample) are built so parallel results
// are bitwise-identical to sequential execution. A goroutine launched
// anywhere else escapes both guarantees — it is invisible to the worker
// bound (nested fan-out can multiply goroutines unboundedly) and its
// interleaving can order side effects nondeterministically. Packages
// wanting concurrency must express the work as exec scheduler jobs.
//
// Test files are exempt: tests drive the deterministic core from outside
// and legitimately race goroutines against it (e.g. the race-detector
// suites).
package boundedgo

import (
	"go/ast"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// Analyzer is the boundedgo invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:     "boundedgo",
	Doc:      "forbid go statements outside internal/exec; all concurrency runs under the bounded deterministic scheduler",
	Version:  1,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Path == "internal/exec" || strings.HasSuffix(pass.Path, "/internal/exec") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	ins.WithStack([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		g := n.(*ast.GoStmt)
		for _, anc := range stack {
			if pass.Allowed(file, anc) {
				return true
			}
		}
		pass.Reportf(g.Go, "go statement outside internal/exec escapes the bounded deterministic scheduler; use exec.ForEach or exec.Sample")
		return true
	})
	return nil, nil
}
