// Package suite is the canonical registry of the mixedrelvet analyzer
// suite. cmd/mixedrelvet runs it; analysistest and the driver use its
// name list to validate //mixedrelvet:allow directives, so a restricted
// run (-only, or a single analyzer under test) still knows the full set
// of legal analyzer names.
package suite

import (
	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/batchops"
	"mixedrel/internal/analysis/bitsops"
	"mixedrel/internal/analysis/boundedgo"
	"mixedrel/internal/analysis/chaos"
	"mixedrel/internal/analysis/compiledreplay"
	"mixedrel/internal/analysis/determinism"
	"mixedrel/internal/analysis/hotalloc"
	"mixedrel/internal/analysis/panicsafety"
	"mixedrel/internal/analysis/softfloat"
	"mixedrel/internal/analysis/telemetry"
)

// Analyzers returns the full suite in canonical (name-sorted) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		batchops.Analyzer,
		bitsops.Analyzer,
		boundedgo.Analyzer,
		chaos.Analyzer,
		compiledreplay.Analyzer,
		determinism.Analyzer,
		hotalloc.Analyzer,
		panicsafety.Analyzer,
		softfloat.Analyzer,
		telemetry.Analyzer,
	}
}

// Names returns the names of the full suite, the legal targets of a
// //mixedrelvet:allow directive.
func Names() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
