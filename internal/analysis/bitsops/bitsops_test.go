package bitsops_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/bitsops"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), bitsops.Analyzer, "fp", "use")
}
