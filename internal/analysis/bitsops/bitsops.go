// Package bitsops flags arithmetic and ordered-comparison operators
// applied directly to fp.Bits values outside the fp package.
//
// fp.Bits is an integer type carrying a raw IEEE-754 encoding, so
// `a + b`, `a < b`, `a * 2` all compile — and are all numerically
// meaningless: integer addition of two encodings is not float addition,
// and unsigned comparison mis-orders any pair with a negative member.
// Real numeric work must go through fp.Env (arithmetic) or fp.Format
// (decode, FlipBit, field masks). Inside package fp the raw encoding is
// the point, so the defining package is exempt; everywhere else only
// `==` and `!=` remain legal, because bit-pattern equality is exactly
// what golden comparison means.
package bitsops

import (
	"go/ast"
	"go/token"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// Analyzer is the bitsops invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:     "bitsops",
	Doc:      "flag arithmetic/comparison operators on fp.Bits outside package fp; bit-pattern math is not IEEE math",
	Version:  1,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "fp" {
		// The soft-float implementation manipulates encodings by design.
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	types := []ast.Node{(*ast.BinaryExpr)(nil), (*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil), (*ast.UnaryExpr)(nil)}
	ins.WithStack(types, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if !flaggedOp(e.Op) || isConst(pass, e) {
				return true
			}
			if isBits(pass, e.X) || isBits(pass, e.Y) {
				reportNode(pass, file, stack, e.OpPos, e.Op)
			}
		case *ast.AssignStmt:
			if op, ok := flaggedAssign(e.Tok); ok && len(e.Lhs) == 1 && isBits(pass, e.Lhs[0]) {
				reportNode(pass, file, stack, e.TokPos, op)
			}
		case *ast.IncDecStmt:
			if isBits(pass, e.X) {
				reportNode(pass, file, stack, e.TokPos, e.Tok)
			}
		case *ast.UnaryExpr:
			// ^b and -b on an encoding are as meaningless as the
			// binary forms.
			if (e.Op == token.XOR || e.Op == token.SUB) && !isConst(pass, e) && isBits(pass, e.X) {
				reportNode(pass, file, stack, e.OpPos, e.Op)
			}
		}
		return true
	})
	return nil, nil
}

// reportNode reports unless an enclosing statement or declaration on the
// stack carries the allow directive.
func reportNode(pass *analysis.Pass, file *ast.File, stack []ast.Node, pos token.Pos, op token.Token) {
	for _, n := range stack {
		if pass.Allowed(file, n) {
			return
		}
	}
	pass.Reportf(pos, "operator %q on fp.Bits treats an IEEE-754 encoding as an integer; use fp.Env arithmetic or fp.Format bit helpers", op.String())
}

func isBits(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return analysis.IsPkgType(tv.Type, "fp", "Bits")
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func flaggedOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT,
		token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func flaggedAssign(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	}
	return 0, false
}
