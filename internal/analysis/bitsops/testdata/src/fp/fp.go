// Package fp is a stand-in for mixedrel/internal/fp. The defining
// package manipulates encodings by design, so nothing in this file is
// flagged even though it uses every operator the analyzer forbids
// elsewhere.
package fp

type Bits uint64

type Format int

func (f Format) FlipBit(b Bits, i int) Bits { return b ^ (1 << uint(i)) }

func (f Format) mantMask() Bits { return 1<<10 - 1 }

// Mantissa exercises in-package operator use: exempt.
func (f Format) Mantissa(b Bits) Bits { return b & f.mantMask() }

// Succ exercises in-package arithmetic: exempt.
func Succ(b Bits) Bits { return b + 1 }
