package use

import "fp"

// Tests probe encodings directly (bit flips, adjacency scans); operator
// use on fp.Bits in _test.go files is exempt.
func flipAll(b fp.Bits) fp.Bits {
	for i := 0; i < 16; i++ {
		b = b ^ (1 << uint(i))
	}
	return b + 1
}
