// Package use applies operators to fp.Bits outside the defining package;
// everything but == and != is bit-pattern arithmetic and gets flagged.
package use

import "fp"

// mask is a typed constant: constant-folded expressions are compile-time
// encodings (masks, sentinels), not dynamic arithmetic, and stay legal.
const mask = fp.Bits(1)<<15 - 1

func bad(a, b fp.Bits) {
	_ = a + b  // want `operator "\+" on fp\.Bits`
	_ = a - b  // want `operator "-" on fp\.Bits`
	_ = a * b  // want `operator "\*" on fp\.Bits`
	_ = a / b  // want `operator "/" on fp\.Bits`
	_ = a < b  // want `operator "<" on fp\.Bits`
	_ = a >= b // want `operator ">=" on fp\.Bits`
	_ = a << 2 // want `operator "<<" on fp\.Bits`
	_ = a & b  // want `operator "&" on fp\.Bits`
	_ = a | b  // want `operator "\|" on fp\.Bits`
	_ = a ^ b  // want `operator "\^" on fp\.Bits`
	_ = ^a     // want `operator "\^" on fp\.Bits`
	a += b     // want `operator "\+" on fp\.Bits`
	a >>= 1    // want `operator ">>" on fp\.Bits`
	a++        // want `operator "\+\+" on fp\.Bits`
	_ = a
}

func good(a, b fp.Bits, f fp.Format) {
	_ = a == b          // bit equality is exactly what golden comparison means
	_ = a != b
	_ = uint64(a) ^ 1   // explicit conversion opts out: the programmer now holds an integer
	_ = f.FlipBit(a, 3) // the sanctioned mutation primitive
	_ = mask

	//mixedrelvet:allow bitsops cache key packing, not numeric
	_ = a<<32 | b
}
