// Package inspect provides a shared per-package AST traversal artifact.
//
// Walking every file's AST is the dominant cost of most analyzers in the
// suite, and before this artifact existed each analyzer repeated it.
// inspect.Analyzer performs one ast.Inspect pass per package, recording
// the traversal as a flat event list; analyzers that Require it replay
// the list (filtered by node type) instead of re-walking, and can
// recover the enclosing-node stack of any event without keeping one.
package inspect

import (
	"go/ast"
	"reflect"

	"mixedrel/internal/analysis"
)

// Analyzer builds the package's Inspector. Analyzers that traverse ASTs
// should list it in Requires and obtain the result with
//
//	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
var Analyzer = &analysis.Analyzer{
	Name:    "inspect",
	Doc:     "build a shared AST traversal index for other analyzers",
	Version: 1,
	Run: func(pass *analysis.Pass) (interface{}, error) {
		return New(pass.Files), nil
	},
}

// event is one step of the recorded traversal. Push events carry the
// index of their matching pop, so a replay can skip a subtree in O(1).
type event struct {
	node  ast.Node
	push  bool
	match int // for push events: index of the matching pop
	file  *ast.File
}

// Inspector replays a single recorded traversal of a package's files.
type Inspector struct {
	events []event
}

// New records a traversal of the files. The driver invokes it once per
// package via Analyzer; tests may call it directly.
func New(files []*ast.File) *Inspector {
	in := &Inspector{}
	for _, f := range files {
		file := f
		var stack []int
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				in.events[top].match = len(in.events)
				in.events = append(in.events, event{node: in.events[top].node, file: file})
				return true
			}
			stack = append(stack, len(in.events))
			in.events = append(in.events, event{node: n, push: true, file: file})
			return true
		})
	}
	return in
}

// typeFilter returns the set of dynamic node types to report; an empty
// filter reports every node.
func typeFilter(types []ast.Node) map[reflect.Type]bool {
	if len(types) == 0 {
		return nil
	}
	m := make(map[reflect.Type]bool, len(types))
	for _, t := range types {
		m[reflect.TypeOf(t)] = true
	}
	return m
}

// Preorder calls f for every node whose type matches one of types (all
// nodes if types is empty), in depth-first source order, also passing
// the node's enclosing file.
func (in *Inspector) Preorder(types []ast.Node, f func(n ast.Node, file *ast.File)) {
	filter := typeFilter(types)
	for _, ev := range in.events {
		if !ev.push {
			continue
		}
		if filter == nil || filter[reflect.TypeOf(ev.node)] {
			f(ev.node, ev.file)
		}
	}
}

// WithStack is Preorder but also passes the stack of enclosing nodes,
// outermost (the *ast.File) first and the node itself last. The callback
// returns whether to descend into the node's subtree. The stack slice is
// reused between calls; callers must copy it to retain it.
func (in *Inspector) WithStack(types []ast.Node, f func(n ast.Node, file *ast.File, stack []ast.Node) bool) {
	filter := typeFilter(types)
	var stack []ast.Node
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if !ev.push {
			stack = stack[:len(stack)-1]
			continue
		}
		stack = append(stack, ev.node)
		if filter == nil || filter[reflect.TypeOf(ev.node)] {
			if !f(ev.node, ev.file, stack) {
				stack = stack[:len(stack)-1]
				i = ev.match // jump to the matching pop's successor
			}
		}
	}
}
