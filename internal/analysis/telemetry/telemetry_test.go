package telemetry_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/telemetry"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), telemetry.Analyzer, "app", "kernels", "report")
}
