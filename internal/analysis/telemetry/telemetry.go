// Package telemetry proves the instrumentation layer is observe-only.
//
// internal/telemetry is deliberately exempt from the determinism rules:
// it may read wall clocks and emit events in arrival order, because its
// output never feeds a campaign result. This analyzer is the proof of
// that "never". Every function that touches the instrumentation layer —
// calls into internal/telemetry directly, or through any chain of
// calls — carries a UsesTelemetry fact, and fact-carrying calls are
// reported wherever instrumentation values could flow back into the
// deterministic core:
//
//   - on a kernel's Run path (package kernels): fault classification
//     compares against a golden run, so anything a Run method reaches
//     must be a function of the seed alone;
//   - anywhere in the report package: rendered artifacts are diffed
//     byte-for-byte between runs;
//   - inside the arguments of (*exec.Journal).Record: journaled state
//     must replay identically, so no telemetry-derived value may be
//     checkpointed. This check is value-sensitive: a function that
//     merely increments counters while computing a seed-pure result may
//     be journaled (the engine instruments itself everywhere), but a
//     function whose result may carry telemetry data — it returns a
//     value and reaches a value-returning telemetry read like Clock or
//     Load — may not;
//   - anywhere reachable from a //mixedrelvet:hotpath root: hot loops
//     accumulate plain, unsynchronized counters and flush them once per
//     sample outside the loop — even an atomic add per operation would
//     perturb the measurement the campaign is making.
//
// Importing internal/telemetry at all is reported in the kernels and
// report packages; elsewhere instrumentation is legal and merely earns
// the caller a fact so its own callers stay checkable. Like the
// determinism facts, an //mixedrelvet:allow telemetry directive exempts
// one call site without blocking the fact: an exemption is a claim
// about one context, not about every caller. The instrumentation
// package itself is skipped — it is the source, not a consumer. Test
// files are exempt.
package telemetry

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/callgraph"
	"mixedrel/internal/analysis/inspect"
)

// UsesTelemetry marks a function that reads or writes the
// instrumentation layer, directly or transitively.
type UsesTelemetry struct {
	// Why names the first use found: "calls telemetry.F" for a direct
	// call, or "calls pkg.F" for transitive taint.
	Why string
	// Carries reports that the function's result may hold
	// telemetry-derived data: it returns a value and reaches a
	// value-returning telemetry read through calls that return values.
	// Only carriers are banned from journaled state.
	Carries bool
}

func (*UsesTelemetry) AFact() {}

func (f *UsesTelemetry) String() string {
	if f.Carries {
		return "carriesTelemetry(" + f.Why + ")"
	}
	return "usesTelemetry(" + f.Why + ")"
}

// Analyzer is the telemetry observe-only boundary checker.
var Analyzer = &analysis.Analyzer{
	Name:      "telemetry",
	Doc:       "prove telemetry is observe-only: instrumentation never reaches kernel Run paths, the report package, journaled state, or hot paths",
	Version:   1,
	Requires:  []*analysis.Analyzer{inspect.Analyzer, callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*UsesTelemetry)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pathIs(pass.Path, "internal/telemetry") {
		return nil, nil // the instrumentation layer is the source, not a consumer
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	// The rendering and kernel packages may not even import the layer:
	// nothing they could do with it is legal.
	if name := pass.Pkg.Name(); name == "kernels" || name == "report" {
		for _, file := range pass.Files {
			if pass.InTestFile(file.Pos()) {
				continue
			}
			for _, spec := range file.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil || !pathIs(path, "internal/telemetry") {
					continue
				}
				if !pass.Allowed(file, spec) {
					pass.Reportf(spec.Pos(), "import of %s in package %s; telemetry is observe-only and must not reach deterministic results", path, name)
				}
			}
		}
	}

	// Interprocedural taint: seed with direct calls into the layer,
	// propagate through call edges to a fixed point. Allow directives do
	// not block the fact — an exemption is a claim about one context —
	// so exempted instrumentation still taints its callers.
	tainted := make(map[*types.Func]string)
	carries := make(map[*types.Func]bool)
	imported := make(map[*types.Func]*UsesTelemetry)
	crossFact := func(fn *types.Func) *UsesTelemetry {
		if fact, ok := imported[fn]; ok {
			return fact
		}
		var fact UsesTelemetry
		var out *UsesTelemetry
		if pass.ImportObjectFact(fn, &fact) {
			out = &fact
		}
		imported[fn] = out
		return out
	}
	crossWhy := func(fn *types.Func) string {
		if fact := crossFact(fn); fact != nil {
			return fact.Why
		}
		return ""
	}
	for _, d := range g.List {
		for _, e := range d.Edges {
			if why := directSource(e.Callee); why != "" {
				if _, done := tainted[d.Fn]; !done {
					tainted[d.Fn] = why
				}
				if hasResults(d.Fn) && directReader(e.Callee) {
					carries[d.Fn] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range g.List {
			if _, done := tainted[d.Fn]; !done {
				for _, e := range d.Edges {
					why := ""
					if _, ok := tainted[e.Callee]; ok {
						why = "calls " + analysis.FuncShortName(e.Callee)
					} else if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg && directSource(e.Callee) == "" {
						if crossWhy(e.Callee) != "" {
							why = "calls " + e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
						}
					}
					if why != "" {
						tainted[d.Fn] = why
						changed = true
						break
					}
				}
			}
			// Carrier taint flows only through value-returning calls: a
			// result can hold telemetry data only if some callee handed
			// a value back.
			if !carries[d.Fn] && hasResults(d.Fn) {
				for _, e := range d.Edges {
					if !hasResults(e.Callee) {
						continue
					}
					carrier := carries[e.Callee]
					if !carrier {
						if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg {
							if fact := crossFact(e.Callee); fact != nil && fact.Carries {
								carrier = true
							}
						}
					}
					if carrier {
						carries[d.Fn] = true
						changed = true
						break
					}
				}
			}
		}
	}
	for _, d := range g.List {
		if why, ok := tainted[d.Fn]; ok {
			pass.ExportObjectFact(d.Fn, &UsesTelemetry{Why: why, Carries: carries[d.Fn]})
		}
	}

	// edgeWhy classifies one call edge: "" means clean, otherwise the
	// parenthesized explanation ("" explanation means a direct call,
	// which explains itself).
	edgeWhy := func(e callgraph.Edge) (string, bool) {
		if directSource(e.Callee) != "" {
			return "", true
		}
		if why, ok := tainted[e.Callee]; ok {
			return why, true
		}
		if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg {
			if why := crossWhy(e.Callee); why != "" {
				return why, true
			}
		}
		return "", false
	}
	calleeName := func(fn *types.Func) string {
		name := analysis.FuncShortName(fn)
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			name = fn.Pkg().Name() + "." + name
		}
		return name
	}
	instr := func(e callgraph.Edge, why string) string {
		s := "call to " + calleeName(e.Callee) + " is instrumentation"
		if why != "" {
			s += " (" + why + ")"
		}
		return s
	}

	// Enforcement 1: a kernel's Run path must never touch the layer.
	if pass.Pkg.Name() == "kernels" {
		seen := make(map[*types.Func]bool)
		for _, rd := range g.List {
			if rd.Fn.Name() != "Run" || rd.Decl.Recv == nil {
				continue
			}
			stack := []*types.Func{rd.Fn}
			for len(stack) > 0 {
				fn := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[fn] {
					continue
				}
				seen[fn] = true
				d, ok := g.Decls[fn]
				if !ok {
					continue
				}
				for _, e := range d.Edges {
					if why, bad := edgeWhy(e); bad && !pass.Allowed(d.File, e.Site) {
						pass.Reportf(e.Site.Pos(), "%s on the Run path of %s; telemetry is observe-only and results must be a function of the seed alone",
							instr(e, why), analysis.FuncShortName(rd.Fn))
					}
					if _, local := g.Decls[e.Callee]; local {
						stack = append(stack, e.Callee)
					}
				}
			}
		}
	}

	// Enforcement 2: the report package renders byte-diffed artifacts —
	// no decl in it may touch the layer.
	if pass.Pkg.Name() == "report" {
		for _, d := range g.List {
			for _, e := range d.Edges {
				if why, bad := edgeWhy(e); bad && !pass.Allowed(d.File, e.Site) {
					pass.Reportf(e.Site.Pos(), "%s in the report package; rendered artifacts must not depend on telemetry", instr(e, why))
				}
			}
		}
	}

	// Enforcement 3: hot paths stay instrumentation-free. Hot loops
	// accumulate plain counters and flush them outside the loop; even an
	// exempted atomic add per operation would distort what the campaign
	// measures.
	enforceHotPaths(pass, g, edgeWhy, instr)

	// Enforcement 4: nothing telemetry-derived may be journaled. The
	// check is at the value level: any call inside an argument of
	// (*exec.Journal).Record that resolves to the layer or to a
	// fact-carrying function is reported.
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		call := n.(*ast.CallExpr)
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !journalRecord(fn) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				cf := analysis.CalleeFunc(pass.TypesInfo, inner)
				if cf == nil {
					return true
				}
				// Only value carriers matter here: the engine may
				// instrument itself while computing a seed-pure record,
				// but no telemetry read may flow into the journal.
				why, bad := "", false
				if directReader(cf) {
					bad = true
				} else if w, ok := tainted[cf]; ok && carries[cf] {
					why, bad = w, true
				} else if _, local := g.Decls[cf]; !local && cf.Pkg() != nil && cf.Pkg() != pass.Pkg {
					if fact := crossFact(cf); fact != nil && fact.Carries {
						why, bad = fact.Why, true
					}
				}
				if bad && !allowedOnStack(pass, file, stack) {
					name := calleeName(cf)
					if why != "" {
						name += " (" + why + ")"
					}
					pass.Reportf(inner.Pos(), "telemetry-derived value %s in an argument of (*Journal).Record; journaled state must replay from the seed alone", name)
				}
				return true
			})
		}
		return true
	})

	return nil, nil
}

// enforceHotPaths walks the local closure of every //mixedrelvet:hotpath
// root and reports any edge that touches the instrumentation layer.
func enforceHotPaths(pass *analysis.Pass, g *callgraph.Graph, edgeWhy func(callgraph.Edge) (string, bool), instr func(callgraph.Edge, string) string) {
	reachedFrom := make(map[*types.Func]*types.Func)
	var order []*types.Func
	for _, root := range g.List {
		if !pass.HotPath(root.File, root.Decl) {
			continue
		}
		stack := []*types.Func{root.Fn}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := reachedFrom[fn]; seen {
				continue
			}
			d, ok := g.Decls[fn]
			if !ok {
				continue
			}
			reachedFrom[fn] = root.Fn
			order = append(order, fn)
			for _, e := range d.Edges {
				if _, local := g.Decls[e.Callee]; local {
					stack = append(stack, e.Callee)
				}
			}
		}
	}
	for _, fn := range order {
		root := reachedFrom[fn]
		d := g.Decls[fn]
		for _, e := range d.Edges {
			why, bad := edgeWhy(e)
			if !bad || pass.Allowed(d.File, e.Site) {
				continue
			}
			if fn == root {
				pass.Reportf(e.Site.Pos(), "%s in hot path %s; hot paths accumulate plain counters and flush them outside the loop",
					instr(e, why), analysis.FuncShortName(root))
			} else {
				pass.Reportf(e.Site.Pos(), "%s in %s, reachable from hot path %s; hot paths accumulate plain counters and flush them outside the loop",
					instr(e, why), analysis.FuncShortName(fn), analysis.FuncShortName(root))
			}
		}
	}
}

// directSource classifies callees that belong to the instrumentation
// layer itself.
func directSource(fn *types.Func) string {
	if p := fn.Pkg(); p != nil && pathIs(p.Path(), "internal/telemetry") {
		return "calls telemetry." + analysis.FuncShortName(fn)
	}
	return ""
}

// directReader reports whether fn is a telemetry function that hands a
// value back — the only kind whose result can leak instrumentation data
// into a caller (Clock, Load, Snapshot; Inc and Emit return nothing).
func directReader(fn *types.Func) bool {
	return directSource(fn) != "" && hasResults(fn)
}

func hasResults(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() > 0
}

// journalRecord reports whether fn is the checkpoint journal's Record
// method.
func journalRecord(fn *types.Func) bool {
	if fn.Name() != "Record" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := analysis.Named(sig.Recv().Type())
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Journal" && n.Obj().Pkg().Name() == "exec"
}

func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func allowedOnStack(pass *analysis.Pass, file *ast.File, stack []ast.Node) bool {
	for _, n := range stack {
		if pass.Allowed(file, n) {
			return true
		}
	}
	return false
}
