// Package app stands in for the engine packages where instrumentation
// is legal: every use earns a UsesTelemetry fact so callers stay
// checkable, and the journal and hot-path boundaries are enforced at
// the value and call level.
package app

import (
	"internal/exec"
	"internal/telemetry"
)

var samples = telemetry.NewCounter("app_samples")

// Stamp wraps a telemetry read behind an exported helper; the fact is
// what lets the report package's call be caught across the boundary.
func Stamp() int64 { // want fact:`Stamp: carriesTelemetry\(calls telemetry\.Clock\)`
	return telemetry.Clock()
}

func observe() { // want fact:`observe: usesTelemetry\(calls telemetry\.\(\*Counter\)\.Inc\)`
	samples.Inc() // want `call to telemetry\.\(\*Counter\)\.Inc is instrumentation in observe, reachable from hot path hotAccumulate; hot paths accumulate plain counters and flush them outside the loop`
}

func indirect() { // want fact:`indirect: usesTelemetry\(calls observe\)`
	observe()
}

// checkpoint journals records: seed-pure arguments are fine,
// telemetry-derived ones — direct or wrapped — are not.
// trial instruments itself (counter writes) while computing a
// seed-pure result: journaling that result is the engine's normal
// pattern and is legal — only value carriers are banned.
func trial(seed uint64) int64 { // want fact:`trial: usesTelemetry\(calls telemetry\.\(\*Counter\)\.Inc\)`
	samples.Inc()
	return int64(seed) * 3
}

func checkpoint(j *exec.Journal, seed uint64) { // want fact:`checkpoint: usesTelemetry\(calls telemetry\.Clock\)`
	j.Record(seed, 42)
	j.Record(seed, trial(seed))
	j.Record(seed, Stamp())           // want `telemetry-derived value Stamp \(calls telemetry\.Clock\) in an argument of \(\*Journal\)\.Record; journaled state must replay from the seed alone`
	j.Record(seed, telemetry.Clock()) // want `telemetry-derived value telemetry\.Clock in an argument of \(\*Journal\)\.Record; journaled state must replay from the seed alone`
}

//mixedrelvet:hotpath per-operation stand-in
func hotAccumulate(xs []float64) float64 { // want fact:`hotAccumulate: usesTelemetry\(calls observe\)`
	acc := 0.0
	for _, x := range xs {
		acc += x
	}
	observe() // want `call to observe is instrumentation \(calls telemetry\.\(\*Counter\)\.Inc\) in hot path hotAccumulate; hot paths accumulate plain counters and flush them outside the loop`
	return acc
}

//mixedrelvet:hotpath batched stand-in: the violation sits one call down
func hotBatch(xs []float64) { // want fact:`hotBatch: usesTelemetry\(calls flush\)`
	for i := range xs {
		xs[i] *= 2
	}
	flush() // want `call to flush is instrumentation \(calls telemetry\.\(\*Counter\)\.Add\) in hot path hotBatch; hot paths accumulate plain counters and flush them outside the loop`
}

func flush() { // want fact:`flush: usesTelemetry\(calls telemetry\.\(\*Counter\)\.Add\)`
	samples.Add(1) // want `call to telemetry\.\(\*Counter\)\.Add is instrumentation in flush, reachable from hot path hotBatch; hot paths accumulate plain counters and flush them outside the loop`
}

// env shows the legal hot-path pattern: plain unsynchronized fields,
// flushed by non-hot code elsewhere.
type env struct{ ops uint64 }

//mixedrelvet:hotpath clean accumulation pattern
func (e *env) hotOp(x float64) float64 {
	e.ops++
	return x * x
}

// hotExempt carries an exemption: the diagnostic is suppressed at this
// site, but the fact still taints callers (an exemption is a claim
// about one context, not about every caller).
//
//mixedrelvet:hotpath exempted-instrumentation stand-in
func hotExempt() { // want fact:`hotExempt: usesTelemetry\(calls observe\)`
	//mixedrelvet:allow telemetry amortized flush, measured and accepted
	observe()
}
