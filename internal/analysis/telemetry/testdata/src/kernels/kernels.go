// Package kernels exercises the Run-path ban: kernels may not even
// import the instrumentation layer, and every call a Run method reaches
// is checked — direct, wrapped locally, or wrapped in another package.
package kernels

import "internal/telemetry" // want `import of internal/telemetry in package kernels; telemetry is observe-only and must not reach deterministic results`

var ops = telemetry.NewCounter("kernel_ops")

type K struct{}

func (k *K) Run(xs []float64) float64 { // want fact:`Run: usesTelemetry\(calls telemetry\.\(\*Counter\)\.Inc\)`
	ops.Inc() // want `call to telemetry\.\(\*Counter\)\.Inc is instrumentation on the Run path of \(\*K\)\.Run; telemetry is observe-only and results must be a function of the seed alone`
	acc := 0.0
	for _, x := range xs {
		acc += x
	}
	count(len(xs)) // want `call to count is instrumentation \(calls telemetry\.\(\*Counter\)\.Add\) on the Run path of \(\*K\)\.Run; telemetry is observe-only and results must be a function of the seed alone`
	return acc
}

func count(n int) { // want fact:`count: usesTelemetry\(calls telemetry\.\(\*Counter\)\.Add\)`
	ops.Add(uint64(n)) // want `call to telemetry\.\(\*Counter\)\.Add is instrumentation on the Run path of \(\*K\)\.Run; telemetry is observe-only and results must be a function of the seed alone`
}

// offline is not reachable from any Run method: wrapping
// instrumentation here earns a fact, not a Run-path diagnostic.
func offline() uint64 { // want fact:`offline: carriesTelemetry\(calls telemetry\.\(\*Counter\)\.Load\)`
	return ops.Load()
}
