// Package report exercises the rendering ban: no telemetry import
// appears here, but a wall-clock read wrapped in another package is
// still caught through its exported fact.
package report

import "app"

type Table struct{ rows []string }

func (t *Table) Render() { // want fact:`Render: usesTelemetry\(calls app\.Stamp\)`
	_ = app.Stamp() // want `call to app\.Stamp is instrumentation \(calls telemetry\.Clock\) in the report package; rendered artifacts must not depend on telemetry`
}

// clean rendering carries no annotations: seed-pure data is fine.
func (t *Table) Row(s string) {
	t.rows = append(t.rows, s)
}
