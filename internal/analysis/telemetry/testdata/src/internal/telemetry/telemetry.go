// Package telemetry stands in for the real instrumentation layer. The
// analyzer identifies it by import-path suffix and skips analyzing it:
// the layer is the source of instrumentation, not a consumer.
package telemetry

type Counter struct{ v uint64 }

func NewCounter(name string) *Counter { return &Counter{} }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(n uint64) { c.v += n }
func (c *Counter) Load() uint64 { return c.v }

func Clock() int64 { return 0 }
