// Package exec stands in for the execution engine: the checkpoint
// journal whose Record arguments must stay telemetry-free.
package exec

type Journal struct{}

func (j *Journal) Record(seed uint64, v int64) error { return nil }
