package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The framework recognizes two comment directives, both validated by the
// driver (misspelled verbs, unknown analyzer names, and directives that
// never matched anything are diagnostics — see validateDirectives):
//
//	//mixedrelvet:allow <analyzer-name> [reason]
//	    exempts the declaration or statement on the following (or same)
//	    line from the named analyzer. Requiring the analyzer name keeps
//	    one exemption from silencing the whole suite.
//
//	//mixedrelvet:hotpath [reason]
//	    marks a function declaration as an allocation-free hot-path
//	    root: the hotalloc analyzer proves nothing it (transitively)
//	    calls allocates.
const directivePrefix = "//mixedrelvet:"

const (
	verbAllow   = "allow"
	verbHotPath = "hotpath"
)

// directive is one parsed //mixedrelvet: comment.
type directive struct {
	verb     string
	analyzer string // for allow: the named analyzer
	reason   string
	pos      token.Pos
	// groupEnd is the line on which the enclosing comment group ends; a
	// directive covers nodes starting on groupEnd or groupEnd+1, so a
	// directive inside a larger comment block still applies to the
	// declaration the block precedes.
	groupEnd int
	// used records whether any analyzer consulted and matched this
	// directive; unused directives are stale exemptions and are reported
	// by the driver.
	used bool
}

// directiveSet holds a package's parsed directives. It is populated once
// per package by the driver before any analyzer runs; analyzers for one
// package run sequentially, so the used flags need no locking.
type directiveSet struct {
	byFile map[*ast.File][]*directive
}

// parseDirectives scans the non-test files of a package for
// //mixedrelvet: comments. Test files are skipped: every analyzer in the
// suite ignores them, so a directive there could never be used.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFile: make(map[*ast.File][]*directive)}
	for _, file := range files {
		tf := fset.File(file.Pos())
		if tf == nil || strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, cg := range file.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				d := &directive{verb: verb, pos: c.Pos(), groupEnd: groupEnd}
				if verb == verbAllow {
					d.analyzer, d.reason, _ = strings.Cut(strings.TrimSpace(args), " ")
				} else {
					d.reason = strings.TrimSpace(args)
				}
				ds.byFile[file] = append(ds.byFile[file], d)
			}
		}
	}
	return ds
}

// match finds a directive of the given verb (and analyzer, for allow)
// whose comment group ends on the node's line or the line above, marking
// it used.
func (ds *directiveSet) match(fset *token.FileSet, file *ast.File, node ast.Node, verb, analyzer string) bool {
	nodeLine := fset.Position(node.Pos()).Line
	for _, d := range ds.byFile[file] {
		if d.verb != verb || (verb == verbAllow && d.analyzer != analyzer) {
			continue
		}
		if d.groupEnd == nodeLine || d.groupEnd == nodeLine-1 {
			d.used = true
			return true
		}
	}
	return false
}

func (ds *directiveSet) allowed(fset *token.FileSet, file *ast.File, node ast.Node, analyzer string) bool {
	return ds.match(fset, file, node, verbAllow, analyzer)
}

func (ds *directiveSet) hotPath(fset *token.FileSet, file *ast.File, node ast.Node) bool {
	return ds.match(fset, file, node, verbHotPath, "")
}

// DirectivesAnalyzerName is the analyzer name under which the driver
// reports directive-validation diagnostics.
const DirectivesAnalyzerName = "directives"

// validateDirectives reports, after every analyzer has run on the
// package: unknown verbs, allow directives naming an analyzer outside
// the known suite, and directives that were never matched. The unused
// check only applies to directives whose owning analyzer actually ran
// (restricting a run with -only must not condemn the other analyzers'
// exemptions); hotpath directives are owned by hotalloc.
func validateDirectives(fset *token.FileSet, ds *directiveSet, known, ran map[string]bool, report func(token.Pos, string)) {
	var all []*directive
	for _, list := range ds.byFile {
		all = append(all, list...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	for _, d := range all {
		switch d.verb {
		case verbAllow:
			if !known[d.analyzer] {
				report(d.pos, fmt.Sprintf("//mixedrelvet:allow names unknown analyzer %q (use mixedrelvet -list)", d.analyzer))
			} else if ran[d.analyzer] && !d.used {
				report(d.pos, fmt.Sprintf("unused //mixedrelvet:allow %s directive: it no longer exempts anything; delete it", d.analyzer))
			}
		case verbHotPath:
			if ran["hotalloc"] && !d.used {
				report(d.pos, "unused //mixedrelvet:hotpath directive: it does not precede a function declaration")
			}
		default:
			report(d.pos, fmt.Sprintf("unknown mixedrelvet directive %q (known: allow, hotpath)", directivePrefix+d.verb))
		}
	}
}
