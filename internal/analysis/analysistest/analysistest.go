// Package analysistest runs an analyzer over GOPATH-style testdata
// package trees and checks its diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A testdata tree lives at <testdata>/src/<pkg>/..., where import paths
// are directories relative to src (so a stand-in "fp" package lives at
// testdata/src/fp and is imported as "fp"). An expectation
//
//	x := a + b // want `operator "\+" on fp\.Bits`
//
// is a regular expression that must match a diagnostic reported on the
// same line; several quoted expectations may follow one want. Facts the
// analyzer exports are asserted the same way, against the record's
// "name: fact" rendering:
//
//	func scale(x float64) float64 { // want fact:`scale: usesNativeFloat`
//
// Every diagnostic — including the driver's directive-validation
// diagnostics — and every fact the analyzer under test exports in a
// requested package must be matched by an expectation and vice versa, so
// clean negative cases (exempt helpers, _test.go files, exempt packages)
// are asserted simply by carrying no annotations.
//
// Packages are analyzed by the real driver: requested packages plus
// everything they transitively import inside the tree, in topological
// order, with facts flowing across package boundaries exactly as in a
// production run.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/suite"
)

// TestData returns the test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads the patterns from dir/src, applies the analyzer under the
// interprocedural driver, and reports any mismatch between diagnostics
// or exported facts and // want annotations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader := &analysis.Loader{Dir: filepath.Join(dir, "src"), IncludeTests: true}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("loading %v from %s: %v", patterns, dir, err)
	}
	cfg := analysis.Config{
		// The full registry, so testdata may carry directives for
		// analyzers other than the one under test without tripping the
		// unknown-name validation.
		Known:  suite.Names(),
		Lookup: loader.Lookup,
	}
	res, err := analysis.Run(cfg, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	requested := make(map[string]bool, len(pkgs))
	diagWants := make(map[key][]*regexp.Regexp)
	factWants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		requested[pkg.Path] = true
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					exps, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					k := key{pos.Filename, pos.Line}
					diagWants[k] = append(diagWants[k], exps.diags...)
					factWants[k] = append(factWants[k], exps.facts...)
				}
			}
		}
	}

	match := func(wants map[key][]*regexp.Regexp, k key, text string) bool {
		for i, re := range wants[k] {
			if re.MatchString(text) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				return true
			}
		}
		return false
	}

	for _, f := range res.Findings {
		if !match(diagWants, key{f.Pos.Filename, f.Pos.Line}, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	// Facts are checked for the analyzer under test in the requested
	// packages; facts in dependency packages outside the patterns are
	// this run's internal plumbing.
	for _, r := range res.Facts {
		if r.Analyzer != a.Name || !requested[r.Package] {
			continue
		}
		if !match(factWants, key{r.Pos.Filename, r.Pos.Line}, r.String()) {
			t.Errorf("%s: unasserted fact at %s:%d: %s", a.Name, r.Pos.Filename, r.Pos.Line, r)
		}
	}
	for k, res := range diagWants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, re)
		}
	}
	for k, res := range factWants {
		for _, re := range res {
			t.Errorf("%s:%d: expected fact matching %q was not exported", k.file, k.line, re)
		}
	}
}

// expectations is the parsed content of one // want comment.
type expectations struct {
	diags []*regexp.Regexp
	facts []*regexp.Regexp
}

func (e expectations) empty() bool { return len(e.diags) == 0 && len(e.facts) == 0 }

// parseWant extracts the quoted regular expressions from a // want
// comment, returning empty expectations for comments without the marker.
// A bare quoted regexp asserts a diagnostic; a fact:"re" token asserts
// an exported fact.
func parseWant(text string) (expectations, error) {
	var out expectations
	body, ok := strings.CutPrefix(strings.TrimSpace(text), "//")
	if !ok {
		return out, nil // /* */ comments carry no expectations
	}
	body, ok = strings.CutPrefix(strings.TrimSpace(body), "want ")
	if !ok {
		return out, nil
	}
	rest := strings.TrimSpace(body)
	for rest != "" {
		fact := false
		if cut, ok := strings.CutPrefix(rest, "fact:"); ok {
			fact = true
			rest = cut
		}
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return out, fmt.Errorf("malformed want expectation %q: expected a quoted regexp", rest)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return out, fmt.Errorf("malformed want expectation %q: %v", lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return out, fmt.Errorf("bad want regexp %q: %v", unq, err)
		}
		if fact {
			out.facts = append(out.facts, re)
		} else {
			out.diags = append(out.diags, re)
		}
		rest = strings.TrimSpace(rest[len(lit):])
	}
	if out.empty() {
		return out, fmt.Errorf("want comment carries no expectations")
	}
	return out, nil
}
