// Package analysistest runs an analyzer over GOPATH-style testdata
// package trees and checks its diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A testdata tree lives at <testdata>/src/<pkg>/..., where import paths
// are directories relative to src (so a stand-in "fp" package lives at
// testdata/src/fp and is imported as "fp"). An expectation
//
//	x := a + b // want `operator "\+" on fp\.Bits`
//
// is a regular expression that must match a diagnostic reported on the
// same line; several quoted expectations may follow one want. Every
// diagnostic must be matched by an expectation and vice versa — so
// clean negative cases (allowlisted helpers, _test.go files, exempt
// packages) are asserted simply by carrying no annotations.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mixedrel/internal/analysis"
)

// TestData returns the test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads the patterns from dir/src, applies the analyzer, and reports
// any mismatch between diagnostics and // want annotations as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader := &analysis.Loader{Dir: filepath.Join(dir, "src"), IncludeTests: true}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("loading %v from %s: %v", patterns, dir, err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					exps, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], exps...)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted regular expressions from a // want
// comment, returning nil for comments without the marker.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(text), "//")
	if !ok {
		return nil, nil // /* */ comments carry no expectations
	}
	body, ok = strings.CutPrefix(strings.TrimSpace(body), "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want expectation %q: expected a quoted regexp", rest)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("malformed want expectation %q: %v", lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", unq, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(lit):])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no expectations")
	}
	return out, nil
}
