package analysistest

import "testing"

func TestParseWant(t *testing.T) {
	cases := []struct {
		text    string
		matches []string // a probe string each parsed regexp must match
		wantErr bool
	}{
		{text: "// ordinary comment", matches: nil},
		{text: "// wanting is not the marker", matches: nil},
		{text: "// want `a \\+ b`", matches: []string{"a + b"}},
		{text: "// want \"first\" `second`", matches: []string{"the first one", "a second one"}},
		{text: "/* block comments carry no expectations */", matches: nil},
		{text: "// want unquoted", wantErr: true},
		{text: "// want `broken(`", wantErr: true},
	}
	for _, tc := range cases {
		res, err := parseWant(tc.text)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseWant(%q): expected error, got %v", tc.text, res)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWant(%q): %v", tc.text, err)
			continue
		}
		if len(res) != len(tc.matches) {
			t.Errorf("parseWant(%q) = %d expectations, want %d", tc.text, len(res), len(tc.matches))
			continue
		}
		for i, probe := range tc.matches {
			if !res[i].MatchString(probe) {
				t.Errorf("parseWant(%q)[%d] = %v does not match %q", tc.text, i, res[i], probe)
			}
		}
	}
}
