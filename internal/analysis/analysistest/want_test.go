package analysistest

import "testing"

func TestParseWant(t *testing.T) {
	cases := []struct {
		text    string
		matches []string // a probe string each parsed diagnostic regexp must match
		facts   []string // a probe string each parsed fact regexp must match
		wantErr bool
	}{
		{text: "// ordinary comment"},
		{text: "// wanting is not the marker"},
		{text: "// want `a \\+ b`", matches: []string{"a + b"}},
		{text: "// want \"first\" `second`", matches: []string{"the first one", "a second one"}},
		{text: "/* block comments carry no expectations */"},
		{text: "// want fact:`f: usesNativeFloat`", facts: []string{"f: usesNativeFloat(native)"}},
		{text: "// want `diag` fact:`g: allocates`", matches: []string{"a diag here"}, facts: []string{"g: allocates(make)"}},
		{text: "// want unquoted", wantErr: true},
		{text: "// want `broken(`", wantErr: true},
		{text: "// want fact:unquoted", wantErr: true},
	}
	for _, tc := range cases {
		res, err := parseWant(tc.text)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseWant(%q): expected error, got %v", tc.text, res)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWant(%q): %v", tc.text, err)
			continue
		}
		if len(res.diags) != len(tc.matches) || len(res.facts) != len(tc.facts) {
			t.Errorf("parseWant(%q) = %d diags/%d facts, want %d/%d", tc.text, len(res.diags), len(res.facts), len(tc.matches), len(tc.facts))
			continue
		}
		for i, probe := range tc.matches {
			if !res.diags[i].MatchString(probe) {
				t.Errorf("parseWant(%q).diags[%d] = %v does not match %q", tc.text, i, res.diags[i], probe)
			}
		}
		for i, probe := range tc.facts {
			if !res.facts[i].MatchString(probe) {
				t.Errorf("parseWant(%q).facts[%d] = %v does not match %q", tc.text, i, res.facts[i], probe)
			}
		}
	}
}
