// Package compiledreplay restricts who may use the compiled golden
// trace.
//
// internal/traceir serves recorded results in place of softfloat
// execution, which is only sound under the injector's compare-serving
// discipline: a result is handed out either after the live operand bits
// matched the recorded ones exactly, or under the replay induction that
// internal/inject maintains (no corruption applied yet, pristine
// inputs). Any other caller could replay recorded bits into a context
// where those preconditions do not hold and silently break the
// simulator's bit-exactness guarantee — the kind of bug no test sweep
// reliably catches, because the served bits are *almost always* right.
//
// The analyzer allows imports of internal/traceir only from the two
// packages that own the discipline: internal/exec (records and compiles
// the golden run) and internal/inject (serves faulty replays from it).
// It also catches consumption that needs no import at all: calling a
// method or reading a field of a traceir value obtained from another
// package (e.g. art.Trace().ServeScalar(...)) selects a traceir object
// without naming the package. Every package that touches the IR either
// way exports a ConsumesTrace package fact, so the boundary is auditable
// from the fact stream. Test files are exempt, as everywhere in the
// suite: equivalence and white-box tests legitimately drive the program
// from outside.
package compiledreplay

import (
	"go/ast"
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// ConsumesTrace marks a package that imports internal/traceir or
// selects its objects through values obtained elsewhere.
type ConsumesTrace struct{}

func (*ConsumesTrace) AFact() {}

func (*ConsumesTrace) String() string { return "consumesTrace" }

// Analyzer is the compiledreplay invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "compiledreplay",
	Doc:       "restrict internal/traceir use to internal/exec and internal/inject; compiled-trace serving is only sound under their compare/replay discipline",
	Version:   2,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*ConsumesTrace)(nil)},
	Run:       run,
}

// allowedImporters are the package paths (matched on their module-
// relative suffix) that may consume the trace IR.
var allowedImporters = []string{
	"internal/exec",
	"internal/inject",
	"internal/traceir",
}

func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	consumes := false

	trusted := false
	for _, allowed := range allowedImporters {
		if pathIs(pass.Path, allowed) {
			trusted = true
		}
	}

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !pathIs(path, "internal/traceir") {
				continue
			}
			consumes = true
			if !trusted && !pass.Allowed(file, spec) {
				pass.Reportf(spec.Pos(), "import of %s outside internal/exec and internal/inject; compiled-trace results are only exact under their compare-serving discipline", path)
			}
		}
	}

	// Selections on traceir values need no import: a *traceir.Program
	// handed out by another package brings its methods with it.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		sel := n.(*ast.SelectorExpr)
		if pass.InTestFile(sel.Pos()) {
			return true
		}
		if pass.TypesInfo.Selections[sel] == nil {
			return true // qualified identifier; the import check covers it
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || !pathIs(obj.Pkg().Path(), "internal/traceir") {
			return true
		}
		consumes = true
		if trusted {
			return true
		}
		for _, anc := range stack {
			if pass.Allowed(file, anc) {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(), "use of internal/traceir.%s through a value obtained from another package; compiled-trace results are only exact under the exec/inject compare-serving discipline", sel.Sel.Name)
		return true
	})

	if consumes || pathIs(pass.Path, "internal/traceir") {
		pass.ExportPackageFact(&ConsumesTrace{})
	}
	return nil, nil
}
