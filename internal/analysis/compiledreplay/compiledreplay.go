// Package compiledreplay restricts who may use the compiled golden
// trace.
//
// internal/traceir serves recorded results in place of softfloat
// execution, which is only sound under the injector's compare-serving
// discipline: a result is handed out either after the live operand bits
// matched the recorded ones exactly, or under the replay induction that
// internal/inject maintains (no corruption applied yet, pristine
// inputs). Any other caller could replay recorded bits into a context
// where those preconditions do not hold and silently break the
// simulator's bit-exactness guarantee — the kind of bug no test sweep
// reliably catches, because the served bits are *almost always* right.
//
// The analyzer therefore allows imports of internal/traceir only from
// the two packages that own the discipline: internal/exec (records and
// compiles the golden run) and internal/inject (serves faulty replays
// from it). Everything else must go through those layers. Test files
// are exempt, as everywhere in the suite: equivalence and white-box
// tests legitimately drive the program from outside.
package compiledreplay

import (
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
)

// Analyzer is the compiledreplay invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "compiledreplay",
	Doc:  "restrict internal/traceir imports to internal/exec and internal/inject; compiled-trace serving is only sound under their compare/replay discipline",
	Run:  run,
}

// allowedImporters are the package paths (matched on their module-
// relative suffix) that may consume the trace IR.
var allowedImporters = []string{
	"internal/exec",
	"internal/inject",
	"internal/traceir",
}

func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, allowed := range allowedImporters {
		if pathIs(pass.Path, allowed) {
			return nil, nil
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if pathIs(path, "internal/traceir") && !pass.Allowed(file, spec) {
				pass.Reportf(spec.Pos(), "import of %s outside internal/exec and internal/inject; compiled-trace results are only exact under their compare-serving discipline", path)
			}
		}
	}
	return nil, nil
}
