package compiledreplay_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/compiledreplay"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), compiledreplay.Analyzer,
		"rogue", "sly", "internal/inject", "internal/exec", "internal/traceir")
}
