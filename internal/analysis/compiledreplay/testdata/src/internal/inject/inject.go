// Package inject is an allowed importer: it owns the compare-serving
// discipline, so it carries no diagnostics.
package inject // want fact:`package: consumesTrace`

import "internal/traceir"

// Replay serves one position from the compiled trace.
func Replay(p *traceir.Program, pos uint64) (uint64, bool) { return p.Serve(pos) }
