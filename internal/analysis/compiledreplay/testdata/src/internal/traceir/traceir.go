// Package traceir stands in for the real trace-IR package at the
// guarded import path.
package traceir // want fact:`package: consumesTrace`

// Program is the stand-in compiled golden trace.
type Program struct{}

// Serve is the stand-in serving entry point.
func (p *Program) Serve(pos uint64) (uint64, bool) { return 0, false }
