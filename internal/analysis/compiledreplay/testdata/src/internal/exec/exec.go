// Package exec is an allowed importer: it records and compiles the
// golden run, so it carries no diagnostics.
package exec // want fact:`package: consumesTrace`

import "internal/traceir"

// Compile returns the stand-in compiled program.
func Compile() *traceir.Program { return &traceir.Program{} }
