// Test files are exempt: equivalence suites drive the program from
// outside the injector.
package rogue

import (
	"testing"

	"internal/traceir"
)

func TestPeek(t *testing.T) {
	if _, ok := Peek(&traceir.Program{}); ok {
		t.Fatal("stand-in served")
	}
}
