// Package rogue consumes the compiled trace from outside the injector
// layers.
package rogue // want fact:`package: consumesTrace`

import "internal/traceir" // want `import of internal/traceir outside internal/exec and internal/inject`

// Peek replays recorded bits without the injector's operand compare.
func Peek(p *traceir.Program) (uint64, bool) { return p.Serve(0) } // want `use of internal/traceir\.Serve through a value obtained from another package`
