// Package rogue consumes the compiled trace from outside the injector
// layers.
package rogue

import "internal/traceir" // want `import of internal/traceir outside internal/exec and internal/inject`

// Peek replays recorded bits without the injector's operand compare.
func Peek(p *traceir.Program) (uint64, bool) { return p.Serve(0) }
