// Package sly consumes the compiled trace without ever importing it: the
// method rides along with the value exec hands out, so an import-based
// check alone never sees the breach.
package sly // want fact:`package: consumesTrace`

import "internal/exec"

// Leak replays recorded bits with no operand compare and no import of
// internal/traceir anywhere in the package.
func Leak() (uint64, bool) {
	return exec.Compile().Serve(0) // want `use of internal/traceir\.Serve through a value obtained from another package`
}
