package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// FactRecord is one exported fact, resolved for reporting, caching and
// analysistest assertions.
type FactRecord struct {
	Analyzer string
	Package  string
	// Object is the stable key of the annotated object — the function's
	// FullName ("(*pkg/path.T).M", "pkg/path.F") or "pkgpath.Name" for
	// other objects — or "" for a package fact.
	Object string
	// Name is the object's unqualified name ("package" for package
	// facts), used when rendering assertions.
	Name string
	Pos  token.Position
	Fact Fact
}

// String renders the record the way analysistest fact assertions match
// it: "name: factString".
func (r FactRecord) String() string {
	return fmt.Sprintf("%s: %v", r.Name, r.Fact)
}

// objectKey returns the stable, instance-independent key for obj. The
// same source package can be type-checked twice (with and without test
// files), so facts are keyed by name, not object identity.
func objectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// factKey identifies one fact slot.
type factKey struct {
	analyzer string
	pkg      string
	object   string // "" for package facts
}

// factAccess mediates a pass's fact reads and writes. Reads hit the
// local map (facts exported earlier while analyzing this package) and
// then the global store (facts of already-analyzed packages, which only
// completed import-order waves write — no locking needed). Writes go to
// the local map; the driver merges it into the global store between
// waves.
type factAccess struct {
	global map[factKey]*FactRecord
	local  map[factKey]*FactRecord
}

func (fa *factAccess) lookup(k factKey) *FactRecord {
	if r, ok := fa.local[k]; ok {
		return r
	}
	return fa.global[k]
}

// copyFact copies the stored fact's value into dst if their dynamic
// types match. Both are pointers to structs.
func copyFact(dst Fact, src Fact) bool {
	dv, sv := reflect.ValueOf(dst), reflect.ValueOf(src)
	if dv.Kind() != reflect.Ptr || sv.Kind() != reflect.Ptr || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

func (fa *factAccess) export(p *Pass, obj types.Object, fact Fact) {
	pos := p.Fset.Position(obj.Pos())
	fa.local[factKey{p.Analyzer.Name, p.Path, objectKey(obj)}] = &FactRecord{
		Analyzer: p.Analyzer.Name,
		Package:  p.Path,
		Object:   objectKey(obj),
		Name:     obj.Name(),
		Pos:      pos,
		Fact:     fact,
	}
}

func (fa *factAccess) exportPackage(p *Pass, fact Fact) {
	var pos token.Position
	if len(p.Files) > 0 {
		pos = p.Fset.Position(p.Files[0].Name.Pos())
	}
	fa.local[factKey{p.Analyzer.Name, p.Path, ""}] = &FactRecord{
		Analyzer: p.Analyzer.Name,
		Package:  p.Path,
		Name:     "package",
		Pos:      pos,
		Fact:     fact,
	}
}

func (fa *factAccess) importObject(analyzer string, obj types.Object, fact Fact) bool {
	r := fa.lookup(factKey{analyzer, obj.Pkg().Path(), objectKey(obj)})
	if r == nil {
		return false
	}
	return copyFact(fact, r.Fact)
}

func (fa *factAccess) importPackage(analyzer, pkgPath string, fact Fact) bool {
	r := fa.lookup(factKey{analyzer, pkgPath, ""})
	if r == nil {
		return false
	}
	return copyFact(fact, r.Fact)
}

// sortedRecords returns m's records in deterministic order.
func sortedRecords(m map[factKey]*FactRecord) []*FactRecord {
	keys := make([]factKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		return a.object < b.object
	})
	out := make([]*FactRecord, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// factRegistry maps analyzer name → fact type name → concrete type, for
// decoding cached facts. Built from the FactTypes declarations of the
// analyzer closure.
type factRegistry map[string]map[string]reflect.Type

func buildFactRegistry(analyzers []*Analyzer) factRegistry {
	reg := make(factRegistry)
	for _, a := range analyzers {
		for _, proto := range a.FactTypes {
			t := reflect.TypeOf(proto)
			if t.Kind() == reflect.Ptr {
				t = t.Elem()
			}
			m := reg[a.Name]
			if m == nil {
				m = make(map[string]reflect.Type)
				reg[a.Name] = m
			}
			m[t.Name()] = t
		}
	}
	return reg
}

// encodeFact serializes a fact value and its type name.
func encodeFact(f Fact) (typeName string, data []byte, err error) {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	data, err = json.Marshal(f)
	return t.Name(), data, err
}

// decodeFact reconstructs a fact from its cached representation.
func (reg factRegistry) decodeFact(analyzer, typeName string, data []byte) (Fact, error) {
	t, ok := reg[analyzer][typeName]
	if !ok {
		return nil, fmt.Errorf("analyzer %s declares no fact type %s", analyzer, typeName)
	}
	v := reflect.New(t)
	if err := json.Unmarshal(data, v.Interface()); err != nil {
		return nil, err
	}
	f, ok := v.Interface().(Fact)
	if !ok {
		return nil, fmt.Errorf("%s.%s does not implement Fact", analyzer, typeName)
	}
	return f, nil
}
