// Package softfloat flags native float32/float64 arithmetic on the
// injected compute path of the kernels package.
//
// The paper's FIT model is only valid if every dynamic arithmetic
// operation of a workload flows through fp.Env: that is where operations
// are counted (sizing the campaign), where faults are injected, and where
// reduced-precision formats are emulated bit-exactly. A stray native
// `a*b` inside Kernel.Run — or in any helper Run reaches — computes in
// the host's binary64, escapes both the op counter and the injector, and
// silently skews sensitive-bit counts and vulnerability factors.
//
// The analyzer builds the intra-package call graph rooted at every
// method named Run and reports non-constant float arithmetic (binary
// + - * /, the compound assignment forms, and unary minus) in any
// reachable function. Input-generation helpers (uniform) are allowlisted:
// they run at construction time against the seed, before the injected
// computation starts, and deliberately produce float64 values that are
// then encoded. Native reference implementations (forward64, relu64, ...)
// are untouched as long as nothing on the Run path calls them.
package softfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mixedrel/internal/analysis"
)

// Analyzer is the softfloat invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "softfloat",
	Doc:  "flag native float arithmetic reachable from Kernel.Run; the injected compute path must go through fp.Env",
	Run:  run,
}

// constructionHelpers are input-generation functions that legitimately
// use native float64: they execute at kernel construction, not on the
// injected path, even if a Run method shares code with them.
var constructionHelpers = map[string]bool{
	"uniform": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The invariant is specific to the workload package: everything else
	// either is the soft-float implementation itself or works on decoded
	// outputs where native arithmetic is the point.
	if pass.Pkg.Name() != "kernels" {
		return nil, nil
	}

	type declInfo struct {
		decl *ast.FuncDecl
		file *ast.File
	}
	decls := make(map[*types.Func]declInfo)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = declInfo{fd, file}
			}
		}
	}

	// Intra-package call graph over declared functions. Indirect calls
	// through function values are invisible here; the kernels package
	// calls its helpers directly.
	callees := make(map[*types.Func][]*types.Func)
	for fn, di := range decls {
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
	}

	// Roots: every method named Run, in source order for deterministic
	// attribution when helpers are shared between kernels.
	var roots []*types.Func
	for fn, di := range decls {
		if fn.Name() == "Run" && di.decl.Recv != nil {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return decls[roots[i]].decl.Pos() < decls[roots[j]].decl.Pos()
	})

	reachedFrom := make(map[*types.Func]*types.Func)
	for _, root := range roots {
		stack := []*types.Func{root}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := reachedFrom[fn]; seen {
				continue
			}
			di, declared := decls[fn]
			if !declared || constructionHelpers[fn.Name()] || pass.Allowed(di.file, di.decl) {
				continue
			}
			reachedFrom[fn] = root
			stack = append(stack, callees[fn]...)
		}
	}

	for fn, root := range reachedFrom {
		di := decls[fn]
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				// Literals inherit the enclosing function's reachability.
				return true
			case *ast.BinaryExpr:
				if !arithOp(e.Op) || isConst(pass, e) {
					return true
				}
				if isFloat(pass.TypesInfo.Types[e.X].Type) || isFloat(pass.TypesInfo.Types[e.Y].Type) {
					report(pass, e.OpPos, e.Op, fn, root)
				}
			case *ast.UnaryExpr:
				if e.Op == token.SUB && !isConst(pass, e) && isFloat(pass.TypesInfo.Types[e.X].Type) {
					report(pass, e.OpPos, e.Op, fn, root)
				}
			case *ast.AssignStmt:
				if op, ok := arithAssign(e.Tok); ok && len(e.Lhs) == 1 && isFloat(pass.TypesInfo.Types[e.Lhs[0]].Type) {
					report(pass, e.TokPos, op, fn, root)
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *analysis.Pass, pos token.Pos, op token.Token, fn, root *types.Func) {
	if fn == root {
		pass.Reportf(pos, "native float arithmetic %q in %s; the injected compute path must go through fp.Env",
			op.String(), shortName(root))
		return
	}
	pass.Reportf(pos, "native float arithmetic %q in %s, reachable from %s; the injected compute path must go through fp.Env",
		op.String(), shortName(fn), shortName(root))
}

// shortName renders a function as Name or (Recv).Name without package
// qualification.
func shortName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		q := func(*types.Package) string { return "" }
		return "(" + types.TypeString(sig.Recv().Type(), q) + ")." + fn.Name()
	}
	return fn.Name()
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func arithAssign(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	}
	return 0, false
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
