// Package softfloat flags native float32/float64 arithmetic on the
// injected compute path of the kernels package.
//
// The paper's FIT model is only valid if every dynamic arithmetic
// operation of a workload flows through fp.Env: that is where operations
// are counted (sizing the campaign), where faults are injected, and where
// reduced-precision formats are emulated bit-exactly. A stray native
// `a*b` inside Kernel.Run — or in any helper Run reaches, in any package
// — computes in the host's binary64, escapes both the op counter and the
// injector, and silently skews sensitive-bit counts and vulnerability
// factors.
//
// The analysis is interprocedural and module-wide. On every package
// except the soft-float implementation itself (package fp, where native
// floats are the point), it computes which declared functions perform or
// transitively reach non-constant float arithmetic (binary + - * /, the
// compound assignment forms, unary minus) and exports a UsesNativeFloat
// fact for each. On the kernels package it walks the call graph rooted
// at every method named Run and reports both local float arithmetic in
// reachable functions and call sites whose callee — resolved in any
// imported package — carries the fact. Native reference implementations
// (forward64, relu64, ...) are untouched as long as nothing on the Run
// path calls them.
//
// A //mixedrelvet:allow softfloat directive on a function declaration is
// a caller-independent claim that the function's float use is off the
// injected datapath (construction-time input generation, tolerance
// decoding): it blocks the fact, so taint does not propagate through the
// function from any caller. Calls resolved through interface values are
// invisible to the call graph and therefore unchecked; the kernels call
// their helpers directly.
package softfloat

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/callgraph"
)

// UsesNativeFloat marks a function that performs, or transitively calls
// into, non-constant native float arithmetic. Exported for every tainted
// function outside package fp; consumed when analyzing packages that
// call across package boundaries from Kernel.Run.
type UsesNativeFloat struct {
	// Why names the first taint source found: `native float "*"` for
	// local arithmetic, `calls pkg.F` for transitive taint.
	Why string
}

func (*UsesNativeFloat) AFact() {}

func (f *UsesNativeFloat) String() string { return "usesNativeFloat(" + f.Why + ")" }

// Analyzer is the softfloat invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "softfloat",
	Doc:       "flag native float arithmetic reachable from Kernel.Run in any package; the injected compute path must go through fp.Env",
	Version:   2,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*UsesNativeFloat)(nil)},
	Run:       run,
}

// floatOp is one native float operation in a function body.
type floatOp struct {
	pos token.Pos
	op  token.Token
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "fp" {
		// The soft-float implementation computes with native floats by
		// design; it is the trusted boundary taint stops at.
		return nil, nil
	}
	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	localOps := make(map[*types.Func][]floatOp)
	for _, d := range g.List {
		localOps[d.Fn] = collectOps(pass, d.Decl.Body)
	}

	// Taint to a fixed point: a function is tainted if it has local float
	// arithmetic or calls a tainted function (same package, recursively,
	// or any imported package via its exported fact). An allow directive
	// on the declaration blocks the taint — consulted only when the
	// function would otherwise be tainted, so a directive on a clean
	// function stays unused and is reported by the driver.
	tainted := make(map[*types.Func]string)
	blocked := make(map[*types.Func]bool)
	imported := make(map[*types.Func]string) // memoized cross-package facts; "" = none
	crossWhy := func(fn *types.Func) string {
		if why, ok := imported[fn]; ok {
			return why
		}
		var fact UsesNativeFloat
		why := ""
		if pass.ImportObjectFact(fn, &fact) {
			why = fact.Why
		}
		imported[fn] = why
		return why
	}
	taintDecl := func(d *callgraph.Decl, why string) bool {
		if pass.Allowed(d.File, d.Decl) {
			blocked[d.Fn] = true
			return false
		}
		tainted[d.Fn] = why
		return true
	}
	for _, d := range g.List {
		if ops := localOps[d.Fn]; len(ops) > 0 {
			taintDecl(d, fmt.Sprintf("native float %q", ops[0].op))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range g.List {
			if _, done := tainted[d.Fn]; done || blocked[d.Fn] {
				continue
			}
			for _, e := range d.Edges {
				why := ""
				if _, ok := tainted[e.Callee]; ok {
					why = "calls " + analysis.FuncShortName(e.Callee)
				} else if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg {
					if w := crossWhy(e.Callee); w != "" {
						why = "calls " + e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
					}
				}
				if why != "" {
					if taintDecl(d, why) {
						changed = true
					}
					break
				}
			}
		}
	}

	for _, d := range g.List {
		if why, ok := tainted[d.Fn]; ok {
			pass.ExportObjectFact(d.Fn, &UsesNativeFloat{Why: why})
		}
	}

	// Enforcement is specific to the workload package: everything else
	// either feeds it (and is covered by the facts above) or works on
	// decoded outputs where native arithmetic is the point.
	if pass.Pkg.Name() != "kernels" {
		return nil, nil
	}

	// Roots: every method named Run, in source order for deterministic
	// attribution when helpers are shared between kernels.
	var roots []*callgraph.Decl
	for _, d := range g.List {
		if d.Fn.Name() == "Run" && d.Decl.Recv != nil {
			roots = append(roots, d)
		}
	}

	reachedFrom := make(map[*types.Func]*types.Func)
	var order []*types.Func
	for _, root := range roots {
		stack := []*types.Func{root.Fn}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := reachedFrom[fn]; seen {
				continue
			}
			d, declared := g.Decls[fn]
			if !declared || pass.Allowed(d.File, d.Decl) {
				continue
			}
			reachedFrom[fn] = root.Fn
			order = append(order, fn)
			for _, e := range d.Edges {
				if _, local := g.Decls[e.Callee]; local {
					stack = append(stack, e.Callee)
				}
			}
		}
	}

	for _, fn := range order {
		root := reachedFrom[fn]
		d := g.Decls[fn]
		for _, op := range localOps[fn] {
			report(pass, op.pos, op.op, fn, root)
		}
		for _, e := range d.Edges {
			if _, local := g.Decls[e.Callee]; local || e.Callee.Pkg() == nil || e.Callee.Pkg() == pass.Pkg {
				continue
			}
			why := crossWhy(e.Callee)
			if why == "" {
				continue
			}
			callee := e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
			if fn == root {
				pass.Reportf(e.Site.Pos(), "call to %s uses native float arithmetic (%s) in %s; the injected compute path must go through fp.Env",
					callee, why, analysis.FuncShortName(root))
			} else {
				pass.Reportf(e.Site.Pos(), "call to %s uses native float arithmetic (%s) in %s, reachable from %s; the injected compute path must go through fp.Env",
					callee, why, analysis.FuncShortName(fn), analysis.FuncShortName(root))
			}
		}
	}
	return nil, nil
}

// collectOps gathers the non-constant native float operations in a
// function body, in source order.
func collectOps(pass *analysis.Pass, body *ast.BlockStmt) []floatOp {
	var ops []floatOp
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if !arithOp(e.Op) || isConst(pass, e) {
				return true
			}
			if isFloat(pass.TypesInfo.Types[e.X].Type) || isFloat(pass.TypesInfo.Types[e.Y].Type) {
				ops = append(ops, floatOp{e.OpPos, e.Op})
			}
		case *ast.UnaryExpr:
			if e.Op == token.SUB && !isConst(pass, e) && isFloat(pass.TypesInfo.Types[e.X].Type) {
				ops = append(ops, floatOp{e.OpPos, e.Op})
			}
		case *ast.AssignStmt:
			if op, ok := arithAssign(e.Tok); ok && len(e.Lhs) == 1 && isFloat(pass.TypesInfo.Types[e.Lhs[0]].Type) {
				ops = append(ops, floatOp{e.TokPos, op})
			}
		}
		return true
	})
	return ops
}

func report(pass *analysis.Pass, pos token.Pos, op token.Token, fn, root *types.Func) {
	if fn == root {
		pass.Reportf(pos, "native float arithmetic %q in %s; the injected compute path must go through fp.Env",
			op.String(), analysis.FuncShortName(root))
		return
	}
	pass.Reportf(pos, "native float arithmetic %q in %s, reachable from %s; the injected compute path must go through fp.Env",
		op.String(), analysis.FuncShortName(fn), analysis.FuncShortName(root))
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func arithAssign(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	}
	return 0, false
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
