package softfloat_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/softfloat"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), softfloat.Analyzer, "kernels", "other", "helpers")
}
