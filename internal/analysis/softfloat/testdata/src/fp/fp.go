// Package fp is a stand-in for mixedrel/internal/fp: the analyzers match
// the protected vocabulary by package name, so this minimal shape is all
// the testdata packages need.
package fp

type Bits uint64

type Format int

func (f Format) FromFloat64(v float64) Bits { return Bits(v) }
func (f Format) ToFloat64(b Bits) float64   { return float64(b) }

type Env interface {
	Format() Format
	FromFloat64(v float64) Bits
	ToFloat64(b Bits) float64
	Add(a, b Bits) Bits
	Mul(a, b Bits) Bits
	FMA(a, b, c Bits) Bits
}
