// Package helpers holds shared numeric utilities outside the kernels
// package. The pre-fact, per-package softfloat analyzer was blind to
// everything here: a kernel calling helpers.Scale from Run computed in
// native binary64 without a single diagnostic. The module-wide engine
// exports UsesNativeFloat facts for these functions and flags the
// kernel-side call sites.
package helpers

// Scale computes natively; calling it from a Run path is a violation.
func Scale(x float64) float64 { // want fact:`Scale: usesNativeFloat\(native float "\*"\)`
	return x * 1.5
}

// Chain performs no arithmetic of its own; taint flows through the call.
func Chain(x float64) float64 { // want fact:`Chain: usesNativeFloat\(calls Scale\)`
	return Scale(x)
}

// Blessed is construction-time input generation. The directive is a
// caller-independent claim that this float use is off the injected
// datapath, so it blocks the fact and Run paths may call it.
//
//mixedrelvet:allow softfloat construction-time input generation
func Blessed(x float64) float64 {
	return x * 2
}
