package kernels

import "fp"

// testKernel lives in a _test.go file: its Run method and native float
// arithmetic are outside the analyzer's scope even though the package
// matches.
type testKernel struct{}

func (testKernel) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	x := env.ToFloat64(in[0][0])
	x = x*2 + 1
	return []fp.Bits{env.FromFloat64(x)}
}
