package kernels

import "fp"

type K struct {
	n    int
	bias float64
}

func (k *K) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	a := in[0]
	out := make([]fp.Bits, len(a))
	scale := 2 * 3.5 // constant-folded: no dynamic arithmetic happens
	x := env.ToFloat64(a[0])
	y := x * scale // want `native float arithmetic "\*" in \(\*K\)\.Run`
	y += k.bias    // want `native float arithmetic "\+" in \(\*K\)\.Run`
	z := -y        // want `native float arithmetic "-" in \(\*K\)\.Run`
	_ = z
	_ = k.runTolerance(env, a[0], a[0])
	acc := env.FromFloat64(0)
	for i := range a {
		acc = env.FMA(a[i], a[i], acc) // the sanctioned path
		out[i] = acc
	}
	helper(env, out)
	return out
}

// helper is reachable from Run, so its native arithmetic is on the
// injected path too.
func helper(env fp.Env, out []fp.Bits) {
	v := env.ToFloat64(out[0])
	v = v / 3 // want `native float arithmetic "/" in helper, reachable from \(\*K\)\.Run`
	out[0] = env.FromFloat64(v)
}

// uniform is the allowlisted input-generation helper: construction-time
// float64 is legitimate even when Run shares code with it.
func uniform(n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*0.5
	}
	return xs
}

// NewK builds inputs natively at construction time; it is not reachable
// from Run, so nothing here is flagged.
func NewK(n int) *K {
	xs := uniform(n, 0.5, 1)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return &K{n: n, bias: sum / float64(n)}
}

// forward64 is a native reference implementation used only by tests and
// post-processing; unreachable from Run, so untouched.
func forward64(xs []float64) float64 {
	acc := 0.0
	for _, x := range xs {
		acc += x * x
	}
	return acc
}

//mixedrelvet:allow softfloat decode-side tolerance check, measured not injected
func tolerance(env fp.Env, a, b fp.Bits) float64 {
	return env.ToFloat64(a) - env.ToFloat64(b)
}

// runTolerance sits between Run and the allowlisted tolerance helper; it
// performs no arithmetic itself, so only the directive keeps the suite
// quiet here.
func (k *K) runTolerance(env fp.Env, a, b fp.Bits) float64 {
	return tolerance(env, a, b)
}
