package kernels

import (
	"fp"
	"helpers"
)

type K struct {
	n    int
	bias float64
}

func (k *K) Run(env fp.Env, in [][]fp.Bits) []fp.Bits { // want fact:`Run: usesNativeFloat\(native float "\*"\)`
	a := in[0]
	out := make([]fp.Bits, len(a))
	scale := 2 * 3.5 // constant-folded: no dynamic arithmetic happens
	x := env.ToFloat64(a[0])
	y := x * scale // want `native float arithmetic "\*" in \(\*K\)\.Run`
	y += k.bias    // want `native float arithmetic "\+" in \(\*K\)\.Run`
	z := -y        // want `native float arithmetic "-" in \(\*K\)\.Run`
	w := helpers.Scale(z)  // want `call to helpers\.Scale uses native float arithmetic \(native float "\*"\) in \(\*K\)\.Run`
	_ = helpers.Chain(w)   // want `call to helpers\.Chain uses native float arithmetic \(calls Scale\) in \(\*K\)\.Run`
	_ = helpers.Blessed(w) // clean: the helper's allow directive blocks the fact
	_ = k.runTolerance(env, a[0], a[0])
	acc := env.FromFloat64(0)
	for i := range a {
		acc = env.FMA(a[i], a[i], acc) // the sanctioned path
		out[i] = acc
	}
	helper(env, out)
	return out
}

// helper is reachable from Run, so its native arithmetic is on the
// injected path too.
func helper(env fp.Env, out []fp.Bits) { // want fact:`helper: usesNativeFloat\(native float "/"\)`
	v := env.ToFloat64(out[0])
	v = v / 3 // want `native float arithmetic "/" in helper, reachable from \(\*K\)\.Run`
	out[0] = env.FromFloat64(v)
}

// uniform is construction-time input generation: it carries a fact like
// any other native-arithmetic function (there is no name-based allowlist
// anymore), but nothing on a Run path calls it, so nothing is flagged.
func uniform(n int, lo, hi float64) []float64 { // want fact:`uniform: usesNativeFloat\(native float "\+"\)`
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*0.5
	}
	return xs
}

// NewK builds inputs natively at construction time; it is not reachable
// from Run, so nothing here is flagged.
func NewK(n int) *K { // want fact:`NewK: usesNativeFloat\(native float "\+"\)`
	xs := uniform(n, 0.5, 1)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return &K{n: n, bias: sum / float64(n)}
}

// forward64 is a native reference implementation used only by tests and
// post-processing; unreachable from Run, so untouched.
func forward64(xs []float64) float64 { // want fact:`forward64: usesNativeFloat\(native float "\+"\)`
	acc := 0.0
	for _, x := range xs {
		acc += x * x
	}
	return acc
}

//mixedrelvet:allow softfloat decode-side tolerance check, measured not injected
func tolerance(env fp.Env, a, b fp.Bits) float64 {
	return env.ToFloat64(a) - env.ToFloat64(b)
}

// runTolerance sits between Run and the exempted tolerance helper; it
// performs no arithmetic itself, and the directive on tolerance blocks
// the fact, so the chain stays quiet.
func (k *K) runTolerance(env fp.Env, a, b fp.Bits) float64 {
	return tolerance(env, a, b)
}
