// Package other does native float arithmetic in a Run method, but is not
// the kernels package, so the softfloat analyzer leaves it alone (decoded
// outputs, metrics, and architecture models compute natively on purpose).
package other

type M struct{}

func (M) Run(xs []float64) float64 { // want fact:`Run: usesNativeFloat\(native float "\+"\)`
	acc := 0.0
	for _, x := range xs {
		acc += x * x
	}
	return acc
}
