package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was resolved under.
	Path string
	// Dir is the directory holding the package's source files.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages rooted at a directory using only
// the standard library. Imports are resolved in three tiers:
//
//  1. paths under Module map into subdirectories of Dir (module layout);
//  2. with Module == "", any path whose directory exists under Dir maps
//     there (GOPATH-style layout, used by analysistest testdata trees);
//  3. everything else goes to the toolchain's "source" importer, which
//     type-checks the standard library from GOROOT source and therefore
//     needs no pre-built export data and no network.
//
// Dependencies are always loaded without test files; only packages
// requested through Load honor IncludeTests. That keeps in-package test
// files — which may import sibling packages that import this one — from
// manufacturing spurious import cycles.
type Loader struct {
	// Dir is the root directory packages are resolved under.
	Dir string
	// Module is the import-path prefix corresponding to Dir ("" selects
	// the GOPATH-style layout of tier 2).
	Module string
	// IncludeTests adds in-package _test.go files to packages requested
	// via Load. External test packages (package foo_test) are never
	// loaded.
	IncludeTests bool

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Fset returns the loader's file set, creating it on first use.
func (l *Loader) Fset() *token.FileSet {
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	return l.fset
}

func (l *Loader) init() {
	l.Fset()
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	if l.pkgs == nil {
		l.pkgs = make(map[string]*Package)
		l.loading = make(map[string]bool)
	}
}

// Load resolves the given patterns ("./...", "./internal/fp",
// "<module>/internal/...", ".") to package directories under Dir and
// returns the type-checked packages in deterministic (path-sorted) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	dirs, err := l.ResolveDirs(patterns...)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []*Package
	for _, path := range paths {
		pkg, err := l.load(path, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ResolveDirs expands the patterns to the sorted package directories
// they denote, without parsing or type-checking anything. The cache's
// warm fast path uses it to locate packages by directory alone.
func (l *Loader) ResolveDirs(patterns ...string) ([]string, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rel, recursive, err := l.patternRel(pat)
		if err != nil {
			return nil, err
		}
		root := filepath.Join(l.Dir, rel)
		if !recursive {
			dirs[root] = true
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("walking %s: %w", pat, err)
		}
	}
	out := make([]string, 0, len(dirs))
	for dir := range dirs {
		out = append(out, dir)
	}
	sort.Strings(out)
	return out, nil
}

// Lookup returns the already-loaded package for an import path, loading
// it (without test files) on first request if it resolves to a local
// directory. It is the driver's bridge for analyzing dependencies of the
// requested packages: facts must exist for everything they import.
func (l *Loader) Lookup(path string) *Package {
	l.init()
	if pkg, ok := l.pkgs[path]; ok {
		return pkg
	}
	if !hasGoFiles(l.dirFor(path)) {
		return nil
	}
	if l.Module != "" && path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return nil
	}
	pkg, err := l.load(path, false)
	if err != nil {
		return nil
	}
	return pkg
}

// patternRel converts a package pattern to a Dir-relative directory and a
// recursive flag.
func (l *Loader) patternRel(pat string) (rel string, recursive bool, err error) {
	p := pat
	if l.Module != "" {
		if p == l.Module {
			p = "."
		} else if rest, ok := strings.CutPrefix(p, l.Module+"/"); ok {
			p = "./" + rest
		}
	}
	if rest, ok := strings.CutSuffix(p, "/..."); ok {
		recursive = true
		p = rest
		if p == "." || p == "" {
			return ".", true, nil
		}
	} else if p == "..." {
		return ".", true, nil
	}
	p = filepath.Clean(p)
	if filepath.IsAbs(p) || strings.HasPrefix(p, "..") {
		return "", false, fmt.Errorf("pattern %q escapes %s", pat, l.Dir)
	}
	return p, recursive, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Dir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if l.Module == "" {
			return "", fmt.Errorf("cannot load the root directory of a GOPATH-style tree")
		}
		return l.Module, nil
	case l.Module == "":
		return rel, nil
	default:
		return l.Module + "/" + rel, nil
	}
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// Import implements types.Importer, making the loader usable as the
// import resolver for its own type-checking passes.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.init()
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.Module != "" {
		if path == l.Module {
			pkg, err := l.load(path, false)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
			if _, err := os.Stat(filepath.Join(l.Dir, filepath.FromSlash(rest))); err != nil {
				return nil, fmt.Errorf("package %s not found under %s", path, l.Dir)
			}
			pkg, err := l.load(path, false)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	} else if hasGoFiles(filepath.Join(l.Dir, filepath.FromSlash(path))) {
		pkg, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps an already-validated local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := path
	if l.Module != "" {
		rel = strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	}
	return filepath.Join(l.Dir, filepath.FromSlash(rel))
}

func (l *Loader) load(path string, includeTests bool) (*Package, error) {
	key := path
	if includeTests {
		key += " [tests]"
	}
	if pkg, ok := l.pkgs[key]; ok {
		return pkg, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir, includeTests)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[key] = pkg
	return pkg, nil
}

// parseDir parses the directory's package files: all non-test files of
// the primary (non-_test-suffixed) package, plus its in-package test
// files when includeTests is set. Files are returned in name order so
// type-checking and diagnostics are deterministic.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		name string
		test bool
		file *ast.File
	}
	var candidates []parsed
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		test := strings.HasSuffix(name, "_test.go")
		if test && !includeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, parsed{name, test, f})
	}
	primary := ""
	for _, c := range candidates {
		if !c.test {
			if name := c.file.Name.Name; primary == "" {
				primary = name
			} else if name != primary {
				return nil, fmt.Errorf("multiple packages in %s: %s and %s", dir, primary, name)
			}
		}
	}
	if primary == "" {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, c := range candidates {
		if c.file.Name.Name == primary {
			files = append(files, c.file)
		}
	}
	return files, nil
}
