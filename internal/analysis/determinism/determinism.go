// Package determinism forbids the three nondeterminism vectors that the
// campaign engine's bit-exactness guarantee cannot survive:
//
//  1. math/rand (v1 or v2): every stochastic draw must come from a
//     splittable rng.Rand stream derived from the campaign seed, so a
//     campaign re-run with the same seed replays bit-identically and
//     parallel shards get decorrelated streams by construction;
//  2. wall-clock reads (time.Now, time.Since, time.Until): clock-derived
//     seeds or timings leak host state into results;
//  3. map iteration feeding rendered output: Go randomizes map iteration
//     order, so a `for k := range m` that prints, writes a builder, or
//     appends report.Table rows produces differently-ordered artifacts
//     run to run — exactly what the byte-identical-tables contract of
//     the execution engine forbids. Iterate a sorted key slice instead.
//
// The checks above are local to each package. On top of them the
// analyzer is interprocedural: every function that reads a
// nondeterminism source — directly or through any chain of calls,
// including allow-exempted ones — carries a NondetSource fact, and calls
// to fact-carrying functions are reported where nondeterminism cannot be
// tolerated at all: in functions reachable from a kernel's Run method,
// and anywhere in the report package (rendered artifacts must be
// byte-identical). An allow directive therefore exempts a wall-clock
// read locally (progress logging is fine in a CLI path) without hiding
// it from callers on the deterministic core's paths.
//
// Test files are exempt (benchmarks time things; tests may exercise
// disorder deliberately), as is any statement carrying
// //mixedrelvet:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/callgraph"
	"mixedrel/internal/analysis/inspect"
)

// NondetSource marks a function whose result or behavior depends on
// something other than its inputs and the campaign seed: it reads the
// wall clock or draws from math/rand, directly or transitively.
type NondetSource struct {
	// Why names the first source found: "reads time.Now", "draws from
	// math/rand", or "calls pkg.F" for transitive taint.
	Why string
}

func (*NondetSource) AFact() {}

func (f *NondetSource) String() string { return "nondetSource(" + f.Why + ")" }

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "forbid math/rand, wall-clock reads, and map-ordered rendered output in the deterministic simulator",
	Version:   2,
	Requires:  []*analysis.Analyzer{inspect.Analyzer, callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*NondetSource)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		checkImports(pass, file)
	}
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, e); fn != nil && wallClock(fn) {
				if !allowedOnStack(pass, file, stack) {
					pass.Reportf(e.Pos(), "wall-clock read time.%s in deterministic code; results must be a function of the seed alone", fn.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[e.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, e.Body); sink != "" && !allowedOnStack(pass, file, stack) {
				pass.Reportf(e.For, "map iteration order is nondeterministic but this loop feeds rendered output (%s); iterate sorted keys", sink)
			}
		}
		return true
	})

	// Interprocedural taint: seed with direct sources, then propagate
	// through call edges to a fixed point. Allow directives do NOT block
	// the fact — an exemption is a claim about one context, not about
	// every caller — so exempted sources still taint their callers.
	tainted := make(map[*types.Func]string)
	imported := make(map[*types.Func]string)
	crossWhy := func(fn *types.Func) string {
		if why, ok := imported[fn]; ok {
			return why
		}
		var fact NondetSource
		why := ""
		if pass.ImportObjectFact(fn, &fact) {
			why = fact.Why
		}
		imported[fn] = why
		return why
	}
	for _, d := range g.List {
		for _, e := range d.Edges {
			if why := directSource(e.Callee); why != "" {
				tainted[d.Fn] = why
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range g.List {
			if _, done := tainted[d.Fn]; done {
				continue
			}
			for _, e := range d.Edges {
				why := ""
				if _, ok := tainted[e.Callee]; ok {
					why = "calls " + analysis.FuncShortName(e.Callee)
				} else if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg && directSource(e.Callee) == "" {
					if crossWhy(e.Callee) != "" {
						why = "calls " + e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
					}
				}
				if why != "" {
					tainted[d.Fn] = why
					changed = true
					break
				}
			}
		}
	}
	for _, d := range g.List {
		if why, ok := tainted[d.Fn]; ok {
			pass.ExportObjectFact(d.Fn, &NondetSource{Why: why})
		}
	}

	// Enforcement: nondeterminism sources — however deeply wrapped — are
	// forbidden outright on a kernel's Run path (fault classification
	// compares against a golden run; any divergence is misscored) and in
	// the report package (artifacts are diffed byte-for-byte).
	enforce := func(d *callgraph.Decl, root *types.Func) {
		for _, e := range d.Edges {
			why := ""
			if w, ok := tainted[e.Callee]; ok {
				why = w
			} else if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg && directSource(e.Callee) == "" {
				why = crossWhy(e.Callee)
			}
			if why == "" || pass.Allowed(d.File, e.Site) {
				continue
			}
			callee := analysis.FuncShortName(e.Callee)
			if e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg {
				callee = e.Callee.Pkg().Name() + "." + callee
			}
			if root != nil {
				pass.Reportf(e.Site.Pos(), "call to %s is a nondeterminism source (%s) on the Run path of %s; results must be a function of the seed alone",
					callee, why, analysis.FuncShortName(root))
			} else {
				pass.Reportf(e.Site.Pos(), "call to %s is a nondeterminism source (%s); results must be a function of the seed alone",
					callee, why)
			}
		}
	}
	switch pass.Pkg.Name() {
	case "kernels":
		seen := make(map[*types.Func]bool)
		for _, rd := range g.List {
			if rd.Fn.Name() != "Run" || rd.Decl.Recv == nil {
				continue
			}
			stack := []*types.Func{rd.Fn}
			for len(stack) > 0 {
				fn := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[fn] {
					continue
				}
				seen[fn] = true
				d, ok := g.Decls[fn]
				if !ok {
					continue
				}
				enforce(d, rd.Fn)
				for _, e := range d.Edges {
					if _, local := g.Decls[e.Callee]; local {
						stack = append(stack, e.Callee)
					}
				}
			}
		}
	case "report":
		for _, d := range g.List {
			enforce(d, nil)
		}
	}
	return nil, nil
}

// directSource classifies callees that are nondeterministic by
// definition.
func directSource(fn *types.Func) string {
	if wallClock(fn) {
		return "reads time." + fn.Name()
	}
	if p := fn.Pkg(); p != nil && (p.Path() == "math/rand" || p.Path() == "math/rand/v2") {
		return "draws from " + p.Path()
	}
	return ""
}

func checkImports(pass *analysis.Pass, file *ast.File) {
	for _, spec := range file.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			if !pass.Allowed(file, spec) {
				pass.Reportf(spec.Pos(), "import of %s in deterministic code; draw from a seeded, splittable rng.Rand stream instead", path)
			}
		}
	}
}

func wallClock(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// findSink reports the first output-rendering operation in the loop
// body: a fmt print, a write into a strings.Builder or bytes.Buffer, or
// any use of the report package (method call or field assignment). These
// are the operations whose effect preserves iteration order.
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, e)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				sink = "fmt." + fn.Name()
				return false
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv := sig.Recv().Type()
				if recvPkgName(recv) == "report" {
					sink = "report method " + fn.Name()
					return false
				}
				if analysis.IsPkgType(recv, "strings", "Builder") || analysis.IsPkgType(recv, "bytes", "Buffer") {
					named := analysis.Named(recv)
					sink = "write into " + named.Obj().Pkg().Name() + "." + named.Obj().Name()
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if tv, ok := pass.TypesInfo.Types[sel.X]; ok && recvPkgName(tv.Type) == "report" {
						sink = "assignment to report field " + sel.Sel.Name
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

func recvPkgName(t types.Type) string {
	n := analysis.Named(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name()
}

func allowedOnStack(pass *analysis.Pass, file *ast.File, stack []ast.Node) bool {
	for _, n := range stack {
		if pass.Allowed(file, n) {
			return true
		}
	}
	return false
}
