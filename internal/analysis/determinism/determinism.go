// Package determinism forbids the three nondeterminism vectors that the
// campaign engine's bit-exactness guarantee cannot survive:
//
//  1. math/rand (v1 or v2): every stochastic draw must come from a
//     splittable rng.Rand stream derived from the campaign seed, so a
//     campaign re-run with the same seed replays bit-identically and
//     parallel shards get decorrelated streams by construction;
//  2. wall-clock reads (time.Now, time.Since, time.Until): clock-derived
//     seeds or timings leak host state into results;
//  3. map iteration feeding rendered output: Go randomizes map iteration
//     order, so a `for k := range m` that prints, writes a builder, or
//     appends report.Table rows produces differently-ordered artifacts
//     run to run — exactly what the byte-identical-tables contract of
//     the execution engine forbids. Iterate a sorted key slice instead.
//
// Test files are exempt (benchmarks time things; tests may exercise
// disorder deliberately), as is any statement carrying
// //mixedrelvet:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, wall-clock reads, and map-ordered rendered output in the deterministic simulator",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		checkImports(pass, file)
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch e := n.(type) {
			case *ast.CallExpr:
				if fn := analysis.CalleeFunc(pass.TypesInfo, e); fn != nil && wallClock(fn) {
					if !allowedOnStack(pass, file, stack) {
						pass.Reportf(e.Pos(), "wall-clock read time.%s in deterministic code; results must be a function of the seed alone", fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[e.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := findSink(pass, e.Body); sink != "" && !allowedOnStack(pass, file, stack) {
					pass.Reportf(e.For, "map iteration order is nondeterministic but this loop feeds rendered output (%s); iterate sorted keys", sink)
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkImports(pass *analysis.Pass, file *ast.File) {
	for _, spec := range file.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			if !pass.Allowed(file, spec) {
				pass.Reportf(spec.Pos(), "import of %s in deterministic code; draw from a seeded, splittable rng.Rand stream instead", path)
			}
		}
	}
}

func wallClock(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// findSink reports the first output-rendering operation in the loop
// body: a fmt print, a write into a strings.Builder or bytes.Buffer, or
// any use of the report package (method call or field assignment). These
// are the operations whose effect preserves iteration order.
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, e)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				sink = "fmt." + fn.Name()
				return false
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv := sig.Recv().Type()
				if recvPkgName(recv) == "report" {
					sink = "report method " + fn.Name()
					return false
				}
				if analysis.IsPkgType(recv, "strings", "Builder") || analysis.IsPkgType(recv, "bytes", "Buffer") {
					named := analysis.Named(recv)
					sink = "write into " + named.Obj().Pkg().Name() + "." + named.Obj().Name()
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if tv, ok := pass.TypesInfo.Types[sel.X]; ok && recvPkgName(tv.Type) == "report" {
						sink = "assignment to report field " + sel.Sel.Name
						return false
					}
				}
			}
		}
		return true
	})
	return sink
}

func recvPkgName(t types.Type) string {
	n := analysis.Named(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name()
}

func allowedOnStack(pass *analysis.Pass, file *ast.File, stack []ast.Node) bool {
	for _, n := range stack {
		if pass.Allowed(file, n) {
			return true
		}
	}
	return false
}
