package determinism_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/determinism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "d", "report", "kernels", "clock")
}
