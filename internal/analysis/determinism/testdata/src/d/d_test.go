package d

import (
	"fmt"
	"math/rand"
	"time"
)

// Tests and benchmarks legitimately read clocks, use math/rand, and dump
// maps unordered; _test.go files are exempt.
func testOnlyHelpers(m map[string]int) {
	start := time.Now()
	for k, v := range m {
		fmt.Println(k, v, rand.Int(), time.Since(start))
	}
}
