// Package d exercises the three nondeterminism vectors.
package d

import (
	"fmt"
	"math/rand" // want `import of math/rand in deterministic code`
	"sort"
	"strings"
	"time"

	"report"
)

func seeds() (int64, time.Duration, time.Time) { // want fact:`seeds: nondetSource\(reads time\.Now\)`
	t0 := time.Now()            // want `wall-clock read time\.Now in deterministic code`
	d := time.Since(t0)         // want `wall-clock read time\.Since in deterministic code`
	return rand.Int63(), d, t0
}

func renderMap(m map[string]float64) {
	for k, v := range m { // want `map iteration order is nondeterministic but this loop feeds rendered output \(fmt\.Printf\)`
		fmt.Printf("%s %g\n", k, v)
	}
}

func tableFromMap(m map[string]float64, t *report.Table) {
	for k, v := range m { // want `map iteration order is nondeterministic but this loop feeds rendered output \(report method AddRow\)`
		t.AddRow(k, fmt.Sprint(v))
	}
}

func rowsFromMap(m map[string]string, t *report.Table) {
	for k, v := range m { // want `map iteration order is nondeterministic but this loop feeds rendered output \(assignment to report field Rows\)`
		t.Rows = append(t.Rows, []string{k, v})
	}
}

func buildFromMap(m map[string]string) string {
	var b strings.Builder
	for k := range m { // want `map iteration order is nondeterministic but this loop feeds rendered output \(write into strings\.Builder\)`
		b.WriteString(k)
	}
	return b.String()
}

// renderSorted is the sanctioned shape: collect, sort, then render.
func renderSorted(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m { // accumulating keys is order-insensitive
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // a slice range is deterministic
		fmt.Printf("%s %g\n", k, m[k])
	}
}

// total folds a map commutatively: no rendering sink, no diagnostic.
func total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

func debugDump(m map[string]float64) {
	//mixedrelvet:allow determinism debug helper, output is not a campaign artifact
	for k, v := range m {
		fmt.Printf("%s %g\n", k, v)
	}
}
