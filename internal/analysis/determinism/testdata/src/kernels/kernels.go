// Package kernels exercises Run-path enforcement: nondeterminism sources
// wrapped in another package are invisible to a per-package analyzer (no
// math/rand or time import appears here), but the fact engine carries the
// taint across the boundary and down the call chain.
package kernels

import "clock"

type K struct{ last int64 }

func (k *K) Run(xs []float64) float64 { // want fact:`Run: nondetSource\(calls clock\.Stamp\)`
	k.last = clock.Stamp() // want `call to clock\.Stamp is a nondeterminism source \(reads time\.Now\) on the Run path of \(\*K\)\.Run`
	acc := 0.0
	for _, x := range xs {
		acc += x
	}
	step(k) // want `call to step is a nondeterminism source \(calls mark\) on the Run path of \(\*K\)\.Run`
	return acc
}

func step(k *K) { // want fact:`step: nondetSource\(calls mark\)`
	mark(k) // want `call to mark is a nondeterminism source \(calls clock\.Stamp\) on the Run path of \(\*K\)\.Run`
}

func mark(k *K) { // want fact:`mark: nondetSource\(calls clock\.Stamp\)`
	k.last = clock.Stamp() // want `call to clock\.Stamp is a nondeterminism source \(reads time\.Now\) on the Run path of \(\*K\)\.Run`
}

// offline is not reachable from any Run method, so wrapping the
// nondeterministic helper only earns it a fact, not a diagnostic.
func offline() int64 { // want fact:`offline: nondetSource\(calls clock\.Stamp\)`
	return clock.Stamp()
}
