// Package report is a stand-in for mixedrel/internal/report: the
// determinism analyzer recognizes rendering sinks by this package name.
package report

import "clock"

// Stamp shows report-wide enforcement: the report package renders
// byte-diffed artifacts, so nondeterminism sources are forbidden in every
// function here, not just on Run paths.
func Stamp() int64 { // want fact:`Stamp: nondetSource\(calls clock\.Stamp\)`
	return clock.Stamp() // want `call to clock\.Stamp is a nondeterminism source \(reads time\.Now\); results must be a function of the seed alone`
}

type Table struct {
	Columns []string
	Rows    [][]string
}

func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}
