// Package report is a stand-in for mixedrel/internal/report: the
// determinism analyzer recognizes rendering sinks by this package name.
package report

type Table struct {
	Columns []string
	Rows    [][]string
}

func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}
