// Package clock wraps a wall-clock read behind an innocuous-looking
// helper. The allow directive suppresses the local diagnostic (progress
// logging is legitimate in CLI paths), but the NondetSource fact is still
// exported: an exemption is a claim about one context, not about every
// caller, so deterministic-core callers are still flagged.
package clock

import "time"

func Stamp() int64 { // want fact:`Stamp: nondetSource\(reads time\.Now\)`
	//mixedrelvet:allow determinism progress logging helper, callers on hot paths are still flagged
	return time.Now().UnixNano()
}
