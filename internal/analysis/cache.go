package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// cacheSchema invalidates every entry when the on-disk format or the
// driver's result semantics change.
const cacheSchema = "mixedrelvet-cache-v1"

// Cache is a content-addressed on-disk store of per-package analysis
// results. Keys fold in the package's source bytes, the cache keys of
// its first-party dependencies (so an edit invalidates dependents, as
// fact propagation requires), and the analyzer fingerprint (names and
// versions); values hold the package's diagnostics and exported facts.
// Entries are immutable — a changed input produces a different key — so
// concurrent readers and writers need no locking beyond atomic file
// replacement.
type Cache struct {
	Dir string
}

// DefaultCacheDir returns the user-level cache directory mixedrelvet
// uses unless overridden ($MIXEDRELVET_CACHE or -cache).
func DefaultCacheDir() string {
	if env := os.Getenv("MIXEDRELVET_CACHE"); env != "" {
		return env
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "mixedrelvet")
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key[:2], key+".json")
}

func (c *Cache) load(key string) (*cacheEntry, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

func (c *Cache) store(key string, e *cacheEntry) {
	if c == nil || key == "" {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	// Atomic publish: a concurrent reader sees either no entry or a
	// complete one.
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// cacheEntry is the stored result of analyzing one package.
type cacheEntry struct {
	Findings []cachedFinding `json:"findings,omitempty"`
	Facts    []cachedFact    `json:"facts,omitempty"`
}

type cachedFinding struct {
	Analyzer string `json:"a"`
	File     string `json:"f"`
	Offset   int    `json:"off"`
	Line     int    `json:"l"`
	Column   int    `json:"c"`
	Message  string `json:"m"`
}

type cachedFact struct {
	Analyzer string          `json:"a"`
	Object   string          `json:"o,omitempty"`
	Name     string          `json:"n"`
	Type     string          `json:"t"`
	File     string          `json:"f,omitempty"`
	Offset   int             `json:"off,omitempty"`
	Line     int             `json:"l,omitempty"`
	Column   int             `json:"c,omitempty"`
	Data     json.RawMessage `json:"d"`
}

func newCacheEntry(findings []Finding, facts map[factKey]*FactRecord) *cacheEntry {
	e := &cacheEntry{}
	for _, f := range findings {
		e.Findings = append(e.Findings, cachedFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Offset:   f.Pos.Offset,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	for _, r := range sortedRecords(facts) {
		typeName, data, err := encodeFact(r.Fact)
		if err != nil {
			continue
		}
		e.Facts = append(e.Facts, cachedFact{
			Analyzer: r.Analyzer,
			Object:   r.Object,
			Name:     r.Name,
			Type:     typeName,
			File:     r.Pos.Filename,
			Offset:   r.Pos.Offset,
			Line:     r.Pos.Line,
			Column:   r.Pos.Column,
			Data:     data,
		})
	}
	return e
}

// decode reconstructs the entry's findings and facts for package path.
func (e *cacheEntry) decode(path string, reg factRegistry) ([]Finding, map[factKey]*FactRecord, error) {
	var findings []Finding
	for _, f := range e.Findings {
		findings = append(findings, Finding{
			Analyzer: f.Analyzer,
			Package:  path,
			Pos:      token.Position{Filename: f.File, Offset: f.Offset, Line: f.Line, Column: f.Column},
			Message:  f.Message,
		})
	}
	facts := make(map[factKey]*FactRecord, len(e.Facts))
	for _, cf := range e.Facts {
		fact, err := reg.decodeFact(cf.Analyzer, cf.Type, cf.Data)
		if err != nil {
			return nil, nil, err
		}
		facts[factKey{cf.Analyzer, path, cf.Object}] = &FactRecord{
			Analyzer: cf.Analyzer,
			Package:  path,
			Object:   cf.Object,
			Name:     cf.Name,
			Pos:      token.Position{Filename: cf.File, Offset: cf.Offset, Line: cf.Line, Column: cf.Column},
			Fact:     fact,
		}
	}
	return findings, facts, nil
}

// suiteFingerprint hashes everything about the run that is not package
// content: the schema, the toolchain, the analyzer closure (names and
// versions), and the known-directive name set.
func suiteFingerprint(closure []*Analyzer, known map[string]bool) string {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	fmt.Fprintln(h, runtime.Version())
	names := make([]string, 0, len(closure))
	byName := make(map[string]*Analyzer, len(closure))
	for _, a := range closure {
		names = append(names, a.Name)
		byName[a.Name] = a
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "analyzer %s v%d\n", name, byName[name].Version)
	}
	knownNames := make([]string, 0, len(known))
	for name := range known {
		knownNames = append(knownNames, name)
	}
	sort.Strings(knownNames)
	fmt.Fprintf(h, "known %s\n", strings.Join(knownNames, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// hashPackageFiles hashes the names and contents of the directory's
// non-test Go files (the exact set the loader would assign to the
// package, and the only files that can influence diagnostics or facts).
func hashPackageFiles(dir string) (string, error) {
	names, err := packageSourceFiles(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %s\n", name, hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// packageSourceFiles lists the directory's non-test Go files in sorted
// order.
func packageSourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// packageCacheKey computes the unit's cache key from its source hash,
// its dependencies' keys (already computed: dependencies run in earlier
// waves), and the suite fingerprint. An empty key disables caching for
// the package (e.g. unreadable sources).
func packageCacheKey(u *unit, fingerprint string) string {
	src, err := hashPackageFiles(u.pkg.Dir)
	if err != nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintln(h, fingerprint)
	fmt.Fprintln(h, u.pkg.Path)
	fmt.Fprintln(h, src)
	deps := make([]*unit, len(u.deps))
	copy(deps, u.deps)
	sort.Slice(deps, func(i, j int) bool { return deps[i].pkg.Path < deps[j].pkg.Path })
	for _, dep := range deps {
		if dep.key == "" {
			return ""
		}
		fmt.Fprintf(h, "dep %s %s\n", dep.pkg.Path, dep.key)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TryCached attempts to serve an entire run from the cache without
// parsing function bodies or type-checking anything: it resolves the
// patterns to package directories, follows first-party imports from
// ImportsOnly parses, recomputes every cache key from source hashes
// alone, and succeeds only if every package in the transitive closure
// has a cache entry. This is the warm-run fast path that makes a
// no-change `make lint` near-instant.
func TryCached(cache *Cache, dir, module string, patterns []string, analyzers []*Analyzer, known []string) (*Result, bool) {
	if cache == nil {
		return nil, false
	}
	closure, err := analyzerClosure(analyzers)
	if err != nil {
		return nil, false
	}
	knownSet := make(map[string]bool)
	for _, name := range known {
		knownSet[name] = true
	}
	for _, a := range analyzers {
		knownSet[a.Name] = true
	}
	fingerprint := suiteFingerprint(closure, knownSet)
	reg := buildFactRegistry(closure)

	resolver := &Loader{Dir: dir, Module: module}
	dirs, err := resolver.ResolveDirs(patterns...)
	if err != nil {
		return nil, false
	}

	type scanPkg struct {
		path, dir string
		imports   []string
		key       string
	}
	pkgs := make(map[string]*scanPkg)
	fset := token.NewFileSet()

	var scan func(path, pkgDir string) (*scanPkg, bool)
	scan = func(path, pkgDir string) (*scanPkg, bool) {
		if p, ok := pkgs[path]; ok {
			return p, p != nil
		}
		pkgs[path] = nil // cycle guard
		names, err := packageSourceFiles(pkgDir)
		if err != nil || len(names) == 0 {
			return nil, false
		}
		p := &scanPkg{path: path, dir: pkgDir}
		imports := make(map[string]bool)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(pkgDir, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, false
			}
			for _, spec := range f.Imports {
				if imp, err := strconv.Unquote(spec.Path.Value); err == nil {
					imports[imp] = true
				}
			}
		}
		for imp := range imports {
			p.imports = append(p.imports, imp)
		}
		sort.Strings(p.imports)
		pkgs[path] = p
		for _, imp := range p.imports {
			if impDir, ok := firstPartyDir(dir, module, imp); ok {
				if _, ok := scan(imp, impDir); !ok {
					return nil, false
				}
			}
		}
		return p, true
	}

	requested := make([]string, 0, len(dirs))
	for _, pkgDir := range dirs {
		path, err := resolver.importPathFor(pkgDir)
		if err != nil {
			return nil, false
		}
		requested = append(requested, path)
		if _, ok := scan(path, pkgDir); !ok {
			return nil, false
		}
	}
	sort.Strings(requested)

	// Keys bottom-up over the import graph.
	var keyOf func(path string, stack map[string]bool) (string, bool)
	keyOf = func(path string, stack map[string]bool) (string, bool) {
		p := pkgs[path]
		if p == nil {
			return "", false
		}
		if p.key != "" {
			return p.key, true
		}
		if stack[path] {
			return "", false
		}
		if stack == nil {
			stack = make(map[string]bool)
		}
		stack[path] = true
		defer delete(stack, path)
		src, err := hashPackageFiles(p.dir)
		if err != nil {
			return "", false
		}
		h := sha256.New()
		fmt.Fprintln(h, fingerprint)
		fmt.Fprintln(h, path)
		fmt.Fprintln(h, src)
		for _, imp := range p.imports {
			if _, ok := firstPartyDir(dir, module, imp); !ok {
				continue
			}
			depKey, ok := keyOf(imp, stack)
			if !ok {
				return "", false
			}
			fmt.Fprintf(h, "dep %s %s\n", imp, depKey)
		}
		p.key = hex.EncodeToString(h.Sum(nil))
		return p.key, true
	}

	res := &Result{}
	paths := make([]string, 0, len(pkgs))
	for path, p := range pkgs {
		if p != nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	requestedSet := make(map[string]bool, len(requested))
	for _, path := range requested {
		requestedSet[path] = true
	}
	global := make(map[factKey]*FactRecord)
	for _, path := range paths {
		key, ok := keyOf(path, make(map[string]bool))
		if !ok {
			return nil, false
		}
		entry, ok := cache.load(key)
		if !ok {
			return nil, false
		}
		findings, facts, err := entry.decode(path, reg)
		if err != nil {
			return nil, false
		}
		res.CacheHits++
		for k, r := range facts {
			global[k] = r
		}
		if requestedSet[path] {
			res.Findings = append(res.Findings, findings...)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool { return lessFinding(res.Findings[i], res.Findings[j]) })
	res.Facts = sortedRecords(global)
	// Commit the hit count to the process-wide telemetry counter only
	// now that the whole closure served: any earlier return above falls
	// through to the full driver, which counts those same packages
	// itself — committing eagerly per package would double-stat every
	// cold-cache run.
	mCacheHits.Add(uint64(res.CacheHits))
	return res, true
}

// firstPartyDir resolves an import path to a directory under dir using
// the loader's tiers (module prefix, or GOPATH-style local directory),
// reporting whether the path is first-party.
func firstPartyDir(dir, module, path string) (string, bool) {
	var rel string
	switch {
	case module != "" && path == module:
		rel = "."
	case module != "":
		rest, ok := strings.CutPrefix(path, module+"/")
		if !ok {
			return "", false
		}
		rel = rest
	default:
		rel = path
	}
	d := filepath.Join(dir, filepath.FromSlash(rel))
	if !hasGoFiles(d) {
		return "", false
	}
	return d, true
}
