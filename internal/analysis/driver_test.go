package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// nastyFact marks a package that declares a Nasty constant, directly or
// through its import chain.
type nastyFact struct{ Origin string }

func (*nastyFact) AFact() {}

func (f *nastyFact) String() string { return "nasty(" + f.Origin + ")" }

// newNastyAnalyzer builds a throwaway interprocedural analyzer for
// driver tests: declaring Nasty earns the package a fact, importing a
// marked package propagates the fact and reports the import edge. Taking
// the version as a parameter lets tests invalidate the cache the same
// way a real analyzer change would.
func newNastyAnalyzer(version int) *Analyzer {
	return &Analyzer{
		Name:      "nastytest",
		Doc:       "test analyzer: propagate nasty package facts across imports",
		Version:   version,
		FactTypes: []Fact{(*nastyFact)(nil)},
		Run: func(pass *Pass) (interface{}, error) {
			if pass.Pkg.Scope().Lookup("Nasty") != nil {
				pass.ExportPackageFact(&nastyFact{Origin: pass.Pkg.Path()})
			}
			for _, imp := range pass.Pkg.Imports() {
				var f nastyFact
				if pass.ImportPackageFact(imp, &f) {
					pass.Reportf(pass.Files[0].Name.Pos(), "imports nasty package %s (origin %s)", imp.Path(), f.Origin)
					pass.ExportPackageFact(&nastyFact{Origin: f.Origin})
				}
			}
			return nil, nil
		},
	}
}

// nastyTree is a three-level import chain: only leaf declares Nasty, so
// any diagnostic in mid or top exists purely because facts crossed
// package boundaries.
func nastyTree() map[string]string {
	return map[string]string{
		"leaf/leaf.go": "package leaf\n\nconst Nasty = 1\n",
		"mid/mid.go":   "package mid\n\nimport \"leaf\"\n\nvar V = leaf.Nasty\n",
		"top/top.go":   "package top\n\nimport \"mid\"\n\nvar W = mid.V\n",
	}
}

func loadTree(t *testing.T, dir string, patterns ...string) (*Loader, []*Package) {
	t.Helper()
	loader := &Loader{Dir: dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return loader, pkgs
}

// TestDriverCrossPackageFactPropagation is the tentpole property: a
// violation whose cause lives two imports away from the requested
// package is reported, and the same request without dependency analysis
// (the pre-fact, per-package shape) provably misses it.
func TestDriverCrossPackageFactPropagation(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, nastyTree())
	loader, pkgs := loadTree(t, dir, "top")

	res, err := Run(Config{Lookup: loader.Lookup}, pkgs, []*Analyzer{newNastyAnalyzer(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly the import-edge report in top", res.Findings)
	}
	if got, want := res.Findings[0].Message, "imports nasty package mid (origin leaf)"; got != want {
		t.Errorf("finding = %q, want %q (fact must propagate through mid, which is not requested)", got, want)
	}
	if res.Findings[0].Package != "top" {
		t.Errorf("finding package = %q; dependency packages must not contribute findings", res.Findings[0].Package)
	}
	var factPkgs []string
	for _, r := range res.Facts {
		factPkgs = append(factPkgs, r.Package)
	}
	if got := len(res.Facts); got != 3 {
		t.Errorf("facts = %v (packages %v), want leaf, mid and top package facts", res.Facts, factPkgs)
	}

	// Per-package counterfactual: same request, no Lookup, so the driver
	// sees only top. No facts arrive and the violation vanishes.
	_, pkgsOnly := loadTree(t, dir, "top")
	blind, err := Run(Config{}, pkgsOnly, []*Analyzer{newNastyAnalyzer(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(blind.Findings) != 0 {
		t.Errorf("per-package run findings = %v, want none: this test documents what the old suite missed", blind.Findings)
	}
}

// TestDriverDeterministicAcrossWorkers pins the contract that worker
// count affects wall-clock only: findings and facts are identical at any
// parallelism.
func TestDriverDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	files := nastyTree()
	// Independent siblings give the scheduler something to actually run
	// in parallel within a wave.
	files["spur/spur.go"] = "package spur\n\nimport \"leaf\"\n\nvar S = leaf.Nasty\n"
	files["calm/calm.go"] = "package calm\n\nvar C = 2\n"
	writeTree(t, dir, files)

	var base *Result
	for _, workers := range []int{1, 2, 8} {
		loader, pkgs := loadTree(t, dir, "...")
		res, err := Run(Config{Workers: workers, Lookup: loader.Lookup}, pkgs, []*Analyzer{newNastyAnalyzer(1)})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			if len(res.Findings) != 3 {
				t.Fatalf("findings = %v, want reports in mid, spur and top", res.Findings)
			}
			continue
		}
		if !reflect.DeepEqual(res.Findings, base.Findings) {
			t.Errorf("workers=%d findings differ:\n got %v\nwant %v", workers, res.Findings, base.Findings)
		}
		if !reflect.DeepEqual(res.Facts, base.Facts) {
			t.Errorf("workers=%d facts differ:\n got %v\nwant %v", workers, res.Facts, base.Facts)
		}
	}
}

// TestDriverCacheHitsAndInvalidation covers the cache key's three
// ingredients: a byte-identical tree hits everywhere, editing one file
// invalidates that package and its dependents but not its dependencies,
// and bumping an analyzer version invalidates everything.
func TestDriverCacheHitsAndInvalidation(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, nastyTree())
	cache := &Cache{Dir: t.TempDir()}

	run := func(version int) *Result {
		t.Helper()
		loader, pkgs := loadTree(t, dir, "top")
		res, err := Run(Config{Cache: cache, Lookup: loader.Lookup}, pkgs, []*Analyzer{newNastyAnalyzer(version)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run(1)
	if cold.CacheHits != 0 || cold.CacheMisses != 3 {
		t.Fatalf("cold run: %d hits, %d misses, want 0/3", cold.CacheHits, cold.CacheMisses)
	}
	warm := run(1)
	if warm.CacheHits != 3 || warm.CacheMisses != 0 {
		t.Errorf("warm run: %d hits, %d misses, want 3/0", warm.CacheHits, warm.CacheMisses)
	}
	if !reflect.DeepEqual(warm.Findings, cold.Findings) {
		t.Errorf("cached findings differ:\n got %v\nwant %v", warm.Findings, cold.Findings)
	}
	if !reflect.DeepEqual(warm.Facts, cold.Facts) {
		t.Errorf("cached facts differ:\n got %v\nwant %v", warm.Facts, cold.Facts)
	}

	// A comment-only edit still changes the content hash: mid and its
	// dependent top recompute, leaf is untouched.
	midPath := filepath.Join(dir, "mid", "mid.go")
	src, err := os.ReadFile(midPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(midPath, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := run(1)
	if edited.CacheHits != 1 || edited.CacheMisses != 2 {
		t.Errorf("after editing mid: %d hits, %d misses, want leaf served and mid+top recomputed (1/2)", edited.CacheHits, edited.CacheMisses)
	}

	bumped := run(2)
	if bumped.CacheHits != 0 || bumped.CacheMisses != 3 {
		t.Errorf("after version bump: %d hits, %d misses, want a full recompute (0/3)", bumped.CacheHits, bumped.CacheMisses)
	}
}

// TestTryCachedWarmPath covers the load-free fast path: it refuses on a
// cold cache, serves byte-identical results after a full run, and
// refuses again the moment any file in the closure changes.
func TestTryCachedWarmPath(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, nastyTree())
	cache := &Cache{Dir: t.TempDir()}
	analyzers := []*Analyzer{newNastyAnalyzer(1)}

	if _, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil); ok {
		t.Fatal("TryCached succeeded on a cold cache")
	}

	loader, pkgs := loadTree(t, dir, "top")
	full, err := Run(Config{Cache: cache, Lookup: loader.Lookup}, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	fast, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil)
	if !ok {
		t.Fatal("TryCached failed on a fully warm cache")
	}
	if !reflect.DeepEqual(fast.Findings, full.Findings) {
		t.Errorf("fast-path findings differ:\n got %v\nwant %v", fast.Findings, full.Findings)
	}
	if fast.CacheHits != 3 {
		t.Errorf("fast-path hits = %d, want the whole closure (3)", fast.CacheHits)
	}

	leafPath := filepath.Join(dir, "leaf", "leaf.go")
	if err := os.WriteFile(leafPath, []byte("package leaf\n\nconst Nasty = 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil); ok {
		t.Error("TryCached succeeded after a dependency edit; a stale serve here would hide new violations")
	}
}

// TestCacheTelemetryNoDoubleCount pins the commit-on-success discipline
// of the process-wide cache counters: a cold TryCached that falls
// through to the full driver must contribute NO hits (the driver counts
// those packages itself), while a successful warm serve commits exactly
// its closure. Before the fix, partially-warm fall-throughs counted the
// cached prefix twice.
func TestCacheTelemetryNoDoubleCount(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, nastyTree())
	cache := &Cache{Dir: t.TempDir()}
	analyzers := []*Analyzer{newNastyAnalyzer(1)}

	hits0, misses0 := CacheStats()

	// Cold fast path fails and must commit nothing.
	if _, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil); ok {
		t.Fatal("TryCached succeeded on a cold cache")
	}
	if h, m := CacheStats(); h != hits0 || m != misses0 {
		t.Fatalf("cold TryCached committed counters: hits %d->%d, misses %d->%d", hits0, h, misses0, m)
	}

	// The full driver populates the cache: 3 misses, 0 hits.
	loader, pkgs := loadTree(t, dir, "top")
	if _, err := Run(Config{Cache: cache, Lookup: loader.Lookup}, pkgs, analyzers); err != nil {
		t.Fatal(err)
	}
	h1, m1 := CacheStats()
	if h1 != hits0 || m1 != misses0+3 {
		t.Fatalf("cold driver run: hits %d->%d misses %d->%d, want +0/+3", hits0, h1, misses0, m1)
	}

	// Make the cache partially warm: editing top invalidates only top,
	// so the next TryCached finds leaf and mid cached, then falls
	// through on top. The fall-through must leave the hit counter
	// untouched — the driver run after it counts leaf and mid itself.
	topPath := filepath.Join(dir, "top", "top.go")
	src, err := os.ReadFile(topPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(topPath, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil); ok {
		t.Fatal("TryCached succeeded with an invalidated package in the closure")
	}
	if h, m := CacheStats(); h != h1 || m != m1 {
		t.Fatalf("partially-warm TryCached committed counters: hits %d->%d, misses %d->%d (the double-stat bug)", h1, h, m1, m)
	}
	loader, pkgs = loadTree(t, dir, "top")
	if _, err := Run(Config{Cache: cache, Lookup: loader.Lookup}, pkgs, analyzers); err != nil {
		t.Fatal(err)
	}
	h2, m2 := CacheStats()
	if h2 != h1+2 || m2 != m1+1 {
		t.Fatalf("partially-warm driver run: hits +%d misses +%d, want +2/+1", h2-h1, m2-m1)
	}

	// A fully warm TryCached commits exactly its closure.
	if _, ok := TryCached(cache, dir, "", []string{"top"}, analyzers, nil); !ok {
		t.Fatal("TryCached failed on a fully warm cache")
	}
	if h, m := CacheStats(); h != h2+3 || m != m2 {
		t.Fatalf("warm TryCached: hits +%d misses +%d, want +3/+0", h-h2, m-m2)
	}
}

// TestDriverDirectiveValidation covers the three directive diagnostics:
// unknown analyzer names, stale exemptions for analyzers that ran, and
// unknown verbs.
func TestDriverDirectiveValidation(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"d/d.go": `package d

//mixedrelvet:allow nosuch reason
var X = 1

//mixedrelvet:allow nastytest never consulted
var Y = 2

//mixedrelvet:frobnicate
var Z = 3
`,
	})
	_, pkgs := loadTree(t, dir, "d")
	res, err := Run(Config{}, pkgs, []*Analyzer{newNastyAnalyzer(1)})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`//mixedrelvet:allow names unknown analyzer "nosuch" (use mixedrelvet -list)`,
		`unused //mixedrelvet:allow nastytest directive: it no longer exempts anything; delete it`,
		`unknown mixedrelvet directive "//mixedrelvet:frobnicate" (known: allow, hotpath)`,
	}
	if len(res.Findings) != len(want) {
		t.Fatalf("findings = %v, want %d directive diagnostics", res.Findings, len(want))
	}
	for i, f := range res.Findings {
		if f.Analyzer != DirectivesAnalyzerName {
			t.Errorf("finding %d analyzer = %q, want %q", i, f.Analyzer, DirectivesAnalyzerName)
		}
		if f.Message != want[i] {
			t.Errorf("finding %d = %q, want %q", i, f.Message, want[i])
		}
	}
}
