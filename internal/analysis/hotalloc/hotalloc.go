// Package hotalloc proves that hot-path functions do not allocate.
//
// The injector's per-operation methods (inject.Env.Add/Mul/FMA, the
// batch kernels, the compiled-trace serve loop) execute millions to
// billions of times per campaign; a single allocation in one of them
// turns into GC pressure that dominates the run and — worse — makes
// throughput dependent on heap state rather than on the operation
// stream. The roots of the proof are declared in the source itself:
//
//	//mixedrelvet:hotpath <reason>
//
// on a function declaration marks it as a hot-path root. The analyzer
// walks everything a root (transitively) calls and reports every
// allocation site it can see: make, new, append, composite literals,
// function literals (closures capture), and calls into fmt (which
// allocates for boxing and buffering). The facts are interprocedural: a
// Allocates fact is exported for every allocating function in every
// package, so a hot path calling a helper in another package is checked
// against that helper's fact rather than being trusted blindly.
//
// Two escapes keep the proof honest instead of noisy:
//
//   - allocations in the arguments of panic(...) are exempt — the DUE
//     model aborts by panicking with a payload, and an aborted sample
//     has already left the hot loop;
//   - //mixedrelvet:allow hotalloc <reason> on a statement or
//     declaration exempts amortized allocations (pool refills, one-time
//     growth) and blocks the fact, since the claim is that the
//     steady-state path does not allocate.
//
// Calls through interface values are invisible to the call graph, and
// the standard library (other than the fmt denylist) carries no facts;
// the proof covers first-party code called concretely.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/callgraph"
)

// Allocates marks a function that allocates, directly or through a
// callee, outside a panic payload or an allow-exempted site.
type Allocates struct {
	// Why names the first allocation found: "make", "new", "append",
	// "composite literal", "function literal", or "calls pkg.F".
	Why string
}

func (*Allocates) AFact() {}

func (f *Allocates) String() string { return "allocates(" + f.Why + ")" }

// Analyzer is the hotalloc invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "prove //mixedrelvet:hotpath functions and everything they call allocation-free",
	Version:   1,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*Allocates)(nil)},
	Run:       run,
}

// allocSite is one visible allocation in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	sites := make(map[*types.Func][]allocSite)
	inPanic := make(map[*ast.CallExpr]bool)
	for _, d := range g.List {
		sites[d.Fn] = collectSites(pass, d.File, d.Decl.Body, inPanic)
	}

	// Bottom-up taint, as in softfloat: local sites seed, call edges
	// propagate, an allow directive on the declaration blocks the fact.
	tainted := make(map[*types.Func]string)
	blocked := make(map[*types.Func]bool)
	imported := make(map[*types.Func]string)
	crossWhy := func(fn *types.Func) string {
		if why, ok := imported[fn]; ok {
			return why
		}
		why := ""
		if p := fn.Pkg(); p != nil && p.Path() == "fmt" {
			why = "formats and boxes arguments"
		} else {
			var fact Allocates
			if pass.ImportObjectFact(fn, &fact) {
				why = fact.Why
			}
		}
		imported[fn] = why
		return why
	}
	taintDecl := func(d *callgraph.Decl, why string) bool {
		if pass.Allowed(d.File, d.Decl) {
			blocked[d.Fn] = true
			return false
		}
		tainted[d.Fn] = why
		return true
	}
	for _, d := range g.List {
		if s := sites[d.Fn]; len(s) > 0 {
			taintDecl(d, s[0].what)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range g.List {
			if _, done := tainted[d.Fn]; done || blocked[d.Fn] {
				continue
			}
			for _, e := range d.Edges {
				if inPanic[e.Site] {
					continue
				}
				why := ""
				if _, ok := tainted[e.Callee]; ok {
					why = "calls " + analysis.FuncShortName(e.Callee)
				} else if _, local := g.Decls[e.Callee]; !local && e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg {
					if crossWhy(e.Callee) != "" {
						why = "calls " + e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
					}
				}
				if why != "" {
					if taintDecl(d, why) {
						changed = true
					}
					break
				}
			}
		}
	}
	for _, d := range g.List {
		if why, ok := tainted[d.Fn]; ok {
			pass.ExportObjectFact(d.Fn, &Allocates{Why: why})
		}
	}

	// Roots: consult HotPath on every declaration so each directive is
	// either matched (and owned) or reported unused by the driver.
	var roots []*callgraph.Decl
	for _, d := range g.List {
		if pass.HotPath(d.File, d.Decl) {
			roots = append(roots, d)
		}
	}

	reachedFrom := make(map[*types.Func]*types.Func)
	var order []*types.Func
	for _, root := range roots {
		stack := []*types.Func{root.Fn}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := reachedFrom[fn]; seen {
				continue
			}
			d, declared := g.Decls[fn]
			if !declared || blocked[fn] {
				continue
			}
			reachedFrom[fn] = root.Fn
			order = append(order, fn)
			for _, e := range d.Edges {
				if _, local := g.Decls[e.Callee]; local {
					stack = append(stack, e.Callee)
				}
			}
		}
	}

	for _, fn := range order {
		root := reachedFrom[fn]
		d := g.Decls[fn]
		for _, s := range sites[fn] {
			if fn == root {
				pass.Reportf(s.pos, "%s allocates in hot path %s; hot paths must be allocation-free (//mixedrelvet:allow hotalloc <reason> for amortized growth)",
					s.what, analysis.FuncShortName(root))
			} else {
				pass.Reportf(s.pos, "%s allocates in %s, reachable from hot path %s; hot paths must be allocation-free (//mixedrelvet:allow hotalloc <reason> for amortized growth)",
					s.what, analysis.FuncShortName(fn), analysis.FuncShortName(root))
			}
		}
		for _, e := range d.Edges {
			if _, local := g.Decls[e.Callee]; local || e.Callee.Pkg() == nil || e.Callee.Pkg() == pass.Pkg {
				continue
			}
			if inPanic[e.Site] {
				continue
			}
			why := crossWhy(e.Callee)
			if why == "" || pass.Allowed(d.File, e.Site) {
				continue
			}
			callee := e.Callee.Pkg().Name() + "." + analysis.FuncShortName(e.Callee)
			if fn == root {
				pass.Reportf(e.Site.Pos(), "call to %s allocates (%s) in hot path %s; hot paths must be allocation-free",
					callee, why, analysis.FuncShortName(root))
			} else {
				pass.Reportf(e.Site.Pos(), "call to %s allocates (%s) in %s, reachable from hot path %s; hot paths must be allocation-free",
					callee, why, analysis.FuncShortName(fn), analysis.FuncShortName(root))
			}
		}
	}
	return nil, nil
}

// collectSites gathers the visible allocation sites in a function body,
// skipping panic payloads and allow-exempted statements. Function calls
// inside panic arguments are recorded in inPanic so the caller can exempt
// their call-graph edges the same way (the payload of a DUE abort may be
// built with allocating helpers — the sample has already left the hot
// loop).
func collectSites(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt, inPanic map[*ast.CallExpr]bool) []allocSite {
	var out []allocSite
	var stack []ast.Node
	underPanic := func() bool {
		for _, n := range stack[:len(stack)-1] {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
						return true
					}
				}
			}
		}
		return false
	}
	exempt := func() bool {
		if underPanic() {
			return true
		}
		for _, n := range stack {
			if pass.Allowed(file, n) {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch e := n.(type) {
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			if !ok {
				if underPanic() {
					inPanic[e] = true
				}
				return true
			}
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
				if underPanic() {
					inPanic[e] = true
				}
				return true
			}
			switch id.Name {
			case "make", "new", "append":
				if !exempt() {
					out = append(out, allocSite{e.Pos(), id.Name})
				}
			}
		case *ast.CompositeLit:
			if !exempt() {
				out = append(out, allocSite{e.Pos(), "composite literal"})
			}
			// Inner literals are part of the same allocation. Pop manually:
			// ast.Inspect sends no nil for a subtree it does not enter.
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			if !exempt() {
				out = append(out, allocSite{e.Pos(), "function literal"})
			}
		}
		return true
	})
	return out
}
