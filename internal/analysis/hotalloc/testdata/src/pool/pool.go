// Package pool is a stand-in buffer recycler used by the hot package's
// tests.
package pool

type Pool struct {
	free [][]float64
}

// Get returns a recycled buffer. The refill on exhaustion is amortized
// growth: the allow directive exempts the site, so Get carries no
// Allocates fact and hot paths may call it.
func (p *Pool) Get() []float64 {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	//mixedrelvet:allow hotalloc amortized refill, steady state recycles
	return make([]float64, 64)
}

// Fresh always allocates; callers on hot paths are flagged through the
// exported fact.
func Fresh(n int) []float64 { // want fact:`Fresh: allocates\(make\)`
	return make([]float64, n)
}
