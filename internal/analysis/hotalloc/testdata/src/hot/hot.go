// Package hot exercises hot-path allocation proofs: roots are declared
// with //mixedrelvet:hotpath, local sites and cross-package callees are
// flagged, and panic payloads plus allow-exempted amortized growth stay
// quiet.
package hot

import (
	"fmt"

	"pool"
)

type item struct{ a, b float64 }

type trap struct{ pos int }

type state struct {
	buf []float64
	p   *pool.Pool
}

//mixedrelvet:hotpath per-sample inner loop of the test fixture
func Step(s *state, x float64) { // want fact:`Step: allocates\(append\)`
	s.buf = append(s.buf, x) // want `append allocates in hot path Step; hot paths must be allocation-free \(//mixedrelvet:allow hotalloc <reason> for amortized growth\)`
	mix(s, x)
}

func mix(s *state, x float64) { // want fact:`mix: allocates\(composite literal\)`
	it := item{a: x, b: x} // want `composite literal allocates in mix, reachable from hot path Step; hot paths must be allocation-free \(//mixedrelvet:allow hotalloc <reason> for amortized growth\)`
	s.buf[0] = it.a + it.b
}

//mixedrelvet:hotpath compare-serving loop
func Serve(s *state, pos int) float64 { // want fact:`Serve: allocates\(calls fmt\.Sprintf\)`
	if pos < 0 {
		panic(trap{pos: pos}) // exempt: a DUE abort has already left the hot loop
	}
	msg := fmt.Sprintf("pos=%d", pos) // want `call to fmt\.Sprintf allocates \(formats and boxes arguments\) in hot path Serve; hot paths must be allocation-free`
	_ = msg
	grow(s)
	return s.buf[pos]
}

func grow(s *state) { // want fact:`grow: allocates\(calls pool\.Fresh\)`
	s.buf = pool.Fresh(len(s.buf) * 2) // want `call to pool\.Fresh allocates \(make\) in grow, reachable from hot path Serve; hot paths must be allocation-free`
	s.buf = s.p.Get() // clean: Get's refill is allow-exempted amortized growth
}

//mixedrelvet:hotpath callback dispatch
func Handler(s *state) func(float64) { // want fact:`Handler: allocates\(function literal\)`
	return func(x float64) { // want `function literal allocates in hot path Handler; hot paths must be allocation-free \(//mixedrelvet:allow hotalloc <reason> for amortized growth\)`
		s.buf[0] = x
	}
}

// cold allocates freely: it carries a fact but is not reachable from any
// hot-path root, so nothing here is reported.
func cold(n int) []float64 { // want fact:`cold: allocates\(make\)`
	return make([]float64, n)
}

// Abort builds its panic payload with an allocating helper: the sample
// has already left the hot loop, so neither the call edge nor the
// function is flagged, and Abort carries no fact.
//
//mixedrelvet:hotpath abort reporting
func Abort(pos int) {
	panic(fmt.Sprintf("bad pos %d", pos))
}
