package hotalloc_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/hotalloc"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "hot", "pool")
}
