// Package callgraph provides a shared per-package call-graph artifact.
//
// The graph maps every function declared in the package's non-test files
// to its resolved call sites — including calls into other packages —
// in source order. The interprocedural analyzers (softfloat,
// determinism, hotalloc) all consume it: they walk edges within the
// package and consult imported facts at edges that leave it. Calls
// through non-constant function values (interface methods, stored
// closures) are unresolvable and absent; analyzers must treat their
// absence per their own soundness posture.
package callgraph

import (
	"go/ast"
	"go/types"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// Analyzer builds the package's Graph. Obtain it with
//
//	g := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)
var Analyzer = &analysis.Analyzer{
	Name:     "callgraph",
	Doc:      "build a shared resolved call graph for other analyzers",
	Version:  1,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// Graph is the package's functions and their resolved outgoing calls.
type Graph struct {
	// Decls maps each declared function to its node. Only functions with
	// declarations in this package's non-test files appear.
	Decls map[*types.Func]*Decl
	// List holds the same nodes in source order, for deterministic
	// iteration.
	List []*Decl
}

// Decl is one declared function and its outgoing calls.
type Decl struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	File *ast.File
	// Edges lists the resolved calls in the function's body (including
	// inside nested function literals), in source order.
	Edges []Edge
}

// Edge is one resolved call site.
type Edge struct {
	// Callee is the called function or method; it may belong to any
	// package.
	Callee *types.Func
	Site   *ast.CallExpr
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	g := &Graph{Decls: make(map[*types.Func]*Decl)}
	ins.WithStack([]ast.Node{(*ast.FuncDecl)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if pass.InTestFile(n.Pos()) {
				return false
			}
			fn, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
			if fn == nil {
				return false
			}
			d := &Decl{Fn: fn, Decl: n, File: file}
			g.Decls[fn] = d
			g.List = append(g.List, d)
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if d := g.enclosing(pass, stack); d != nil {
				d.Edges = append(d.Edges, Edge{Callee: callee, Site: n})
			}
		}
		return true
	})
	return g, nil
}

// enclosing finds the Decl of the innermost enclosing *ast.FuncDecl on
// the traversal stack (nil for package-level initializer expressions).
func (g *Graph) enclosing(pass *analysis.Pass, stack []ast.Node) *Decl {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		return g.Decls[fn]
	}
	return nil
}
