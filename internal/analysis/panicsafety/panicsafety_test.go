package panicsafety_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/panicsafety"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), panicsafety.Analyzer, "p", "internal/exec")
}
