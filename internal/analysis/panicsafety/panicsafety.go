// Package panicsafety forbids recover() outside internal/exec.
//
// The behavioral DUE model aborts a faulty execution by panicking from
// inside the injecting fp.Env (emulated segfaults, FP traps, watchdog
// kills) and relies on exactly one recovery point — exec.Guard — to
// turn the panic into a classified outcome or an aborted-sample
// diagnostic. A recover() anywhere else in the simulator would swallow
// the abort mid-flight: the kernel would return a half-computed output
// that the campaign then scores as Masked or SDC, silently corrupting
// the SDC/DUE split the experiments exist to measure.
//
// Test files are exempt: tests legitimately recover to assert that a
// panic happened (and the harness itself recovers around test bodies).
package panicsafety

import (
	"go/ast"
	"go/types"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// Analyzer is the panicsafety invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:     "panicsafety",
	Doc:      "forbid recover() outside internal/exec; emulated crash/hang aborts must reach exec.Guard for DUE classification",
	Version:  1,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Path == "internal/exec" || strings.HasSuffix(pass.Path, "/internal/exec") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		call := n.(*ast.CallExpr)
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "recover" {
			return true
		}
		// Only the builtin counts; a local function or method named
		// "recover" cannot swallow a panic.
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		for _, anc := range stack {
			if pass.Allowed(file, anc) {
				return true
			}
		}
		pass.Reportf(call.Lparen, "recover() outside internal/exec swallows emulated crash/hang aborts before exec.Guard can classify them as DUEs")
		return true
	})
	return nil, nil
}
