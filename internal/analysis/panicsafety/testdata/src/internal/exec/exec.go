// Package exec stands in for the real execution engine at the exempt
// import path: the one place a panic may be recovered.
package exec

// Guard runs fn and converts a panic into a recorded abort.
func Guard(fn func()) (v any) {
	defer func() {
		v = recover()
	}()
	fn()
	return nil
}
