// Package p recovers from panics outside the execution engine.
package p

func swallow(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil { // want `recover\(\) outside internal/exec swallows emulated crash/hang aborts`
			err = nil
		}
	}()
	f()
	return nil
}

func bareRecover() {
	defer recover() // want `recover\(\) outside internal/exec swallows emulated crash/hang aborts`
}

// recover here is a method, not the builtin — no diagnostic.
type retrier struct{}

func (retrier) recover() int { return 0 }

func viaMethod(r retrier) int { return r.recover() }

// A shadowing local also isn't the builtin.
func shadowed() {
	recover := func() any { return nil }
	_ = recover()
}

// allowlisted is the escape hatch for a reviewed exception.
func allowlisted(f func()) {
	defer func() {
		//mixedrelvet:allow panicsafety reviewed: CLI top-level crash banner
		_ = recover()
	}()
	f()
}
