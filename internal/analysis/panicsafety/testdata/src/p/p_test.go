package p

// Tests legitimately recover to assert a panic happened; _test.go files
// are exempt.
func mustPanic(f func()) (panicked bool) {
	defer func() {
		panicked = recover() != nil
	}()
	f()
	return
}
