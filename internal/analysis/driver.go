package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"mixedrel/internal/exec"
)

// Config parameterizes a driver run.
type Config struct {
	// Workers bounds how many import-independent packages are analyzed
	// concurrently (<=1 is sequential). Parallelism runs under the
	// repo's own bounded scheduler (exec.ForEach), and output is
	// byte-identical at any worker count.
	Workers int
	// Cache, when non-nil, memoizes per-package results (diagnostics and
	// facts) on disk, keyed by source content hashes, dependency keys,
	// and the analyzer fingerprint.
	Cache *Cache
	// Known lists every analyzer name that may legally appear in an
	// //mixedrelvet:allow directive. Defaults to the names of the
	// analyzers being run; cmd/mixedrelvet passes the full suite so a
	// restricted -only run does not misreport other analyzers'
	// directives as unknown.
	Known []string
	// Lookup resolves an import path to its loaded package, letting the
	// driver pull in and analyze dependencies outside the requested set
	// (facts must exist for every package a requested one imports). Nil
	// restricts the universe to the requested packages.
	Lookup func(path string) *Package
}

// Result is a completed driver run.
type Result struct {
	// Findings holds the diagnostics of the requested packages in
	// canonical order.
	Findings []Finding
	// Facts holds every fact exported during the run (requested packages
	// and their dependencies), in deterministic order.
	Facts []*FactRecord
	// CacheHits / CacheMisses count per-package cache outcomes.
	CacheHits, CacheMisses int
}

// RunAnalyzers applies the analyzers to the packages with default
// configuration and returns the collected diagnostics in canonical
// order. Analyzer run errors are returned after all packages have been
// attempted.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	res, err := Run(Config{}, pkgs, analyzers)
	return res.Findings, err
}

// Run analyzes the requested packages (and, through cfg.Lookup, every
// first-party package they transitively import) with the given
// analyzers. Packages are processed in topological import order so each
// pass sees the facts of everything it imports; import-independent
// packages run in parallel; per-package results are served from
// cfg.Cache when the key matches.
func Run(cfg Config, requested []*Package, analyzers []*Analyzer) (*Result, error) {
	closure, err := analyzerClosure(analyzers)
	if err != nil {
		return &Result{}, err
	}

	known := make(map[string]bool)
	for _, name := range cfg.Known {
		known[name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
		known[a.Name] = true
	}

	units, err := buildUniverse(cfg, requested)
	if err != nil {
		return &Result{}, err
	}
	waves, err := topoWaves(units)
	if err != nil {
		return &Result{}, err
	}

	reg := buildFactRegistry(closure)
	fingerprint := suiteFingerprint(closure, known)
	global := make(map[factKey]*FactRecord)
	res := &Result{}
	var errs []string

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}

	for _, wave := range waves {
		type slot struct {
			findings []Finding
			facts    map[factKey]*FactRecord
			hit      bool
			err      error
		}
		slots := make([]slot, len(wave))
		ferr := exec.ForEach(workers, len(wave), func(i int) error {
			u := wave[i]
			s := &slots[i]
			if cfg.Cache != nil {
				u.key = packageCacheKey(u, fingerprint)
				if entry, ok := cfg.Cache.load(u.key); ok {
					s.findings, s.facts, s.err = entry.decode(u.pkg.Path, reg)
					if s.err == nil {
						s.hit = true
						return nil
					}
					// Undecodable entry: fall through to re-analysis.
				}
			}
			s.findings, s.facts, s.err = analyzePackage(u, closure, analyzers, global, known, ran)
			if s.err == nil && cfg.Cache != nil {
				cfg.Cache.store(u.key, newCacheEntry(s.findings, s.facts))
			}
			return nil
		})
		if ferr != nil {
			return res, ferr
		}
		for i, s := range slots {
			u := wave[i]
			if s.err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", u.pkg.Path, s.err))
				continue
			}
			if s.hit {
				res.CacheHits++
				mCacheHits.Inc()
			} else if cfg.Cache != nil {
				res.CacheMisses++
				mCacheMisses.Inc()
			}
			for k, r := range s.facts {
				global[k] = r
			}
			if u.requested {
				res.Findings = append(res.Findings, s.findings...)
			}
		}
	}

	sort.Slice(res.Findings, func(i, j int) bool { return lessFinding(res.Findings[i], res.Findings[j]) })
	res.Facts = sortedRecords(global)
	if len(errs) > 0 {
		sort.Strings(errs)
		return res, fmt.Errorf("analyzer errors:\n  %s", strings.Join(errs, "\n  "))
	}
	return res, nil
}

// unit is one package scheduled for analysis.
type unit struct {
	pkg       *Package
	requested bool
	deps      []*unit
	key       string // cache key, filled per run when caching
}

// buildUniverse collects the requested packages plus every first-party
// package they transitively import (resolved through cfg.Lookup).
func buildUniverse(cfg Config, requested []*Package) (map[string]*unit, error) {
	units := make(map[string]*unit)
	byPath := make(map[string]*Package)
	for _, p := range requested {
		byPath[p.Path] = p
	}
	lookup := func(path string) *Package {
		if p, ok := byPath[path]; ok {
			return p
		}
		if cfg.Lookup != nil {
			return cfg.Lookup(path)
		}
		return nil
	}
	var add func(p *Package, req bool) *unit
	add = func(p *Package, req bool) *unit {
		u, ok := units[p.Path]
		if ok {
			u.requested = u.requested || req
			return u
		}
		u = &unit{pkg: p, requested: req}
		units[p.Path] = u // before recursing: terminates on cycles
		for _, imp := range packageImports(p) {
			if dep := lookup(imp); dep != nil && dep.Path != p.Path {
				u.deps = append(u.deps, add(dep, false))
			}
		}
		return u
	}
	for _, p := range requested {
		add(p, true)
	}
	return units, nil
}

// packageImports returns the sorted import paths of the package's
// non-test files. Test-file imports are excluded: analyzers skip test
// files, so those dependencies contribute no facts and no cache-relevant
// state.
func packageImports(p *Package) []string {
	seen := make(map[string]bool)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// topoWaves partitions the units into topological levels: every package
// in wave i only imports packages in waves < i, so each wave can run
// fully in parallel once the previous ones completed. Waves and their
// members are deterministically ordered.
func topoWaves(units map[string]*unit) ([][]*unit, error) {
	depth := make(map[*unit]int)
	var visit func(u *unit, stack map[*unit]bool) (int, error)
	visit = func(u *unit, stack map[*unit]bool) (int, error) {
		if d, ok := depth[u]; ok {
			if d == -1 {
				return 0, fmt.Errorf("import cycle through %s", u.pkg.Path)
			}
			return d, nil
		}
		depth[u] = -1
		max := 0
		for _, dep := range u.deps {
			d, err := visit(dep, stack)
			if err != nil {
				return 0, err
			}
			if d+1 > max {
				max = d + 1
			}
		}
		depth[u] = max
		return max, nil
	}
	paths := make([]string, 0, len(units))
	for path := range units {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	maxDepth := 0
	for _, path := range paths {
		d, err := visit(units[path], nil)
		if err != nil {
			return nil, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	waves := make([][]*unit, maxDepth+1)
	for _, path := range paths {
		u := units[path]
		waves[depth[u]] = append(waves[depth[u]], u)
	}
	return waves, nil
}

// analyzerClosure expands the run set with everything it Requires,
// in dependency order (requirements before dependents), detecting
// cycles.
func analyzerClosure(analyzers []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := make(map[*Analyzer]int) // 1 = visiting, 2 = done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("requirement cycle through analyzer %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// analyzePackage runs the analyzer closure over one package, collecting
// diagnostics and locally exported facts, then validates the package's
// directives. Analyzers for one package run sequentially in requirement
// order; only cross-package parallelism exists, so the per-package state
// (directive usage, ResultOf) needs no locking.
func analyzePackage(u *unit, closure, requestedAnalyzers []*Analyzer, global map[factKey]*FactRecord, known, ran map[string]bool) ([]Finding, map[factKey]*FactRecord, error) {
	pkg := u.pkg
	ds := parseDirectives(pkg.Fset, pkg.Files)
	facts := &factAccess{global: global, local: make(map[factKey]*FactRecord)}
	results := make(map[*Analyzer]interface{})
	var findings []Finding
	var errs []string

	inRunSet := make(map[*Analyzer]bool)
	for _, a := range requestedAnalyzers {
		inRunSet[a] = true
	}

	for _, a := range closure {
		pass := &Pass{
			Analyzer:   a,
			Path:       pkg.Path,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			ResultOf:   make(map[*Analyzer]interface{}),
			facts:      facts,
			directives: ds,
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		reporting := inRunSet[a]
		pass.Report = func(d Diagnostic) {
			if !reporting {
				return
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Package:  pkg.Path,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		result, err := a.Run(pass)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.Name, err))
			continue
		}
		results[a] = result
	}

	validateDirectives(pkg.Fset, ds, known, ran, func(pos token.Pos, msg string) {
		findings = append(findings, Finding{
			Analyzer: DirectivesAnalyzerName,
			Package:  pkg.Path,
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	})

	if len(errs) > 0 {
		return findings, facts.local, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return findings, facts.local, nil
}
