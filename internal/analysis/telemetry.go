package analysis

import "mixedrel/internal/telemetry"

// Process-wide analysis-cache counters. Both the full driver (Run) and
// the load-free warm path (TryCached) account here, so consumers like
// `cmd/mixedrelvet -stats` read one source of truth regardless of which
// path served the run. TryCached commits only on overall success: a
// cold-cache fall-through discards its partial hit count, because the
// full driver re-counts those same packages (see TryCached).
var (
	mCacheHits   = telemetry.NewCounter("analysis_cache_hits")
	mCacheMisses = telemetry.NewCounter("analysis_cache_misses")
)

// CacheStats returns the process-wide analysis-cache hit/miss counters.
func CacheStats() (hits, misses uint64) {
	return mCacheHits.Load(), mCacheMisses.Load()
}
