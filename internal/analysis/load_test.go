package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes file contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoaderGopathStyle(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"a/a.go": `package a

import (
	"fmt"

	"b"
)

func Greet() string { return fmt.Sprint("hi ", b.Name) }
`,
		"a/a_test.go": `package a

func testOnly() string { return Greet() }
`,
		"a/ext_test.go": `package a_test
`,
		"b/b.go": `package b

const Name = "b"
`,
	})

	loader := &Loader{Dir: dir, IncludeTests: true}
	pkgs, err := loader.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "a" {
		t.Fatalf("Load(a) = %v packages, want exactly package a", len(pkgs))
	}
	var names []string
	for _, f := range pkgs[0].Files {
		names = append(names, filepath.Base(loader.Fset().File(f.Pos()).Name()))
	}
	got := strings.Join(names, " ")
	if got != "a.go a_test.go" {
		t.Errorf("package a files = %q, want in-package test included and external test excluded", got)
	}
	if pkgs[0].Types.Name() != "a" {
		t.Errorf("type-checked package name = %q", pkgs[0].Types.Name())
	}
}

func TestLoaderRecursivePattern(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"x/x.go":               "package x\n",
		"x/sub/sub.go":         "package sub\n",
		"x/testdata/ignore.go": "package ignore\n",
		"x/_skip/skip.go":      "package skip\n",
	})
	loader := &Loader{Dir: dir}
	pkgs, err := loader.Load("x/...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if got := strings.Join(paths, " "); got != "x x/sub" {
		t.Errorf("Load(x/...) = %q, want testdata and _-prefixed directories skipped", got)
	}
}

func TestLoaderImportCycle(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"c1/c1.go": "package c1\n\nimport \"c2\"\n\nconst N = c2.N\n",
		"c2/c2.go": "package c2\n\nimport \"c1\"\n\nconst N = c1.N\n",
	})
	loader := &Loader{Dir: dir}
	if _, err := loader.Load("c1"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Load of cyclic packages: err = %v, want import cycle", err)
	}
}

func TestLoaderTypeErrorsSurface(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"bad/bad.go": "package bad\n\nvar X int = \"not an int\"\n",
	})
	loader := &Loader{Dir: dir}
	if _, err := loader.Load("bad"); err == nil || !strings.Contains(err.Error(), "type errors") {
		t.Fatalf("Load of ill-typed package: err = %v, want type errors", err)
	}
}

// TestLoaderModuleLayout loads a real package of the enclosing module to
// cover module-path import resolution and the std source importer.
func TestLoaderModuleLayout(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Dir: root, Module: "mixedrel"}
	pkgs, err := loader.Load("./internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "mixedrel/internal/rng" {
		t.Fatalf("Load(./internal/rng) = %+v, want mixedrel/internal/rng", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("Rand") == nil {
		t.Error("loaded rng package does not declare Rand")
	}
}
