// Package chaos stands in for the real fault-injection layer at the
// guarded import path.
package chaos // want fact:`package: armsChaos`

// FS is the stand-in fault-injecting filesystem.
type FS struct {
	Seed uint64
}

// Arm is the stand-in fault-arming entry point.
func (f *FS) Arm() {}

// New hands an armed FS out (how the sly package obtains one).
func New() *FS { return &FS{} }
