// Package main is the soak harness: an allowed importer, so it carries
// no diagnostics.
package main // want fact:`package: armsChaos`

import "internal/chaos"

func main() {
	fs := chaos.New()
	fs.Arm()
	_ = fs.Seed
}
