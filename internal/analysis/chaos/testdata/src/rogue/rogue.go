// Package rogue arms the chaos layer from production code.
package rogue // want fact:`package: armsChaos`

import "internal/chaos" // want `import of internal/chaos outside the soak harness`

// Sabotage redirects checkpoint I/O into the fault injector.
func Sabotage() *chaos.FS {
	fs := chaos.New()
	fs.Arm() // want `use of internal/chaos\.Arm through a value obtained from another package`
	return fs
}
