// Test files are exempt: unit tests legitimately inject faults.
package rogue

import (
	"testing"

	"internal/chaos"
)

func TestSabotage(t *testing.T) {
	fs := chaos.New()
	fs.Arm()
	if Sabotage() == nil {
		t.Fatal("nil FS")
	}
}
