// Package sly arms the chaos layer without ever importing it: the
// methods ride along with the value rogue hands out, so an import-based
// check alone never sees the breach.
package sly // want fact:`package: armsChaos`

import "rogue"

// Leak arms fault injection with no import of internal/chaos anywhere
// in the package.
func Leak() uint64 {
	fs := rogue.Sabotage()
	fs.Arm()       // want `use of internal/chaos\.Arm through a value obtained from another package`
	return fs.Seed // want `use of internal/chaos\.Seed through a value obtained from another package`
}
