// Package chaos (the analyzer) keeps the fault-injection layer out of
// production binaries.
//
// internal/chaos implements the exec.FS checkpoint seam with a
// filesystem that deliberately fails: injected write/sync/rename
// errors, short writes, byte budgets that emulate a full disk. That is
// exactly what the soak harness needs and exactly what no campaign
// binary may ever link — a production campaign whose checkpoint I/O
// can be redirected into a fault injector would corrupt the
// crash-tolerance guarantees the journal exists to provide, silently
// and configurably. The seam stays honest only if the set of arming
// packages is closed.
//
// The analyzer allows imports of internal/chaos only from the harness
// that owns it: internal/chaos itself and cmd/mixedrelstress, the soak
// binary. It also catches consumption that needs no import — calling a
// method or reading a field of a chaos value obtained from another
// package — so handing a *chaos.FS across a package boundary does not
// launder the dependency. Every package that touches the layer either
// way exports an ArmsChaos package fact, making the boundary auditable
// from the fact stream. Test files are exempt, as everywhere in the
// suite: unit tests and benchmarks legitimately inject faults and
// measure the disarmed seam.
package chaos

import (
	"go/ast"
	"strconv"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// ArmsChaos marks a package that imports internal/chaos or selects its
// objects through values obtained elsewhere.
type ArmsChaos struct{}

func (*ArmsChaos) AFact() {}

func (*ArmsChaos) String() string { return "armsChaos" }

// Analyzer is the chaos-containment invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:      "chaos",
	Doc:       "restrict internal/chaos (the fault-injecting exec.FS) to the soak harness; production campaigns must not be able to arm checkpoint fault injection",
	Version:   1,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*ArmsChaos)(nil)},
	Run:       run,
}

// allowedImporters are the package paths (matched on their module-
// relative suffix) that may arm the chaos layer.
var allowedImporters = []string{
	"internal/chaos",
	"cmd/mixedrelstress",
}

func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	arms := false

	trusted := false
	for _, allowed := range allowedImporters {
		if pathIs(pass.Path, allowed) {
			trusted = true
		}
	}

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !pathIs(path, "internal/chaos") {
				continue
			}
			arms = true
			if !trusted && !pass.Allowed(file, spec) {
				pass.Reportf(spec.Pos(), "import of %s outside the soak harness; the fault-injecting checkpoint FS must stay unreachable from production campaigns", path)
			}
		}
	}

	// Selections on chaos values need no import: a *chaos.FS handed out
	// by another package brings its methods and fields with it.
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		sel := n.(*ast.SelectorExpr)
		if pass.InTestFile(sel.Pos()) {
			return true
		}
		if pass.TypesInfo.Selections[sel] == nil {
			return true // qualified identifier; the import check covers it
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || !pathIs(obj.Pkg().Path(), "internal/chaos") {
			return true
		}
		arms = true
		if trusted {
			return true
		}
		for _, anc := range stack {
			if pass.Allowed(file, anc) {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(), "use of internal/chaos.%s through a value obtained from another package; fault injection must stay confined to the soak harness", sel.Sel.Name)
		return true
	})

	if arms || pathIs(pass.Path, "internal/chaos") {
		pass.ExportPackageFact(&ArmsChaos{})
	}
	return nil, nil
}
