package chaos_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/chaos"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), chaos.Analyzer,
		"rogue", "sly", "internal/chaos", "cmd/mixedrelstress")
}
