// Package batchops flags per-element fp.Env arithmetic loops in the
// kernels package when a batch operation expresses the same sequence.
//
// The batch execution layer (fp.BatchEnv and the package-level
// DotFMA/AddN/MulN/FMAN/AXPY/DotFMABlock/GemmFMA helpers) is only worth
// its correctness obligations if the kernels actually route their inner
// loops through it: a scalar `env.FMA` loop that could have been a
// DotFMA chain silently forgoes the machine fast path and re-introduces
// the per-operation dispatch cost the layer exists to remove. The
// analyzer reports the innermost loop containing a scalar Add, Mul or
// FMA call on an fp.Env value, once per loop.
//
// Some scalar loops are the contract, not an oversight: interleaved
// updates whose dynamic operation order carries fault-index semantics,
// data-dependent sparse operations, reductions that interleave kinds.
// Those carry the escape hatch on the loop (or any enclosing statement):
//
//	//mixedrelvet:allow batchops <why the scalar order is the contract>
package batchops

import (
	"go/ast"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/inspect"
)

// Analyzer is the batchops invariant checker.
var Analyzer = &analysis.Analyzer{
	Name:     "batchops",
	Doc:      "flag per-element Add/Mul/FMA loops over fp.Env in kernels; use the fp batch helpers or annotate why the scalar order is the contract",
	Version:  1,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// batchFor maps a scalar Env method to the package helpers expressing
// the same operation sequence batched. Methods without a batch form
// (Sub, Div, Sqrt, Exp) are never flagged.
var batchFor = map[string]string{
	"Add": "fp.AddN",
	"Mul": "fp.MulN",
	"FMA": "fp.FMAN, fp.AXPY or fp.DotFMA",
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The batch helpers are a kernels-facing contract; other packages
	// (wrappers, the injector) legitimately decompose batches into
	// scalar loops — that decomposition is the fallback semantics.
	if pass.Pkg.Name() != "kernels" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspect.Inspector)
	// One decision (diagnostic or exemption) per innermost loop.
	decided := make(map[ast.Node]bool)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, file *ast.File, stack []ast.Node) bool {
		if pass.InTestFile(n.Pos()) {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		helpers, ok := batchFor[sel.Sel.Name]
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !analysis.IsPkgType(tv.Type, "fp", "Env") {
			return true
		}
		loop := innermostLoop(stack[:len(stack)-1])
		if loop == nil || decided[loop] {
			return true
		}
		decided[loop] = true
		for _, anc := range stack {
			if pass.Allowed(file, anc) {
				return true
			}
		}
		pass.Reportf(loop.Pos(), "loop applies scalar env.%s per element; batch it through %s, or annotate //mixedrelvet:allow batchops <reason> if the scalar order is the contract", sel.Sel.Name, helpers)
		return true
	})
	return nil, nil
}

// innermostLoop returns the deepest for/range statement on the stack.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}
