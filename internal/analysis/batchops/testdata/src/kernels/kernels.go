// Package kernels exercises the batchops analyzer: per-element Env
// arithmetic loops are flagged once per innermost loop, unless a
// directive on the loop (or an enclosing statement) explains why the
// scalar order is the contract.
package kernels

import "fp"

func addLoop(env fp.Env, dst, a, b []fp.Bits) {
	for i := range a { // want `loop applies scalar env\.Add per element`
		dst[i] = env.Add(a[i], b[i])
	}
}

func mulLoop(env fp.Env, t []fp.Bits) {
	eighth := env.FromFloat64(0.125)
	for i, v := range t { // want `loop applies scalar env\.Mul per element`
		t[i] = env.Mul(v, eighth)
	}
}

// fmaNest attributes the diagnostic to the innermost loop and reports it
// once even though the loop body holds two flaggable calls.
func fmaNest(env fp.Env, m []fp.Bits, n int) {
	acc := env.FromFloat64(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ { // want `loop applies scalar env\.FMA per element`
			acc = env.FMA(m[i*n+j], m[j*n+i], acc)
			acc = env.FMA(m[j*n+i], m[i*n+j], acc)
		}
	}
	_ = acc
}

// allowedInterleave carries the escape hatch directly on the loop.
func allowedInterleave(env fp.Env, x, r, p, ap []fp.Bits, alpha, negAlpha fp.Bits) {
	//mixedrelvet:allow batchops interleaved x/r update must keep scalar op order
	for i := range x {
		x[i] = env.FMA(alpha, p[i], x[i])
		r[i] = env.FMA(negAlpha, ap[i], r[i])
	}
}

// allowedNest carries the directive on the outer loop of a nest; the
// exemption covers the flagged calls in the inner loop.
func allowedNest(env fp.Env, t []fp.Bits, n int) {
	q := env.FromFloat64(0.25)
	//mixedrelvet:allow batchops dependent per-window reduction
	for c := 0; c < n; c++ {
		for i := range t {
			t[i] = env.Mul(t[i], q)
		}
	}
}

// batched is the intended shape: helper calls are fine inside loops.
func batched(env fp.Env, dst, a, b []fp.Bits) {
	for it := 0; it < 3; it++ {
		fp.AddN(env, dst, a, b)
		_ = fp.DotFMA(env, dst[0], a, b)
	}
}

// divLoop stays scalar legitimately: Div has no batch form.
func divLoop(env fp.Env, dst, a []fp.Bits, s fp.Bits) {
	for i := range a {
		dst[i] = env.Div(a[i], s)
	}
}

// single is not in a loop at all.
func single(env fp.Env, a, b fp.Bits) fp.Bits {
	return env.Add(a, b)
}
