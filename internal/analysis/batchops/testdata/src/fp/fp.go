// Package fp is a stand-in for mixedrel/internal/fp: the Env interface
// the analyzer matches receivers against, plus representative batch
// helpers. The analyzer skips this package (only "kernels" is checked),
// so the scalar fallback loops below are not flagged.
package fp

type Bits uint64

type Format int

// Env is the scalar soft-float environment.
type Env interface {
	Format() Format
	FromFloat64(float64) Bits
	Add(a, b Bits) Bits
	Mul(a, b Bits) Bits
	Div(a, b Bits) Bits
	FMA(a, b, c Bits) Bits
}

// AddN sets dst[i] = env.Add(a[i], b[i]).
func AddN(env Env, dst, a, b []Bits) {
	for i, ai := range a {
		dst[i] = env.Add(ai, b[i])
	}
}

// DotFMA folds acc through the chain acc = env.FMA(a[i], b[i], acc).
func DotFMA(env Env, acc Bits, a, b []Bits) Bits {
	for i, ai := range a {
		acc = env.FMA(ai, b[i], acc)
	}
	return acc
}
