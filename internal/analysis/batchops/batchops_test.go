package batchops_test

import (
	"testing"

	"mixedrel/internal/analysis/analysistest"
	"mixedrel/internal/analysis/batchops"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), batchops.Analyzer, "fp", "kernels")
}
