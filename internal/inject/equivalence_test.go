package inject

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
)

// The compiled trace program (internal/traceir) must be behaviorally
// invisible: every run classifies identically whether results are
// served from the compiled program, from the interpreted replay trace,
// or recomputed through the softfloat machine. These tests drive the
// same fault specifications through a compiled and an interpreted
// Runner and require the journaled sample encodings — which cover
// Outcome, Cause, MaxRelErr (exact bits), FaultApplied, and the kept
// output bits — to be byte-identical.

// runnersFor builds a compiled and an interpreted runner over the same
// memoized artifacts.
func runnersFor(k kernels.Kernel, f fp.Format) (compiled, interpreted *Runner) {
	compiled = NewRunner(k, f, "", nil)
	interpreted = NewRunner(k, f, "", nil)
	interpreted.DisableCompiledReplay = true
	return compiled, interpreted
}

func recordJSON(t *testing.T, rr RunResult) []byte {
	t.Helper()
	raw, err := json.Marshal(sample{rr: rr}.record())
	if err != nil {
		t.Fatalf("marshal sample record: %v", err)
	}
	return raw
}

// checkEquivalent runs spec on both runners and fails unless the
// classified samples journal to identical bytes.
func checkEquivalent(t *testing.T, compiled, interpreted *Runner, spec FaultSpec, keepOutput bool) {
	t.Helper()
	rc, ac := compiled.RunSpec(spec, keepOutput)
	ri, ai := interpreted.RunSpec(spec, keepOutput)
	if (ac == nil) != (ai == nil) {
		t.Fatalf("%s: abort mismatch: compiled %v, interpreted %v", spec.Desc(), ac, ai)
	}
	if ac != nil {
		return // both aborted; panic text may embed addresses, skip
	}
	jc, ji := recordJSON(t, rc), recordJSON(t, ri)
	if !bytes.Equal(jc, ji) {
		t.Errorf("%s (keepOutput=%v):\n  compiled:    %s\n  interpreted: %s",
			spec.Desc(), keepOutput, jc, ji)
	}
}

// randomSpec mirrors Campaign.Run's per-sample fault sampling,
// additionally cycling the behavioral-DUE machinery (watchdog, trap) so
// the compiled path is exercised with every gate armed.
func randomSpec(r *rng.Rand, counts fp.OpCounts, arrayLens []int, f fp.Format, i int) FaultSpec {
	var spec FaultSpec
	switch i % 5 {
	case 0:
		of := SampleOpFault(r, counts, f, 0, true, TargetResult)
		spec.Op = &of
	case 1:
		of := SampleOpFault(r, counts, f, 0, true, TargetOperand)
		spec.Op = &of
	case 2:
		mf := SampleMemFault(r, arrayLens, f)
		spec.Mem = []MemFault{mf}
	case 3:
		cf := SampleControlFault(r, counts)
		spec.Control = &cf
		spec.Watchdog = DefaultWatchdogFactor
	case 4:
		// Operation fault with both DUE gates armed: the compiled path
		// must decompose identically around trap/watchdog windows.
		of := SampleOpFault(r, counts, f, 0, true, TargetResult)
		spec.Op = &of
		spec.Watchdog = DefaultWatchdogFactor
		spec.TrapNonFinite = true
	}
	return spec
}

func TestCompiledReplayEquivalence(t *testing.T) {
	// Kernels chosen for batch-shape coverage: GEMM exercises GemmFMA
	// cone partitioning, CG exercises DotFMA/AXPY/GemmFMA plus scalar
	// Div, LUD exercises AXPY with scalar interleave, Micro exercises
	// pure scalar chains (compiled into superword-merged map regions),
	// Hotspot exercises long scalar stencils.
	cases := []struct {
		name string
		k    kernels.Kernel
	}{
		{"gemm", kernels.NewGEMM(5, 1)},
		{"cg", kernels.NewCG(5, 3, 4)},
		{"lud", kernels.NewLUD(5, 2)},
		{"micro-fma", kernels.NewMicro(kernels.MicroFMA, 2, 12, 3)},
		{"micro-add", kernels.NewMicro(kernels.MicroADD, 1, 16, 7)},
		{"hotspot", kernels.NewHotspot(4, 2, 1)},
	}
	for _, tc := range cases {
		for _, f := range []fp.Format{fp.Single, fp.Half} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, f), func(t *testing.T) {
				compiled, interpreted := runnersFor(tc.k, f)
				if compiled.art.Prog() == nil {
					t.Fatalf("no compiled program for %s/%v", tc.name, f)
				}
				counts := compiled.Counts()
				lens := compiled.ArrayLens()
				r := rng.New(0xE9 + uint64(f))
				for i := 0; i < 60; i++ {
					checkEquivalent(t, compiled, interpreted,
						randomSpec(r, counts, lens, f, i), i%7 == 0)
				}
				// Boundary op faults: first and last dynamic operation.
				total := counts.Total()
				for _, idx := range []uint64{0, total - 1} {
					of := OpFault{AnyKind: true, Index: idx, Bit: f.MantBits() - 1, Target: TargetResult}
					checkEquivalent(t, compiled, interpreted, FaultSpec{Op: &of}, true)
				}
			})
		}
	}
}

// TestCompiledReplayEquivalenceEveryIndex sweeps every dynamic
// operation index of a small kernel under operand and result faults, so
// the struck position crosses every region boundary of the compiled
// program at least once.
func TestCompiledReplayEquivalenceEveryIndex(t *testing.T) {
	k := kernels.NewGEMM(3, 6) // 27 FMAs: one compiled gemm region
	f := fp.Single
	compiled, interpreted := runnersFor(k, f)
	total := compiled.Counts().Total()
	for idx := uint64(0); idx < total; idx++ {
		for _, target := range []Target{TargetResult, TargetOperand} {
			of := OpFault{AnyKind: true, Index: idx, Bit: int(idx) % f.Width(), Target: target, OperandIdx: int(idx) % 3}
			checkEquivalent(t, compiled, interpreted, FaultSpec{Op: &of}, false)
		}
	}
}

// FuzzCompiledReplayEquivalence fuzzes fault placement across kernels,
// formats, sites, and DUE gating, asserting compiled and interpreted
// replay journal identically.
func FuzzCompiledReplayEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), false, false)
	f.Add(uint64(7), uint8(1), uint8(2), true, false)
	f.Add(uint64(42), uint8(2), uint8(3), false, true)
	f.Add(uint64(1<<40), uint8(3), uint8(4), true, true)
	f.Fuzz(func(t *testing.T, seed uint64, kSel, siteSel uint8, trap, watchdog bool) {
		var k kernels.Kernel
		switch kSel % 4 {
		case 0:
			k = kernels.NewGEMM(4, 1)
		case 1:
			k = kernels.NewCG(4, 2, 4)
		case 2:
			k = kernels.NewLUD(4, 2)
		case 3:
			k = kernels.NewMicro(kernels.MicroFMA, 1, 10, 3)
		}
		format := fp.Single
		if kSel%8 >= 4 {
			format = fp.Half
		}
		compiled, interpreted := runnersFor(k, format)
		counts := compiled.Counts()
		r := rng.New(seed)
		var spec FaultSpec
		switch siteSel % 4 {
		case 0:
			of := SampleOpFault(r, counts, format, 0, true, TargetResult)
			spec.Op = &of
		case 1:
			of := SampleOpFault(r, counts, format, 0, true, TargetOperand)
			spec.Op = &of
		case 2:
			mf := SampleMemFault(r, compiled.ArrayLens(), format)
			spec.Mem = []MemFault{mf}
		case 3:
			cf := SampleControlFault(r, counts)
			spec.Control = &cf
		}
		spec.TrapNonFinite = trap
		if watchdog || spec.Control != nil {
			spec.Watchdog = DefaultWatchdogFactor
		}
		checkEquivalent(t, compiled, interpreted, spec, seed%3 == 0)
	})
}

// TestCampaignByteIdentityCompiledVsInterpreted runs whole campaigns
// both ways and requires the marshaled results — counts, PVF/PDUE,
// every relative error, every kept output — to be byte-identical.
func TestCampaignByteIdentityCompiledVsInterpreted(t *testing.T) {
	cases := []Campaign{
		{
			Kernel: kernels.NewGEMM(6, 2), Format: fp.Single,
			Faults: 150, Seed: 99,
			Sites:         []Site{SiteOperation, SiteOperand, SiteMemory, SiteControl},
			TrapNonFinite: true, KeepOutputs: true,
		},
		{
			Kernel: kernels.NewLUD(6, 5), Format: fp.Half,
			Faults: 100, Seed: 7, Workers: 4,
			Sites: []Site{SiteOperand, SiteMemory},
		},
	}
	for i, c := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			compiled := c
			res, err := compiled.Run()
			if err != nil {
				t.Fatal(err)
			}
			interpreted := c
			interpreted.DisableCompiledReplay = true
			resI, err := interpreted.Run()
			if err != nil {
				t.Fatal(err)
			}
			jc, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			ji, err := json.Marshal(resI)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jc, ji) {
				t.Errorf("campaign tables differ:\n  compiled:    %.400s\n  interpreted: %.400s", jc, ji)
			}
		})
	}
}
