package inject

import (
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func TestCampaignParallelDeterministic(t *testing.T) {
	base := Campaign{Kernel: kernels.NewGEMM(8, 3), Format: fp.Single,
		Faults: 300, Seed: 7, KeepOutputs: true}
	run := func(workers int) *Result {
		c := base
		c.Workers = workers
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(2), run(6)
	if a.SDCs != b.SDCs || a.PVF != b.PVF {
		t.Fatalf("worker counts disagree: %d vs %d SDCs", a.SDCs, b.SDCs)
	}
	for i := range a.RelErrs {
		if a.RelErrs[i] != b.RelErrs[i] {
			t.Fatalf("rel-err order differs at %d", i)
		}
	}
}

func TestCampaignParallelAgreesWithSequential(t *testing.T) {
	seq := Campaign{Kernel: kernels.NewGEMM(10, 3), Format: fp.Half, Faults: 800, Seed: 5}
	par := seq
	par.Workers = 4
	rs, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := rs.PVF - rp.PVF; d > 0.08 || d < -0.08 {
		t.Errorf("PVF %v (seq) vs %v (par) differ beyond noise", rs.PVF, rp.PVF)
	}
}
