package inject

import (
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func TestCampaignParallelDeterministic(t *testing.T) {
	base := Campaign{Kernel: kernels.NewGEMM(8, 3), Format: fp.Single,
		Faults: 300, Seed: 7, KeepOutputs: true}
	run := func(workers int) *Result {
		c := base
		c.Workers = workers
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(2), run(6)
	if a.SDCs != b.SDCs || a.PVF != b.PVF {
		t.Fatalf("worker counts disagree: %d vs %d SDCs", a.SDCs, b.SDCs)
	}
	for i := range a.RelErrs {
		if a.RelErrs[i] != b.RelErrs[i] {
			t.Fatalf("rel-err order differs at %d", i)
		}
	}
}

func TestCampaignParallelAgreesWithSequential(t *testing.T) {
	seq := Campaign{Kernel: kernels.NewGEMM(10, 3), Format: fp.Half, Faults: 800, Seed: 5}
	par := seq
	par.Workers = 4
	rs, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := rs.PVF - rp.PVF; d > 0.08 || d < -0.08 {
		t.Errorf("PVF %v (seq) vs %v (par) differ beyond noise", rs.PVF, rp.PVF)
	}
}

// TestRunSpecSharesTraceAcrossSamples locks in the sharing contract of
// the replay fast paths: the golden result trace and the compiled
// program are installed into every sample's environment by slice/pointer
// aliasing — never copied — so steady-state runs allocate nothing
// proportional to the trace.
func TestRunSpecSharesTraceAcrossSamples(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(8, 3), fp.Single, "", nil)
	fault := OpFault{AnyKind: true, Index: 100, Bit: 12, Target: TargetOperand}
	spec := FaultSpec{Op: &fault}

	// Warm the scratch pool, then inspect the worker state a run leaves
	// behind: both replay views must alias the memoized artifacts. The
	// race detector makes sync.Pool drop puts at random, so retry until
	// a used scratch (prog installed) comes back out of the pool.
	var sc *scratch
	for try := 0; ; try++ {
		if _, abort := r.RunSpec(spec, false); abort != nil {
			t.Fatal(abort)
		}
		sc = r.get()
		if sc.ienv.prog != nil || try >= 50 {
			break
		}
		r.scratch.Put(sc)
	}
	if sc.ienv.prog != r.art.Prog() {
		t.Error("compiled program was not installed by pointer sharing")
	}
	trace := r.art.Results()
	if len(sc.ienv.replay) == 0 || &sc.ienv.replay[0] != &trace[0] {
		t.Error("replay trace was copied instead of aliased")
	}
	r.scratch.Put(sc)

	// With the trace shared and the scratch pooled, a steady-state run
	// performs a small constant number of allocations (guard closures
	// and interface boxing), independent of trace length (5968 ops
	// here). Pool drops under the race detector make the count
	// meaningless there.
	if raceEnabled {
		return
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, abort := r.RunSpec(spec, false); abort != nil {
			t.Fatal(abort)
		}
	})
	if allocs > 8 {
		t.Errorf("RunSpec allocates %.0f objects per run; trace sharing broken?", allocs)
	}
}
