//go:build race

package inject

// raceEnabled reports whether this test binary was built with the race
// detector, which makes sync.Pool intentionally drop puts and so
// invalidates pooling-dependent assertions.
const raceEnabled = true
