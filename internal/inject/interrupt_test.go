package inject

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// TestCampaignCancelledWithoutCheckpoint: cancellation of an
// uncheckpointed campaign returns *exec.Interrupted with no resume
// point (Journaled -1).
func TestCampaignCancelledWithoutCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Campaign{
		Kernel: kernels.NewGEMM(4, 1), Format: fp.Single,
		Faults: 20, Seed: 1, Workers: 2, Context: ctx,
	}
	_, err := c.Run()
	if !errors.Is(err, exec.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	var in *exec.Interrupted
	if !errors.As(err, &in) {
		t.Fatalf("err %T is not *exec.Interrupted", err)
	}
	if in.Journaled != -1 {
		t.Fatalf("Journaled = %d, want -1 (no checkpoint)", in.Journaled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("Interrupted does not unwrap to the context error")
	}

	// Sequential mode takes the other cancellation path.
	c.Workers = 1
	if _, err := c.Run(); !errors.Is(err, exec.ErrInterrupted) {
		t.Fatalf("sequential err = %v, want ErrInterrupted", err)
	}
}

// TestCheckpointedCampaignCancelThenResume: a cancelled checkpointed
// campaign reports a non-negative journaled count, and re-running
// without the cancelled context completes byte-identically to an
// uninterrupted reference.
func TestCheckpointedCampaignCancelThenResume(t *testing.T) {
	base := Campaign{
		Kernel: kernels.NewGEMM(4, 2), Format: fp.Single,
		Faults: 30, Seed: 7, Workers: 2,
	}
	ref, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := base
	c.Context = ctx
	c.Checkpoint = &exec.Checkpoint{Path: path, Every: 1}
	_, err = c.Run()
	var in *exec.Interrupted
	if !errors.As(err, &in) {
		t.Fatalf("err = %v, want *exec.Interrupted", err)
	}
	if in.Journaled < 0 {
		t.Fatalf("checkpointed interruption reports Journaled %d", in.Journaled)
	}

	c.Context = nil
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointDegraded || res.CheckpointError != "" {
		t.Fatalf("clean resume flagged degraded: %+v", res)
	}
	gotJSON, _ := json.Marshal(res)
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("resumed result diverges:\n got %s\nwant %s", gotJSON, refJSON)
	}
}

// TestStratifiedCampaignCancelThenResume: the stratified round loop
// honors cancellation with the same Interrupted contract and resumes
// byte-identically.
func TestStratifiedCampaignCancelThenResume(t *testing.T) {
	base := Campaign{
		Kernel: kernels.NewGEMM(4, 3), Format: fp.Single,
		Faults: 40, Seed: 9, Workers: 2,
		Sampling: &Sampling{Round: 16, MinPerStratum: 1},
	}
	ref, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)

	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := base
	c.Context = ctx
	c.Checkpoint = &exec.Checkpoint{Path: path, Every: 1}
	_, err = c.Run()
	var in *exec.Interrupted
	if !errors.As(err, &in) {
		t.Fatalf("err = %v, want *exec.Interrupted", err)
	}
	if in.Journaled < 0 {
		t.Fatalf("stratified interruption reports Journaled %d", in.Journaled)
	}

	c.Context = nil
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(res)
	if string(gotJSON) != string(refJSON) {
		t.Fatalf("resumed stratified result diverges:\n got %s\nwant %s", gotJSON, refJSON)
	}
}
