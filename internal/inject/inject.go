// Package inject is the software fault injector — the role CAROL-FI
// plays in the paper. It perturbs a single execution of a kernel with
// single-bit flips and classifies the outcome against the fault-free
// golden output.
//
// Three fault sites are modeled, mirroring both CAROL-FI's
// variable/register flips and the beam's physical strike locations:
//
//   - operation faults: the result of one dynamic arithmetic operation
//     is corrupted (a strike in functional-unit logic);
//   - operand faults: one input of one dynamic operation is corrupted
//     (a strike in a register feeding the datapath);
//   - memory faults: one element of an input array is corrupted before
//     the run (a strike in cache/BRAM/main-memory-resident data).
//
// Operation and operand faults can also be made persistent with a
// modulo: every dynamic operation executed by the same hardware instance
// (op index ≡ Index mod Modulo) is corrupted identically. That is the
// FPGA configuration-memory fault model: a broken LUT keeps producing
// the same wrong bit until the bitstream is scrubbed.
package inject

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// Target selects which value of the matched operation is corrupted.
type Target int

const (
	// TargetResult flips a bit of the operation's result (ALU fault).
	TargetResult Target = iota
	// TargetOperand flips a bit of one input operand (register fault).
	// The operand is OperandIdx modulo the operation's arity.
	TargetOperand
	// TargetIntState flips a low bit of an integer sequencing decision
	// inside a software routine (a corrupted table index or shift
	// count); Index counts decision sites, Bit is taken modulo 5.
	TargetIntState
)

func (t Target) String() string {
	switch t {
	case TargetResult:
		return "result"
	case TargetOperand:
		return "operand"
	case TargetIntState:
		return "int-state"
	}
	return "target?"
}

// OpFault describes a single-bit corruption of dynamic operation(s).
type OpFault struct {
	// Kind restricts matching to one operation kind unless AnyKind.
	Kind    fp.Op
	AnyKind bool
	// Index is the dynamic index of the struck operation, counted over
	// all operations (AnyKind) or over operations of Kind.
	Index uint64
	// Modulo, when nonzero, makes the fault persistent: every matching
	// operation whose counter ≡ Index (mod Modulo) is corrupted. This
	// models a corrupted hardware instance in a time-multiplexed
	// datapath (FPGA configuration faults).
	Modulo uint64
	// Bit is the flipped bit position within the format width.
	Bit int
	// Width is the number of adjacent bits flipped starting at Bit
	// (wrapping within the format) — a multi-bit upset. Zero means 1.
	Width int
	// Target selects result or operand; OperandIdx picks which operand
	// (modulo arity) for TargetOperand.
	Target     Target
	OperandIdx int
}

// MemFault describes a corruption of an input array element applied
// before the run: Width adjacent bits starting at Bit (a single-bit
// upset when Width <= 1).
type MemFault struct {
	Array int // input array index (modulo the number of arrays)
	Elem  int // element index (modulo the array length)
	Bit   int // first bit position within the format width
	Width int // adjacent bits flipped; 0 means 1
}

// Env wraps an fp.Env and applies an OpFault. It implements fp.Env.
type Env struct {
	inner   fp.Env
	fault   OpFault
	all     uint64
	byKind  [fp.NumOps]uint64
	intCtr  uint64
	applied uint64 // number of corruptions performed

	// replay, when non-nil, is the fault-free per-operation result trace
	// of this configuration (exec.Artifacts.Results). Until the first
	// corruption is applied every operation's operands are bit-identical
	// to the fault-free run's — by induction over the operation stream —
	// so its result is served from the trace instead of being recomputed.
	// Callers must leave replay nil when inputs were perturbed before the
	// run (memory faults), which breaks that induction.
	replay []fp.Bits
}

// NewEnv wraps inner with the given operation fault.
func NewEnv(inner fp.Env, fault OpFault) *Env {
	return &Env{inner: inner, fault: fault}
}

// Applied returns how many corruptions were performed (0 means the fault
// index was beyond the executed operation count).
func (e *Env) Applied() uint64 { return e.applied }

// match reports whether the current operation (of the given kind) is
// struck, using the counters prior to increment.
func (e *Env) match(kind fp.Op) bool {
	var ctr uint64
	if e.fault.AnyKind {
		ctr = e.all
	} else {
		if kind != e.fault.Kind {
			return false
		}
		ctr = e.byKind[kind]
	}
	if e.fault.Modulo > 0 {
		return ctr%e.fault.Modulo == e.fault.Index%e.fault.Modulo
	}
	return ctr == e.fault.Index
}

// flip corrupts b per the fault's bit position and width.
func (e *Env) flip(b fp.Bits) fp.Bits {
	return FlipBits(e.inner.Format(), b, e.fault.Bit, e.fault.Width)
}

// FlipBits flips width adjacent bits of b starting at position bit,
// wrapping within format f's width. width <= 1 flips a single bit.
func FlipBits(f fp.Format, b fp.Bits, bit, width int) fp.Bits {
	if width < 1 {
		width = 1
	}
	w := f.Width()
	for i := 0; i < width; i++ {
		b = f.FlipBit(b, (bit+i)%w)
	}
	return b
}

// begin advances the operation counters for one dynamic operation and
// reports whether the fault strikes it, split by target. Matching is
// inlined into each arithmetic method (the former closure-based step
// helper built an operand slice and a closure per dynamic operation —
// pure overhead on the hot path).
func (e *Env) begin(kind fp.Op) (hitOperand, hitResult bool) {
	hit := e.match(kind)
	e.all++
	e.byKind[kind]++
	if !hit {
		return false, false
	}
	switch e.fault.Target {
	case TargetOperand:
		return true, false
	case TargetResult:
		return false, true
	}
	return false, false // TargetIntState strikes via IntDecision only
}

// replayed reports whether the current operation — already counted by
// begin — can be served from the fault-free result trace, and returns
// its recorded result. It can when a trace is installed, the operation
// itself is not struck, and no corruption has been applied yet: every
// operand is then bit-identical to the fault-free run's, so the recorded
// result is exact. This skips the decode/compute/round cost of the whole
// pre-fault prefix, which dominates campaign time (the struck index is
// uniform over the operation stream, so the prefix is half of it on
// average, and all of it when the fault index exceeds the executed
// count).
func (e *Env) replayed(hitOperand, hitResult bool) (fp.Bits, bool) {
	if uint64(len(e.replay)) < e.all || hitOperand || hitResult || e.applied != 0 {
		return 0, false
	}
	return e.replay[e.all-1], true
}

// neverFault is an operation fault that cannot match any dynamic
// operation (no campaign executes 2^64 of them); it lets one injecting
// environment chain serve memory-fault-only runs unchanged.
var neverFault = OpFault{AnyKind: true, Index: ^uint64(0)}

// reset re-arms e for a fresh run with a new fault, clearing every
// counter. A nil fault installs neverFault, so the environment passes
// all arithmetic through untouched.
func (e *Env) reset(fault *OpFault) {
	if fault != nil {
		e.fault = *fault
	} else {
		e.fault = neverFault
	}
	e.all = 0
	e.byKind = [fp.NumOps]uint64{}
	e.intCtr = 0
	e.applied = 0
}

// IntDecision implements fp.IntDecider: when the fault targets integer
// state and this is the struck decision site, a low bit of the value is
// flipped; otherwise the value passes through (and is forwarded to any
// deeper IntDecider, so counters stay consistent across wrappers).
func (e *Env) IntDecision(k int) int {
	if d, ok := e.inner.(fp.IntDecider); ok {
		k = d.IntDecision(k)
	}
	if e.fault.Target == TargetIntState && e.intCtr == e.fault.Index {
		k ^= 1 << uint(e.fault.Bit%5)
		e.applied++
	}
	e.intCtr++
	return k
}

// Format implements fp.Env.
func (e *Env) Format() fp.Format { return e.inner.Format() }

// corrupt2 flips a bit of one of two operands per the fault's
// OperandIdx (modulo arity, matching the former pointer-slice indexing).
func (e *Env) corrupt2(a, b fp.Bits) (fp.Bits, fp.Bits) {
	if e.fault.OperandIdx%2 == 0 {
		a = e.flip(a)
	} else {
		b = e.flip(b)
	}
	e.applied++
	return a, b
}

// Add implements fp.Env.
func (e *Env) Add(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpAdd)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	res := e.inner.Add(a, b)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// Sub implements fp.Env.
func (e *Env) Sub(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpSub)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	res := e.inner.Sub(a, b)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// Mul implements fp.Env.
func (e *Env) Mul(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpMul)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	res := e.inner.Mul(a, b)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// Div implements fp.Env.
func (e *Env) Div(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpDiv)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	res := e.inner.Div(a, b)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// FMA implements fp.Env.
func (e *Env) FMA(a, b, c fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpFMA)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		switch e.fault.OperandIdx % 3 {
		case 0:
			a = e.flip(a)
		case 1:
			b = e.flip(b)
		default:
			c = e.flip(c)
		}
		e.applied++
	}
	res := e.inner.FMA(a, b, c)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// Sqrt implements fp.Env.
func (e *Env) Sqrt(a fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpSqrt)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a = e.flip(a)
		e.applied++
	}
	res := e.inner.Sqrt(a)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// Exp implements fp.Env.
func (e *Env) Exp(a fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpExp)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a = e.flip(a)
		e.applied++
	}
	res := e.inner.Exp(a)
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	return res
}

// FromFloat64 implements fp.Env.
func (e *Env) FromFloat64(v float64) fp.Bits { return e.inner.FromFloat64(v) }

// ToFloat64 implements fp.Env.
func (e *Env) ToFloat64(b fp.Bits) float64 { return e.inner.ToFloat64(b) }

// Outcome classifies one faulty execution.
type Outcome int

const (
	// Masked: the output is bit-identical to the golden output.
	Masked Outcome = iota
	// SDC: silent data corruption — at least one output bit differs.
	SDC
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "SDC"
	}
	return "outcome?"
}

// RunResult is the outcome of one faulty execution.
type RunResult struct {
	Outcome Outcome
	// MaxRelErr is the worst element-wise relative error vs golden
	// (0 when masked; +Inf for NaN/Inf corruption).
	MaxRelErr float64
	// Output is the decoded faulty output (nil unless requested).
	Output []float64
	// FaultApplied reports whether the op fault actually fired (an
	// index past the dynamic op count never fires).
	FaultApplied bool
}

// Run executes kernel k in format f with an optional operation fault and
// any number of memory faults, then classifies the outcome against
// golden (the decoded fault-free output in the same format).
// keepOutput controls whether the decoded faulty output is returned.
func Run(k kernels.Kernel, f fp.Format, golden []float64, opFault *OpFault, memFaults []MemFault, keepOutput bool) RunResult {
	return RunWrapped(k, f, golden, opFault, memFaults, keepOutput, nil)
}

// RunWrapped is Run with an environment transform applied between the
// kernel and the injecting layer, so that faults can strike inside
// decomposed operations (e.g. a platform's software exp). The golden
// output must have been produced with the same transform.
func RunWrapped(k kernels.Kernel, f fp.Format, golden []float64, opFault *OpFault, memFaults []MemFault, keepOutput bool, wrap func(fp.Env) fp.Env) RunResult {
	var opFaults []OpFault
	if opFault != nil {
		opFaults = []OpFault{*opFault}
	}
	return RunMulti(k, f, golden, opFaults, memFaults, keepOutput, wrap)
}

// RunMulti executes one run with any number of simultaneous operation
// faults (e.g. accumulated persistent FPGA configuration upsets) plus
// memory faults. Each operation fault gets its own injecting layer; the
// layers chain, so all faults apply independently within the same run.
func RunMulti(k kernels.Kernel, f fp.Format, golden []float64, opFaults []OpFault, memFaults []MemFault, keepOutput bool, wrap func(fp.Env) fp.Env) RunResult {
	in := k.Inputs(f)
	for _, mf := range memFaults {
		if len(in) == 0 {
			break
		}
		arr := in[mf.Array%len(in)]
		if len(arr) == 0 {
			continue
		}
		i := mf.Elem % len(arr)
		arr[i] = FlipBits(f, arr[i], mf.Bit, mf.Width)
	}

	var env fp.Env = fp.NewMachine(f)
	ienvs := make([]*Env, 0, len(opFaults))
	for _, fault := range opFaults {
		ie := NewEnv(env, fault)
		ienvs = append(ienvs, ie)
		env = ie
	}
	if wrap != nil {
		env = wrap(env)
	}
	outBits := k.Run(env, in)
	out := kernels.Decode(f, outBits)
	if len(out) != len(golden) {
		panic(fmt.Sprintf("inject: output length %d vs golden %d", len(out), len(golden)))
	}

	res := RunResult{FaultApplied: len(memFaults) > 0}
	for _, ie := range ienvs {
		if ie.Applied() > 0 {
			res.FaultApplied = true
		}
	}
	var worst float64
	same := true
	for i := range out {
		if out[i] != golden[i] {
			same = false
			if e := fp.RelErr(golden[i], out[i]); e > worst {
				worst = e
			}
		}
	}
	if same {
		res.Outcome = Masked
	} else {
		res.Outcome = SDC
		res.MaxRelErr = worst
	}
	if keepOutput {
		res.Output = out
	}
	return res
}
