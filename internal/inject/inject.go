// Package inject is the software fault injector — the role CAROL-FI
// plays in the paper. It perturbs a single execution of a kernel with
// single-bit flips and classifies the outcome against the fault-free
// golden output.
//
// Three fault sites are modeled, mirroring both CAROL-FI's
// variable/register flips and the beam's physical strike locations:
//
//   - operation faults: the result of one dynamic arithmetic operation
//     is corrupted (a strike in functional-unit logic);
//   - operand faults: one input of one dynamic operation is corrupted
//     (a strike in a register feeding the datapath);
//   - memory faults: one element of an input array is corrupted before
//     the run (a strike in cache/BRAM/main-memory-resident data).
//
// Operation and operand faults can also be made persistent with a
// modulo: every dynamic operation executed by the same hardware instance
// (op index ≡ Index mod Modulo) is corrupted identically. That is the
// FPGA configuration-memory fault model: a broken LUT keeps producing
// the same wrong bit until the bitstream is scrubbed.
package inject

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/traceir"
)

// Target selects which value of the matched operation is corrupted.
type Target int

const (
	// TargetResult flips a bit of the operation's result (ALU fault).
	TargetResult Target = iota
	// TargetOperand flips a bit of one input operand (register fault).
	// The operand is OperandIdx modulo the operation's arity.
	TargetOperand
	// TargetIntState flips a low bit of an integer sequencing decision
	// inside a software routine (a corrupted table index or shift
	// count); Index counts decision sites, Bit is taken modulo 5.
	TargetIntState
)

func (t Target) String() string {
	switch t {
	case TargetResult:
		return "result"
	case TargetOperand:
		return "operand"
	case TargetIntState:
		return "int-state"
	}
	return "target?"
}

// OpFault describes a single-bit corruption of dynamic operation(s).
type OpFault struct {
	// Kind restricts matching to one operation kind unless AnyKind.
	Kind    fp.Op
	AnyKind bool
	// Index is the dynamic index of the struck operation, counted over
	// all operations (AnyKind) or over operations of Kind.
	Index uint64
	// Modulo, when nonzero, makes the fault persistent: every matching
	// operation whose counter ≡ Index (mod Modulo) is corrupted. This
	// models a corrupted hardware instance in a time-multiplexed
	// datapath (FPGA configuration faults).
	Modulo uint64
	// Bit is the flipped bit position within the format width.
	Bit int
	// Width is the number of adjacent bits flipped starting at Bit
	// (wrapping within the format) — a multi-bit upset. Zero means 1.
	Width int
	// Target selects result or operand; OperandIdx picks which operand
	// (modulo arity) for TargetOperand.
	Target     Target
	OperandIdx int
}

// MemFault describes a corruption of an input array element applied
// before the run: Width adjacent bits starting at Bit (a single-bit
// upset when Width <= 1).
type MemFault struct {
	Array int // input array index (modulo the number of arrays)
	Elem  int // element index (modulo the array length)
	Bit   int // first bit position within the format width
	Width int // adjacent bits flipped; 0 means 1
}

// Env wraps an fp.Env and applies an OpFault. It implements fp.Env.
type Env struct {
	inner   fp.Env
	fault   OpFault
	all     uint64
	byKind  [fp.NumOps]uint64
	intCtr  uint64
	applied uint64 // number of corruptions performed

	// replay, when non-nil, is the fault-free per-operation result trace
	// of this configuration (exec.Artifacts.Results). Until the first
	// corruption is applied every operation's operands are bit-identical
	// to the fault-free run's — by induction over the operation stream —
	// so its result is served from the trace instead of being recomputed.
	// Callers must leave replay nil when inputs were perturbed before the
	// run (memory faults), which breaks that induction.
	replay []fp.Bits

	// prog, when non-nil, is the compiled trace program over the same
	// result stream (exec.Artifacts.Prog). Where replay's induction does
	// not reach — after the corruption, and in memory-fault runs from
	// operation zero — the program serves any operation whose kind and
	// operand bits compare equal to the recorded ones. A result is a
	// pure function of (kind, operand bits, format), so a compare hit is
	// exact unconditionally: no induction is needed, and the fault-
	// dependent cone falls out as exactly the operations whose compares
	// miss and recompute through the inner machine. cur is the program's
	// region lookup state, reset per run.
	prog *traceir.Program
	cur  traceir.Cursor

	// miss counts consecutive scalar compare-serve misses. Runs whose
	// dynamic operation stream drifts out of alignment with the recorded
	// one (control-flow divergence inside the software transcendentals,
	// early wide corruption under beam strikes) miss on essentially every
	// remaining operation, and paying a region lookup plus operand
	// compare per miss costs more than it saves. After scalarServeStreak
	// consecutive misses, served probes only every scalarServeProbe-th
	// operation; one hit re-engages full serving. Purely a cost policy:
	// serving is bit-exact whenever it happens, so backing off can never
	// change an outcome (the compiled-vs-interpreted equivalence suite
	// holds for any probe schedule).
	miss uint32

	// Per-run serve statistics, accumulated as plain fields (the hot
	// path must not touch atomics or allocate — hotalloc-enforced) and
	// flushed into the process-wide telemetry counters by the runner
	// once per sample. Never read by classification.
	statReplayed uint64 // operations served by replay induction
	statServed   uint64 // operations served by compiled compare-serving
	statBackoff  uint64 // times the scalar serve backoff tripped

	// Behavioral-DUE state, armed per run by resetSpec. due gates every
	// per-operation hook with a single branch so fault-free and
	// data-fault-only runs pay (almost) nothing for the machinery.
	due        bool
	ctl        ControlFault
	ctlArmed   bool    // control fault not yet consumed
	ctlPending bool    // next operation's first operand is replaced...
	ctlVal     fp.Bits // ...by this aliased/misaligned loaded word
	skip       bool    // early loop exit: remaining operations pass through
	budget     uint64  // watchdog op budget (0 = disabled)
	goldenOps  uint64  // golden dynamic op count of the configuration
	trap       bool    // NaN/Inf trap armed
	trapAll    bool    // trap from op 0 (inputs corrupted pre-run)
	mem        [][]fp.Bits
	memTotal   uint64 // flat element count of mem
}

// NewEnv wraps inner with the given operation fault.
func NewEnv(inner fp.Env, fault OpFault) *Env {
	return &Env{inner: inner, fault: fault}
}

// Applied returns how many corruptions were performed (0 means the fault
// index was beyond the executed operation count).
func (e *Env) Applied() uint64 { return e.applied }

// match reports whether the current operation (of the given kind) is
// struck, using the counters prior to increment.
func (e *Env) match(kind fp.Op) bool {
	var ctr uint64
	if e.fault.AnyKind {
		ctr = e.all
	} else {
		if kind != e.fault.Kind {
			return false
		}
		ctr = e.byKind[kind]
	}
	if e.fault.Modulo > 0 {
		return ctr%e.fault.Modulo == e.fault.Index%e.fault.Modulo
	}
	return ctr == e.fault.Index
}

// flip corrupts b per the fault's bit position and width.
func (e *Env) flip(b fp.Bits) fp.Bits {
	return FlipBits(e.inner.Format(), b, e.fault.Bit, e.fault.Width)
}

// FlipBits flips width adjacent bits of b starting at position bit,
// wrapping within format f's width. width <= 1 flips a single bit.
func FlipBits(f fp.Format, b fp.Bits, bit, width int) fp.Bits {
	if width < 1 {
		width = 1
	}
	w := f.Width()
	for i := 0; i < width; i++ {
		b = f.FlipBit(b, (bit+i)%w)
	}
	return b
}

// begin advances the operation counters for one dynamic operation and
// reports whether the fault strikes it, split by target. Matching is
// inlined into each arithmetic method (the former closure-based step
// helper built an operand slice and a closure per dynamic operation —
// pure overhead on the hot path).
func (e *Env) begin(kind fp.Op) (hitOperand, hitResult bool) {
	hit := e.match(kind)
	e.all++
	e.byKind[kind]++
	if e.due {
		e.dueStep()
	}
	if !hit {
		return false, false
	}
	switch e.fault.Target {
	case TargetOperand:
		return true, false
	case TargetResult:
		return false, true
	}
	return false, false // TargetIntState strikes via IntDecision only
}

// replayed reports whether the current operation — already counted by
// begin — can be served from the fault-free result trace, and returns
// its recorded result. It can when a trace is installed, the operation
// itself is not struck, and no corruption has been applied yet: every
// operand is then bit-identical to the fault-free run's, so the recorded
// result is exact. This skips the decode/compute/round cost of the whole
// pre-fault prefix, which dominates campaign time (the struck index is
// uniform over the operation stream, so the prefix is half of it on
// average, and all of it when the fault index exceeds the executed
// count).
func (e *Env) replayed(hitOperand, hitResult bool) (fp.Bits, bool) {
	if uint64(len(e.replay)) < e.all || hitOperand || hitResult || e.applied != 0 {
		return 0, false
	}
	e.statReplayed++
	return e.replay[e.all-1], true
}

// served reports whether the current operation — already counted by
// begin — can be answered without computing it, and returns the result.
// Two mechanisms stack:
//
//   - replay induction (replayed): position-based, exact while nothing
//     has been corrupted yet;
//   - compiled compare-serving: the trace program serves the operation
//     when its kind and operand bits compare equal to the recorded
//     stream at this position. A result is a pure function of (kind,
//     operand bits, format), so a compare hit is exact unconditionally
//     — after the corruption, under pre-run-corrupted inputs, even if
//     control flow shifted the stream position: a miss merely costs a
//     recompute. This is what partitions the post-fault suffix into
//     the fault-dependent cone (compares miss, softfloat recomputes)
//     and the fault-independent rest (served from the trace).
//
// Compare-serving is bypassed whenever the operation's semantics
// differ from plain compute: a struck operation, skip mode (the body
// is bypassed), or a pending control-corrupted operand. The NaN/Inf
// trap applies to served results exactly as to computed ones.
func (e *Env) served(kind fp.Op, hitOperand, hitResult bool, a, b, c fp.Bits) (fp.Bits, bool) {
	if res, ok := e.replayed(hitOperand, hitResult); ok {
		return res, true
	}
	if e.prog == nil || hitOperand || hitResult || e.skip || e.ctlPending {
		return 0, false
	}
	if !scalarServeWorthwhile(kind) {
		return 0, false
	}
	if e.miss >= scalarServeStreak && e.miss%scalarServeProbe != 0 {
		e.miss++
		return 0, false
	}
	res, ok := e.prog.ServeScalar(&e.cur, e.all-1, kind, a, b, c)
	if !ok {
		e.miss++
		if e.miss == scalarServeStreak {
			e.statBackoff++
		}
		return 0, false
	}
	e.miss = 0
	e.statServed++
	if e.due {
		res = e.duePost(res)
	}
	return res, true
}

// Scalar compare-serve backoff (see Env.miss): after scalarServeStreak
// consecutive misses, probe only every scalarServeProbe-th operation.
// The streak is long enough that a single fault-dependent chain (the
// deepest scalar cones the kernels produce between clean operations)
// does not trip it, and the probe period keeps the residual cost of a
// permanently diverged run under 2% while re-engaging within one probe
// period when the stream realigns.
const (
	scalarServeStreak = 32
	scalarServeProbe  = 64
)

// scalarServeWorthwhile reports whether a compare-serve hit on a single
// scalar operation of this kind saves meaningfully more than the region
// lookup and operand compare cost. For the cheap softfloat operations
// (add/sub/mul/fma) a hit is roughly break-even — the lookup costs about
// as much as the decode/compute/round it skips — so attempting them is
// pure overhead on workloads dominated by scalar streams (the software
// transcendentals behind LavaMD turn every exp() into dozens of cheap
// scalar ops). The expensive iterative routines are worth a compare.
// Bulk serving (ServeMap/ChainPrefix/ServeGemm from the batch entry
// points) amortizes one lookup over a whole region and stays enabled
// for every kind.
func scalarServeWorthwhile(kind fp.Op) bool {
	switch kind {
	case fp.OpDiv, fp.OpSqrt, fp.OpExp:
		return true
	}
	return false
}

// neverFault is an operation fault that cannot match any dynamic
// operation (no campaign executes 2^64 of them); it lets one injecting
// environment chain serve memory-fault-only runs unchanged.
var neverFault = OpFault{AnyKind: true, Index: ^uint64(0)}

// reset re-arms e for a fresh run with a new fault, clearing every
// counter. A nil fault installs neverFault, so the environment passes
// all arithmetic through untouched.
func (e *Env) reset(fault *OpFault) {
	if fault != nil {
		e.fault = *fault
	} else {
		e.fault = neverFault
	}
	e.all = 0
	e.byKind = [fp.NumOps]uint64{}
	e.intCtr = 0
	e.applied = 0
	e.cur = traceir.Cursor{}
	e.miss = 0
	e.statReplayed = 0
	e.statServed = 0
	e.statBackoff = 0
	e.due = false
	e.ctlArmed = false
	e.ctlPending = false
	e.skip = false
	e.budget = 0
	e.goldenOps = 0
	e.trap = false
	e.trapAll = false
	e.mem = nil
	e.memTotal = 0
}

// resetSpec re-arms e for a fresh run with the full fault
// specification: the optional operation fault plus the behavioral-DUE
// machinery (control-state fault, watchdog budget, FP trap). goldenOps
// is the configuration's fault-free dynamic operation count; mem is the
// run's (possibly corrupted) input encoding, which index/pointer
// corruption reads through.
func (e *Env) resetSpec(spec FaultSpec, goldenOps uint64, mem [][]fp.Bits) {
	e.reset(spec.Op)
	e.goldenOps = goldenOps
	if spec.Control != nil {
		e.ctl = *spec.Control
		e.ctlArmed = true
	}
	if spec.Watchdog > 0 {
		b := uint64(spec.Watchdog * float64(goldenOps))
		if b < goldenOps {
			// The budget must cover the golden stream itself or a
			// fault-free-length run would trip the watchdog.
			b = goldenOps
		}
		e.budget = b
	}
	e.trap = spec.TrapNonFinite
	// With inputs corrupted before the run the trap is live from the
	// first operation; otherwise it arms at the first in-stream
	// corruption (a fault-free prefix cannot raise a spurious trap).
	e.trapAll = e.trap && len(spec.Mem) > 0
	e.mem = mem
	for _, arr := range mem {
		e.memTotal += uint64(len(arr))
	}
	e.due = e.ctlArmed || e.budget > 0 || e.trap
}

// dueStep runs the behavioral-DUE hooks for the operation just counted
// by begin: the op-budget watchdog and the control-state strike.
func (e *Env) dueStep() {
	if e.budget > 0 && e.all > e.budget {
		panic(dueSignal{outcome: HangDUE, cause: CauseWatchdog})
	}
	if e.ctlArmed && e.all-1 == e.ctl.Site {
		e.ctlArmed = false
		e.applyControl()
	}
}

// flatElem reads element i of the run's inputs under a flat indexing of
// all arrays in order — the footprint a corrupted index or pointer
// roams over.
func (e *Env) flatElem(i uint64) fp.Bits {
	for _, arr := range e.mem {
		if i < uint64(len(arr)) {
			return arr[i]
		}
		i -= uint64(len(arr))
	}
	return 0
}

// applyControl emulates the consumption of the corrupted control word
// at the struck operation. It either panics with a dueSignal (the
// emulated crash/hang, recovered by the runner's exec.Guard) or leaves
// the environment in a silently-wrong state whose output is classified
// normally.
func (e *Env) applyControl() {
	e.applied++
	switch e.ctl.Class {
	case LoopControl:
		// The trip counter holds the remaining iterations; on this
		// abstract machine that is the remaining golden operations.
		var remaining uint32
		if e.goldenOps > e.ctl.Site {
			remaining = uint32(e.goldenOps - e.ctl.Site)
		}
		corrupted := remaining ^ 1<<(uint(e.ctl.Bit)%loopBits)
		if corrupted > remaining {
			// Upward jump: the loop re-executes that many extra
			// operations. Account for them immediately — if the budget
			// cannot absorb them the watchdog fires here; otherwise the
			// re-executed iterations are idempotent on this machine and
			// the run continues to a (possibly corrupted) output.
			e.all += uint64(corrupted - remaining)
			if e.budget > 0 && e.all > e.budget {
				panic(dueSignal{outcome: HangDUE, cause: CauseWatchdog})
			}
		} else {
			// Downward jump: the loop exits early. Every remaining
			// operation is skipped — operands pass through untouched.
			e.skip = true
		}
	case IndexControl:
		if e.memTotal == 0 {
			// No mapped data: any corrupted access faults.
			panic(dueSignal{outcome: CrashDUE, cause: CauseSegfault})
		}
		idx := e.ctl.Site % e.memTotal
		corrupted := idx ^ 1<<(uint(e.ctl.Bit)%indexBits)
		if corrupted >= e.memTotal {
			panic(dueSignal{outcome: CrashDUE, cause: CauseSegfault})
		}
		e.ctlPending = true
		e.ctlVal = e.flatElem(corrupted)
	case PointerControl:
		if e.memTotal == 0 {
			panic(dueSignal{outcome: CrashDUE, cause: CauseSegfault})
		}
		word := uint64(e.inner.Format().Width() / 8)
		addr := (e.ctl.Site % e.memTotal) * word
		corrupted := addr ^ 1<<(uint(e.ctl.Bit)%pointerBits)
		elem, off := corrupted/word, corrupted%word
		if elem >= e.memTotal {
			panic(dueSignal{outcome: CrashDUE, cause: CauseSegfault})
		}
		v := uint64(e.flatElem(elem))
		if off != 0 {
			// Misaligned load: the word straddles two elements.
			if elem+1 >= e.memTotal {
				panic(dueSignal{outcome: CrashDUE, cause: CauseSegfault})
			}
			w := uint(e.inner.Format().Width())
			hi := uint64(e.flatElem(elem + 1))
			v = v>>(8*uint(off)) | hi<<(w-8*uint(off))
			if w < 64 {
				v &= 1<<w - 1
			}
		}
		e.ctlPending = true
		e.ctlVal = fp.Bits(v)
	}
}

// duePre applies pending control-state effects to an operation's first
// operand: an aliased/misaligned load replaces it, and skip mode
// reports that the operation body is bypassed entirely (the caller then
// passes the designated operand through as the result).
func (e *Env) duePre(a fp.Bits) (operand fp.Bits, skipped bool) {
	if e.ctlPending {
		e.ctlPending = false
		a = e.ctlVal
	}
	return a, e.skip
}

// duePost applies the NaN/Inf trap to a computed result: the first
// non-finite value produced after a corruption (or from corrupted
// inputs) is delivered as an FP exception, i.e. a crash.
func (e *Env) duePost(res fp.Bits) fp.Bits {
	if e.trap && (e.applied != 0 || e.trapAll) {
		if f := e.inner.Format(); f.IsNaN(res) || f.IsInf(res) {
			panic(dueSignal{outcome: CrashDUE, cause: CauseTrap})
		}
	}
	return res
}

// IntDecision implements fp.IntDecider: when the fault targets integer
// state and this is the struck decision site, a low bit of the value is
// flipped; otherwise the value passes through (and is forwarded to any
// deeper IntDecider, so counters stay consistent across wrappers).
func (e *Env) IntDecision(k int) int {
	if d, ok := e.inner.(fp.IntDecider); ok {
		k = d.IntDecision(k)
	}
	if e.fault.Target == TargetIntState && e.intCtr == e.fault.Index {
		k ^= 1 << uint(e.fault.Bit%5)
		e.applied++
	}
	e.intCtr++
	return k
}

// Format implements fp.Env.
func (e *Env) Format() fp.Format { return e.inner.Format() }

// corrupt2 flips a bit of one of two operands per the fault's
// OperandIdx (modulo arity, matching the former pointer-slice indexing).
func (e *Env) corrupt2(a, b fp.Bits) (fp.Bits, fp.Bits) {
	if e.fault.OperandIdx%2 == 0 {
		a = e.flip(a)
	} else {
		b = e.flip(b)
	}
	e.applied++
	return a, b
}

// Add implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Add(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpAdd)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Add(a, b)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// Sub implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Sub(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpSub)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Sub(a, b)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// Mul implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Mul(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpMul)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Mul(a, b)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// Div implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Div(a, b fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpDiv)
	if res, ok := e.served(fp.OpDiv, hitOp, hitRes, a, b, 0); ok {
		return res
	}
	if hitOp {
		a, b = e.corrupt2(a, b)
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Div(a, b)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// FMA implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) FMA(a, b, c fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpFMA)
	if res, ok := e.replayed(hitOp, hitRes); ok {
		return res
	}
	if hitOp {
		switch e.fault.OperandIdx % 3 {
		case 0:
			a = e.flip(a)
		case 1:
			b = e.flip(b)
		default:
			c = e.flip(c)
		}
		e.applied++
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	// A skipped FMA passes its accumulator through: the multiply-add
	// contribution of the skipped iteration is simply lost.
	res := c
	if !skipped {
		res = e.inner.FMA(a, b, c)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// Sqrt implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Sqrt(a fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpSqrt)
	if res, ok := e.served(fp.OpSqrt, hitOp, hitRes, a, 0, 0); ok {
		return res
	}
	if hitOp {
		a = e.flip(a)
		e.applied++
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Sqrt(a)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// Exp implements fp.Env.
//mixedrelvet:hotpath per-operation injection fast path, millions of calls per campaign
func (e *Env) Exp(a fp.Bits) fp.Bits {
	hitOp, hitRes := e.begin(fp.OpExp)
	if res, ok := e.served(fp.OpExp, hitOp, hitRes, a, 0, 0); ok {
		return res
	}
	if hitOp {
		a = e.flip(a)
		e.applied++
	}
	var skipped bool
	if e.due {
		a, skipped = e.duePre(a)
	}
	res := a
	if !skipped {
		res = e.inner.Exp(a)
	}
	if hitRes {
		res = e.flip(res)
		e.applied++
	}
	if e.due {
		res = e.duePost(res)
	}
	return res
}

// FromFloat64 implements fp.Env.
func (e *Env) FromFloat64(v float64) fp.Bits { return e.inner.FromFloat64(v) }

// ToFloat64 implements fp.Env.
func (e *Env) ToFloat64(b fp.Bits) float64 { return e.inner.ToFloat64(b) }

// Outcome classifies one faulty execution.
type Outcome int

const (
	// Masked: the output is bit-identical to the golden output.
	Masked Outcome = iota
	// SDC: silent data corruption — at least one output bit differs.
	SDC
	// CrashDUE: the execution died before producing output — an
	// emulated segfault from corrupted control state, or an FP trap on
	// a non-finite result. Detected and unrecoverable, but not silent.
	CrashDUE
	// HangDUE: the op-budget watchdog killed a runaway execution
	// (kernel exceeded k x its golden operation profile).
	HangDUE
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "SDC"
	case CrashDUE:
		return "crash-DUE"
	case HangDUE:
		return "hang-DUE"
	}
	return "outcome?"
}

// IsDUE reports whether o is a detected-unrecoverable outcome.
func (o Outcome) IsDUE() bool { return o == CrashDUE || o == HangDUE }

// RunResult is the outcome of one faulty execution.
type RunResult struct {
	Outcome Outcome
	// Cause identifies the detector behind a DUE outcome (CauseNone
	// for masked/SDC runs).
	Cause DUECause
	// MaxRelErr is the worst element-wise relative error vs golden
	// (0 when masked; +Inf for NaN/Inf corruption).
	MaxRelErr float64
	// Output is the decoded faulty output (nil unless requested).
	Output []float64
	// FaultApplied reports whether the op fault actually fired (an
	// index past the dynamic op count never fires).
	FaultApplied bool
}

// Run executes kernel k in format f with an optional operation fault and
// any number of memory faults, then classifies the outcome against
// golden (the decoded fault-free output in the same format).
// keepOutput controls whether the decoded faulty output is returned.
func Run(k kernels.Kernel, f fp.Format, golden []float64, opFault *OpFault, memFaults []MemFault, keepOutput bool) RunResult {
	return RunWrapped(k, f, golden, opFault, memFaults, keepOutput, nil)
}

// RunWrapped is Run with an environment transform applied between the
// kernel and the injecting layer, so that faults can strike inside
// decomposed operations (e.g. a platform's software exp). The golden
// output must have been produced with the same transform.
func RunWrapped(k kernels.Kernel, f fp.Format, golden []float64, opFault *OpFault, memFaults []MemFault, keepOutput bool, wrap func(fp.Env) fp.Env) RunResult {
	var opFaults []OpFault
	if opFault != nil {
		opFaults = []OpFault{*opFault}
	}
	return RunMulti(k, f, golden, opFaults, memFaults, keepOutput, wrap)
}

// RunMulti executes one run with any number of simultaneous operation
// faults (e.g. accumulated persistent FPGA configuration upsets) plus
// memory faults. Each operation fault gets its own injecting layer; the
// layers chain, so all faults apply independently within the same run.
func RunMulti(k kernels.Kernel, f fp.Format, golden []float64, opFaults []OpFault, memFaults []MemFault, keepOutput bool, wrap func(fp.Env) fp.Env) RunResult {
	in := k.Inputs(f)
	for _, mf := range memFaults {
		if len(in) == 0 {
			break
		}
		arr := in[mf.Array%len(in)]
		if len(arr) == 0 {
			continue
		}
		i := mf.Elem % len(arr)
		arr[i] = FlipBits(f, arr[i], mf.Bit, mf.Width)
	}

	var env fp.Env = fp.NewMachine(f)
	ienvs := make([]*Env, 0, len(opFaults))
	for _, fault := range opFaults {
		ie := NewEnv(env, fault)
		ienvs = append(ienvs, ie)
		env = ie
	}
	if wrap != nil {
		env = wrap(env)
	}
	outBits := k.Run(env, in)
	out := kernels.Decode(f, outBits)
	if len(out) != len(golden) {
		panic(fmt.Sprintf("inject: output length %d vs golden %d", len(out), len(golden)))
	}

	res := RunResult{FaultApplied: len(memFaults) > 0}
	for _, ie := range ienvs {
		if ie.Applied() > 0 {
			res.FaultApplied = true
		}
	}
	var worst float64
	same := true
	for i := range out {
		if out[i] != golden[i] {
			same = false
			if e := fp.RelErr(golden[i], out[i]); e > worst {
				worst = e
			}
		}
	}
	if same {
		res.Outcome = Masked
	} else {
		res.Outcome = SDC
		res.MaxRelErr = worst
	}
	if keepOutput {
		res.Output = out
	}
	return res
}
