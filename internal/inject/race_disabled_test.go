//go:build !race

package inject

// raceEnabled reports whether this test binary was built with the race
// detector.
const raceEnabled = false
