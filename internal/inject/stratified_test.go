package inject

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func stratCampaign(faults int) Campaign {
	return Campaign{
		Kernel: kernels.NewGEMM(6, 1),
		Format: fp.Single,
		Faults: faults,
		Seed:   11,
		Sites:  []Site{SiteOperand, SiteMemory, SiteControl},
		Sampling: &Sampling{
			Round:         64,
			MinPerStratum: 2,
			Adaptive:      true,
			CIHalfWidth:   0.04,
		},
	}
}

func mustJSON(t *testing.T, c Campaign) []byte {
	t.Helper()
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStratifiedWorkerInvariance is the determinism contract: the full
// result — per-stratum tallies, estimates, intervals — is byte-identical
// at any worker count.
func TestStratifiedWorkerInvariance(t *testing.T) {
	base := mustJSON(t, stratCampaign(600))
	for _, workers := range []int{1, 2, 7} {
		c := stratCampaign(600)
		c.Workers = workers
		if got := mustJSON(t, c); string(got) != string(base) {
			t.Errorf("workers=%d: result diverged from sequential run", workers)
		}
	}
}

func TestStratifiedSeedSensitivity(t *testing.T) {
	a := mustJSON(t, stratCampaign(400))
	c := stratCampaign(400)
	c.Seed++
	if b := mustJSON(t, c); string(a) == string(b) {
		t.Error("different seeds produced identical stratified results")
	}
}

// TestStratifiedResume interrupts an adaptive campaign with
// Checkpoint.Limit at several cut points and resumes it; the final
// result must be byte-identical to the uninterrupted run.
func TestStratifiedResume(t *testing.T) {
	uninterrupted := mustJSON(t, stratCampaign(500))
	for _, limit := range []int{1, 63, 200} {
		path := filepath.Join(t.TempDir(), "strat.ckpt")
		interrupted := stratCampaign(500)
		interrupted.Workers = 3
		interrupted.Checkpoint = &exec.Checkpoint{Path: path, Limit: limit}
		for i := 0; ; i++ {
			if i > 500 {
				t.Fatalf("limit %d: campaign did not converge after %d resumes", limit, i)
			}
			_, err := interrupted.Run()
			if err == nil {
				break
			}
			if !errors.Is(err, exec.ErrPartial) {
				t.Fatalf("limit %d: %v", limit, err)
			}
		}
		final := stratCampaign(500)
		final.Workers = 2
		final.Checkpoint = &exec.Checkpoint{Path: path}
		if got := mustJSON(t, final); string(got) != string(uninterrupted) {
			t.Errorf("limit %d: resumed result differs from uninterrupted run", limit)
		}
	}
}

func TestStratifiedEarlyStop(t *testing.T) {
	// A generous budget with a loose target stops early...
	c := stratCampaign(50000)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("campaign did not stop early at a loose target")
	}
	if res.Faults >= 50000 {
		t.Fatalf("early-stopped campaign spent the whole budget (%d)", res.Faults)
	}
	// ...and the interval it stopped on honors the target.
	if hw := (res.PVFCIHigh - res.PVFCILow) / 2; hw > c.Sampling.CIHalfWidth {
		t.Errorf("P(SDC) half-width %v exceeds target %v", hw, c.Sampling.CIHalfWidth)
	}
	if hw := (res.PDUECIHigh - res.PDUECILow) / 2; hw > c.Sampling.CIHalfWidth {
		t.Errorf("P(DUE) half-width %v exceeds target %v", hw, c.Sampling.CIHalfWidth)
	}
	// Without a target the same campaign spends its whole budget.
	c2 := stratCampaign(800)
	c2.Sampling.CIHalfWidth = 0
	res2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.EarlyStopped || res2.Faults != 800 {
		t.Errorf("no-target campaign: stopped=%v spent=%d, want full 800", res2.EarlyStopped, res2.Faults)
	}
}

func TestStratifiedAccounting(t *testing.T) {
	c := stratCampaign(700)
	c.Sampling.CIHalfWidth = 0
	c.Sampling.Adaptive = false
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Per-stratum tallies add up to the pooled ones.
	var faults, sdcs, dues, masked int
	for _, s := range res.Strata {
		faults += s.Faults
		sdcs += s.SDCs
		dues += s.DUEs
		masked += s.Masked
	}
	if faults != res.Faults {
		t.Errorf("strata faults %d != %d", faults, res.Faults)
	}
	if sdcs != res.SDCs || dues != res.DUEs() || masked != res.Masked {
		t.Errorf("strata tallies (%d,%d,%d) != pooled (%d,%d,%d)",
			sdcs, dues, masked, res.SDCs, res.DUEs(), res.Masked)
	}
	if len(res.RelErrs) != res.SDCs {
		t.Errorf("%d relative errors for %d SDCs", len(res.RelErrs), res.SDCs)
	}
	// The stratified estimate is populated and inside its interval.
	if res.StratifiedPVF < res.PVFCILow || res.StratifiedPVF > res.PVFCIHigh {
		t.Errorf("StratifiedPVF %v outside [%v,%v]", res.StratifiedPVF, res.PVFCILow, res.PVFCIHigh)
	}
	// Proportional stratified and uniform estimates agree on the same
	// campaign to within a few interval widths.
	u := stratCampaign(700)
	u.Sampling = nil
	ures, err := u.Run()
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.StratifiedPVF - ures.PVF; diff > 0.1 || diff < -0.1 {
		t.Errorf("stratified PVF %v vs uniform %v", res.StratifiedPVF, ures.PVF)
	}
}

func TestSamplingValidation(t *testing.T) {
	bad := []Sampling{
		{CIHalfWidth: -0.1},
		{CIHalfWidth: 0.5},
		{Confidence: 1.5},
		{Round: -1},
		{MinPerStratum: -2},
		{Phases: -3},
	}
	for i, sp := range bad {
		c := stratCampaign(100)
		c.Sampling = &sp
		if _, err := c.Run(); err == nil {
			t.Errorf("case %d: invalid sampling config accepted", i)
		}
	}
}

func TestStratumSeedAddressing(t *testing.T) {
	// Distinct strata get distinct stream roots, stable across calls.
	seen := map[uint64]int{}
	for h := 0; h < 64; h++ {
		s := exec.StratumSeed(99, h)
		if prev, dup := seen[s]; dup {
			t.Fatalf("strata %d and %d share a seed", prev, h)
		}
		seen[s] = h
		if s != exec.StratumSeed(99, h) {
			t.Fatal("StratumSeed not stable")
		}
	}
	// And never collide with the uniform chain of the same campaign
	// seed over a realistic index range.
	flat := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		flat[exec.SampleSeed(99, i)] = true
	}
	for s := range seen {
		if flat[s] {
			t.Fatal("stratified and uniform seed chains collide")
		}
	}
}

func TestSampleKey(t *testing.T) {
	if k := exec.SampleKey(0, 0); k != 0 {
		t.Errorf("SampleKey(0,0) = %d", k)
	}
	if k := exec.SampleKey(3, 7); k != 3<<32|7 {
		t.Errorf("SampleKey(3,7) = %d", k)
	}
	seen := map[int]bool{}
	for h := 0; h < 20; h++ {
		for j := 0; j < 20; j++ {
			k := exec.SampleKey(h, j)
			if seen[k] {
				t.Fatalf("key collision at (%d,%d)", h, j)
			}
			seen[k] = true
		}
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {1 << 31, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleKey(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			exec.SampleKey(bad[0], bad[1])
		}()
	}
}
