package inject

import (
	"encoding/json"
	"math"
	"testing"
)

func TestResultJSONWithInfinities(t *testing.T) {
	r := &Result{Faults: 3, SDCs: 2, Masked: 1, PVF: 2.0 / 3,
		RelErrs: []float64{0.5, math.Inf(1)},
		Outputs: [][]float64{{1, math.NaN()}, {2, 3}},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal failed: %v", err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back["PVF"].(float64) != r.PVF {
		t.Error("PVF lost")
	}
}
