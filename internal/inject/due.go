package inject

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// This file is the behavioral DUE model: detected-unrecoverable events
// (crashes, hangs) emerge from emulated control-state corruption and
// runtime detectors instead of being sampled from a constant rate.
//
// Three control-state fault classes are modeled, mirroring what a
// strike on sequencing logic does to a real kernel:
//
//   - LoopControl: a loop trip counter is corrupted at a random point
//     of the operation stream. An upward jump re-executes iterations —
//     caught by the op-budget watchdog as a hang when it runs away; a
//     downward jump exits early, silently truncating the computation.
//   - IndexControl: an array index is corrupted; out-of-range values
//     fault (emulated segfault), in-range values silently alias another
//     element into the datapath.
//   - PointerControl: a data pointer is corrupted; bits beyond the
//     mapped footprint fault, low bits misalign the access so the
//     loaded word straddles two elements.
//
// Two runtime detectors complete the model: the op-budget watchdog
// (kernel exceeds k x its golden operation profile -> HangDUE) and an
// optional NaN/Inf trap (first non-finite result after a corruption
// -> CrashDUE), matching hardware FP exception delivery.

// ControlClass selects which control-state word a fault corrupts.
type ControlClass int

const (
	// LoopControl corrupts a loop trip counter at the struck operation.
	LoopControl ControlClass = iota
	// IndexControl corrupts an array index feeding an operand load.
	IndexControl
	// PointerControl corrupts a data pointer feeding an operand load.
	PointerControl

	numControlClasses
)

// NumControlClasses is the number of modeled control-state classes.
const NumControlClasses = int(numControlClasses)

func (c ControlClass) String() string {
	switch c {
	case LoopControl:
		return "loop"
	case IndexControl:
		return "index"
	case PointerControl:
		return "pointer"
	}
	return "control?"
}

// Control-word widths: trip counters and indices are 32-bit integers;
// pointers carry 48 implemented virtual-address bits (upper bits are
// sign-extended on real hardware, so a flip there always faults).
const (
	loopBits    = 32
	indexBits   = 32
	pointerBits = 48
)

// ControlFault describes a single-bit corruption of control state
// consumed at one dynamic operation.
type ControlFault struct {
	Class ControlClass
	// Site is the dynamic operation index (counted over all arithmetic
	// operations, like OpFault with AnyKind) at which the corrupted
	// control word is consumed.
	Site uint64
	// Bit is the flipped bit within the control word; it is taken
	// modulo the class's width (32 for loop/index, 48 for pointer).
	Bit int
}

func (c ControlFault) String() string {
	return fmt.Sprintf("control[%v site=%d bit=%d]", c.Class, c.Site, c.Bit)
}

// SampleControlFault draws a uniformly random control-state fault over
// the dynamic operations recorded in counts.
func SampleControlFault(r *rng.Rand, counts fp.OpCounts) ControlFault {
	class := ControlClass(r.Intn(NumControlClasses))
	bits := indexBits
	switch class {
	case LoopControl:
		bits = loopBits
	case PointerControl:
		bits = pointerBits
	}
	n := counts.Total()
	if n == 0 {
		panic("inject: no dynamic operations for a control fault")
	}
	return ControlFault{Class: class, Site: r.Uint64n(n), Bit: r.Intn(bits)}
}

// DUECause records which mechanism detected the unrecoverable event.
type DUECause int

const (
	// CauseNone: the run was not a behavioral DUE.
	CauseNone DUECause = iota
	// CauseSegfault: a corrupted index or pointer left the mapped
	// footprint and the access faulted.
	CauseSegfault
	// CauseTrap: the FP trap fired on a non-finite result after a
	// corruption.
	CauseTrap
	// CauseWatchdog: the op-budget watchdog killed a runaway execution.
	CauseWatchdog
)

func (c DUECause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseSegfault:
		return "segfault"
	case CauseTrap:
		return "fp-trap"
	case CauseWatchdog:
		return "watchdog"
	}
	return "cause?"
}

// DefaultWatchdogFactor is the default op-budget multiple k: a faulty
// run executing more than k x its golden operation count is classified
// as a hang. Generous enough that legitimate control corruption which
// merely re-runs a few iterations still completes and is classified by
// its output.
const DefaultWatchdogFactor = 4

// dueSignal aborts a faulty execution mid-kernel via panic; the
// runner's exec.Guard recovers it and translates it into a classified
// RunResult. Kernels never see or handle it (they must not recover —
// see the panicsafety analyzer).
type dueSignal struct {
	outcome Outcome
	cause   DUECause
}

// FaultSpec is the full fault specification of one sample: at most one
// of Op/Control, any number of memory faults, plus the runtime
// detectors armed for the run.
type FaultSpec struct {
	Op      *OpFault
	Mem     []MemFault
	Control *ControlFault
	// Watchdog is the op-budget factor k (0 disables the watchdog).
	Watchdog float64
	// TrapNonFinite arms the FP trap: the first non-finite result
	// produced after a corruption raises CrashDUE.
	TrapNonFinite bool
}

// Desc renders the spec compactly for aborted-sample replay
// diagnostics.
func (s FaultSpec) Desc() string {
	out := ""
	if s.Op != nil {
		out += fmt.Sprintf("op[kind=%v any=%v idx=%d mod=%d bit=%d w=%d tgt=%v] ",
			s.Op.Kind, s.Op.AnyKind, s.Op.Index, s.Op.Modulo, s.Op.Bit, s.Op.Width, s.Op.Target)
	}
	for _, mf := range s.Mem {
		out += fmt.Sprintf("mem[arr=%d elem=%d bit=%d w=%d] ", mf.Array, mf.Elem, mf.Bit, mf.Width)
	}
	if s.Control != nil {
		out += s.Control.String() + " "
	}
	if s.Watchdog > 0 {
		out += fmt.Sprintf("watchdog=%g ", s.Watchdog)
	}
	if s.TrapNonFinite {
		out += "trap "
	}
	if out == "" {
		return "fault-free"
	}
	return out[:len(out)-1]
}
