package inject

import (
	"fmt"
	"testing"

	"mixedrel/internal/fp"
)

// noBatch hides the batch methods of an environment, forcing the fp
// batch helpers onto their scalar decomposition — the reference behavior
// the injector's batch path must reproduce bit-for-bit.
type noBatch struct {
	fp.Env
}

// traceRec records every scalar operation result, reproducing the trace
// exec's recorder would capture for the same stream.
type traceRec struct {
	fp.Env
	trace []fp.Bits
}

func (r *traceRec) rec(b fp.Bits) fp.Bits { r.trace = append(r.trace, b); return b }

func (r *traceRec) Add(a, b fp.Bits) fp.Bits    { return r.rec(r.Env.Add(a, b)) }
func (r *traceRec) Sub(a, b fp.Bits) fp.Bits    { return r.rec(r.Env.Sub(a, b)) }
func (r *traceRec) Mul(a, b fp.Bits) fp.Bits    { return r.rec(r.Env.Mul(a, b)) }
func (r *traceRec) Div(a, b fp.Bits) fp.Bits    { return r.rec(r.Env.Div(a, b)) }
func (r *traceRec) FMA(a, b, c fp.Bits) fp.Bits { return r.rec(r.Env.FMA(a, b, c)) }
func (r *traceRec) Sqrt(a fp.Bits) fp.Bits      { return r.rec(r.Env.Sqrt(a)) }
func (r *traceRec) Exp(a fp.Bits) fp.Bits       { return r.rec(r.Env.Exp(a)) }

// runStream drives a fixed mixed batch/scalar operation stream through
// env and returns every produced value. It mirrors the shapes kernels
// use: dot chains, element-wise maps, broadcast AXPYs, and interleaved
// scalar operations.
func runStream(env fp.Env, f fp.Format) []fp.Bits {
	mk := func(n, salt int) []fp.Bits {
		out := make([]fp.Bits, n)
		for i := range out {
			out[i] = f.FromFloat64(0.25 + float64((i*7+salt*3)%23)/16)
		}
		return out
	}
	a7, b7 := mk(7, 1), mk(7, 2)
	a5, b5 := mk(5, 3), mk(5, 4)
	a4, b4 := mk(4, 5), mk(4, 6)
	x6, d6 := mk(6, 7), mk(6, 8)
	a3, b3, c3 := mk(3, 9), mk(3, 10), mk(3, 11)

	var out []fp.Bits
	out = append(out, fp.DotFMA(env, env.FromFloat64(0), a7, b7))
	dst5 := make([]fp.Bits, 5)
	fp.AddN(env, dst5, a5, b5)
	out = append(out, dst5...)
	out = append(out, env.Mul(out[0], dst5[0]))
	dst4 := make([]fp.Bits, 4)
	fp.MulN(env, dst4, a4, b4)
	out = append(out, dst4...)
	dst6 := append([]fp.Bits(nil), d6...)
	fp.AXPY(env, dst6, out[1], x6)
	out = append(out, dst6...)
	dst3 := make([]fp.Bits, 3)
	fp.FMAN(env, dst3, a3, b3, c3)
	out = append(out, dst3...)
	out = append(out, env.Add(out[2], dst3[0]))
	out = append(out, fp.DotFMA(env, out[3], a3, b3)) // second chain, shares operands
	// Empty and length-1 batches must be no-ops / single ops.
	out = append(out, fp.DotFMA(env, out[4], nil, nil))
	fp.AddN(env, dst3[:1], a3[:1], b3[:1])
	out = append(out, dst3[0])
	// Shaped batches: a 3-chain block over a shared vector (3x2 FMAs) and
	// a 2x2 grid with per-row accumulators (2x2x2 FMAs).
	blk := make([]fp.Bits, 3)
	fp.DotFMABlock(env, blk, out[5], a4[:2], x6, 2)
	out = append(out, blk...)
	grid := make([]fp.Bits, 4)
	fp.GemmFMA(env, grid, b3[:2], a4, b4, 2, 2, 2)
	out = append(out, grid...)
	return out
}

// streamOps is the dynamic operation count of runStream
// (7+5+1+4+6+3+1+3+0+1 + 6 block + 8 grid).
const streamOps = 45

// sweepFaults enumerates the fault shapes the equivalence tests sweep:
// every index through (and past) the stream, result and operand targets,
// any-kind and per-kind matching, and persistent modulo faults.
func sweepFaults() []OpFault {
	var faults []OpFault
	for idx := uint64(0); idx <= streamOps+2; idx++ {
		faults = append(faults,
			OpFault{AnyKind: true, Index: idx, Bit: int(idx) % 16, Target: TargetResult},
			OpFault{AnyKind: true, Index: idx, Bit: 14, Target: TargetOperand, OperandIdx: int(idx) % 3},
			OpFault{Kind: fp.OpFMA, Index: idx, Bit: 9, Target: TargetResult},
			OpFault{Kind: fp.OpAdd, Index: idx, Bit: 5, Target: TargetOperand, OperandIdx: 1},
			OpFault{Kind: fp.OpMul, Index: idx, Bit: 3, Target: TargetResult},
		)
	}
	for _, mod := range []uint64{3, 5, 11} {
		faults = append(faults,
			OpFault{AnyKind: true, Index: 1, Modulo: mod, Bit: 7, Target: TargetResult},
			OpFault{Kind: fp.OpFMA, Index: 2, Modulo: mod, Bit: 2, Target: TargetOperand, OperandIdx: 2},
		)
	}
	faults = append(faults, OpFault{AnyKind: true, Index: 4, Bit: 1, Target: TargetIntState})
	return faults
}

// TestBatchInjectionMatchesScalar proves the injector's batch fast path
// is observationally identical to scalar decomposition for every fault
// in the sweep: same outputs, same corruption count, same counters.
func TestBatchInjectionMatchesScalar(t *testing.T) {
	for _, f := range []fp.Format{fp.Half, fp.Single, fp.Double} {
		for _, fault := range sweepFaults() {
			fault := fault
			t.Run(fmt.Sprintf("%v/%+v", f, fault), func(t *testing.T) {
				be := NewEnv(fp.NewMachine(f), fault)
				outBatch := runStream(be, f)
				se := NewEnv(fp.NewMachine(f), fault)
				outScalar := runStream(noBatch{se}, f)

				if len(outBatch) != len(outScalar) {
					t.Fatalf("output lengths differ: %d vs %d", len(outBatch), len(outScalar))
				}
				for i := range outBatch {
					if outBatch[i] != outScalar[i] {
						t.Fatalf("output %d: batch %#x != scalar %#x", i, outBatch[i], outScalar[i])
					}
				}
				if be.Applied() != se.Applied() {
					t.Fatalf("applied: batch %d != scalar %d", be.Applied(), se.Applied())
				}
				if be.all != se.all || be.byKind != se.byKind {
					t.Fatalf("counters diverged: batch all=%d byKind=%v, scalar all=%d byKind=%v",
						be.all, be.byKind, se.all, se.byKind)
				}
			})
		}
	}
}

// TestBatchInjectionReplayMatchesScalar repeats the sweep with the
// fault-free result trace installed, exercising the collapsed replay
// path (a whole unstruck batch served as one or n trace lookups).
func TestBatchInjectionReplayMatchesScalar(t *testing.T) {
	for _, f := range []fp.Format{fp.Half, fp.Single, fp.Double} {
		rec := &traceRec{Env: fp.NewMachine(f)}
		runStream(rec, f) // noBatch semantics: *traceRec has no batch methods
		if len(rec.trace) != streamOps {
			t.Fatalf("%v: trace has %d ops, want %d (update streamOps)", f, len(rec.trace), streamOps)
		}
		for _, fault := range sweepFaults() {
			fault := fault
			t.Run(fmt.Sprintf("%v/%+v", f, fault), func(t *testing.T) {
				be := NewEnv(fp.NewMachine(f), fault)
				be.replay = rec.trace
				outBatch := runStream(be, f)
				se := NewEnv(fp.NewMachine(f), fault)
				outScalar := runStream(noBatch{se}, f)

				for i := range outBatch {
					if outBatch[i] != outScalar[i] {
						t.Fatalf("output %d: replayed batch %#x != scalar %#x", i, outBatch[i], outScalar[i])
					}
				}
				if be.Applied() != se.Applied() {
					t.Fatalf("applied: batch %d != scalar %d", be.Applied(), se.Applied())
				}
			})
		}
	}
}
