package inject

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
)

func goldenFor(k kernels.Kernel, f fp.Format) []float64 {
	return kernels.Decode(f, kernels.Golden(k, f))
}

func TestEnvNoFaultWhenIndexOutOfRange(t *testing.T) {
	k := kernels.NewGEMM(6, 1)
	f := fp.Single
	golden := goldenFor(k, f)
	fault := OpFault{AnyKind: true, Index: 1 << 40, Bit: 3, Target: TargetResult}
	res := Run(k, f, golden, &fault, nil, false)
	if res.Outcome != Masked || res.FaultApplied {
		t.Errorf("out-of-range fault: outcome %v, applied %v", res.Outcome, res.FaultApplied)
	}
}

func TestResultFaultCausesSDC(t *testing.T) {
	k := kernels.NewGEMM(6, 1)
	for _, f := range fp.Formats {
		golden := goldenFor(k, f)
		// Flip the top mantissa bit of the final FMA of the last output
		// element: guaranteed visible.
		total := kernels.Profile(k, f).Total()
		fault := OpFault{AnyKind: true, Index: total - 1, Bit: f.MantBits() - 1, Target: TargetResult}
		res := Run(k, f, golden, &fault, nil, false)
		if !res.FaultApplied {
			t.Fatalf("%v: fault did not fire", f)
		}
		if res.Outcome != SDC {
			t.Errorf("%v: visible corruption classified as %v", f, res.Outcome)
		}
		if res.MaxRelErr <= 0 {
			t.Errorf("%v: SDC with zero relative error", f)
		}
	}
}

func TestOperandFaultFires(t *testing.T) {
	k := kernels.NewMicro(kernels.MicroMUL, 1, 10, 2)
	f := fp.Double
	golden := goldenFor(k, f)
	fault := OpFault{AnyKind: true, Index: 0, Bit: 40, Target: TargetOperand, OperandIdx: 0}
	res := Run(k, f, golden, &fault, nil, false)
	if !res.FaultApplied {
		t.Fatal("operand fault did not fire")
	}
	if res.Outcome != SDC {
		t.Errorf("operand corruption of a MUL chain should reach the output, got %v", res.Outcome)
	}
}

func TestSignBitFlipExactlyDoublesOrNegates(t *testing.T) {
	// Flipping the sign bit of the last operation's result must negate
	// the output element exactly.
	k := kernels.NewMicro(kernels.MicroMUL, 1, 4, 3)
	f := fp.Double
	golden := goldenFor(k, f)
	total := kernels.Profile(k, f).Total()
	fault := OpFault{AnyKind: true, Index: total - 1, Bit: f.Width() - 1, Target: TargetResult}
	res := Run(k, f, golden, &fault, nil, true)
	if res.Outcome != SDC {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if res.Output[0] != -golden[0] {
		t.Errorf("sign flip gave %v, want %v", res.Output[0], -golden[0])
	}
	if math.Abs(res.MaxRelErr-2) > 1e-12 {
		t.Errorf("sign flip rel err %v, want 2", res.MaxRelErr)
	}
}

func TestPersistentFaultHitsManyOps(t *testing.T) {
	k := kernels.NewMicro(kernels.MicroMUL, 4, 50, 4)
	f := fp.Single
	m := fp.NewMachine(f)
	fault := OpFault{Kind: fp.OpMul, Index: 0, Modulo: 4, Bit: 2, Target: TargetResult}
	env := NewEnv(m, fault)
	k.Run(env, k.Inputs(f))
	total := kernels.Profile(k, f).ByOp[fp.OpMul]
	if env.Applied() != total/4 {
		t.Errorf("persistent fault applied %d times, want %d", env.Applied(), total/4)
	}
}

func TestMemFaultSDC(t *testing.T) {
	k := kernels.NewGEMM(6, 5)
	f := fp.Single
	golden := goldenFor(k, f)
	// Flip the top mantissa bit of A[0][0]: C row 0 must change.
	mf := MemFault{Array: 0, Elem: 0, Bit: f.MantBits() - 1}
	res := Run(k, f, golden, nil, []MemFault{mf}, false)
	if res.Outcome != SDC {
		t.Errorf("input corruption classified as %v", res.Outcome)
	}
}

func TestMemFaultIndicesWrap(t *testing.T) {
	k := kernels.NewGEMM(4, 5)
	f := fp.Half
	golden := goldenFor(k, f)
	// Out-of-range array/element/bit indices must wrap, not panic.
	mf := MemFault{Array: 99, Elem: 1 << 20, Bit: 999}
	res := Run(k, f, golden, nil, []MemFault{mf}, false)
	_ = res // outcome may be either; just must not panic
}

func TestEnvCountersPerKind(t *testing.T) {
	m := fp.NewMachine(fp.Double)
	// Strike the second MUL only.
	env := NewEnv(m, OpFault{Kind: fp.OpMul, Index: 1, Bit: 0, Target: TargetResult})
	one := m.FromFloat64(1)
	env.Add(one, one) // not a MUL: no hit
	env.Mul(one, one) // MUL #0: no hit
	if env.Applied() != 0 {
		t.Fatal("fault fired early")
	}
	env.Mul(one, one) // MUL #1: hit
	if env.Applied() != 1 {
		t.Fatal("fault did not fire on MUL #1")
	}
	env.Mul(one, one) // MUL #2: no hit (transient)
	if env.Applied() != 1 {
		t.Fatal("transient fault fired more than once")
	}
}

func TestRunPanicsOnGoldenLengthMismatch(t *testing.T) {
	k := kernels.NewGEMM(4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Run(k, fp.Single, []float64{1, 2}, nil, nil, false)
}

func TestSampleOpFaultBounds(t *testing.T) {
	counts := fp.OpCounts{}
	counts.ByOp[fp.OpMul] = 100
	counts.ByOp[fp.OpAdd] = 50
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		f := SampleOpFault(r, counts, fp.Half, fp.OpMul, false, TargetResult)
		if f.Index >= 100 {
			t.Fatalf("kind-scoped index %d out of range", f.Index)
		}
		if f.Bit < 0 || f.Bit >= 16 {
			t.Fatalf("bit %d out of range for half", f.Bit)
		}
		g := SampleOpFault(r, counts, fp.Double, 0, true, TargetOperand)
		if g.Index >= 150 {
			t.Fatalf("any-kind index %d out of range", g.Index)
		}
	}
}

func TestSampleOpFaultPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sampling from zero ops did not panic")
		}
	}()
	SampleOpFault(rng.New(1), fp.OpCounts{}, fp.Half, fp.OpMul, false, TargetResult)
}

func TestSampleMemFaultDistribution(t *testing.T) {
	r := rng.New(2)
	lens := []int{100, 300}
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		mf := SampleMemFault(r, lens, fp.Single)
		if mf.Array < 0 || mf.Array > 1 || mf.Elem >= lens[mf.Array] {
			t.Fatalf("bad sample %+v", mf)
		}
		counts[mf.Array]++
	}
	// Array 1 holds 3x the elements: expect ~3x the strikes.
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.7 {
		t.Errorf("strike ratio %v, want ~3", ratio)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{Kernel: kernels.NewGEMM(8, 3), Format: fp.Single, Faults: 100, Seed: 7}
	a, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.SDCs != b.SDCs || a.PVF != b.PVF {
		t.Errorf("campaign not deterministic: %d vs %d SDCs", a.SDCs, b.SDCs)
	}
}

func TestCampaignCounts(t *testing.T) {
	c := Campaign{Kernel: kernels.NewGEMM(8, 3), Format: fp.Half, Faults: 200, Seed: 9,
		Sites: []Site{SiteOperation}}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SDCs+res.Masked != res.Faults {
		t.Errorf("counts do not add up: %d + %d != %d", res.SDCs, res.Masked, res.Faults)
	}
	if len(res.RelErrs) != res.SDCs {
		t.Errorf("one rel-err per SDC: %d vs %d", len(res.RelErrs), res.SDCs)
	}
	if res.PVF < 0 || res.PVF > 1 {
		t.Errorf("PVF %v out of range", res.PVF)
	}
	// GEMM without masking operations: most result faults propagate.
	if res.PVF < 0.5 {
		t.Errorf("GEMM result-fault PVF %v suspiciously low", res.PVF)
	}
}

func TestCampaignKeepOutputs(t *testing.T) {
	c := Campaign{Kernel: kernels.NewGEMM(6, 3), Format: fp.Single, Faults: 50, Seed: 11,
		KeepOutputs: true}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != res.SDCs {
		t.Errorf("outputs %d != SDCs %d", len(res.Outputs), res.SDCs)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Format: fp.Single, Faults: 10}).Run(); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := (Campaign{Kernel: kernels.NewGEMM(4, 1), Faults: 0}).Run(); err == nil {
		t.Error("zero faults accepted")
	}
}

// Cross-precision criticality property, the paper's central claim about
// fault impact (Sections 4.1, 6.3): at a 1% tolerated relative error,
// double-precision masks a larger share of its SDCs than half.
func TestDoubleFaultsMoreTolerableThanHalf(t *testing.T) {
	tolerableShare := func(f fp.Format) float64 {
		c := Campaign{Kernel: kernels.NewGEMM(12, 17), Format: f, Faults: 600, Seed: 13,
			Sites: []Site{SiteOperand, SiteMemory}}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		tol := 0
		for _, e := range res.RelErrs {
			if e <= 0.01 {
				tol++
			}
		}
		if res.SDCs == 0 {
			t.Fatal("no SDCs observed")
		}
		return float64(tol) / float64(res.SDCs)
	}
	d, h := tolerableShare(fp.Double), tolerableShare(fp.Half)
	if !(d > h) {
		t.Errorf("tolerable share double=%v <= half=%v; expected double to tolerate more", d, h)
	}
}

func TestStrings(t *testing.T) {
	if TargetResult.String() != "result" || TargetOperand.String() != "operand" ||
		Target(9).String() != "target?" {
		t.Error("Target strings wrong")
	}
	if SiteOperation.String() != "operation" || SiteOperand.String() != "operand" ||
		SiteMemory.String() != "memory" || Site(9).String() != "site?" {
		t.Error("Site strings wrong")
	}
	if Masked.String() != "masked" || SDC.String() != "SDC" || Outcome(9).String() != "outcome?" {
		t.Error("Outcome strings wrong")
	}
}

func TestIntStateFault(t *testing.T) {
	// LavaMD calls exp; with a software exp installed, an int-state
	// fault must fire and produce a large (power-of-two-scaled) error.
	k := kernels.NewLavaMD(2, 3, 7)
	f := fp.Double
	wrap := fp.WrapExp(fp.ExpShape{Terms: 13, Squarings: 3, IntSites: 2})
	golden := kernels.Decode(f, kernels.GoldenWith(k, f, wrap))
	counts := kernels.ProfileWith(k, f, wrap)
	if counts.IntSites == 0 {
		t.Fatal("no int sites counted")
	}
	fault := OpFault{Target: TargetIntState, Index: counts.IntSites / 2, Bit: 2}
	res := RunWrapped(k, f, golden, &fault, nil, false, wrap)
	if !res.FaultApplied {
		t.Fatal("int-state fault did not fire")
	}
	if res.Outcome != SDC {
		t.Fatalf("int-state fault masked")
	}
	// A 2^(+-4) scaling of one exp() term shifts its accumulator
	// contribution materially: well above mantissa-LSB noise.
	if res.MaxRelErr < 0.01 {
		t.Errorf("int-state corruption rel err %v suspiciously small", res.MaxRelErr)
	}
}

func TestIntStateFaultCountsAcrossChainedEnvs(t *testing.T) {
	// Two chained injection envs must keep consistent int counters and
	// both see every decision.
	m := fp.NewMachine(fp.Double)
	e1 := NewEnv(m, OpFault{Target: TargetIntState, Index: 1, Bit: 0})
	e2 := NewEnv(e1, OpFault{Target: TargetIntState, Index: 0, Bit: 1})
	d := fp.NewExpDecomp(e2, 6, 1)
	d.IntSites = 2
	d.Exp(d.FromFloat64(-0.4))
	if e1.Applied() != 1 || e2.Applied() != 1 {
		t.Errorf("chained int faults applied %d/%d, want 1/1", e1.Applied(), e2.Applied())
	}
}
