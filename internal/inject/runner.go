package inject

import (
	"fmt"
	"sync"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// Runner executes faulty runs of one (kernel, format, wrap)
// configuration against memoized fault-free artifacts. Campaign-style
// callers get three things over the one-shot Run/RunWrapped helpers:
//
//   - the golden output and operation profile come from the process
//     cache (exec.Artifact), so fault-free kernel executions happen once
//     per configuration instead of twice per campaign;
//   - inputs are copied from the cached pristine encoding instead of
//     re-encoded from float64 on every run;
//   - the injecting environment chain, input buffers, and the decode
//     buffer live in a per-worker scratch pool, so steady-state runs
//     allocate almost nothing.
//
// A Runner is safe for concurrent use.
type Runner struct {
	kernel  kernels.Kernel
	format  fp.Format
	wrap    func(fp.Env) fp.Env
	art     *exec.Artifacts
	scratch sync.Pool // *scratch
	// goldenNaN records whether the golden output contains a NaN. When
	// it does not, bit-identical output implies float-identical output,
	// so a run can be classified Masked by comparing raw bits without
	// decoding (NaN golden elements compare unequal to themselves under
	// float comparison, so they never classify as Masked and the bits
	// shortcut would disagree).
	goldenNaN bool

	// DisableCompiledReplay keeps runs off the compiled trace program,
	// restricting the injecting environments to interpreted execution
	// (replay-trace induction plus inner-machine recompute). Intended
	// for equivalence testing and A/B measurement; set it before the
	// first run and do not change it while runs are in flight.
	DisableCompiledReplay bool
}

// scratch is one worker's reusable run state.
type scratch struct {
	in      [][]fp.Bits
	dirty   bool // in was corrupted by memory faults and needs restoring
	out     []float64
	outBits []fp.Bits // reused output buffer for OutputKernel workloads
	ienv    *Env
	env     fp.Env // wrap(ienv), built once (wraps are stateless across runs)
}

// NewRunner builds a runner for the configuration, computing (or
// fetching from the process cache, when wrapKey identifies wrap) its
// fault-free artifacts.
func NewRunner(k kernels.Kernel, f fp.Format, wrapKey string, wrap func(fp.Env) fp.Env) *Runner {
	r := &Runner{kernel: k, format: f, wrap: wrap, art: exec.Artifact(k, f, wrapKey, wrap)}
	for _, v := range r.art.Golden() {
		if v != v {
			r.goldenNaN = true
			break
		}
	}
	return r
}

// Counts returns the configuration's dynamic operation profile.
func (r *Runner) Counts() fp.OpCounts { return r.art.Counts }

// Golden returns the decoded fault-free output. Shared; do not mutate.
func (r *Runner) Golden() []float64 { return r.art.Golden() }

// GoldenBits returns the raw fault-free output. Shared; do not mutate.
func (r *Runner) GoldenBits() []fp.Bits { return r.art.GoldenBits() }

// ArrayLens returns the input array lengths for memory-fault sampling.
// Shared; do not mutate.
func (r *Runner) ArrayLens() []int { return r.art.ArrayLens() }

func (r *Runner) get() *scratch {
	if sc, ok := r.scratch.Get().(*scratch); ok {
		return sc
	}
	sc := &scratch{ienv: NewEnv(fp.NewMachine(r.format), neverFault)}
	sc.env = fp.Env(sc.ienv)
	if r.wrap != nil {
		sc.env = r.wrap(sc.env)
	}
	return sc
}

// Run executes one faulty run with an optional operation fault plus any
// number of memory faults and classifies the outcome against the golden
// output, exactly like RunWrapped on the same configuration. A panic in
// the kernel propagates: one-shot callers have no campaign to degrade
// gracefully into.
func (r *Runner) Run(opFault *OpFault, memFaults []MemFault, keepOutput bool) RunResult {
	rr, abort := r.RunSpec(FaultSpec{Op: opFault, Mem: memFaults}, keepOutput)
	if abort != nil {
		panic(abort.Value)
	}
	return rr
}

// RunSpec executes one faulty run under the full fault specification —
// operation/memory faults plus the behavioral-DUE machinery (control
// fault, watchdog, FP trap) — and classifies the outcome. Emulated
// crashes and hangs return as CrashDUE/HangDUE results; any other panic
// escaping the kernel (a simulator bug in this sample) is recovered by
// exec.Guard and returned as a non-nil *exec.Abort so campaigns can
// record the sample as aborted and continue.
func (r *Runner) RunSpec(spec FaultSpec, keepOutput bool) (RunResult, *exec.Abort) {
	sc := r.get()
	defer r.scratch.Put(sc)

	f := r.format
	// The Kernel contract forbids Run from mutating its inputs, so the
	// scratch encoding only needs restoring after a memory-fault run.
	if sc.in == nil || sc.dirty {
		sc.in = r.art.CopyInputs(sc.in)
	}
	sc.dirty = len(spec.Mem) > 0
	for _, mf := range spec.Mem {
		if len(sc.in) == 0 {
			break
		}
		arr := sc.in[mf.Array%len(sc.in)]
		if len(arr) == 0 {
			continue
		}
		i := mf.Elem % len(arr)
		arr[i] = FlipBits(f, arr[i], mf.Bit, mf.Width)
	}

	sc.ienv.resetSpec(spec, r.art.Counts.Total(), sc.in)
	if len(spec.Mem) == 0 {
		// Inputs are pristine, so the fault-free result trace is valid
		// until the operation fault strikes.
		sc.ienv.replay = r.art.Results()
	} else {
		sc.ienv.replay = nil
	}
	// The compiled program's compare-serving is exact even under
	// corrupted inputs, so it is installed unconditionally. Both the
	// trace and the program are shared across all workers' environments
	// (immutable slices, per-run state in the env's cursor) — samples
	// never copy them.
	sc.ienv.prog = nil
	if !r.DisableCompiledReplay {
		sc.ienv.prog = r.art.Prog()
	}
	var outBits []fp.Bits
	abort := exec.Guard(func() {
		if ok, isOut := r.kernel.(kernels.OutputKernel); isOut {
			sc.outBits = ok.RunInto(sc.env, sc.in, sc.outBits)
			outBits = sc.outBits
		} else {
			outBits = r.kernel.Run(sc.env, sc.in)
		}
	})
	if abort != nil {
		// The run died mid-kernel; nothing certain is known about the
		// scratch buffers, so restore the inputs before the next run.
		sc.dirty = true
		if sig, ok := abort.Value.(dueSignal); ok {
			// An emulated crash/hang is a classified outcome, not a
			// simulator failure.
			flushRunStats(sc.ienv, sig.outcome, sig.cause, false)
			return RunResult{Outcome: sig.outcome, Cause: sig.cause, FaultApplied: true}, nil
		}
		flushRunStats(sc.ienv, 0, CauseNone, true)
		return RunResult{}, abort
	}
	golden := r.art.Golden()
	if len(outBits) != len(golden) {
		panic(fmt.Sprintf("inject: output length %d vs golden %d", len(outBits), len(golden)))
	}
	res := RunResult{FaultApplied: len(spec.Mem) > 0 || sc.ienv.Applied() > 0}
	var worst float64
	same := true
	if !r.goldenNaN && !keepOutput {
		// Bit-identical elements are float-identical (no NaN golden),
		// so only the differing bits decode — for masked runs, nothing
		// does. Bits that differ may still decode equal (+0 vs -0),
		// hence the float re-check before counting an element as
		// corrupted.
		gbits := r.art.GoldenBits()
		for i, ob := range outBits {
			if ob == gbits[i] {
				continue
			}
			if v := sc.ienv.ToFloat64(ob); v != golden[i] {
				same = false
				if e := fp.RelErr(golden[i], v); e > worst {
					worst = e
				}
			}
		}
	} else {
		if cap(sc.out) < len(outBits) {
			sc.out = make([]float64, len(outBits))
		}
		out := sc.out[:len(outBits)]
		fp.ToFloat64N(f, out, outBits)
		for i := range out {
			if out[i] != golden[i] {
				same = false
				if e := fp.RelErr(golden[i], out[i]); e > worst {
					worst = e
				}
			}
		}
		if keepOutput {
			res.Output = append([]float64(nil), out...)
		}
	}
	if same {
		res.Outcome = Masked
	} else {
		res.Outcome = SDC
		res.MaxRelErr = worst
	}
	flushRunStats(sc.ienv, res.Outcome, CauseNone, false)
	return res, nil
}
