package inject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
	"mixedrel/internal/stats"
	"mixedrel/internal/telemetry"
)

// Site selects where a campaign's faults land.
type Site int

const (
	// SiteOperation corrupts the result of a random dynamic operation.
	SiteOperation Site = iota
	// SiteOperand corrupts one input of a random dynamic operation.
	SiteOperand
	// SiteMemory corrupts a random input-array element before the run.
	SiteMemory
	// SiteControl corrupts control state (loop counter, array index,
	// data pointer) consumed at a random dynamic operation — the
	// behavioral source of crash/hang DUEs.
	SiteControl
)

func (s Site) String() string {
	switch s {
	case SiteOperation:
		return "operation"
	case SiteOperand:
		return "operand"
	case SiteMemory:
		return "memory"
	case SiteControl:
		return "control"
	}
	return "site?"
}

// SampleOpFault draws a uniformly random single-bit operation fault over
// the dynamic operations recorded in counts. With anyKind, the index
// ranges over all operations; otherwise over operations of kind only
// (which must have executed at least once).
func SampleOpFault(r *rng.Rand, counts fp.OpCounts, f fp.Format, kind fp.Op, anyKind bool, target Target) OpFault {
	var n uint64
	if anyKind {
		n = counts.Total()
	} else {
		n = counts.ByOp[kind]
	}
	if n == 0 {
		panic(fmt.Sprintf("inject: no dynamic operations to strike (kind %v, any %v)", kind, anyKind))
	}
	return OpFault{
		Kind:       kind,
		AnyKind:    anyKind,
		Index:      r.Uint64n(n),
		Bit:        r.Intn(f.Width()),
		Target:     target,
		OperandIdx: r.Intn(3),
	}
}

// SampleMemFault draws a uniformly random single-bit memory fault over
// the elements of the given input arrays (weighted by array length).
func SampleMemFault(r *rng.Rand, arrayLens []int, f fp.Format) MemFault {
	total := 0
	for _, n := range arrayLens {
		total += n
	}
	if total == 0 {
		panic("inject: no memory elements to strike")
	}
	pick := r.Intn(total)
	for a, n := range arrayLens {
		if pick < n {
			return MemFault{Array: a, Elem: pick, Bit: r.Intn(f.Width())}
		}
		pick -= n
	}
	panic("unreachable")
}

// Campaign is a CAROL-FI-style statistical fault-injection campaign:
// Faults independent single-bit flips, one per execution, sites sampled
// uniformly from Sites.
type Campaign struct {
	Kernel kernels.Kernel
	Format fp.Format
	// Faults is the number of injected executions (the paper uses
	// >= 2000 per configuration).
	Faults int
	Seed   uint64
	// Sites lists the eligible fault sites; one is chosen uniformly per
	// injection. Empty defaults to {SiteOperand, SiteMemory}, CAROL-FI's
	// variable/register model.
	Sites []Site
	// KeepOutputs retains each SDC's decoded output (needed for CNN
	// criticality classification).
	KeepOutputs bool
	// Wrap, when non-nil, installs a platform environment transform
	// (e.g. a software exp) between the kernel and the injector, for
	// both the golden and the faulty runs.
	Wrap func(fp.Env) fp.Env
	// WrapKey identifies Wrap's arithmetic behavior (e.g.
	// fp.ExpShape.Key) so the campaign's fault-free artifacts can be
	// memoized across campaigns. Leave empty for a nil Wrap; a non-nil
	// Wrap with an empty WrapKey is simply not cached.
	WrapKey string
	// Workers, when above 1, runs injections on that many goroutines
	// with per-fault random streams: deterministic in Seed and
	// independent of scheduling, but a different (equally valid) sample
	// than the default sequential mode.
	Workers int
	// Watchdog is the op-budget factor k for hang detection: a faulty
	// run executing more than k x its golden operation count is killed
	// and classified HangDUE. Zero enables DefaultWatchdogFactor when
	// SiteControl is among the sites (control faults are what cause
	// runaways) and disables the watchdog otherwise.
	Watchdog float64
	// TrapNonFinite arms the FP trap: the first non-finite result after
	// a corruption is classified CrashDUE instead of propagating into
	// the output.
	TrapNonFinite bool
	// Checkpoint, when non-nil, makes the campaign crash-tolerant and
	// resumable: classified samples are journaled to Checkpoint.Path
	// and a re-run with the same configuration fills in only the
	// missing ones, yielding a byte-identical result. Checkpointed
	// campaigns always use per-sample random streams (the Workers > 1
	// derivation) regardless of Workers, so a sample's value never
	// depends on which samples a previous invocation completed.
	Checkpoint *exec.Checkpoint
	// DisableCompiledReplay runs every sample through interpreted
	// execution instead of the compiled trace program. The two paths
	// are bit-identical by construction (and verified by the
	// equivalence tests); this switch exists for A/B verification and
	// for bisecting a suspected replay bug, not for normal use.
	DisableCompiledReplay bool
	// Sampling, when non-nil, runs the campaign through the
	// variance-reduction sampling engine (stratified.go): the fault
	// budget is allocated over (op-class x bit band x kernel phase)
	// strata instead of drawn uniformly, and the Result additionally
	// carries post-stratified estimates with confidence intervals,
	// per-stratum tallies, and — with a CIHalfWidth target — sequential
	// early stopping.
	Sampling *Sampling
	// Context, when non-nil, makes the campaign cancellable: once the
	// context is done, no new sample starts, in-flight samples drain to
	// completion, the checkpoint journal (if any) is flushed and
	// synced, and Run returns an *exec.Interrupted error
	// (errors.Is(err, exec.ErrInterrupted)) carrying how many samples
	// are safely journaled. Re-running the same checkpointed campaign
	// resumes byte-identically, exactly as after a crash.
	Context context.Context
}

// Result summarizes a campaign.
type Result struct {
	Faults, SDCs, Masked int
	// CrashDUEs and HangDUEs count behaviorally detected-unrecoverable
	// outcomes (emulated segfaults/FP traps, and watchdog kills).
	CrashDUEs, HangDUEs int
	// PVF is the program vulnerability factor: P(SDC | classified
	// fault). PDUE is the companion split P(crash or hang | classified
	// fault); aborted samples are excluded from both denominators.
	PVF  float64
	PDUE float64
	// RelErrs holds one max-relative-error per SDC, the input to the
	// TRE criticality curves.
	RelErrs []float64
	// Outputs holds the decoded faulty output of each SDC when
	// KeepOutputs was set (parallel to RelErrs).
	Outputs [][]float64
	// Aborted diagnoses samples whose execution panicked inside the
	// simulator: the campaign degrades gracefully instead of dying, and
	// each entry carries what is needed to replay the sample alone.
	Aborted []AbortedSample
	// Strata holds the per-stratum tallies of a stratified campaign
	// (Campaign.Sampling non-nil); empty for uniform campaigns.
	Strata []StratumResult `json:",omitempty"`
	// StratifiedPVF/StratifiedPDUE are the post-stratified estimates
	// of P(SDC) and P(DUE) — unbiased for the same quantities as
	// PVF/PDUE, but with the between-strata variance removed — and the
	// CI fields their confidence intervals at Sampling.Confidence.
	StratifiedPVF  float64 `json:",omitempty"`
	StratifiedPDUE float64 `json:",omitempty"`
	PVFCILow       float64 `json:",omitempty"`
	PVFCIHigh      float64 `json:",omitempty"`
	PDUECILow      float64 `json:",omitempty"`
	PDUECIHigh     float64 `json:",omitempty"`
	// EarlyStopped reports that sequential early stopping halted the
	// campaign before the full fault budget was spent (Faults then
	// counts the samples actually taken).
	EarlyStopped bool `json:",omitempty"`
	// CheckpointDegraded reports that the checkpoint journal hit a
	// persistent I/O failure mid-campaign and checkpointing was
	// disabled (see exec.Journal): the classification above is complete
	// and correct, but a crash before the next successful full run
	// resumes only from the last durable record. CheckpointError is the
	// rendered failure. These are infrastructure status, not campaign
	// statistics — byte-identity contracts compare results with them
	// cleared.
	CheckpointDegraded bool   `json:",omitempty"`
	CheckpointError    string `json:",omitempty"`
}

// DUEs returns the total detected-unrecoverable count.
func (r *Result) DUEs() int { return r.CrashDUEs + r.HangDUEs }

// Classified returns how many samples produced a masked/SDC/DUE
// classification (Faults minus aborted samples).
func (r *Result) Classified() int { return r.Faults - len(r.Aborted) }

// AbortedSample is the replay diagnostic of one sample whose execution
// panicked (a simulator failure, distinct from an emulated DUE).
type AbortedSample struct {
	// Index is the sample's position in the campaign.
	Index int
	// Seed is the sample's private random-stream seed in per-sample
	// modes (Workers > 1 or checkpointed): rng.New(Seed) reproduces its
	// fault draw exactly. Zero in sequential mode, where replay means
	// re-running the campaign with the campaign seed.
	Seed uint64
	// Fault describes the sampled fault specification.
	Fault string
	// Panic is the rendered panic value — deliberately without the
	// stack, which contains nondeterministic addresses and must stay
	// out of tables and checkpoint journals.
	Panic string
}

// Run executes the campaign. It is deterministic in Seed.
func (c Campaign) Run() (*Result, error) {
	if c.Kernel == nil {
		return nil, fmt.Errorf("inject: campaign has no kernel")
	}
	if c.Faults <= 0 {
		return nil, fmt.Errorf("inject: campaign with %d faults", c.Faults)
	}
	sites := c.Sites
	if len(sites) == 0 {
		sites = []Site{SiteOperand, SiteMemory}
	}

	runner := NewRunner(c.Kernel, c.Format, c.WrapKey, c.Wrap)
	runner.DisableCompiledReplay = c.DisableCompiledReplay
	counts := runner.Counts()
	if counts.Total() == 0 {
		return nil, fmt.Errorf("inject: kernel %s executes no operations", c.Kernel.Name())
	}
	arrayLens := runner.ArrayLens()

	watchdog := c.Watchdog
	if watchdog <= 0 {
		for _, s := range sites {
			if s == SiteControl {
				watchdog = DefaultWatchdogFactor
				break
			}
		}
	}

	// Telemetry is strictly observe-only here: events and progress
	// describe the campaign, and nothing emitted (or any wall-clock the
	// sink reads) flows back into sampling, classification, or the
	// Result — enforced by the telemetry analyzer.
	if telemetry.SinkActive() {
		mode := "uniform"
		switch {
		case c.Sampling != nil:
			mode = "stratified"
		case c.Checkpoint != nil:
			mode = "checkpointed"
		}
		telemetry.Emit("campaign_start",
			telemetry.KV{K: "kernel", V: c.Kernel.Name()},
			telemetry.KV{K: "format", V: c.Format.String()},
			telemetry.KV{K: "mode", V: mode},
			telemetry.KV{K: "faults", V: c.Faults},
			telemetry.KV{K: "workers", V: c.Workers},
			telemetry.KV{K: "seed", V: c.Seed},
		)
	}

	if c.Sampling != nil {
		res, err := c.runStratified(runner, sites, watchdog)
		if err == nil {
			emitCampaignEnd(res)
		}
		return res, err
	}

	var done atomic.Int64
	showProg := telemetry.ProgressActive()
	runOne := func(r *rng.Rand) (sample, error) {
		var spec FaultSpec
		switch site := sites[r.Intn(len(sites))]; site {
		case SiteOperation:
			f := SampleOpFault(r, counts, c.Format, 0, true, TargetResult)
			spec.Op = &f
		case SiteOperand:
			f := SampleOpFault(r, counts, c.Format, 0, true, TargetOperand)
			spec.Op = &f
		case SiteMemory:
			mf := SampleMemFault(r, arrayLens, c.Format)
			spec.Mem = []MemFault{mf}
		case SiteControl:
			cf := SampleControlFault(r, counts)
			spec.Control = &cf
		default:
			return sample{}, fmt.Errorf("inject: unknown site %v", site)
		}
		spec.Watchdog = watchdog
		spec.TrapNonFinite = c.TrapNonFinite
		rr, abort := runner.RunSpec(spec, c.KeepOutputs)
		if showProg {
			telemetry.Progressf("%s: %d/%d samples", c.Kernel.Name(), done.Add(1), c.Faults)
		}
		if abort != nil {
			return sample{aborted: true, fault: spec.Desc(), panicMsg: abort.String()}, nil
		}
		return sample{rr: rr}, nil
	}

	res := &Result{Faults: c.Faults}
	outcomes := make([]sample, c.Faults)
	perSample := c.Workers > 1
	if c.Checkpoint != nil {
		perSample = true
		if err := c.runCheckpointed(runOne, outcomes, res); err != nil {
			return nil, err
		}
	} else {
		err := exec.SampleCtx(c.Context, c.Workers, c.Faults, c.Seed, func(i int, r *rng.Rand) error {
			s, err := runOne(r)
			if err != nil {
				return err
			}
			outcomes[i] = s
			return nil
		})
		if isCtxErr(err) {
			return nil, &exec.Interrupted{Journaled: -1, Cause: err}
		}
		if err != nil {
			return nil, err
		}
	}

	for i, s := range outcomes {
		switch {
		case s.aborted:
			var seed uint64
			if perSample {
				seed = exec.SampleSeed(c.Seed, i)
			}
			res.Aborted = append(res.Aborted, AbortedSample{
				Index: i, Seed: seed, Fault: s.fault, Panic: s.panicMsg})
		case s.rr.Outcome == SDC:
			res.SDCs++
			res.RelErrs = append(res.RelErrs, s.rr.MaxRelErr)
			if c.KeepOutputs {
				res.Outputs = append(res.Outputs, s.rr.Output)
			}
		case s.rr.Outcome == CrashDUE:
			res.CrashDUEs++
		case s.rr.Outcome == HangDUE:
			res.HangDUEs++
		default:
			res.Masked++
		}
	}
	if n := res.Classified(); n > 0 {
		res.PVF = float64(res.SDCs) / float64(n)
		res.PDUE = float64(res.DUEs()) / float64(n)
	}
	if showProg {
		telemetry.ProgressDone()
	}
	emitCampaignEnd(res)
	return res, nil
}

// emitCampaignEnd writes the campaign's aggregate classification into
// the event stream. The values are copied out of the finished Result —
// telemetry reads the campaign, never the reverse.
func emitCampaignEnd(res *Result) {
	if !telemetry.SinkActive() {
		return
	}
	telemetry.Emit("campaign_end",
		telemetry.KV{K: "faults", V: res.Faults},
		telemetry.KV{K: "masked", V: res.Masked},
		telemetry.KV{K: "sdcs", V: res.SDCs},
		telemetry.KV{K: "crash_dues", V: res.CrashDUEs},
		telemetry.KV{K: "hang_dues", V: res.HangDUEs},
		telemetry.KV{K: "aborted", V: len(res.Aborted)},
		telemetry.KV{K: "pvf", V: res.PVF},
		telemetry.KV{K: "pdue", V: res.PDUE},
		telemetry.KV{K: "early_stopped", V: res.EarlyStopped},
	)
}

// isCtxErr reports whether err is a context cancellation or deadline —
// the signals the campaign converts into graceful interruption.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runCheckpointed executes the campaign's missing samples against the
// checkpoint journal, always with per-sample random streams so resumed
// samples are identical to first-run ones. It returns exec.ErrPartial
// when the journal is still incomplete (Checkpoint.Limit reached), an
// *exec.Interrupted after a context cancellation (journal flushed, no
// half-written state), and surfaces journal degradation — persistent
// I/O failure downgraded to in-memory completion — on res.
func (c Campaign) runCheckpointed(runOne func(*rng.Rand) (sample, error), outcomes []sample, res *Result) error {
	j, err := c.Checkpoint.Open()
	if err != nil {
		return err
	}
	defer j.Close()

	var ran atomic.Int64
	limit := int64(c.Checkpoint.Limit)
	err = exec.SampleResumeCtx(c.Context, c.Workers, c.Faults, c.Seed, func(i int) bool {
		if _, ok := j.Done(i); ok {
			return true
		}
		return limit > 0 && ran.Load() >= limit
	}, func(i int, r *rng.Rand) error {
		if limit > 0 && ran.Add(1) > limit {
			return nil
		}
		s, err := runOne(r)
		if err != nil {
			return err
		}
		return j.Record(i, s.record())
	})
	if isCtxErr(err) {
		// Graceful interruption: the drain finished every in-flight
		// sample, so closing here leaves a whole, synced journal — the
		// resume hint in the error is honest.
		if cerr := j.Close(); cerr != nil {
			return cerr
		}
		journaled := j.Len()
		if deg, _ := j.Degraded(); deg {
			journaled = 0 // nothing past the last durable flush is promised
		}
		return &exec.Interrupted{Journaled: journaled, Cause: err}
	}
	if err != nil {
		return err
	}
	if err := j.Close(); err != nil {
		return err
	}
	if deg, derr := j.Degraded(); deg {
		res.CheckpointDegraded = true
		res.CheckpointError = fmt.Sprint(derr)
	}
	for i := range outcomes {
		raw, ok := j.Done(i)
		if !ok {
			return exec.ErrPartial
		}
		var rec sampleRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("inject: corrupt checkpoint record %d: %w", i, err)
		}
		outcomes[i] = rec.sample()
	}
	return nil
}

// sample is the classified outcome of one campaign sample, including
// the aborted (panicked) case.
type sample struct {
	rr       RunResult
	aborted  bool
	fault    string
	panicMsg string
}

// sampleRecord is sample's checkpoint encoding. Floats travel as their
// IEEE bit patterns (JSON cannot represent NaN/Inf, and clamping would
// break the byte-identical resume contract).
type sampleRecord struct {
	Outcome    Outcome  `json:"o"`
	Cause      DUECause `json:"c,omitempty"`
	RelErrBits uint64   `json:"r,omitempty"`
	Applied    bool     `json:"fa,omitempty"`
	OutputBits []uint64 `json:"out,omitempty"`
	Aborted    bool     `json:"ab,omitempty"`
	Fault      string   `json:"f,omitempty"`
	Panic      string   `json:"p,omitempty"`
}

func (s sample) record() sampleRecord {
	rec := sampleRecord{
		Outcome:    s.rr.Outcome,
		Cause:      s.rr.Cause,
		RelErrBits: math.Float64bits(s.rr.MaxRelErr),
		Applied:    s.rr.FaultApplied,
		Aborted:    s.aborted,
		Fault:      s.fault,
		Panic:      s.panicMsg,
	}
	if s.rr.Output != nil {
		rec.OutputBits = make([]uint64, len(s.rr.Output))
		for i, v := range s.rr.Output {
			rec.OutputBits[i] = math.Float64bits(v)
		}
	}
	return rec
}

func (rec sampleRecord) sample() sample {
	s := sample{
		rr: RunResult{
			Outcome:      rec.Outcome,
			Cause:        rec.Cause,
			MaxRelErr:    math.Float64frombits(rec.RelErrBits),
			FaultApplied: rec.Applied,
		},
		aborted:  rec.Aborted,
		fault:    rec.Fault,
		panicMsg: rec.Panic,
	}
	if rec.OutputBits != nil {
		s.rr.Output = make([]float64, len(rec.OutputBits))
		for i, b := range rec.OutputBits {
			s.rr.Output[i] = math.Float64frombits(b)
		}
	}
	return s
}

// MarshalJSON encodes the result with non-finite relative errors (and
// output values) clamped to +-MaxFloat64, since JSON has no Inf/NaN.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result
	safe := alias(*r)
	safe.RelErrs = stats.ClampNonFinite(r.RelErrs)
	if r.Outputs != nil {
		safe.Outputs = make([][]float64, len(r.Outputs))
		for i, o := range r.Outputs {
			safe.Outputs[i] = stats.ClampNonFinite(o)
		}
	}
	return json.Marshal(safe)
}
