package inject

import (
	"encoding/json"
	"fmt"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
	"mixedrel/internal/stats"
)

// Site selects where a campaign's faults land.
type Site int

const (
	// SiteOperation corrupts the result of a random dynamic operation.
	SiteOperation Site = iota
	// SiteOperand corrupts one input of a random dynamic operation.
	SiteOperand
	// SiteMemory corrupts a random input-array element before the run.
	SiteMemory
)

func (s Site) String() string {
	switch s {
	case SiteOperation:
		return "operation"
	case SiteOperand:
		return "operand"
	case SiteMemory:
		return "memory"
	}
	return "site?"
}

// SampleOpFault draws a uniformly random single-bit operation fault over
// the dynamic operations recorded in counts. With anyKind, the index
// ranges over all operations; otherwise over operations of kind only
// (which must have executed at least once).
func SampleOpFault(r *rng.Rand, counts fp.OpCounts, f fp.Format, kind fp.Op, anyKind bool, target Target) OpFault {
	var n uint64
	if anyKind {
		n = counts.Total()
	} else {
		n = counts.ByOp[kind]
	}
	if n == 0 {
		panic(fmt.Sprintf("inject: no dynamic operations to strike (kind %v, any %v)", kind, anyKind))
	}
	return OpFault{
		Kind:       kind,
		AnyKind:    anyKind,
		Index:      r.Uint64n(n),
		Bit:        r.Intn(f.Width()),
		Target:     target,
		OperandIdx: r.Intn(3),
	}
}

// SampleMemFault draws a uniformly random single-bit memory fault over
// the elements of the given input arrays (weighted by array length).
func SampleMemFault(r *rng.Rand, arrayLens []int, f fp.Format) MemFault {
	total := 0
	for _, n := range arrayLens {
		total += n
	}
	if total == 0 {
		panic("inject: no memory elements to strike")
	}
	pick := r.Intn(total)
	for a, n := range arrayLens {
		if pick < n {
			return MemFault{Array: a, Elem: pick, Bit: r.Intn(f.Width())}
		}
		pick -= n
	}
	panic("unreachable")
}

// Campaign is a CAROL-FI-style statistical fault-injection campaign:
// Faults independent single-bit flips, one per execution, sites sampled
// uniformly from Sites.
type Campaign struct {
	Kernel kernels.Kernel
	Format fp.Format
	// Faults is the number of injected executions (the paper uses
	// >= 2000 per configuration).
	Faults int
	Seed   uint64
	// Sites lists the eligible fault sites; one is chosen uniformly per
	// injection. Empty defaults to {SiteOperand, SiteMemory}, CAROL-FI's
	// variable/register model.
	Sites []Site
	// KeepOutputs retains each SDC's decoded output (needed for CNN
	// criticality classification).
	KeepOutputs bool
	// Wrap, when non-nil, installs a platform environment transform
	// (e.g. a software exp) between the kernel and the injector, for
	// both the golden and the faulty runs.
	Wrap func(fp.Env) fp.Env
	// WrapKey identifies Wrap's arithmetic behavior (e.g.
	// fp.ExpShape.Key) so the campaign's fault-free artifacts can be
	// memoized across campaigns. Leave empty for a nil Wrap; a non-nil
	// Wrap with an empty WrapKey is simply not cached.
	WrapKey string
	// Workers, when above 1, runs injections on that many goroutines
	// with per-fault random streams: deterministic in Seed and
	// independent of scheduling, but a different (equally valid) sample
	// than the default sequential mode.
	Workers int
}

// Result summarizes a campaign.
type Result struct {
	Faults, SDCs, Masked int
	// PVF is the program vulnerability factor: P(SDC | fault).
	PVF float64
	// RelErrs holds one max-relative-error per SDC, the input to the
	// TRE criticality curves.
	RelErrs []float64
	// Outputs holds the decoded faulty output of each SDC when
	// KeepOutputs was set (parallel to RelErrs).
	Outputs [][]float64
}

// Run executes the campaign. It is deterministic in Seed.
func (c Campaign) Run() (*Result, error) {
	if c.Kernel == nil {
		return nil, fmt.Errorf("inject: campaign has no kernel")
	}
	if c.Faults <= 0 {
		return nil, fmt.Errorf("inject: campaign with %d faults", c.Faults)
	}
	sites := c.Sites
	if len(sites) == 0 {
		sites = []Site{SiteOperand, SiteMemory}
	}

	runner := NewRunner(c.Kernel, c.Format, c.WrapKey, c.Wrap)
	counts := runner.Counts()
	if counts.Total() == 0 {
		return nil, fmt.Errorf("inject: kernel %s executes no operations", c.Kernel.Name())
	}
	arrayLens := runner.ArrayLens()

	runOne := func(r *rng.Rand) (RunResult, error) {
		switch site := sites[r.Intn(len(sites))]; site {
		case SiteOperation:
			f := SampleOpFault(r, counts, c.Format, 0, true, TargetResult)
			return runner.Run(&f, nil, c.KeepOutputs), nil
		case SiteOperand:
			f := SampleOpFault(r, counts, c.Format, 0, true, TargetOperand)
			return runner.Run(&f, nil, c.KeepOutputs), nil
		case SiteMemory:
			mf := SampleMemFault(r, arrayLens, c.Format)
			return runner.Run(nil, []MemFault{mf}, c.KeepOutputs), nil
		default:
			return RunResult{}, fmt.Errorf("inject: unknown site %v", site)
		}
	}

	res := &Result{Faults: c.Faults}
	outcomes := make([]RunResult, c.Faults)
	err := exec.Sample(c.Workers, c.Faults, c.Seed, func(i int, r *rng.Rand) error {
		rr, err := runOne(r)
		if err != nil {
			return err
		}
		outcomes[i] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, rr := range outcomes {
		if rr.Outcome == SDC {
			res.SDCs++
			res.RelErrs = append(res.RelErrs, rr.MaxRelErr)
			if c.KeepOutputs {
				res.Outputs = append(res.Outputs, rr.Output)
			}
		} else {
			res.Masked++
		}
	}
	res.PVF = float64(res.SDCs) / float64(res.Faults)
	return res, nil
}

// MarshalJSON encodes the result with non-finite relative errors (and
// output values) clamped to +-MaxFloat64, since JSON has no Inf/NaN.
func (r *Result) MarshalJSON() ([]byte, error) {
	type alias Result
	safe := alias(*r)
	safe.RelErrs = stats.ClampNonFinite(r.RelErrs)
	if r.Outputs != nil {
		safe.Outputs = make([][]float64, len(r.Outputs))
		for i, o := range r.Outputs {
			safe.Outputs[i] = stats.ClampNonFinite(o)
		}
	}
	return json.Marshal(safe)
}
