package inject

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
)

func testSpace(t *testing.T, sites []Site, phases int) *Space {
	t.Helper()
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	sp, err := BuildSpace(sites, r.Counts(), r.ArrayLens(), fp.Single, phases, DefaultBitBands(fp.Single))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestBuildSpaceWeightsSumToOne(t *testing.T) {
	for _, sites := range [][]Site{
		{SiteOperand},
		{SiteOperation, SiteMemory},
		{SiteOperand, SiteMemory, SiteControl},
	} {
		for _, phases := range []int{1, 3, 5} {
			sp := testSpace(t, sites, phases)
			var sum float64
			for _, s := range sp.Strata {
				if s.Weight <= 0 {
					t.Errorf("sites %v: stratum %s has weight %v", sites, s.Desc(), s.Weight)
				}
				sum += s.Weight
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("sites %v phases %d: weights sum to %v", sites, phases, sum)
			}
		}
	}
}

func TestDefaultBitBandsTile(t *testing.T) {
	for _, f := range []fp.Format{fp.Half, fp.Single, fp.Double, fp.BFloat16} {
		bands := DefaultBitBands(f)
		if err := validateBands(bands, f.Width()); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestValidateBandsRejects(t *testing.T) {
	w := fp.Single.Width()
	cases := [][]BitBand{
		{},                              // empty
		{{Name: "a", Lo: 0, Hi: w - 1}}, // gap at the top
		{{Name: "a", Lo: 1, Hi: w}},     // gap at the bottom
		{{Name: "a", Lo: 0, Hi: 20}, {Name: "b", Lo: 19, Hi: w}}, // overlap
		{{Name: "a", Lo: 0, Hi: w}, {Name: "b", Lo: 5, Hi: 5}},   // empty band
	}
	for i, bands := range cases {
		if err := validateBands(bands, w); err == nil {
			t.Errorf("case %d: bad band set accepted", i)
		}
	}
	if err := validateBands(DefaultBitBands(fp.Single), w); err != nil {
		t.Errorf("default bands rejected: %v", err)
	}
}

// TestSampleStaysInStratum draws repeatedly from every stratum and
// checks each fault lands inside the stratum's cell — index segment and
// bit band both.
func TestSampleStaysInStratum(t *testing.T) {
	sp := testSpace(t, []Site{SiteOperand, SiteMemory, SiteControl}, 3)
	r := rng.New(1)
	for h, s := range sp.Strata {
		for trial := 0; trial < 50; trial++ {
			spec := sp.Sample(h, r)
			switch s.Site {
			case SiteOperand:
				if spec.Op == nil {
					t.Fatalf("%s: no op fault", s.Desc())
				}
				if spec.Op.Kind != s.Kind || spec.Op.AnyKind {
					t.Fatalf("%s: sampled kind %v", s.Desc(), spec.Op.Kind)
				}
				if spec.Op.Index < s.Lo || spec.Op.Index >= s.Hi {
					t.Fatalf("%s: index %d outside [%d,%d)", s.Desc(), spec.Op.Index, s.Lo, s.Hi)
				}
				if spec.Op.Bit < s.Band.Lo || spec.Op.Bit >= s.Band.Hi {
					t.Fatalf("%s: bit %d outside band", s.Desc(), spec.Op.Bit)
				}
			case SiteMemory:
				if len(spec.Mem) != 1 {
					t.Fatalf("%s: %d memory faults", s.Desc(), len(spec.Mem))
				}
				if spec.Mem[0].Bit < s.Band.Lo || spec.Mem[0].Bit >= s.Band.Hi {
					t.Fatalf("%s: bit %d outside band", s.Desc(), spec.Mem[0].Bit)
				}
			case SiteControl:
				if spec.Control == nil {
					t.Fatalf("%s: no control fault", s.Desc())
				}
				if spec.Control.Class != s.Class {
					t.Fatalf("%s: class %v", s.Desc(), spec.Control.Class)
				}
				if spec.Control.Site < s.Lo || spec.Control.Site >= s.Hi {
					t.Fatalf("%s: site %d outside [%d,%d)", s.Desc(), spec.Control.Site, s.Lo, s.Hi)
				}
				if spec.Control.Bit < s.Band.Lo || spec.Control.Bit >= s.Band.Hi {
					t.Fatalf("%s: control bit %d outside band [%d,%d)",
						s.Desc(), spec.Control.Bit, s.Band.Lo, s.Band.Hi)
				}
			}
		}
	}
}

// TestMemoryStrataCoverElements checks the flat-index decomposition:
// memory samples across all strata must reach every (array, elem) cell
// boundary correctly (never out of range).
func TestMemoryStrataCoverElements(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	lens := r.ArrayLens()
	sp, err := BuildSpace([]Site{SiteMemory}, r.Counts(), lens, fp.Single, 4, DefaultBitBands(fp.Single))
	if err != nil {
		t.Fatal(err)
	}
	rr := rng.New(2)
	for h := range sp.Strata {
		for trial := 0; trial < 200; trial++ {
			spec := sp.Sample(h, rr)
			mf := spec.Mem[0]
			if mf.Array < 0 || mf.Array >= len(lens) {
				t.Fatalf("array %d out of range", mf.Array)
			}
			if mf.Elem < 0 || mf.Elem >= lens[mf.Array] {
				t.Fatalf("elem %d out of range for array %d (len %d)", mf.Elem, mf.Array, lens[mf.Array])
			}
		}
	}
}

func TestPhaseSegments(t *testing.T) {
	segs := phaseSegments(10, 3)
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	var covered uint64
	prev := uint64(0)
	for _, s := range segs {
		if s[0] != prev {
			t.Fatalf("segments not contiguous: %v", segs)
		}
		covered += s[1] - s[0]
		prev = s[1]
	}
	if covered != 10 {
		t.Fatalf("segments cover %d of 10", covered)
	}
	// More phases than items: empty segments are dropped, coverage kept.
	segs = phaseSegments(2, 5)
	var n uint64
	for _, s := range segs {
		n += s[1] - s[0]
	}
	if n != 2 || len(segs) > 2 {
		t.Fatalf("tiny-population segments %v", segs)
	}
}

func TestBuildSpaceErrors(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	if _, err := BuildSpace([]Site{SiteOperand}, r.Counts(), r.ArrayLens(), fp.Single, 0, DefaultBitBands(fp.Single)); err == nil {
		t.Error("zero phases accepted")
	}
	if _, err := BuildSpace([]Site{SiteOperand}, r.Counts(), r.ArrayLens(), fp.Single, 3, []BitBand{{Name: "x", Lo: 0, Hi: 4}}); err == nil {
		t.Error("non-tiling bands accepted")
	}
	if _, err := BuildSpace([]Site{SiteMemory}, r.Counts(), nil, fp.Single, 3, DefaultBitBands(fp.Single)); err == nil {
		t.Error("memory site with no arrays accepted")
	}
	var empty fp.OpCounts
	if _, err := BuildSpace([]Site{SiteOperand}, empty, r.ArrayLens(), fp.Single, 3, DefaultBitBands(fp.Single)); err == nil {
		t.Error("empty op counts accepted")
	}
}
