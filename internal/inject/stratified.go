package inject

import (
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
	"mixedrel/internal/stats"
	"mixedrel/internal/telemetry"
)

// This file is the variance-reduction sampling engine: stratified and
// adaptive (Neyman) allocation of a campaign's fault budget over the
// Space partition of strata.go, with sequential early stopping on the
// stratified confidence interval. See DESIGN.md "Sampling engine".
//
// Determinism contract: sample j of stratum h always draws its private
// random stream from the (seed, stratum, index) address
// rng.New(j-th draw of rng.New(exec.StratumSeed(seed, h))) — never
// from worker scheduling, from which samples already ran, or from how
// the adaptive allocator reached index j. Because every allocation and
// stopping decision is a pure function of completed-round tallies, and
// every tally is a pure function of sample addresses, a stratified
// campaign is byte-identical at any worker count and across arbitrary
// checkpoint interruptions.

// Sampling configures the variance-reduction sampling engine on a
// Campaign. A nil Sampling keeps the historical uniform design; a
// non-nil one partitions the fault space into strata over
// (op-class x bit-position band x kernel phase), allocates the fault
// budget across them in rounds, and reports post-stratified estimates
// with confidence intervals alongside the pooled numbers.
type Sampling struct {
	// Phases is the number of kernel-phase segments per stratification
	// axis (default 3: early/mid/late).
	Phases int
	// Bands partitions bit positions; it must tile [0, format width)
	// exactly. Empty defaults to DefaultBitBands (low/high mantissa,
	// exponent, sign).
	Bands []BitBand
	// Confidence is the level of every interval and of the stopping
	// rule (default 0.95).
	Confidence float64
	// CIHalfWidth, when positive, enables sequential early stopping:
	// the campaign halts once the stratified interval on P(SDC) — and
	// on P(DUE), when any DUE detector is armed — is at most this
	// half-width. Campaign.Faults remains the hard budget.
	CIHalfWidth float64
	// Adaptive enables Neyman reallocation: after the first round,
	// each round's budget is split proportionally to
	// weight x smoothed per-stratum standard deviation, concentrating
	// samples where the outcome is still uncertain. Strata whose own
	// Wilson interval is already tighter than CIHalfWidth are halted
	// (allocation score zero). Off, every round allocates
	// proportionally to the weights.
	Adaptive bool
	// Round is the sample budget per allocation round (default 256).
	Round int
	// MinPerStratum is the first round's per-stratum floor, so every
	// stratum is observed before any adaptive decision (default 8).
	MinPerStratum int
}

// withDefaults fills the zero values in.
func (s Sampling) withDefaults(f fp.Format) Sampling {
	if s.Phases == 0 {
		s.Phases = 3
	}
	if len(s.Bands) == 0 {
		s.Bands = DefaultBitBands(f)
	}
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	if s.Round == 0 {
		s.Round = 256
	}
	if s.MinPerStratum == 0 {
		s.MinPerStratum = 8
	}
	return s
}

// validate rejects configurations that could only mislead: they are
// errors before the campaign starts, not mid-run surprises.
func (s Sampling) validate() error {
	if s.Phases < 0 {
		return fmt.Errorf("inject: sampling with %d phases", s.Phases)
	}
	if s.CIHalfWidth < 0 || s.CIHalfWidth >= 0.5 {
		return fmt.Errorf("inject: CI half-width target %g out of [0, 0.5)", s.CIHalfWidth)
	}
	if s.Confidence < 0 || s.Confidence >= 1 {
		return fmt.Errorf("inject: confidence %g out of (0, 1)", s.Confidence)
	}
	if s.Round < 0 || s.MinPerStratum < 0 {
		return fmt.Errorf("inject: negative round size or per-stratum floor")
	}
	return nil
}

// StratumResult is one stratum's share of a stratified campaign.
type StratumResult struct {
	// Desc labels the stratum ("operand/FMA/ph1/exp").
	Desc string
	// Weight is the stratum's share of the uniform fault-space mass.
	Weight float64
	// Faults counts the samples spent here; SDCs/DUEs/Masked classify
	// them (any shortfall is aborted samples).
	Faults, SDCs, DUEs, Masked int
}

// stratumState accumulates one stratum's outcomes. Sample j's private
// stream seed is the j-th output of seedSrc; seeds caches the prefix
// drawn so far so replay diagnostics can name any sample's seed.
type stratumState struct {
	outs    []sample
	seedSrc *rng.Rand
	seeds   []uint64
}

// runStratified executes the campaign under the sampling engine. The
// runner, resolved sites and watchdog come from Run, which validated
// the basic campaign fields already.
func (c Campaign) runStratified(runner *Runner, sites []Site, watchdog float64) (*Result, error) {
	sp := c.Sampling.withDefaults(c.Format)
	if err := sp.validate(); err != nil {
		return nil, err
	}
	space, err := BuildSpace(sites, runner.Counts(), runner.ArrayLens(), c.Format, sp.Phases, sp.Bands)
	if err != nil {
		return nil, err
	}
	weights := space.Weights()
	nStrata := len(space.Strata)

	sts := make([]stratumState, nStrata)
	for h := range sts {
		sts[h].seedSrc = rng.New(exec.StratumSeed(c.Seed, h))
	}

	var journal *exec.Journal
	var limit int64
	if c.Checkpoint != nil {
		journal, err = c.Checkpoint.Open()
		if err != nil {
			return nil, err
		}
		defer journal.Close()
		limit = int64(c.Checkpoint.Limit)
	}

	dueArmed := watchdog > 0 || c.TrapNonFinite
	for _, s := range sites {
		if s == SiteControl {
			dueArmed = true
		}
	}

	runOne := func(h int, r *rng.Rand) sample {
		spec := space.Sample(h, r)
		spec.Watchdog = watchdog
		spec.TrapNonFinite = c.TrapNonFinite
		rr, abort := runner.RunSpec(spec, c.KeepOutputs)
		if abort != nil {
			return sample{aborted: true, fault: spec.Desc(), panicMsg: abort.String()}
		}
		return sample{rr: rr}
	}

	// tallies rebuilds the per-stratum counts for one outcome class;
	// the denominators exclude aborted samples, like the pooled PVF.
	tallies := func(due bool) []stats.StratumCount {
		out := make([]stats.StratumCount, nStrata)
		for h := range sts {
			sc := stats.StratumCount{Weight: weights[h]}
			for _, s := range sts[h].outs {
				if s.aborted {
					continue
				}
				sc.N++
				if (due && s.rr.Outcome.IsDUE()) || (!due && s.rr.Outcome == SDC) {
					sc.K++
				}
			}
			out[h] = sc
		}
		return out
	}
	// taken snapshots how many samples each stratum has consumed (the
	// deficit allocator's view of the cumulative allocation so far).
	taken := func() []int64 {
		out := make([]int64, nStrata)
		for h := range sts {
			out[h] = int64(len(sts[h].outs))
		}
		return out
	}
	unitScores := make([]float64, nStrata)
	for h := range unitScores {
		unitScores[h] = 1
	}
	converged := func() bool {
		if sp.CIHalfWidth <= 0 {
			return false
		}
		if stats.StratifiedHalfWidth(tallies(false), sp.Confidence) > sp.CIHalfWidth {
			return false
		}
		return !dueArmed || stats.StratifiedHalfWidth(tallies(true), sp.Confidence) <= sp.CIHalfWidth
	}

	var ran atomic.Int64
	spent, stopped, partial, round := 0, false, false, 0
	for spent < c.Faults && !stopped && !partial {
		round++
		roundBudget := sp.Round
		if spent == 0 {
			// The first round must observe every stratum: until it does,
			// the stratified variance is +Inf (StratifiedVariance's
			// unsampled-stratum guard) and early stopping cannot fire.
			if cover := sp.MinPerStratum * nStrata; cover > roundBudget {
				roundBudget = cover
			}
		}
		if rest := c.Faults - spent; roundBudget > rest {
			roundBudget = rest
		}
		var alloc []int
		switch {
		case spent == 0:
			alloc = stats.ProportionalAlloc(weights, roundBudget, sp.MinPerStratum)
		case sp.Adaptive:
			sdc, due := tallies(false), tallies(true)
			scores := make([]float64, nStrata)
			for h := range scores {
				if sp.CIHalfWidth > 0 &&
					stats.WilsonHalfWidth(sdc[h].K, sdc[h].N, sp.Confidence) <= sp.CIHalfWidth &&
					(!dueArmed || stats.WilsonHalfWidth(due[h].K, due[h].N, sp.Confidence) <= sp.CIHalfWidth) {
					continue // stratum halted: its own interval is tight enough
				}
				scores[h] = sdc[h].SmoothedSigma()
				if dueArmed {
					if d := due[h].SmoothedSigma(); d > scores[h] {
						scores[h] = d
					}
				}
			}
			alloc = stats.DeficitAlloc(weights, scores, taken(), roundBudget)
		default:
			alloc = stats.DeficitAlloc(weights, unitScores, taken(), roundBudget)
		}

		type job struct {
			h, idx int
			seed   uint64
		}
		plan := make([]job, 0, roundBudget)
		for h, n := range alloc {
			st := &sts[h]
			for k := 0; k < n; k++ {
				idx := len(st.outs) + k
				for len(st.seeds) <= idx {
					st.seeds = append(st.seeds, st.seedSrc.Uint64())
				}
				plan = append(plan, job{h: h, idx: idx, seed: st.seeds[idx]})
			}
		}
		if len(plan) == 0 {
			break
		}
		results := make([]sample, len(plan))
		got := make([]bool, len(plan))
		err := exec.ForEachCtx(c.Context, c.Workers, len(plan), func(i int) error {
			jb := plan[i]
			if journal != nil {
				if raw, ok := journal.Done(exec.SampleKey(jb.h, jb.idx)); ok {
					var rec sampleRecord
					if err := json.Unmarshal(raw, &rec); err != nil {
						return fmt.Errorf("inject: corrupt checkpoint record (%d,%d): %w", jb.h, jb.idx, err)
					}
					results[i] = rec.sample()
					got[i] = true
					return nil
				}
				if limit > 0 && ran.Add(1) > limit {
					return nil // deterministic interruption: resume fills this in
				}
			}
			s := runOne(jb.h, rng.New(jb.seed))
			if journal != nil {
				if err := journal.Record(exec.SampleKey(jb.h, jb.idx), s.record()); err != nil {
					return err
				}
			}
			results[i] = s
			got[i] = true
			return nil
		})
		if isCtxErr(err) {
			// Cancellation between or inside rounds: in-flight samples
			// drained and were journaled whole, so close the journal
			// (flushing the tail) and report an honest resume point.
			journaled := -1
			if journal != nil {
				if cerr := journal.Close(); cerr != nil {
					return nil, cerr
				}
				journaled = journal.Len()
				if deg, _ := journal.Degraded(); deg {
					journaled = 0
				}
			}
			return nil, &exec.Interrupted{Journaled: journaled, Cause: err}
		}
		if err != nil {
			return nil, err
		}
		for i := range plan {
			if !got[i] {
				partial = true
			}
		}
		if partial {
			break
		}
		// Merge in plan order — grouped by stratum, ascending index —
		// so the aggregate never depends on scheduling.
		for i, jb := range plan {
			sts[jb.h].outs = append(sts[jb.h].outs, results[i])
		}
		spent += len(plan)
		stopped = converged()
		// The round event and progress line trail the merge, so their
		// content (allocation, CI trajectory, stopping decision) is a
		// pure function of completed-round tallies — deterministic at
		// any worker count, and observe-only: the half-widths below are
		// recomputed for display, never fed back into the loop.
		if telemetry.SinkActive() {
			hwSDC := stats.StratifiedHalfWidth(tallies(false), sp.Confidence)
			hwDUE := math.NaN()
			if dueArmed {
				hwDUE = stats.StratifiedHalfWidth(tallies(true), sp.Confidence)
			}
			telemetry.Emit("round",
				telemetry.KV{K: "round", V: round},
				telemetry.KV{K: "budget", V: len(plan)},
				telemetry.KV{K: "spent", V: spent},
				telemetry.KV{K: "alloc", V: alloc},
				telemetry.KV{K: "sdc_half_width", V: hwSDC},
				telemetry.KV{K: "due_half_width", V: hwDUE},
				telemetry.KV{K: "stopped", V: stopped},
			)
		}
		if telemetry.ProgressActive() {
			telemetry.Progressf("%s: round %d, %d/%d samples",
				c.Kernel.Name(), round, spent, c.Faults)
		}
	}
	if telemetry.ProgressActive() {
		telemetry.ProgressDone()
	}
	if stopped && telemetry.SinkActive() {
		telemetry.Emit("early_stop",
			telemetry.KV{K: "spent", V: spent},
			telemetry.KV{K: "budget", V: c.Faults},
			telemetry.KV{K: "rounds", V: round},
		)
	}
	degraded := false
	var degErr error
	if journal != nil {
		if err := journal.Close(); err != nil {
			return nil, err
		}
		degraded, degErr = journal.Degraded()
	}
	if partial {
		return nil, exec.ErrPartial
	}
	res := c.assembleStratified(space, sts, sp, spent, stopped)
	if degraded {
		res.CheckpointDegraded = true
		res.CheckpointError = fmt.Sprint(degErr)
	}
	return res, nil
}

// assembleStratified folds the per-stratum outcomes into a Result, in
// deterministic (stratum, index) order.
func (c Campaign) assembleStratified(space *Space, sts []stratumState, sp Sampling, spent int, stopped bool) *Result {
	res := &Result{Faults: spent, EarlyStopped: stopped}
	for h := range sts {
		sr := StratumResult{
			Desc:   space.Strata[h].Desc(),
			Weight: space.Strata[h].Weight,
			Faults: len(sts[h].outs),
		}
		for idx, s := range sts[h].outs {
			switch {
			case s.aborted:
				res.Aborted = append(res.Aborted, AbortedSample{
					Index: exec.SampleKey(h, idx), Seed: sts[h].seeds[idx],
					Fault: s.fault, Panic: s.panicMsg})
			case s.rr.Outcome == SDC:
				res.SDCs++
				sr.SDCs++
				res.RelErrs = append(res.RelErrs, s.rr.MaxRelErr)
				if c.KeepOutputs {
					res.Outputs = append(res.Outputs, s.rr.Output)
				}
			case s.rr.Outcome == CrashDUE:
				res.CrashDUEs++
				sr.DUEs++
			case s.rr.Outcome == HangDUE:
				res.HangDUEs++
				sr.DUEs++
			default:
				res.Masked++
				sr.Masked++
			}
		}
		res.Strata = append(res.Strata, sr)
		if telemetry.SinkActive() {
			telemetry.Emit("stratum",
				telemetry.KV{K: "desc", V: sr.Desc},
				telemetry.KV{K: "weight", V: sr.Weight},
				telemetry.KV{K: "faults", V: sr.Faults},
				telemetry.KV{K: "sdcs", V: sr.SDCs},
				telemetry.KV{K: "dues", V: sr.DUEs},
				telemetry.KV{K: "masked", V: sr.Masked},
			)
		}
	}
	if n := res.Classified(); n > 0 {
		res.PVF = float64(res.SDCs) / float64(n)
		res.PDUE = float64(res.DUEs()) / float64(n)
	}
	sdc := make([]stats.StratumCount, len(sts))
	due := make([]stats.StratumCount, len(sts))
	for h, sr := range res.Strata {
		n := int64(sr.SDCs + sr.DUEs + sr.Masked)
		sdc[h] = stats.StratumCount{Weight: sr.Weight, N: n, K: int64(sr.SDCs)}
		due[h] = stats.StratumCount{Weight: sr.Weight, N: n, K: int64(sr.DUEs)}
	}
	res.StratifiedPVF = stats.PostStratified(sdc)
	res.PVFCILow, res.PVFCIHigh = stats.StratifiedCI(sdc, sp.Confidence)
	res.StratifiedPDUE = stats.PostStratified(due)
	res.PDUECILow, res.PDUECIHigh = stats.StratifiedCI(due, sp.Confidence)
	return res
}
