package inject

import (
	"errors"
	"math/bits"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
	"mixedrel/internal/telemetry"
)

func TestDUEStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Masked.String(), "masked"},
		{SDC.String(), "SDC"},
		{CrashDUE.String(), "crash-DUE"},
		{HangDUE.String(), "hang-DUE"},
		{Outcome(99).String(), "outcome?"},
		{CauseNone.String(), "none"},
		{CauseSegfault.String(), "segfault"},
		{CauseTrap.String(), "fp-trap"},
		{CauseWatchdog.String(), "watchdog"},
		{DUECause(99).String(), "cause?"},
		{LoopControl.String(), "loop"},
		{IndexControl.String(), "index"},
		{PointerControl.String(), "pointer"},
		{ControlClass(99).String(), "control?"},
		{SiteControl.String(), "control"},
		{ControlFault{Class: IndexControl, Site: 7, Bit: 3}.String(), "control[index site=7 bit=3]"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestOutcomeIsDUE(t *testing.T) {
	for o, want := range map[Outcome]bool{
		Masked: false, SDC: false, CrashDUE: true, HangDUE: true,
	} {
		if o.IsDUE() != want {
			t.Errorf("%v.IsDUE() = %v, want %v", o, o.IsDUE(), want)
		}
	}
}

func TestFaultSpecDesc(t *testing.T) {
	if d := (FaultSpec{}).Desc(); d != "fault-free" {
		t.Errorf("empty spec desc %q", d)
	}
	cf := ControlFault{Class: LoopControl, Site: 9, Bit: 2}
	spec := FaultSpec{
		Mem:           []MemFault{{Array: 1, Elem: 2, Bit: 3}},
		Control:       &cf,
		Watchdog:      4,
		TrapNonFinite: true,
	}
	d := spec.Desc()
	for _, frag := range []string{"mem[", "control[loop site=9 bit=2]", "watchdog=4", "trap"} {
		if !strings.Contains(d, frag) {
			t.Errorf("desc %q missing %q", d, frag)
		}
	}
}

func TestSampleControlFaultBounds(t *testing.T) {
	var counts fp.OpCounts
	counts.ByOp[fp.OpAdd] = 100
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		cf := SampleControlFault(r, counts)
		if cf.Site >= 100 {
			t.Fatalf("site %d out of range", cf.Site)
		}
		max := indexBits
		switch cf.Class {
		case LoopControl:
			max = loopBits
		case PointerControl:
			max = pointerBits
		}
		if cf.Bit < 0 || cf.Bit >= max {
			t.Fatalf("%v bit %d out of range", cf.Class, cf.Bit)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-op control sampling did not panic")
		}
	}()
	SampleControlFault(r, fp.OpCounts{})
}

// TestPointerFaultSegfault: flipping an implemented-address bit far
// above the footprint must fault the access.
func TestPointerFaultSegfault(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	cf := ControlFault{Class: PointerControl, Site: 0, Bit: 47}
	rr, abort := r.RunSpec(FaultSpec{Control: &cf, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != CrashDUE || rr.Cause != CauseSegfault {
		t.Errorf("pointer bit 47: outcome %v cause %v, want crash-DUE/segfault", rr.Outcome, rr.Cause)
	}
	if !rr.FaultApplied {
		t.Error("crash without FaultApplied")
	}
}

// TestIndexFaultOutOfRangeSegfault: a high index bit leaves the mapped
// footprint.
func TestIndexFaultOutOfRangeSegfault(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	cf := ControlFault{Class: IndexControl, Site: 0, Bit: 31}
	rr, abort := r.RunSpec(FaultSpec{Control: &cf, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != CrashDUE || rr.Cause != CauseSegfault {
		t.Errorf("index bit 31: outcome %v cause %v, want crash-DUE/segfault", rr.Outcome, rr.Cause)
	}
}

// TestIndexFaultInRangeAliases: a low index bit stays in range and
// aliases another element into the datapath — the run completes.
func TestIndexFaultInRangeAliases(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	cf := ControlFault{Class: IndexControl, Site: 0, Bit: 0}
	rr, abort := r.RunSpec(FaultSpec{Control: &cf, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome.IsDUE() {
		t.Errorf("in-range aliasing classified %v (%v)", rr.Outcome, rr.Cause)
	}
	if !rr.FaultApplied {
		t.Error("aliasing fault not applied")
	}
}

// TestLoopFaultRunawayHang: flipping the top trip-counter bit upward
// re-executes ~2^31 iterations; the watchdog must kill it.
func TestLoopFaultRunawayHang(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	cf := ControlFault{Class: LoopControl, Site: 0, Bit: 31}
	rr, abort := r.RunSpec(FaultSpec{Control: &cf, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != HangDUE || rr.Cause != CauseWatchdog {
		t.Errorf("runaway loop: outcome %v cause %v, want hang-DUE/watchdog", rr.Outcome, rr.Cause)
	}
}

// TestLoopFaultDownwardTruncates: clearing a set trip-counter bit exits
// the loop early; GEMM's accumulators stay at their initial values, a
// silently wrong (SDC) but complete run.
func TestLoopFaultDownwardTruncates(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	remaining := uint32(r.Counts().Total()) // site 0: all ops remain
	if remaining == 0 {
		t.Fatal("no ops")
	}
	bit := bits.TrailingZeros32(remaining) // set bit -> downward flip
	cf := ControlFault{Class: LoopControl, Site: 0, Bit: bit}
	rr, abort := r.RunSpec(FaultSpec{Control: &cf, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != SDC {
		t.Errorf("truncated run classified %v (cause %v), want SDC", rr.Outcome, rr.Cause)
	}
	if rr.Cause != CauseNone {
		t.Errorf("completed run carries cause %v", rr.Cause)
	}
}

// TestWatchdogBudgetClampedToGolden: a sub-1 factor must not kill a
// fault-free-length run — the budget clamps to the golden op count.
func TestWatchdogBudgetClampedToGolden(t *testing.T) {
	r := NewRunner(kernels.NewGEMM(6, 1), fp.Single, "", nil)
	rr, abort := r.RunSpec(FaultSpec{Watchdog: 0.01}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != Masked {
		t.Errorf("fault-free run under tiny watchdog classified %v (%v)", rr.Outcome, rr.Cause)
	}
}

// TestTrapFiresAfterCorruption: with the FP trap armed and a memory
// corruption in the spec, the first non-finite result must abort with
// CrashDUE/fp-trap; without any corruption the same result passes
// through (hardware only traps on faulty executions we corrupted).
func TestTrapFiresAfterCorruption(t *testing.T) {
	f := fp.Double
	huge := f.FromFloat64(1e308)

	armed := NewEnv(fp.NewMachine(f), neverFault)
	armed.resetSpec(FaultSpec{
		Mem:           []MemFault{{Array: 0, Elem: 0, Bit: 62}},
		TrapNonFinite: true,
		Watchdog:      4,
	}, 100, [][]fp.Bits{{huge}})
	abort := exec.Guard(func() { armed.Mul(huge, huge) })
	if abort == nil {
		t.Fatal("overflowing multiply under armed trap did not abort")
	}
	sig, ok := abort.Value.(dueSignal)
	if !ok || sig.outcome != CrashDUE || sig.cause != CauseTrap {
		t.Fatalf("abort %v, want crash-DUE/fp-trap", abort.Value)
	}

	// No corruption anywhere: the trap must stay quiet even for
	// non-finite results (the golden computation may legitimately
	// overflow).
	quiet := NewEnv(fp.NewMachine(f), neverFault)
	quiet.resetSpec(FaultSpec{TrapNonFinite: true, Watchdog: 4}, 100, nil)
	if abort := exec.Guard(func() { quiet.Mul(huge, huge) }); abort != nil {
		t.Fatalf("trap fired without a corruption: %v", abort.Value)
	}
}

// TestTrapNonFiniteEndToEnd: a memory fault flipping the top exponent
// bit of a 1.0 input makes it non-finite; the first multiply touching
// it must be trapped and the run classified CrashDUE/fp-trap.
func TestTrapNonFiniteEndToEnd(t *testing.T) {
	f := fp.Double
	one := f.FromFloat64(1)
	// Find a micro kernel whose input set contains 1.0 (seeds are small
	// random integers, so scan construction seeds deterministically).
	var k kernels.Kernel
	elem := -1
	for s := uint64(1); s < 500 && elem < 0; s++ {
		cand := kernels.NewMicro(kernels.MicroMUL, 2, 30, s)
		for i, v := range cand.Inputs(f)[0] {
			if v == one {
				k, elem = cand, i
				break
			}
		}
	}
	if elem < 0 {
		t.Fatal("no micro kernel with a 1.0 input found")
	}
	r := NewRunner(k, f, "", nil)
	mf := MemFault{Array: 0, Elem: elem, Bit: 62} // 1.0 -> exponent 0x7ff -> Inf
	rr, abort := r.RunSpec(FaultSpec{Mem: []MemFault{mf}, TrapNonFinite: true, Watchdog: 4}, false)
	if abort != nil {
		t.Fatalf("abort: %v", abort)
	}
	if rr.Outcome != CrashDUE || rr.Cause != CauseTrap {
		t.Errorf("outcome %v cause %v, want crash-DUE/fp-trap", rr.Outcome, rr.Cause)
	}
}

// TestCampaignControlSite: a pure control-site campaign must classify
// every sample and observe behavioral DUEs.
func TestCampaignControlSite(t *testing.T) {
	c := Campaign{
		Kernel: kernels.NewGEMM(8, 3), Format: fp.Single,
		Faults: 150, Seed: 7,
		Sites:         []Site{SiteControl},
		TrapNonFinite: true,
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SDCs + res.Masked + res.CrashDUEs + res.HangDUEs; got != res.Classified() {
		t.Errorf("classified %d samples, want %d", got, res.Classified())
	}
	if len(res.Aborted) != 0 {
		t.Errorf("%d aborted samples", len(res.Aborted))
	}
	if res.DUEs() == 0 {
		t.Error("control-fault campaign observed no DUEs")
	}
	if res.PDUE <= 0 || res.PDUE > 1 {
		t.Errorf("PDUE %v out of range", res.PDUE)
	}
	if res.PVF+res.PDUE > 1+1e-12 {
		t.Errorf("PVF %v + PDUE %v exceeds 1", res.PVF, res.PDUE)
	}
}

// panicky wraps a kernel with a tripwire that panics whenever its
// inputs were corrupted — a stand-in for a simulator bug in one sample.
type panicky struct{ inner kernels.Kernel }

func (p panicky) Name() string                   { return p.inner.Name() + "-panicky" }
func (p panicky) Key() string                    { return "" } // opt out of artifact caching
func (p panicky) Inputs(f fp.Format) [][]fp.Bits { return p.inner.Inputs(f) }
func (p panicky) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	pristine := p.inner.Inputs(env.Format())
	for a := range in {
		for i := range in[a] {
			if in[a][i] != pristine[a][i] {
				panic("boom: corrupted input")
			}
		}
	}
	return p.inner.Run(env, in)
}

// TestCampaignPanicIsolation: a panicking sample must become an
// aborted-sample diagnostic, not kill the campaign.
func TestCampaignPanicIsolation(t *testing.T) {
	c := Campaign{
		Kernel: panicky{kernels.NewGEMM(4, 3)}, Format: fp.Single,
		Faults: 60, Seed: 5,
		Sites: []Site{SiteOperand, SiteMemory},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aborted) == 0 {
		t.Fatal("no aborted samples despite a panicking kernel")
	}
	if len(res.Aborted) == res.Faults {
		t.Fatal("every sample aborted; operand-fault samples should classify")
	}
	if got := res.SDCs + res.Masked + res.CrashDUEs + res.HangDUEs; got != res.Classified() {
		t.Errorf("classified %d, want %d", got, res.Classified())
	}
	for _, ab := range res.Aborted {
		if !strings.Contains(ab.Panic, "boom") {
			t.Errorf("aborted sample %d panic %q", ab.Index, ab.Panic)
		}
		if !strings.Contains(ab.Fault, "mem[") {
			t.Errorf("aborted sample %d fault %q, want a memory fault", ab.Index, ab.Fault)
		}
		if ab.Seed != 0 {
			t.Errorf("sequential-mode abort carries seed %#x", ab.Seed)
		}
		if ab.Index < 0 || ab.Index >= res.Faults {
			t.Errorf("aborted index %d out of range", ab.Index)
		}
	}

	// Parallel mode: the diagnostic must carry the per-sample replay
	// seed, and replaying it must re-create the same fault draw.
	c.Workers = 2
	res2, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Aborted) == 0 {
		t.Fatal("parallel campaign lost its aborted samples")
	}
	for _, ab := range res2.Aborted {
		if ab.Seed == 0 {
			t.Errorf("parallel abort %d without replay seed", ab.Index)
		}
		if want := exec.SampleSeed(c.Seed, ab.Index); ab.Seed != want {
			t.Errorf("abort %d seed %#x, want %#x", ab.Index, ab.Seed, want)
		}
	}
}

// snapshotCounter reads one process-wide telemetry counter by name.
func snapshotCounter(t *testing.T, name string) uint64 {
	t.Helper()
	for _, mv := range telemetry.Snapshot() {
		if mv.Name == name {
			return mv.Value
		}
	}
	t.Fatalf("counter %q not registered", name)
	return 0
}

// TestGuardPanicCounterExactlyOnce: under a high worker count, each
// panicking sample must increment the guard's panic counter exactly
// once — the recover happens in exec.Guard on the worker goroutine, so
// a sample that panics and is re-signalled through the scheduler must
// not be double-counted. Counting dueSignal recoveries is by design
// (see internal/exec/telemetry.go), so the campaign disables traps and
// watchdogs: with a plainly panicking kernel the counter delta equals
// the aborted-sample count plus the classified crash/hang DUEs (zero
// here).
func TestGuardPanicCounterExactlyOnce(t *testing.T) {
	c := Campaign{
		Kernel: panicky{kernels.NewGEMM(4, 3)}, Format: fp.Single,
		Faults: 80, Seed: 11,
		Sites:   []Site{SiteOperand, SiteMemory},
		Workers: 8,
	}
	before := snapshotCounter(t, "exec_guard_panics")
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aborted) == 0 {
		t.Fatal("no aborted samples despite a panicking kernel")
	}
	if res.CrashDUEs != 0 || res.HangDUEs != 0 {
		t.Fatalf("unexpected DUEs (%d crash, %d hang) in a trap-free campaign",
			res.CrashDUEs, res.HangDUEs)
	}
	delta := snapshotCounter(t, "exec_guard_panics") - before
	if got, want := delta, uint64(len(res.Aborted)); got != want {
		t.Errorf("guard panic counter advanced %d, want exactly %d (one per aborted sample)", got, want)
	}
	for _, ab := range res.Aborted {
		if want := exec.SampleSeed(c.Seed, ab.Index); ab.Seed != want {
			t.Errorf("abort %d seed %#x, want replay seed %#x", ab.Index, ab.Seed, want)
		}
	}
}

// TestCampaignCheckpointResume: an interrupted-then-resumed campaign
// must produce a result identical to an uninterrupted checkpointed run
// AND to a plain parallel run (which uses the same per-sample streams).
func TestCampaignCheckpointResume(t *testing.T) {
	base := Campaign{
		Kernel: kernels.NewGEMM(6, 3), Format: fp.Single,
		Faults: 24, Seed: 7,
		Sites:         []Site{SiteOperand, SiteMemory, SiteControl},
		TrapNonFinite: true,
	}
	dir := t.TempDir()

	// Interrupted run: at most 9 new samples per invocation.
	var resumed *Result
	for i := 0; ; i++ {
		c := base
		c.Checkpoint = &exec.Checkpoint{Path: filepath.Join(dir, "a.ckpt"), Limit: 9, Every: 4}
		res, err := c.Run()
		if err == nil {
			resumed = res
			break
		}
		if !errors.Is(err, exec.ErrPartial) {
			t.Fatal(err)
		}
		if i > 10 {
			t.Fatal("campaign never completed")
		}
	}

	// Uninterrupted checkpointed run.
	c := base
	c.Checkpoint = &exec.Checkpoint{Path: filepath.Join(dir, "b.ckpt")}
	oneShot, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, oneShot) {
		t.Errorf("resumed result differs from uninterrupted run:\n%+v\nvs\n%+v", resumed, oneShot)
	}

	// Plain parallel run: same (seed, index) stream derivation.
	c = base
	c.Workers = 2
	parallel, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, parallel) {
		t.Errorf("checkpointed result differs from parallel run:\n%+v\nvs\n%+v", resumed, parallel)
	}
}

// FuzzNonFinitePropagation: NaN/Inf operands must flow identically
// through the scalar and batch injection paths, whatever the armed
// fault — batch decomposition may not change non-finite semantics.
func FuzzNonFinitePropagation(f *testing.F) {
	f.Add(uint64(0x7ff0000000000000), uint64(0xfff8000000000000), uint64(12), 5) // +Inf, NaN
	f.Add(uint64(0xfff0000000000000), uint64(0x3ff0000000000000), uint64(3), 62) // -Inf, 1.0
	f.Add(uint64(0x7ff0000000000001), uint64(0x0000000000000001), uint64(0), 51) // sNaN, denormal
	f.Fuzz(func(t *testing.T, aBits, bBits uint64, idx uint64, bit int) {
		format := fp.Double
		fault := OpFault{
			AnyKind: true,
			Index:   idx % 64,
			Bit:     ((bit % 64) + 64) % 64,
			Target:  TargetResult,
		}
		mk := func(n int) []fp.Bits {
			out := make([]fp.Bits, n)
			for i := range out {
				switch i % 4 {
				case 0:
					out[i] = fp.Bits(aBits)
				case 1:
					out[i] = fp.Bits(bBits)
				default:
					out[i] = format.FromFloat64(0.5 + float64(i))
				}
			}
			return out
		}
		a, b, c := mk(9), mk(9), mk(3)

		run := func(env fp.Env) []fp.Bits {
			var out []fp.Bits
			out = append(out, fp.DotFMA(env, env.FromFloat64(0), a, b))
			dst := make([]fp.Bits, len(a))
			fp.AddN(env, dst, a, b)
			out = append(out, dst...)
			fp.MulN(env, dst, a, b)
			out = append(out, dst...)
			fman := make([]fp.Bits, len(c))
			fp.FMAN(env, fman, a[:3], b[:3], c)
			out = append(out, fman...)
			out = append(out, env.Div(a[0], b[1]), env.Sqrt(a[1]))
			return out
		}

		be := NewEnv(fp.NewMachine(format), fault)
		outBatch := run(be)
		se := NewEnv(fp.NewMachine(format), fault)
		outScalar := run(noBatch{se})

		if len(outBatch) != len(outScalar) {
			t.Fatalf("lengths differ: %d vs %d", len(outBatch), len(outScalar))
		}
		for i := range outBatch {
			if outBatch[i] != outScalar[i] {
				t.Fatalf("output %d: batch %#x != scalar %#x (a=%#x b=%#x fault=%+v)",
					i, outBatch[i], outScalar[i], aBits, bBits, fault)
			}
		}
		if be.Applied() != se.Applied() {
			t.Fatalf("applied: batch %d != scalar %d", be.Applied(), se.Applied())
		}
	})
}
