package inject

import (
	"fmt"
	"sort"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// This file defines the stratification of the fault space — the
// partition the variance-reduction sampling engine (stratified.go)
// allocates samples over. A uniform campaign draws (site, operation,
// bit) jointly uniform; the stratified design cuts that same
// distribution along the three axes that actually separate outcome
// probabilities:
//
//   - op-class: the struck operation's kind (ADD vs FMA vs EXP ...);
//   - bit-position band: sign / exponent / high / low mantissa — the
//     dominant axis, since an exponent flip is almost always an SDC
//     while a low-mantissa flip is almost always rounded away;
//   - kernel phase: the segment of the dynamic operation stream the
//     strike lands in (early corruptions have more time to propagate
//     or be overwritten).
//
// Every stratum's weight is its exact share of the uniform design's
// probability mass, so the post-stratified estimator targets the very
// same P(SDC)/P(DUE) a uniform campaign estimates — strata only
// re-route where the samples are spent.

// BitBand is a half-open range [Lo, Hi) of bit positions within a
// format's width.
type BitBand struct {
	Name   string
	Lo, Hi int
}

func (b BitBand) width() int { return b.Hi - b.Lo }

// DefaultBitBands partitions a format's bits into the four bands the
// reliability literature separates: low mantissa, high mantissa,
// exponent, and sign.
func DefaultBitBands(f fp.Format) []BitBand {
	m, w := f.MantBits(), f.Width()
	return []BitBand{
		{Name: "mant-lo", Lo: 0, Hi: m / 2},
		{Name: "mant-hi", Lo: m / 2, Hi: m},
		{Name: "exp", Lo: m, Hi: w - 1},
		{Name: "sign", Lo: w - 1, Hi: w},
	}
}

// validateBands checks that bands exactly tile [0, width): the strata
// must partition the uniform design or the estimator would be biased.
func validateBands(bands []BitBand, width int) error {
	if len(bands) == 0 {
		return fmt.Errorf("inject: no bit bands")
	}
	sorted := append([]BitBand(nil), bands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	at := 0
	for _, b := range sorted {
		if b.Lo != at || b.Hi <= b.Lo {
			return fmt.Errorf("inject: bit bands must tile [0,%d) exactly; band %q is [%d,%d) at offset %d",
				width, b.Name, b.Lo, b.Hi, at)
		}
		at = b.Hi
	}
	if at != width {
		return fmt.Errorf("inject: bit bands cover [0,%d), format width is %d", at, width)
	}
	return nil
}

// Stratum is one cell of the fault-space partition. Lo/Hi is the
// dynamic-index segment the stratum covers: the per-kind operation
// index for op-fault sites, the flat input-element index for memory
// faults, and the global operation index for control faults.
type Stratum struct {
	Site  Site
	Kind  fp.Op        // op-fault sites only
	Class ControlClass // SiteControl only
	Phase int
	Lo    uint64
	Hi    uint64
	Band  BitBand // FP bands for data sites, control-word thirds for SiteControl
	// Weight is the stratum's share of the uniform fault-space
	// probability mass; weights sum to 1 over a Space.
	Weight float64
}

// Desc renders a compact stratum label, e.g. "operand/FMA/ph1/exp".
func (s Stratum) Desc() string {
	switch s.Site {
	case SiteControl:
		return fmt.Sprintf("control/%v/ph%d/%s", s.Class, s.Phase, s.Band.Name)
	case SiteMemory:
		return fmt.Sprintf("memory/ph%d/%s", s.Phase, s.Band.Name)
	}
	return fmt.Sprintf("%v/%v/ph%d/%s", s.Site, s.Kind, s.Phase, s.Band.Name)
}

// Space is a complete stratification of a configuration's fault space,
// able to draw a uniform sample within any of its strata.
type Space struct {
	Strata []Stratum
	format fp.Format
	lens   []int
}

// Weights returns the strata weights, in stratum order.
func (sp *Space) Weights() []float64 {
	w := make([]float64, len(sp.Strata))
	for i, s := range sp.Strata {
		w[i] = s.Weight
	}
	return w
}

// phaseSegments cuts [0, n) into at most phases contiguous equal-share
// segments, dropping empty ones (n < phases).
func phaseSegments(n uint64, phases int) [][2]uint64 {
	segs := make([][2]uint64, 0, phases)
	p := uint64(phases)
	for i := uint64(0); i < p; i++ {
		lo, hi := n*i/p, n*(i+1)/p
		if hi > lo {
			segs = append(segs, [2]uint64{lo, hi})
		}
	}
	return segs
}

// BuildSpace constructs the stratification of one campaign
// configuration: the given fault sites, partitioned over
// (op-class x bit band x kernel phase) for data faults and
// (control class x phase) for control faults. The strata exactly
// partition the uniform sampling design of Campaign.Run, with weights
// equal to each cell's uniform probability.
func BuildSpace(sites []Site, counts fp.OpCounts, arrayLens []int, f fp.Format, phases int, bands []BitBand) (*Space, error) {
	if phases <= 0 {
		return nil, fmt.Errorf("inject: stratification needs at least one phase, got %d", phases)
	}
	if err := validateBands(bands, f.Width()); err != nil {
		return nil, err
	}
	total := counts.Total()
	if total == 0 {
		return nil, fmt.Errorf("inject: no dynamic operations to stratify")
	}
	width := float64(f.Width())
	siteW := 1 / float64(len(sites))

	sp := &Space{format: f, lens: arrayLens}
	for _, site := range sites {
		switch site {
		case SiteOperation, SiteOperand:
			for kind := fp.Op(0); int(kind) < fp.NumOps; kind++ {
				n := counts.ByOp[kind]
				if n == 0 {
					continue
				}
				kindW := float64(n) / float64(total)
				for phase, seg := range phaseSegments(n, phases) {
					segW := float64(seg[1]-seg[0]) / float64(n)
					for _, b := range bands {
						sp.Strata = append(sp.Strata, Stratum{
							Site: site, Kind: kind, Phase: phase,
							Lo: seg[0], Hi: seg[1], Band: b,
							Weight: siteW * kindW * segW * float64(b.width()) / width,
						})
					}
				}
			}
		case SiteMemory:
			var elems uint64
			for _, n := range arrayLens {
				elems += uint64(n)
			}
			if elems == 0 {
				return nil, fmt.Errorf("inject: no memory elements to stratify")
			}
			for phase, seg := range phaseSegments(elems, phases) {
				segW := float64(seg[1]-seg[0]) / float64(elems)
				for _, b := range bands {
					sp.Strata = append(sp.Strata, Stratum{
						Site: site, Phase: phase,
						Lo: seg[0], Hi: seg[1], Band: b,
						Weight: siteW * segW * float64(b.width()) / width,
					})
				}
			}
		case SiteControl:
			classW := 1 / float64(NumControlClasses)
			for class := ControlClass(0); int(class) < NumControlClasses; class++ {
				cbits := controlBits(class)
				for phase, seg := range phaseSegments(total, phases) {
					segW := float64(seg[1]-seg[0]) / float64(total)
					for _, b := range controlBands(class) {
						sp.Strata = append(sp.Strata, Stratum{
							Site: site, Class: class, Phase: phase,
							Lo: seg[0], Hi: seg[1], Band: b,
							Weight: siteW * classW * segW * float64(b.width()) / float64(cbits),
						})
					}
				}
			}
		default:
			return nil, fmt.Errorf("inject: unknown site %v", site)
		}
	}
	return sp, nil
}

// controlBits returns the control-word width of a class, matching
// SampleControlFault's uniform bit draw.
func controlBits(class ControlClass) int {
	switch class {
	case LoopControl:
		return loopBits
	case PointerControl:
		return pointerBits
	}
	return indexBits
}

// controlBands tiles a control word's bits into thirds. The bit
// position of a control-word flip separates outcomes as sharply as the
// FP bands do for data faults: a low-bit index flip lands on a nearby
// wrong element (SDC), a high-bit one lands out of range (crash DUE).
func controlBands(class ControlClass) []BitBand {
	w := controlBits(class)
	return []BitBand{
		{Name: "lo", Lo: 0, Hi: w / 3},
		{Name: "mid", Lo: w / 3, Hi: 2 * w / 3},
		{Name: "hi", Lo: 2 * w / 3, Hi: w},
	}
}

// Sample draws one fault uniformly within stratum h. The conditional
// distributions compose with the stratum weights into exactly the
// uniform design of Campaign.Run, which is what makes the
// post-stratified estimator target the same quantity.
func (sp *Space) Sample(h int, r *rng.Rand) FaultSpec {
	s := sp.Strata[h]
	var spec FaultSpec
	switch s.Site {
	case SiteOperation, SiteOperand:
		target := TargetResult
		if s.Site == SiteOperand {
			target = TargetOperand
		}
		f := OpFault{
			Kind:       s.Kind,
			Index:      s.Lo + r.Uint64n(s.Hi-s.Lo),
			Bit:        s.Band.Lo + r.Intn(s.Band.width()),
			Target:     target,
			OperandIdx: r.Intn(3),
		}
		spec.Op = &f
	case SiteMemory:
		flat := s.Lo + r.Uint64n(s.Hi-s.Lo)
		array := 0
		for array < len(sp.lens) && flat >= uint64(sp.lens[array]) {
			flat -= uint64(sp.lens[array])
			array++
		}
		spec.Mem = []MemFault{{
			Array: array, Elem: int(flat),
			Bit: s.Band.Lo + r.Intn(s.Band.width()),
		}}
	case SiteControl:
		cf := ControlFault{
			Class: s.Class,
			Site:  s.Lo + r.Uint64n(s.Hi-s.Lo),
			Bit:   s.Band.Lo + r.Intn(s.Band.width()),
		}
		spec.Control = &cf
	}
	return spec
}
