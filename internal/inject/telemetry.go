package inject

import "mixedrel/internal/telemetry"

// Injector metrics, flushed once per classified sample from the
// environment's plain per-run stat fields — the hot per-operation path
// never touches an atomic. The telemetry analyzer proves none of these
// values flows back into classification, reports, or journals.
var (
	// mSamples counts classified faulty runs; the outcome counters
	// partition it (plus mAborts for runs that died on simulator bugs).
	mSamples  = telemetry.NewCounter("inject_samples")
	mMasked   = telemetry.NewCounter("inject_masked")
	mSDC      = telemetry.NewCounter("inject_sdc")
	mCrashDUE = telemetry.NewCounter("inject_crash_due")
	mHangDUE  = telemetry.NewCounter("inject_hang_due")
	mAborts   = telemetry.NewCounter("inject_aborts")

	// mOps counts dynamic operations observed by injecting environments;
	// mReplayServed/mCompareServed are the fraction answered from the
	// replay trace and the compiled program (the remainder recomputed
	// through the softfloat machine — the serve-vs-recompute ratio).
	mOps           = telemetry.NewCounter("inject_ops")
	mReplayServed  = telemetry.NewCounter("inject_replay_served")
	mCompareServed = telemetry.NewCounter("inject_compare_served")
	// mBackoffTrips counts scalar compare-serve backoff engagements
	// (a run's operation stream diverged from the recorded one).
	mBackoffTrips = telemetry.NewCounter("inject_backoff_trips")

	// Behavioral-DUE detector fires, by cause.
	mWatchdogFires = telemetry.NewCounter("inject_watchdog_fires")
	mTrapFires     = telemetry.NewCounter("inject_trap_fires")
	mSegfaults     = telemetry.NewCounter("inject_segfaults")
)

// flushRunStats commits one finished run's accumulated environment
// statistics and its classification into the process-wide counters.
// aborted marks a run that died on a non-DUE panic (a simulator bug).
func flushRunStats(e *Env, outcome Outcome, cause DUECause, aborted bool) {
	mSamples.Inc()
	mOps.Add(e.all)
	if e.statReplayed > 0 {
		mReplayServed.Add(e.statReplayed)
	}
	if e.statServed > 0 {
		mCompareServed.Add(e.statServed)
	}
	if e.statBackoff > 0 {
		mBackoffTrips.Add(e.statBackoff)
	}
	if aborted {
		mAborts.Inc()
		return
	}
	switch outcome {
	case Masked:
		mMasked.Inc()
	case SDC:
		mSDC.Inc()
	case CrashDUE:
		mCrashDUE.Inc()
	case HangDUE:
		mHangDUE.Inc()
	}
	switch cause {
	case CauseWatchdog:
		mWatchdogFires.Inc()
	case CauseTrap:
		mTrapFires.Inc()
	case CauseSegfault:
		mSegfaults.Inc()
	}
}
