package inject

import "mixedrel/internal/fp"

// The injecting environment implements fp.BatchEnv so that the bulk of a
// faulty run — everything outside the struck operation's batch — moves
// at the inner machine's batch speed while remaining observationally
// identical to the scalar path:
//
//   - if the configured fault could strike any of the batch's n dynamic
//     operations (canStrike), the batch is decomposed into the scalar
//     methods, which perform the exact per-operation matching,
//     corruption, and counter bookkeeping;
//   - otherwise the counters advance by n in one step, and the results
//     are either served from the fault-free replay trace (before any
//     corruption: every operand is still bit-identical to the recorded
//     run, so a DotFMA chain collapses into ONE trace lookup) or
//     computed through the inner environment's own batch fast path.
//
// TargetIntState faults never strike arithmetic (they fire inside
// IntDecision), so for them every batch takes the bulk path.

// canStrike reports whether the configured fault could corrupt any of
// the next n dynamic operations of the given kind — or whether an armed
// behavioral-DUE hook could fire within them. It must err on the side
// of true: a true return only costs speed (the batch decomposes into
// exact scalar matching), a false miss would skip a corruption or a
// detector.
func (e *Env) canStrike(kind fp.Op, n uint64) bool {
	if e.due && e.mustDecompose(n) {
		return true
	}
	if e.fault.Target != TargetOperand && e.fault.Target != TargetResult {
		return false
	}
	var ctr uint64
	if e.fault.AnyKind {
		ctr = e.all
	} else {
		if kind != e.fault.Kind {
			return false
		}
		ctr = e.byKind[kind]
	}
	if m := e.fault.Modulo; m > 0 {
		// Next counter value ≡ Index (mod m) within the window?
		off := (e.fault.Index%m + m - ctr%m) % m
		return off < n
	}
	return e.fault.Index >= ctr && e.fault.Index-ctr < n
}

// mustDecompose reports whether any armed behavioral-DUE hook could
// fire within the next n operations, forcing exact scalar execution:
// skip mode and a pending aliased operand change per-op semantics, the
// watchdog would trip inside the window, the control strike site falls
// inside the window, or the trap is live (a non-finite result anywhere
// in the batch must fault at its exact operation).
func (e *Env) mustDecompose(n uint64) bool {
	if e.skip || e.ctlPending {
		return true
	}
	if e.budget > 0 && e.all+n > e.budget {
		return true
	}
	if e.ctlArmed && e.ctl.Site >= e.all && e.ctl.Site-e.all < n {
		return true
	}
	if e.trap && (e.applied != 0 || e.trapAll) {
		return true
	}
	return false
}

// advance moves the operation counters past n operations of one kind.
func (e *Env) advance(kind fp.Op, n uint64) {
	e.all += n
	e.byKind[kind] += n
}

// replayable reports whether a just-advanced batch of n operations can
// be served from the fault-free result trace — same condition as the
// scalar replayed(): trace long enough, nothing corrupted yet. The
// caller guarantees (via canStrike) that none of the n operations is
// struck.
func (e *Env) replayable() bool {
	return e.applied == 0 && uint64(len(e.replay)) >= e.all
}

// DotFMA implements fp.BatchEnv.
func (e *Env) DotFMA(acc fp.Bits, a, b []fp.Bits) fp.Bits {
	n := uint64(len(a))
	if n == 0 {
		return acc
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, ai := range a {
			acc = e.FMA(ai, b[i], acc)
		}
		return acc
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		// Only the final accumulator leaves the chain, so the whole
		// batch is one lookup of the last recorded result.
		return e.replay[e.all-1]
	}
	return fp.DotFMA(e.inner, acc, a, b)
}

// AddN implements fp.BatchEnv.
func (e *Env) AddN(dst, a, b []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpAdd, n) {
		for i, ai := range a {
			dst[i] = e.Add(ai, b[i])
		}
		return
	}
	e.advance(fp.OpAdd, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		return
	}
	fp.AddN(e.inner, dst, a, b)
}

// MulN implements fp.BatchEnv.
func (e *Env) MulN(dst, a, b []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpMul, n) {
		for i, ai := range a {
			dst[i] = e.Mul(ai, b[i])
		}
		return
	}
	e.advance(fp.OpMul, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		return
	}
	fp.MulN(e.inner, dst, a, b)
}

// FMAN implements fp.BatchEnv.
func (e *Env) FMAN(dst, a, b, c []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, ai := range a {
			dst[i] = e.FMA(ai, b[i], c[i])
		}
		return
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		return
	}
	fp.FMAN(e.inner, dst, a, b, c)
}

// DotFMABlock implements fp.BatchEnv by running the chains in order,
// each through DotFMA's own strike/replay/bulk logic — the block shape
// adds no new fault semantics beyond its member chains.
func (e *Env) DotFMABlock(out []fp.Bits, acc fp.Bits, u, v []fp.Bits, stride int) {
	for t := range out {
		out[t] = e.DotFMA(acc, u, v[t*stride:t*stride+len(u)])
	}
}

// GemmFMA implements fp.BatchEnv by running the grid's rows in order,
// like the package fallback, with each row's chains going through
// DotFMABlock (and so DotFMA's strike/replay/bulk logic).
func (e *Env) GemmFMA(out, accs, a, bt []fp.Bits, rows, cols, k int) {
	zero := e.FromFloat64(0)
	for i := 0; i < rows; i++ {
		acc := zero
		if accs != nil {
			acc = accs[i]
		}
		e.DotFMABlock(out[i*cols:(i+1)*cols], acc, a[i*k:(i+1)*k], bt, k)
	}
}

// AXPY implements fp.BatchEnv.
func (e *Env) AXPY(dst []fp.Bits, s fp.Bits, x []fp.Bits) {
	n := uint64(len(x))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, xi := range x {
			dst[i] = e.FMA(s, xi, dst[i])
		}
		return
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		return
	}
	fp.AXPY(e.inner, dst, s, x)
}
