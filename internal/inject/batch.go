package inject

import "mixedrel/internal/fp"

// The injecting environment implements fp.BatchEnv so that the bulk of a
// faulty run — everything outside the struck operation's batch — moves
// at the inner machine's batch speed while remaining observationally
// identical to the scalar path:
//
//   - if the configured fault could strike any of the batch's n dynamic
//     operations (canStrike), the batch is decomposed into the scalar
//     methods, which perform the exact per-operation matching,
//     corruption, and counter bookkeeping;
//   - otherwise the counters advance by n in one step, and the results
//     are either served from the fault-free replay trace (before any
//     corruption: every operand is still bit-identical to the recorded
//     run, so a DotFMA chain collapses into ONE trace lookup) or
//     computed through the inner environment's own batch fast path.
//
// TargetIntState faults never strike arithmetic (they fire inside
// IntDecision), so for them every batch takes the bulk path.

// canStrike reports whether the configured fault could corrupt any of
// the next n dynamic operations of the given kind — or whether an armed
// behavioral-DUE hook could fire within them. It must err on the side
// of true: a true return only costs speed (the batch decomposes into
// exact scalar matching), a false miss would skip a corruption or a
// detector.
func (e *Env) canStrike(kind fp.Op, n uint64) bool {
	if e.due && e.mustDecompose(n) {
		return true
	}
	if e.fault.Target != TargetOperand && e.fault.Target != TargetResult {
		return false
	}
	var ctr uint64
	if e.fault.AnyKind {
		ctr = e.all
	} else {
		if kind != e.fault.Kind {
			return false
		}
		ctr = e.byKind[kind]
	}
	if m := e.fault.Modulo; m > 0 {
		// Next counter value ≡ Index (mod m) within the window?
		off := (e.fault.Index%m + m - ctr%m) % m
		return off < n
	}
	return e.fault.Index >= ctr && e.fault.Index-ctr < n
}

// mustDecompose reports whether any armed behavioral-DUE hook could
// fire within the next n operations, forcing exact scalar execution:
// skip mode and a pending aliased operand change per-op semantics, the
// watchdog would trip inside the window, the control strike site falls
// inside the window, or the trap is live (a non-finite result anywhere
// in the batch must fault at its exact operation).
func (e *Env) mustDecompose(n uint64) bool {
	if e.skip || e.ctlPending {
		return true
	}
	if e.budget > 0 && e.all+n > e.budget {
		return true
	}
	if e.ctlArmed && e.ctl.Site >= e.all && e.ctl.Site-e.all < n {
		return true
	}
	if e.trap && (e.applied != 0 || e.trapAll) {
		return true
	}
	return false
}

// advance moves the operation counters past n operations of one kind.
func (e *Env) advance(kind fp.Op, n uint64) {
	e.all += n
	e.byKind[kind] += n
}

// replayable reports whether a just-advanced batch of n operations can
// be served from the fault-free result trace — same condition as the
// scalar replayed(): trace long enough, nothing corrupted yet. The
// caller guarantees (via canStrike) that none of the n operations is
// struck.
func (e *Env) replayable() bool {
	return e.applied == 0 && uint64(len(e.replay)) >= e.all
}

// compiled reports whether a just-advanced batch — missed by
// replayable — may try the compiled trace program's compare-serving.
// Every batch that reaches its bulk path already cleared canStrike, so
// no operation in it is struck and no behavioral-DUE hook can fire
// inside it (mustDecompose); compare-serving then answers each
// operation from the trace exactly when its recorded operands match
// the live ones, which is the post-fault cone partition: compares miss
// precisely on the fault-dependent operations, and only those
// recompute through the inner machine.
func (e *Env) compiled() bool {
	return e.prog != nil
}

// DotFMA implements fp.BatchEnv.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) DotFMA(acc fp.Bits, a, b []fp.Bits) fp.Bits {
	n := uint64(len(a))
	if n == 0 {
		return acc
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, ai := range a {
			acc = e.FMA(ai, b[i], acc)
		}
		return acc
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		// Only the final accumulator leaves the chain, so the whole
		// batch is one lookup of the last recorded result.
		e.statReplayed += n
		return e.replay[e.all-1]
	}
	if e.compiled() {
		// Serve the longest operand-matching prefix of the chain and
		// recompute only the suffix the fault's cone reaches.
		res, served := e.prog.ChainPrefix(&e.cur, e.all-n, acc, a, b)
		e.statServed += uint64(served)
		if served == int(n) {
			return res
		}
		if served > 0 {
			return fp.DotFMA(e.inner, res, a[served:], b[served:])
		}
	}
	return fp.DotFMA(e.inner, acc, a, b)
}

// AddN implements fp.BatchEnv.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) AddN(dst, a, b []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpAdd, n) {
		for i, ai := range a {
			dst[i] = e.Add(ai, b[i])
		}
		return
	}
	e.advance(fp.OpAdd, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		e.statReplayed += n
		return
	}
	if e.compiled() {
		if lo, hi, ok := e.prog.ServeMap(&e.cur, e.all-n, fp.OpAdd, dst, a, b, nil); ok {
			e.statServed += n - uint64(hi-lo)
			if lo < hi {
				fp.AddN(e.inner, dst[lo:hi], a[lo:hi], b[lo:hi])
			}
			return
		}
	}
	fp.AddN(e.inner, dst, a, b)
}

// MulN implements fp.BatchEnv.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) MulN(dst, a, b []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpMul, n) {
		for i, ai := range a {
			dst[i] = e.Mul(ai, b[i])
		}
		return
	}
	e.advance(fp.OpMul, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		e.statReplayed += n
		return
	}
	if e.compiled() {
		if lo, hi, ok := e.prog.ServeMap(&e.cur, e.all-n, fp.OpMul, dst, a, b, nil); ok {
			e.statServed += n - uint64(hi-lo)
			if lo < hi {
				fp.MulN(e.inner, dst[lo:hi], a[lo:hi], b[lo:hi])
			}
			return
		}
	}
	fp.MulN(e.inner, dst, a, b)
}

// FMAN implements fp.BatchEnv.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) FMAN(dst, a, b, c []fp.Bits) {
	n := uint64(len(a))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, ai := range a {
			dst[i] = e.FMA(ai, b[i], c[i])
		}
		return
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		e.statReplayed += n
		return
	}
	if e.compiled() {
		// ServeMap leaves dst's dirty interval untouched, so when dst
		// aliases c the recompute below still reads pristine addends.
		if lo, hi, ok := e.prog.ServeMap(&e.cur, e.all-n, fp.OpFMA, dst, a, b, c); ok {
			e.statServed += n - uint64(hi-lo)
			if lo < hi {
				fp.FMAN(e.inner, dst[lo:hi], a[lo:hi], b[lo:hi], c[lo:hi])
			}
			return
		}
	}
	fp.FMAN(e.inner, dst, a, b, c)
}

// DotFMABlock implements fp.BatchEnv by running the chains in order,
// each through DotFMA's own strike/replay/bulk logic — the block shape
// adds no new fault semantics beyond its member chains.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) DotFMABlock(out []fp.Bits, acc fp.Bits, u, v []fp.Bits, stride int) {
	for t := range out {
		out[t] = e.DotFMA(acc, u, v[t*stride:t*stride+len(u)])
	}
}

// GemmFMA implements fp.BatchEnv. The grid is handled at chain
// granularity with one grid-level canStrike instead of one per chain:
//
//   - no possible strike: every chain bulk-serves via gemmChains;
//   - a single operation fault in the window (the campaign common
//     case): the struck chain alone decomposes through DotFMA's exact
//     scalar matching, and the chain ranges before and after it
//     bulk-serve — so a strike costs k scalar operations plus two
//     bulk calls, not rows*cols chain dispatches;
//   - modulo (persistent) faults and armed DUE hooks: the grid
//     decomposes into its rows like the package fallback, with each
//     row's chains going through DotFMABlock (and so DotFMA's
//     strike/replay/bulk logic), keeping every per-operation hook
//     exact.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) GemmFMA(out, accs, a, bt []fp.Bits, rows, cols, k int) {
	chains := rows * cols
	n := uint64(chains) * uint64(k)
	if n == 0 {
		return
	}
	if !e.canStrike(fp.OpFMA, n) {
		e.gemmChains(out, accs, a, bt, rows, cols, k, 0, chains)
		return
	}
	if !e.due && e.fault.Modulo == 0 {
		// canStrike with no DUE hooks armed means exactly one dynamic
		// operation in the window is struck (target operand/result,
		// kind FMA or any); isolate its chain.
		ctr := e.all
		if !e.fault.AnyKind {
			ctr = e.byKind[fp.OpFMA]
		}
		t0 := int((e.fault.Index - ctr) / uint64(k))
		e.gemmChains(out, accs, a, bt, rows, cols, k, 0, t0)
		acc := e.FromFloat64(0)
		if accs != nil {
			acc = accs[t0/cols]
		}
		row, col := t0/cols, t0%cols
		out[t0] = e.DotFMA(acc, a[row*k:(row+1)*k], bt[col*k:col*k+k])
		e.gemmChains(out, accs, a, bt, rows, cols, k, t0+1, chains)
		return
	}
	zero := e.FromFloat64(0)
	for i := 0; i < rows; i++ {
		acc := zero
		if accs != nil {
			acc = accs[i]
		}
		e.DotFMABlock(out[i*cols:(i+1)*cols], acc, a[i*k:(i+1)*k], bt, k)
	}
}

// gemmChains bulk-executes the grid's chains [first, limit): the
// counters advance in one step, and the chains are served from the
// replay trace (one lookup per chain), from the compiled program (one
// slab compare resolves the fault's dirty rows/columns; clean chains
// serve from the trace, dirty ones recompute), or recomputed through
// the inner environment. The caller guarantees — via canStrike on a
// window covering the range — that no strike or DUE hook fires within
// these chains.
func (e *Env) gemmChains(out, accs, a, bt []fp.Bits, rows, cols, k, first, limit int) {
	if first >= limit {
		return
	}
	n := uint64(limit-first) * uint64(k)
	e.advance(fp.OpFMA, n)
	pos := e.all - n
	if e.replayable() {
		// Only final accumulators leave the chains: absolute chain t
		// ends at stream position pos + (t-first+1)*k - 1.
		for t := first; t < limit; t++ {
			out[t] = e.replay[pos+uint64((t-first+1)*k)-1]
		}
		e.statReplayed += n
		return
	}
	if e.compiled() && e.prog.ServeGemm(&e.cur, pos, out, accs, a, bt, rows, cols, k, first, limit, e.inner) {
		// Slab-granular: the program resolved the whole range, serving
		// clean chains and recomputing dirty ones internally, so the
		// serve counter attributes the full window to the slab path.
		e.statServed += n
		return
	}
	if first == 0 && limit == rows*cols {
		// Whole grid: keep the inner machine's decode-once fast path.
		fp.GemmFMA(e.inner, out, accs, a, bt, rows, cols, k)
		return
	}
	zero := e.FromFloat64(0)
	for t := first; t < limit; t++ {
		i, j := t/cols, t%cols
		acc := zero
		if accs != nil {
			acc = accs[i]
		}
		out[t] = fp.DotFMA(e.inner, acc, a[i*k:(i+1)*k], bt[j*k:j*k+k])
	}
}

// AXPY implements fp.BatchEnv.
//mixedrelvet:hotpath batched injection inner loop
func (e *Env) AXPY(dst []fp.Bits, s fp.Bits, x []fp.Bits) {
	n := uint64(len(x))
	if n == 0 {
		return
	}
	if e.canStrike(fp.OpFMA, n) {
		for i, xi := range x {
			dst[i] = e.FMA(s, xi, dst[i])
		}
		return
	}
	e.advance(fp.OpFMA, n)
	if e.replayable() {
		copy(dst, e.replay[e.all-n:e.all])
		e.statReplayed += n
		return
	}
	if e.compiled() {
		// The dirty interval keeps its pristine accumulator inputs in
		// dst; only those elements recompute.
		if lo, hi, ok := e.prog.ServeAxpy(&e.cur, e.all-n, s, x, dst); ok {
			e.statServed += n - uint64(hi-lo)
			if lo < hi {
				fp.AXPY(e.inner, dst[lo:hi], s, x[lo:hi])
			}
			return
		}
	}
	fp.AXPY(e.inner, dst, s, x)
}
