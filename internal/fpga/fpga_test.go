package fpga

import (
	"errors"
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func mapMxM(t *testing.T, f fp.Format) *arch.Mapping {
	t.Helper()
	d := New()
	// Executable 16x16 instance scaled to the paper's 128x128:
	// ops scale (128/16)^3, data scale (128/16)^2.
	w := arch.NewWorkload(kernels.NewGEMM(16, 1), 512, 64)
	m, err := d.Map(w, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSupportsAllFormats(t *testing.T) {
	d := New()
	for _, f := range fp.Formats {
		if !d.Supports(f) {
			t.Errorf("FPGA should support %v", f)
		}
	}
}

func TestMapRejectsNilKernel(t *testing.T) {
	if _, err := New().Map(arch.Workload{}, fp.Single); err == nil {
		t.Error("nil kernel accepted")
	}
}

// Fig. 2 / Section 4.1: area shrinks with precision; the double->single
// drop is larger than single->half (paper: 45% then 36% for MxM).
func TestAreaShrinksWithPrecision(t *testing.T) {
	luts := map[fp.Format]float64{}
	for _, f := range fp.Formats {
		luts[f] = mapMxM(t, f).Resources["LUT"]
	}
	if !(luts[fp.Double] > luts[fp.Single] && luts[fp.Single] > luts[fp.Half]) {
		t.Fatalf("LUTs not decreasing: %v", luts)
	}
	dropDS := 1 - luts[fp.Single]/luts[fp.Double]
	dropSH := 1 - luts[fp.Half]/luts[fp.Single]
	if dropDS < 0.30 || dropDS > 0.60 {
		t.Errorf("double->single LUT drop %.0f%%, paper reports ~45%%", 100*dropDS)
	}
	if dropSH < 0.20 || dropSH > 0.50 {
		t.Errorf("single->half LUT drop %.0f%%, paper reports ~36%%", 100*dropSH)
	}
}

// FIT on the FPGA tracks exposed area (Section 4.1): config exposure
// must decrease with precision.
func TestExposureTracksArea(t *testing.T) {
	var prev float64
	for _, f := range []fp.Format{fp.Half, fp.Single, fp.Double} {
		m := mapMxM(t, f)
		cfg := m.ExposureFor(arch.ConfigMemory)
		if cfg.Bits <= prev {
			t.Errorf("%v: config exposure %v not increasing with precision", f, cfg.Bits)
		}
		prev = cfg.Bits
	}
}

// Table 1 shape: double slowest; half slower than single (the LUT-mapped
// half multiplier costs clock rate).
func TestTimingShapeMatchesTable1(t *testing.T) {
	td := mapMxM(t, fp.Double).Time.Seconds()
	ts := mapMxM(t, fp.Single).Time.Seconds()
	th := mapMxM(t, fp.Half).Time.Seconds()
	if !(td > th && th > ts) {
		t.Fatalf("times (D,S,H) = (%v, %v, %v); want D > H > S as in Table 1", td, ts, th)
	}
	if r := td / ts; r < 1.2 || r > 1.45 {
		t.Errorf("double/single time ratio %.2f, paper's is 1.30", r)
	}
	if r := th / ts; r < 1.02 || r > 1.25 {
		t.Errorf("half/single time ratio %.2f, paper's is 1.10", r)
	}
}

// Paper-scale MxM double on the Zynq takes 2.73 s (Table 1); the model
// should land in that neighborhood.
func TestAbsoluteTimeNearTable1(t *testing.T) {
	td := mapMxM(t, fp.Double).Time.Seconds()
	if td < 1.8 || td > 3.8 {
		t.Errorf("modeled double MxM time %.2fs, Table 1 reports 2.73s", td)
	}
}

func TestNoDUEExposure(t *testing.T) {
	// The paper never observed a DUE on the FPGA; the model must not
	// include control-logic exposure.
	m := mapMxM(t, fp.Single)
	for _, e := range m.Exposures {
		if e.Class == arch.ControlLogic || e.DUEFraction > 0 {
			t.Errorf("FPGA mapping has DUE-capable exposure %+v", e)
		}
	}
}

func TestPersistentSemantics(t *testing.T) {
	m := mapMxM(t, fp.Single)
	if m.UnrollFactor == 0 {
		t.Error("FPGA mapping must set UnrollFactor for persistent faults")
	}
	cfg := m.ExposureFor(arch.ConfigMemory)
	if cfg.Bits <= 0 {
		t.Error("no config-memory exposure")
	}
	// Config strikes must target only operator kinds the kernel uses.
	for op, w := range cfg.OpWeights {
		if w > 0 && m.Counts.ByOp[op] == 0 {
			t.Errorf("op weight on unused kind %v", fp.Op(op))
		}
	}
}

func TestBRAMScalesWithData(t *testing.T) {
	d := New()
	small, err := d.Map(arch.NewWorkload(kernels.NewGEMM(16, 1), 1, 1), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	big, err := d.Map(arch.NewWorkload(kernels.NewGEMM(16, 1), 1, 64), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	rs := small.ExposureFor(arch.MemorySRAM).Bits
	rb := big.ExposureFor(arch.MemorySRAM).Bits
	if rb != 64*rs {
		t.Errorf("BRAM bits %v vs %v: DataScale not applied", rs, rb)
	}
}

func TestMNISTDesignLargerButFasterThanNothing(t *testing.T) {
	d := New()
	m, err := d.Map(arch.NewWorkload(kernels.NewMNIST(1, 7), 1, 1), fp.Single)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.UnrollFactor != 13 {
		t.Errorf("MNIST unroll = %d, want the calibrated 13", m.UnrollFactor)
	}
}

func TestUnknownKernelGetsDefaultDesign(t *testing.T) {
	d := New()
	m, err := d.Map(arch.NewWorkload(kernels.NewLUD(8, 3), 1, 1), fp.Half)
	if err != nil {
		t.Fatal(err)
	}
	if m.UnrollFactor != 4 {
		t.Errorf("default unroll = %d, want 4", m.UnrollFactor)
	}
}

func TestErrUnsupportedWrapping(t *testing.T) {
	// The FPGA supports everything, so fabricate the error path through
	// a bad format value.
	_, err := New().Map(arch.NewWorkload(kernels.NewGEMM(4, 1), 1, 1), fp.Format(9))
	if err == nil || !errors.Is(err, arch.ErrUnsupported) {
		t.Errorf("expected wrapped ErrUnsupported, got %v", err)
	}
}
