// Package fpga models the Xilinx Zynq-7000 the paper irradiates: an HLS
// synthesis cost model (LUT/DSP/BRAM per floating-point operator per
// precision), a configuration-memory exposure model with *persistent*
// fault semantics, and an analytic timing model.
//
// On an FPGA the same algorithm synthesized at different precisions
// yields the same circuit structure at different sizes, so the FIT rate
// tracks the exposed area almost linearly (paper Section 4). The model
// reproduces that: exposure is dominated by configuration bits, which
// scale with the LUT/DSP counts of the instantiated operators, which in
// turn scale with operand width — quadratically for multiplier arrays,
// roughly linearly for adders.
//
// Fault semantics: a configuration-memory strike corrupts one hardware
// operator instance until the device is reprogrammed. In a
// time-multiplexed datapath with U instances per operator kind, that
// means every U-th dynamic operation is corrupted identically — which is
// exactly what the injection layer's persistent (modulo) faults express.
// The paper reprograms after every observed error and never observed a
// DUE on the FPGA; the model does the same (no control-logic exposure).
package fpga

import (
	"fmt"
	"math"
	"time"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
)

// opCost is the synthesis cost of one pipelined operator instance.
type opCost struct {
	lut float64
	dsp float64
}

// operatorCosts approximates Xilinx floating-point operator resource
// usage per precision. Adder cost grows roughly linearly with width;
// multiplier cost tracks the significand-squared partial-product array,
// partially absorbed by DSP48 slices. Values are in the range of the
// Vivado FP operator datasheets for the 7 series.
var operatorCosts = map[fp.Op]map[fp.Format]opCost{
	fp.OpAdd: {
		fp.Double:   {lut: 750, dsp: 0},
		fp.Single:   {lut: 420, dsp: 0},
		fp.Half:     {lut: 230, dsp: 0},
		fp.BFloat16: {lut: 240, dsp: 0}, // wider exponent shifter than half
	},
	fp.OpSub: {
		fp.Double:   {lut: 750, dsp: 0},
		fp.Single:   {lut: 420, dsp: 0},
		fp.Half:     {lut: 230, dsp: 0},
		fp.BFloat16: {lut: 240, dsp: 0},
	},
	fp.OpMul: {
		fp.Double:   {lut: 550, dsp: 10},
		fp.Single:   {lut: 160, dsp: 3},
		fp.Half:     {lut: 120, dsp: 1},
		fp.BFloat16: {lut: 90, dsp: 1}, // 8x8 partial-product array
	},
	fp.OpDiv: {
		fp.Double:   {lut: 3100, dsp: 0},
		fp.Single:   {lut: 1400, dsp: 0},
		fp.Half:     {lut: 650, dsp: 0},
		fp.BFloat16: {lut: 520, dsp: 0},
	},
	fp.OpFMA: {
		fp.Double:   {lut: 1300, dsp: 10},
		fp.Single:   {lut: 580, dsp: 3},
		fp.Half:     {lut: 250, dsp: 1},
		fp.BFloat16: {lut: 230, dsp: 1},
	},
	fp.OpSqrt: {
		fp.Double:   {lut: 2600, dsp: 0},
		fp.Single:   {lut: 1100, dsp: 0},
		fp.Half:     {lut: 500, dsp: 0},
		fp.BFloat16: {lut: 430, dsp: 0},
	},
	fp.OpExp: {
		fp.Double:   {lut: 5200, dsp: 26},
		fp.Single:   {lut: 2300, dsp: 7},
		fp.Half:     {lut: 1000, dsp: 2},
		fp.BFloat16: {lut: 850, dsp: 2},
	},
}

// initiationInterval is the pipeline initiation interval per precision,
// normalized to single. Double's deeper carry/normalization chains cost
// ~30%; half maps its multiplier to LUT fabric instead of full DSP
// cascades, costing ~10% relative to single — which reproduces the
// paper's Table 1 observation that half MxM is *slower* than single on
// the Zynq.
var initiationInterval = map[fp.Format]float64{
	fp.Double:   1.30,
	fp.Single:   1.00,
	fp.Half:     1.10,
	fp.BFloat16: 1.05, // shallower multiplier than half, same width
}

// Synthesis constants.
const (
	controlLUTs       = 300   // AXI/FSM control logic, precision-independent
	configBitsPerLUT  = 220   // configuration bits per occupied LUT (incl. routing)
	configBitsPerDSP  = 1600  // configuration bits per DSP48 slice
	essentialFraction = 0.22  // share of config bits whose upset alters the circuit
	sigmaConfig       = 1.0   // per-bit cross-section, SRAM-like (a.u.)
	sigmaBRAM         = 1.0   // BRAM data bits, SRAM
	unitOpsPerSecond  = 1.0e6 // per-instance throughput at II=1 (AXI-streamed HLS design)
	totalLUTs         = 53200 // Zynq-7020 fabric size, for utilization reporting
	totalDSPs         = 220   //
	totalBRAMBits     = 4.9e6 //
)

// designPoint is the synthesizer's decision for a kernel family: how
// many instances of each operator the design instantiates, plus the
// precision-independent buffering/FSM fabric the design needs (line
// buffers and pooling control for the CNN).
type designPoint struct {
	unroll   uint64
	fixedLUT float64
}

// designPoints records the HLS parallelism chosen per workload, the one
// per-kernel calibration input of the model (the DSP budget drives it on
// the real toolchain). Unknown kernels get unroll 4.
var designPoints = map[string]designPoint{
	"MxM":     {unroll: 1},
	"MNIST":   {unroll: 13, fixedLUT: 3000},
	"Hotspot": {unroll: 8, fixedLUT: 1500}, // line-buffered stencil engine
}

// Device is the Zynq-7000 model. The zero value is not usable; call New.
type Device struct{}

// New returns the Zynq-7000 device model.
func New() *Device { return &Device{} }

// Name implements arch.Device.
func (d *Device) Name() string { return "Zynq-7000" }

// Supports implements arch.Device: the fabric implements any precision,
// including the bfloat16 extension format.
func (d *Device) Supports(f fp.Format) bool {
	return f == fp.Half || f == fp.Single || f == fp.Double || f == fp.BFloat16
}

// Map implements arch.Device.
func (d *Device) Map(w arch.Workload, f fp.Format) (*arch.Mapping, error) {
	if !d.Supports(f) {
		return nil, fmt.Errorf("%w: %s does not implement %v", arch.ErrUnsupported, d.Name(), f)
	}
	if w.Kernel == nil {
		return nil, fmt.Errorf("fpga: workload has no kernel")
	}
	opScale, dataScale := w.OpScale, w.DataScale
	if opScale <= 0 {
		opScale = 1
	}
	if dataScale <= 0 {
		dataScale = 1
	}
	art := exec.Artifact(w.Kernel, f, "", nil)
	counts := art.Counts
	total := counts.Total()
	if total == 0 {
		return nil, fmt.Errorf("fpga: kernel %s executes no operations", w.Kernel.Name())
	}

	dp, ok := designPoints[w.Kernel.Name()]
	if !ok {
		dp = designPoint{unroll: 4}
	}

	// Instantiate dp.unroll instances of every operator kind the kernel
	// uses, weighted down for kinds that are a tiny share of the
	// schedule (the HLS scheduler shares rare operators).
	var luts, dsps float64
	var opWeights [fp.NumOps]float64
	for op := fp.Op(0); int(op) < fp.NumOps; op++ {
		n := counts.ByOp[op]
		if n == 0 {
			continue
		}
		share := float64(n) / float64(total)
		instances := float64(dp.unroll)
		if share < 0.05 {
			instances = 1 // rare op: a single shared instance
		}
		c := operatorCosts[op][f]
		luts += instances * c.lut
		dsps += instances * c.dsp
		// Config strikes land on an operator kind proportionally to its
		// area.
		opWeights[op] = instances * (c.lut*configBitsPerLUT + c.dsp*configBitsPerDSP)
	}
	luts += controlLUTs + dp.fixedLUT

	// BRAM holds inputs and outputs at paper scale.
	var elems float64
	for _, n := range art.ArrayLens() {
		elems += float64(n)
	}
	elems += float64(len(art.GoldenBits()))
	bramBits := elems * dataScale * float64(f.Width())

	configBits := luts*configBitsPerLUT + dsps*configBitsPerDSP

	execSeconds := float64(total) * opScale * initiationInterval[f] /
		(float64(dp.unroll) * unitOpsPerSecond)

	m := &arch.Mapping{
		DeviceName:   d.Name(),
		Kernel:       w.Kernel,
		Format:       f,
		UnrollFactor: dp.unroll,
		Counts:       counts,
		Time:         time.Duration(execSeconds * float64(time.Second)),
		Exposures: []arch.Exposure{
			{
				Class:        arch.ConfigMemory,
				Bits:         configBits * essentialFraction,
				CrossSection: sigmaConfig,
				OpWeights:    opWeights,
			},
			{
				Class:        arch.MemorySRAM,
				Bits:         bramBits,
				CrossSection: sigmaBRAM,
			},
		},
		Resources: map[string]float64{
			"LUT":        math.Round(luts),
			"DSP":        math.Round(dsps),
			"BRAMbits":   math.Round(bramBits),
			"LUTpct":     100 * luts / totalLUTs,
			"DSPpct":     100 * dsps / totalDSPs,
			"BRAMpct":    100 * bramBits / totalBRAMBits,
			"configBits": math.Round(configBits),
		},
	}
	return m, nil
}
