// Package chaos is the fault-injection layer for the campaign engine's
// OWN infrastructure: where internal/inject corrupts the simulated
// workload, this package corrupts the simulator's checkpoint I/O and
// scheduling environment, so the crash-tolerance machinery (journal
// retries, degraded mode, torn-tail recovery, cancellation drains) is
// exercised by tests and the soak harness instead of trusted on faith.
//
// The package plugs into the exec.FS seam (exec.Checkpoint.FS) and is
// deliberately unreachable from production binaries: the chaos
// mixedrelvet analyzer proves that only this package, cmd/mixedrelstress
// and test files import it. Everything here is deterministic in a seed —
// the n-th filesystem operation trips a fault iff a pure function of
// (seed, op kind, n) says so — because a soak failure is only useful if
// the exact round that produced it can be replayed.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"

	"mixedrel/internal/exec"
	"mixedrel/internal/rng"
)

// ErrInjected is the base cause of every fault this package raises
// (errors.Is-matchable), other than ErrNoSpace.
var ErrInjected = errors.New("chaos: injected I/O error")

// ErrNoSpace is the injected out-of-space condition — the portable
// stand-in for ENOSPC, raised when a write runs past FS.SpaceBudget.
var ErrNoSpace = errors.New("chaos: injected no-space condition")

// Op identifies the kind of filesystem operation a fault landed on.
type Op int

const (
	OpWrite Op = iota
	OpShortWrite
	OpSync
	OpOpen
	OpCreate
	OpRename
	opCount
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpShortWrite:
		return "short-write"
	case OpSync:
		return "sync"
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	}
	return "op?"
}

// Stats counts the faults an FS injected, by kind.
type Stats struct {
	Ops    int64 // total operations observed (faulted or not)
	Writes int64 // full write failures
	Shorts int64 // short writes (partial payload + error)
	Syncs  int64 // sync failures
	Opens  int64 // open/create failures
	Renames int64 // rename failures
	Space  int64 // writes rejected by the space budget
}

// Total returns the number of injected faults.
func (s Stats) Total() int64 {
	return s.Writes + s.Shorts + s.Syncs + s.Opens + s.Renames + s.Space
}

// FS is a fault-injecting exec.FS: it forwards every operation to Inner
// and, with the configured per-operation probabilities, fails it
// instead. Decisions are seed-addressed — operation number n of kind op
// faults iff rng.New(Seed ^ mix(op, n)) draws below the probability —
// so a given (Seed, probabilities, operation sequence) always injects
// the same faults. The journal serializes its I/O under a mutex, which
// makes the operation sequence itself deterministic for a fixed
// campaign.
//
// The zero probabilities (or Disarmed) make FS a pure pass-through;
// the bench-chaos gate uses exactly that to price the seam's
// indirection with the faults turned off.
type FS struct {
	// Inner is the real filesystem underneath (required). Soak rounds
	// back it with a *NullFS so injected damage never touches disk.
	Inner exec.FS
	// Seed addresses the fault decisions.
	Seed uint64
	// Fault probabilities in [0, 1], evaluated independently per
	// operation: full write failures (nothing written), short writes
	// (half the payload lands, then an error — a torn tail), sync
	// failures (data written but durability denied), open/create
	// failures, and rename failures (compaction commit denied).
	PWrite, PShortWrite, PSync, POpen, PRename float64
	// SpaceBudget, when positive, bounds the total bytes Inner accepts
	// through this FS: a write that would exceed it lands only the
	// remaining budget and fails with ErrNoSpace — persistently, like a
	// full disk, until a fresh FS (a "cleanup") replaces this one.
	SpaceBudget int64
	// Disarmed turns every fault off while keeping the wrapper in the
	// call path (overhead measurement).
	Disarmed bool
	// OnOp, when non-nil, observes every operation before it executes
	// (n is the 1-based global operation number). Soak rounds use it to
	// fire cancellations at a chosen depth into the I/O stream. It runs
	// under the journal's lock — keep it trivial.
	OnOp func(n int64, op Op)

	n     atomic.Int64
	used  atomic.Int64
	stats [opCount]atomic.Int64
	space atomic.Int64
}

// Stats snapshots the faults injected so far.
func (c *FS) Stats() Stats {
	return Stats{
		Ops:     c.n.Load(),
		Writes:  c.stats[OpWrite].Load(),
		Shorts:  c.stats[OpShortWrite].Load(),
		Syncs:   c.stats[OpSync].Load(),
		Opens:   c.stats[OpOpen].Load() + c.stats[OpCreate].Load(),
		Renames: c.stats[OpRename].Load(),
		Space:   c.space.Load(),
	}
}

// trip advances the operation counter and decides whether operation op
// faults. The decision depends only on (Seed, op, n).
func (c *FS) trip(op Op, p float64) bool {
	n := c.n.Add(1)
	if c.OnOp != nil {
		c.OnOp(n, op)
	}
	if c.Disarmed || p <= 0 {
		return false
	}
	// splitmix-style address: fold the op kind into the high bits so
	// the same operation number draws independently per kind.
	r := rng.New(c.Seed ^ uint64(op)<<56 ^ uint64(n)*0x9e3779b97f4a7c15)
	if r.Float64() >= p {
		return false
	}
	c.stats[op].Add(1)
	return true
}

func (c *FS) injected(op Op) error {
	return fmt.Errorf("chaos: %s fault (op %d): %w", op, c.n.Load(), ErrInjected)
}

// ReadFile passes through: journal loads are not a fault site (a
// campaign that cannot read its journal simply restarts, which the
// torn-tail tests cover directly).
func (c *FS) ReadFile(path string) ([]byte, error) { return c.Inner.ReadFile(path) }

// MkdirAll passes through.
func (c *FS) MkdirAll(path string, perm os.FileMode) error { return c.Inner.MkdirAll(path, perm) }

// OpenAppend opens the underlying file, or fails by injection.
func (c *FS) OpenAppend(path string) (exec.File, error) {
	if c.trip(OpOpen, c.POpen) {
		return nil, c.injected(OpOpen)
	}
	f, err := c.Inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

// Create opens the compaction scratch file, or fails by injection.
func (c *FS) Create(path string) (exec.File, error) {
	if c.trip(OpCreate, c.POpen) {
		return nil, c.injected(OpCreate)
	}
	f, err := c.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

// Rename commits the compaction, or fails by injection (leaving the
// scratch file for Remove, exactly like a crash between write and
// rename).
func (c *FS) Rename(oldpath, newpath string) error {
	if c.trip(OpRename, c.PRename) {
		return c.injected(OpRename)
	}
	return c.Inner.Rename(oldpath, newpath)
}

// Remove passes through (cleanup is best-effort everywhere already).
func (c *FS) Remove(path string) error { return c.Inner.Remove(path) }

// chaosFile wraps one open handle of the inner FS.
type chaosFile struct {
	fs *FS
	f  exec.File
}

// Write lands p on the inner file, subject to the space budget and the
// write/short-write faults. A short write forwards the first half of
// the payload — a torn line the journal must recover from — and a
// budget overrun lands only the remaining budget before failing with
// ErrNoSpace, persistently.
func (w *chaosFile) Write(p []byte) (int, error) {
	c := w.fs
	if !c.Disarmed && c.SpaceBudget > 0 {
		rest := c.SpaceBudget - c.used.Load()
		if int64(len(p)) > rest {
			c.n.Add(1)
			c.space.Add(1)
			if rest < 0 {
				rest = 0
			}
			n, _ := w.f.Write(p[:rest])
			c.used.Add(int64(n))
			return n, fmt.Errorf("chaos: write of %d bytes exceeds space budget: %w", len(p), ErrNoSpace)
		}
	}
	if c.trip(OpShortWrite, c.PShortWrite) && len(p) > 1 {
		n, err := w.f.Write(p[: len(p)/2 : len(p)/2])
		c.used.Add(int64(n))
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos: short write %d/%d: %w", n, len(p), ErrInjected)
	}
	if c.trip(OpWrite, c.PWrite) {
		return 0, c.injected(OpWrite)
	}
	n, err := w.f.Write(p)
	c.used.Add(int64(n))
	return n, err
}

// Sync denies durability by injection, else forwards.
func (w *chaosFile) Sync() error {
	c := w.fs
	if c.trip(OpSync, c.PSync) {
		return c.injected(OpSync)
	}
	return w.f.Sync()
}

// Close always forwards: close failures add nothing the sync and write
// faults do not already cover, and a journal that cannot even close
// would mask which fault actually degraded it.
func (w *chaosFile) Close() error { return w.f.Close() }
