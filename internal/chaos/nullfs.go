package chaos

import (
	"fmt"
	"os"
	"sync"

	"mixedrel/internal/exec"
)

// NullFS is an in-memory exec.FS: files are byte slices in a map, Sync
// is free, and nothing touches the real disk. It serves two roles —
// the persistent "disk" underneath a soak round's chaos FS (so a round
// can kill and resume a campaign hundreds of times without filesystem
// overhead or cleanup), and the backing store of the bench-chaos gate
// (where a real fsync would swamp the sub-1% seam cost being measured).
// It is safe for concurrent use.
type NullFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewNullFS returns an empty in-memory filesystem.
func NewNullFS() *NullFS {
	return &NullFS{files: make(map[string][]byte)}
}

// Bytes returns a copy of path's current contents and whether it
// exists — the soak harness's window into what "survived the crash".
func (m *NullFS) Bytes(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Truncate cuts path down to n bytes if it is longer — the soak
// harness's torn-tail injector, simulating a kill mid-write below even
// the chaos FS (damage the journal bytes directly).
func (m *NullFS) Truncate(path string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.files[path]; ok && len(b) > n {
		m.files[path] = b[:n]
	}
}

func (m *NullFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("nullfs: %s: %w", path, os.ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

func (m *NullFS) MkdirAll(path string, perm os.FileMode) error { return nil }

func (m *NullFS) OpenAppend(path string) (exec.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		m.files[path] = nil
	}
	return &memFile{fs: m, path: path}, nil
}

func (m *NullFS) Create(path string) (exec.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = nil
	return &memFile{fs: m, path: path}, nil
}

func (m *NullFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("nullfs: rename %s: %w", oldpath, os.ErrNotExist)
	}
	m.files[newpath] = b
	delete(m.files, oldpath)
	return nil
}

func (m *NullFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("nullfs: remove %s: %w", path, os.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

// memFile is an append handle into a NullFS entry. A handle left open
// across a Create of the same path keeps appending to the new entry —
// close enough to POSIX for the journal, which never does that.
type memFile struct {
	fs     *NullFS
	path   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("nullfs: write to closed file %s", f.path)
	}
	f.fs.files[f.path] = append(f.fs.files[f.path], p...)
	return len(p), nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
