package chaos

import (
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// Panicky wraps a kernel with a tripwire that panics whenever its
// inputs were corrupted — the soak harness's stand-in for a simulator
// bug surfacing in some samples of a campaign. Memory-fault samples
// trip it (their inputs are mutated before Run); operand- and
// operation-fault samples pass through and classify normally, so a
// panicky campaign exercises exec.Guard's abort isolation and the
// aborted-sample accounting in the same run that produces real
// classifications.
//
// Key returns "" to opt out of the fault-free artifact cache: the
// wrapper must re-run its golden (which passes — inputs are pristine
// there) rather than share cached artifacts with the clean kernel.
type Panicky struct{ Kernel kernels.Kernel }

func (p Panicky) Name() string { return p.Kernel.Name() + "+panicky" }

func (p Panicky) Key() string { return "" }

func (p Panicky) Inputs(f fp.Format) [][]fp.Bits { return p.Kernel.Inputs(f) }

func (p Panicky) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	pristine := p.Kernel.Inputs(env.Format())
	for a := range in {
		for i := range in[a] {
			if in[a][i] != pristine[a][i] {
				panic("chaos: panicky kernel saw corrupted input")
			}
		}
	}
	return p.Kernel.Run(env, in)
}
