package chaos

import (
	"strings"
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// TestSoakBounded: a short soak across all scenarios must pass; this is
// the in-tree guarantee that `make stress` starts from green. The full
// harness (cmd/mixedrelstress) runs many more rounds.
func TestSoakBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 12
	if testing.Short() {
		cfg.Rounds = 5
	}
	var log strings.Builder
	cfg.Log = &log
	res, err := Soak(cfg)
	if err != nil {
		t.Fatalf("%v\nlog so far:\n%s", err, log.String())
	}
	if res.Rounds != cfg.Rounds {
		t.Fatalf("completed %d of %d rounds", res.Rounds, cfg.Rounds)
	}
	// The soak only means something if adversity actually happened.
	if res.Kills+res.Cancels == 0 {
		t.Fatalf("no interruptions across %d rounds:\n%s", res.Rounds, log.String())
	}
	if res.Attempts <= res.Rounds {
		t.Fatalf("%d attempts over %d rounds: nothing resumed", res.Attempts, res.Rounds)
	}
}

// TestSoakDeterministicScenarios: the same seed replays the same rounds
// (the property that makes a soak failure debuggable).
func TestSoakDeterministicScenarios(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		cfg.Rounds = 4
		cfg.Faults = 24
		cfg.Seed = 42
		var log strings.Builder
		cfg.Log = &log
		if _, err := Soak(cfg); err != nil {
			t.Fatal(err)
		}
		return log.String()
	}
	a, b := run(), run()
	// Cancel rounds race the context against the drain, so attempt
	// counts can differ; scenario selection and pass/fail must not.
	trim := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if i := strings.Index(line, " attempts="); i >= 0 {
				out = append(out, line[:i])
			}
		}
		return out
	}
	ta, tb := trim(a), trim(b)
	if strings.Join(ta, ";") != strings.Join(tb, ";") {
		t.Fatalf("scenario sequence not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestSoakRejectsUnderspecifiedConfig.
func TestSoakRejectsUnderspecifiedConfig(t *testing.T) {
	if _, err := Soak(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Soak(Config{Kernel: kernels.NewGEMM(4, 1), Format: fp.Single, Faults: 10}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestPanickyGolden: the tripwire kernel must pass its fault-free run
// (pristine inputs) — otherwise every campaign would die in the golden
// phase instead of isolating per-sample aborts.
func TestPanickyGolden(t *testing.T) {
	k := Panicky{kernels.NewGEMM(4, 1)}
	if k.Key() != "" {
		t.Fatalf("panicky kernel advertises cache key %q", k.Key())
	}
	env := fp.NewMachine(fp.Single)
	out := k.Run(env, k.Inputs(fp.Single))
	if len(out) == 0 {
		t.Fatal("golden run produced no output")
	}
}
