package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
)

// Config parameterizes a soak run. The zero value is not runnable; use
// DefaultConfig for the standard harness shape.
type Config struct {
	// Kernel is the workload under campaign (DefaultConfig: a small
	// GEMM — big enough to classify interestingly, small enough that a
	// round's hundreds of campaign invocations stay fast).
	Kernel kernels.Kernel
	Format fp.Format
	// Faults is the per-campaign fault budget.
	Faults int
	// Rounds is how many independent chaos rounds to run.
	Rounds int
	// Seed addresses everything: round scenarios, campaign seeds,
	// fault-injection decisions, kill points.
	Seed uint64
	// Workers is the campaign worker count (high by default: the soak
	// exists to catch interleaving bugs, so it wants real concurrency).
	Workers int
	// Log, when non-nil, receives one line per round.
	Log io.Writer
}

// DefaultConfig is the standard soak shape used by cmd/mixedrelstress.
func DefaultConfig() Config {
	return Config{
		Kernel:  kernels.NewGEMM(8, 1),
		Format:  fp.Single,
		Faults:  48,
		Rounds:  20,
		Seed:    1,
		Workers: 8,
	}
}

// Result aggregates what a soak run survived.
type Result struct {
	// Rounds completed; Attempts is the total number of campaign
	// invocations across them (each round resumes until complete).
	Rounds, Attempts int
	// Kills counts invocations stopped by a deterministic interruption
	// (Checkpoint.Limit, i.e. a simulated crash); Cancels counts
	// context cancellations; Degraded counts campaigns that finished
	// with checkpointing disabled by injected I/O failure; Truncations
	// counts journals whose tail was torn off between invocations.
	Kills, Cancels, Degraded, Truncations int
	// FaultsInjected is the total number of I/O faults the chaos FS
	// raised across all rounds.
	FaultsInjected int64
	// AbortedSamples counts samples isolated by exec.Guard across all
	// final results (panicky-kernel rounds produce them by design).
	AbortedSamples int
}

func (r *Result) String() string {
	return fmt.Sprintf("%d rounds, %d attempts: %d kills, %d cancels, %d truncations, %d degraded, %d io faults, %d aborted samples",
		r.Rounds, r.Attempts, r.Kills, r.Cancels, r.Truncations, r.Degraded, r.FaultsInjected, r.AbortedSamples)
}

// Soak runs cfg.Rounds chaos rounds. Each round fixes one campaign
// configuration, computes its reference result with a clean
// uninterrupted run, then executes the same campaign under injected
// adversity — simulated crashes (deterministic Limit kills), torn
// journal tails, transient and persistent checkpoint I/O failures,
// context cancellations, and Guard-isolated kernel panics — resuming
// from the surviving journal until the campaign completes. A round
// passes only if the final result is byte-identical to the reference
// (modulo the CheckpointDegraded/CheckpointError infrastructure flags)
// and every sample is accounted for. The first failing round aborts
// the soak with a replayable diagnosis (round index + config seed).
func Soak(cfg Config) (*Result, error) {
	if cfg.Kernel == nil || cfg.Faults <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("chaos: underspecified soak config")
	}
	if cfg.Workers <= 1 {
		cfg.Workers = 2 // per-sample streams: the mode checkpoints resume in
	}
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		rr := rng.New(cfg.Seed ^ uint64(round)*0x9e3779b97f4a7c15)
		if err := runRound(cfg, round, rr, res); err != nil {
			return res, fmt.Errorf("chaos: round %d (soak seed %d): %w", round, cfg.Seed, err)
		}
		res.Rounds++
	}
	return res, nil
}

// Round scenarios. Every scenario also mixes in Limit kills where noted,
// so resume paths are always exercised.
const (
	scenarioKill    = iota // Limit kills + occasional torn-tail truncation
	scenarioIO             // short writes, write/sync/rename faults, retries
	scenarioNoSpace        // byte budget exhausts: journal must degrade
	scenarioCancel         // context cancelled mid-campaign, then resumed
	scenarioPanic          // panicky kernel: Guard-isolated sample aborts
	numScenarios
)

func scenarioName(s int) string {
	switch s {
	case scenarioKill:
		return "kill"
	case scenarioIO:
		return "io"
	case scenarioNoSpace:
		return "nospace"
	case scenarioCancel:
		return "cancel"
	case scenarioPanic:
		return "panic"
	}
	return "scenario?"
}

func runRound(cfg Config, round int, rr *rng.Rand, res *Result) error {
	scenario := rr.Intn(numScenarios)

	base := inject.Campaign{
		Kernel:  cfg.Kernel,
		Format:  cfg.Format,
		Faults:  cfg.Faults,
		Seed:    rr.Uint64(),
		Workers: cfg.Workers,
		Sites:   []inject.Site{inject.SiteOperand, inject.SiteMemory},
	}
	switch {
	case scenario == scenarioPanic:
		// Memory faults trip the panicky tripwire; operand faults
		// classify normally, so the round mixes aborts and real outcomes.
		base.Kernel = Panicky{cfg.Kernel}
	case rr.Intn(3) == 0:
		// A third of non-panic rounds add control faults, arming the
		// watchdog and the Guard DUE paths under chaos.
		base.Sites = append(base.Sites, inject.SiteControl)
	}

	ref, err := base.Run()
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	want, err := normalize(ref)
	if err != nil {
		return err
	}

	disk := NewNullFS()
	const path = "soak.jsonl"
	maxAttempts := 60 + 4*cfg.Faults
	attempts, kills, cancels, truncs := 0, 0, 0, 0
	var degraded bool
	var injected int64
	var final *inject.Result

	for final == nil {
		if attempts++; attempts > maxAttempts {
			return fmt.Errorf("no convergence after %d attempts (scenario %s)", maxAttempts, scenarioName(scenario))
		}
		c := base
		ck := exec.Checkpoint{
			Path:         path,
			Every:        1 + rr.Intn(4),
			FS:           disk,
			RetryBackoff: -1, // injected faults are not worth sleeping on
		}
		var cancel context.CancelFunc

		switch scenario {
		case scenarioKill, scenarioPanic:
			ck.Limit = 1 + rr.Intn(1+cfg.Faults/3)
		case scenarioIO:
			ck.Limit = 1 + rr.Intn(1+cfg.Faults/2)
			ck.FS = &FS{
				Inner:       disk,
				Seed:        rr.Uint64(),
				PWrite:      0.05,
				PShortWrite: 0.20,
				PSync:       0.10,
				PRename:     0.30,
			}
		case scenarioNoSpace:
			// A budget well below the journal's full size: the journal
			// must degrade, and the campaign must still complete.
			ck.FS = &FS{
				Inner:       disk,
				Seed:        rr.Uint64(),
				SpaceBudget: int64(64 + rr.Intn(512)),
			}
			ck.Retries = -1
		case scenarioCancel:
			// Fire the cancellation a growing number of I/O operations
			// into the run, so early attempts interrupt and later ones
			// are guaranteed to complete.
			fireAt := int64(2 + 3*attempts + rr.Intn(8))
			ctx, cfn := context.WithCancel(context.Background())
			cancel = cfn
			ck.Every = 1
			ck.FS = &FS{Inner: disk, OnOp: func(n int64, _ Op) {
				if n == fireAt {
					cfn()
				}
			}}
			c.Context = ctx
		}
		c.Checkpoint = &ck

		got, err := c.Run()
		if cancel != nil {
			cancel()
		}
		if cfs, ok := ck.FS.(*FS); ok {
			injected += cfs.Stats().Total()
		}
		switch {
		case err == nil:
			final = got
		case errors.Is(err, exec.ErrPartial):
			kills++
			if rr.Intn(3) == 0 {
				// Simulated kill mid-write: tear bytes off the journal
				// tail. Torn records simply re-run on resume.
				if b, ok := disk.Bytes(path); ok && len(b) > 0 {
					disk.Truncate(path, len(b)-rr.Intn(min(len(b), 20)+1))
					truncs++
				}
			}
		case errors.Is(err, exec.ErrInterrupted):
			var in *exec.Interrupted
			if !errors.As(err, &in) {
				return fmt.Errorf("ErrInterrupted not an *exec.Interrupted: %v", err)
			}
			if in.Journaled < 0 {
				return fmt.Errorf("checkpointed interruption lost its journal count: %v", err)
			}
			cancels++
		default:
			return fmt.Errorf("attempt %d (scenario %s): %w", attempts, scenarioName(scenario), err)
		}
	}

	if final.CheckpointDegraded {
		degraded = true
	}
	if scenario == scenarioNoSpace && !final.CheckpointDegraded {
		return fmt.Errorf("nospace round finished undegraded (budget never hit?)")
	}
	if scenario == scenarioPanic && len(final.Aborted) == 0 {
		return fmt.Errorf("panic round produced no Guard-isolated aborts")
	}
	// Zero unaccounted samples: every sample is classified or aborted.
	if got := final.SDCs + final.Masked + final.CrashDUEs + final.HangDUEs + len(final.Aborted); got != final.Faults {
		return fmt.Errorf("sample accounting: %d classified+aborted of %d faults", got, final.Faults)
	}
	have, err := normalize(final)
	if err != nil {
		return err
	}
	if have != want {
		return fmt.Errorf("scenario %s: final result diverges from reference after %d attempts\n got: %s\nwant: %s",
			scenarioName(scenario), attempts, have, want)
	}

	res.Attempts += attempts
	res.Kills += kills
	res.Cancels += cancels
	res.Truncations += truncs
	res.FaultsInjected += injected
	res.AbortedSamples += len(final.Aborted)
	if degraded {
		res.Degraded++
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "round %d: scenario=%s attempts=%d kills=%d cancels=%d truncations=%d iofaults=%d degraded=%v aborted=%d ok\n",
			round, scenarioName(scenario), attempts, kills, cancels, truncs, injected, degraded, len(final.Aborted))
	}
	return nil
}

// normalize renders a campaign result for byte-identity comparison,
// clearing the infrastructure-status fields that legitimately differ
// between a clean run and a chaos-degraded one.
func normalize(r *inject.Result) (string, error) {
	cp := *r
	cp.CheckpointDegraded = false
	cp.CheckpointError = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", fmt.Errorf("chaos: encoding result: %w", err)
	}
	return string(b), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
