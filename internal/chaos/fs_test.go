package chaos

import (
	"errors"
	"os"
	"strings"
	"testing"

	"mixedrel/internal/exec"
)

// TestNullFSBasics: the in-memory FS honors the exec.FS contract the
// journal relies on (append semantics, truncate-on-create, rename,
// not-exist errors).
func TestNullFSBasics(t *testing.T) {
	m := NewNullFS()
	if _, err := m.ReadFile("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile missing: %v", err)
	}
	f, err := m.OpenAppend("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
	// Append mode: a second handle extends, Create truncates.
	f2, _ := m.OpenAppend("a")
	f2.Write([]byte("two\n"))
	f2.Close()
	b, err := m.ReadFile("a")
	if err != nil || string(b) != "one\ntwo\n" {
		t.Fatalf("appended contents %q, %v", b, err)
	}
	f3, _ := m.Create("a")
	f3.Write([]byte("fresh"))
	f3.Close()
	if b, _ := m.ReadFile("a"); string(b) != "fresh" {
		t.Fatalf("create did not truncate: %q", b)
	}
	if err := m.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename left the old path")
	}
	if b, _ := m.ReadFile("b"); string(b) != "fresh" {
		t.Fatalf("rename lost contents: %q", b)
	}
	m.Truncate("b", 2)
	if b, _ := m.ReadFile("b"); string(b) != "fr" {
		t.Fatalf("truncate: %q", b)
	}
	if err := m.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

// TestChaosFSDeterminism: the same seed and operation sequence injects
// the same faults; a different seed (almost surely) does not.
func TestChaosFSDeterminism(t *testing.T) {
	run := func(seed uint64) []string {
		c := &FS{Inner: NewNullFS(), Seed: seed, PWrite: 0.3, PSync: 0.3}
		f, err := c.OpenAppend("j")
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		for i := 0; i < 40; i++ {
			if _, err := f.Write([]byte("line\n")); err != nil {
				log = append(log, "w")
			}
			if err := f.Sync(); err != nil {
				log = append(log, "s")
			}
		}
		return log
	}
	a, b := run(7), run(7)
	if strings.Join(a, "") != strings.Join(b, "") {
		t.Fatalf("same seed, different faults: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.3")
	}
	if c := run(8); strings.Join(a, "") == strings.Join(c, "") {
		t.Fatalf("different seeds, identical fault sequence %v", a)
	}
}

// TestChaosFSDisarmed: a disarmed FS is a pure pass-through even with
// probabilities and budget set.
func TestChaosFSDisarmed(t *testing.T) {
	inner := NewNullFS()
	c := &FS{Inner: inner, Seed: 1, PWrite: 1, PSync: 1, PRename: 1,
		POpen: 1, PShortWrite: 1, SpaceBudget: 1, Disarmed: true}
	f, err := c.OpenAppend("j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload that exceeds the budget")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("j", "k"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Total(); got != 0 {
		t.Fatalf("disarmed FS injected %d faults", got)
	}
	if b, _ := inner.ReadFile("k"); len(b) == 0 {
		t.Fatal("disarmed write did not land")
	}
}

// TestChaosFSShortWrite: a short write lands a prefix and reports
// ErrInjected, leaving a torn tail the journal must handle.
func TestChaosFSShortWrite(t *testing.T) {
	inner := NewNullFS()
	c := &FS{Inner: inner, Seed: 3, PShortWrite: 1}
	f, _ := c.OpenAppend("j")
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error %v", err)
	}
	if n == 0 || n >= len(payload) {
		t.Fatalf("short write landed %d of %d bytes", n, len(payload))
	}
	if b, _ := inner.ReadFile("j"); len(b) != n {
		t.Fatalf("inner holds %d bytes, reported %d", len(b), n)
	}
	if c.Stats().Shorts != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

// TestChaosFSSpaceBudget: writes past the budget land the remainder
// and fail with ErrNoSpace, persistently.
func TestChaosFSSpaceBudget(t *testing.T) {
	inner := NewNullFS()
	c := &FS{Inner: inner, Seed: 1, SpaceBudget: 8}
	f, _ := c.OpenAppend("j")
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("within-budget write: %v", err)
	}
	n, err := f.Write([]byte("overflow"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget write: %v", err)
	}
	if n != 0 {
		t.Fatalf("over-budget write landed %d bytes past a full budget", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("no-space not persistent: %v", err)
	}
	if c.Stats().Space != 2 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

// TestChaosFSOnOp: the hook observes every operation in order.
func TestChaosFSOnOp(t *testing.T) {
	var seen []int64
	c := &FS{Inner: NewNullFS(), OnOp: func(n int64, op Op) { seen = append(seen, n) }}
	f, _ := c.OpenAppend("j")
	f.Write([]byte("a"))
	f.Sync()
	c.Rename("j", "k")
	for i, n := range seen {
		if n != int64(i+1) {
			t.Fatalf("op numbers %v not sequential", seen)
		}
	}
	// One Write draws twice (short-write, then full-write decision), so
	// the sequence is open, short, write, sync, rename.
	if len(seen) != 5 {
		t.Fatalf("observed %d ops, want 5 (%v)", len(seen), seen)
	}
}

// TestJournalDegradesUnderChaos: a checkpoint backed by an
// always-failing FS degrades instead of failing the campaign's Record
// calls, and reports the state.
func TestJournalDegradesUnderChaos(t *testing.T) {
	ck := exec.Checkpoint{
		Path:         "j",
		Every:        1,
		Retries:      -1,
		RetryBackoff: -1,
		FS:           &FS{Inner: NewNullFS(), Seed: 1, PSync: 1},
	}
	j, err := ck.Open()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(i, i); err != nil {
			t.Fatalf("Record(%d) surfaced an I/O error: %v", i, err)
		}
	}
	if deg, derr := j.Degraded(); !deg || !errors.Is(derr, ErrInjected) {
		t.Fatalf("degraded=%v err=%v", deg, derr)
	}
	// In-memory view still complete: the campaign can aggregate.
	for i := 0; i < 3; i++ {
		if _, ok := j.Done(i); !ok {
			t.Fatalf("record %d lost from the in-memory map", i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close after degrade: %v", err)
	}
}

// TestJournalRecoversFromTransientChaos: with retries enabled, a
// sub-persistent fault rate is absorbed and every record becomes
// durable.
func TestJournalRecoversFromTransientChaos(t *testing.T) {
	inner := NewNullFS()
	cfs := &FS{Inner: inner, Seed: 11, PSync: 0.3, PWrite: 0.2, PShortWrite: 0.2}
	ck := exec.Checkpoint{Path: "j", Every: 1, Retries: 8, RetryBackoff: -1, FS: cfs}
	j, err := ck.Open()
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := j.Record(i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if deg, derr := j.Degraded(); deg {
		t.Fatalf("journal degraded under transient faults: %v", derr)
	}
	if cfs.Stats().Total() == 0 {
		t.Fatal("no faults injected; test proves nothing")
	}
	// Reload through a clean FS: every record must have survived,
	// including any duplicated by torn-tail rewrites.
	j2, err := exec.Checkpoint{Path: "j", FS: inner}.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("reloaded %d of %d records", j2.Len(), n)
	}
	for i := 0; i < n; i++ {
		raw, ok := j2.Done(i)
		if !ok {
			t.Fatalf("record %d missing after reload", i)
		}
		if want := []byte("null"); i*i == 0 && string(raw) == string(want) {
			t.Fatalf("record %d decoded to null", i)
		}
	}
}
