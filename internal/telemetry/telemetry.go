// Package telemetry is the simulator's observability layer: atomic
// counters and gauges, bounded duration histograms, a structured JSONL
// event sink, a live stderr progress renderer, and profiling hooks
// (net/http/pprof, runtime/trace). It is the substrate a campaign
// server (cmd/mixedreld, ROADMAP item 1) will stream to clients.
//
// Determinism boundary. The campaign engine guarantees results that are
// a pure function of the campaign seed; telemetry deliberately is not —
// it reads wall clocks, observes scheduling, and emits events in
// arrival order. The two coexist under one rule, enforced by the
// `telemetry` mixedrelvet analyzer: telemetry is OBSERVE-ONLY. Any
// package may write into it (counters, events, progress), but nothing
// read back out of it may flow into campaign results — not into a
// kernel's Run path, not into internal/report's rendered artifacts, and
// not into checkpoint journals. Instrumentation on
// //mixedrelvet:hotpath functions is restricted further: hot paths
// accumulate plain struct fields and flush to telemetry outside the hot
// loop, so the hotalloc guarantee (and the <2% campaign overhead
// budget) survives.
//
// Counters and gauges are always live: an atomic add is cheap enough to
// leave unconditional, and it keeps process-wide statistics (cache hit
// rates, panic counts) available to any consumer at any time. Everything
// that costs more — wall-clock reads, event encoding, progress
// rendering — is gated: Clock returns 0 and Emit/Progressf return
// immediately unless the corresponding facility was enabled.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates the wall-clock-reading facilities (Clock, and through
// it every histogram timing site). Counters ignore it.
var enabled atomic.Bool

// SetEnabled turns the timing facilities on or off. CLIs enable it when
// any telemetry output (-telemetry, -progress, -pprof) is requested.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the timing facilities are on.
func Enabled() bool { return enabled.Load() }

// Clock returns a wall-clock timestamp in nanoseconds for duration
// measurement, or 0 when telemetry is disabled — the zero is the "do
// not time this" sentinel ObserveSince understands, so instrumentation
// sites pay one atomic load and no clock read on the disabled path.
func Clock() int64 {
	if !enabled.Load() {
		return 0
	}
	//mixedrelvet:allow determinism telemetry is observe-only; the analyzer suite proves clock values never reach campaign results
	return time.Now().UnixNano()
}

// registry holds every metric in creation order; Snapshot sorts by name
// so rendered output never depends on init order.
var (
	regMu      sync.Mutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
)

// Counter is a monotonically increasing atomic counter. Create one per
// package with NewCounter at var-init time; Add/Inc are safe for
// concurrent use and never allocate.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter registers and returns a counter. name must be a valid
// event field name (lowercase letters, digits, underscores).
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	regMu.Lock()
	counters = append(counters, c)
	regMu.Unlock()
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic level with a high-water mark: Add moves the level
// and records the peak, which is how scheduler occupancy is observed
// without sampling.
type Gauge struct {
	name string
	v    atomic.Int64
	peak atomic.Int64
}

// NewGauge registers and returns a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	regMu.Lock()
	gauges = append(gauges, g)
	regMu.Unlock()
	return g
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Add moves the level by delta (negative to decrement) and updates the
// high-water mark.
func (g *Gauge) Add(delta int64) {
	now := g.v.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		p := g.peak.Load()
		if now <= p || g.peak.CompareAndSwap(p, now) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// histBuckets is one bucket per power-of-two nanosecond magnitude:
// bucket i counts observations with 2^(i-1) <= d < 2^i ns (bucket 0 is
// d == 0). 64 buckets bound the histogram for any int64 duration.
const histBuckets = 64

// Histogram is a bounded log2-bucketed duration histogram. Observe is
// one atomic add per bucket/count/sum — cheap enough for per-fsync
// granularity, and allocation-free.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram registers and returns a duration histogram (unit:
// nanoseconds).
func NewHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	regMu.Lock()
	histograms = append(histograms, h)
	regMu.Unlock()
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records a duration in nanoseconds (negative values clamp to
// zero).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// ObserveSince records the duration since a Clock() timestamp. A zero
// start — Clock's disabled sentinel — is a no-op, so callers need no
// enabled check of their own.
func (h *Histogram) ObserveSince(start int64) {
	if start == 0 {
		return
	}
	h.Observe(Clock() - start)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Buckets returns the bucket counts up to and including the last
// non-zero bucket.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, 0, histBuckets)
	last := -1
	for i := range h.buckets {
		v := h.buckets[i].Load()
		out = append(out, v)
		if v != 0 {
			last = i
		}
	}
	return out[:last+1]
}

// MetricValue is one scalar metric reading in a Snapshot.
type MetricValue struct {
	Name  string
	Value uint64
}

// Snapshot returns every counter and gauge reading, name-sorted; gauges
// contribute their current level and a <name>_peak high-water entry.
// Histograms are not flattened here — EmitSnapshot renders them as
// structured events.
func Snapshot() []MetricValue {
	regMu.Lock()
	cs := append([]*Counter(nil), counters...)
	gs := append([]*Gauge(nil), gauges...)
	regMu.Unlock()
	out := make([]MetricValue, 0, len(cs)+2*len(gs))
	for _, c := range cs {
		out = append(out, MetricValue{Name: c.name, Value: c.Load()})
	}
	for _, g := range gs {
		out = append(out, MetricValue{Name: g.name, Value: uint64(g.Load())})
		out = append(out, MetricValue{Name: g.name + "_peak", Value: uint64(g.Peak())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
