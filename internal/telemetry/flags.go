package telemetry

import (
	"flag"
	"fmt"
	"os"
)

// Options carries the shared observability flags of the campaign CLIs
// (carolfi, sweep): the JSONL event log, the live progress renderer,
// and the pprof/runtime-trace escape hatches. None of them may change a
// campaign's results — see the package comment.
type Options struct {
	// Path is the JSONL event-log destination ("" disables the sink).
	Path string
	// Progress requests the live stderr renderer. It is suppressed when
	// stderr is not a terminal or Quiet is set.
	Progress bool
	// Quiet suppresses the live renderer even on a terminal.
	Quiet bool
	// PprofAddr serves net/http/pprof for the duration of the run.
	PprofAddr string
	// TracePath writes a runtime/trace of the run.
	TracePath string
}

// AddFlags registers the shared observability flags on fs and returns
// the options they fill in after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Path, "telemetry", "", "write a JSONL telemetry event log to this file")
	fs.BoolVar(&o.Progress, "progress", false, "render live campaign progress on stderr (suppressed when stderr is not a terminal)")
	fs.BoolVar(&o.Quiet, "quiet", false, "suppress the live progress renderer")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	fs.StringVar(&o.TracePath, "pprof-trace", "", "write a runtime/trace of the run to this file")
	return o
}

// Validate rejects contradictory combinations; the caller turns the
// error into a usage failure.
func (o *Options) Validate() error {
	if o.Progress && o.Quiet {
		return fmt.Errorf("-progress and -quiet are mutually exclusive")
	}
	return nil
}

// Start applies the options: it enables the counters, opens the event
// sink, attaches the progress renderer, and starts the profiling
// servers. The returned stop function flushes a final counter snapshot
// into the sink, tears everything down in reverse order, and reports
// the first error (a short write to the event log must not pass
// silently). Start cleans up after itself on error.
func (o *Options) Start() (stop func() error, err error) {
	var stops []func() error
	unwind := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if o.Path != "" {
		SetEnabled(true)
		closeSink, err := OpenSink(o.Path)
		if err != nil {
			return nil, err
		}
		stops = append(stops, func() error {
			EmitSnapshot()
			return closeSink()
		})
	}
	if o.Progress && !o.Quiet && IsTTY(os.Stderr) {
		SetProgress(os.Stderr)
		stops = append(stops, func() error {
			ProgressDone()
			SetProgress(nil)
			return nil
		})
	}
	if o.PprofAddr != "" {
		stopPprof, err := StartPprof(o.PprofAddr)
		if err != nil {
			unwind()
			return nil, err
		}
		stops = append(stops, func() error { stopPprof(); return nil })
	}
	if o.TracePath != "" {
		stopTrace, err := StartTrace(o.TracePath)
		if err != nil {
			unwind()
			return nil, err
		}
		stops = append(stops, stopTrace)
	}
	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
