package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/trace"
)

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") and
// returns a stop function. The handlers are mounted on a private mux so
// enabling profiling never touches http.DefaultServeMux.
func StartPprof(addr string) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	//mixedrelvet:allow boundedgo pprof serving is debug-only and lifetime-bounded by the returned stop function
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

// StartTrace begins a runtime/trace capture into path and returns a
// stop function that ends the capture and closes the file.
func StartTrace(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}
