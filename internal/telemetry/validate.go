package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ValidateJSONL checks an event log against the documented schema (see
// DESIGN.md "Telemetry"): every line is a JSON object carrying a valid
// RFC3339Nano "ts", a positive strictly-increasing "seq", a non-empty
// "event" string, and only snake_case field names whose values are
// strings, booleans, numbers, null, or arrays of numbers. It returns
// the number of events validated; cmd/mixedreltel exposes it as the CI
// smoke check.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	var lastSeq uint64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return n, fmt.Errorf("line %d: not a JSON object: %v", n, err)
		}
		ts, ok := obj["ts"].(string)
		if !ok {
			return n, fmt.Errorf("line %d: missing string \"ts\"", n)
		}
		if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
			return n, fmt.Errorf("line %d: bad ts %q: %v", n, ts, err)
		}
		seqF, ok := obj["seq"].(float64)
		if !ok || seqF <= 0 || seqF != float64(uint64(seqF)) {
			return n, fmt.Errorf("line %d: \"seq\" must be a positive integer", n)
		}
		seq := uint64(seqF)
		if seq <= lastSeq {
			return n, fmt.Errorf("line %d: seq %d not greater than previous %d", n, seq, lastSeq)
		}
		lastSeq = seq
		ev, ok := obj["event"].(string)
		if !ok || ev == "" {
			return n, fmt.Errorf("line %d: missing non-empty \"event\"", n)
		}
		for k, v := range obj {
			if k == "ts" || k == "seq" || k == "event" {
				continue
			}
			if !snakeCase(k) {
				return n, fmt.Errorf("line %d: field %q is not snake_case", n, k)
			}
			if err := validValue(v); err != nil {
				return n, fmt.Errorf("line %d: field %q: %v", n, k, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// snakeCase reports whether s is a lowercase identifier: [a-z0-9_]+
// starting with a letter.
func snakeCase(s string) bool {
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' {
			continue
		}
		return false
	}
	return true
}

// validValue accepts the schema's value universe: scalars, null, and
// homogeneous numeric arrays.
func validValue(v any) error {
	switch x := v.(type) {
	case string, bool, float64, nil:
		return nil
	case []any:
		for _, e := range x {
			if _, ok := e.(float64); !ok {
				return fmt.Errorf("array element %v is not a number", e)
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported value type %T", v)
	}
}
