package telemetry

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
)

// KV is one event field. Values may be string, bool, int, int64,
// uint64, float64, []int, []uint64 or []float64; anything else renders
// through fmt as a quoted string.
type KV struct {
	K string
	V any
}

// sink is the JSONL event stream. One mutex serializes writers: events
// are emitted in arrival order (which is scheduling-dependent — that is
// fine, telemetry is outside the determinism boundary) with a strictly
// increasing seq so consumers can detect truncation and order within a
// file regardless of timestamp resolution.
var (
	sinkMu  sync.Mutex
	sinkW   io.Writer
	sinkSeq uint64
	sinkBuf []byte
)

// SetSink directs events at w (nil disables). The buffer and sequence
// survive re-targeting; tests use this with a bytes.Buffer.
func SetSink(w io.Writer) {
	sinkMu.Lock()
	sinkW = w
	sinkMu.Unlock()
}

// OpenSink creates (truncating) the JSONL event log at path and directs
// events at it. The returned closer detaches the sink and closes the
// file.
func OpenSink(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	SetSink(f)
	return func() error {
		SetSink(nil)
		return f.Close()
	}, nil
}

// SinkActive reports whether events have somewhere to go. Callers that
// must do work to assemble an event (gathering per-stratum slices, say)
// should check it first; Emit itself is a cheap no-op without a sink.
func SinkActive() bool {
	sinkMu.Lock()
	active := sinkW != nil
	sinkMu.Unlock()
	return active
}

// Emit writes one event line: a JSON object with "ts" (RFC3339Nano
// wall-clock), "seq" (strictly increasing per process), "event", and
// the given fields in argument order. No-op when no sink is set.
//
// Cost matters here: campaign-level events are charged against the <2%
// instrumentation budget (make bench-telemetry), so the encoder avoids
// strconv's per-rune quote scan for plain-ASCII strings and reuses a
// per-second formatted timestamp prefix instead of re-rendering the
// full RFC3339Nano string on every event.
func Emit(event string, kvs ...KV) {
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if sinkW == nil {
		return
	}
	sinkSeq++
	b := sinkBuf[:0]
	b = append(b, `{"ts":"`...)
	b = appendTimestamp(b)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, sinkSeq, 10)
	b = append(b, `,"event":`...)
	b = appendString(b, event)
	for _, kv := range kvs {
		b = append(b, ',')
		b = appendString(b, kv.K)
		b = append(b, ':')
		b = appendValue(b, kv.V)
	}
	b = append(b, '}', '\n')
	sinkBuf = b
	sinkW.Write(b)
}

// Timestamp cache, guarded by sinkMu: the date/time prefix and zone
// suffix of an RFC3339Nano string only change once per second, so only
// the fractional part is formatted per event.
var (
	tsSec    int64
	tsPrefix []byte // "2006-01-02T15:04:05"
	tsZone   []byte // "Z" or "±hh:mm"
)

// appendTimestamp appends the current wall clock in RFC3339Nano form.
func appendTimestamp(b []byte) []byte {
	//mixedrelvet:allow determinism event timestamps are observe-only; the telemetry analyzer proves events never feed campaign results
	return appendTime(b, time.Now())
}

// appendTime renders now byte-identically to
// now.AppendFormat(b, time.RFC3339Nano): fractional second omitted
// when zero, trailing zeros trimmed.
func appendTime(b []byte, now time.Time) []byte {
	if sec := now.Unix(); sec != tsSec || tsPrefix == nil {
		tsSec = sec
		tsPrefix = now.AppendFormat(tsPrefix[:0], "2006-01-02T15:04:05")
		tsZone = now.AppendFormat(tsZone[:0], "Z07:00")
	}
	b = append(b, tsPrefix...)
	if ns := now.Nanosecond(); ns != 0 {
		var frac [9]byte
		for i := 8; i >= 0; i-- {
			frac[i] = byte('0' + ns%10)
			ns /= 10
		}
		n := 9
		for frac[n-1] == '0' {
			n--
		}
		b = append(b, '.')
		b = append(b, frac[:n]...)
	}
	return append(b, tsZone...)
}

// appendString renders s as a JSON string. Plain printable ASCII with
// nothing to escape — every event name, every field key, and almost
// every value — appends raw between quotes; anything else takes
// strconv's full escaping path.
func appendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendValue renders one field value as JSON.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendString(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return appendFloat(b, x)
	case []int:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(e), 10)
		}
		return append(b, ']')
	case []uint64:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, e, 10)
		}
		return append(b, ']')
	case []float64:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendFloat(b, e)
		}
		return append(b, ']')
	default:
		return appendString(b, fmt.Sprint(x))
	}
}

// appendFloat renders a float, mapping non-finite values (a CI
// half-width before any tallies, say) to null — JSON has no NaN/Inf.
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// EmitSnapshot dumps the full metric registry into the event stream:
// one "counters" event carrying every counter and gauge reading as
// fields (name-sorted), then one "histogram" event per histogram with
// its count, total nanoseconds and log2 bucket counts. CLIs call it
// once after a campaign so the log ends with the aggregate picture.
func EmitSnapshot() {
	if !SinkActive() {
		return
	}
	snap := Snapshot()
	kvs := make([]KV, len(snap))
	for i, m := range snap {
		kvs[i] = KV{K: m.Name, V: m.Value}
	}
	Emit("counters", kvs...)
	regMu.Lock()
	hs := append([]*Histogram(nil), histograms...)
	regMu.Unlock()
	for _, h := range hs {
		Emit("histogram",
			KV{K: "name", V: h.Name()},
			KV{K: "count", V: h.Count()},
			KV{K: "sum_ns", V: h.Sum()},
			KV{K: "buckets", V: h.Buckets()},
		)
	}
}
