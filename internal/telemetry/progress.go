package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// progress is the live single-line renderer: Progressf rewrites one
// terminal line in place (carriage return, pad-to-clear), throttled so
// a hot campaign loop can call it per sample without flooding the
// write syscall path. It stays goroutine-free — no ticker, no
// background writer — so it cannot violate the boundedgo invariant.
var (
	progMu    sync.Mutex
	progW     io.Writer
	progLast  int64 // wall ns of last rendered frame
	progWidth int   // width of last rendered frame, for pad-to-clear
)

// progressInterval is the minimum wall time between rendered frames.
const progressInterval = 100 * time.Millisecond

// SetProgress directs the live renderer at w (nil disables). CLIs pass
// os.Stderr only when it is a TTY and -quiet is unset.
func SetProgress(w io.Writer) {
	progMu.Lock()
	progW = w
	progLast = 0
	progWidth = 0
	progMu.Unlock()
}

// ProgressActive reports whether a progress writer is set, letting
// callers skip assembling status strings nobody will see.
func ProgressActive() bool {
	progMu.Lock()
	active := progW != nil
	progMu.Unlock()
	return active
}

// Progressf renders one status line, overwriting the previous one.
// Frames arriving within progressInterval of the last render are
// dropped. No-op without a progress writer.
func Progressf(format string, args ...any) {
	progMu.Lock()
	defer progMu.Unlock()
	if progW == nil {
		return
	}
	//mixedrelvet:allow determinism frame throttling is render-only; dropped frames never influence campaign results
	now := time.Now().UnixNano()
	if progLast != 0 && now-progLast < int64(progressInterval) {
		return
	}
	progLast = now
	line := fmt.Sprintf(format, args...)
	pad := progWidth - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(progW, "\r%s%*s", line, pad, "")
	progWidth = len(line)
}

// ProgressDone clears the status line so subsequent normal output
// starts on a clean line. Call once after the instrumented loop.
func ProgressDone() {
	progMu.Lock()
	defer progMu.Unlock()
	if progW == nil {
		return
	}
	if progWidth > 0 {
		fmt.Fprintf(progW, "\r%*s\r", progWidth, "")
	}
	progLast = 0
	progWidth = 0
}

// IsTTY reports whether f is attached to a character device — the
// auto-enable test for the live renderer, so piped and CI runs never
// see carriage-return spam.
func IsTTY(f *os.File) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
