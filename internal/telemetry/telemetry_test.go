package telemetry

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	c := NewCounter("test_ctr")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := NewGauge("test_gauge")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Load(); got != 1 {
		t.Fatalf("gauge level = %d, want 1", got)
	}
	if got := g.Peak(); got != 5 {
		t.Fatalf("gauge peak = %d, want 5", got)
	}

	h := NewHistogram("test_hist")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-7) // clamps to zero
	if got := h.Count(); got != 4 {
		t.Fatalf("hist count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1001 {
		t.Fatalf("hist sum = %d, want 1001", got)
	}
	b := h.Buckets()
	// 0 and the clamped -7 land in bucket 0, 1 in bucket 1, 1000 in
	// bucket 10 (2^9 <= 1000 < 2^10).
	if len(b) != 11 || b[0] != 2 || b[1] != 1 || b[10] != 1 {
		t.Fatalf("hist buckets = %v", b)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	NewCounter("test_snap_b").Inc()
	NewCounter("test_snap_a").Add(2)
	snap := Snapshot()
	prev := ""
	var sawA, sawB bool
	for _, m := range snap {
		if m.Name < prev {
			t.Fatalf("snapshot not sorted: %q after %q", m.Name, prev)
		}
		prev = m.Name
		switch m.Name {
		case "test_snap_a":
			sawA = m.Value == 2
		case "test_snap_b":
			sawB = m.Value == 1
		}
	}
	if !sawA || !sawB {
		t.Fatalf("snapshot missing registered counters: %v %v", sawA, sawB)
	}
}

func TestEmitAndValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	SetSink(&buf)
	defer SetSink(nil)

	Emit("start", KV{K: "kernel", V: "mxm"}, KV{K: "samples", V: 50})
	Emit("round",
		KV{K: "alloc", V: []int{3, 2, 1}},
		KV{K: "half_width", V: 0.25},
		KV{K: "nan_width", V: math.NaN()},
		KV{K: "stopped", V: false},
	)
	EmitSnapshot()

	out := buf.String()
	if !strings.Contains(out, `"event":"start"`) || !strings.Contains(out, `"kernel":"mxm"`) {
		t.Fatalf("start event malformed:\n%s", out)
	}
	if !strings.Contains(out, `"alloc":[3,2,1]`) {
		t.Fatalf("int slice malformed:\n%s", out)
	}
	if !strings.Contains(out, `"nan_width":null`) {
		t.Fatalf("NaN must render as null:\n%s", out)
	}
	if !strings.Contains(out, `"event":"counters"`) {
		t.Fatalf("snapshot missing counters event:\n%s", out)
	}

	n, err := ValidateJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round-trip validation failed after %d events: %v", n, err)
	}
	if n < 3 {
		t.Fatalf("validated %d events, want >= 3", n)
	}
}

func TestEmitWithoutSinkIsNoop(t *testing.T) {
	SetSink(nil)
	if SinkActive() {
		t.Fatal("SinkActive with nil sink")
	}
	Emit("ignored", KV{K: "x", V: 1}) // must not panic
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       "nope\n",
		"missing ts":     `{"seq":1,"event":"e"}` + "\n",
		"bad ts":         `{"ts":"yesterday","seq":1,"event":"e"}` + "\n",
		"zero seq":       `{"ts":"2026-08-07T00:00:00Z","seq":0,"event":"e"}` + "\n",
		"missing event":  `{"ts":"2026-08-07T00:00:00Z","seq":1}` + "\n",
		"camelCase key":  `{"ts":"2026-08-07T00:00:00Z","seq":1,"event":"e","badKey":1}` + "\n",
		"object value":   `{"ts":"2026-08-07T00:00:00Z","seq":1,"event":"e","f":{"x":1}}` + "\n",
		"non-num array":  `{"ts":"2026-08-07T00:00:00Z","seq":1,"event":"e","f":["s"]}` + "\n",
		"seq regression": `{"ts":"2026-08-07T00:00:00Z","seq":2,"event":"e"}` + "\n" + `{"ts":"2026-08-07T00:00:00Z","seq":2,"event":"e"}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestClockGatedByEnabled(t *testing.T) {
	SetEnabled(false)
	if Clock() != 0 {
		t.Fatal("Clock must return 0 while disabled")
	}
	h := NewHistogram("test_gated_hist")
	h.ObserveSince(0) // disabled sentinel: must not record
	if h.Count() != 0 {
		t.Fatal("ObserveSince(0) recorded an observation")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	start := Clock()
	if start == 0 {
		t.Fatal("Clock returned 0 while enabled")
	}
	h.ObserveSince(start)
	if h.Count() != 1 {
		t.Fatal("ObserveSince did not record while enabled")
	}
}

func TestProgressRenderer(t *testing.T) {
	var buf bytes.Buffer
	SetProgress(&buf)
	defer SetProgress(nil)

	Progressf("samples %d/%d", 10, 100)
	first := buf.String()
	if !strings.HasPrefix(first, "\r") || !strings.Contains(first, "samples 10/100") {
		t.Fatalf("first frame = %q", first)
	}
	// A frame arriving immediately after is throttled away.
	Progressf("samples %d/%d", 11, 100)
	if buf.String() != first {
		t.Fatalf("second frame not throttled: %q", buf.String())
	}
	ProgressDone()
	if !strings.HasSuffix(buf.String(), "\r") {
		t.Fatalf("ProgressDone must end with a carriage return: %q", buf.String())
	}

	SetProgress(nil)
	if ProgressActive() {
		t.Fatal("ProgressActive with nil writer")
	}
	Progressf("ignored") // must not panic
}

func TestAppendTimeMatchesRFC3339Nano(t *testing.T) {
	defer func() { tsSec, tsPrefix, tsZone = 0, nil, nil }()
	base := time.Date(2026, 8, 7, 21, 15, 42, 0, time.UTC)
	zones := []*time.Location{time.UTC, time.FixedZone("plus", 7*3600), time.FixedZone("minus", -(5*3600 + 30*60))}
	nanos := []int{0, 1, 100, 123456789, 500000000, 999999999, 120000000, 7}
	for _, loc := range zones {
		// Reset the per-second cache when the zone changes; in the
		// process it only ever moves forward with the wall clock.
		tsSec, tsPrefix, tsZone = 0, nil, nil
		for step := 0; step < 3; step++ { // repeats within a second, then across seconds
			for _, ns := range nanos {
				ts := base.In(loc).Add(time.Duration(step)*time.Second + time.Duration(ns))
				got := string(appendTime(nil, ts))
				want := ts.Format(time.RFC3339Nano)
				if got != want {
					t.Fatalf("appendTime(%v) = %q, want %q", ts, got, want)
				}
			}
		}
	}
}

func TestAppendStringMatchesAppendQuote(t *testing.T) {
	cases := []string{
		"", "campaign_start", "MxM(12x12x12)", "a b c", "~!@#$%^&*()",
		`back\slash`, `qu"ote`, "tab\there", "newline\n", "unicode ×", "\x00",
	}
	for _, s := range cases {
		got := string(appendString(nil, s))
		want := string(strconv.AppendQuote(nil, s))
		if got != want {
			t.Fatalf("appendString(%q) = %s, want %s", s, got, want)
		}
	}
}
