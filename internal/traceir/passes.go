package traceir

import "mixedrel/internal/fp"

// The optimizer pipeline rewrites the recorded region stream without
// ever touching the operation stream itself: a pass may only re-group
// the same dynamic operations under a different region shape, so the
// flat result trace — and every stream position in it — is invariant
// across the pipeline. That is the whole pass-correctness argument:
// serving reads results by absolute position, and positions never
// move.
//
//	passSuperword  adjacent same-kind scalars  -> KMap2 / KMap3
//	passCollapse   adjacent same-kind maps     -> one maximal map
//	finalize       validate coverage, build the Program
//
// Superword merging turns runs of scalar Adds/Muls/FMAs — as emitted
// by kernels that do not use fp.BatchEnv — into the same map regions a
// batch call records, so bulk serving (one slab compare + one copy)
// applies to scalar-coded kernels too. Collapse then widens maps
// across batch-call boundaries, e.g. a kernel that tiles one long
// element-wise update into several AddN calls replays as a single
// region.

// stream is the mutable pass-pipeline representation: the region list
// plus the operand slab the regions index into. Passes rebuild both;
// the result trace is untouched by construction.
type stream struct {
	regions  []Region
	operands []fp.Bits
}

// block returns region r's operand block.
func (s *stream) block(r *Region) []fp.Bits {
	return s.operands[r.Off : int(r.Off)+operandLen(r)]
}

// superwordable reports whether scalar operations of kind op can be
// re-grouped into an existing fp.BatchEnv map shape (AddN / MulN /
// FMAN).
func superwordable(op fp.Op) bool {
	return op == fp.OpAdd || op == fp.OpMul || op == fp.OpFMA
}

// passSuperword merges every maximal run of two or more adjacent
// KScalar regions of one superwordable kind into a single KMap2 (Add,
// Mul) or KMap3 (FMA) region, transposing the per-operation operand
// tuples into the map slab layout.
func passSuperword(s *stream) *stream {
	out := &stream{
		regions:  make([]Region, 0, len(s.regions)),
		operands: make([]fp.Bits, 0, len(s.operands)),
	}
	rs := s.regions
	for i := 0; i < len(rs); {
		r := &rs[i]
		if r.Kind != KScalar || !superwordable(r.Op) {
			out.copyRegion(s, r)
			i++
			continue
		}
		j := i + 1
		for j < len(rs) && rs[j].Kind == KScalar && rs[j].Op == r.Op {
			j++
		}
		n := j - i
		if n < 2 {
			out.copyRegion(s, r)
			i++
			continue
		}
		kind := KMap2
		width := 2
		if r.Op == fp.OpFMA {
			kind = KMap3
			width = 3
		}
		off := len(out.operands)
		for lane := 0; lane < width; lane++ {
			for q := i; q < j; q++ {
				out.operands = append(out.operands, s.operands[int(rs[q].Off)+lane])
			}
		}
		out.regions = append(out.regions, Region{
			Kind: kind, Op: r.Op, Start: r.Start, N: uint32(n), Off: uint32(off),
		})
		i = j
	}
	return out
}

// passCollapse merges adjacent map regions of one kind and operation
// into a single maximal region, concatenating their slabs lane by
// lane. (KChain/KAxpy/KGemm regions carry per-region accumulator
// structure and are never merged.)
func passCollapse(s *stream) *stream {
	out := &stream{
		regions:  make([]Region, 0, len(s.regions)),
		operands: make([]fp.Bits, 0, len(s.operands)),
	}
	rs := s.regions
	for i := 0; i < len(rs); {
		r := &rs[i]
		if r.Kind != KMap2 && r.Kind != KMap3 {
			out.copyRegion(s, r)
			i++
			continue
		}
		j := i + 1
		total := int(r.N)
		for j < len(rs) && rs[j].Kind == r.Kind && rs[j].Op == r.Op {
			total += int(rs[j].N)
			j++
		}
		if j == i+1 {
			out.copyRegion(s, r)
			i++
			continue
		}
		width := 2
		if r.Kind == KMap3 {
			width = 3
		}
		off := len(out.operands)
		for lane := 0; lane < width; lane++ {
			for q := i; q < j; q++ {
				rq := &rs[q]
				n := int(rq.N)
				out.operands = append(out.operands, s.operands[int(rq.Off)+lane*n:int(rq.Off)+(lane+1)*n]...)
			}
		}
		out.regions = append(out.regions, Region{
			Kind: r.Kind, Op: r.Op, Start: r.Start, N: uint32(total), Off: uint32(off),
		})
		i = j
	}
	return out
}

// copyRegion appends r to out verbatim, relocating its operand block.
func (out *stream) copyRegion(s *stream, r *Region) {
	nr := *r
	nr.Off = uint32(len(out.operands))
	out.operands = append(out.operands, s.block(r)...)
	out.regions = append(out.regions, nr)
}

// finalize validates the optimized stream — regions must tile
// positions [0, ops) exactly, with well-formed shapes and in-bounds
// operand blocks — and builds the executable Program. Any violation
// returns nil: the injector then simply keeps its uncompiled replay
// paths, so a dropped program costs speed, never bits.
func finalize(s *stream, f fp.Format, ops uint64, results []fp.Bits) *Program {
	if uint64(len(results)) != ops {
		return nil
	}
	var pos uint64
	for i := range s.regions {
		r := &s.regions[i]
		if r.Start != pos || r.N == 0 {
			return nil
		}
		if r.Kind == KGemm && uint64(r.Rows)*uint64(r.Cols)*uint64(r.K) != uint64(r.N) {
			return nil
		}
		if int(r.Off)+operandLen(r) > len(s.operands) {
			return nil
		}
		pos += uint64(r.N)
	}
	if pos != ops {
		return nil
	}
	return &Program{
		format:   f,
		ops:      ops,
		regions:  s.regions,
		operands: s.operands,
		results:  results,
	}
}
