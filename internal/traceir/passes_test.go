package traceir

import (
	"strings"
	"testing"

	"mixedrel/internal/fp"
)

// enc encodes small integers as trace operand values.
func enc(m fp.Env, vs ...float64) []fp.Bits {
	out := make([]fp.Bits, len(vs))
	for i, v := range vs {
		out[i] = m.FromFloat64(v)
	}
	return out
}

func seq(m fp.Env, base float64, n int) []fp.Bits {
	out := make([]fp.Bits, n)
	for i := range out {
		out[i] = m.FromFloat64(base + float64(i))
	}
	return out
}

// The pass pipeline may only re-group the recorded dynamic operations
// under different region shapes; the golden dumps below pin the exact
// regrouping each pass performs, in the style of analysistest's
// `// want` comments: each case lists the recorded stream and the
// expected dump after each stage.
func TestPassGoldenDumps(t *testing.T) {
	f := fp.Single
	cases := []struct {
		name string
		run  func(m fp.Env, r *Recorder)
		// raw is the recorded stream; superword and collapsed are the
		// dumps after each pass. An empty superword/collapsed means
		// "unchanged from the previous stage".
		raw, superword, collapsed string
	}{
		{
			name: "superword-merges-maximal-scalar-runs",
			run: func(m fp.Env, r *Recorder) {
				a := enc(m, 1, 2, 3, 4, 5, 6)
				r.Add(a[0], a[1])
				r.Add(a[1], a[2])
				r.Add(a[2], a[3])
				r.Div(a[3], a[4])
				r.Mul(a[4], a[5])
				r.Mul(a[5], a[0])
			},
			raw: `
scalar ADD @0 n=1
scalar ADD @1 n=1
scalar ADD @2 n=1
scalar DIV @3 n=1
scalar MUL @4 n=1
scalar MUL @5 n=1
`, // want: DIV is not superwordable and splits the runs
			superword: `
map2 ADD @0 n=3
scalar DIV @3 n=1
map2 MUL @4 n=2
`,
		},
		{
			name: "superword-fma-run-becomes-map3",
			run: func(m fp.Env, r *Recorder) {
				a := enc(m, 1, 2, 3)
				for i := 0; i < 4; i++ {
					r.FMA(a[0], a[1], a[2])
				}
			},
			raw: `
scalar FMA @0 n=1
scalar FMA @1 n=1
scalar FMA @2 n=1
scalar FMA @3 n=1
`,
			superword: `
map3 FMA @0 n=4
`,
		},
		{
			name: "superword-leaves-singletons-alone",
			run: func(m fp.Env, r *Recorder) {
				a := enc(m, 1, 2)
				r.Add(a[0], a[1])
				r.Mul(a[0], a[1])
				r.Sub(a[0], a[1])
				r.Sqrt(a[0])
			},
			raw: `
scalar ADD @0 n=1
scalar MUL @1 n=1
scalar SUB @2 n=1
scalar SQRT @3 n=1
`, // want: no adjacent same-op pair, nothing merges
		},
		{
			name: "collapse-widens-tiled-batches",
			run: func(m fp.Env, r *Recorder) {
				dst := make([]fp.Bits, 4)
				r.AddN(dst, seq(m, 1, 4), seq(m, 5, 4))
				r.AddN(dst[:3], seq(m, 9, 3), seq(m, 12, 3))
				r.MulN(dst[:2], seq(m, 1, 2), seq(m, 3, 2))
			},
			raw: `
map2 ADD @0 n=4
map2 ADD @4 n=3
map2 MUL @7 n=2
`,
			collapsed: `
map2 ADD @0 n=7
map2 MUL @7 n=2
`, // want: adjacent same-op maps fuse; the MUL tile stays separate
		},
		{
			name: "superword-feeds-collapse",
			run: func(m fp.Env, r *Recorder) {
				a := enc(m, 1, 2)
				r.Add(a[0], a[1])
				r.Add(a[1], a[0])
				dst := make([]fp.Bits, 3)
				r.AddN(dst, seq(m, 1, 3), seq(m, 4, 3))
			},
			raw: `
scalar ADD @0 n=1
scalar ADD @1 n=1
map2 ADD @2 n=3
`,
			superword: `
map2 ADD @0 n=2
map2 ADD @2 n=3
`,
			collapsed: `
map2 ADD @0 n=5
`, // want: scalar-coded and batch-coded adds replay as one region
		},
		{
			name: "collapse-fman-tiles",
			run: func(m fp.Env, r *Recorder) {
				dst := make([]fp.Bits, 3)
				r.FMAN(dst, seq(m, 1, 3), seq(m, 4, 3), seq(m, 7, 3))
				r.FMAN(dst[:2], seq(m, 2, 2), seq(m, 5, 2), seq(m, 8, 2))
			},
			raw: `
map3 FMA @0 n=3
map3 FMA @3 n=2
`,
			collapsed: `
map3 FMA @0 n=5
`,
		},
		{
			name: "structured-regions-never-merge",
			run: func(m fp.Env, r *Recorder) {
				zero := m.FromFloat64(0)
				r.DotFMA(zero, seq(m, 1, 3), seq(m, 4, 3))
				r.DotFMA(zero, seq(m, 2, 3), seq(m, 5, 3))
				dst := seq(m, 1, 2)
				r.AXPY(dst, m.FromFloat64(3), seq(m, 7, 2))
				out := make([]fp.Bits, 4)
				r.GemmFMA(out, nil, seq(m, 1, 4), seq(m, 5, 4), 2, 2, 2)
			},
			raw: `
chain FMA @0 n=3
chain FMA @3 n=3
axpy FMA @6 n=2
gemm FMA @8 n=8 rows=2 cols=2 k=2
`, // want: accumulator-carrying shapes pass through both passes verbatim
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := fp.NewMachine(f)
			rec := NewRecorder(m)
			tc.run(m, rec)

			raw := &stream{regions: rec.regions, operands: rec.operands}
			check := func(stage, got, want, prev string) string {
				t.Helper()
				if want == "" {
					want = prev
				}
				want = strings.TrimPrefix(want, "\n")
				if got != want {
					t.Errorf("%s dump:\n%s\nwant:\n%s", stage, got, want)
				}
				return want
			}
			prev := check("raw", raw.dump(), tc.raw, "")
			sw := passSuperword(raw)
			prev = check("superword", sw.dump(), tc.superword, prev)
			col := passCollapse(sw)
			prev = check("collapse", col.dump(), tc.collapsed, prev)

			// The compiled program must validate and carry the collapsed
			// stream unchanged.
			p := rec.Compile()
			if p == nil {
				t.Fatal("Compile returned nil for a well-formed stream")
			}
			check("program", p.Dump(), prev, prev)
			if p.Ops() != rec.Ops() || len(p.Results()) != int(rec.Ops()) {
				t.Errorf("program ops %d results %d, recorded %d",
					p.Ops(), len(p.Results()), rec.Ops())
			}
		})
	}
}

// TestPassesPreserveServing replays every recorded operation through
// ServeScalar after the full pipeline: regrouping must never change
// what a position serves.
func TestPassesPreserveServing(t *testing.T) {
	m := fp.NewMachine(fp.Single)
	rec := NewRecorder(m)
	a := enc(m, 1.5, 2.5, 3.5)
	// A stream exercising every shape, including merged ones.
	r0 := rec.Add(a[0], a[1])
	r1 := rec.Add(r0, a[2])
	dst := make([]fp.Bits, 2)
	rec.MulN(dst, []fp.Bits{r0, r1}, []fp.Bits{a[0], a[1]})
	acc := rec.DotFMA(m.FromFloat64(0), []fp.Bits{r0, r1}, []fp.Bits{a[1], a[2]})
	rec.Sqrt(acc)

	p := rec.Compile()
	if p == nil {
		t.Fatal("Compile returned nil")
	}
	// Re-run the identical computation, asking the program for every
	// result first.
	var cur Cursor
	pos := uint64(0)
	expect := func(op fp.Op, x, y, z fp.Bits) fp.Bits {
		t.Helper()
		res, ok := p.ServeScalar(&cur, pos, op, x, y, z)
		if !ok {
			t.Fatalf("pos %d (%v): not served", pos, op)
		}
		if res != rec.results[pos] {
			t.Fatalf("pos %d: served %#x, recorded %#x", pos, res, rec.results[pos])
		}
		pos++
		return res
	}
	s0 := expect(fp.OpAdd, a[0], a[1], 0)
	s1 := expect(fp.OpAdd, s0, a[2], 0)
	expect(fp.OpMul, s0, a[0], 0)
	expect(fp.OpMul, s1, a[1], 0)
	c0 := expect(fp.OpFMA, s0, a[1], m.FromFloat64(0))
	c1 := expect(fp.OpFMA, s1, a[2], c0)
	expect(fp.OpSqrt, c1, 0, 0)
	if pos != p.Ops() {
		t.Fatalf("served %d of %d positions", pos, p.Ops())
	}
}
