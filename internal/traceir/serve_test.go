package traceir

import (
	"testing"

	"mixedrel/internal/fp"
)

// compile records run's operations and compiles them, failing the test
// on a nil program.
func compile(t *testing.T, f fp.Format, run func(m fp.Env, r *Recorder)) (*Program, fp.Env) {
	t.Helper()
	m := fp.NewMachine(f)
	rec := NewRecorder(m)
	run(m, rec)
	p := rec.Compile()
	if p == nil {
		t.Fatal("Compile returned nil")
	}
	return p, m
}

func TestServeScalarRejectsCorruptedOperands(t *testing.T) {
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		r.Mul(m.FromFloat64(3), m.FromFloat64(4))
	})
	a, b := m.FromFloat64(3), m.FromFloat64(4)
	var cur Cursor
	if res, ok := p.ServeScalar(&cur, 0, fp.OpMul, a, b, 0); !ok || res != p.Results()[0] {
		t.Fatalf("clean operands not served: %v %#x", ok, res)
	}
	for _, bad := range []struct {
		name  string
		op    fp.Op
		x, y  fp.Bits
		posOK bool
	}{
		{"flipped-a", fp.OpMul, a ^ 1, b, true},
		{"flipped-b", fp.OpMul, a, b ^ (1 << 20), true},
		{"wrong-op", fp.OpAdd, a, b, true},
	} {
		var c Cursor
		if _, ok := p.ServeScalar(&c, 0, bad.op, bad.x, bad.y, 0); ok {
			t.Errorf("%s: corrupted operation was served", bad.name)
		}
	}
	// Positions past the recorded stream (control-flow divergence) are
	// never served.
	var c Cursor
	if _, ok := p.ServeScalar(&c, p.Ops(), fp.OpMul, a, b, 0); ok {
		t.Error("position beyond the stream was served")
	}
}

func TestServeScalarChainLinkage(t *testing.T) {
	// Chain element i>0 must link through the recorded result of i-1:
	// a corrupted accumulator (the in-flight fault) blocks serving even
	// though a and b still match.
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		r.DotFMA(m.FromFloat64(1), seq(m, 2, 3), seq(m, 5, 3))
	})
	a, b := seq(m, 2, 3), seq(m, 5, 3)
	var cur Cursor
	acc := m.FromFloat64(1)
	for i := 0; i < 3; i++ {
		res, ok := p.ServeScalar(&cur, uint64(i), fp.OpFMA, a[i], b[i], acc)
		if !ok {
			t.Fatalf("element %d not served", i)
		}
		acc = res
	}
	var c2 Cursor
	if _, ok := p.ServeScalar(&c2, 1, fp.OpFMA, a[1], b[1], acc^2); ok {
		t.Error("corrupted chain accumulator was served")
	}
}

func TestChainPrefixPartial(t *testing.T) {
	const n = 6
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		r.DotFMA(m.FromFloat64(1), seq(m, 2, n), seq(m, 10, n))
	})
	acc0 := m.FromFloat64(1)
	a, b := seq(m, 2, n), seq(m, 10, n)

	var cur Cursor
	if res, srv := p.ChainPrefix(&cur, 0, acc0, a, b); srv != n || res != p.Results()[n-1] {
		t.Fatalf("clean chain: served %d, res %#x", srv, res)
	}
	// Corrupting element i serves exactly the prefix [0, i) and hands
	// back the accumulator entering element i; recomputing the suffix
	// through softfloat must reproduce the corrupted-run semantics of a
	// full recompute.
	for i := 0; i < n; i++ {
		ca := append([]fp.Bits(nil), a...)
		ca[i] ^= 1 << 13
		var c Cursor
		res, srv := p.ChainPrefix(&c, 0, acc0, ca, b)
		if srv != i {
			t.Fatalf("corrupt a[%d]: served %d", i, srv)
		}
		if i > 0 && res != p.Results()[i-1] {
			t.Fatalf("corrupt a[%d]: prefix acc %#x, recorded %#x", i, res, p.Results()[i-1])
		}
		got := fp.DotFMA(m, res, ca[srv:], b[srv:])
		want := fp.DotFMA(m, acc0, ca, b)
		if got != want {
			t.Fatalf("corrupt a[%d]: prefix+suffix %#x, full recompute %#x", i, got, want)
		}
	}
	// A corrupted incoming accumulator serves nothing.
	var c Cursor
	if _, srv := p.ChainPrefix(&c, 0, acc0^4, a, b); srv != 0 {
		t.Fatalf("corrupt acc0 served %d elements", srv)
	}
	// Shape mismatches (wrong position, wrong length) are rejected.
	if _, srv := p.ChainPrefix(&c, 1, p.Results()[0], a[1:], b[1:]); srv != 0 {
		t.Error("mid-chain prefix request was served")
	}
}

func TestServeMapDirtyInterval(t *testing.T) {
	const n = 8
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		dst := make([]fp.Bits, n)
		r.AddN(dst, seq(m, 1, n), seq(m, 20, n))
	})
	a, b := seq(m, 1, n), seq(m, 20, n)

	var cur Cursor
	dst := make([]fp.Bits, n)
	lo, hi, ok := p.ServeMap(&cur, 0, fp.OpAdd, dst, a, b, nil)
	if !ok || lo != hi {
		t.Fatalf("clean map: ok=%v dirty=[%d,%d)", ok, lo, hi)
	}
	for i, r := range p.Results() {
		if dst[i] != r {
			t.Fatalf("clean map served dst[%d]=%#x, recorded %#x", i, dst[i], r)
		}
	}

	// Corrupt a[2] and b[5]: the dirty interval must cover both, and
	// recomputing it must match a full recompute of the corrupted call.
	ca := append([]fp.Bits(nil), a...)
	cb := append([]fp.Bits(nil), b...)
	ca[2] ^= 1 << 9
	cb[5] ^= 1 << 3
	var c2 Cursor
	got := make([]fp.Bits, n)
	lo, hi, ok = p.ServeMap(&c2, 0, fp.OpAdd, got, ca, cb, nil)
	if !ok || lo != 2 || hi != 6 {
		t.Fatalf("dirty map: ok=%v interval=[%d,%d), want [2,6)", ok, lo, hi)
	}
	fp.AddN(m, got[lo:hi], ca[lo:hi], cb[lo:hi])
	want := make([]fp.Bits, n)
	fp.AddN(m, want, ca, cb)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served+recomputed dst[%d]=%#x, full recompute %#x", i, got[i], want[i])
		}
	}

	// Wrong operation kind or a 3-operand query against a 2-operand
	// region falls back to full recompute.
	var c3 Cursor
	if _, _, ok := p.ServeMap(&c3, 0, fp.OpMul, dst, a, b, nil); ok {
		t.Error("MUL query served from an ADD region")
	}
	if _, _, ok := p.ServeMap(&c3, 0, fp.OpAdd, dst, a, b, a); ok {
		t.Error("3-operand query served from a map2 region")
	}
}

func TestServeMapFMANAliasedAccumulator(t *testing.T) {
	// FMAN's dst commonly aliases c; dirty entries must keep their
	// pristine accumulator inputs so the caller's recompute reads them.
	const n = 5
	var rc []fp.Bits
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		c := seq(m, 30, n)
		rc = append([]fp.Bits(nil), c...)
		r.FMAN(c, seq(m, 1, n), seq(m, 10, n), c)
	})
	a, b := seq(m, 1, n), seq(m, 10, n)
	ca := append([]fp.Bits(nil), a...)
	ca[1] ^= 1 << 7

	dst := append([]fp.Bits(nil), rc...) // dst aliases the c operand
	var cur Cursor
	lo, hi, ok := p.ServeMap(&cur, 0, fp.OpFMA, dst, ca, b, dst)
	if !ok || lo != 1 || hi != 2 {
		t.Fatalf("aliased FMAN: ok=%v interval=[%d,%d), want [1,2)", ok, lo, hi)
	}
	if dst[1] != rc[1] {
		t.Fatalf("dirty dst[1] was overwritten before recompute: %#x", dst[1])
	}
	fp.FMAN(m, dst[lo:hi], ca[lo:hi], b[lo:hi], dst[lo:hi])
	want := append([]fp.Bits(nil), rc...)
	fp.FMAN(m, want, ca, b, want)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("aliased FMAN dst[%d]=%#x, want %#x", i, dst[i], want[i])
		}
	}
}

func TestServeAxpy(t *testing.T) {
	const n = 6
	var rd []fp.Bits
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		d := seq(m, 40, n)
		rd = append([]fp.Bits(nil), d...)
		r.AXPY(d, m.FromFloat64(3), seq(m, 1, n))
	})
	s := m.FromFloat64(3)
	x := seq(m, 1, n)

	var cur Cursor
	dst := append([]fp.Bits(nil), rd...)
	if lo, hi, ok := p.ServeAxpy(&cur, 0, s, x, dst); !ok || lo != hi {
		t.Fatalf("clean axpy: ok=%v dirty=[%d,%d)", ok, lo, hi)
	}
	for i, r := range p.Results() {
		if dst[i] != r {
			t.Fatalf("clean axpy dst[%d]=%#x, recorded %#x", i, dst[i], r)
		}
	}
	// A corrupted broadcast scalar dirties everything.
	dst = append([]fp.Bits(nil), rd...)
	var c2 Cursor
	if lo, hi, ok := p.ServeAxpy(&c2, 0, s^1, x, dst); !ok || lo != 0 || hi != n {
		t.Fatalf("corrupt s: ok=%v interval=[%d,%d), want [0,%d)", ok, lo, hi, n)
	}
	// A corrupted x element dirties exactly its interval.
	cx := append([]fp.Bits(nil), x...)
	cx[4] ^= 1 << 11
	dst = append([]fp.Bits(nil), rd...)
	var c3 Cursor
	lo, hi, ok := p.ServeAxpy(&c3, 0, s, cx, dst)
	if !ok || lo != 4 || hi != 5 {
		t.Fatalf("corrupt x[4]: ok=%v interval=[%d,%d), want [4,5)", ok, lo, hi)
	}
	fp.AXPY(m, dst[lo:hi], s, cx[lo:hi])
	want := append([]fp.Bits(nil), rd...)
	fp.AXPY(m, want, s, cx)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("axpy dst[%d]=%#x, want %#x", i, dst[i], want[i])
		}
	}
}

func TestServeGemmConePartition(t *testing.T) {
	const rows, cols, k = 3, 4, 5
	var accs, a, bt []fp.Bits
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		accs = seq(m, 50, rows)
		a = seq(m, 1, rows*k)
		bt = seq(m, 20, cols*k)
		out := make([]fp.Bits, rows*cols)
		r.GemmFMA(out, accs, a, bt, rows, cols, k)
	})
	ref := func(accs, a, bt []fp.Bits) []fp.Bits {
		out := make([]fp.Bits, rows*cols)
		fp.GemmFMA(m, out, accs, a, bt, rows, cols, k)
		return out
	}
	clean := ref(accs, a, bt)

	serve := func(t *testing.T, accs, a, bt []fp.Bits) []fp.Bits {
		t.Helper()
		out := make([]fp.Bits, rows*cols)
		var cur Cursor
		if !p.ServeGemm(&cur, 0, out, accs, a, bt, rows, cols, k, 0, rows*cols, m) {
			t.Fatal("ServeGemm rejected a matching grid")
		}
		return out
	}

	t.Run("clean", func(t *testing.T) {
		out := serve(t, accs, a, bt)
		for i := range clean {
			if out[i] != clean[i] {
				t.Fatalf("out[%d]=%#x, want %#x", i, out[i], clean[i])
			}
		}
	})
	t.Run("dirty-a-row", func(t *testing.T) {
		ca := append([]fp.Bits(nil), a...)
		ca[1*k+2] ^= 1 << 6 // row 1
		out := serve(t, accs, ca, bt)
		want := ref(accs, ca, bt)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("out[%d]=%#x, want %#x", i, out[i], want[i])
			}
		}
	})
	t.Run("dirty-bt-column", func(t *testing.T) {
		cbt := append([]fp.Bits(nil), bt...)
		cbt[2*k] ^= 1 << 15 // chain column 2
		out := serve(t, accs, a, cbt)
		want := ref(accs, a, cbt)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("out[%d]=%#x, want %#x", i, out[i], want[i])
			}
		}
	})
	t.Run("dirty-acc", func(t *testing.T) {
		caccs := append([]fp.Bits(nil), accs...)
		caccs[2] ^= 1
		out := serve(t, caccs, a, bt)
		want := ref(caccs, a, bt)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("out[%d]=%#x, want %#x", i, out[i], want[i])
			}
		}
	})
	t.Run("range-form", func(t *testing.T) {
		// Serving chains [first, limit) with pos at chain first's start
		// must agree with the full-grid serve element-for-element.
		const first, limit = 5, 9
		out := make([]fp.Bits, rows*cols)
		var cur Cursor
		if !p.ServeGemm(&cur, uint64(first*k), out, accs, a, bt, rows, cols, k, first, limit, m) {
			t.Fatal("range serve rejected")
		}
		for i := first; i < limit; i++ {
			if out[i] != clean[i] {
				t.Fatalf("out[%d]=%#x, want %#x", i, out[i], clean[i])
			}
		}
	})
	t.Run("shape-mismatch", func(t *testing.T) {
		out := make([]fp.Bits, rows*cols)
		var cur Cursor
		if p.ServeGemm(&cur, 0, out, accs, a, bt, cols, rows, k, 0, rows*cols, m) {
			t.Error("transposed shape was served")
		}
		if p.ServeGemm(&cur, 1, out, accs, a, bt, rows, cols, k, 0, rows*cols, m) {
			t.Error("misaligned position was served")
		}
	})
}

func TestServeGemmNilAccs(t *testing.T) {
	const rows, cols, k = 2, 2, 3
	var a, bt []fp.Bits
	p, m := compile(t, fp.Single, func(m fp.Env, r *Recorder) {
		a = seq(m, 1, rows*k)
		bt = seq(m, 9, cols*k)
		out := make([]fp.Bits, rows*cols)
		r.GemmFMA(out, nil, a, bt, rows, cols, k)
	})
	out := make([]fp.Bits, rows*cols)
	var cur Cursor
	if !p.ServeGemm(&cur, 0, out, nil, a, bt, rows, cols, k, 0, rows*cols, m) {
		t.Fatal("nil-accs grid rejected")
	}
	want := make([]fp.Bits, rows*cols)
	fp.GemmFMA(m, want, nil, a, bt, rows, cols, k)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d]=%#x, want %#x", i, out[i], want[i])
		}
	}
}

func TestFinalizeRejectsMalformedStreams(t *testing.T) {
	m := fp.NewMachine(fp.Single)
	results := seq(m, 1, 4)
	ok := &stream{
		regions:  []Region{{Kind: KMap2, Op: fp.OpAdd, Start: 0, N: 4, Off: 0}},
		operands: seq(m, 1, 8),
	}
	if finalize(ok, fp.Single, 4, results) == nil {
		t.Fatal("well-formed stream rejected")
	}
	cases := []struct {
		name string
		mut  func(s *stream) (ops uint64, res []fp.Bits)
	}{
		{"gap", func(s *stream) (uint64, []fp.Bits) {
			s.regions[0].Start = 1
			return 4, results
		}},
		{"short-coverage", func(s *stream) (uint64, []fp.Bits) {
			s.regions[0].N = 3
			return 4, results
		}},
		{"zero-n", func(s *stream) (uint64, []fp.Bits) {
			s.regions[0].N = 0
			return 4, results
		}},
		{"operands-out-of-bounds", func(s *stream) (uint64, []fp.Bits) {
			s.operands = s.operands[:5]
			return 4, results
		}},
		{"results-length-mismatch", func(s *stream) (uint64, []fp.Bits) {
			return 4, results[:3]
		}},
		{"gemm-shape-mismatch", func(s *stream) (uint64, []fp.Bits) {
			s.regions[0] = Region{Kind: KGemm, Op: fp.OpFMA, N: 4, Rows: 1, Cols: 1, K: 2,
				Off: 0}
			return 4, results
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &stream{
				regions:  append([]Region(nil), ok.regions...),
				operands: append([]fp.Bits(nil), ok.operands...),
			}
			ops, res := tc.mut(s)
			if finalize(s, fp.Single, ops, res) != nil {
				t.Error("malformed stream accepted")
			}
		})
	}
}

func TestRecorderCaps(t *testing.T) {
	m := fp.NewMachine(fp.Single)
	a, b := m.FromFloat64(1), m.FromFloat64(2)

	t.Run("ir-overflow-keeps-results", func(t *testing.T) {
		r := NewRecorder(m)
		r.Add(a, b)
		// Push the op counter to the IR cap (white-box) so the next
		// operation overflows it: the IR drops, the result trace stays.
		saved := r.ops
		r.ops = maxCompiledOps
		r.Add(a, b)
		r.ops = saved + 2
		if !r.irDropped {
			t.Fatal("IR cap did not trip")
		}
		if r.Compile() != nil {
			t.Error("Compile returned a program past the IR cap")
		}
		if got := r.Results(); len(got) != 2 {
			t.Errorf("result trace lost on IR overflow: %d entries", len(got))
		}
	})
	t.Run("trace-overflow-drops-everything", func(t *testing.T) {
		r := NewRecorder(m)
		r.results = make([]fp.Bits, MaxOps) // white-box: pretend MaxOps ops ran
		r.ops = MaxOps
		r.Add(a, b)
		if !r.truncated {
			t.Fatal("result-trace cap did not trip")
		}
		if r.Results() != nil {
			t.Error("truncated trace still returned")
		}
		if r.Compile() != nil {
			t.Error("Compile returned a program for a truncated trace")
		}
	})
}
