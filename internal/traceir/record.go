package traceir

import "mixedrel/internal/fp"

// MaxOps bounds the per-configuration result trace: beyond this many
// dynamic operations (32 MiB of Bits) the trace is dropped and
// injectors fall back to full recomputation. Exported so internal/exec
// can keep its "trace too long → Results() == nil" contract in one
// place.
const MaxOps = 1 << 22

// maxCompiledOps bounds the IR on top of the result-trace cap: a
// program over this many operations would carry an operand slab of
// several times the size, so the IR is dropped (Compile returns nil)
// while the flat result trace — and with it the existing replay fast
// path — is kept as long as it fits MaxOps.
const maxCompiledOps = 1 << 21

// Recorder captures one fault-free kernel execution as the trace IR.
// It implements fp.Env and fp.BatchEnv and must sit below fp.Counting
// in the recording stack — the exact stream position an injecting
// environment occupies in a faulty run — so that dynamic operation i
// of the recording is dynamic operation i of every replay, and a batch
// call recorded here is the same batch call the injector observes.
//
// Scalar operations inside batches are executed through the inner
// environment's *scalar* methods so every chain intermediate lands in
// the result trace (the injector's scalar path replays per-operation);
// the BatchEnv contract makes this bit-identical to the inner batch
// fast paths.
type Recorder struct {
	inner     fp.Env
	ops       uint64
	regions   []Region
	operands  []fp.Bits
	results   []fp.Bits
	truncated bool // result trace exceeded MaxOps; nothing is usable
	irDropped bool // IR exceeded maxCompiledOps; results still usable
}

// NewRecorder returns a recorder computing through inner (the
// reference machine for the configuration's format).
func NewRecorder(inner fp.Env) *Recorder { return &Recorder{inner: inner} }

// Ops returns the number of dynamic operations recorded so far.
func (r *Recorder) Ops() uint64 { return r.ops }

// Results returns the flat per-operation result trace, or nil when the
// execution exceeded MaxOps (a truncated trace is unusable for
// replay).
func (r *Recorder) Results() []fp.Bits {
	if r.truncated {
		return nil
	}
	return r.results
}

// Compile runs the optimizer passes over the recorded region stream
// and returns the executable Program, or nil when the execution
// overflowed a cap or the recorded stream fails validation (in which
// case callers simply keep the uncompiled replay paths).
func (r *Recorder) Compile() *Program {
	if r.truncated || r.irDropped {
		return nil
	}
	s := &stream{regions: r.regions, operands: r.operands}
	s = passSuperword(s)
	s = passCollapse(s)
	return finalize(s, r.inner.Format(), r.ops, r.results)
}

// irFull reports whether the IR can no longer accept n more
// operations, dropping the accumulated regions on first overflow.
func (r *Recorder) irFull(n int) bool {
	if r.irDropped {
		return true
	}
	if r.ops+uint64(n) > maxCompiledOps {
		r.irDropped = true
		r.regions, r.operands = nil, nil
		return true
	}
	return false
}

// pushResult appends one operation result to the flat trace.
func (r *Recorder) pushResult(b fp.Bits) {
	if r.truncated {
		return
	}
	if len(r.results) >= MaxOps {
		r.truncated = true
		r.results = nil
		return
	}
	r.results = append(r.results, b)
}

// scalar records a one-operation region. Operand slots beyond the
// operation's arity are ignored.
func (r *Recorder) scalar(op fp.Op, a, b, c, res fp.Bits) fp.Bits {
	if !r.irFull(1) {
		r.regions = append(r.regions, Region{
			Kind: KScalar, Op: op, Start: r.ops, N: 1, Off: uint32(len(r.operands)),
		})
		switch arity(op) {
		case 1:
			r.operands = append(r.operands, a)
		case 2:
			r.operands = append(r.operands, a, b)
		default:
			r.operands = append(r.operands, a, b, c)
		}
	}
	r.pushResult(res)
	r.ops++
	return res
}

// Format implements fp.Env.
func (r *Recorder) Format() fp.Format { return r.inner.Format() }

// Add implements fp.Env.
func (r *Recorder) Add(a, b fp.Bits) fp.Bits {
	return r.scalar(fp.OpAdd, a, b, 0, r.inner.Add(a, b))
}

// Sub implements fp.Env.
func (r *Recorder) Sub(a, b fp.Bits) fp.Bits {
	return r.scalar(fp.OpSub, a, b, 0, r.inner.Sub(a, b))
}

// Mul implements fp.Env.
func (r *Recorder) Mul(a, b fp.Bits) fp.Bits {
	return r.scalar(fp.OpMul, a, b, 0, r.inner.Mul(a, b))
}

// Div implements fp.Env.
func (r *Recorder) Div(a, b fp.Bits) fp.Bits {
	return r.scalar(fp.OpDiv, a, b, 0, r.inner.Div(a, b))
}

// FMA implements fp.Env.
func (r *Recorder) FMA(a, b, c fp.Bits) fp.Bits {
	return r.scalar(fp.OpFMA, a, b, c, r.inner.FMA(a, b, c))
}

// Sqrt implements fp.Env.
func (r *Recorder) Sqrt(a fp.Bits) fp.Bits {
	return r.scalar(fp.OpSqrt, a, 0, 0, r.inner.Sqrt(a))
}

// Exp implements fp.Env.
func (r *Recorder) Exp(a fp.Bits) fp.Bits {
	return r.scalar(fp.OpExp, a, 0, 0, r.inner.Exp(a))
}

// FromFloat64 implements fp.Env.
func (r *Recorder) FromFloat64(v float64) fp.Bits { return r.inner.FromFloat64(v) }

// ToFloat64 implements fp.Env.
func (r *Recorder) ToFloat64(b fp.Bits) float64 { return r.inner.ToFloat64(b) }

// chain records one KChain region and executes it element-wise so the
// intermediate accumulators land in the result trace.
func (r *Recorder) chain(acc fp.Bits, a, b []fp.Bits) fp.Bits {
	n := len(a)
	if !r.irFull(n) {
		off := len(r.operands)
		r.operands = append(r.operands, acc)
		r.operands = append(r.operands, a...)
		r.operands = append(r.operands, b[:n]...)
		r.regions = append(r.regions, Region{
			Kind: KChain, Op: fp.OpFMA, Start: r.ops, N: uint32(n), Off: uint32(off),
		})
	}
	for i, ai := range a {
		acc = r.inner.FMA(ai, b[i], acc)
		r.pushResult(acc)
	}
	r.ops += uint64(n)
	return acc
}

// DotFMA implements fp.BatchEnv.
func (r *Recorder) DotFMA(acc fp.Bits, a, b []fp.Bits) fp.Bits {
	if len(a) == 0 {
		return acc
	}
	return r.chain(acc, a, b)
}

// mapN records one KMap2/KMap3 region. Operands are snapshotted before
// the batch computes because FMAN's dst may alias c.
func (r *Recorder) mapN(kind Kind, op fp.Op, a, b, c []fp.Bits) bool {
	n := len(a)
	if r.irFull(n) {
		return false
	}
	off := len(r.operands)
	r.operands = append(r.operands, a...)
	r.operands = append(r.operands, b[:n]...)
	if kind == KMap3 {
		r.operands = append(r.operands, c[:n]...)
	}
	r.regions = append(r.regions, Region{
		Kind: kind, Op: op, Start: r.ops, N: uint32(n), Off: uint32(off),
	})
	return true
}

// AddN implements fp.BatchEnv.
func (r *Recorder) AddN(dst, a, b []fp.Bits) {
	n := len(a)
	if n == 0 {
		return
	}
	r.mapN(KMap2, fp.OpAdd, a, b, nil)
	fp.AddN(r.inner, dst, a, b)
	for _, d := range dst[:n] {
		r.pushResult(d)
	}
	r.ops += uint64(n)
}

// MulN implements fp.BatchEnv.
func (r *Recorder) MulN(dst, a, b []fp.Bits) {
	n := len(a)
	if n == 0 {
		return
	}
	r.mapN(KMap2, fp.OpMul, a, b, nil)
	fp.MulN(r.inner, dst, a, b)
	for _, d := range dst[:n] {
		r.pushResult(d)
	}
	r.ops += uint64(n)
}

// FMAN implements fp.BatchEnv.
func (r *Recorder) FMAN(dst, a, b, c []fp.Bits) {
	n := len(a)
	if n == 0 {
		return
	}
	r.mapN(KMap3, fp.OpFMA, a, b, c)
	fp.FMAN(r.inner, dst, a, b, c)
	for _, d := range dst[:n] {
		r.pushResult(d)
	}
	r.ops += uint64(n)
}

// AXPY implements fp.BatchEnv. dst is the per-element accumulator
// input, so its pristine values are snapshotted before the update.
func (r *Recorder) AXPY(dst []fp.Bits, s fp.Bits, x []fp.Bits) {
	n := len(x)
	if n == 0 {
		return
	}
	if !r.irFull(n) {
		off := len(r.operands)
		r.operands = append(r.operands, s)
		r.operands = append(r.operands, x...)
		r.operands = append(r.operands, dst[:n]...)
		r.regions = append(r.regions, Region{
			Kind: KAxpy, Op: fp.OpFMA, Start: r.ops, N: uint32(n), Off: uint32(off),
		})
	}
	fp.AXPY(r.inner, dst, s, x)
	for _, d := range dst[:n] {
		r.pushResult(d)
	}
	r.ops += uint64(n)
}

// DotFMABlock implements fp.BatchEnv: the chains are recorded in
// order, each as its own KChain region (the block shape adds no new
// stream structure beyond its member chains).
func (r *Recorder) DotFMABlock(out []fp.Bits, acc fp.Bits, u, v []fp.Bits, stride int) {
	for t := range out {
		out[t] = r.DotFMA(acc, u, v[t*stride:t*stride+len(u)])
	}
}

// GemmFMA implements fp.BatchEnv: the whole grid becomes one KGemm
// region with accumulator, a and bt slabs, executed chain-by-chain in
// row-major order so every intermediate lands in the result trace.
func (r *Recorder) GemmFMA(out, accs, a, bt []fp.Bits, rows, cols, k int) {
	n := rows * cols * k
	if n == 0 {
		return
	}
	zero := r.inner.FromFloat64(0)
	if !r.irFull(n) {
		off := len(r.operands)
		if accs != nil {
			r.operands = append(r.operands, accs[:rows]...)
		} else {
			for i := 0; i < rows; i++ {
				r.operands = append(r.operands, zero)
			}
		}
		r.operands = append(r.operands, a[:rows*k]...)
		r.operands = append(r.operands, bt[:cols*k]...)
		r.regions = append(r.regions, Region{
			Kind: KGemm, Op: fp.OpFMA, Start: r.ops, N: uint32(n), Off: uint32(off),
			Rows: uint32(rows), Cols: uint32(cols), K: uint32(k),
		})
	}
	for i := 0; i < rows; i++ {
		acc0 := zero
		if accs != nil {
			acc0 = accs[i]
		}
		for j := 0; j < cols; j++ {
			acc := acc0
			for e := 0; e < k; e++ {
				acc = r.inner.FMA(a[i*k+e], bt[j*k+e], acc)
				r.pushResult(acc)
			}
			out[i*cols+j] = acc
		}
	}
	r.ops += uint64(n)
}
