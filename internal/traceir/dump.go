package traceir

import (
	"fmt"
	"strings"
)

// dumpRegions renders a region list in the compact one-line-per-region
// form used by the pass-level golden tests:
//
//	scalar ADD @0 n=1
//	map2 MUL @1 n=12
//	chain FMA @13 n=12
//	gemm FMA @25 n=1728 rows=12 cols=12 k=12
//
// @ is the region's first dynamic stream position; n its operation
// count. Operand offsets are omitted — they are mechanical and would
// make the goldens churn on unrelated layout changes.
func dumpRegions(rs []Region) string {
	var b strings.Builder
	for i := range rs {
		r := &rs[i]
		fmt.Fprintf(&b, "%s %s @%d n=%d", r.Kind, r.Op, r.Start, r.N)
		if r.Kind == KGemm {
			fmt.Fprintf(&b, " rows=%d cols=%d k=%d", r.Rows, r.Cols, r.K)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// dump renders the stream's regions (pass-pipeline intermediate form).
func (s *stream) dump() string { return dumpRegions(s.regions) }

// Dump renders the compiled program's region stream, one region per
// line, for tests and debugging.
func (p *Program) Dump() string { return dumpRegions(p.regions) }
