// Package traceir compiles the fault-free execution trace of one
// (kernel, format, wrap) configuration into a compact, optimizable
// op-stream IR, and serves faulty replays from it.
//
// The injector re-executes a kernel once per fault sample; before the
// fault strikes, and in every part of the stream the fault never
// reaches, the sample's operations are bit-identical to the fault-free
// run's. The IR makes both facts cheap to exploit:
//
//   - a Recorder captures the golden run once as a sequence of regions
//     (scalar ops, element-wise maps, FMA chains, AXPY updates, GEMM
//     grids) carrying every operation's operand and result bits;
//   - an optimizer pipeline (superword merge, bulk collapse, index
//     partition — see passes.go) rewrites the region stream into the
//     executable Program;
//   - the Program's Serve* methods answer "is this operation (or whole
//     region) bit-identical to the recorded run?" by comparing the live
//     operand bits against the recorded ones, and hand back recorded
//     results for the fault-independent parts so only the
//     fault-dependent cone re-executes through softfloat.
//
// Soundness does not rest on any dataflow guess: an Env operation's
// result is a pure function of (operation kind, operand bits, format),
// so serving a recorded result after an operand-bits match is exact by
// construction — even if control flow diverged and the stream position
// no longer means what it meant in the golden run. Position-based
// serving *without* an operand compare is only ever done by the
// injector under its replay induction (no corruption applied yet), not
// by this package.
//
// The compiled replay path is reachable only from internal/inject (and
// the recording side from internal/exec); the compiledreplay analyzer
// in internal/analysis enforces that statically, keeping the
// bit-exactness argument reviewable in one place.
package traceir

import "mixedrel/internal/fp"

// Kind discriminates the region shapes of the IR. Each shape mirrors
// either a scalar fp.Env call or one fp.BatchEnv call, so a recorded
// region corresponds one-to-one with what the injector observes at
// replay time.
type Kind uint8

const (
	// KScalar is a single scalar operation (any fp.Op).
	KScalar Kind = iota
	// KMap2 is a run of independent two-operand operations of one kind
	// — an AddN/MulN call, or adjacent scalars fused by the superword
	// pass.
	KMap2
	// KMap3 is a run of independent three-operand FMAs — an FMAN call,
	// or adjacent scalar FMAs fused by the superword pass.
	KMap3
	// KChain is a serial FMA chain (DotFMA): operation i consumes the
	// accumulator produced by operation i-1.
	KChain
	// KAxpy is an AXPY update: dst[i] = FMA(s, x[i], dst[i]) with a
	// broadcast scalar and per-element accumulators.
	KAxpy
	// KGemm is a GemmFMA grid: Rows x Cols independent chains of
	// length K against row slabs of a and chain slabs of bt.
	KGemm
)

func (k Kind) String() string {
	switch k {
	case KScalar:
		return "scalar"
	case KMap2:
		return "map2"
	case KMap3:
		return "map3"
	case KChain:
		return "chain"
	case KAxpy:
		return "axpy"
	case KGemm:
		return "gemm"
	}
	return "kind?"
}

// Region is one segment of the dynamic operation stream. Its operand
// block lives at Program.operands[Off:]; its results are
// Program.results[Start : Start+N] (the flat result trace is shared
// with the injector's replay slice).
//
// Operand-block layouts (n = N, k = K):
//
//	KScalar  operands of the op in call order (1-3 values)
//	KMap2    a[n] then b[n]
//	KMap3    a[n], b[n], c[n]
//	KChain   acc0, a[n], b[n]
//	KAxpy    s, x[n], d[n]           (d = the accumulator inputs)
//	KGemm    accs[Rows], a[Rows*k], bt[Cols*k]
type Region struct {
	Kind  Kind
	Op    fp.Op
	Start uint64 // first dynamic stream position
	N     uint32 // dynamic operation count
	Off   uint32 // operand-block offset into Program.operands
	// Rows, Cols, K describe the KGemm grid (Rows*Cols*K == N); zero
	// for every other kind.
	Rows, Cols, K uint32
}

// contains reports whether stream position pos falls inside r.
func (r *Region) contains(pos uint64) bool {
	return pos >= r.Start && pos-r.Start < uint64(r.N)
}

// arity returns the operand count of a scalar operation of kind op.
func arity(op fp.Op) int {
	switch op {
	case fp.OpFMA:
		return 3
	case fp.OpSqrt, fp.OpExp:
		return 1
	}
	return 2
}

// operandLen returns the operand-block length of r.
func operandLen(r *Region) int {
	n := int(r.N)
	switch r.Kind {
	case KScalar:
		return arity(r.Op)
	case KMap2:
		return 2 * n
	case KMap3:
		return 3 * n
	case KChain, KAxpy:
		return 2*n + 1
	case KGemm:
		return int(r.Rows) + int(r.Rows)*int(r.K) + int(r.Cols)*int(r.K)
	}
	return 0
}

// Program is the compiled golden trace: the optimized region stream
// plus the flat operand and result bit arrays. A Program is immutable
// after Compile and safe for concurrent use; per-run state lives in the
// caller's Cursor.
type Program struct {
	format   fp.Format
	ops      uint64
	regions  []Region
	operands []fp.Bits
	results  []fp.Bits
}

// Ops returns the dynamic operation count of the recorded stream.
func (p *Program) Ops() uint64 { return p.ops }

// Format returns the format the program was recorded in.
func (p *Program) Format() fp.Format { return p.format }

// Results returns the flat per-operation result trace (element i is
// the bits produced by dynamic operation i). Shared; do not mutate.
func (p *Program) Results() []fp.Bits { return p.results }

// Regions exposes the optimized region stream for tests and dumps.
// Shared; do not mutate.
func (p *Program) Regions() []Region { return p.regions }

// Cursor carries one replay's region-lookup state. Stream positions
// are queried in (mostly) increasing order, so remembering the last
// region makes the common lookup O(1).
type Cursor struct {
	rgn int

	// Cached ServeGemm slab-compare result for region gemmRgn-1 (zero
	// means no cache). Valid because a region's operand arrays cannot
	// change between the range-serves of one grid (they are the batch
	// call's own read-only inputs), and stream positions advance
	// monotonically, so one region is never revisited with different
	// arrays within a run. Callers reset the Cursor per run.
	gemmRgn                    int
	rowLo, rowHi, colLo, colHi int
}

// find locates the region containing pos, preferring the cursor's
// last region and its successor before falling back to binary search.
func (p *Program) find(c *Cursor, pos uint64) (int, bool) {
	if pos >= p.ops {
		return 0, false
	}
	// Positions advance near-monotonically within a run, but not every
	// operation consults the program (cheap scalar kinds skip serving
	// entirely), so the next lookup may land several regions past the
	// cursor. A short forward scan catches those skips without paying a
	// full binary search per batch call.
	if i := c.rgn; i < len(p.regions) {
		if p.regions[i].contains(pos) {
			return i, true
		}
		for j := i + 1; j < len(p.regions) && j <= i+8; j++ {
			if p.regions[j].contains(pos) {
				c.rgn = j
				return j, true
			}
			if p.regions[j].Start > pos {
				break
			}
		}
	}
	lo, hi := 0, len(p.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.regions[mid].Start > pos {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo - 1
	if i >= 0 && p.regions[i].contains(pos) {
		c.rgn = i
		return i, true
	}
	return 0, false
}

// ServeScalar serves the scalar operation at stream position pos when
// its kind and live operand bits match the recorded ones, returning
// the recorded result. A false return means the operation is inside
// the fault-dependent cone (or the position left the recorded stream)
// and must be recomputed. Unused operand slots are ignored per the
// operation's arity.
//mixedrelvet:hotpath compiled-trace compare-serving, one call per golden operation
func (p *Program) ServeScalar(cur *Cursor, pos uint64, op fp.Op, a, b, c fp.Bits) (fp.Bits, bool) {
	ri, ok := p.find(cur, pos)
	if !ok {
		return 0, false
	}
	r := &p.regions[ri]
	i := pos - r.Start
	n := uint64(r.N)
	ops := p.operands[r.Off:]
	switch r.Kind {
	case KScalar:
		if r.Op != op {
			return 0, false
		}
		switch arity(op) {
		case 1:
			if ops[0] != a {
				return 0, false
			}
		case 2:
			if ops[0] != a || ops[1] != b {
				return 0, false
			}
		default:
			if ops[0] != a || ops[1] != b || ops[2] != c {
				return 0, false
			}
		}
	case KMap2:
		if r.Op != op || ops[i] != a || ops[n+i] != b {
			return 0, false
		}
	case KMap3:
		if op != fp.OpFMA || ops[i] != a || ops[n+i] != b || ops[2*n+i] != c {
			return 0, false
		}
	case KChain:
		if op != fp.OpFMA {
			return 0, false
		}
		acc := ops[0]
		if i > 0 {
			acc = p.results[pos-1]
		}
		if ops[1+i] != a || ops[1+n+i] != b || acc != c {
			return 0, false
		}
	case KAxpy:
		if op != fp.OpFMA || ops[0] != a || ops[1+i] != b || ops[1+n+i] != c {
			return 0, false
		}
	case KGemm:
		if op != fp.OpFMA {
			return 0, false
		}
		k := uint64(r.K)
		chain := i / k
		e := i % k
		row, col := chain/uint64(r.Cols), chain%uint64(r.Cols)
		acc := ops[row]
		if e > 0 {
			acc = p.results[pos-1]
		}
		aOff := uint64(r.Rows) + row*k + e
		btOff := uint64(r.Rows) + uint64(r.Rows)*k + col*k + e
		if ops[aOff] != a || ops[btOff] != b || acc != c {
			return 0, false
		}
	default:
		return 0, false
	}
	return p.results[pos], true
}

// ChainPrefix serves the longest fault-independent prefix of the FMA
// chain starting at stream position pos: it returns the accumulator
// after the first i chain elements and the element count i served. The
// caller re-executes elements i..len(a)-1 through softfloat (i ==
// len(a) means the whole chain was served; i == 0 means nothing
// matched and acc passes through unchanged). Chains are resolved
// against KChain regions and against chain-aligned interiors of KGemm
// grids.
//mixedrelvet:hotpath compiled-trace compare-serving, one call per golden operation
func (p *Program) ChainPrefix(cur *Cursor, pos uint64, acc fp.Bits, a, b []fp.Bits) (fp.Bits, int) {
	n := len(a)
	if n == 0 {
		return acc, 0
	}
	ri, ok := p.find(cur, pos)
	if !ok {
		return acc, 0
	}
	r := &p.regions[ri]
	var racc fp.Bits
	var ra, rb []fp.Bits
	switch r.Kind {
	case KChain:
		if pos != r.Start || n != int(r.N) {
			return acc, 0
		}
		ops := p.operands[r.Off:]
		racc = ops[0]
		ra = ops[1 : 1+n]
		rb = ops[1+n : 1+2*n]
	case KGemm:
		i := pos - r.Start
		k := uint64(r.K)
		if n != int(k) || i%k != 0 {
			return acc, 0
		}
		chain := i / k
		row, col := chain/uint64(r.Cols), chain%uint64(r.Cols)
		ops := p.operands[r.Off:]
		racc = ops[row]
		aOff := uint64(r.Rows) + row*k
		btOff := uint64(r.Rows) + uint64(r.Rows)*k + col*k
		ra = ops[aOff : aOff+k]
		rb = ops[btOff : btOff+k]
	default:
		return acc, 0
	}
	if acc != racc {
		return acc, 0
	}
	for i := 0; i < n; i++ {
		if a[i] != ra[i] || b[i] != rb[i] {
			if i == 0 {
				return acc, 0
			}
			return p.results[pos+uint64(i)-1], i
		}
	}
	return p.results[pos+uint64(n)-1], n
}

// mismatch returns the half-open dirty interval [lo, hi) of indices
// where live differs from rec; lo == hi means the slices are
// bit-identical. The interval form is deliberately coarse — covering
// scattered mismatches costs extra recomputation, never correctness.
func mismatch(live, rec []fp.Bits) (lo, hi int) {
	n := len(live)
	for lo = 0; lo < n; lo++ {
		if live[lo] != rec[lo] {
			break
		}
	}
	if lo == n {
		return 0, 0
	}
	for hi = n; hi > lo; hi-- {
		if live[hi-1] != rec[hi-1] {
			break
		}
	}
	return lo, hi
}

// ServeMap partitions the element-wise batch at stream position pos
// (an AddN/MulN call when c is nil, an FMAN call otherwise) into the
// fault-independent part — served into dst from the recorded results —
// and the dirty interval [lo, hi), which the caller must recompute.
// dst entries inside the dirty interval are left untouched so that an
// FMAN whose dst aliases c still reads pristine accumulator inputs. A
// false ok means the region shape did not match and the caller must
// recompute the whole batch.
//mixedrelvet:hotpath compiled-trace compare-serving, one call per golden operation
func (p *Program) ServeMap(cur *Cursor, pos uint64, op fp.Op, dst, a, b, c []fp.Bits) (lo, hi int, ok bool) {
	n := len(a)
	ri, found := p.find(cur, pos)
	if !found {
		return 0, 0, false
	}
	r := &p.regions[ri]
	i := int(pos - r.Start)
	if r.Op != op || i+n > int(r.N) {
		return 0, 0, false
	}
	rn := int(r.N)
	ops := p.operands[r.Off:]
	switch r.Kind {
	case KMap2:
		if c != nil {
			return 0, 0, false
		}
		alo, ahi := mismatch(a, ops[i:i+n])
		blo, bhi := mismatch(b, ops[rn+i:rn+i+n])
		lo, hi = union(alo, ahi, blo, bhi)
	case KMap3:
		if c == nil {
			return 0, 0, false
		}
		alo, ahi := mismatch(a, ops[i:i+n])
		blo, bhi := mismatch(b, ops[rn+i:rn+i+n])
		lo, hi = union(alo, ahi, blo, bhi)
		clo, chi := mismatch(c, ops[2*rn+i:2*rn+i+n])
		lo, hi = union(lo, hi, clo, chi)
	default:
		return 0, 0, false
	}
	res := p.results[pos : pos+uint64(n)]
	copy(dst[:lo], res[:lo])
	copy(dst[hi:n], res[hi:])
	return lo, hi, true
}

// ServeAxpy is ServeMap for an AXPY batch: dst is both the per-element
// accumulator input and the output. Clean elements are served from the
// recorded results; the dirty interval [lo, hi) keeps its accumulator
// inputs for the caller to recompute. A corrupted broadcast scalar s
// dirties every element, reported as a full-range interval.
//mixedrelvet:hotpath compiled-trace compare-serving, one call per golden operation
func (p *Program) ServeAxpy(cur *Cursor, pos uint64, s fp.Bits, x, dst []fp.Bits) (lo, hi int, ok bool) {
	n := len(x)
	ri, found := p.find(cur, pos)
	if !found {
		return 0, 0, false
	}
	r := &p.regions[ri]
	i := int(pos - r.Start)
	if r.Kind != KAxpy || i+n > int(r.N) {
		return 0, 0, false
	}
	rn := int(r.N)
	ops := p.operands[r.Off:]
	if ops[0] != s {
		return 0, n, true
	}
	xlo, xhi := mismatch(x, ops[1+i:1+i+n])
	dlo, dhi := mismatch(dst, ops[1+rn+i:1+rn+i+n])
	lo, hi = union(xlo, xhi, dlo, dhi)
	res := p.results[pos : pos+uint64(n)]
	copy(dst[:lo], res[:lo])
	copy(dst[hi:n], res[hi:])
	return lo, hi, true
}

// ServeGemm partitions the chains [first, limit) of a GemmFMA grid —
// pos is the stream position of chain first's initial operation — into
// fault-independent chains, served from the recorded chain tails into
// out[first:limit], and fault-dependent ones, recomputed as DotFMA
// chains through inner. Dirtiness is resolved at slab granularity: one
// compare of the live a, bt and accumulator slabs against the recorded
// operand bits yields dirty row and chain-column intervals, instead of
// re-comparing the slabs once per chain. The range form lets the
// injector bulk-serve everything around a struck chain. A false return
// means the region shape did not match and the caller must recompute
// the chains itself.
//mixedrelvet:hotpath compiled-trace compare-serving, one call per golden operation
func (p *Program) ServeGemm(cur *Cursor, pos uint64, out, accs, a, bt []fp.Bits, rows, cols, k, first, limit int, inner fp.Env) bool {
	ri, found := p.find(cur, pos)
	if !found {
		return false
	}
	r := &p.regions[ri]
	if r.Kind != KGemm || pos != r.Start+uint64(first)*uint64(k) ||
		int(r.Rows) != rows || int(r.Cols) != cols || int(r.K) != k ||
		first < 0 || limit > rows*cols {
		return false
	}
	var rowLo, rowHi, colLo, colHi int
	if cur.gemmRgn == ri+1 {
		rowLo, rowHi = cur.rowLo, cur.rowHi
		colLo, colHi = cur.colLo, cur.colHi
	} else {
		ops := p.operands[r.Off:]
		accSlab := ops[:rows]
		aSlab := ops[rows : rows+rows*k]
		btSlab := ops[rows+rows*k : rows+rows*k+cols*k]
		if accs == nil {
			// A nil accs means every chain starts from FromFloat64(0),
			// whose encoding is all-zero bits in every format; any
			// recorded accumulator that is not +0 marks its row dirty.
			lo, hi := 0, rows
			for lo < rows && accSlab[lo] == 0 {
				lo++
			}
			for hi > lo && accSlab[hi-1] == 0 {
				hi--
			}
			rowLo, rowHi = lo, hi
		} else {
			rowLo, rowHi = mismatch(accs[:rows], accSlab)
		}
		alo, ahi := mismatch(a[:rows*k], aSlab)
		rowLo, rowHi = union(rowLo, rowHi, alo/k, (ahi+k-1)/k)
		btlo, bthi := mismatch(bt[:cols*k], btSlab)
		colLo, colHi = btlo/k, (bthi+k-1)/k
		cur.gemmRgn = ri + 1
		cur.rowLo, cur.rowHi = rowLo, rowHi
		cur.colLo, cur.colHi = colLo, colHi
	}

	// fin[t*k] is chain t's final accumulator (its last recorded
	// result).
	fin := p.results[r.Start+uint64(k)-1:]
	if rowLo == rowHi && colLo == colHi {
		// No dirty interval — the fault never reached this grid's
		// operands (an operation fault corrupts a value in flight, not
		// the arrays), so every chain serves from the trace.
		for t := first; t < limit; t++ {
			out[t] = fin[t*k]
		}
		return true
	}
	i, j := first/cols, first%cols
	for t := first; t < limit; t++ {
		if (i >= rowLo && i < rowHi) || (j >= colLo && j < colHi) {
			var acc fp.Bits
			if accs != nil {
				acc = accs[i]
			}
			ca, cb := a[i*k:(i+1)*k], bt[j*k:j*k+k]
			// The chain's own prefix up to the first corrupted element
			// still matches the recorded stream; recompute only the
			// suffix the corruption reaches.
			acc, srv := p.ChainPrefix(cur, r.Start+uint64(t)*uint64(k), acc, ca, cb)
			if srv < k {
				acc = fp.DotFMA(inner, acc, ca[srv:], cb[srv:])
			}
			out[t] = acc
		} else {
			out[t] = fin[t*k]
		}
		if j++; j == cols {
			j, i = 0, i+1
		}
	}
	return true
}

// union merges two half-open intervals into the smallest interval
// covering both; empty intervals (lo == hi) are identities.
func union(alo, ahi, blo, bhi int) (int, int) {
	if alo == ahi {
		return blo, bhi
	}
	if blo == bhi {
		return alo, ahi
	}
	if blo < alo {
		alo = blo
	}
	if bhi > ahi {
		ahi = bhi
	}
	return alo, ahi
}
