package fp

import "math"

// Op identifies a dynamic arithmetic operation kind. The architecture
// models assign per-Op hardware complexity and the injectors target
// specific dynamic operations.
type Op int

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpFMA
	OpSqrt
	OpExp
	numOps
)

// NumOps is the number of distinct operation kinds.
const NumOps = int(numOps)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "ADD"
	case OpSub:
		return "SUB"
	case OpMul:
		return "MUL"
	case OpDiv:
		return "DIV"
	case OpFMA:
		return "FMA"
	case OpSqrt:
		return "SQRT"
	case OpExp:
		return "EXP"
	}
	return "OP?"
}

// Env performs IEEE-754 arithmetic in a fixed format on raw Bits values.
// Kernels are written against Env so that the same code runs the golden
// (fault-free) computation, the counting pass that sizes a campaign, and
// the faulty runs in which a wrapped Env perturbs chosen operations.
type Env interface {
	// Format returns the format all Bits values are encoded in.
	Format() Format
	// Add returns a+b rounded to the environment's format.
	Add(a, b Bits) Bits
	// Sub returns a-b rounded to the environment's format.
	Sub(a, b Bits) Bits
	// Mul returns a*b rounded to the environment's format.
	Mul(a, b Bits) Bits
	// Div returns a/b rounded to the environment's format.
	Div(a, b Bits) Bits
	// FMA returns a*b+c with a single rounding in binary64 arithmetic
	// and a final rounding to the environment's format.
	FMA(a, b, c Bits) Bits
	// Sqrt returns the square root of a.
	Sqrt(a Bits) Bits
	// Exp returns e**a, the transcendental exercised by LavaMD.
	Exp(a Bits) Bits
	// FromFloat64 rounds a float64 into the environment's format.
	FromFloat64(v float64) Bits
	// ToFloat64 decodes a value of the environment's format exactly.
	ToFloat64(b Bits) float64
}

// Machine is the reference (fault-free) Env for a format.
//
// For Half, operands are decoded to binary64 — exactly — and the binary64
// result is rounded once to binary16. For Add, Sub, Mul and FMA the
// binary64 intermediate is exact, so the final rounding is the correctly
// rounded binary16 result. Div, Sqrt and Exp may double-round in rare
// cases; the discrepancy is below 1 ulp and irrelevant to the reliability
// analyses. For Single, native float32 arithmetic is used where it is
// exact.
type Machine struct {
	f Format
}

// NewMachine returns the reference environment for format f.
func NewMachine(f Format) *Machine { return &Machine{f: f} }

// Format implements Env.
func (m *Machine) Format() Format { return m.f }

// round converts a binary64 result into the machine's format.
func (m *Machine) round(v float64) Bits { return m.f.FromFloat64(v) }

// Add implements Env.
func (m *Machine) Add(a, b Bits) Bits {
	switch m.f {
	case Single:
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) + math.Float32frombits(uint32(b))))
	case Double:
		return Bits(math.Float64bits(math.Float64frombits(uint64(a)) + math.Float64frombits(uint64(b))))
	}
	return m.round(m.f.ToFloat64(a) + m.f.ToFloat64(b))
}

// Sub implements Env.
func (m *Machine) Sub(a, b Bits) Bits {
	switch m.f {
	case Single:
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) - math.Float32frombits(uint32(b))))
	case Double:
		return Bits(math.Float64bits(math.Float64frombits(uint64(a)) - math.Float64frombits(uint64(b))))
	}
	return m.round(m.f.ToFloat64(a) - m.f.ToFloat64(b))
}

// Mul implements Env.
func (m *Machine) Mul(a, b Bits) Bits {
	switch m.f {
	case Single:
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) * math.Float32frombits(uint32(b))))
	case Double:
		return Bits(math.Float64bits(math.Float64frombits(uint64(a)) * math.Float64frombits(uint64(b))))
	}
	return m.round(m.f.ToFloat64(a) * m.f.ToFloat64(b))
}

// Div implements Env.
func (m *Machine) Div(a, b Bits) Bits {
	switch m.f {
	case Single:
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) / math.Float32frombits(uint32(b))))
	case Double:
		return Bits(math.Float64bits(math.Float64frombits(uint64(a)) / math.Float64frombits(uint64(b))))
	}
	return m.round(m.f.ToFloat64(a) / m.f.ToFloat64(b))
}

// FMA implements Env.
func (m *Machine) FMA(a, b, c Bits) Bits {
	switch m.f {
	case Single:
		return Bits(math.Float32bits(float32(math.FMA(
			float64(math.Float32frombits(uint32(a))),
			float64(math.Float32frombits(uint32(b))),
			float64(math.Float32frombits(uint32(c)))))))
	case Double:
		return Bits(math.Float64bits(math.FMA(
			math.Float64frombits(uint64(a)),
			math.Float64frombits(uint64(b)),
			math.Float64frombits(uint64(c)))))
	}
	return m.round(math.FMA(m.f.ToFloat64(a), m.f.ToFloat64(b), m.f.ToFloat64(c)))
}

// Sqrt implements Env.
func (m *Machine) Sqrt(a Bits) Bits {
	if m.f == Single {
		return Bits(math.Float32bits(float32(math.Sqrt(float64(math.Float32frombits(uint32(a)))))))
	}
	return m.round(math.Sqrt(m.f.ToFloat64(a)))
}

// Exp implements Env.
func (m *Machine) Exp(a Bits) Bits {
	return m.round(math.Exp(m.f.ToFloat64(a)))
}

// FromFloat64 implements Env.
func (m *Machine) FromFloat64(v float64) Bits { return m.f.FromFloat64(v) }

// ToFloat64 implements Env.
func (m *Machine) ToFloat64(b Bits) float64 { return m.f.ToFloat64(b) }

// OpCounts records how many dynamic operations of each kind a kernel
// executed, plus the number of values loaded from and stored to the
// kernel's data arrays. The architecture models turn these into resource
// exposure and timing.
type OpCounts struct {
	ByOp   [NumOps]uint64
	Loads  uint64
	Stores uint64
	// IntSites counts the integer sequencing decisions of software
	// routines (see ExpDecomp.IntSites).
	IntSites uint64
}

// Total returns the total number of arithmetic operations.
func (c OpCounts) Total() uint64 {
	var t uint64
	for _, n := range c.ByOp {
		t += n
	}
	return t
}

// FLOPs returns floating-point operations counting FMA as two.
func (c OpCounts) FLOPs() uint64 {
	return c.Total() + c.ByOp[OpFMA]
}

// Add accumulates other into c.
func (c *OpCounts) Add(other OpCounts) {
	for i := range c.ByOp {
		c.ByOp[i] += other.ByOp[i]
	}
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.IntSites += other.IntSites
}

// Counting wraps an Env and tallies every dynamic operation. It is used
// to profile kernels (for the architecture timing/exposure models) and to
// size fault-injection campaigns.
type Counting struct {
	Inner  Env
	Counts OpCounts
}

// NewCounting returns a counting wrapper around inner.
func NewCounting(inner Env) *Counting { return &Counting{Inner: inner} }

// Format implements Env.
func (c *Counting) Format() Format { return c.Inner.Format() }

// Add implements Env.
func (c *Counting) Add(a, b Bits) Bits {
	c.Counts.ByOp[OpAdd]++
	return c.Inner.Add(a, b)
}

// Sub implements Env.
func (c *Counting) Sub(a, b Bits) Bits {
	c.Counts.ByOp[OpSub]++
	return c.Inner.Sub(a, b)
}

// Mul implements Env.
func (c *Counting) Mul(a, b Bits) Bits {
	c.Counts.ByOp[OpMul]++
	return c.Inner.Mul(a, b)
}

// Div implements Env.
func (c *Counting) Div(a, b Bits) Bits {
	c.Counts.ByOp[OpDiv]++
	return c.Inner.Div(a, b)
}

// FMA implements Env.
func (c *Counting) FMA(a, b, x Bits) Bits {
	c.Counts.ByOp[OpFMA]++
	return c.Inner.FMA(a, b, x)
}

// Sqrt implements Env.
func (c *Counting) Sqrt(a Bits) Bits {
	c.Counts.ByOp[OpSqrt]++
	return c.Inner.Sqrt(a)
}

// Exp implements Env.
func (c *Counting) Exp(a Bits) Bits {
	c.Counts.ByOp[OpExp]++
	return c.Inner.Exp(a)
}

// IntDecision implements IntDecider: it tallies integer sequencing
// sites and passes the value through.
func (c *Counting) IntDecision(k int) int {
	c.Counts.IntSites++
	return k
}

// FromFloat64 implements Env.
func (c *Counting) FromFloat64(v float64) Bits { return c.Inner.FromFloat64(v) }

// ToFloat64 implements Env.
func (c *Counting) ToFloat64(b Bits) float64 { return c.Inner.ToFloat64(b) }
