package fp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatFieldWidths(t *testing.T) {
	cases := []struct {
		f                          Format
		width, mant, exp, bias, sz int
	}{
		{Half, 16, 10, 5, 15, 2},
		{Single, 32, 23, 8, 127, 4},
		{Double, 64, 52, 11, 1023, 8},
	}
	for _, c := range cases {
		if c.f.Width() != c.width || c.f.MantBits() != c.mant ||
			c.f.ExpBits() != c.exp || c.f.Bias() != c.bias || c.f.Bytes() != c.sz {
			t.Errorf("%v: got width=%d mant=%d exp=%d bias=%d bytes=%d",
				c.f, c.f.Width(), c.f.MantBits(), c.f.ExpBits(), c.f.Bias(), c.f.Bytes())
		}
		if 1+c.f.MantBits()+c.f.ExpBits() != c.f.Width() {
			t.Errorf("%v: fields do not sum to width", c.f)
		}
	}
}

func TestFormatStrings(t *testing.T) {
	if Half.String() != "half" || Single.String() != "single" || Double.String() != "double" {
		t.Errorf("unexpected names: %v %v %v", Half, Single, Double)
	}
	if Format(99).String() == "" {
		t.Error("unknown format should still stringify")
	}
}

func TestClassifiers(t *testing.T) {
	for _, f := range Formats {
		one := f.FromFloat64(1)
		if f.IsNaN(one) || f.IsInf(one) || f.IsZero(one) || f.IsSubnormal(one) {
			t.Errorf("%v: 1.0 misclassified", f)
		}
		if !f.IsNaN(f.QuietNaN()) {
			t.Errorf("%v: QuietNaN not NaN", f)
		}
		if !f.IsInf(f.Inf(false)) || !f.IsInf(f.Inf(true)) {
			t.Errorf("%v: Inf not Inf", f)
		}
		if f.Sign(f.Inf(false)) || !f.Sign(f.Inf(true)) {
			t.Errorf("%v: Inf sign wrong", f)
		}
		if !f.IsZero(f.FromFloat64(0)) {
			t.Errorf("%v: 0 not zero", f)
		}
		negZero := f.FromFloat64(math.Copysign(0, -1))
		if !f.IsZero(negZero) || !f.Sign(negZero) {
			t.Errorf("%v: -0 misclassified", f)
		}
		sub := f.FromFloat64(math.Ldexp(1, -f.Bias()-1))
		if !f.IsSubnormal(sub) {
			t.Errorf("%v: expected subnormal, got %#x", f, sub)
		}
	}
}

func TestMaxFinite(t *testing.T) {
	for _, f := range Formats {
		m := f.MaxFinite()
		if b := f.FromFloat64(m); f.IsInf(b) {
			t.Errorf("%v: MaxFinite overflows its own format", f)
		}
		if b := f.FromFloat64(m * 2); !f.IsInf(b) {
			t.Errorf("%v: 2*MaxFinite should be Inf", f)
		}
	}
}

func TestMachineEpsilon(t *testing.T) {
	for _, f := range Formats {
		eps := f.MachineEpsilon()
		one := f.FromFloat64(1)
		next := f.FromFloat64(1 + eps)
		if next == one {
			t.Errorf("%v: 1+eps not distinguishable from 1", f)
		}
		if d := ULPDistance(f, one, next); d != 1 {
			t.Errorf("%v: 1 and 1+eps are %d ulps apart, want 1", f, d)
		}
	}
}

func TestFlipBit(t *testing.T) {
	for _, f := range Formats {
		b := f.FromFloat64(1)
		for i := 0; i < f.Width(); i++ {
			flipped := f.FlipBit(b, i)
			if flipped == b {
				t.Errorf("%v: FlipBit(%d) is identity", f, i)
			}
			if f.FlipBit(flipped, i) != b {
				t.Errorf("%v: FlipBit(%d) is not an involution", f, i)
			}
		}
		// Flipping the sign bit exactly negates.
		neg := f.FlipBit(b, f.Width()-1)
		if f.ToFloat64(neg) != -1 {
			t.Errorf("%v: sign-bit flip of 1.0 = %v", f, f.ToFloat64(neg))
		}
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlipBit(%d) on half did not panic", i)
				}
			}()
			Half.FlipBit(0, i)
		}()
	}
}

func TestConversionExactness(t *testing.T) {
	// Every half and single value converts to float64 and back exactly.
	vals := []float64{0, 1, -1, 0.5, 2, 1024, 0.0009765625, 3.140625}
	for _, f := range Formats {
		for _, v := range vals {
			b := f.FromFloat64(v)
			if got := f.FromFloat64(f.ToFloat64(b)); got != b {
				t.Errorf("%v: %v does not round trip (%#x vs %#x)", f, v, got, b)
			}
		}
	}
}

func TestULPDistance(t *testing.T) {
	for _, f := range Formats {
		one := f.FromFloat64(1)
		if d := ULPDistance(f, one, one); d != 0 {
			t.Errorf("%v: ULP(1,1) = %d", f, d)
		}
		// Across zero: +min_subnormal and -min_subnormal are 2 apart.
		pos, neg := Bits(1), f.signMask()|1
		if d := ULPDistance(f, pos, neg); d != 2 {
			t.Errorf("%v: ULP across zero = %d, want 2", f, d)
		}
		if d := ULPDistance(f, f.QuietNaN(), one); d != math.MaxUint64 {
			t.Errorf("%v: ULP with NaN = %d", f, d)
		}
	}
}

func TestULPDistanceSymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		return ULPDistance(Half, Bits(a), Bits(b)) == ULPDistance(Half, Bits(b), Bits(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		want, got, rel float64
	}{
		{100, 100, 0},
		{100, 110, 0.1},
		{100, 90, 0.1},
		{-100, -90, 0.1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if r := RelErr(c.want, c.got); math.Abs(r-c.rel) > 1e-12 {
			t.Errorf("RelErr(%v,%v) = %v, want %v", c.want, c.got, r, c.rel)
		}
	}
	if !math.IsInf(RelErr(0, 1), 1) {
		t.Error("RelErr(0,1) should be +Inf")
	}
	if !math.IsInf(RelErr(1, math.NaN()), 1) {
		t.Error("RelErr(1,NaN) should be +Inf")
	}
	if !math.IsInf(RelErr(1, math.Inf(1)), 1) {
		t.Error("RelErr(1,Inf) should be +Inf")
	}
	if RelErr(math.Inf(1), math.Inf(1)) != 0 {
		t.Error("RelErr(Inf,Inf) should be 0")
	}
}

func TestMaxRelErr(t *testing.T) {
	want := []float64{1, 2, 4}
	got := []float64{1, 2.2, 4}
	if r := MaxRelErr(want, got); math.Abs(r-0.1) > 1e-12 {
		t.Errorf("MaxRelErr = %v, want 0.1", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxRelErr length mismatch did not panic")
		}
	}()
	MaxRelErr([]float64{1}, []float64{1, 2})
}
