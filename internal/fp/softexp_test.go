package fp

import (
	"math"
	"testing"

	"mixedrel/internal/rng"
)

func TestExpDecompAccuracy(t *testing.T) {
	cases := []struct {
		f         Format
		terms, sq int
		relTol    float64
	}{
		{Double, 13, 3, 1e-13},
		{Double, 10, 1, 1e-12},
		{Single, 7, 1, 1e-6},
		{Single, 6, 1, 1e-5},
		{Half, 4, 0, 2e-3},
	}
	for _, c := range cases {
		env := NewExpDecomp(NewMachine(c.f), c.terms, c.sq)
		for _, x := range []float64{0, 1, -1, 0.5, -0.75, 2.5, -3, 5, -5, 0.01, -0.01} {
			got := env.ToFloat64(env.Exp(env.FromFloat64(x)))
			want := math.Exp(x)
			// Compare against the value of exp at the *rounded* input.
			wantRounded := math.Exp(c.f.ToFloat64(c.f.FromFloat64(x)))
			if RelErr(wantRounded, got) > c.relTol && RelErr(want, got) > c.relTol {
				t.Errorf("%v terms=%d sq=%d: exp(%v) = %v, want %v (rel %g)",
					c.f, c.terms, c.sq, x, got, want, RelErr(wantRounded, got))
			}
		}
	}
}

func TestExpDecompSpecials(t *testing.T) {
	for _, f := range Formats {
		env := NewExpDecomp(NewMachine(f), 8, 1)
		if !f.IsNaN(env.Exp(f.QuietNaN())) {
			t.Errorf("%v: exp(NaN) not NaN", f)
		}
		if !f.IsInf(env.Exp(f.Inf(false))) {
			t.Errorf("%v: exp(+Inf) not Inf", f)
		}
		if got := env.ToFloat64(env.Exp(f.Inf(true))); got != 0 {
			t.Errorf("%v: exp(-Inf) = %v", f, got)
		}
		if got := env.ToFloat64(env.Exp(env.FromFloat64(0))); got != 1 {
			t.Errorf("%v: exp(0) = %v", f, got)
		}
	}
}

func TestExpDecompOverflowUnderflow(t *testing.T) {
	for _, f := range Formats {
		env := NewExpDecomp(NewMachine(f), 8, 1)
		big := math.Log(f.MaxFinite()) + 5
		if !f.IsInf(env.Exp(env.FromFloat64(big))) {
			t.Errorf("%v: exp(%v) should overflow to Inf", f, big)
		}
		if got := env.ToFloat64(env.Exp(env.FromFloat64(-big - 40))); got != 0 {
			t.Errorf("%v: exp(%v) = %v, want 0", f, -big-40, got)
		}
	}
}

func TestExpDecompDelegatesOtherOps(t *testing.T) {
	m := NewMachine(Single)
	env := NewExpDecomp(m, 6, 1)
	a, b := env.FromFloat64(3), env.FromFloat64(4)
	if env.Add(a, b) != m.Add(a, b) || env.Mul(a, b) != m.Mul(a, b) ||
		env.Sub(a, b) != m.Sub(a, b) || env.Div(a, b) != m.Div(a, b) ||
		env.FMA(a, b, a) != m.FMA(a, b, a) || env.Sqrt(a) != m.Sqrt(a) {
		t.Error("non-exp operations must delegate unchanged")
	}
	if env.Format() != Single {
		t.Error("format must delegate")
	}
}

// The decomposition's interior operations must be visible to a counting
// (and hence an injecting) inner environment.
func TestExpDecompExposesInteriorOps(t *testing.T) {
	counting := NewCounting(NewMachine(Double))
	env := NewExpDecomp(counting, 13, 3)
	env.Exp(env.FromFloat64(-0.5))
	if counting.Counts.ByOp[OpExp] != 0 {
		t.Error("decomposed exp must not invoke the atomic Exp")
	}
	// Range reduction (1 FMA) + 12 Horner FMAs.
	if got := counting.Counts.ByOp[OpFMA]; got != 13 {
		t.Errorf("FMA count = %d, want 13", got)
	}
	// Halving (1) + squarings (3) + reconstruction (k = -1 -> 1).
	if got := counting.Counts.ByOp[OpMul]; got != 5 {
		t.Errorf("MUL count = %d, want 5", got)
	}
}

func TestExpDecompLongerForMoreTerms(t *testing.T) {
	ops := func(terms, sq int) uint64 {
		counting := NewCounting(NewMachine(Double))
		env := NewExpDecomp(counting, terms, sq)
		env.Exp(env.FromFloat64(-0.4))
		return counting.Counts.Total()
	}
	if !(ops(13, 3) > ops(7, 1)) {
		t.Error("a longer implementation must execute more operations")
	}
}

func TestExpDecompClampsDegenerateShape(t *testing.T) {
	env := NewExpDecomp(NewMachine(Single), 0, -2)
	if env.Terms != 2 || env.Squarings != 0 {
		t.Errorf("shape not clamped: terms=%d sq=%d", env.Terms, env.Squarings)
	}
	// Still produces a finite, roughly right value.
	got := env.ToFloat64(env.Exp(env.FromFloat64(0.1)))
	if math.Abs(got-math.Exp(0.1)) > 0.05 {
		t.Errorf("degenerate shape exp(0.1) = %v", got)
	}
}

func TestWrapExp(t *testing.T) {
	wrap := WrapExp(ExpShape{Terms: 6, Squarings: 1})
	env := wrap(NewMachine(Single))
	d, ok := env.(*ExpDecomp)
	if !ok {
		t.Fatal("WrapExp did not produce an ExpDecomp")
	}
	if d.Terms != 6 || d.Squarings != 1 {
		t.Errorf("shape = %d/%d", d.Terms, d.Squarings)
	}
}

// Random sweep: the software exp stays within a few ulps of the machine
// exp across each format's interesting range.
func TestExpDecompRandomSweep(t *testing.T) {
	r := rng.New(99)
	shapes := map[Format]ExpShape{
		Half:   {Terms: 4, Squarings: 0},
		Single: {Terms: 7, Squarings: 1},
		Double: {Terms: 13, Squarings: 3},
	}
	tols := map[Format]float64{Half: 3e-3, Single: 3e-6, Double: 1e-12}
	for f, shape := range shapes {
		env := NewExpDecomp(NewMachine(f), shape.Terms, shape.Squarings)
		m := NewMachine(f)
		for i := 0; i < 2000; i++ {
			x := (r.Float64() - 0.6) * 12 // mostly in-range arguments
			b := env.FromFloat64(x)
			got := env.ToFloat64(env.Exp(b))
			want := m.ToFloat64(m.Exp(b))
			if want == 0 || math.IsInf(want, 0) {
				continue
			}
			if RelErr(want, got) > tols[f] {
				t.Fatalf("%v: exp(%v) = %v vs machine %v (rel %g)",
					f, x, got, want, RelErr(want, got))
			}
		}
	}
}

// countingIntDecider wraps a Machine and records integer decisions.
type countingIntDecider struct {
	*Machine
	calls int
	bump  int
}

func (c *countingIntDecider) IntDecision(k int) int {
	c.calls++
	return k + c.bump
}

func TestExpDecompIntSites(t *testing.T) {
	inner := &countingIntDecider{Machine: NewMachine(Double)}
	env := NewExpDecomp(inner, 13, 3)
	env.IntSites = 2
	env.Exp(env.FromFloat64(-0.5))
	if inner.calls != 2 {
		t.Errorf("IntDecision called %d times, want 2", inner.calls)
	}
}

// Corrupting the reconstruction quotient scales the result by a power
// of two — the polynomial stays consistent, the output does not.
func TestExpDecompIntCorruptionScalesByPowerOfTwo(t *testing.T) {
	clean := &countingIntDecider{Machine: NewMachine(Double)}
	dirty := &countingIntDecider{Machine: NewMachine(Double), bump: 3}
	x := Double.FromFloat64(-0.6)
	want := NewExpDecomp(clean, 13, 3).Exp(x)
	got := NewExpDecomp(dirty, 13, 3).Exp(x)
	ratio := Double.ToFloat64(got) / Double.ToFloat64(want)
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("k+3 corruption scaled result by %v, want 8", ratio)
	}
}

func TestProfileCountsIntSites(t *testing.T) {
	counting := NewCounting(NewMachine(Double))
	env := NewExpDecomp(counting, 13, 3)
	env.IntSites = 2
	env.Exp(env.FromFloat64(-0.5))
	env.Exp(env.FromFloat64(-0.2))
	if counting.Counts.IntSites != 4 {
		t.Errorf("IntSites = %d, want 4", counting.Counts.IntSites)
	}
}
