package fp

import "math"

// ULPDistance returns the number of representable values of format f
// between a and b (0 if equal). NaN against anything returns the maximum
// uint64. The usual ordered-integer trick is used: the encodings are
// mapped to a monotonic integer scale and subtracted.
func ULPDistance(f Format, a, b Bits) uint64 {
	if f.IsNaN(a) || f.IsNaN(b) {
		return math.MaxUint64
	}
	ia, ib := orderedInt(f, a), orderedInt(f, b)
	if ia > ib {
		return uint64(ia - ib)
	}
	return uint64(ib - ia)
}

// orderedInt maps an encoding to an integer that is monotone in the
// represented value: negative values map below positives, and adjacent
// representable values map to adjacent integers.
func orderedInt(f Format, b Bits) int64 {
	sign := f.Sign(b)
	mag := int64(b &^ f.signMask())
	if sign {
		return -mag
	}
	return mag
}

// RelErr returns |got-want|/|want|. Special cases: if want == 0, returns
// 0 when got == 0 and +Inf otherwise; if either is NaN, returns +Inf; if
// both are the same infinity, returns 0.
func RelErr(want, got float64) float64 {
	if math.IsNaN(want) || math.IsNaN(got) {
		return math.Inf(1)
	}
	if want == got {
		return 0
	}
	if want == 0 {
		return math.Inf(1)
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) {
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// MaxRelErr returns the largest element-wise relative error between two
// equally long vectors. It panics if the lengths differ.
func MaxRelErr(want, got []float64) float64 {
	if len(want) != len(got) {
		panic("fp: MaxRelErr length mismatch")
	}
	var worst float64
	for i := range want {
		if e := RelErr(want[i], got[i]); e > worst {
			worst = e
		}
	}
	return worst
}
