package fp

// Decoding a 16-bit operand is the hottest primitive of the injection
// engine: every dynamic operation in the Half and BFloat16 formats
// decodes up to three operands before computing in binary64. The
// encodings are only 16 bits wide, so the branchy bit manipulation of
// halfToFloat64/bfloatToFloat64 is replaced on the hot path by one load
// from an exhaustive table (512 KiB per format), filled at init from
// those same functions — the table is exact by construction, and the
// scalar functions remain the reference the tests exercise.
var (
	halfDecode   [1 << 16]float64
	bfloatDecode [1 << 16]float64
)

func init() {
	for i := range halfDecode {
		halfDecode[i] = halfToFloat64(uint16(i))
		bfloatDecode[i] = bfloatToFloat64(uint16(i))
	}
}
