// Package fp implements bit-accurate IEEE-754 floating-point arithmetic
// for the three precisions studied in the paper — binary16 (half),
// binary32 (single), and binary64 (double) — with direct access to the
// underlying bit patterns.
//
// Values are carried as Bits, the raw encoding of the number in its
// format, so that fault injection can flip any bit of any live value and
// criticality analysis can reason about which bit positions were struck.
// Arithmetic is performed through an Env, which the injection and beam
// layers wrap to perturb individual dynamic operations.
//
// Half-precision arithmetic is implemented in software. Addition,
// multiplication and fused multiply-add of binary16 operands are computed
// exactly in binary64 (the exact product of two 11-bit significands needs
// 22 bits and the exact sum fits likewise, both far below binary64's 53
// bits) and then rounded once to binary16 — which is the correctly
// rounded result. An independent integer-only softfloat implementation in
// soft16.go cross-checks this path in the tests.
package fp

import (
	"fmt"
	"math"
)

// Format identifies one of the IEEE-754 binary interchange formats used
// by the paper's workloads.
type Format int

const (
	// Half is IEEE-754 binary16: 1 sign, 5 exponent, 10 significand bits.
	Half Format = iota
	// Single is IEEE-754 binary32: 1 sign, 8 exponent, 23 significand bits.
	Single
	// Double is IEEE-754 binary64: 1 sign, 11 exponent, 52 significand bits.
	Double
)

// Formats lists all supported formats from narrowest to widest.
var Formats = []Format{Half, Single, Double}

// Bits is the raw IEEE-754 encoding of a value in some Format, stored in
// the low-order bits of a uint64. Bits above Format.Width() are always
// zero for well-formed values.
type Bits uint64

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case Half:
		return "half"
	case Single:
		return "single"
	case Double:
		return "double"
	case BFloat16:
		return "bfloat16"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Width returns the total encoding width in bits (16, 32, or 64).
func (f Format) Width() int {
	switch f {
	case Half, BFloat16:
		return 16
	case Single:
		return 32
	case Double:
		return 64
	}
	panic("fp: unknown format")
}

// Bytes returns the storage size in bytes.
func (f Format) Bytes() int { return f.Width() / 8 }

// MantBits returns the number of explicitly stored significand bits.
func (f Format) MantBits() int {
	switch f {
	case Half:
		return 10
	case BFloat16:
		return 7
	case Single:
		return 23
	case Double:
		return 52
	}
	panic("fp: unknown format")
}

// ExpBits returns the number of exponent bits.
func (f Format) ExpBits() int {
	switch f {
	case Half:
		return 5
	case Single, BFloat16:
		return 8
	case Double:
		return 11
	}
	panic("fp: unknown format")
}

// Bias returns the exponent bias (15, 127, or 1023).
func (f Format) Bias() int { return 1<<(f.ExpBits()-1) - 1 }

// Mask returns a mask covering the format's full encoding width.
func (f Format) Mask() Bits {
	if f == Double {
		return Bits(^uint64(0))
	}
	return Bits(uint64(1)<<f.Width() - 1)
}

// signMask returns the mask of the sign bit.
func (f Format) signMask() Bits { return 1 << (f.Width() - 1) }

// expMask returns the mask of the exponent field (in place).
func (f Format) expMask() Bits {
	return Bits((uint64(1)<<f.ExpBits())-1) << f.MantBits()
}

// mantMask returns the mask of the significand field.
func (f Format) mantMask() Bits { return Bits(uint64(1)<<f.MantBits() - 1) }

// Sign reports whether the sign bit of b is set.
func (f Format) Sign(b Bits) bool { return b&f.signMask() != 0 }

// Exponent returns the raw (biased) exponent field of b.
func (f Format) Exponent(b Bits) int {
	return int((b & f.expMask()) >> f.MantBits())
}

// Mantissa returns the raw significand field of b.
func (f Format) Mantissa(b Bits) Bits { return b & f.mantMask() }

// IsNaN reports whether b encodes a NaN in format f.
func (f Format) IsNaN(b Bits) bool {
	return f.Exponent(b) == int(f.expMask()>>f.MantBits()) && f.Mantissa(b) != 0
}

// IsInf reports whether b encodes an infinity in format f.
func (f Format) IsInf(b Bits) bool {
	return f.Exponent(b) == int(f.expMask()>>f.MantBits()) && f.Mantissa(b) == 0
}

// IsSubnormal reports whether b encodes a nonzero subnormal in format f.
func (f Format) IsSubnormal(b Bits) bool {
	return f.Exponent(b) == 0 && f.Mantissa(b) != 0
}

// IsZero reports whether b encodes positive or negative zero.
func (f Format) IsZero(b Bits) bool { return b&^f.signMask() == 0 }

// FlipBit returns b with bit i toggled. It panics if i is outside the
// format's width. This is the primitive used by every fault model.
func (f Format) FlipBit(b Bits, i int) Bits {
	if i < 0 || i >= f.Width() {
		panic(fmt.Sprintf("fp: FlipBit index %d out of range for %v", i, f))
	}
	return b ^ (1 << uint(i))
}

// Majority returns the bitwise majority vote of three encodings: each
// output bit is set iff it is set in at least two of a, b, c. This is
// the TMR voter primitive; like FlipBit it deliberately works on the raw
// bit pattern, which is why it lives here rather than with the numeric
// Env operations.
func Majority(a, b, c Bits) Bits {
	return a&b | a&c | b&c
}

// FromFloat64 rounds v to format f (round-to-nearest-even) and returns
// its encoding. Overflow produces the correctly signed infinity; NaN maps
// to the format's canonical quiet NaN.
func (f Format) FromFloat64(v float64) Bits {
	switch f {
	case Half:
		return Bits(halfFromFloat64(v))
	case BFloat16:
		return Bits(bfloatFromFloat64(v))
	case Single:
		return Bits(math.Float32bits(float32(v)))
	case Double:
		return Bits(math.Float64bits(v))
	}
	panic("fp: unknown format")
}

// ToFloat64 decodes b (an encoding in format f) to float64. The
// conversion is exact: every binary16 and binary32 value is representable
// in binary64.
func (f Format) ToFloat64(b Bits) float64 {
	switch f {
	case Half:
		return halfDecode[uint16(b)]
	case BFloat16:
		return bfloatDecode[uint16(b)]
	case Single:
		return float64(math.Float32frombits(uint32(b)))
	case Double:
		return math.Float64frombits(uint64(b))
	}
	panic("fp: unknown format")
}

// QuietNaN returns the canonical quiet NaN of format f.
func (f Format) QuietNaN() Bits {
	return f.expMask() | 1<<(f.MantBits()-1)
}

// Inf returns the encoding of +Inf (sign=false) or -Inf (sign=true).
func (f Format) Inf(negative bool) Bits {
	b := f.expMask()
	if negative {
		b |= f.signMask()
	}
	return b
}

// MaxFinite returns the largest finite value representable in f.
func (f Format) MaxFinite() float64 {
	switch f {
	case Half:
		return 65504
	case BFloat16:
		return 0x1.FEp127 // 255/128 * 2^127 ~= 3.39e38
	case Single:
		return math.MaxFloat32
	case Double:
		return math.MaxFloat64
	}
	panic("fp: unknown format")
}

// MachineEpsilon returns the distance from 1.0 to the next larger
// representable value, 2^-MantBits.
func (f Format) MachineEpsilon() float64 {
	return math.Ldexp(1, -f.MantBits())
}
