package fp

import (
	"math"
	"testing"

	"mixedrel/internal/rng"
)

// interestingWide builds special-case encodings for a wide format.
func interestingWide(f Format) []Bits {
	vals := []Bits{
		0, f.signMask(), // +-0
		1, f.signMask() | 1, // min subnormals
		f.mantMask(),                     // max subnormal
		f.mantMask() + 1,                 // min normal
		f.FromFloat64(1),                 // 1
		f.FromFloat64(1) + 1,             // nextafter(1)
		f.FromFloat64(-1),                //
		f.FromFloat64(2),                 //
		f.FromFloat64(math.Pi),           //
		f.FromFloat64(f.MaxFinite()) - 0, // max finite
		f.Inf(false), f.Inf(true),        //
		f.QuietNaN(), //
		f.FromFloat64(1e-30), f.FromFloat64(-1e30),
	}
	return vals
}

// hardware reference for add/mul in format f.
func hwAdd(f Format, a, b Bits) Bits {
	if f == Single {
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) + math.Float32frombits(uint32(b))))
	}
	return Bits(math.Float64bits(math.Float64frombits(uint64(a)) + math.Float64frombits(uint64(b))))
}

func hwMul(f Format, a, b Bits) Bits {
	if f == Single {
		return Bits(math.Float32bits(math.Float32frombits(uint32(a)) * math.Float32frombits(uint32(b))))
	}
	return Bits(math.Float64bits(math.Float64frombits(uint64(a)) * math.Float64frombits(uint64(b))))
}

func sameWide(f Format, a, b Bits) bool {
	if f.IsNaN(a) && f.IsNaN(b) {
		return true
	}
	return a == b
}

func TestSoftWideMatchesHardwareOnSpecials(t *testing.T) {
	for _, f := range []Format{Single, Double} {
		vals := interestingWide(f)
		for _, a := range vals {
			for _, b := range vals {
				if ga, wa := softAddWide(f, a, b), hwAdd(f, a, b); !sameWide(f, ga, wa) {
					t.Errorf("%v add(%#x, %#x): soft=%#x hw=%#x", f, a, b, ga, wa)
				}
				if gm, wm := softMulWide(f, a, b), hwMul(f, a, b); !sameWide(f, gm, wm) {
					t.Errorf("%v mul(%#x, %#x): soft=%#x hw=%#x", f, a, b, gm, wm)
				}
			}
		}
	}
}

// Large random cross-check against the host FPU — the strongest ground
// truth available for the rounding machinery.
func TestSoftWideCrossCheckRandom(t *testing.T) {
	r := rng.New(20190218)
	n := 200000
	if testing.Short() {
		n = 20000
	}
	for _, f := range []Format{Single, Double} {
		mask := f.Mask()
		for i := 0; i < n; i++ {
			a := Bits(r.Uint64()) & mask
			b := Bits(r.Uint64()) & mask
			if ga, wa := softAddWide(f, a, b), hwAdd(f, a, b); !sameWide(f, ga, wa) {
				t.Fatalf("%v add(%#x, %#x): soft=%#x hw=%#x", f, a, b, ga, wa)
			}
			if gm, wm := softMulWide(f, a, b), hwMul(f, a, b); !sameWide(f, gm, wm) {
				t.Fatalf("%v mul(%#x, %#x): soft=%#x hw=%#x", f, a, b, gm, wm)
			}
		}
	}
}

// Near-value random cross-check: operands drawn close to each other
// exercise cancellation and alignment paths far more often than
// uniform encodings do.
func TestSoftWideCancellationPaths(t *testing.T) {
	r := rng.New(4242)
	for _, f := range []Format{Single, Double} {
		for i := 0; i < 50000; i++ {
			x := (r.Float64() - 0.5) * math.Exp(r.NormFloat64()*3)
			y := -x * (1 + (r.Float64()-0.5)*1e-5)
			a, b := f.FromFloat64(x), f.FromFloat64(y)
			if ga, wa := softAddWide(f, a, b), hwAdd(f, a, b); !sameWide(f, ga, wa) {
				t.Fatalf("%v add(%v, %v): soft=%#x hw=%#x", f, x, y, ga, wa)
			}
		}
	}
}

// Subnormal-dense cross-check.
func TestSoftWideSubnormals(t *testing.T) {
	r := rng.New(777)
	for _, f := range []Format{Single, Double} {
		for i := 0; i < 50000; i++ {
			// Random subnormal or tiny-normal encodings.
			a := Bits(r.Uint64()) & (f.mantMask()<<2 | f.mantMask())
			b := Bits(r.Uint64()) & (f.mantMask()<<2 | f.mantMask())
			if r.Intn(2) == 0 {
				a |= f.signMask()
			}
			if ga, wa := softAddWide(f, a, b), hwAdd(f, a, b); !sameWide(f, ga, wa) {
				t.Fatalf("%v add(%#x, %#x): soft=%#x hw=%#x", f, a, b, ga, wa)
			}
			if gm, wm := softMulWide(f, a, b), hwMul(f, a, b); !sameWide(f, gm, wm) {
				t.Fatalf("%v mul(%#x, %#x): soft=%#x hw=%#x", f, a, b, gm, wm)
			}
		}
	}
}

func TestRne128Basics(t *testing.T) {
	// 0b101 >> 1: kept 0b10, round 1, sticky 0 — a tie with even kept,
	// so it stays 0b10.
	if got := rne128(0, 0b101, 1); got != 0b10 {
		t.Errorf("rne128(0b101, 1) = %b, want 10", got)
	}
	// 0b111 >> 1: kept 0b11, round 1, sticky 0 — tie with odd kept
	// rounds up to 0b100.
	if got := rne128(0, 0b111, 1); got != 0b100 {
		t.Errorf("rne128(0b111, 1) = %b, want 100", got)
	}
	// Tie rounds to even: 0b110 >> 1 -> 0b11, round=0... use 0b1010>>2:
	// kept 0b10, round 1, sticky 0 -> even keeps 0b10.
	if got := rne128(0, 0b1010, 2); got != 0b10 {
		t.Errorf("tie-to-even failed: %b", got)
	}
	// Cross-word shift.
	if got := rne128(1, 0, 64); got != 1 {
		t.Errorf("rne128(1:0, 64) = %d", got)
	}
	// n > 128 flushes to zero.
	if got := rne128(^uint64(0), ^uint64(0), 200); got != 0 {
		t.Errorf("rne128 overshift = %d", got)
	}
}
