package fp

import (
	"math"
	"testing"
	"testing/quick"

	"mixedrel/internal/rng"
)

func TestMachineBasicArithmetic(t *testing.T) {
	for _, f := range Formats {
		m := NewMachine(f)
		two, three := m.FromFloat64(2), m.FromFloat64(3)
		if got := m.ToFloat64(m.Add(two, three)); got != 5 {
			t.Errorf("%v: 2+3 = %v", f, got)
		}
		if got := m.ToFloat64(m.Sub(two, three)); got != -1 {
			t.Errorf("%v: 2-3 = %v", f, got)
		}
		if got := m.ToFloat64(m.Mul(two, three)); got != 6 {
			t.Errorf("%v: 2*3 = %v", f, got)
		}
		if got := m.ToFloat64(m.Div(three, two)); got != 1.5 {
			t.Errorf("%v: 3/2 = %v", f, got)
		}
		if got := m.ToFloat64(m.FMA(two, three, three)); got != 9 {
			t.Errorf("%v: 2*3+3 = %v", f, got)
		}
		if got := m.ToFloat64(m.Sqrt(m.FromFloat64(9))); got != 3 {
			t.Errorf("%v: sqrt(9) = %v", f, got)
		}
		if got := m.ToFloat64(m.Exp(m.FromFloat64(0))); got != 1 {
			t.Errorf("%v: exp(0) = %v", f, got)
		}
	}
}

func TestMachineFormat(t *testing.T) {
	for _, f := range Formats {
		if NewMachine(f).Format() != f {
			t.Errorf("machine format mismatch for %v", f)
		}
	}
}

// Results must always be valid encodings of the machine's format (no
// stray high bits).
func TestMachineResultsStayInFormat(t *testing.T) {
	r := rng.New(99)
	for _, f := range Formats {
		m := NewMachine(f)
		mask := f.Mask()
		for i := 0; i < 2000; i++ {
			a := Bits(r.Uint64()) & mask
			b := Bits(r.Uint64()) & mask
			c := Bits(r.Uint64()) & mask
			for _, res := range []Bits{m.Add(a, b), m.Sub(a, b), m.Mul(a, b), m.Div(a, b), m.FMA(a, b, c), m.Sqrt(a), m.Exp(a)} {
				if res&^mask != 0 {
					t.Fatalf("%v: result %#x has bits outside the format", f, res)
				}
			}
		}
	}
}

// Half-precision results of the via-float64 path must be exactly
// representable (converting to float64 and back is identity).
func TestHalfResultsRepresentable(t *testing.T) {
	m := NewMachine(Half)
	r := rng.New(7)
	for i := 0; i < 5000; i++ {
		a := Bits(r.Uint64()) & Half.Mask()
		b := Bits(r.Uint64()) & Half.Mask()
		res := m.Mul(a, b)
		if Half.IsNaN(res) {
			continue
		}
		if back := Half.FromFloat64(Half.ToFloat64(res)); back != res {
			t.Fatalf("mul(%#x,%#x) = %#x not representable", a, b, res)
		}
	}
}

func TestArithmeticProperties(t *testing.T) {
	for _, f := range Formats {
		m := NewMachine(f)
		mask := uint64(f.Mask())
		finite := func(raw uint64) Bits {
			b := Bits(raw) & Bits(mask)
			if f.IsNaN(b) || f.IsInf(b) {
				return f.FromFloat64(1.5)
			}
			return b
		}
		commAdd := func(x, y uint64) bool {
			a, b := finite(x), finite(y)
			return m.Add(a, b) == m.Add(b, a)
		}
		commMul := func(x, y uint64) bool {
			a, b := finite(x), finite(y)
			return m.Mul(a, b) == m.Mul(b, a)
		}
		addZero := func(x uint64) bool {
			a := finite(x)
			return m.Add(a, m.FromFloat64(0)) == a || f.IsZero(a)
		}
		mulOne := func(x uint64) bool {
			a := finite(x)
			return m.Mul(a, m.FromFloat64(1)) == a
		}
		for name, prop := range map[string]interface{}{
			"add commutes": commAdd, "mul commutes": commMul,
			"x+0 == x": addZero, "x*1 == x": mulOne,
		} {
			if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
				t.Errorf("%v: property %q failed: %v", f, name, err)
			}
		}
	}
}

func TestSingleMatchesNativeFloat32(t *testing.T) {
	m := NewMachine(Single)
	r := rng.New(123)
	for i := 0; i < 5000; i++ {
		a32 := math.Float32frombits(uint32(r.Uint64()))
		b32 := math.Float32frombits(uint32(r.Uint64()))
		if a32 != a32 || b32 != b32 { // skip NaN
			continue
		}
		a := Bits(math.Float32bits(a32))
		b := Bits(math.Float32bits(b32))
		if got, want := m.Add(a, b), Bits(math.Float32bits(a32+b32)); got != want && !Single.IsNaN(got) {
			t.Fatalf("add mismatch: %v + %v", a32, b32)
		}
		if got, want := m.Mul(a, b), Bits(math.Float32bits(a32*b32)); got != want && !Single.IsNaN(got) {
			t.Fatalf("mul mismatch: %v * %v", a32, b32)
		}
	}
}

func TestCountingEnv(t *testing.T) {
	m := NewCounting(NewMachine(Double))
	a, b := m.FromFloat64(1), m.FromFloat64(2)
	m.Add(a, b)
	m.Add(a, b)
	m.Sub(a, b)
	m.Mul(a, b)
	m.Div(a, b)
	m.FMA(a, b, a)
	m.Sqrt(a)
	m.Exp(a)
	want := OpCounts{}
	want.ByOp[OpAdd] = 2
	want.ByOp[OpSub] = 1
	want.ByOp[OpMul] = 1
	want.ByOp[OpDiv] = 1
	want.ByOp[OpFMA] = 1
	want.ByOp[OpSqrt] = 1
	want.ByOp[OpExp] = 1
	if m.Counts != want {
		t.Errorf("counts = %+v, want %+v", m.Counts, want)
	}
	if m.Counts.Total() != 8 {
		t.Errorf("Total = %d, want 8", m.Counts.Total())
	}
	if m.Counts.FLOPs() != 9 {
		t.Errorf("FLOPs = %d, want 9 (FMA counts twice)", m.Counts.FLOPs())
	}
}

func TestOpCountsAdd(t *testing.T) {
	var a, b OpCounts
	a.ByOp[OpAdd] = 3
	a.Loads = 2
	b.ByOp[OpAdd] = 4
	b.ByOp[OpMul] = 1
	b.Stores = 5
	a.Add(b)
	if a.ByOp[OpAdd] != 7 || a.ByOp[OpMul] != 1 || a.Loads != 2 || a.Stores != 5 {
		t.Errorf("accumulated counts wrong: %+v", a)
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL",
		OpDiv: "DIV", OpFMA: "FMA", OpSqrt: "SQRT", OpExp: "EXP"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(77).String() != "OP?" {
		t.Error("unknown op should stringify to OP?")
	}
}

// Lower precision must lose accuracy monotonically on an ill-conditioned
// reduction: the half result of a long sum is no closer to the exact value
// than the double result.
func TestPrecisionOrdering(t *testing.T) {
	exact := 0.0
	for i := 1; i <= 200; i++ {
		exact += 1.0 / float64(i)
	}
	errFor := func(f Format) float64 {
		m := NewMachine(f)
		acc := m.FromFloat64(0)
		for i := 1; i <= 200; i++ {
			acc = m.Add(acc, m.FromFloat64(1.0/float64(i)))
		}
		return math.Abs(m.ToFloat64(acc) - exact)
	}
	h, s, d := errFor(Half), errFor(Single), errFor(Double)
	if !(h > s && s > d) {
		t.Errorf("harmonic-sum errors not ordered: half=%g single=%g double=%g", h, s, d)
	}
}
