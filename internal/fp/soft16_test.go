package fp

import (
	"testing"

	"mixedrel/internal/rng"
)

// interesting16 is a set of encodings that exercises every special case:
// zeros, subnormals, normals around 1, large values, infinities, NaNs.
var interesting16 = []uint16{
	0x0000, 0x8000, // +-0
	0x0001, 0x8001, // min subnormals
	0x03ff, 0x83ff, // max subnormals
	0x0400, 0x8400, // min normals
	0x3bff, 0x3c00, 0x3c01, // around 1
	0xbc00,         // -1
	0x4000, 0x4200, // 2, 3
	0x7bff, 0xfbff, // +-max finite
	0x7c00, 0xfc00, // +-Inf
	0x7e00, 0x7c01, 0xfe00, // NaNs
	0x5640, 0xd640, // 100, -100
	0x1400, 0x9400, // small normals
}

func sameHalf(a, b uint16) bool {
	if isNaN16(a) && isNaN16(b) {
		return true // any NaN encoding is acceptable
	}
	return a == b
}

// machineAdd16/machineMul16 run the via-binary64 Machine path.
func machineAdd16(a, b uint16) uint16 {
	m := NewMachine(Half)
	return uint16(m.Add(Bits(a), Bits(b)))
}

func machineMul16(a, b uint16) uint16 {
	m := NewMachine(Half)
	return uint16(m.Mul(Bits(a), Bits(b)))
}

func TestSoft16AddMatchesMachineOnSpecials(t *testing.T) {
	for _, a := range interesting16 {
		for _, b := range interesting16 {
			got, want := softAdd16(a, b), machineAdd16(a, b)
			if !sameHalf(got, want) {
				t.Errorf("add(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, got, want)
			}
		}
	}
}

func TestSoft16MulMatchesMachineOnSpecials(t *testing.T) {
	for _, a := range interesting16 {
		for _, b := range interesting16 {
			got, want := softMul16(a, b), machineMul16(a, b)
			if !sameHalf(got, want) {
				t.Errorf("mul(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, got, want)
			}
		}
	}
}

// Cross-check the two fully independent implementations on a large
// random sample of the 2^32 input space.
func TestSoft16CrossCheckRandom(t *testing.T) {
	r := rng.New(20190216) // HPCA'19 conference date as seed
	n := 200000
	if testing.Short() {
		n = 20000
	}
	for i := 0; i < n; i++ {
		a := uint16(r.Uint64())
		b := uint16(r.Uint64())
		if ga, wa := softAdd16(a, b), machineAdd16(a, b); !sameHalf(ga, wa) {
			t.Fatalf("add(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, ga, wa)
		}
		if gm, wm := softMul16(a, b), machineMul16(a, b); !sameHalf(gm, wm) {
			t.Fatalf("mul(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, gm, wm)
		}
	}
}

// Exhaustive sweep of one operand against a fixed set of the other: this
// covers every encoding of one input including all subnormals.
func TestSoft16ExhaustiveOneOperand(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short")
	}
	partners := []uint16{0x0000, 0x0001, 0x3c00, 0x7bff, 0x0400, 0xbc00, 0x7c00}
	for a := 0; a <= 0xffff; a++ {
		for _, b := range partners {
			ua := uint16(a)
			if ga, wa := softAdd16(ua, b), machineAdd16(ua, b); !sameHalf(ga, wa) {
				t.Fatalf("add(%#04x, %#04x): soft=%#04x machine=%#04x", ua, b, ga, wa)
			}
			if gm, wm := softMul16(ua, b), machineMul16(ua, b); !sameHalf(gm, wm) {
				t.Fatalf("mul(%#04x, %#04x): soft=%#04x machine=%#04x", ua, b, gm, wm)
			}
		}
	}
}

func TestSoft16KnownSums(t *testing.T) {
	cases := []struct{ a, b, want uint16 }{
		{0x3c00, 0x3c00, 0x4000}, // 1+1 = 2
		{0x3c00, 0xbc00, 0x0000}, // 1-1 = +0
		{0x8000, 0x8000, 0x8000}, // -0 + -0 = -0
		{0x8000, 0x0000, 0x0000}, // -0 + +0 = +0
		{0x7bff, 0x7bff, 0x7c00}, // max+max overflows to Inf
		{0x0001, 0x0001, 0x0002}, // subnormal + subnormal
		{0x3c00, 0x0001, 0x3c00}, // 1 + min_subnormal rounds to 1
	}
	for _, c := range cases {
		if got := softAdd16(c.a, c.b); got != c.want {
			t.Errorf("softAdd16(%#04x, %#04x) = %#04x, want %#04x", c.a, c.b, got, c.want)
		}
	}
}

func TestSoft16KnownProducts(t *testing.T) {
	cases := []struct{ a, b, want uint16 }{
		{0x3c00, 0x3c00, 0x3c00}, // 1*1
		{0x4000, 0x4200, 0x4600}, // 2*3 = 6
		{0x7bff, 0x4000, 0x7c00}, // max*2 overflows
		{0x0400, 0x3800, 0x0200}, // min_normal * 0.5 = subnormal
		{0x0001, 0x3800, 0x0000}, // min_subnormal * 0.5 ties to even -> 0
		{0xbc00, 0xbc00, 0x3c00}, // -1*-1 = 1
		{0x7c00, 0x0000, 0x7e00}, // Inf*0 = NaN
	}
	for _, c := range cases {
		if got := softMul16(c.a, c.b); !sameHalf(got, c.want) || (!isNaN16(c.want) && got != c.want) {
			t.Errorf("softMul16(%#04x, %#04x) = %#04x, want %#04x", c.a, c.b, got, c.want)
		}
	}
}
