package fp

import "math"

// halfToFloat64 decodes an IEEE-754 binary16 encoding to float64. The
// conversion is exact.
func halfToFloat64(h uint16) float64 {
	sign := uint64(h>>15) & 1
	exp := int(h>>10) & 0x1f
	mant := uint64(h) & 0x3ff

	var bits64 uint64
	switch {
	case exp == 0x1f: // Inf or NaN
		if mant == 0 {
			bits64 = 0x7ff << 52
		} else {
			// Preserve the payload in the top of the binary64
			// significand and force the quiet bit.
			bits64 = 0x7ff<<52 | mant<<42 | 1<<51
		}
	case exp == 0: // zero or subnormal
		if mant == 0 {
			bits64 = 0
		} else {
			// Normalize: value is mant * 2^-24. After k left shifts
			// the implicit bit sits at position 10 and the unbiased
			// exponent is -14-k.
			e := -14
			for mant&0x400 == 0 {
				mant <<= 1
				e--
			}
			mant &= 0x3ff // drop the implicit bit
			bits64 = uint64(e+1023)<<52 | mant<<42
		}
	default: // normal
		bits64 = uint64(exp-15+1023)<<52 | mant<<42
	}
	return math.Float64frombits(bits64 | sign<<63)
}

// halfFromFloat64 rounds v to binary16 with round-to-nearest-even,
// handling subnormals, overflow to infinity, and NaN canonicalization.
func halfFromFloat64(v float64) uint16 {
	b := math.Float64bits(v)
	sign := uint16(b>>48) & 0x8000
	exp := int(b>>52) & 0x7ff
	mant := b & 0xfffffffffffff

	// Hot path: magnitude in the normal binary16 range, i.e. unbiased
	// binary64 exponent in [-14, 15] (biased in [1009, 1038]). This is
	// bit-for-bit roundPack16(e+15, sig, 42) unrolled so the kernels'
	// per-operation re-encode costs one branch and no second call.
	if uint(exp-1009) <= 29 {
		sig := mant | 1<<52
		kept := sig >> 42
		rem := sig & (1<<42 - 1)
		const halfUlp = uint64(1) << 41
		if rem > halfUlp || (rem == halfUlp && kept&1 == 1) {
			kept++
		}
		be := uint16(exp - 1008) // e + 15
		if kept >= 1<<11 {
			kept >>= 1
			be++
			if be >= 0x1f {
				return sign | 0x7c00 // overflow to infinity
			}
		}
		return sign | be<<10 | uint16(kept&0x3ff)
	}

	if exp == 0x7ff { // Inf or NaN
		if mant == 0 {
			return sign | 0x7c00
		}
		return sign | 0x7e00 // canonical quiet NaN
	}

	// Unbiased exponent and 53-bit significand with implicit bit.
	e := exp - 1023
	sig := mant
	if exp != 0 {
		sig |= 1 << 52
	} else if mant == 0 {
		return sign // signed zero
	} else {
		// binary64 subnormals are far below the binary16 subnormal
		// range (< 2^-1022); they round to zero.
		return sign
	}

	switch {
	case e > 15:
		return sign | 0x7c00 // overflow to infinity
	case e >= -14:
		// Normal binary16 range: keep 10 explicit significand bits,
		// round the remaining 42.
		return sign | roundPack16(uint16(e+15), sig, 42)
	case e >= -25:
		// Subnormal range: shift the significand so the value is
		// sig * 2^-24 with the leading bit at position 10+extra.
		// Total right shift from the 52-bit alignment: 42 + (-14 - e).
		shift := uint(42 + (-14 - e))
		return sign | roundPack16(0, sig, shift)
	default:
		// Too small for even the smallest subnormal's rounding range,
		// except exactly half of the smallest subnormal, which rounds
		// to zero under round-to-nearest-even anyway.
		return sign
	}
}

// roundPack16 rounds a significand right by shift bits with
// round-to-nearest-even and assembles a binary16 from the biased exponent
// and rounded significand, propagating significand overflow into the
// exponent (including subnormal -> normal and normal -> infinity).
func roundPack16(biasedExp uint16, sig uint64, shift uint) uint16 {
	if shift >= 64 {
		return 0
	}
	// Round-to-nearest-even on the discarded bits: increment when the
	// remainder exceeds half an ulp, or equals it and the kept part is
	// odd (equivalent to the round/sticky formulation, one mask cheaper).
	kept := sig >> shift
	rem := sig & (1<<shift - 1)
	half := uint64(1) << (shift - 1)
	if rem > half || (rem == half && kept&1 == 1) {
		kept++
	}
	// kept holds implicit bit + 10 significand bits for normals
	// (biasedExp > 0), or a pure subnormal significand (biasedExp == 0).
	if biasedExp == 0 {
		if kept >= 1<<10 {
			// Rounded up into the normal range.
			return uint16(kept) // exponent becomes 1, mant = kept-2^10
		}
		return uint16(kept)
	}
	if kept >= 1<<11 {
		kept >>= 1
		biasedExp++
	}
	if biasedExp >= 0x1f {
		return 0x7c00 // overflow to infinity
	}
	return biasedExp<<10 | uint16(kept&0x3ff)
}
