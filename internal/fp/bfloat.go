package fp

import (
	"math"
	"math/bits"
)

// BFloat16 is the bfloat16 format: 1 sign, 8 exponent, 7 significand
// bits — the same exponent range as binary32 in half the width. The
// paper's architectures predate hardware bfloat16, but the format is the
// natural "future work" point on the precision-reliability curve the
// paper sweeps: same storage cost as binary16 with a different
// mantissa/exponent split, which changes both which bit flips are
// critical and how often faults push values to Inf/NaN. The extension
// experiments (cmd/reproduce -only ext-bf16) quantify exactly that.
const BFloat16 Format = 3

// AllFormats lists every supported format, narrowest first, including
// the bfloat16 extension. Formats remains the paper's three.
var AllFormats = []Format{Half, BFloat16, Single, Double}

// bfloatFromFloat64 rounds v to bfloat16 with round-to-nearest-even.
// bfloat16 shares binary32's exponent field, so the conversion rounds
// the binary64 significand from 52 to 7 bits and rebases the exponent,
// handling subnormals (below 2^-126) and overflow past ~3.39e38.
func bfloatFromFloat64(v float64) uint16 {
	b := math.Float64bits(v)
	sign := uint16(b>>48) & 0x8000
	exp := int(b>>52) & 0x7ff
	mant := b & 0xfffffffffffff

	if exp == 0x7ff { // Inf or NaN
		if mant == 0 {
			return sign | 0x7f80
		}
		return sign | 0x7fc0 // canonical quiet NaN
	}

	e := exp - 1023
	sig := mant
	if exp != 0 {
		sig |= 1 << 52
	} else {
		// binary64 subnormals are below bfloat16's subnormal range.
		return sign
	}

	switch {
	case e > 127:
		return sign | 0x7f80 // overflow to infinity
	case e >= -126:
		// Normal range: keep 7 explicit significand bits.
		s := rneShift(sig, 52-7)
		if s >= 1<<8 {
			s >>= 1
			e++
			if e > 127 {
				return sign | 0x7f80
			}
		}
		return sign | uint16(e+127)<<7 | uint16(s&0x7f)
	case e >= -134:
		// Subnormal range (including the half-ulp below the smallest
		// subnormal, which can round up): value = mant7 * 2^-133.
		mant7 := rneShift(sig, 52-7+(-126-e))
		return sign | uint16(mant7)
	default:
		return sign
	}
}

// bfloatToFloat64 decodes a bfloat16 encoding exactly.
func bfloatToFloat64(h uint16) float64 {
	sign := uint64(h>>15) & 1
	exp := int(h>>7) & 0xff
	mant := uint64(h) & 0x7f

	var bits64 uint64
	switch {
	case exp == 0xff:
		if mant == 0 {
			bits64 = 0x7ff << 52
		} else {
			bits64 = 0x7ff<<52 | mant<<45 | 1<<51
		}
	case exp == 0:
		if mant == 0 {
			bits64 = 0
		} else {
			// Normalize: value is mant * 2^-133; after k shifts the
			// implicit bit sits at position 7 and the unbiased
			// exponent is -126-k.
			e := -126
			for mant&0x80 == 0 {
				mant <<= 1
				e--
			}
			mant &= 0x7f
			bits64 = uint64(e+1023)<<52 | mant<<45
		}
	default:
		bits64 = uint64(exp-127+1023)<<52 | mant<<45
	}
	return math.Float64frombits(bits64 | sign<<63)
}

// The following mirrors soft16.go for bfloat16: an independent
// integer-only addition and multiplication used to cross-check the
// via-binary64 path in the tests.

func decodeBF(h uint16) dec16 {
	d := dec16{neg: h&0x8000 != 0}
	e := int(h>>7) & 0xff
	m := uint64(h) & 0x7f
	if e == 0 {
		d.sig = m
		d.exp = -133
		return d
	}
	d.sig = m | 1<<7
	d.exp = e - 127 - 7
	return d
}

// encodeBF rounds the exact value ±sig*2^exp to bfloat16 (RNE).
func encodeBF(neg bool, sig uint64, exp int) uint16 {
	var sign uint16
	if neg {
		sign = 0x8000
	}
	if sig == 0 {
		return sign
	}
	p := bits.Len64(sig) - 1
	e := p + exp
	if e > 127 {
		return sign | 0x7f80
	}
	if e >= -126 {
		s := rneShift(sig, p-7)
		if s >= 1<<8 {
			s >>= 1
			e++
			if e > 127 {
				return sign | 0x7f80
			}
		}
		return sign | uint16(e+127)<<7 | uint16(s&0x7f)
	}
	mant := rneShift(sig, -(exp + 133))
	return sign | uint16(mant)
}

func isNaNBF(h uint16) bool { return h&0x7f80 == 0x7f80 && h&0x7f != 0 }
func isInfBF(h uint16) bool { return h&0x7fff == 0x7f80 }

// softAddBF returns a+b in bfloat16 using integer-only arithmetic.
func softAddBF(a, b uint16) uint16 {
	if isNaNBF(a) || isNaNBF(b) {
		return 0x7fc0
	}
	ai, bi := isInfBF(a), isInfBF(b)
	switch {
	case ai && bi:
		if a == b {
			return a
		}
		return 0x7fc0
	case ai:
		return a
	case bi:
		return b
	}
	da, db := decodeBF(a), decodeBF(b)
	if da.sig == 0 && db.sig == 0 {
		if da.neg && db.neg {
			return 0x8000
		}
		return 0
	}
	// Exponents lie in [-133, 120]; with 8-bit significands the largest
	// alignment shift (253 bits) would overflow int64. Beyond 45 bits
	// the smaller operand is far below the final rounding position and
	// only matters as a sticky contribution, so collapse it to one.
	if da.exp-db.exp > 45 {
		db.exp = da.exp - 45
		if db.sig != 0 {
			db.sig = 1
		}
	}
	if db.exp-da.exp > 45 {
		da.exp = db.exp - 45
		if da.sig != 0 {
			da.sig = 1
		}
	}
	e := da.exp
	if db.exp < e {
		e = db.exp
	}
	va := int64(da.sig) << uint(da.exp-e)
	vb := int64(db.sig) << uint(db.exp-e)
	if da.neg {
		va = -va
	}
	if db.neg {
		vb = -vb
	}
	sum := va + vb
	if sum == 0 {
		return 0
	}
	neg := sum < 0
	if neg {
		sum = -sum
	}
	return encodeBF(neg, uint64(sum), e)
}

// softMulBF returns a*b in bfloat16 using integer-only arithmetic.
func softMulBF(a, b uint16) uint16 {
	if isNaNBF(a) || isNaNBF(b) {
		return 0x7fc0
	}
	neg := (a^b)&0x8000 != 0
	ai, bi := isInfBF(a), isInfBF(b)
	az, bz := a&0x7fff == 0, b&0x7fff == 0
	if ai || bi {
		if az || bz {
			return 0x7fc0
		}
		if neg {
			return 0xff80
		}
		return 0x7f80
	}
	if az || bz {
		if neg {
			return 0x8000
		}
		return 0
	}
	da, db := decodeBF(a), decodeBF(b)
	return encodeBF(neg, da.sig*db.sig, da.exp+db.exp)
}
