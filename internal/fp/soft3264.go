package fp

import "math/bits"

// This file extends the independent integer-only softfloat cross-checks
// of soft16.go to binary32 and binary64. For those formats the Machine
// uses the host FPU, so agreement here validates the decode/normalize/
// round-to-nearest-even machinery against actual IEEE-754 hardware —
// the strongest ground truth available to the test suite.

// decF decodes a binary32/64 encoding into sign, scale and integer
// significand (value = ±sig * 2^exp; sig includes the implicit bit for
// normals). Specials must be filtered by the caller.
func decF(f Format, b Bits) dec16 {
	d := dec16{neg: f.Sign(b)}
	mant := uint64(f.Mantissa(b))
	e := f.Exponent(b)
	mb := f.MantBits()
	if e == 0 {
		d.sig = mant
		d.exp = 1 - f.Bias() - mb
		return d
	}
	d.sig = mant | 1<<uint(mb)
	d.exp = e - f.Bias() - mb
	return d
}

// encF rounds the exact value ±(hi*2^64 + lo)*2^exp to format f (RNE).
func encF(f Format, neg bool, hi, lo uint64, exp int) Bits {
	var sign Bits
	if neg {
		sign = f.signMask()
	}
	if hi == 0 && lo == 0 {
		return sign
	}
	// Leading bit position of the 128-bit significand.
	p := bits.Len64(lo) - 1
	if hi != 0 {
		p = 64 + bits.Len64(hi) - 1
	}
	e := p + exp
	mb := f.MantBits()
	maxE := f.Bias()
	minE := 1 - f.Bias()

	if e > maxE {
		return sign | f.expMask()
	}
	if e >= minE {
		s := rne128(hi, lo, p-mb)
		if s >= 1<<uint(mb+1) {
			s >>= 1
			e++
			if e > maxE {
				return sign | f.expMask()
			}
		}
		return sign | Bits(e+f.Bias())<<uint(mb) | Bits(s)&f.mantMask()
	}
	// Subnormal: mant = round(value * 2^(bias - 1 + mb)).
	mant := rne128(hi, lo, -(exp + f.Bias() - 1 + mb))
	return sign | Bits(mant)
}

// rne128 shifts the 128-bit value hi:lo right by n bits with
// round-to-nearest-even, returning a uint64 (callers guarantee the kept
// part fits). n <= 0 shifts lo left (hi must be 0 then).
func rne128(hi, lo uint64, n int) uint64 {
	if n <= 0 {
		return lo << uint(-n)
	}
	if n > 128 {
		return 0
	}
	var kept, round, sticky uint64
	switch {
	case n <= 64:
		if n == 64 {
			kept = hi
			round = lo >> 63
			if lo&(1<<63-1) != 0 {
				sticky = 1
			}
		} else {
			kept = hi<<uint(64-n) | lo>>uint(n)
			round = lo >> uint(n-1) & 1
			if n >= 2 && lo&(1<<uint(n-1)-1) != 0 {
				sticky = 1
			}
		}
	case n == 128:
		round = hi >> 63
		if hi&(1<<63-1) != 0 || lo != 0 {
			sticky = 1
		}
	default: // 64 < n < 128
		m := n - 64
		kept = hi >> uint(m)
		round = hi >> uint(m-1) & 1
		if hi&(1<<uint(m-1)-1) != 0 || lo != 0 {
			sticky = 1
		}
	}
	if round == 1 && (sticky == 1 || kept&1 == 1) {
		kept++
	}
	return kept
}

// softMulWide returns a*b in format f (binary32 or binary64) using only
// integer arithmetic.
func softMulWide(f Format, a, b Bits) Bits {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.QuietNaN()
	}
	neg := f.Sign(a) != f.Sign(b)
	ai, bi := f.IsInf(a), f.IsInf(b)
	az, bz := f.IsZero(a), f.IsZero(b)
	if ai || bi {
		if az || bz {
			return f.QuietNaN()
		}
		return f.Inf(neg)
	}
	if az || bz {
		var sign Bits
		if neg {
			sign = f.signMask()
		}
		return sign
	}
	da, db := decF(f, a), decF(f, b)
	hi, lo := bits.Mul64(da.sig, db.sig)
	return encF(f, neg, hi, lo, da.exp+db.exp)
}

// softAddWide returns a+b in format f (binary32 or binary64) using only
// integer arithmetic.
func softAddWide(f Format, a, b Bits) Bits {
	if f.IsNaN(a) || f.IsNaN(b) {
		return f.QuietNaN()
	}
	ai, bi := f.IsInf(a), f.IsInf(b)
	switch {
	case ai && bi:
		if a == b {
			return a
		}
		return f.QuietNaN()
	case ai:
		return a
	case bi:
		return b
	}
	da, db := decF(f, a), decF(f, b)
	if da.sig == 0 && db.sig == 0 {
		if da.neg && db.neg {
			return f.signMask()
		}
		return 0
	}
	// Collapse extreme alignment gaps to a sticky contribution; 60 bits
	// is far beyond any rounding relevance for <= 53-bit significands.
	if da.exp-db.exp > 60 {
		db.exp = da.exp - 60
		if db.sig != 0 {
			db.sig = 1
		}
	}
	if db.exp-da.exp > 60 {
		da.exp = db.exp - 60
		if da.sig != 0 {
			da.sig = 1
		}
	}
	e := da.exp
	if db.exp < e {
		e = db.exp
	}
	// Align into 128 bits: sig <= 2^53 shifted by <= 60 keeps well
	// inside the range.
	aHi, aLo := shl128(da.sig, uint(da.exp-e))
	bHi, bLo := shl128(db.sig, uint(db.exp-e))

	if da.neg == db.neg {
		lo, carry := bits.Add64(aLo, bLo, 0)
		hi, _ := bits.Add64(aHi, bHi, carry)
		return encF(f, da.neg, hi, lo, e)
	}
	// Opposite signs: subtract the smaller magnitude from the larger.
	if aHi > bHi || (aHi == bHi && aLo >= bLo) {
		lo, borrow := bits.Sub64(aLo, bLo, 0)
		hi, _ := bits.Sub64(aHi, bHi, borrow)
		if hi == 0 && lo == 0 {
			return 0 // exact cancellation yields +0 under RNE
		}
		return encF(f, da.neg, hi, lo, e)
	}
	lo, borrow := bits.Sub64(bLo, aLo, 0)
	hi, _ := bits.Sub64(bHi, aHi, borrow)
	return encF(f, db.neg, hi, lo, e)
}

// shl128 shifts a 64-bit value left by s (< 64) into a 128-bit result.
func shl128(v uint64, s uint) (hi, lo uint64) {
	if s == 0 {
		return 0, v
	}
	return v >> (64 - s), v << s
}
