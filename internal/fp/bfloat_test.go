package fp

import (
	"math"
	"testing"

	"mixedrel/internal/rng"
)

var bfKnown = []struct {
	bits uint16
	val  float64
}{
	{0x0000, 0},
	{0x3f80, 1},
	{0xbf80, -1},
	{0x4000, 2},
	{0x3f00, 0.5},
	{0x4049, 3.140625}, // pi rounded to bfloat16
	{0x7f7f, 0x1.FEp127},
	{0x0080, math.Ldexp(1, -126)}, // min normal
	{0x0001, math.Ldexp(1, -133)}, // min subnormal
	{0x007f, math.Ldexp(127, -133)},
	{0x7f80, math.Inf(1)},
	{0xff80, math.Inf(-1)},
}

func TestBFloatKnownValues(t *testing.T) {
	for _, k := range bfKnown {
		if got := bfloatToFloat64(k.bits); got != k.val {
			t.Errorf("bfloatToFloat64(%#04x) = %v, want %v", k.bits, got, k.val)
		}
		if got := bfloatFromFloat64(k.val); got != k.bits {
			t.Errorf("bfloatFromFloat64(%v) = %#04x, want %#04x", k.val, got, k.bits)
		}
	}
}

func TestBFloatFormatFields(t *testing.T) {
	f := BFloat16
	if f.Width() != 16 || f.MantBits() != 7 || f.ExpBits() != 8 || f.Bias() != 127 {
		t.Errorf("bfloat16 fields: w=%d m=%d e=%d b=%d",
			f.Width(), f.MantBits(), f.ExpBits(), f.Bias())
	}
	if f.String() != "bfloat16" {
		t.Errorf("name %q", f.String())
	}
	if !f.IsNaN(f.QuietNaN()) || !f.IsInf(f.Inf(false)) {
		t.Error("bfloat16 classifiers broken")
	}
}

// Exhaustive round trip over all 65536 encodings.
func TestBFloatRoundTripExhaustive(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := uint16(i)
		v := bfloatToFloat64(h)
		back := bfloatFromFloat64(v)
		want := h
		if isNaNBF(h) {
			want = h&0x8000 | 0x7fc0
		}
		if back != want {
			t.Fatalf("round trip %#04x -> %v -> %#04x (want %#04x)", h, v, back, want)
		}
	}
}

// Truncating a float32 to its top 16 bits is the classic cheap bfloat16
// conversion; RNE must agree with it whenever the dropped bits are zero.
func TestBFloatAgreesWithFloat32Truncation(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 20000; i++ {
		raw := uint32(r.Uint64()) & 0xffff0000 // exact bfloat16 values
		v := float64(math.Float32frombits(raw))
		if math.IsNaN(v) {
			continue
		}
		if got := bfloatFromFloat64(v); got != uint16(raw>>16) {
			t.Fatalf("exact value %v encoded as %#04x, want %#04x", v, got, raw>>16)
		}
	}
}

func TestBFloatOverflowUnderflow(t *testing.T) {
	if got := bfloatFromFloat64(3.5e38); got != 0x7f80 {
		t.Errorf("3.5e38 -> %#04x, want +Inf", got)
	}
	if got := bfloatFromFloat64(-3.5e38); got != 0xff80 {
		t.Errorf("-3.5e38 -> %#04x, want -Inf", got)
	}
	// Exactly halfway past max finite rounds to Inf under RNE.
	if got := bfloatFromFloat64(0x1.FFp127); got != 0x7f80 {
		t.Errorf("midpoint above max -> %#04x", got)
	}
	if got := bfloatFromFloat64(math.Ldexp(1, -134)); got != 0 {
		t.Errorf("half min subnormal -> %#04x, want 0 (ties to even)", got)
	}
	if got := bfloatFromFloat64(math.Ldexp(1.5, -134)); got != 0x0001 {
		t.Errorf("0.75 ulp -> %#04x, want min subnormal", got)
	}
}

func TestBFloatSoftCrossCheck(t *testing.T) {
	r := rng.New(20190217)
	n := 200000
	if testing.Short() {
		n = 20000
	}
	m := NewMachine(BFloat16)
	for i := 0; i < n; i++ {
		a := uint16(r.Uint64())
		b := uint16(r.Uint64())
		ga := softAddBF(a, b)
		wa := uint16(m.Add(Bits(a), Bits(b)))
		if !(isNaNBF(ga) && isNaNBF(wa)) && ga != wa {
			t.Fatalf("add(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, ga, wa)
		}
		gm := softMulBF(a, b)
		wm := uint16(m.Mul(Bits(a), Bits(b)))
		if !(isNaNBF(gm) && isNaNBF(wm)) && gm != wm {
			t.Fatalf("mul(%#04x, %#04x): soft=%#04x machine=%#04x", a, b, gm, wm)
		}
	}
}

func TestBFloatMachineArithmetic(t *testing.T) {
	m := NewMachine(BFloat16)
	two, three := m.FromFloat64(2), m.FromFloat64(3)
	if got := m.ToFloat64(m.Mul(two, three)); got != 6 {
		t.Errorf("2*3 = %v", got)
	}
	if got := m.ToFloat64(m.FMA(two, three, three)); got != 9 {
		t.Errorf("2*3+3 = %v", got)
	}
	// Same dynamic range as single: 1e30 is representable...
	if b := m.FromFloat64(1e30); BFloat16.IsInf(b) {
		t.Error("1e30 should be finite in bfloat16")
	}
	// ...unlike in binary16.
	if b := Half.FromFloat64(1e30); !Half.IsInf(b) {
		t.Error("1e30 should overflow binary16")
	}
}

// The reliability-relevant contrast with binary16: bfloat16 has coarser
// precision (flips move values further) but far wider range (fewer
// faults saturate to Inf).
func TestBFloatVsHalfFlipCharacter(t *testing.T) {
	// A low-mantissa flip in bfloat16 is ~8x coarser than in binary16.
	one := 1.0
	bfFlip := BFloat16.ToFloat64(BFloat16.FlipBit(BFloat16.FromFloat64(one), 0)) - one
	hFlip := Half.ToFloat64(Half.FlipBit(Half.FromFloat64(one), 0)) - one
	if bfFlip/hFlip < 7.9 || bfFlip/hFlip > 8.1 {
		t.Errorf("LSB flip ratio %v, want 8 (2^10/2^7)", bfFlip/hFlip)
	}
	// A top-exponent-bit flip of a modest value overflows binary16's
	// conversion of the result but stays finite in bfloat16.
	v := 3.0
	hb := Half.FlipBit(Half.FromFloat64(v), Half.MantBits()+Half.ExpBits()-1)
	bb := BFloat16.FlipBit(BFloat16.FromFloat64(v), BFloat16.MantBits()+BFloat16.ExpBits()-1)
	if math.IsInf(Half.ToFloat64(hb), 0) {
		t.Error("half top-exponent flip of 3.0 should be finite (downward flip)")
	}
	if math.IsInf(BFloat16.ToFloat64(bb), 0) {
		t.Error("bfloat16 top-exponent flip of 3.0 should be finite")
	}
}

func TestAllFormatsIncludesBFloat(t *testing.T) {
	if len(AllFormats) != 4 {
		t.Fatalf("AllFormats has %d entries", len(AllFormats))
	}
	seen := map[Format]bool{}
	for _, f := range AllFormats {
		seen[f] = true
	}
	for _, f := range []Format{Half, BFloat16, Single, Double} {
		if !seen[f] {
			t.Errorf("AllFormats missing %v", f)
		}
	}
	// Formats (the paper's set) must stay at three.
	if len(Formats) != 3 {
		t.Errorf("Formats must remain the paper's three, got %d", len(Formats))
	}
}
