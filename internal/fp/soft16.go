package fp

import "math/bits"

// This file implements binary16 addition and multiplication using only
// integer arithmetic. It exists to cross-check the Machine's
// via-binary64 half-precision path: the two implementations are fully
// independent, so agreement over large random samples (see soft16_test.go)
// validates both the conversion code and the rounding argument in the
// package comment.

// dec16 holds a decoded binary16 value: magnitude sig * 2^exp with the
// stated sign. For normal numbers sig includes the implicit bit
// (sig in [2^10, 2^11)); for subnormals sig is the raw fraction. Zero has
// sig == 0. Infinities and NaNs are handled before decoding.
type dec16 struct {
	neg bool
	exp int // power-of-two scale of sig's integer value
	sig uint64
}

func decode16(h uint16) dec16 {
	d := dec16{neg: h&0x8000 != 0}
	e := int(h>>10) & 0x1f
	m := uint64(h) & 0x3ff
	if e == 0 {
		d.sig = m
		d.exp = -24
		return d
	}
	d.sig = m | 1<<10
	d.exp = e - 15 - 10
	return d
}

// encode16 rounds the exact value ±sig*2^exp to binary16 with
// round-to-nearest-even. sig may be any uint64.
func encode16(neg bool, sig uint64, exp int) uint16 {
	var sign uint16
	if neg {
		sign = 0x8000
	}
	if sig == 0 {
		return sign
	}
	p := bits.Len64(sig) - 1 // position of the leading bit
	e := p + exp             // unbiased exponent of the value

	if e > 15 {
		return sign | 0x7c00
	}
	if e >= -14 {
		// Normal: place the leading bit at position 10, round the rest.
		s := rneShift(sig, p-10)
		if s >= 1<<11 {
			// Rounding carried past the leading bit.
			s >>= 1
			e++
			if e > 15 {
				return sign | 0x7c00
			}
		}
		return sign | uint16(e+15)<<10 | uint16(s&0x3ff)
	}
	// Subnormal: mant = round(sig * 2^(exp+24)). When mant rounds up to
	// 2^10 the encoding sign|mant is exactly the smallest normal.
	mant := rneShift(sig, -(exp + 24))
	return sign | uint16(mant)
}

// rneShift shifts sig right by n bits with round-to-nearest-even
// (n may exceed 63; n <= 0 shifts left, which the callers guarantee
// cannot overflow).
func rneShift(sig uint64, n int) uint64 {
	if n <= 0 {
		return sig << uint(-n)
	}
	var kept, round, sticky uint64
	switch {
	case n > 64:
		return 0
	case n == 64:
		round = sig >> 63
		if sig&(1<<63-1) != 0 {
			sticky = 1
		}
	default:
		kept = sig >> uint(n)
		round = sig >> uint(n-1) & 1
		if sig&(1<<uint(n-1)-1) != 0 {
			sticky = 1
		}
	}
	if round == 1 && (sticky == 1 || kept&1 == 1) {
		kept++
	}
	return kept
}

// softAdd16 returns a+b in binary16 using integer-only arithmetic.
func softAdd16(a, b uint16) uint16 {
	// Specials.
	an, bn := isNaN16(a), isNaN16(b)
	if an || bn {
		return 0x7e00
	}
	ai, bi := isInf16(a), isInf16(b)
	switch {
	case ai && bi:
		if a == b {
			return a
		}
		return 0x7e00 // Inf + -Inf
	case ai:
		return a
	case bi:
		return b
	}

	da, db := decode16(a), decode16(b)
	if da.sig == 0 && db.sig == 0 {
		// Signed-zero rules for addition: -0 + -0 = -0, else +0.
		if da.neg && db.neg {
			return 0x8000
		}
		return 0
	}

	e := da.exp
	if db.exp < e {
		e = db.exp
	}
	// Exponents lie in [-24, 5]; max shift 29 with an 11-bit significand
	// stays far inside uint64.
	va := int64(da.sig << uint(da.exp-e))
	vb := int64(db.sig << uint(db.exp-e))
	if da.neg {
		va = -va
	}
	if db.neg {
		vb = -vb
	}
	sum := va + vb
	if sum == 0 {
		// Exact cancellation yields +0 under round-to-nearest.
		return 0
	}
	neg := sum < 0
	if neg {
		sum = -sum
	}
	return encode16(neg, uint64(sum), e)
}

// softMul16 returns a*b in binary16 using integer-only arithmetic.
func softMul16(a, b uint16) uint16 {
	an, bn := isNaN16(a), isNaN16(b)
	if an || bn {
		return 0x7e00
	}
	neg := (a^b)&0x8000 != 0
	ai, bi := isInf16(a), isInf16(b)
	az, bz := a&0x7fff == 0, b&0x7fff == 0
	if ai || bi {
		if az || bz {
			return 0x7e00 // Inf * 0
		}
		if neg {
			return 0xfc00
		}
		return 0x7c00
	}
	if az || bz {
		if neg {
			return 0x8000
		}
		return 0
	}
	da, db := decode16(a), decode16(b)
	return encode16(neg, da.sig*db.sig, da.exp+db.exp)
}

func isNaN16(h uint16) bool { return h&0x7c00 == 0x7c00 && h&0x3ff != 0 }
func isInf16(h uint16) bool { return h&0x7fff == 0x7c00 }
