package fp

import (
	"fmt"
	"math"
)

// ExpDecomp wraps an Env and replaces the atomic Exp with a software
// implementation — range reduction, a Horner polynomial, repeated
// squaring, and power-of-two reconstruction — computed entirely through
// the inner Env's Add/Mul/FMA operations.
//
// This mirrors how real platforms run transcendentals: the paper notes
// that GPUs execute functions like exp in software, and that the Xeon
// Phi's double-precision transcendental runs a longer, more accurate
// sequence than single (Harrison et al., the paper's [43]). The device
// models pick Terms and Squarings per precision; what matters for
// reliability is that every intermediate step becomes an injectable
// fault site, so the longer the routine, the more of a kernel's exposure
// sits inside the transcendental.
//
// The algorithm, for finite x:
//
//	k  = round(x / ln 2)           (host-side integer decision)
//	r  = x - k ln 2                (one FMA;  |r| <= ln2/2)
//	r' = r * 2^-Squarings          (one exact Mul)
//	p  = sum_{i<Terms} r'^i / i!   (Terms-1 FMAs, Horner)
//	p  = p^2, Squarings times      (Squarings Muls)
//	result = p * 2^k               (one or two exact Muls)
type ExpDecomp struct {
	Inner Env
	// Terms is the Horner polynomial length (>= 2).
	Terms int
	// Squarings is the argument-halving depth m: the polynomial runs on
	// r/2^m and the result is squared m times.
	Squarings int
	// IntSites is the number of integer sequencing decisions the
	// implementation makes per call (range-reduction quotients, table
	// indices, shift counts). Table-driven double-precision
	// implementations (the paper's [43]) carry several; branch-free
	// vectorized polynomials carry one. Each is exposed to the inner
	// environment through the IntDecider hook, so strikes on the
	// routine's *integer* state — which scale the result by a power of
	// two — become injectable. Zero means 1.
	IntSites int
}

// NewExpDecomp wraps inner with a software exp of the given shape.
// Terms below 2 are raised to 2; negative Squarings become 0; IntSites
// below 1 becomes 1.
func NewExpDecomp(inner Env, terms, squarings int) *ExpDecomp {
	if terms < 2 {
		terms = 2
	}
	if squarings < 0 {
		squarings = 0
	}
	return &ExpDecomp{Inner: inner, Terms: terms, Squarings: squarings, IntSites: 1}
}

// IntDecider is implemented by environments that observe (and possibly
// corrupt) the integer sequencing decisions of software routines: the
// counting environment tallies them, the injecting environment can flip
// their bits. The value flows through unchanged otherwise.
type IntDecider interface {
	IntDecision(k int) int
}

// Format implements Env.
func (e *ExpDecomp) Format() Format { return e.Inner.Format() }

// Add implements Env.
func (e *ExpDecomp) Add(a, b Bits) Bits { return e.Inner.Add(a, b) }

// Sub implements Env.
func (e *ExpDecomp) Sub(a, b Bits) Bits { return e.Inner.Sub(a, b) }

// Mul implements Env.
func (e *ExpDecomp) Mul(a, b Bits) Bits { return e.Inner.Mul(a, b) }

// Div implements Env.
func (e *ExpDecomp) Div(a, b Bits) Bits { return e.Inner.Div(a, b) }

// FMA implements Env.
func (e *ExpDecomp) FMA(a, b, c Bits) Bits { return e.Inner.FMA(a, b, c) }

// Sqrt implements Env.
func (e *ExpDecomp) Sqrt(a Bits) Bits { return e.Inner.Sqrt(a) }

// FromFloat64 implements Env.
func (e *ExpDecomp) FromFloat64(v float64) Bits { return e.Inner.FromFloat64(v) }

// ToFloat64 implements Env.
func (e *ExpDecomp) ToFloat64(b Bits) float64 { return e.Inner.ToFloat64(b) }

// Exp implements Env with the software sequence.
func (e *ExpDecomp) Exp(x Bits) Bits {
	f := e.Format()
	in := e.Inner
	xf := e.ToFloat64(x)

	// Specials and range clamping follow the hardware semantics.
	switch {
	case math.IsNaN(xf):
		return f.QuietNaN()
	case math.IsInf(xf, 1):
		return f.Inf(false)
	case math.IsInf(xf, -1):
		return e.FromFloat64(0)
	}
	// Beyond these bounds the result overflows/underflows the format
	// regardless of the computation path.
	maxLog := math.Log(f.MaxFinite())
	if xf > maxLog+1 {
		return f.Inf(false)
	}
	if xf < -maxLog-float64(f.MantBits()) {
		return e.FromFloat64(0)
	}

	k := int(math.Round(xf / math.Ln2))

	// r = x - k*ln2 via FMA with the format's rounded ln2.
	kBits := e.FromFloat64(float64(k))
	negLn2 := e.FromFloat64(-math.Ln2)
	r := in.FMA(kBits, negLn2, x)

	// Argument halving: r' = r * 2^-m (exact scaling).
	m := e.Squarings
	if m > 0 {
		r = in.Mul(r, e.FromFloat64(math.Ldexp(1, -m)))
	}

	// Horner polynomial for e^r', coefficients 1/i!.
	acc := e.FromFloat64(1.0 / factorial(e.Terms-1))
	for i := e.Terms - 2; i >= 0; i-- {
		acc = in.FMA(acc, r, e.FromFloat64(1.0/factorial(i)))
	}

	// Undo the halving by repeated squaring.
	for i := 0; i < m; i++ {
		acc = in.Mul(acc, acc)
	}

	// The reduction quotient is re-read for reconstruction through the
	// routine's integer sequencing state (table indices, shift counts):
	// a strike between its uses scales the result by a power of two
	// while the polynomial remains consistent — the failure mode of a
	// corrupted table fetch. (A strike corrupting k before *both* uses
	// would cancel out: exp(x - k ln2) * 2^k is k-invariant.)
	if d, ok := in.(IntDecider); ok {
		sites := e.IntSites
		if sites < 1 {
			sites = 1
		}
		for i := 0; i < sites; i++ {
			k = d.IntDecision(k)
		}
	}

	// Reconstruct 2^k with exact power-of-two multiplies, split so each
	// factor stays representable in the format.
	maxStep := f.Bias() - 1
	for k != 0 {
		step := k
		if step > maxStep {
			step = maxStep
		}
		if step < -maxStep {
			step = -maxStep
		}
		acc = in.Mul(acc, e.FromFloat64(math.Ldexp(1, step)))
		k -= step
	}
	return acc
}

// factorial returns n! as a float64 (exact for n <= 22).
func factorial(n int) float64 {
	out := 1.0
	for i := 2; i <= n; i++ {
		out *= float64(i)
	}
	return out
}

// ExpShape describes a platform's software-exp implementation for one
// precision; device models map precisions to shapes.
type ExpShape struct {
	Terms     int
	Squarings int
	// IntSites is the number of integer sequencing decisions per call
	// (see ExpDecomp.IntSites). Zero means 1.
	IntSites int
}

// Key returns a string identifying the arithmetic behavior of the
// wrap WrapExp(s) produces, for memoizing fault-free artifacts
// (arch.Mapping.WrapKey).
func (s ExpShape) Key() string {
	return fmt.Sprintf("softexp/t%d/q%d/i%d", s.Terms, s.Squarings, s.IntSites)
}

// WrapExp returns an Env transform installing a software exp of the
// given shape, suitable for arch.Mapping.Wrap.
func WrapExp(shape ExpShape) func(Env) Env {
	return func(inner Env) Env {
		d := NewExpDecomp(inner, shape.Terms, shape.Squarings)
		if shape.IntSites > 0 {
			d.IntSites = shape.IntSites
		}
		return d
	}
}
