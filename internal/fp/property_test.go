package fp

import (
	"math"
	"testing"
	"testing/quick"

	"mixedrel/internal/rng"
)

// Property: for every format, decoding an arbitrary well-formed encoding
// to float64 and re-encoding is the identity (up to NaN
// canonicalization).
func TestRoundTripPropertyAllFormats(t *testing.T) {
	for _, f := range AllFormats {
		f := f
		prop := func(raw uint64) bool {
			b := Bits(raw) & f.Mask()
			if f.IsNaN(b) {
				return f.IsNaN(f.FromFloat64(f.ToFloat64(b)))
			}
			return f.FromFloat64(f.ToFloat64(b)) == b
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

// Property: rounding is monotone — a larger float64 never encodes to a
// smaller representable value.
func TestRoundingMonotoneProperty(t *testing.T) {
	r := rng.New(83)
	for _, f := range AllFormats {
		for i := 0; i < 3000; i++ {
			x := r.NormFloat64() * math.Exp(r.NormFloat64()*4)
			y := x * (1 + r.Float64()*0.1)
			if x > y {
				x, y = y, x
			}
			vx := f.ToFloat64(f.FromFloat64(x))
			vy := f.ToFloat64(f.FromFloat64(y))
			if vx > vy {
				t.Fatalf("%v: rounding not monotone at %v <= %v (%v > %v)", f, x, y, vx, vy)
			}
		}
	}
}

// Property: rounding never moves a value by more than half an ulp of the
// result (round-to-nearest), for in-range inputs.
func TestRoundingNearestProperty(t *testing.T) {
	r := rng.New(89)
	for _, f := range AllFormats {
		for i := 0; i < 3000; i++ {
			x := r.NormFloat64() * 100
			v := f.ToFloat64(f.FromFloat64(x))
			// Nearest: no other representable value is closer.
			b := f.FromFloat64(x)
			if f.IsInf(b) || f.IsZero(b) {
				continue
			}
			up := f.ToFloat64(b + 1)
			if math.Abs(up-x) < math.Abs(v-x) && !math.IsInf(up, 0) {
				t.Fatalf("%v: %v rounds to %v but %v is closer", f, x, v, up)
			}
			if f.Mantissa(b) != 0 { // b-1 stays in the same binade family
				down := f.ToFloat64(b - 1)
				if math.Abs(down-x) < math.Abs(v-x) {
					t.Fatalf("%v: %v rounds to %v but %v is closer", f, x, v, down)
				}
			}
		}
	}
}

// Property: a narrower format's value set is contained in every wider
// IEEE format with at least as many mantissa and exponent bits
// (half ⊂ single ⊂ double; bfloat16 ⊂ single ⊂ double).
func TestFormatContainmentProperty(t *testing.T) {
	pairs := [][2]Format{{Half, Single}, {Half, Double}, {Single, Double}, {BFloat16, Single}, {BFloat16, Double}}
	for _, pair := range pairs {
		narrow, wide := pair[0], pair[1]
		prop := func(raw uint16) bool {
			b := Bits(raw) & narrow.Mask()
			if narrow.IsNaN(b) {
				return true
			}
			v := narrow.ToFloat64(b)
			// Representable exactly in the wider format.
			return wide.ToFloat64(wide.FromFloat64(v)) == v
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
			t.Errorf("%v in %v: %v", narrow, wide, err)
		}
	}
}

// Property: arithmetic closure — every machine operation on well-formed
// encodings yields a well-formed encoding of the same format.
func TestArithmeticClosureProperty(t *testing.T) {
	r := rng.New(97)
	for _, f := range AllFormats {
		m := NewMachine(f)
		for i := 0; i < 2000; i++ {
			a := Bits(r.Uint64()) & f.Mask()
			b := Bits(r.Uint64()) & f.Mask()
			for _, res := range []Bits{m.Add(a, b), m.Mul(a, b), m.FMA(a, b, a)} {
				if res&^f.Mask() != 0 {
					t.Fatalf("%v: out-of-format result %#x", f, res)
				}
				// Round trip must hold (the result is representable).
				if !f.IsNaN(res) && f.FromFloat64(f.ToFloat64(res)) != res {
					t.Fatalf("%v: unrepresentable result %#x", f, res)
				}
			}
		}
	}
}
