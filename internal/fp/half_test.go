package fp

import (
	"math"
	"testing"
)

// Known binary16 encodings.
var halfKnown = []struct {
	bits uint16
	val  float64
}{
	{0x0000, 0},
	{0x3c00, 1},
	{0xbc00, -1},
	{0x4000, 2},
	{0xc000, -2},
	{0x3800, 0.5},
	{0x3555, 0.333251953125}, // nearest half to 1/3
	{0x7bff, 65504},          // max finite
	{0xfbff, -65504},
	{0x0400, math.Ldexp(1, -14)},    // min normal
	{0x0001, math.Ldexp(1, -24)},    // min subnormal
	{0x03ff, math.Ldexp(1023, -24)}, // max subnormal
	{0x7c00, math.Inf(1)},
	{0xfc00, math.Inf(-1)},
}

func TestHalfKnownDecodings(t *testing.T) {
	for _, k := range halfKnown {
		if got := halfToFloat64(k.bits); got != k.val {
			t.Errorf("halfToFloat64(%#04x) = %v, want %v", k.bits, got, k.val)
		}
	}
}

func TestHalfKnownEncodings(t *testing.T) {
	for _, k := range halfKnown {
		if got := halfFromFloat64(k.val); got != k.bits {
			t.Errorf("halfFromFloat64(%v) = %#04x, want %#04x", k.val, got, k.bits)
		}
	}
}

func TestHalfNegativeZero(t *testing.T) {
	if got := halfFromFloat64(math.Copysign(0, -1)); got != 0x8000 {
		t.Errorf("halfFromFloat64(-0) = %#04x, want 0x8000", got)
	}
	v := halfToFloat64(0x8000)
	if v != 0 || !math.Signbit(v) {
		t.Errorf("halfToFloat64(0x8000) = %v (signbit %v), want -0", v, math.Signbit(v))
	}
}

func TestHalfNaN(t *testing.T) {
	if !math.IsNaN(halfToFloat64(0x7e00)) {
		t.Error("halfToFloat64(0x7e00) is not NaN")
	}
	if !math.IsNaN(halfToFloat64(0x7c01)) {
		t.Error("halfToFloat64(0x7c01) (signaling payload) is not NaN")
	}
	if got := halfFromFloat64(math.NaN()); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("halfFromFloat64(NaN) = %#04x is not a NaN encoding", got)
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{65536, 0x7c00},
		{-65536, 0xfc00},
		{1e300, 0x7c00},
		{math.MaxFloat64, 0x7c00},
		// 65520 is the midpoint between 65504 and the first value past
		// the format (2^16); round-to-even sends it to infinity.
		{65520, 0x7c00},
		// Just under the midpoint rounds down to max finite.
		{65519.999, 0x7bff},
	}
	for _, c := range cases {
		if got := halfFromFloat64(c.in); got != c.want {
			t.Errorf("halfFromFloat64(%v) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestHalfUnderflow(t *testing.T) {
	minSub := math.Ldexp(1, -24)
	cases := []struct {
		in   float64
		want uint16
	}{
		{minSub, 0x0001},
		{minSub / 2, 0x0000},       // exactly half the min subnormal: ties-to-even -> 0
		{minSub/2 + 1e-12, 0x0001}, // just above half rounds up
		{minSub * 1.5, 0x0002},     // tie between 1 and 2 ulps: even -> 2
		{minSub * 2.4999, 0x0002},
		{5e-324, 0x0000}, // smallest binary64 subnormal
	}
	for _, c := range cases {
		if got := halfFromFloat64(c.in); got != c.want {
			t.Errorf("halfFromFloat64(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestHalfRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1.0 (0x3c00) and 1+2^-10 (0x3c01):
	// ties-to-even picks 0x3c00.
	if got := halfFromFloat64(1 + math.Ldexp(1, -11)); got != 0x3c00 {
		t.Errorf("tie at 1+2^-11 rounded to %#04x, want 0x3c00", got)
	}
	// (1 + 3*2^-11) is between 0x3c01 and 0x3c02: even is 0x3c02.
	if got := halfFromFloat64(1 + 3*math.Ldexp(1, -11)); got != 0x3c02 {
		t.Errorf("tie at 1+3*2^-11 rounded to %#04x, want 0x3c02", got)
	}
	// Anything past the tie rounds up.
	if got := halfFromFloat64(1 + math.Ldexp(1, -11) + 1e-9); got != 0x3c01 {
		t.Errorf("1+2^-11+eps rounded to %#04x, want 0x3c01", got)
	}
}

// Exhaustive: every one of the 65536 encodings round-trips through
// float64 (NaNs canonicalize, preserving sign).
func TestHalfRoundTripExhaustive(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := uint16(i)
		v := halfToFloat64(h)
		back := halfFromFloat64(v)
		want := h
		if isNaN16(h) {
			want = h&0x8000 | 0x7e00
		}
		if back != want {
			t.Fatalf("round trip %#04x -> %v -> %#04x (want %#04x)", h, v, back, want)
		}
	}
}

// Exhaustive: decoding is monotone over non-NaN encodings, i.e. the
// ordered-integer scale maps to non-decreasing float64 values.
func TestHalfDecodeMonotone(t *testing.T) {
	prev := math.Inf(-1)
	// Walk negative encodings from 0xfc00 (-Inf) down to 0x8000 (-0),
	// then positives 0x0000..0x7c00.
	for h := 0xfc00; h >= 0x8000; h-- {
		v := halfToFloat64(uint16(h))
		if v < prev {
			t.Fatalf("non-monotone at %#04x: %v < %v", h, v, prev)
		}
		prev = v
	}
	for h := 0; h <= 0x7c00; h++ {
		v := halfToFloat64(uint16(h))
		if v < prev {
			t.Fatalf("non-monotone at %#04x: %v < %v", h, v, prev)
		}
		prev = v
	}
}

// Exhaustive: conversion is faithful — converting any encoding's exact
// value plus/minus a quarter ulp still rounds back to the same encoding.
func TestHalfFaithfulRounding(t *testing.T) {
	for i := 0x0001; i < 0x7c00; i++ { // positive finite nonzero
		h := uint16(i)
		v := halfToFloat64(h)
		if h+1 < 0x7c00 { // upward check needs a finite neighbor
			next := halfToFloat64(h + 1)
			quarter := (next - v) / 4
			if got := halfFromFloat64(v + quarter); got != h {
				t.Fatalf("%#04x + 1/4 ulp encoded as %#04x", h, got)
			}
		}
		if i > 1 {
			prevV := halfToFloat64(h - 1)
			quarterDown := (v - prevV) / 4
			if got := halfFromFloat64(v - quarterDown); got != h {
				t.Fatalf("%#04x - 1/4 ulp encoded as %#04x", h, got)
			}
		}
	}
}
