package fp

import (
	"math"
	"sync"
)

// f64Buf pools the decoded-operand scratch used by Machine.GemmFMA. The
// pointer boxing keeps sync.Pool round-trips allocation-free.
type f64Buf struct{ s []float64 }

var f64Pool = sync.Pool{New: func() any { return new(f64Buf) }}

func getF64(n int) *f64Buf {
	b := f64Pool.Get().(*f64Buf)
	if cap(b.s) < n {
		//mixedrelvet:allow hotalloc amortized scratch growth, steady state reuses the pooled buffer
		b.s = make([]float64, n)
	}
	b.s = b.s[:n]
	return b
}

func putF64(b *f64Buf) { f64Pool.Put(b) }

// BatchEnv is an optional extension of Env for kernel inner loops. Each
// batch operation is defined as *exactly* the sequence of scalar Env
// operations its fallback performs — same operation kinds, same order,
// same per-element round-to-nearest-even — so implementations may only
// differ in speed, never in bits. Kernels never call these methods
// directly; they go through the package-level DotFMA/AddN/MulN/FMAN/AXPY
// helpers, which decompose into scalar Env calls whenever the
// environment does not implement BatchEnv. That keeps every wrapper that
// intercepts scalar operations (injectors, recorders, custom
// instrumentation) in full control of the operation stream by default:
// only environments that explicitly implement BatchEnv take over a
// batch, and they are responsible for preserving scalar semantics.
//
// Slice contracts: a, b, c and x must have at least len(a) (respectively
// len(x) for AXPY) elements; dst must be at least as long as the driving
// slice. dst may alias c in FMAN and is itself the accumulator in AXPY,
// but must not otherwise alias the inputs.
type BatchEnv interface {
	Env
	// DotFMA folds acc through the chain acc = FMA(a[i], b[i], acc)
	// for i = 0..len(a)-1 and returns the final accumulator.
	DotFMA(acc Bits, a, b []Bits) Bits
	// AddN sets dst[i] = Add(a[i], b[i]).
	AddN(dst, a, b []Bits)
	// MulN sets dst[i] = Mul(a[i], b[i]).
	MulN(dst, a, b []Bits)
	// FMAN sets dst[i] = FMA(a[i], b[i], c[i]).
	FMAN(dst, a, b, c []Bits)
	// AXPY sets dst[i] = FMA(s, x[i], dst[i]) — the broadcast
	// multiply-accumulate of elimination updates.
	AXPY(dst []Bits, s Bits, x []Bits)
	// DotFMABlock computes len(out) independent dot-product chains
	// against one shared vector: out[t] = DotFMA(acc, u,
	// v[t*stride:t*stride+len(u)]), chain t strictly before chain t+1.
	// The chains are mutually independent, so a fast path may overlap
	// their (individually serial) computations without any observable
	// difference; instrumented environments must run them in order.
	DotFMABlock(out []Bits, acc Bits, u, v []Bits, stride int)
	// GemmFMA computes the rows x cols grid of independent chains
	// out[i*cols+j] = DotFMA(acc_i, a[i*k:(i+1)*k], bt[j*k:(j+1)*k])
	// in row-major (i, j) order, where acc_i is accs[i], or
	// FromFloat64(0) for every row when accs is nil. This is GEMM
	// against a pre-transposed right-hand side, and equally the im2col
	// convolution (rows = output channels, cols = pixels) and the dense
	// layer (cols = 1). A fast path may decode a and bt once for the
	// whole grid; instrumented environments run the chains in order.
	GemmFMA(out, accs, a, bt []Bits, rows, cols, k int)
}

// DotFMA computes the FMA chain acc = env.FMA(a[i], b[i], acc) over the
// slices and returns the final accumulator, using env's batch fast path
// when it has one.
func DotFMA(env Env, acc Bits, a, b []Bits) Bits {
	if be, ok := env.(BatchEnv); ok {
		return be.DotFMA(acc, a, b)
	}
	for i, ai := range a {
		acc = env.FMA(ai, b[i], acc)
	}
	return acc
}

// AddN sets dst[i] = env.Add(a[i], b[i]) for i = 0..len(a)-1.
func AddN(env Env, dst, a, b []Bits) {
	if be, ok := env.(BatchEnv); ok {
		be.AddN(dst, a, b)
		return
	}
	for i, ai := range a {
		dst[i] = env.Add(ai, b[i])
	}
}

// MulN sets dst[i] = env.Mul(a[i], b[i]) for i = 0..len(a)-1.
func MulN(env Env, dst, a, b []Bits) {
	if be, ok := env.(BatchEnv); ok {
		be.MulN(dst, a, b)
		return
	}
	for i, ai := range a {
		dst[i] = env.Mul(ai, b[i])
	}
}

// FMAN sets dst[i] = env.FMA(a[i], b[i], c[i]) for i = 0..len(a)-1.
func FMAN(env Env, dst, a, b, c []Bits) {
	if be, ok := env.(BatchEnv); ok {
		be.FMAN(dst, a, b, c)
		return
	}
	for i, ai := range a {
		dst[i] = env.FMA(ai, b[i], c[i])
	}
}

// AXPY sets dst[i] = env.FMA(s, x[i], dst[i]) for i = 0..len(x)-1.
func AXPY(env Env, dst []Bits, s Bits, x []Bits) {
	if be, ok := env.(BatchEnv); ok {
		be.AXPY(dst, s, x)
		return
	}
	for i, xi := range x {
		dst[i] = env.FMA(s, xi, dst[i])
	}
}

// DotFMABlock computes out[t] = DotFMA(env, acc, u,
// v[t*stride:t*stride+len(u)]) for t = 0..len(out)-1 — the row-times-
// matrix shape of GEMM and im2col convolution — using env's batch fast
// path when it has one.
func DotFMABlock(env Env, out []Bits, acc Bits, u, v []Bits, stride int) {
	if be, ok := env.(BatchEnv); ok {
		be.DotFMABlock(out, acc, u, v, stride)
		return
	}
	for t := range out {
		out[t] = DotFMA(env, acc, u, v[t*stride:t*stride+len(u)])
	}
}

// FromFloat64N encodes xs into dst (which must be at least as long),
// hoisting the per-element format dispatch of Format.FromFloat64 out of
// the loop. Encoding is a pure conversion, not an Env operation, so no
// wrapper semantics are involved.
func FromFloat64N(f Format, dst []Bits, xs []float64) {
	switch f {
	case Half:
		for i, x := range xs {
			dst[i] = Bits(halfFromFloat64(x))
		}
	case BFloat16:
		for i, x := range xs {
			dst[i] = Bits(bfloatFromFloat64(x))
		}
	case Single:
		for i, x := range xs {
			dst[i] = Bits(math.Float32bits(float32(x)))
		}
	case Double:
		for i, x := range xs {
			dst[i] = Bits(math.Float64bits(x))
		}
	default:
		for i, x := range xs {
			dst[i] = f.FromFloat64(x)
		}
	}
}

// ToFloat64N decodes bs (encodings in format f) into dst (which must be
// at least as long), hoisting the per-element format dispatch.
func ToFloat64N(f Format, dst []float64, bs []Bits) {
	switch f {
	case Half:
		for i, b := range bs {
			dst[i] = halfDecode[uint16(b)]
		}
	case BFloat16:
		for i, b := range bs {
			dst[i] = bfloatDecode[uint16(b)]
		}
	case Single:
		for i, b := range bs {
			dst[i] = float64(math.Float32frombits(uint32(b)))
		}
	case Double:
		for i, b := range bs {
			dst[i] = math.Float64frombits(uint64(b))
		}
	default:
		for i, b := range bs {
			dst[i] = f.ToFloat64(b)
		}
	}
}

// GemmFMA computes out[i*cols+j] = DotFMA(env, acc_i, a[i*k:(i+1)*k],
// bt[j*k:(j+1)*k]) for the whole rows x cols grid in row-major order,
// with acc_i = accs[i] (or env.FromFloat64(0) when accs is nil), using
// env's batch fast path when it has one.
func GemmFMA(env Env, out, accs, a, bt []Bits, rows, cols, k int) {
	if be, ok := env.(BatchEnv); ok {
		be.GemmFMA(out, accs, a, bt, rows, cols, k)
		return
	}
	zero := env.FromFloat64(0)
	for i := 0; i < rows; i++ {
		acc := zero
		if accs != nil {
			acc = accs[i]
		}
		DotFMABlock(env, out[i*cols:(i+1)*cols], acc, a[i*k:(i+1)*k], bt, k)
	}
}

// Machine's batch fast paths perform bit-for-bit the scalar computation
// — decode each operand, one binary64 operation, one round-to-nearest-
// even encode per element — minus the per-operation costs the scalar
// path cannot avoid: the interface dispatch, the format switch, and for
// the 16-bit formats three separate ToFloat64 switch dispatches. The
// 16-bit loops read the PR 1 decode tables directly and the accumulator
// of a DotFMA chain stays in registers between steps (re-encoded and
// re-decoded each step, exactly as the scalar chain would through Bits).

// DotFMA implements BatchEnv.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) DotFMA(acc Bits, a, b []Bits) Bits {
	switch m.f {
	case Single:
		x := math.Float32frombits(uint32(acc))
		for i, ai := range a {
			x = float32(math.FMA(
				float64(math.Float32frombits(uint32(ai))),
				float64(math.Float32frombits(uint32(b[i]))),
				float64(x)))
		}
		return Bits(math.Float32bits(x))
	case Double:
		x := math.Float64frombits(uint64(acc))
		for i, ai := range a {
			x = math.FMA(math.Float64frombits(uint64(ai)), math.Float64frombits(uint64(b[i])), x)
		}
		return Bits(math.Float64bits(x))
	case Half:
		h := uint16(acc)
		for i, ai := range a {
			h = halfFromFloat64(math.FMA(halfDecode[uint16(ai)], halfDecode[uint16(b[i])], halfDecode[h]))
		}
		return Bits(h)
	case BFloat16:
		h := uint16(acc)
		for i, ai := range a {
			h = bfloatFromFloat64(math.FMA(bfloatDecode[uint16(ai)], bfloatDecode[uint16(b[i])], bfloatDecode[h]))
		}
		return Bits(h)
	}
	for i, ai := range a {
		acc = m.FMA(ai, b[i], acc)
	}
	return acc
}

// AddN implements BatchEnv.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) AddN(dst, a, b []Bits) {
	switch m.f {
	case Single:
		for i, ai := range a {
			dst[i] = Bits(math.Float32bits(math.Float32frombits(uint32(ai)) + math.Float32frombits(uint32(b[i]))))
		}
	case Double:
		for i, ai := range a {
			dst[i] = Bits(math.Float64bits(math.Float64frombits(uint64(ai)) + math.Float64frombits(uint64(b[i]))))
		}
	case Half:
		for i, ai := range a {
			dst[i] = Bits(halfFromFloat64(halfDecode[uint16(ai)] + halfDecode[uint16(b[i])]))
		}
	case BFloat16:
		for i, ai := range a {
			dst[i] = Bits(bfloatFromFloat64(bfloatDecode[uint16(ai)] + bfloatDecode[uint16(b[i])]))
		}
	default:
		for i, ai := range a {
			dst[i] = m.Add(ai, b[i])
		}
	}
}

// MulN implements BatchEnv.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) MulN(dst, a, b []Bits) {
	switch m.f {
	case Single:
		for i, ai := range a {
			dst[i] = Bits(math.Float32bits(math.Float32frombits(uint32(ai)) * math.Float32frombits(uint32(b[i]))))
		}
	case Double:
		for i, ai := range a {
			dst[i] = Bits(math.Float64bits(math.Float64frombits(uint64(ai)) * math.Float64frombits(uint64(b[i]))))
		}
	case Half:
		for i, ai := range a {
			dst[i] = Bits(halfFromFloat64(halfDecode[uint16(ai)] * halfDecode[uint16(b[i])]))
		}
	case BFloat16:
		for i, ai := range a {
			dst[i] = Bits(bfloatFromFloat64(bfloatDecode[uint16(ai)] * bfloatDecode[uint16(b[i])]))
		}
	default:
		for i, ai := range a {
			dst[i] = m.Mul(ai, b[i])
		}
	}
}

// FMAN implements BatchEnv.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) FMAN(dst, a, b, c []Bits) {
	switch m.f {
	case Single:
		for i, ai := range a {
			dst[i] = Bits(math.Float32bits(float32(math.FMA(
				float64(math.Float32frombits(uint32(ai))),
				float64(math.Float32frombits(uint32(b[i]))),
				float64(math.Float32frombits(uint32(c[i])))))))
		}
	case Double:
		for i, ai := range a {
			dst[i] = Bits(math.Float64bits(math.FMA(
				math.Float64frombits(uint64(ai)),
				math.Float64frombits(uint64(b[i])),
				math.Float64frombits(uint64(c[i])))))
		}
	case Half:
		for i, ai := range a {
			dst[i] = Bits(halfFromFloat64(math.FMA(halfDecode[uint16(ai)], halfDecode[uint16(b[i])], halfDecode[uint16(c[i])])))
		}
	case BFloat16:
		for i, ai := range a {
			dst[i] = Bits(bfloatFromFloat64(math.FMA(bfloatDecode[uint16(ai)], bfloatDecode[uint16(b[i])], bfloatDecode[uint16(c[i])])))
		}
	default:
		for i, ai := range a {
			dst[i] = m.FMA(ai, b[i], c[i])
		}
	}
}

// AXPY implements BatchEnv.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) AXPY(dst []Bits, s Bits, x []Bits) {
	switch m.f {
	case Single:
		sv := float64(math.Float32frombits(uint32(s)))
		for i, xi := range x {
			dst[i] = Bits(math.Float32bits(float32(math.FMA(
				sv,
				float64(math.Float32frombits(uint32(xi))),
				float64(math.Float32frombits(uint32(dst[i])))))))
		}
	case Double:
		sv := math.Float64frombits(uint64(s))
		for i, xi := range x {
			dst[i] = Bits(math.Float64bits(math.FMA(sv, math.Float64frombits(uint64(xi)), math.Float64frombits(uint64(dst[i])))))
		}
	case Half:
		sv := halfDecode[uint16(s)]
		for i, xi := range x {
			dst[i] = Bits(halfFromFloat64(math.FMA(sv, halfDecode[uint16(xi)], halfDecode[uint16(dst[i])])))
		}
	case BFloat16:
		sv := bfloatDecode[uint16(s)]
		for i, xi := range x {
			dst[i] = Bits(bfloatFromFloat64(math.FMA(sv, bfloatDecode[uint16(xi)], bfloatDecode[uint16(dst[i])])))
		}
	default:
		for i, xi := range x {
			dst[i] = m.FMA(s, xi, dst[i])
		}
	}
}

// DotFMABlock implements BatchEnv. Four chains advance together so one
// chain's serial decode→FMA→round latency overlaps the others'; each
// chain's own operation sequence is untouched, so every out[t] is
// bit-identical to a standalone DotFMA over the same slices. The shared
// vector u is decoded once per step for all four chains.
//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) DotFMABlock(out []Bits, acc Bits, u, v []Bits, stride int) {
	L := len(u)
	t := 0
	switch m.f {
	case Single:
		// Eight chains: the per-step critical path (cvtss2sd, FMA,
		// cvtsd2ss) is ~13 cycles of latency, so four chains still
		// leave the FMA unit half idle.
		a0 := math.Float32frombits(uint32(acc))
		for ; t+8 <= len(out); t += 8 {
			v0 := v[t*stride:][:L]
			v1 := v[(t+1)*stride:][:L]
			v2 := v[(t+2)*stride:][:L]
			v3 := v[(t+3)*stride:][:L]
			v4 := v[(t+4)*stride:][:L]
			v5 := v[(t+5)*stride:][:L]
			v6 := v[(t+6)*stride:][:L]
			v7 := v[(t+7)*stride:][:L]
			x0, x1, x2, x3 := a0, a0, a0, a0
			x4, x5, x6, x7 := a0, a0, a0, a0
			for k := 0; k < L; k++ {
				uk := float64(math.Float32frombits(uint32(u[k])))
				x0 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v0[k]))), float64(x0)))
				x1 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v1[k]))), float64(x1)))
				x2 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v2[k]))), float64(x2)))
				x3 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v3[k]))), float64(x3)))
				x4 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v4[k]))), float64(x4)))
				x5 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v5[k]))), float64(x5)))
				x6 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v6[k]))), float64(x6)))
				x7 = float32(math.FMA(uk, float64(math.Float32frombits(uint32(v7[k]))), float64(x7)))
			}
			out[t] = Bits(math.Float32bits(x0))
			out[t+1] = Bits(math.Float32bits(x1))
			out[t+2] = Bits(math.Float32bits(x2))
			out[t+3] = Bits(math.Float32bits(x3))
			out[t+4] = Bits(math.Float32bits(x4))
			out[t+5] = Bits(math.Float32bits(x5))
			out[t+6] = Bits(math.Float32bits(x6))
			out[t+7] = Bits(math.Float32bits(x7))
		}
	case Double:
		a0 := math.Float64frombits(uint64(acc))
		for ; t+8 <= len(out); t += 8 {
			v0 := v[t*stride:][:L]
			v1 := v[(t+1)*stride:][:L]
			v2 := v[(t+2)*stride:][:L]
			v3 := v[(t+3)*stride:][:L]
			v4 := v[(t+4)*stride:][:L]
			v5 := v[(t+5)*stride:][:L]
			v6 := v[(t+6)*stride:][:L]
			v7 := v[(t+7)*stride:][:L]
			x0, x1, x2, x3 := a0, a0, a0, a0
			x4, x5, x6, x7 := a0, a0, a0, a0
			for k := 0; k < L; k++ {
				uk := math.Float64frombits(uint64(u[k]))
				x0 = math.FMA(uk, math.Float64frombits(uint64(v0[k])), x0)
				x1 = math.FMA(uk, math.Float64frombits(uint64(v1[k])), x1)
				x2 = math.FMA(uk, math.Float64frombits(uint64(v2[k])), x2)
				x3 = math.FMA(uk, math.Float64frombits(uint64(v3[k])), x3)
				x4 = math.FMA(uk, math.Float64frombits(uint64(v4[k])), x4)
				x5 = math.FMA(uk, math.Float64frombits(uint64(v5[k])), x5)
				x6 = math.FMA(uk, math.Float64frombits(uint64(v6[k])), x6)
				x7 = math.FMA(uk, math.Float64frombits(uint64(v7[k])), x7)
			}
			out[t] = Bits(math.Float64bits(x0))
			out[t+1] = Bits(math.Float64bits(x1))
			out[t+2] = Bits(math.Float64bits(x2))
			out[t+3] = Bits(math.Float64bits(x3))
			out[t+4] = Bits(math.Float64bits(x4))
			out[t+5] = Bits(math.Float64bits(x5))
			out[t+6] = Bits(math.Float64bits(x6))
			out[t+7] = Bits(math.Float64bits(x7))
		}
	case Half:
		for ; t+4 <= len(out); t += 4 {
			v0 := v[t*stride:][:L]
			v1 := v[(t+1)*stride:][:L]
			v2 := v[(t+2)*stride:][:L]
			v3 := v[(t+3)*stride:][:L]
			h0, h1, h2, h3 := uint16(acc), uint16(acc), uint16(acc), uint16(acc)
			for k := 0; k < L; k++ {
				uk := halfDecode[uint16(u[k])]
				h0 = halfFromFloat64(math.FMA(uk, halfDecode[uint16(v0[k])], halfDecode[h0]))
				h1 = halfFromFloat64(math.FMA(uk, halfDecode[uint16(v1[k])], halfDecode[h1]))
				h2 = halfFromFloat64(math.FMA(uk, halfDecode[uint16(v2[k])], halfDecode[h2]))
				h3 = halfFromFloat64(math.FMA(uk, halfDecode[uint16(v3[k])], halfDecode[h3]))
			}
			out[t] = Bits(h0)
			out[t+1] = Bits(h1)
			out[t+2] = Bits(h2)
			out[t+3] = Bits(h3)
		}
	case BFloat16:
		for ; t+4 <= len(out); t += 4 {
			v0 := v[t*stride:][:L]
			v1 := v[(t+1)*stride:][:L]
			v2 := v[(t+2)*stride:][:L]
			v3 := v[(t+3)*stride:][:L]
			h0, h1, h2, h3 := uint16(acc), uint16(acc), uint16(acc), uint16(acc)
			for k := 0; k < L; k++ {
				uk := bfloatDecode[uint16(u[k])]
				h0 = bfloatFromFloat64(math.FMA(uk, bfloatDecode[uint16(v0[k])], bfloatDecode[h0]))
				h1 = bfloatFromFloat64(math.FMA(uk, bfloatDecode[uint16(v1[k])], bfloatDecode[h1]))
				h2 = bfloatFromFloat64(math.FMA(uk, bfloatDecode[uint16(v2[k])], bfloatDecode[h2]))
				h3 = bfloatFromFloat64(math.FMA(uk, bfloatDecode[uint16(v3[k])], bfloatDecode[h3]))
			}
			out[t] = Bits(h0)
			out[t+1] = Bits(h1)
			out[t+2] = Bits(h2)
			out[t+3] = Bits(h3)
		}
	}
	for ; t < len(out); t++ {
		out[t] = m.DotFMA(acc, u, v[t*stride:t*stride+L])
	}
}

// GemmFMA implements BatchEnv. Every chain is independent, so the grid
// flattens to rows*cols chains that can interleave freely as long as
// each chain's own FMA sequence stays serial. For Single the operand
// matrices are decoded to binary64 once up front (float32 -> float64 is
// exact, so this is bit-neutral) — that removes the two convert-on-load
// instructions per FMA that bound DotFMABlock's throughput — and eight
// chains advance together. The other formats gain nothing from operand
// predecoding (Double decodes are free bit reinterpretations; the 16-bit
// formats decode via table loads either way), so they run per-row
// through DotFMABlock, which already interleaves.
// accAt reads the single-precision accumulator seed for flat cell c, or
// zero when no accumulators were supplied.
func accAt(accs []Bits, cols, c int) float32 {
	if accs == nil {
		return 0
	}
	return math.Float32frombits(uint32(accs[c/cols]))
}

//mixedrelvet:hotpath vectorized softfloat inner loop
func (m *Machine) GemmFMA(out, accs, a, bt []Bits, rows, cols, k int) {
	n := rows * cols
	if m.f == Single && n >= 8 {
		ab, bb := getF64(rows*k), getF64(cols*k)
		da, dbt := ab.s, bb.s
		ToFloat64N(Single, da, a[:rows*k])
		ToFloat64N(Single, dbt, bt[:cols*k])
		t := 0
		for ; t+8 <= n; t += 8 {
			u0 := da[(t/cols)*k:][:k]
			u1 := da[((t+1)/cols)*k:][:k]
			u2 := da[((t+2)/cols)*k:][:k]
			u3 := da[((t+3)/cols)*k:][:k]
			u4 := da[((t+4)/cols)*k:][:k]
			u5 := da[((t+5)/cols)*k:][:k]
			u6 := da[((t+6)/cols)*k:][:k]
			u7 := da[((t+7)/cols)*k:][:k]
			v0 := dbt[(t%cols)*k:][:k]
			v1 := dbt[((t+1)%cols)*k:][:k]
			v2 := dbt[((t+2)%cols)*k:][:k]
			v3 := dbt[((t+3)%cols)*k:][:k]
			v4 := dbt[((t+4)%cols)*k:][:k]
			v5 := dbt[((t+5)%cols)*k:][:k]
			v6 := dbt[((t+6)%cols)*k:][:k]
			v7 := dbt[((t+7)%cols)*k:][:k]
			x0, x1, x2, x3 := accAt(accs, cols, t), accAt(accs, cols, t+1), accAt(accs, cols, t+2), accAt(accs, cols, t+3)
			x4, x5, x6, x7 := accAt(accs, cols, t+4), accAt(accs, cols, t+5), accAt(accs, cols, t+6), accAt(accs, cols, t+7)
			for kk := 0; kk < k; kk++ {
				x0 = float32(math.FMA(u0[kk], v0[kk], float64(x0)))
				x1 = float32(math.FMA(u1[kk], v1[kk], float64(x1)))
				x2 = float32(math.FMA(u2[kk], v2[kk], float64(x2)))
				x3 = float32(math.FMA(u3[kk], v3[kk], float64(x3)))
				x4 = float32(math.FMA(u4[kk], v4[kk], float64(x4)))
				x5 = float32(math.FMA(u5[kk], v5[kk], float64(x5)))
				x6 = float32(math.FMA(u6[kk], v6[kk], float64(x6)))
				x7 = float32(math.FMA(u7[kk], v7[kk], float64(x7)))
			}
			out[t] = Bits(math.Float32bits(x0))
			out[t+1] = Bits(math.Float32bits(x1))
			out[t+2] = Bits(math.Float32bits(x2))
			out[t+3] = Bits(math.Float32bits(x3))
			out[t+4] = Bits(math.Float32bits(x4))
			out[t+5] = Bits(math.Float32bits(x5))
			out[t+6] = Bits(math.Float32bits(x6))
			out[t+7] = Bits(math.Float32bits(x7))
		}
		for ; t < n; t++ {
			i, j := t/cols, t%cols
			var ac Bits
			if accs != nil {
				ac = accs[i]
			}
			out[t] = m.DotFMA(ac, a[i*k:(i+1)*k], bt[j*k:(j+1)*k])
		}
		putF64(ab)
		putF64(bb)
		return
	}
	zero := m.FromFloat64(0)
	for i := 0; i < rows; i++ {
		acc := zero
		if accs != nil {
			acc = accs[i]
		}
		m.DotFMABlock(out[i*cols:(i+1)*cols], acc, a[i*k:(i+1)*k], bt, k)
	}
}

// Counting implements BatchEnv by bulk-advancing the tallies and handing
// the batch to its inner environment through the package helpers — so an
// inner machine keeps its fast path while an inner recorder or injector
// still sees every scalar operation. The resulting counts are identical
// to the decomposed loop's: one OpFMA per chain element, one OpAdd/OpMul
// per pair.

// DotFMA implements BatchEnv.
func (c *Counting) DotFMA(acc Bits, a, b []Bits) Bits {
	c.Counts.ByOp[OpFMA] += uint64(len(a))
	return DotFMA(c.Inner, acc, a, b)
}

// AddN implements BatchEnv.
func (c *Counting) AddN(dst, a, b []Bits) {
	c.Counts.ByOp[OpAdd] += uint64(len(a))
	AddN(c.Inner, dst, a, b)
}

// MulN implements BatchEnv.
func (c *Counting) MulN(dst, a, b []Bits) {
	c.Counts.ByOp[OpMul] += uint64(len(a))
	MulN(c.Inner, dst, a, b)
}

// FMAN implements BatchEnv.
func (c *Counting) FMAN(dst, a, b, x []Bits) {
	c.Counts.ByOp[OpFMA] += uint64(len(a))
	FMAN(c.Inner, dst, a, b, x)
}

// AXPY implements BatchEnv.
func (c *Counting) AXPY(dst []Bits, s Bits, x []Bits) {
	c.Counts.ByOp[OpFMA] += uint64(len(x))
	AXPY(c.Inner, dst, s, x)
}

// DotFMABlock implements BatchEnv.
func (c *Counting) DotFMABlock(out []Bits, acc Bits, u, v []Bits, stride int) {
	c.Counts.ByOp[OpFMA] += uint64(len(out)) * uint64(len(u))
	DotFMABlock(c.Inner, out, acc, u, v, stride)
}

// GemmFMA implements BatchEnv.
func (c *Counting) GemmFMA(out, accs, a, bt []Bits, rows, cols, k int) {
	c.Counts.ByOp[OpFMA] += uint64(rows) * uint64(cols) * uint64(k)
	GemmFMA(c.Inner, out, accs, a, bt, rows, cols, k)
}

// ExpDecomp only intercepts Exp, so batches of Add/Mul/FMA pass straight
// through to the inner environment (keeping its fast path or its scalar
// instrumentation, whichever it has).

// DotFMA implements BatchEnv.
func (e *ExpDecomp) DotFMA(acc Bits, a, b []Bits) Bits { return DotFMA(e.Inner, acc, a, b) }

// AddN implements BatchEnv.
func (e *ExpDecomp) AddN(dst, a, b []Bits) { AddN(e.Inner, dst, a, b) }

// MulN implements BatchEnv.
func (e *ExpDecomp) MulN(dst, a, b []Bits) { MulN(e.Inner, dst, a, b) }

// FMAN implements BatchEnv.
func (e *ExpDecomp) FMAN(dst, a, b, c []Bits) { FMAN(e.Inner, dst, a, b, c) }

// AXPY implements BatchEnv.
func (e *ExpDecomp) AXPY(dst []Bits, s Bits, x []Bits) { AXPY(e.Inner, dst, s, x) }

// DotFMABlock implements BatchEnv.
func (e *ExpDecomp) DotFMABlock(out []Bits, acc Bits, u, v []Bits, stride int) {
	DotFMABlock(e.Inner, out, acc, u, v, stride)
}

// GemmFMA implements BatchEnv.
func (e *ExpDecomp) GemmFMA(out, accs, a, bt []Bits, rows, cols, k int) {
	GemmFMA(e.Inner, out, accs, a, bt, rows, cols, k)
}
