package fp

import (
	"encoding/binary"
	"math"
	"testing"
)

// scalarOnly hides any batch methods of the wrapped Env, forcing the
// package helpers onto their scalar decomposition path. It is the
// reference the differential tests compare fast paths against.
type scalarOnly struct {
	inner Env
}

func (s scalarOnly) Format() Format          { return s.inner.Format() }
func (s scalarOnly) Add(a, b Bits) Bits      { return s.inner.Add(a, b) }
func (s scalarOnly) Sub(a, b Bits) Bits      { return s.inner.Sub(a, b) }
func (s scalarOnly) Mul(a, b Bits) Bits      { return s.inner.Mul(a, b) }
func (s scalarOnly) Div(a, b Bits) Bits      { return s.inner.Div(a, b) }
func (s scalarOnly) FMA(a, b, c Bits) Bits   { return s.inner.FMA(a, b, c) }
func (s scalarOnly) Sqrt(a Bits) Bits        { return s.inner.Sqrt(a) }
func (s scalarOnly) Exp(a Bits) Bits         { return s.inner.Exp(a) }
func (s scalarOnly) FromFloat64(v float64) Bits { return s.inner.FromFloat64(v) }
func (s scalarOnly) ToFloat64(b Bits) float64   { return s.inner.ToFloat64(b) }

// batchEdgeValues are the encodings every slice-shaped test weaves in:
// zeros of both signs, subnormals, Inf, NaN, and the format extremes.
func batchEdgeValues(f Format) []Bits {
	vals := []Bits{
		0,                     // +0
		f.signMask(),          // -0
		1,                     // smallest subnormal
		f.mantMask(),          // largest subnormal
		f.mantMask() + 1,      // smallest normal
		f.Inf(false) - 1,      // largest finite
		f.Inf(false),          // +Inf
		f.Inf(true),           // -Inf
		f.QuietNaN(),          // NaN
		f.FromFloat64(1),
		f.FromFloat64(-1.5),
		f.FromFloat64(0.333251953125),
	}
	return vals
}

// fillBits derives a deterministic operand slice of length n from raw
// fuzz bytes, mixing raw encodings with edge values.
func fillBits(f Format, raw []byte, n, salt int) []Bits {
	edges := batchEdgeValues(f)
	out := make([]Bits, n)
	for i := range out {
		var v uint64
		idx := (i + salt) * 8
		if idx+8 <= len(raw) {
			v = binary.LittleEndian.Uint64(raw[idx : idx+8])
		} else {
			v = uint64(i*2654435761 + salt*40503)
		}
		if v%5 == 0 {
			out[i] = edges[int(v/5)%len(edges)]
		} else {
			out[i] = Bits(v) & f.Mask()
		}
	}
	return out
}

// FuzzBatchScalarEquivalence proves the Machine batch fast paths are
// bit-identical to the scalar Env path for every format, every batch
// operation, and arbitrary operands (including subnormals, Inf, NaN, and
// the empty and length-1 slices the length byte can select).
func FuzzBatchScalarEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{})
	f.Add(uint8(1), uint8(1), []byte{0xff})
	f.Add(uint8(2), uint8(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(uint8(3), uint8(33), []byte{0x80, 0x7c, 0x00, 0xfc, 0x01, 0x00, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, fmtSel, lenSel uint8, raw []byte) {
		format := AllFormats[int(fmtSel)%len(AllFormats)]
		n := int(lenSel) % 48 // covers empty, 1, and multi-element slices
		m := NewMachine(format)
		ref := scalarOnly{inner: m}

		a := fillBits(format, raw, n, 0)
		b := fillBits(format, raw, n, 1)
		c := fillBits(format, raw, n, 2)
		var acc Bits
		if len(raw) > 0 {
			acc = Bits(raw[0]) & format.Mask()
		}
		s := fillBits(format, raw, 1, 3)[0]

		if got, want := DotFMA(m, acc, a, b), DotFMA(ref, acc, a, b); got != want {
			t.Fatalf("%v DotFMA: batch %#x != scalar %#x (n=%d)", format, got, want, n)
		}
		gotN := make([]Bits, n)
		wantN := make([]Bits, n)
		AddN(m, gotN, a, b)
		AddN(ref, wantN, a, b)
		for i := range gotN {
			if gotN[i] != wantN[i] {
				t.Fatalf("%v AddN[%d]: batch %#x != scalar %#x", format, i, gotN[i], wantN[i])
			}
		}
		MulN(m, gotN, a, b)
		MulN(ref, wantN, a, b)
		for i := range gotN {
			if gotN[i] != wantN[i] {
				t.Fatalf("%v MulN[%d]: batch %#x != scalar %#x", format, i, gotN[i], wantN[i])
			}
		}
		FMAN(m, gotN, a, b, c)
		FMAN(ref, wantN, a, b, c)
		for i := range gotN {
			if gotN[i] != wantN[i] {
				t.Fatalf("%v FMAN[%d]: batch %#x != scalar %#x", format, i, gotN[i], wantN[i])
			}
		}
		copy(gotN, c)
		copy(wantN, c)
		AXPY(m, gotN, s, a)
		AXPY(ref, wantN, s, a)
		for i := range gotN {
			if gotN[i] != wantN[i] {
				t.Fatalf("%v AXPY[%d]: batch %#x != scalar %#x", format, i, gotN[i], wantN[i])
			}
		}

		// Block and grid shapes from the same bytes. The counts are not
		// multiples of the interleave widths, so the fast-path tails run.
		L := int(lenSel) % 9
		stride := L + int(fmtSel)%3
		u := fillBits(format, raw, L, 4)
		v := fillBits(format, raw, n*stride+L, 5)
		gotB := make([]Bits, n)
		wantB := make([]Bits, n)
		DotFMABlock(m, gotB, acc, u, v, stride)
		DotFMABlock(ref, wantB, acc, u, v, stride)
		for i := range gotB {
			if gotB[i] != wantB[i] {
				t.Fatalf("%v DotFMABlock[%d]: batch %#x != scalar %#x (n=%d L=%d stride=%d)",
					format, i, gotB[i], wantB[i], n, L, stride)
			}
		}

		rows := int(fmtSel)%5 + 1
		cols := int(lenSel)%11 + 1
		ga := fillBits(format, raw, rows*L, 6)
		gbt := fillBits(format, raw, cols*L, 7)
		var accs []Bits
		if n%2 == 0 {
			accs = fillBits(format, raw, rows, 8)
		}
		gotG := make([]Bits, rows*cols)
		wantG := make([]Bits, rows*cols)
		GemmFMA(m, gotG, accs, ga, gbt, rows, cols, L)
		GemmFMA(ref, wantG, accs, ga, gbt, rows, cols, L)
		for i := range gotG {
			if gotG[i] != wantG[i] {
				t.Fatalf("%v GemmFMA[%d]: batch %#x != scalar %#x (rows=%d cols=%d k=%d accs=%v)",
					format, i, gotG[i], wantG[i], rows, cols, L, accs != nil)
			}
		}

		// Bulk converters against their per-element forms.
		decN := make([]float64, n)
		ToFloat64N(format, decN, a)
		for i := range a {
			w := format.ToFloat64(a[i])
			if w != decN[i] && !(math.IsNaN(w) && math.IsNaN(decN[i])) {
				t.Fatalf("%v ToFloat64N[%d]: %v != %v (bits %#x)", format, i, decN[i], w, a[i])
			}
		}
		src := make([]float64, n)
		for i, bb := range fillBits(Double, raw, n, 9) {
			src[i] = math.Float64frombits(uint64(bb))
		}
		encN := make([]Bits, n)
		FromFloat64N(format, encN, src)
		for i := range src {
			if w := format.FromFloat64(src[i]); encN[i] != w {
				t.Fatalf("%v FromFloat64N[%d]: %#x != %#x (value %v)", format, i, encN[i], w, src[i])
			}
		}
	})
}

// TestBatchScalarEquivalenceSweep is the deterministic (non-fuzz) slice
// of the same property, so plain `go test` exercises every format and
// every edge value without the fuzz engine.
func TestBatchScalarEquivalenceSweep(t *testing.T) {
	for _, format := range AllFormats {
		m := NewMachine(format)
		ref := scalarOnly{inner: m}
		edges := batchEdgeValues(format)
		// Operand slices cycling through every edge pair, lengths 0..17.
		for n := 0; n <= 17; n++ {
			a := make([]Bits, n)
			b := make([]Bits, n)
			c := make([]Bits, n)
			for i := 0; i < n; i++ {
				a[i] = edges[i%len(edges)]
				b[i] = edges[(i*5+3)%len(edges)]
				c[i] = edges[(i*7+1)%len(edges)]
			}
			for _, acc := range edges {
				if got, want := DotFMA(m, acc, a, b), DotFMA(ref, acc, a, b); got != want {
					t.Fatalf("%v DotFMA n=%d acc=%#x: batch %#x != scalar %#x", format, n, acc, got, want)
				}
			}
			got := make([]Bits, n)
			want := make([]Bits, n)
			AddN(m, got, a, b)
			AddN(ref, want, a, b)
			MulN(m, append([]Bits(nil), got...), a, b) // exercise aliasing-free path
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v AddN n=%d i=%d: %#x != %#x", format, n, i, got[i], want[i])
				}
			}
			MulN(m, got, a, b)
			MulN(ref, want, a, b)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v MulN n=%d i=%d: %#x != %#x", format, n, i, got[i], want[i])
				}
			}
			FMAN(m, got, a, b, c)
			FMAN(ref, want, a, b, c)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v FMAN n=%d i=%d: %#x != %#x", format, n, i, got[i], want[i])
				}
			}
			for _, s := range edges {
				copy(got, c)
				copy(want, c)
				AXPY(m, got, s, a)
				AXPY(ref, want, s, a)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v AXPY n=%d s=%#x i=%d: %#x != %#x", format, n, s, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBlockGridScalarEquivalence is the deterministic sweep for the two
// shaped batch operations: every format, chain counts straddling the
// interleave widths (8 for Single/Double, 4 for the 16-bit formats),
// degenerate shapes (empty chains, single chains, k = 0), and strides
// larger than the chain length.
func TestBlockGridScalarEquivalence(t *testing.T) {
	for _, format := range AllFormats {
		m := NewMachine(format)
		ref := scalarOnly{inner: m}
		edges := batchEdgeValues(format)
		mk := func(n, salt int) []Bits {
			out := make([]Bits, n)
			for i := range out {
				out[i] = edges[(i*3+salt)%len(edges)]
			}
			return out
		}
		for _, count := range []int{0, 1, 3, 7, 8, 9, 16, 17} {
			for _, L := range []int{0, 1, 4, 7} {
				for _, stride := range []int{L, L + 2} {
					u := mk(L, 1)
					v := mk(count*stride+L, 2)
					acc := edges[(count+L)%len(edges)]
					got := make([]Bits, count)
					want := make([]Bits, count)
					DotFMABlock(m, got, acc, u, v, stride)
					DotFMABlock(ref, want, acc, u, v, stride)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v DotFMABlock count=%d L=%d stride=%d i=%d: %#x != %#x",
								format, count, L, stride, i, got[i], want[i])
						}
					}
				}
			}
		}
		for _, shape := range [][2]int{{1, 1}, {1, 9}, {3, 5}, {2, 9}, {5, 5}, {9, 1}} {
			rows, cols := shape[0], shape[1]
			for _, k := range []int{0, 1, 4, 7} {
				for _, withAccs := range []bool{false, true} {
					a := mk(rows*k, 3)
					bt := mk(cols*k, 4)
					var accs []Bits
					if withAccs {
						accs = mk(rows, 5)
					}
					got := make([]Bits, rows*cols)
					want := make([]Bits, rows*cols)
					GemmFMA(m, got, accs, a, bt, rows, cols, k)
					GemmFMA(ref, want, accs, a, bt, rows, cols, k)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v GemmFMA %dx%d k=%d accs=%v i=%d: %#x != %#x",
								format, rows, cols, k, withAccs, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestCountingBatchCountsMatchScalar checks that a Counting wrapper
// driven through the batch helpers reports OpCounts identical to the
// same operations issued scalar-by-scalar — whatever environment sits
// below it.
func TestCountingBatchCountsMatchScalar(t *testing.T) {
	for _, format := range AllFormats {
		edges := batchEdgeValues(format)
		n := 13
		a := make([]Bits, n)
		b := make([]Bits, n)
		c := make([]Bits, n)
		for i := 0; i < n; i++ {
			a[i] = edges[i%len(edges)]
			b[i] = edges[(i+4)%len(edges)]
			c[i] = edges[(i+8)%len(edges)]
		}
		run := func(env Env) {
			dst := make([]Bits, n)
			_ = DotFMA(env, 0, a, b)
			AddN(env, dst, a, b)
			MulN(env, dst, a, b)
			FMAN(env, dst, a, b, c)
			copy(dst, c)
			AXPY(env, dst, a[0], b)
			blk := make([]Bits, 4)
			DotFMABlock(env, blk, 0, a[:3], b, 3) // 4 chains x 3 FMAs
			g := make([]Bits, 6)
			GemmFMA(env, g, c[:2], a[:6], b[:9], 2, 3, 3) // 2x3 chains x 3 FMAs
			_ = env.Sqrt(a[0]) // scalar op: tallied identically either way
		}

		batch := NewCounting(NewMachine(format))
		run(batch)
		scalar := NewCounting(scalarOnly{inner: NewMachine(format)})
		run(scalar)
		// One-by-one reference: hiding the Counting wrapper's own batch
		// methods forces the helpers onto full scalar decomposition, so
		// every operation is tallied individually.
		perOp := NewCounting(NewMachine(format))
		run(scalarOnly{inner: perOp})

		if batch.Counts != scalar.Counts {
			t.Fatalf("%v: batch counts %+v != scalar counts %+v", format, batch.Counts, scalar.Counts)
		}
		if batch.Counts != perOp.Counts {
			t.Fatalf("%v: batch counts %+v != per-op counts %+v", format, batch.Counts, perOp.Counts)
		}
		if got, want := batch.Counts.ByOp[OpFMA], uint64(3*n+12+18); got != want {
			t.Fatalf("%v: FMA count %d, want %d", format, got, want)
		}
		if got, want := batch.Counts.ByOp[OpAdd], uint64(n); got != want {
			t.Fatalf("%v: Add count %d, want %d", format, got, want)
		}
	}
}

// TestBatchHelpersFallBack checks that the helpers decompose into scalar
// Env calls — in order — when the environment has no batch methods, so
// instrumenting wrappers keep seeing every operation.
func TestBatchHelpersFallBack(t *testing.T) {
	rec := &opRecorder{inner: NewMachine(Half)}
	a := []Bits{1, 2, 3}
	b := []Bits{4, 5, 6}
	dst := make([]Bits, 3)
	_ = DotFMA(rec, 0, a, b)
	AddN(rec, dst, a, b)
	AXPY(rec, dst, 7, a)
	want := []Op{OpFMA, OpFMA, OpFMA, OpAdd, OpAdd, OpAdd, OpFMA, OpFMA, OpFMA}
	if len(rec.ops) != len(want) {
		t.Fatalf("recorded %d ops, want %d", len(rec.ops), len(want))
	}
	for i, op := range want {
		if rec.ops[i] != op {
			t.Fatalf("op %d = %v, want %v", i, rec.ops[i], op)
		}
	}
}

// TestExpDecompBatchDelegation checks that an ExpDecomp above a machine
// produces bit-identical batch results to its own scalar decomposition.
func TestExpDecompBatchDelegation(t *testing.T) {
	for _, format := range AllFormats {
		d := NewExpDecomp(NewMachine(format), 6, 2)
		ref := scalarOnly{inner: d}
		edges := batchEdgeValues(format)
		n := len(edges)
		a := make([]Bits, n)
		b := make([]Bits, n)
		for i := 0; i < n; i++ {
			a[i] = edges[i]
			b[i] = edges[(i+3)%n]
		}
		if got, want := DotFMA(d, 0, a, b), DotFMA(ref, 0, a, b); got != want {
			t.Fatalf("%v: ExpDecomp DotFMA %#x != scalar %#x", format, got, want)
		}
	}
}

// opRecorder records the kind of every scalar operation it sees. It has
// no batch methods on purpose.
type opRecorder struct {
	inner Env
	ops   []Op
}

func (r *opRecorder) Format() Format        { return r.inner.Format() }
func (r *opRecorder) Add(a, b Bits) Bits    { r.ops = append(r.ops, OpAdd); return r.inner.Add(a, b) }
func (r *opRecorder) Sub(a, b Bits) Bits    { r.ops = append(r.ops, OpSub); return r.inner.Sub(a, b) }
func (r *opRecorder) Mul(a, b Bits) Bits    { r.ops = append(r.ops, OpMul); return r.inner.Mul(a, b) }
func (r *opRecorder) Div(a, b Bits) Bits    { r.ops = append(r.ops, OpDiv); return r.inner.Div(a, b) }
func (r *opRecorder) FMA(a, b, c Bits) Bits { r.ops = append(r.ops, OpFMA); return r.inner.FMA(a, b, c) }
func (r *opRecorder) Sqrt(a Bits) Bits      { r.ops = append(r.ops, OpSqrt); return r.inner.Sqrt(a) }
func (r *opRecorder) Exp(a Bits) Bits       { r.ops = append(r.ops, OpExp); return r.inner.Exp(a) }
func (r *opRecorder) FromFloat64(v float64) Bits { return r.inner.FromFloat64(v) }
func (r *opRecorder) ToFloat64(b Bits) float64   { return r.inner.ToFloat64(b) }

// BenchmarkDotFMABatch measures the Machine fast path against the
// decomposed scalar chain for a GEMM-row-sized dot product.
func BenchmarkDotFMABatch(b *testing.B) {
	for _, format := range []Format{Half, Single, Double} {
		m := NewMachine(format)
		n := 256
		xs := make([]Bits, n)
		ys := make([]Bits, n)
		for i := range xs {
			xs[i] = format.FromFloat64(0.5 + float64(i%17)/37)
			ys[i] = format.FromFloat64(0.5 + float64(i%13)/29)
		}
		b.Run("batch/"+format.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = DotFMA(m, 0, xs, ys)
			}
		})
		b.Run("scalar/"+format.String(), func(b *testing.B) {
			ref := scalarOnly{inner: m}
			for i := 0; i < b.N; i++ {
				_ = DotFMA(ref, 0, xs, ys)
			}
		})
	}
}
