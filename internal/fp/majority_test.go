package fp

import "testing"

func TestMajority(t *testing.T) {
	cases := []struct {
		a, b, c, want Bits
	}{
		{0, 0, 0, 0},
		{0xffff, 0xffff, 0xffff, 0xffff},
		// One corrupted replica is outvoted regardless of position.
		{0xffff, 0xffff, 0x0000, 0xffff},
		{0xffff, 0x0000, 0xffff, 0xffff},
		{0x0000, 0xffff, 0xffff, 0xffff},
		// Per-bit: 0b110, 0b101, 0b011 -> every bit has exactly two
		// votes set.
		{0b110, 0b101, 0b011, 0b111},
		// Disjoint single-replica bits all lose the vote.
		{0b100, 0b010, 0b001, 0b000},
	}
	for _, tc := range cases {
		if got := Majority(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("Majority(%#x, %#x, %#x) = %#x, want %#x", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestMajorityMatchesPerBitVote(t *testing.T) {
	r := uint64(0x9e3779b97f4a7c15)
	next := func() Bits {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return Bits(r)
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := next(), next(), next()
		var want Bits
		for i := 0; i < 64; i++ {
			votes := a>>uint(i)&1 + b>>uint(i)&1 + c>>uint(i)&1
			if votes >= 2 {
				want |= 1 << uint(i)
			}
		}
		if got := Majority(a, b, c); got != want {
			t.Fatalf("Majority(%#x, %#x, %#x) = %#x, want %#x", a, b, c, got, want)
		}
	}
}
