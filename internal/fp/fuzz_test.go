package fp

import (
	"math"
	"testing"
)

// Fuzz targets for the format conversion machinery. `go test` runs the
// seed corpus; `go test -fuzz=FuzzHalfRoundTrip ./internal/fp` explores
// further.

func FuzzHalfRoundTrip(f *testing.F) {
	for _, seed := range []uint16{0, 1, 0x3c00, 0x7bff, 0x7c00, 0x7e01, 0x8000, 0xfc00} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h uint16) {
		v := halfToFloat64(h)
		back := halfFromFloat64(v)
		want := h
		if isNaN16(h) {
			want = h&0x8000 | 0x7e00
		}
		if back != want {
			t.Fatalf("%#04x -> %v -> %#04x", h, v, back)
		}
	})
}

func FuzzBFloatRoundTrip(f *testing.F) {
	for _, seed := range []uint16{0, 1, 0x3f80, 0x7f7f, 0x7f80, 0x7fc1, 0x8000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h uint16) {
		v := bfloatToFloat64(h)
		back := bfloatFromFloat64(v)
		want := h
		if isNaNBF(h) {
			want = h&0x8000 | 0x7fc0
		}
		if back != want {
			t.Fatalf("%#04x -> %v -> %#04x", h, v, back)
		}
	})
}

func FuzzSoft16AgreesWithMachine(f *testing.F) {
	f.Add(uint16(0x3c00), uint16(0x3c00))
	f.Add(uint16(0x0001), uint16(0x83ff))
	f.Add(uint16(0x7bff), uint16(0x7bff))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		m := NewMachine(Half)
		ga, wa := softAdd16(a, b), uint16(m.Add(Bits(a), Bits(b)))
		if !(isNaN16(ga) && isNaN16(wa)) && ga != wa {
			t.Fatalf("add(%#04x,%#04x): %#04x vs %#04x", a, b, ga, wa)
		}
		gm, wm := softMul16(a, b), uint16(m.Mul(Bits(a), Bits(b)))
		if !(isNaN16(gm) && isNaN16(wm)) && gm != wm {
			t.Fatalf("mul(%#04x,%#04x): %#04x vs %#04x", a, b, gm, wm)
		}
	})
}

func FuzzHalfEncodeNearest(f *testing.F) {
	f.Add(1.0)
	f.Add(-65504.0)
	f.Add(6.1e-5)
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) {
			return
		}
		b := halfFromFloat64(v)
		got := halfToFloat64(b)
		if math.IsInf(got, 0) || got == 0 {
			return // saturated or underflowed: nearest-check needs neighbors
		}
		// No representable value may be strictly closer than the chosen one.
		for _, nb := range []uint16{b + 1, b - 1} {
			if isNaN16(nb) || isInf16(nb) {
				continue
			}
			if (nb^b)&0x8000 != 0 {
				continue // crossed the sign boundary
			}
			nv := halfToFloat64(nb)
			if math.Abs(nv-v) < math.Abs(got-v) {
				t.Fatalf("%v rounds to %v but %v is closer", v, got, nv)
			}
		}
	})
}
