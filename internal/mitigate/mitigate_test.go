package mitigate

import (
	"testing"

	"mixedrel/internal/fp"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
)

func TestTMRFaultFreeMatchesInner(t *testing.T) {
	g := kernels.NewGEMM(8, 1)
	tmr := NewTMR(g)
	for _, f := range fp.Formats {
		want := kernels.Golden(g, f)
		got := kernels.Golden(tmr, f)
		if len(got) != len(want) {
			t.Fatalf("%v: length %d vs %d", f, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: TMR changed fault-free output at %d", f, i)
			}
		}
	}
}

func TestTMROutvotesSingleReplicaFault(t *testing.T) {
	g := kernels.NewGEMM(6, 2)
	tmr := NewTMR(g)
	f := fp.Single
	golden := kernels.Decode(f, kernels.Golden(tmr, f))
	innerOps := kernels.Profile(g, f).Total()
	// Strike an operation in the second replica: the vote must fix it.
	fault := inject.OpFault{AnyKind: true, Index: innerOps + 7,
		Bit: f.MantBits() - 1, Target: inject.TargetResult}
	res := inject.Run(tmr, f, golden, &fault, nil, false)
	if !res.FaultApplied {
		t.Fatal("fault did not fire")
	}
	if res.Outcome != inject.Masked {
		t.Errorf("TMR failed to outvote a single-replica fault: %v (rel %g)",
			res.Outcome, res.MaxRelErr)
	}
}

func TestTMRCannotFixInputFault(t *testing.T) {
	g := kernels.NewGEMM(6, 2)
	tmr := NewTMR(g)
	f := fp.Single
	golden := kernels.Decode(f, kernels.Golden(tmr, f))
	mf := inject.MemFault{Array: 0, Elem: 0, Bit: f.MantBits() - 1}
	res := inject.Run(tmr, f, golden, nil, []inject.MemFault{mf}, false)
	if res.Outcome != inject.SDC {
		t.Error("common-mode input corruption must defeat TMR")
	}
}

func TestTMRName(t *testing.T) {
	if NewTMR(kernels.NewGEMM(4, 1)).Name() != "MxM+TMR" {
		t.Error("TMR name wrong")
	}
}

func TestABFTCleanRun(t *testing.T) {
	g := kernels.NewGEMM(8, 3)
	a := NewABFTGEMM(g)
	for _, f := range fp.Formats {
		out := kernels.Decode(f, kernels.Golden(a, f))
		if len(out) != 8*8+1 {
			t.Fatalf("%v: output length %d", f, len(out))
		}
		if a.StatusOf(out) != ABFTClean {
			t.Errorf("%v: clean run flagged as %v", f, a.StatusOf(out))
		}
		// Data region must equal the plain GEMM result.
		want := kernels.Decode(f, kernels.Golden(g, f))
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%v: ABFT changed fault-free data at %d", f, i)
			}
		}
	}
}

func TestABFTCorrectsSingleElementFault(t *testing.T) {
	g := kernels.NewGEMM(8, 3)
	a := NewABFTGEMM(g)
	f := fp.Double
	goldenData := kernels.Decode(f, kernels.Golden(g, f))
	goldenMit := kernels.Decode(f, kernels.Golden(a, f))
	// Corrupt the final FMA of one C element (a high bit so it is well
	// above the checksum tolerance).
	gemmOps := kernels.Profile(g, f).Total()
	fault := inject.OpFault{AnyKind: true, Index: gemmOps - 5,
		Bit: 51, Target: inject.TargetResult}
	res := inject.Run(a, f, goldenMit, &fault, nil, true)
	if !res.FaultApplied {
		t.Fatal("fault did not fire")
	}
	if a.StatusOf(res.Output) != ABFTCorrected {
		t.Fatalf("status %v, want corrected", a.StatusOf(res.Output))
	}
	for i := range goldenData {
		if res.Output[i] != goldenData[i] {
			t.Fatalf("corrected data still wrong at %d: %v vs %v",
				i, res.Output[i], goldenData[i])
		}
	}
}

func TestABFTDetectsPersistentRowFault(t *testing.T) {
	g := kernels.NewGEMM(8, 3)
	a := NewABFTGEMM(g)
	f := fp.Double
	goldenMit := kernels.Decode(f, kernels.Golden(a, f))
	// A persistent fault corrupting every 8th FMA smears errors across
	// many elements: uncorrectable, but must be *detected*.
	fault := inject.OpFault{Kind: fp.OpFMA, Index: 3, Modulo: 8,
		Bit: 50, Target: inject.TargetResult}
	res := inject.Run(a, f, goldenMit, &fault, nil, true)
	if !res.FaultApplied {
		t.Fatal("fault did not fire")
	}
	if st := a.StatusOf(res.Output); st != ABFTDetected && st != ABFTCorrected {
		t.Errorf("multi-element corruption not flagged: status %v", st)
	}
}

func TestABFTToleratesLowPrecisionRounding(t *testing.T) {
	// In half precision the checksum comparison must not false-alarm on
	// summation-order rounding.
	a := NewABFTGEMM(kernels.NewGEMM(12, 5))
	out := kernels.Decode(fp.Half, kernels.Golden(a, fp.Half))
	if a.StatusOf(out) != ABFTClean {
		t.Errorf("half-precision clean run flagged as %v", a.StatusOf(out))
	}
}

func TestEvaluateTMRReducesPVF(t *testing.T) {
	g := kernels.NewGEMM(10, 7)
	f := fp.Single
	base, err := Evaluate(g, g, f, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	tmr, err := Evaluate(NewTMR(g), g, f, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(tmr.ResidualPVF < base.ResidualPVF*0.75) {
		t.Errorf("TMR residual PVF %v not well below baseline %v",
			tmr.ResidualPVF, base.ResidualPVF)
	}
	if tmr.OverheadOps < 2.9 || tmr.OverheadOps > 3.1 {
		t.Errorf("TMR overhead %v, want ~3x", tmr.OverheadOps)
	}
}

func TestEvaluateABFTReducesPVFCheaply(t *testing.T) {
	g := kernels.NewGEMM(10, 7)
	f := fp.Double
	base, err := Evaluate(g, g, f, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	abft, err := Evaluate(NewABFTGEMM(g), g, f, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(abft.ResidualPVF < base.ResidualPVF*0.75) {
		t.Errorf("ABFT residual PVF %v not well below baseline %v",
			abft.ResidualPVF, base.ResidualPVF)
	}
	if abft.OverheadOps > 2 {
		t.Errorf("ABFT overhead %v, should be far below TMR's 3x", abft.OverheadOps)
	}
	if abft.Corrected == 0 {
		t.Error("ABFT corrected nothing in 300 faults")
	}
}

func TestEvaluateCountsConsistent(t *testing.T) {
	g := kernels.NewGEMM(8, 9)
	rep, err := Evaluate(NewABFTGEMM(g), g, fp.Single, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean+rep.Corrected+rep.Detected+rep.SDC != rep.Faults {
		t.Errorf("outcome counts do not sum: %+v", rep)
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := kernels.NewGEMM(4, 1)
	if _, err := Evaluate(g, g, fp.Single, 0, 1); err == nil {
		t.Error("zero faults accepted")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeClean: "clean", OutcomeCorrected: "corrected",
		OutcomeDetected: "detected", OutcomeSDC: "SDC",
	} {
		if o.String() != want {
			t.Errorf("%d -> %q", o, o.String())
		}
	}
	if Outcome(9).String() != "outcome?" {
		t.Error("unknown outcome")
	}
}
