// Package mitigate implements and evaluates the two classic soft-error
// mitigations the paper's research line applies to accelerators (cf. its
// reference [5], "Evaluation and mitigation of radiation-induced soft
// errors in GPUs"):
//
//   - TMR: triple modular redundancy — run the kernel three times and
//     take the bitwise majority of each output word. Corrects any fault
//     confined to one replica at ~3x compute cost; cannot correct
//     common-mode corruption of the shared inputs (memory faults).
//   - ABFT: algorithm-based fault tolerance for GEMM (Huang & Abraham
//     checksums) — maintain row/column checksums of C computed
//     independently from A and B, locate a single corrupted element at
//     the intersection of the mismatching row and column, and correct
//     it from the checksum. Costs O(n^2) extra work on an O(n^3)
//     kernel.
//
// Both mitigations are ordinary Kernels, so every campaign in the
// library (beam, injection, TRE, MEBF) runs on mitigated workloads
// unchanged. Evaluate classifies outcomes into corrected / detected /
// silent, quantifying the FIT reduction each scheme buys per unit of
// overhead.
package mitigate

import (
	"fmt"
	"math"

	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
	"mixedrel/internal/rng"
)

// TMR wraps any kernel with triple modular redundancy and bitwise
// majority voting. A transient fault striking one of the three
// executions is outvoted; faults in the shared inputs hit all replicas
// and pass through.
type TMR struct {
	Inner kernels.Kernel
}

// NewTMR wraps inner in triple modular redundancy.
func NewTMR(inner kernels.Kernel) *TMR { return &TMR{Inner: inner} }

// Name implements Kernel.
func (t *TMR) Name() string { return t.Inner.Name() + "+TMR" }

// Key implements Kernel: derived from the inner kernel's key, so an
// unkeyed inner kernel opts the TMR wrapper out of caching too.
func (t *TMR) Key() string {
	if k := t.Inner.Key(); k != "" {
		return "tmr(" + k + ")"
	}
	return ""
}

// Inputs implements Kernel: the replicas share one input image, exactly
// like a TMR'd kernel sharing device memory.
func (t *TMR) Inputs(f fp.Format) [][]fp.Bits { return t.Inner.Inputs(f) }

// Run implements Kernel: three executions, bitwise majority.
func (t *TMR) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	a := t.Inner.Run(env, in)
	b := t.Inner.Run(env, in)
	c := t.Inner.Run(env, in)
	out := make([]fp.Bits, len(a))
	for i := range out {
		out[i] = fp.Majority(a[i], b[i], c[i])
	}
	return out
}

// ABFTGEMM wraps a GEMM with Huang–Abraham checksum protection:
// detection and single-element correction of errors in C. The output is
// the (corrected) n x n product followed by one status word (see
// ABFTStatus).
type ABFTGEMM struct {
	G *kernels.GEMM
	// TolUlps is the checksum comparison tolerance in units of
	// n * MachineEpsilon * |checksum| (different summation orders of
	// the same values differ by rounding). Zero means 8.
	TolUlps float64
}

// ABFTStatus is the trailing status word of an ABFTGEMM output.
type ABFTStatus int

const (
	// ABFTClean: checksums verified, no error found.
	ABFTClean ABFTStatus = iota
	// ABFTCorrected: a single element mismatch was located and fixed.
	ABFTCorrected
	// ABFTDetected: checksums mismatch in a pattern the scheme cannot
	// correct (multiple rows/columns) — a detected, uncorrected error.
	ABFTDetected
)

// NewABFTGEMM wraps g with checksum protection.
func NewABFTGEMM(g *kernels.GEMM) *ABFTGEMM { return &ABFTGEMM{G: g} }

// Name implements Kernel.
func (a *ABFTGEMM) Name() string { return a.G.Name() + "+ABFT" }

// Key implements Kernel: the tolerance changes Run's output (the status
// word), so it is part of the identity.
func (a *ABFTGEMM) Key() string {
	if k := a.G.Key(); k != "" {
		return fmt.Sprintf("abft(%s)/tol%g", k, a.TolUlps)
	}
	return ""
}

// Inputs implements Kernel.
func (a *ABFTGEMM) Inputs(f fp.Format) [][]fp.Bits { return a.G.Inputs(f) }

// StatusOf extracts the status word from a decoded ABFTGEMM output.
func (a *ABFTGEMM) StatusOf(out []float64) ABFTStatus {
	return ABFTStatus(int(out[len(out)-1]))
}

// Run implements Kernel: multiply, verify checksums, correct or flag.
func (a *ABFTGEMM) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	n := a.G.N()
	c := a.G.Run(env, in)
	aM, bM := in[0], in[1]

	// Independent checksums: u = A (B 1), v = (1^T A) B.
	zero := env.FromFloat64(0)
	bRow := make([]fp.Bits, n) // B * ones: per-row sums of B
	for j := 0; j < n; j++ {
		s := zero
		for k := 0; k < n; k++ {
			s = env.Add(s, bM[j*n+k])
		}
		bRow[j] = s
	}
	u := make([]fp.Bits, n)
	for i := 0; i < n; i++ {
		s := zero
		for k := 0; k < n; k++ {
			s = env.FMA(aM[i*n+k], bRow[k], s)
		}
		u[i] = s
	}
	aCol := make([]fp.Bits, n) // ones^T * A: per-column sums of A
	for k := 0; k < n; k++ {
		s := zero
		for i := 0; i < n; i++ {
			s = env.Add(s, aM[i*n+k])
		}
		aCol[k] = s
	}
	v := make([]fp.Bits, n)
	for j := 0; j < n; j++ {
		s := zero
		for k := 0; k < n; k++ {
			s = env.FMA(aCol[k], bM[k*n+j], s)
		}
		v[j] = s
	}

	// Compare against row/column sums of C with a rounding-aware
	// tolerance.
	tolUlps := a.TolUlps
	if tolUlps <= 0 {
		tolUlps = 8
	}
	f := env.Format()
	eps := f.MachineEpsilon()
	badRows, badCols := []int{}, []int{}
	for i := 0; i < n; i++ {
		s := zero
		for j := 0; j < n; j++ {
			s = env.Add(s, c[i*n+j])
		}
		want := f.ToFloat64(u[i])
		got := f.ToFloat64(s)
		tol := tolUlps * float64(n) * eps * (1 + math.Abs(want))
		if math.IsNaN(got) || math.Abs(got-want) > tol {
			badRows = append(badRows, i)

		}
	}
	for j := 0; j < n; j++ {
		s := zero
		for i := 0; i < n; i++ {
			s = env.Add(s, c[i*n+j])
		}
		want := f.ToFloat64(v[j])
		got := f.ToFloat64(s)
		tol := tolUlps * float64(n) * eps * (1 + math.Abs(want))
		if math.IsNaN(got) || math.Abs(got-want) > tol {
			badCols = append(badCols, j)
		}
	}

	status := ABFTClean
	switch {
	case len(badRows) == 0 && len(badCols) == 0:
		// Clean.
	case len(badRows) == 1 && len(badCols) == 1:
		// Single-element error located at the intersection. Recompute
		// just that element (the standard recovery: checksum-based
		// reconstruction carries summation rounding, recomputation is
		// exact), O(n) work.
		r, cc := badRows[0], badCols[0]
		s := zero
		for k := 0; k < n; k++ {
			s = env.FMA(aM[r*n+k], bM[k*n+cc], s)
		}
		c[r*n+cc] = s
		status = ABFTCorrected
	default:
		status = ABFTDetected
	}

	out := make([]fp.Bits, 0, n*n+1)
	out = append(out, c...)
	out = append(out, env.FromFloat64(float64(status)))
	return out
}

// Outcome classifies one faulty execution of a mitigated kernel against
// the unmitigated golden product.
type Outcome int

const (
	// OutcomeClean: output matches golden (fault masked or corrected
	// silently by voting).
	OutcomeClean Outcome = iota
	// OutcomeCorrected: output matches golden and the scheme reported a
	// correction.
	OutcomeCorrected
	// OutcomeDetected: output wrong but the scheme flagged it (a DUE in
	// system terms — the run can be retried).
	OutcomeDetected
	// OutcomeSDC: output wrong and unflagged — a true silent data
	// corruption surviving the mitigation.
	OutcomeSDC
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDetected:
		return "detected"
	case OutcomeSDC:
		return "SDC"
	}
	return "outcome?"
}

// Report summarizes a mitigation evaluation campaign.
type Report struct {
	Faults                          int
	Clean, Corrected, Detected, SDC int
	// ResidualPVF is P(silent corruption | fault) with the mitigation
	// in place.
	ResidualPVF float64
	// OverheadOps is the mitigated/unmitigated dynamic operation ratio.
	OverheadOps float64
}

// Evaluate injects faults (uniformly over operation, operand and memory
// sites) into a mitigated GEMM and classifies every outcome. baseline
// must be the unprotected kernel the mitigation wraps; its golden output
// defines correctness of the data region.
func Evaluate(mitigated, baseline kernels.Kernel, f fp.Format, faults int, seed uint64) (*Report, error) {
	if faults <= 0 {
		return nil, fmt.Errorf("mitigate: %d faults", faults)
	}
	runner := inject.NewRunner(mitigated, f, "", nil)
	goldenBase := exec.Artifact(baseline, f, "", nil).Golden()
	goldenMit := runner.Golden()
	if len(goldenMit) < len(goldenBase) {
		return nil, fmt.Errorf("mitigate: mitigated output shorter than baseline")
	}
	abft, isABFT := mitigated.(*ABFTGEMM)

	counts := runner.Counts()
	baseCounts := exec.Artifact(baseline, f, "", nil).Counts
	arrayLens := runner.ArrayLens()

	r := rng.New(seed)
	rep := &Report{
		Faults:      faults,
		OverheadOps: float64(counts.Total()) / float64(baseCounts.Total()),
	}
	for i := 0; i < faults; i++ {
		var rr inject.RunResult
		switch r.Intn(3) {
		case 0:
			fl := inject.SampleOpFault(r, counts, f, 0, true, inject.TargetResult)
			rr = runner.Run(&fl, nil, true)
		case 1:
			fl := inject.SampleOpFault(r, counts, f, 0, true, inject.TargetOperand)
			rr = runner.Run(&fl, nil, true)
		default:
			mf := inject.SampleMemFault(r, arrayLens, f)
			rr = runner.Run(nil, []inject.MemFault{mf}, true)
		}

		// Correctness is judged on the data region only (memory faults
		// legitimately change the correct answer for both mitigated and
		// unmitigated runs identically, so bit-compare to the mitigated
		// golden's data region).
		dataOK := true
		for j := range goldenBase {
			if rr.Output[j] != goldenMit[j] {
				dataOK = false
				break
			}
		}
		status := ABFTClean
		if isABFT {
			status = abft.StatusOf(rr.Output)
		}
		switch {
		case dataOK && status == ABFTCorrected:
			rep.Corrected++
		case dataOK:
			rep.Clean++
		case status != ABFTClean:
			rep.Detected++
		default:
			rep.SDC++
		}
	}
	rep.ResidualPVF = float64(rep.SDC) / float64(rep.Faults)
	return rep, nil
}
