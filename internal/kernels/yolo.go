package kernels

import (
	"fmt"
	"math"
	"sort"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// YOLO is the paper's object-detection workload, rebuilt at laptop scale:
// a YOLO-style fully convolutional detector with a leaky-ReLU backbone
// and a grid detection head. Topology:
//
//	input 1x32x32 (synthetic scene with geometric objects)
//	conv 3x3, 8  -> 8x30x30, leaky ReLU, maxpool -> 8x15x15
//	conv 3x3, 16 -> 16x13x13, leaky ReLU, maxpool -> 16x6x6
//	conv 3x3, 8  -> 8x4x4 detection head
//
// Head channels per grid cell: [objectness, x, y, w, h, class0..class2]
// decoded exactly like YOLO (sigmoid on objectness and offsets, class =
// argmax). The weights are deterministic random projections: the paper
// does not retrain per precision and its criticality metric — "did the
// fault change the detections relative to the fault-free run of the SAME
// precision" — is meaningful for any fixed network, trained or not (see
// DESIGN.md for the substitution note). The objectness threshold is
// calibrated per instance so the golden run yields a handful of
// detections.
type YOLO struct {
	conv1, conv2, conv3 *convLayer
	image               []float64
	threshold           float64
	numClasses          int
	key                 string
}

// YOLOGrid is the detection-head edge length (grid is YOLOGrid^2 cells).
const YOLOGrid = 4

// yoloHeadChannels is objectness + 4 box coords + 3 classes.
const yoloHeadChannels = 8

// YOLOInputSize is the square input image edge length.
const YOLOInputSize = 32

// NewYOLO builds the detector and renders a deterministic input scene.
func NewYOLO(seed uint64) *YOLO {
	r := rng.New(seed)
	y := &YOLO{
		conv1:      newConvLayer(1, 8, 3, r),
		conv2:      newConvLayer(8, 16, 3, r),
		conv3:      newConvLayer(16, yoloHeadChannels, 3, r),
		numClasses: 3,
	}
	y.image = renderScene(r)

	// Calibrate the objectness threshold on the double-precision golden
	// head so the clean run reports about a quarter of the cells.
	head := Decode(fp.Double, y.Run(fp.NewMachine(fp.Double), y.Inputs(fp.Double)))
	scores := make([]float64, 0, YOLOGrid*YOLOGrid)
	for cell := 0; cell < YOLOGrid*YOLOGrid; cell++ {
		scores = append(scores, sigmoid64(head[cell])) // channel 0 = objectness
	}
	sort.Float64s(scores)
	// Keep the top 4 cells, with the threshold midway between the 4th
	// and 5th scores so that clean-run rounding differences between
	// precisions cannot flip a borderline detection.
	y.threshold = (scores[len(scores)-5] + scores[len(scores)-4]) / 2
	y.key = fmt.Sprintf("yolo/s%d", seed)
	return y
}

// Key implements Kernel.
func (y *YOLO) Key() string { return y.key }

// renderScene draws up to three geometric objects on a 32x32 canvas.
func renderScene(r *rng.Rand) []float64 {
	img := make([]float64, YOLOInputSize*YOLOInputSize)
	put := func(x, y int, v float64) {
		if x >= 0 && x < YOLOInputSize && y >= 0 && y < YOLOInputSize {
			img[y*YOLOInputSize+x] = v
		}
	}
	for obj := 0; obj < 3; obj++ {
		cx, cy := 4+r.Intn(24), 4+r.Intn(24)
		sz := 3 + r.Intn(4)
		shade := 0.5 + 0.5*r.Float64()
		switch r.Intn(3) {
		case 0: // filled square
			for dy := -sz; dy <= sz; dy++ {
				for dx := -sz; dx <= sz; dx++ {
					put(cx+dx, cy+dy, shade)
				}
			}
		case 1: // filled circle
			for dy := -sz; dy <= sz; dy++ {
				for dx := -sz; dx <= sz; dx++ {
					if dx*dx+dy*dy <= sz*sz {
						put(cx+dx, cy+dy, shade)
					}
				}
			}
		default: // filled triangle
			for dy := 0; dy <= sz*2; dy++ {
				half := dy / 2
				for dx := -half; dx <= half; dx++ {
					put(cx+dx, cy-sz+dy, shade)
				}
			}
		}
	}
	for i := range img {
		img[i] += 0.02 * r.Float64()
	}
	return img
}

// Name implements Kernel.
func (y *YOLO) Name() string { return "YOLOv3" }

// Inputs implements Kernel: the scene plus all network parameters, so
// memory faults cover weights the way CAROL-FI's variable flips do.
func (y *YOLO) Inputs(f fp.Format) [][]fp.Bits {
	w1, b1 := y.conv1.encodeParams(f)
	w2, b2 := y.conv2.encodeParams(f)
	w3, b3 := y.conv3.encodeParams(f)
	return [][]fp.Bits{encode(f, y.image), w1, b1, w2, b2, w3, b3}
}

// Run implements Kernel: the output is the raw detection head,
// channel-major (8 x 4 x 4 = 128 values). Decoding to boxes happens in
// Detections, mirroring YOLO's host-side post-processing.
func (y *YOLO) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	img, w1, b1, w2, b2, w3, b3 := in[0], in[1], in[2], in[3], in[4], in[5], in[6]
	t := tensor{c: 1, h: YOLOInputSize, w: YOLOInputSize, data: img}
	x := y.conv1.forward(env, t, w1, b1)
	leakyReLUT(env, x)
	x = maxPool2(env, x)
	x = y.conv2.forward(env, x, w2, b2)
	leakyReLUT(env, x)
	x = maxPool2(env, x)
	x = y.conv3.forward(env, x, w3, b3)
	return x.data
}

// Detection is one decoded object: box center/size normalized to [0,1],
// objectness score, and class index.
type Detection struct {
	X, Y, W, H float64
	Score      float64
	Class      int
}

// iou returns the intersection-over-union of two detections' boxes.
func iou(a, b Detection) float64 {
	ax0, ax1 := a.X-a.W/2, a.X+a.W/2
	ay0, ay1 := a.Y-a.H/2, a.Y+a.H/2
	bx0, bx1 := b.X-b.W/2, b.X+b.W/2
	by0, by1 := b.Y-b.H/2, b.Y+b.H/2
	ix := math.Max(0, math.Min(ax1, bx1)-math.Max(ax0, bx0))
	iy := math.Max(0, math.Min(ay1, by1)-math.Max(ay0, by0))
	inter := ix * iy
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Detections decodes a Run output (as float64) into final boxes:
// threshold on sigmoid(objectness), decode offsets, then greedy NMS at
// IoU 0.5.
func (y *YOLO) Detections(head []float64) []Detection {
	const cells = YOLOGrid * YOLOGrid
	if len(head) != yoloHeadChannels*cells {
		panic(fmt.Sprintf("kernels: YOLO head length %d", len(head)))
	}
	at := func(ch, cell int) float64 { return head[ch*cells+cell] }
	var dets []Detection
	for cell := 0; cell < cells; cell++ {
		score := sigmoid64(at(0, cell))
		if score < y.threshold || math.IsNaN(score) {
			continue
		}
		row, col := cell/YOLOGrid, cell%YOLOGrid
		d := Detection{
			X:     (float64(col) + sigmoid64(at(1, cell))) / YOLOGrid,
			Y:     (float64(row) + sigmoid64(at(2, cell))) / YOLOGrid,
			W:     sigmoid64(at(3, cell)),
			H:     sigmoid64(at(4, cell)),
			Score: score,
		}
		best := 0
		for c := 1; c < y.numClasses; c++ {
			if at(5+c, cell) > at(5+best, cell) {
				best = c
			}
		}
		d.Class = best
		dets = append(dets, d)
	}
	// Greedy NMS: highest score first, drop overlaps above 0.5.
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	var kept []Detection
	for _, d := range dets {
		ok := true
		for _, k := range kept {
			if iou(d, k) > 0.5 {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}

// DetectionOutcome classifies how a faulty YOLO output differs from the
// golden one, following the paper's Fig. 11c taxonomy.
type DetectionOutcome int

const (
	// DetectionsTolerable: boxes and classes unchanged (scores may move).
	DetectionsTolerable DetectionOutcome = iota
	// DetectionChanged: a box appeared, vanished, or moved materially.
	DetectionChanged
	// ClassificationChanged: a matched box changed class.
	ClassificationChanged
)

func (o DetectionOutcome) String() string {
	switch o {
	case DetectionsTolerable:
		return "tolerable"
	case DetectionChanged:
		return "detection"
	case ClassificationChanged:
		return "classification"
	}
	return "outcome?"
}

// CompareDetections matches faulty detections against golden ones
// (greedy best-IoU) and classifies the difference. A class flip on a
// matched box dominates; otherwise any unmatched or materially moved box
// (IoU < 0.7) counts as a detection change.
func CompareDetections(golden, faulty []Detection) DetectionOutcome {
	used := make([]bool, len(faulty))
	classFlip := false
	boxChange := len(golden) != len(faulty)
	for _, g := range golden {
		bestIoU, bestIdx := 0.0, -1
		for i, f := range faulty {
			if used[i] {
				continue
			}
			if v := iou(g, f); v > bestIoU {
				bestIoU, bestIdx = v, i
			}
		}
		if bestIdx < 0 || bestIoU < 0.7 {
			boxChange = true
			continue
		}
		used[bestIdx] = true
		if faulty[bestIdx].Class != g.Class {
			classFlip = true
		}
	}
	switch {
	case classFlip:
		return ClassificationChanged
	case boxChange:
		return DetectionChanged
	default:
		return DetectionsTolerable
	}
}
