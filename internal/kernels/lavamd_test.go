package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

// lavaRef computes the LavaMD result in plain float64 with the same
// neighbor traversal, as an independent check of the Env-based kernel.
func lavaRef(l *LavaMD) []float64 {
	dim, perBox := l.dim, l.perBx
	n := l.Particles()
	fA := make([]float64, 4*n)
	a2 := l.alpha * l.alpha
	boxIndex := func(bx, by, bz int) int { return (bz*dim+by)*dim + bx }
	for bz := 0; bz < dim; bz++ {
		for by := 0; by < dim; by++ {
			for bx := 0; bx < dim; bx++ {
				home := boxIndex(bx, by, bz) * perBox
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := bx+dx, by+dy, bz+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= dim || ny >= dim || nz >= dim {
								continue
							}
							nb := boxIndex(nx, ny, nz) * perBox
							for i := home; i < home+perBox; i++ {
								for j := nb; j < nb+perBox; j++ {
									dot := l.rv[4*i+1]*l.rv[4*j+1] + l.rv[4*i+2]*l.rv[4*j+2] + l.rv[4*i+3]*l.rv[4*j+3]
									r2 := l.rv[4*i] + l.rv[4*j] - 2*dot
									vij := math.Exp(-a2 * r2)
									fs := 2 * vij
									fA[4*i] += l.qv[j] * vij
									fA[4*i+1] += l.qv[j] * fs * (l.rv[4*i+1] - l.rv[4*j+1])
									fA[4*i+2] += l.qv[j] * fs * (l.rv[4*i+2] - l.rv[4*j+2])
									fA[4*i+3] += l.qv[j] * fs * (l.rv[4*i+3] - l.rv[4*j+3])
								}
							}
						}
					}
				}
			}
		}
	}
	return fA
}

func TestLavaMDMatchesReference(t *testing.T) {
	l := NewLavaMD(2, 4, 21)
	got := Decode(fp.Double, Golden(l, fp.Double))
	want := lavaRef(l)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		// The Env path uses FMA contractions, so results differ from the
		// plain path by rounding only.
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("fA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLavaMDAllPrecisionsFinitePositiveV(t *testing.T) {
	l := NewLavaMD(2, 3, 23)
	for _, f := range fp.Formats {
		out := Decode(f, Golden(l, f))
		for i := 0; i < len(out); i += 4 {
			// The potential accumulator sums exp() terms with positive
			// charges: it must be strictly positive and finite.
			if !(out[i] > 0) || math.IsInf(out[i], 0) {
				t.Fatalf("%v: potential fA[%d].v = %v", f, i/4, out[i])
			}
		}
	}
}

func TestLavaMDIsMULDominated(t *testing.T) {
	// The paper (Section 6.1) attributes LavaMD's FIT trend to its MUL
	// dominance (>50% of instructions). Check the op mix reflects that:
	// MUL+FMA must dominate and EXP must be present.
	l := NewLavaMD(2, 4, 25)
	p := Profile(l, fp.Single)
	mulLike := p.ByOp[fp.OpMul] + p.ByOp[fp.OpFMA]
	if 2*mulLike < p.Total() {
		t.Errorf("MUL+FMA = %d of %d total, expected majority", mulLike, p.Total())
	}
	if p.ByOp[fp.OpExp] == 0 {
		t.Error("LavaMD must exercise the transcendental exp")
	}
	// One exp per interacting pair.
	pairs := uint64(0)
	dim, pb := 2, 4
	for bz := 0; bz < dim; bz++ {
		for by := 0; by < dim; by++ {
			for bx := 0; bx < dim; bx++ {
				neighbors := 0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := bx+dx, by+dy, bz+dz
							if nx >= 0 && ny >= 0 && nz >= 0 && nx < dim && ny < dim && nz < dim {
								neighbors++
							}
						}
					}
				}
				pairs += uint64(neighbors * pb * pb)
			}
		}
	}
	if p.ByOp[fp.OpExp] != pairs {
		t.Errorf("EXP count = %d, want %d (one per pair)", p.ByOp[fp.OpExp], pairs)
	}
}

func TestLavaMDDeterministic(t *testing.T) {
	a := Golden(NewLavaMD(2, 3, 31), fp.Half)
	b := Golden(NewLavaMD(2, 3, 31), fp.Half)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

func TestLavaMDPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLavaMD(0,0) did not panic")
		}
	}()
	NewLavaMD(0, 0, 1)
}
