package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

// hotspotRef evolves the grid in plain float64 with the same update.
func hotspotRef(h *Hotspot) []float64 {
	n := h.n
	cur := append([]float64(nil), h.temp...)
	next := append([]float64(nil), h.temp...)
	for s := 0; s < h.steps; s++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				t := cur[r*n+c]
				dv := math.FMA(-2, t, cur[(r+1)*n+c]+cur[(r-1)*n+c])
				dh := math.FMA(-2, t, cur[r*n+c+1]+cur[r*n+c-1])
				acc := h.power[r*n+c]
				acc = math.FMA(dv, hotspotRy, acc)
				acc = math.FMA(dh, hotspotRx, acc)
				acc = math.FMA(hotspotTamb-t, hotspotRz, acc)
				next[r*n+c] = math.FMA(hotspotK, acc, t)
			}
		}
		cur, next = next, cur
	}
	return cur
}

func TestHotspotMatchesReference(t *testing.T) {
	h := NewHotspot(10, 6, 31)
	got := Decode(fp.Double, Golden(h, fp.Double))
	want := hotspotRef(h)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestHotspotBordersFixed(t *testing.T) {
	h := NewHotspot(8, 5, 33)
	out := Decode(fp.Double, Golden(h, fp.Double))
	n := h.n
	for i := 0; i < n; i++ {
		for _, idx := range []int{i, (n-1)*n + i, i * n, i*n + n - 1} {
			if out[idx] != h.temp[idx] {
				t.Fatalf("border cell %d changed: %v vs %v", idx, out[idx], h.temp[idx])
			}
		}
	}
}

func TestHotspotStaysPhysical(t *testing.T) {
	// With these coefficients the update is a contraction toward
	// ambient + power: temperatures stay within a physical band in all
	// precisions.
	h := NewHotspot(12, 20, 35)
	for _, f := range fp.Formats {
		for i, v := range Decode(f, Golden(h, f)) {
			if v < 40 || v > 150 || math.IsNaN(v) {
				t.Fatalf("%v: cell %d diverged to %v", f, i, v)
			}
		}
	}
}

func TestHotspotPrecisionOrdering(t *testing.T) {
	h := NewHotspot(10, 10, 37)
	ref := Decode(fp.Double, Golden(h, fp.Double))
	eh := fp.MaxRelErr(ref, Decode(fp.Half, Golden(h, fp.Half)))
	es := fp.MaxRelErr(ref, Decode(fp.Single, Golden(h, fp.Single)))
	if !(eh > es) {
		t.Errorf("half drift %v not above single %v", eh, es)
	}
	if eh > 0.02 {
		t.Errorf("half drift %v exceeds 2%%", eh)
	}
}

func TestHotspotOpMix(t *testing.T) {
	h := NewHotspot(8, 3, 39)
	p := Profile(h, fp.Single)
	interior := uint64(6 * 6 * 3)
	if p.ByOp[fp.OpFMA] != 6*interior {
		t.Errorf("FMA count %d, want %d", p.ByOp[fp.OpFMA], 6*interior)
	}
	if p.ByOp[fp.OpAdd] != 2*interior {
		t.Errorf("ADD count %d, want %d", p.ByOp[fp.OpAdd], 2*interior)
	}
	if p.ByOp[fp.OpSub] != interior {
		t.Errorf("SUB count %d, want %d", p.ByOp[fp.OpSub], interior)
	}
}

func TestHotspotFaultPropagatesLocally(t *testing.T) {
	// A corrupted input cell only influences a neighborhood growing one
	// ring per step — check a far corner is untouched after few steps.
	h := NewHotspot(16, 2, 41)
	f := fp.Double
	golden := Golden(h, f)
	in := h.Inputs(f)
	center := 8*16 + 8
	in[0][center] = f.FlipBit(in[0][center], 40)
	faulty := h.Run(fp.NewMachine(f), in)
	if faulty[1*16+1] != golden[1*16+1] {
		t.Error("fault reached beyond its light cone")
	}
	if faulty[center] == golden[center] {
		t.Error("fault vanished at its own cell")
	}
}

func TestHotspotPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { NewHotspot(2, 5, 1) },
		func() { NewHotspot(8, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Hotspot shape did not panic")
				}
			}()
			f()
		}()
	}
}
