package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

func TestRenderDigitRangeAndInk(t *testing.T) {
	r := newTestRand(1)
	for d := 0; d < 10; d++ {
		img := RenderDigit(d, r)
		if len(img) != DigitSize*DigitSize {
			t.Fatalf("digit %d: %d pixels", d, len(img))
		}
		var ink float64
		for _, p := range img {
			if p < 0 || p > 1 {
				t.Fatalf("digit %d: pixel %v out of [0,1]", d, p)
			}
			ink += p
		}
		if ink < 20 {
			t.Errorf("digit %d: almost no ink (%v)", d, ink)
		}
	}
}

func TestRenderDigitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RenderDigit(10) did not panic")
		}
	}()
	RenderDigit(10, newTestRand(1))
}

func TestDigitSetShape(t *testing.T) {
	s := NewDigitSet(3, 7)
	if s.Len() != 30 {
		t.Fatalf("Len = %d, want 30", s.Len())
	}
	counts := map[int]int{}
	for _, l := range s.Labels {
		counts[l]++
	}
	for d := 0; d < 10; d++ {
		if counts[d] != 3 {
			t.Errorf("class %d has %d examples, want 3", d, counts[d])
		}
	}
}

func TestMNISTCleanAccuracy(t *testing.T) {
	m := newTestMNIST(t)
	if acc := m.CleanAccuracy(); acc < 0.9 {
		t.Errorf("clean float64 accuracy %v < 0.9 — training failed", acc)
	}
}

func TestMNISTGoldenClassificationAcrossPrecisions(t *testing.T) {
	m := newTestMNIST(t)
	// The paper keeps the same weights across precisions and reports
	// under 2% accuracy loss for half. Our double and half predictions
	// should agree on a confident classifier.
	predDouble := m.Classify(Decode(fp.Double, Golden(m, fp.Double)))
	for _, f := range []fp.Format{fp.Single, fp.Half} {
		pred := m.Classify(Decode(f, Golden(m, f)))
		diff := 0
		for i := range pred {
			if pred[i] != predDouble[i] {
				diff++
			}
		}
		if frac := float64(diff) / float64(len(pred)); frac > 0.1 {
			t.Errorf("%v: %.0f%% of predictions changed vs double", f, 100*frac)
		}
	}
}

func TestMNISTOutputIsProbabilities(t *testing.T) {
	m := newTestMNIST(t)
	for _, f := range fp.Formats {
		out := Decode(f, Golden(m, f))
		if len(out) != m.Batch*10 {
			t.Fatalf("%v: output length %d, want %d", f, len(out), m.Batch*10)
		}
		for i := 0; i < m.Batch; i++ {
			var sum float64
			for _, p := range out[i*10 : (i+1)*10] {
				if p < 0 || p > 1.0001 || math.IsNaN(p) {
					t.Fatalf("%v: probability %v out of range", f, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 0.02 {
				t.Fatalf("%v: probabilities sum to %v", f, sum)
			}
		}
	}
}

func TestMNISTPredictsTestLabels(t *testing.T) {
	m := newTestMNIST(t)
	pred := m.Classify(Decode(fp.Double, Golden(m, fp.Double)))
	correct := 0
	for i, p := range pred {
		if p == m.Labels()[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(pred)); frac < 0.8 {
		t.Errorf("only %.0f%% of the test batch classified correctly", 100*frac)
	}
}

func TestMNISTPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMNIST(0) did not panic")
		}
	}()
	NewMNIST(0, 1)
}
