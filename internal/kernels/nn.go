package kernels

import (
	"fmt"
	"math"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// This file holds the neural-network layer primitives shared by the
// MNIST and YOLO-lite kernels. Each layer exists twice: once over fp.Env
// (the instrumented inference path used by the reliability experiments)
// and once over plain float64 (the fast path used only to train weights,
// matching the paper's methodology of training once in one precision and
// converting the weights to the others without retraining).

// tensor is a dense (channels, height, width) activation volume of raw
// format bits.
type tensor struct {
	c, h, w int
	data    []fp.Bits
}

func newTensor(c, h, w int) tensor {
	return tensor{c: c, h: h, w: w, data: make([]fp.Bits, c*h*w)}
}

func (t tensor) at(c, y, x int) fp.Bits     { return t.data[(c*t.h+y)*t.w+x] }
func (t tensor) set(c, y, x int, v fp.Bits) { t.data[(c*t.h+y)*t.w+x] = v }

// convLayer is a 2D convolution with valid padding and stride 1.
// Weights are laid out outC x inC x k x k; one bias per output channel.
type convLayer struct {
	inC, outC, k int
	weight       []float64
	bias         []float64
}

func newConvLayer(inC, outC, k int, r *rng.Rand) *convLayer {
	l := &convLayer{inC: inC, outC: outC, k: k,
		weight: make([]float64, outC*inC*k*k),
		bias:   make([]float64, outC),
	}
	// He-style initialization keeps activation magnitudes stable across
	// depth so the same weights are usable in binary16.
	scale := math.Sqrt(2 / float64(inC*k*k))
	for i := range l.weight {
		l.weight[i] = r.NormFloat64() * scale
	}
	return l
}

func (l *convLayer) outShape(h, w int) (int, int) { return h - l.k + 1, w - l.k + 1 }

// encodeParams converts the layer parameters into format f.
func (l *convLayer) encodeParams(f fp.Format) (w, b []fp.Bits) {
	return encode(f, l.weight), encode(f, l.bias)
}

// forward applies the convolution through env using pre-encoded params.
// The input is gathered im2col-style into a pooled patch matrix (pure
// data movement, no env operations), so every output pixel is one
// contiguous DotFMA chain — the identical dynamic FMA sequence, in the
// identical (oc, y, x, ic, ky, kx) order, as the original scalar nest.
func (l *convLayer) forward(env fp.Env, in tensor, w, b []fp.Bits) tensor {
	if in.c != l.inC {
		panic(fmt.Sprintf("kernels: conv expects %d channels, got %d", l.inC, in.c))
	}
	oh, ow := l.outShape(in.h, in.w)
	out := newTensor(l.outC, oh, ow)
	k := l.k
	plen := l.inC * k * k
	buf := getBuf(oh * ow * plen)
	defer putBuf(buf)
	col := buf.s
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			p := col[(y*ow+x)*plen:]
			idx := 0
			for ic := 0; ic < l.inC; ic++ {
				for ky := 0; ky < k; ky++ {
					base := (ic*in.h+y+ky)*in.w + x
					copy(p[idx:idx+k], in.data[base:base+k])
					idx += k
				}
			}
		}
	}
	// out.data order is (oc, y, x) and the col pixel order is (y, x), so
	// the whole layer is one chain grid: rows = output channels, cols =
	// pixels, k = patch length.
	fp.GemmFMA(env, out.data, b, w, col, l.outC, oh*ow, plen)
	return out
}

// forward64 is the float64 training-time version of forward.
func (l *convLayer) forward64(in []float64, h, w int) ([]float64, int, int) {
	oh, ow := l.outShape(h, w)
	out := make([]float64, l.outC*oh*ow)
	k := l.k
	for oc := 0; oc < l.outC; oc++ {
		wBase := oc * l.inC * k * k
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				acc := l.bias[oc]
				for ic := 0; ic < l.inC; ic++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							acc += l.weight[wBase+(ic*k+ky)*k+kx] * in[(ic*h+y+ky)*w+x+kx]
						}
					}
				}
				out[(oc*oh+y)*ow+x] = acc
			}
		}
	}
	return out, oh, ow
}

// isPositive reports whether b encodes a value > 0 in env's format.
func isPositive(f fp.Format, b fp.Bits) bool {
	return !f.Sign(b) && !f.IsZero(b) && !f.IsNaN(b)
}

// reluT applies max(0, x) in place.
func reluT(env fp.Env, t tensor) {
	f := env.Format()
	zero := env.FromFloat64(0)
	for i, v := range t.data {
		if !isPositive(f, v) {
			t.data[i] = zero
		}
	}
}

func relu64(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
}

// leakyReLUT applies x > 0 ? x : x/8 in place. The slope 1/8 is exact in
// every format (YOLO's conventional 0.1 is not representable in binary
// FP; 1/8 keeps all three precisions on the same fault-free path).
func leakyReLUT(env fp.Env, t tensor) {
	f := env.Format()
	eighth := env.FromFloat64(0.125)
	// Data-dependent: only negative elements multiply, so the op stream
	// is sparse and cannot batch without changing fault indices.
	//mixedrelvet:allow batchops conditional per-element multiply
	for i, v := range t.data {
		if !isPositive(f, v) && !f.IsZero(v) {
			t.data[i] = env.Mul(v, eighth)
		}
	}
}

func leakyReLU64(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = v * 0.125
		}
	}
}

// avgPool2 halves both spatial dimensions by averaging 2x2 windows.
// Odd trailing rows/columns are dropped (as in LeNet-style nets).
func avgPool2(env fp.Env, in tensor) tensor {
	oh, ow := in.h/2, in.w/2
	out := newTensor(in.c, oh, ow)
	quarter := env.FromFloat64(0.25)
	// Each window is a dependent Add/Add/Add/Mul chain; batching across
	// windows would interleave kinds and reorder the op stream.
	//mixedrelvet:allow batchops dependent per-window reduction
	for c := 0; c < in.c; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				s := env.Add(in.at(c, 2*y, 2*x), in.at(c, 2*y, 2*x+1))
				s = env.Add(s, in.at(c, 2*y+1, 2*x))
				s = env.Add(s, in.at(c, 2*y+1, 2*x+1))
				out.set(c, y, x, env.Mul(s, quarter))
			}
		}
	}
	return out
}

func avgPool2x64(in []float64, c, h, w int) ([]float64, int, int) {
	oh, ow := h/2, w/2
	out := make([]float64, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				s := in[(ch*h+2*y)*w+2*x] + in[(ch*h+2*y)*w+2*x+1] +
					in[(ch*h+2*y+1)*w+2*x] + in[(ch*h+2*y+1)*w+2*x+1]
				out[(ch*oh+y)*ow+x] = s * 0.25
			}
		}
	}
	return out, oh, ow
}

// maxPool2 halves both spatial dimensions with 2x2 max windows.
func maxPool2(env fp.Env, in tensor) tensor {
	f := env.Format()
	oh, ow := in.h/2, in.w/2
	out := newTensor(in.c, oh, ow)
	for c := 0; c < in.c; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				best := in.at(c, 2*y, 2*x)
				for _, v := range []fp.Bits{in.at(c, 2*y, 2*x+1), in.at(c, 2*y+1, 2*x), in.at(c, 2*y+1, 2*x+1)} {
					if f.ToFloat64(v) > f.ToFloat64(best) {
						best = v
					}
				}
				out.set(c, y, x, best)
			}
		}
	}
	return out
}

func maxPool2x64(in []float64, c, h, w int) ([]float64, int, int) {
	oh, ow := h/2, w/2
	out := make([]float64, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				best := in[(ch*h+2*y)*w+2*x]
				for _, v := range []float64{in[(ch*h+2*y)*w+2*x+1], in[(ch*h+2*y+1)*w+2*x], in[(ch*h+2*y+1)*w+2*x+1]} {
					if v > best {
						best = v
					}
				}
				out[(ch*oh+y)*ow+x] = best
			}
		}
	}
	return out, oh, ow
}

// denseLayer is a fully connected layer, weights laid out out x in.
type denseLayer struct {
	in, out int
	weight  []float64
	bias    []float64
}

func newDenseLayer(in, out int, r *rng.Rand) *denseLayer {
	l := &denseLayer{in: in, out: out,
		weight: make([]float64, in*out),
		bias:   make([]float64, out),
	}
	scale := math.Sqrt(2 / float64(in))
	for i := range l.weight {
		l.weight[i] = r.NormFloat64() * scale
	}
	return l
}

func (l *denseLayer) encodeParams(f fp.Format) (w, b []fp.Bits) {
	return encode(f, l.weight), encode(f, l.bias)
}

func (l *denseLayer) forward(env fp.Env, in []fp.Bits, w, b []fp.Bits) []fp.Bits {
	if len(in) != l.in {
		panic(fmt.Sprintf("kernels: dense expects %d inputs, got %d", l.in, len(in)))
	}
	out := make([]fp.Bits, l.out)
	// One chain per output neuron against the shared input vector.
	fp.GemmFMA(env, out, b, w, in, l.out, 1, l.in)
	return out
}

func (l *denseLayer) forward64(in []float64) []float64 {
	out := make([]float64, l.out)
	for o := 0; o < l.out; o++ {
		acc := l.bias[o]
		base := o * l.in
		for i := 0; i < l.in; i++ {
			acc += l.weight[base+i] * in[i]
		}
		out[o] = acc
	}
	return out
}

// softmaxT computes softmax through env with the usual max-subtraction
// for range safety (essential in binary16, where exp overflows past ~11).
func softmaxT(env fp.Env, in []fp.Bits) []fp.Bits {
	f := env.Format()
	max := in[0]
	for _, v := range in[1:] {
		if f.ToFloat64(v) > f.ToFloat64(max) {
			max = v
		}
	}
	exps := make([]fp.Bits, len(in))
	sum := env.FromFloat64(0)
	// Sub/Exp/Add interleave per element (the Exp may decompose into
	// many counted ops), so the summation order is the contract.
	//mixedrelvet:allow batchops interleaved exp and running sum
	for i, v := range in {
		exps[i] = env.Exp(env.Sub(v, max))
		sum = env.Add(sum, exps[i])
	}
	out := make([]fp.Bits, len(in))
	for i := range exps {
		out[i] = env.Div(exps[i], sum)
	}
	return out
}

func softmax64(in []float64) []float64 {
	max := in[0]
	for _, v := range in[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// sigmoidT computes 1/(1+exp(-x)) through env.
func sigmoidT(env fp.Env, x fp.Bits) fp.Bits {
	one := env.FromFloat64(1)
	negX := env.Mul(x, env.FromFloat64(-1))
	return env.Div(one, env.Add(one, env.Exp(negX)))
}

func sigmoid64(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Argmax returns the index of the largest element (first on ties).
func Argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
