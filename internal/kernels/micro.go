package kernels

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// MicroOp selects which arithmetic unit a Micro kernel stresses.
type MicroOp int

const (
	// MicroADD stresses the floating-point adder.
	MicroADD MicroOp = iota
	// MicroMUL stresses the multiplier.
	MicroMUL
	// MicroFMA stresses the fused multiply-add pipeline.
	MicroFMA
)

func (op MicroOp) String() string {
	switch op {
	case MicroADD:
		return "Micro-ADD"
	case MicroMUL:
		return "Micro-MUL"
	case MicroFMA:
		return "Micro-FMA"
	}
	return "Micro-?"
}

// Micro reproduces the paper's microbenchmarks: each of Threads logical
// threads performs OpsPerThread arithmetic operations of one kind on a
// register-resident value, with negligible memory traffic. The operation
// chains are exactly invertible in binary floating point, so the
// fault-free result equals the seed value in every precision and any
// injected fault propagates multiplicatively to the output:
//
//	ADD:  x += 1;           x -= 1
//	MUL:  x *= 2;           x *= 0.5
//	FMA:  x = 2x + 1;       x = 0.5x - 0.5
//
// (2, 0.5 and 1 are exact in all three formats, and the seeds are small
// integers, so no rounding occurs anywhere on the fault-free path.)
type Micro struct {
	Op           MicroOp
	Threads      int
	OpsPerThread int
	seeds        []float64
	key          string
}

// NewMicro creates a microbenchmark with the given operation, thread
// count, and per-thread dynamic operation count. It panics for
// non-positive shape parameters. OpsPerThread is rounded up to even so
// every forward step has its inverse.
func NewMicro(op MicroOp, threads, opsPerThread int, seed uint64) *Micro {
	if threads <= 0 || opsPerThread <= 0 {
		panic(fmt.Sprintf("kernels: Micro shape %dx%d", threads, opsPerThread))
	}
	r := rng.New(seed)
	seeds := make([]float64, threads)
	for i := range seeds {
		// Small integers: exactly representable in binary16.
		seeds[i] = float64(1 + r.Intn(32))
	}
	return &Micro{Op: op, Threads: threads, OpsPerThread: (opsPerThread + 1) &^ 1, seeds: seeds,
		key: fmt.Sprintf("micro/%s/t%d/o%d/s%d", op, threads, opsPerThread, seed)}
}

// Name implements Kernel.
func (m *Micro) Name() string { return m.Op.String() }

// Key implements Kernel.
func (m *Micro) Key() string { return m.key }

// Inputs implements Kernel: one seed value per thread.
func (m *Micro) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, m.seeds)}
}

// Run implements Kernel: the output is each thread's final register
// value, which fault-free equals its seed.
func (m *Micro) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return m.RunInto(env, in, nil)
}

// RunInto implements OutputKernel.
func (m *Micro) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	one := env.FromFloat64(1)
	negOne := env.FromFloat64(-1)
	two := env.FromFloat64(2)
	half := env.FromFloat64(0.5)
	negHalf := env.FromFloat64(-0.5)

	out = ensureBits(out, m.Threads)
	// Each thread's chain is register-resident and strictly dependent:
	// the defining structure of the microbenchmarks, nothing to batch.
	//mixedrelvet:allow batchops dependent per-thread op chain
	for t := 0; t < m.Threads; t++ {
		x := in[0][t]
		for i := 0; i < m.OpsPerThread; i += 2 {
			switch m.Op {
			case MicroADD:
				x = env.Add(x, one)
				x = env.Add(x, negOne)
			case MicroMUL:
				x = env.Mul(x, two)
				x = env.Mul(x, half)
			case MicroFMA:
				x = env.FMA(x, two, one)
				x = env.FMA(x, half, negHalf)
			}
		}
		out[t] = x
	}
	return out
}
