package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

// reconstruct multiplies the packed L (unit diagonal) and U factors.
func reconstruct(lu []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kMax := i
			if j < i {
				kMax = j
			}
			for k := 0; k <= kMax; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = lu[i*n+k]
				}
				sum += l * lu[k*n+j]
			}
			out[i*n+j] = sum
		}
	}
	return out
}

func TestLUDFactorizationReconstructs(t *testing.T) {
	l := NewLUD(16, 9)
	out := Decode(fp.Double, Golden(l, fp.Double))
	back := reconstruct(out, l.n)
	for i := range back {
		if math.Abs(back[i]-l.a[i]) > 1e-9*(1+math.Abs(l.a[i])) {
			t.Fatalf("LU reconstruction off at %d: %v vs %v", i, back[i], l.a[i])
		}
	}
}

func TestLUDInputDiagonallyDominant(t *testing.T) {
	l := NewLUD(20, 11)
	n := l.n
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(l.a[i*n+j])
			}
		}
		if l.a[i*n+i] <= off {
			t.Fatalf("row %d not strictly diagonally dominant", i)
		}
	}
}

func TestLUDAllPrecisionsFinite(t *testing.T) {
	l := NewLUD(12, 13)
	for _, f := range fp.Formats {
		for i, v := range Decode(f, Golden(l, f)) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: non-finite output at %d: %v", f, i, v)
			}
		}
	}
}

func TestLUDProfileHasDivAndFMA(t *testing.T) {
	l := NewLUD(8, 15)
	p := Profile(l, fp.Double)
	n := uint64(8)
	wantDiv := n * (n - 1) / 2
	if p.ByOp[fp.OpDiv] != wantDiv {
		t.Errorf("DIV count = %d, want %d", p.ByOp[fp.OpDiv], wantDiv)
	}
	if p.ByOp[fp.OpFMA] == 0 {
		t.Error("LUD should contain FMA elimination updates")
	}
}

func TestLUDPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLUD(-1) did not panic")
		}
	}()
	NewLUD(-1, 1)
}
