package kernels

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// GEMM is the paper's MxM workload: C = A x B for square N x N matrices,
// computed as a chain of fused multiply-adds per output element — the
// structure the paper identifies with the FMA microbenchmark ("matrix
// multiplication is a series of multiply and accumulate operations,
// which are implemented as FMA instructions").
//
// Inputs are uniform in [0.5, 1) so that every output element is bounded
// away from zero (element-wise relative error — the paper's TRE metric —
// is meaningful) and dot products stay inside the binary16 range for the
// sizes used here.
type GEMM struct {
	n    int
	a, b []float64
	key  string
}

// NewGEMM creates an n x n matrix multiplication with deterministic
// inputs derived from seed. It panics if n <= 0.
func NewGEMM(n int, seed uint64) *GEMM {
	if n <= 0 {
		panic(fmt.Sprintf("kernels: GEMM size %d", n))
	}
	r := rng.New(seed)
	return &GEMM{
		n:   n,
		a:   uniform(r, n*n, 0.5, 1),
		b:   uniform(r, n*n, 0.5, 1),
		key: fmt.Sprintf("gemm/n%d/s%d", n, seed),
	}
}

// Name implements Kernel.
func (g *GEMM) Name() string { return "MxM" }

// Key implements Kernel.
func (g *GEMM) Key() string { return g.key }

// N returns the matrix dimension.
func (g *GEMM) N() int { return g.n }

// Inputs implements Kernel: element 0 is A, element 1 is B, both in
// row-major order.
func (g *GEMM) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, g.a), encode(f, g.b)}
}

// Run implements Kernel. The inner loop is an FMA chain, matching how
// GEMM maps onto all three architectures.
func (g *GEMM) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return g.RunInto(env, in, nil)
}

// RunInto implements OutputKernel. B is packed column-major into pooled
// scratch (pure data movement, no env operations), so each output
// element is one contiguous DotFMA chain — the same dynamic FMA
// sequence, in the same order, as the original scalar i/j/k nest.
func (g *GEMM) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	a, b := in[0], in[1]
	n := g.n
	c := ensureBits(out, n*n)
	buf := getBuf(n * n)
	defer putBuf(buf)
	bt := buf.s
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			bt[j*n+k] = b[k*n+j]
		}
	}
	fp.GemmFMA(env, c, nil, a, bt, n, n, n)
	return c
}
