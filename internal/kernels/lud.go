package kernels

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// LUD factors a square matrix A into unit-lower-triangular L and
// upper-triangular U with the Doolittle scheme and no pivoting, exactly
// like the Rodinia LUD kernel the paper runs on the Xeon Phi. The input
// is made strictly diagonally dominant, which Rodinia likewise assumes,
// so the factorization is numerically stable without pivoting.
//
// The output is the packed in-place factorization (L below the diagonal,
// U on and above it), which is what the paper's golden check compares.
type LUD struct {
	n   int
	a   []float64
	key string
}

// NewLUD creates an n x n decomposition with a deterministic, strictly
// diagonally dominant input matrix. It panics if n <= 0.
func NewLUD(n int, seed uint64) *LUD {
	if n <= 0 {
		panic(fmt.Sprintf("kernels: LUD size %d", n))
	}
	r := rng.New(seed)
	a := uniform(r, n*n, -1, 1)
	// Make each diagonal entry exceed the absolute row sum.
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				if v := a[i*n+j]; v < 0 {
					rowSum -= v
				} else {
					rowSum += v
				}
			}
		}
		a[i*n+i] = rowSum + 1
	}
	return &LUD{n: n, a: a, key: fmt.Sprintf("lud/n%d/s%d", n, seed)}
}

// Name implements Kernel.
func (l *LUD) Name() string { return "LUD" }

// Key implements Kernel.
func (l *LUD) Key() string { return l.key }

// N returns the matrix dimension.
func (l *LUD) N() int { return l.n }

// Inputs implements Kernel: a single row-major matrix.
func (l *LUD) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, l.a)}
}

// Run implements Kernel.
func (l *LUD) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return l.RunInto(env, in, nil)
}

// RunInto implements OutputKernel. The trailing-row update is the AXPY
// m[i][k+1:] += -l_ik * u[k][k+1:], bit- and order-identical to the
// original scalar j loop; rows i and k are disjoint, so the pivot row
// never aliases the destination.
func (l *LUD) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	n := l.n
	m := ensureBits(out, n*n)
	copy(m, in[0])
	negOne := env.FromFloat64(-1)
	for k := 0; k < n; k++ {
		// U row k is already final. Compute the L column below the
		// pivot, then eliminate.
		piv := m[k*n+k]
		urow := m[k*n+k+1 : (k+1)*n]
		// The divide and negation are loop-carried scalars feeding the
		// per-row AXPY; only the j dimension batches.
		//mixedrelvet:allow batchops per-row Div/Mul feed the AXPY
		for i := k + 1; i < n; i++ {
			lik := env.Div(m[i*n+k], piv)
			m[i*n+k] = lik
			negLik := env.Mul(lik, negOne)
			fp.AXPY(env, m[i*n+k+1:(i+1)*n], negLik, urow)
		}
	}
	return m
}
