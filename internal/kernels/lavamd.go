package kernels

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// LavaMD computes particle potentials and forces in a 3D grid of boxes
// due to mutual interactions with particles in the 26-neighborhood plus
// the home box, following the Rodinia kernel the paper runs. For every
// particle pair (i home, j neighbor):
//
//	r2  = ri.v + rj.v - 2*dot(ri, rj)
//	u2  = alpha^2 * r2
//	vij = exp(-u2)
//	fs  = 2 * vij
//	d   = ri - rj                  (component-wise, x/y/z)
//	fA[i].v += qv[j] * vij
//	fA[i].{x,y,z} += qv[j] * fs * d.{x,y,z}
//
// The kernel is MUL-dominated (the paper reports >50% MUL instructions)
// and is the only workload exercising the transcendental exp, which is
// what drives its distinctive criticality behaviour on the Xeon Phi.
type LavaMD struct {
	dim   int // boxes per grid edge
	perBx int // particles per box
	alpha float64
	rv    []float64 // 4 values per particle: v, x, y, z
	qv    []float64 // 1 charge per particle
	key   string
}

// NewLavaMD creates a dim^3-box grid with perBox particles per box and
// deterministic inputs. It panics for non-positive shape parameters.
func NewLavaMD(dim, perBox int, seed uint64) *LavaMD {
	if dim <= 0 || perBox <= 0 {
		panic(fmt.Sprintf("kernels: LavaMD shape %dx%d", dim, perBox))
	}
	r := rng.New(seed)
	n := dim * dim * dim * perBox
	return &LavaMD{
		dim:   dim,
		perBx: perBox,
		alpha: 0.5,
		rv:    uniform(r, 4*n, 0.1, 1.0),
		qv:    uniform(r, n, 0.1, 1.0),
		key:   fmt.Sprintf("lavamd/d%d/p%d/s%d", dim, perBox, seed),
	}
}

// Name implements Kernel.
func (l *LavaMD) Name() string { return "LavaMD" }

// Key implements Kernel.
func (l *LavaMD) Key() string { return l.key }

// Particles returns the total particle count.
func (l *LavaMD) Particles() int { return l.dim * l.dim * l.dim * l.perBx }

// Inputs implements Kernel: element 0 is rv (v,x,y,z per particle),
// element 1 is qv.
func (l *LavaMD) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, l.rv), encode(f, l.qv)}
}

// Run implements Kernel. The output is fA: 4 accumulators (v,x,y,z) per
// particle.
func (l *LavaMD) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return l.RunInto(env, in, nil)
}

// RunInto implements OutputKernel.
func (l *LavaMD) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	rv, qv := in[0], in[1]
	dim, perBox := l.dim, l.perBx
	n := l.Particles()
	fA := ensureBits(out, 4*n)
	zero := env.FromFloat64(0)
	for i := range fA {
		fA[i] = zero
	}
	a2 := env.Mul(env.FromFloat64(l.alpha), env.FromFloat64(l.alpha))
	two := env.FromFloat64(2)
	negOne := env.FromFloat64(-1)

	boxIndex := func(bx, by, bz int) int { return (bz*dim+by)*dim + bx }

	for bz := 0; bz < dim; bz++ {
		for by := 0; by < dim; by++ {
			for bx := 0; bx < dim; bx++ {
				home := boxIndex(bx, by, bz) * perBox
				// Home box plus the 26 neighbors, clamped at the
				// grid boundary (Rodinia uses no periodic wrap).
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := bx+dx, by+dy, bz+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= dim || ny >= dim || nz >= dim {
								continue
							}
							nb := boxIndex(nx, ny, nz) * perBox
							l.interact(env, rv, qv, fA, home, nb, a2, two, negOne)
						}
					}
				}
			}
		}
	}
	return fA
}

// interact accumulates the contribution of the perBox particles starting
// at box nb onto the particles starting at box home.
func (l *LavaMD) interact(env fp.Env, rv, qv, fA []fp.Bits, home, nb int, a2, two, negOne fp.Bits) {
	// Every pair interaction is one dependent chain through exp with
	// four interleaved accumulators; Rodinia's op order is the spec.
	//mixedrelvet:allow batchops dependent pair chain with interleaved accumulators
	for i := home; i < home+l.perBx; i++ {
		riV, riX, riY, riZ := rv[4*i], rv[4*i+1], rv[4*i+2], rv[4*i+3]
		accV, accX, accY, accZ := fA[4*i], fA[4*i+1], fA[4*i+2], fA[4*i+3]
		for j := nb; j < nb+l.perBx; j++ {
			rjV, rjX, rjY, rjZ := rv[4*j], rv[4*j+1], rv[4*j+2], rv[4*j+3]
			// dot(ri, rj) over the spatial components.
			dot := env.Mul(riX, rjX)
			dot = env.FMA(riY, rjY, dot)
			dot = env.FMA(riZ, rjZ, dot)
			// r2 = ri.v + rj.v - 2*dot
			r2 := env.Add(riV, rjV)
			r2 = env.Sub(r2, env.Mul(two, dot))
			// u2 = a2*r2; vij = exp(-u2)
			u2 := env.Mul(a2, r2)
			vij := env.Exp(env.Mul(negOne, u2))
			fs := env.Mul(two, vij)
			dX := env.Sub(riX, rjX)
			dY := env.Sub(riY, rjY)
			dZ := env.Sub(riZ, rjZ)
			q := qv[j]
			accV = env.FMA(q, vij, accV)
			qfs := env.Mul(q, fs)
			accX = env.FMA(qfs, dX, accX)
			accY = env.FMA(qfs, dY, accY)
			accZ = env.FMA(qfs, dZ, accZ)
		}
		fA[4*i], fA[4*i+1], fA[4*i+2], fA[4*i+3] = accV, accX, accY, accZ
	}
}
