package kernels

import (
	"testing"

	"mixedrel/internal/fp"
)

func TestMicroFaultFreeIsIdentity(t *testing.T) {
	for _, op := range []MicroOp{MicroADD, MicroMUL, MicroFMA} {
		m := NewMicro(op, 16, 100, 3)
		for _, f := range fp.Formats {
			in := m.Inputs(f)
			out := m.Run(fp.NewMachine(f), in)
			for i := range out {
				if out[i] != in[0][i] {
					t.Errorf("%v/%v: thread %d final %#x != seed %#x",
						op, f, i, out[i], in[0][i])
				}
			}
		}
	}
}

func TestMicroOpCountsArePure(t *testing.T) {
	cases := []struct {
		op   MicroOp
		want fp.Op
	}{
		{MicroADD, fp.OpAdd},
		{MicroMUL, fp.OpMul},
		{MicroFMA, fp.OpFMA},
	}
	for _, c := range cases {
		m := NewMicro(c.op, 4, 50, 1)
		p := Profile(m, fp.Single)
		if p.ByOp[c.want] != uint64(4*m.OpsPerThread) {
			t.Errorf("%v: count = %d, want %d", c.op, p.ByOp[c.want], 4*m.OpsPerThread)
		}
		if p.Total() != p.ByOp[c.want] {
			t.Errorf("%v: kernel not pure: %+v", c.op, p.ByOp)
		}
	}
}

func TestMicroOpsPerThreadRoundedEven(t *testing.T) {
	m := NewMicro(MicroMUL, 1, 7, 1)
	if m.OpsPerThread != 8 {
		t.Errorf("OpsPerThread = %d, want 8", m.OpsPerThread)
	}
}

func TestMicroNames(t *testing.T) {
	if NewMicro(MicroADD, 1, 2, 1).Name() != "Micro-ADD" ||
		NewMicro(MicroMUL, 1, 2, 1).Name() != "Micro-MUL" ||
		NewMicro(MicroFMA, 1, 2, 1).Name() != "Micro-FMA" {
		t.Error("unexpected micro names")
	}
	if MicroOp(9).String() != "Micro-?" {
		t.Error("unknown MicroOp should stringify to Micro-?")
	}
}

func TestMicroPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMicro with zero threads did not panic")
		}
	}()
	NewMicro(MicroADD, 0, 10, 1)
}

// A single bit flip in the value mid-chain must reach the output for
// MUL (multiplicative propagation) — this is the property that makes the
// microbenchmarks sensitive fault detectors.
func TestMicroFaultPropagates(t *testing.T) {
	m := NewMicro(MicroMUL, 1, 100, 5)
	for _, f := range fp.Formats {
		in := m.Inputs(f)
		golden := m.Run(fp.NewMachine(f), in)
		// Corrupt a high mantissa bit of the seed (memory fault model).
		in = m.Inputs(f)
		in[0][0] = f.FlipBit(in[0][0], f.MantBits()-1)
		faulty := m.Run(fp.NewMachine(f), in)
		if faulty[0] == golden[0] {
			t.Errorf("%v: seed corruption did not propagate", f)
		}
	}
}
