package kernels

import (
	"math"
	"testing"
)

// Numerical gradient check: the analytic conv/pool/relu/dense backward
// pass must match finite differences of the cross-entropy loss.
func TestBackpropGradientCheck(t *testing.T) {
	r := newTestRand(5)
	m := &MNIST{Batch: 1,
		conv1: newConvLayer(1, 2, 3, r),
		conv2: newConvLayer(2, 3, 3, r),
		fc:    newDenseLayer(75, 10, r), // 3 x 5 x 5 after two pools of 28x28? see below
	}
	// With 28x28 input: conv1(3) -> 26, pool -> 13, conv2(3) -> 11,
	// pool -> 5: features = 3*5*5 = 75.
	img := RenderDigit(3, r)
	label := 3

	loss := func() float64 {
		st := m.forwardTrain(img)
		return -math.Log(st.probs[label] + 1e-300)
	}

	// Analytic gradients via one backward pass.
	g1 := newConvGrads(m.conv1)
	g2 := newConvGrads(m.conv2)
	gw := make([]float64, len(m.fc.weight))
	st := m.forwardTrain(img)
	dLogits := append([]float64(nil), st.probs...)
	dLogits[label] -= 1
	dFeats := make([]float64, m.fc.in)
	for o := 0; o < m.fc.out; o++ {
		base := o * m.fc.in
		for i := 0; i < m.fc.in; i++ {
			gw[base+i] += dLogits[o] * st.p2[i]
			dFeats[i] += dLogits[o] * m.fc.weight[base+i]
		}
	}
	dC2 := avgPoolBackward(dFeats, m.conv2.outC, st.h2, st.w2)
	reluBackward(dC2, st.c2Pre)
	dP1 := convBackward(m.conv2, st.p1, st.ph1, st.pw1, dC2, g2, true)
	dC1 := avgPoolBackward(dP1, m.conv1.outC, st.h1, st.w1)
	reluBackward(dC1, st.c1Pre)
	convBackward(m.conv1, img, DigitSize, DigitSize, dC1, g1, false)

	check := func(name string, params []float64, grad []float64, indices []int) {
		const eps = 1e-6
		for _, i := range indices {
			orig := params[i]
			params[i] = orig + eps
			up := loss()
			params[i] = orig - eps
			down := loss()
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	check("fc.weight", m.fc.weight, gw, []int{0, 7, 74, 100, 749})
	check("conv2.weight", m.conv2.weight, g2.weight, []int{0, 5, 17, 53})
	check("conv2.bias", m.conv2.bias, g2.bias, []int{0, 2})
	check("conv1.weight", m.conv1.weight, g1.weight, []int{0, 4, 8, 17})
	check("conv1.bias", m.conv1.bias, g1.bias, []int{0, 1})
}

func TestTrainFullImprovesLoss(t *testing.T) {
	r := newTestRand(9)
	m := &MNIST{Batch: 1,
		conv1: newConvLayer(1, 4, 5, r),
		conv2: newConvLayer(4, 8, 5, r),
		fc:    newDenseLayer(128, 10, r),
	}
	set := NewDigitSet(5, 21)
	meanLoss := func() float64 {
		var sum float64
		for i, img := range set.Images {
			st := m.forwardTrain(img)
			sum += -math.Log(st.probs[set.Labels[i]] + 1e-300)
		}
		return sum / float64(set.Len())
	}
	before := meanLoss()
	m.trainFull(set, 4, 0.001, 0.9, 10, 3)
	after := meanLoss()
	if !(after < before) {
		t.Errorf("training did not reduce loss: %v -> %v", before, after)
	}
}

func TestAvgPoolBackwardConservesGradient(t *testing.T) {
	gradOut := []float64{4, 8, 12, 16}
	gradIn := avgPoolBackward(gradOut, 1, 4, 4)
	var sumOut, sumIn float64
	for _, g := range gradOut {
		sumOut += g
	}
	for _, g := range gradIn {
		sumIn += g
	}
	if math.Abs(sumIn-sumOut) > 1e-12 {
		t.Errorf("pool backward changed total gradient: %v vs %v", sumIn, sumOut)
	}
	// Each window receives a quarter of its pooled gradient.
	if gradIn[0] != 1 || gradIn[1] != 1 || gradIn[4] != 1 || gradIn[5] != 1 {
		t.Errorf("window 0 gradients %v %v %v %v, want 1", gradIn[0], gradIn[1], gradIn[4], gradIn[5])
	}
}

func TestReluBackwardMasks(t *testing.T) {
	grad := []float64{1, 2, 3}
	pre := []float64{-1, 0, 5}
	reluBackward(grad, pre)
	if grad[0] != 0 || grad[1] != 0 || grad[2] != 3 {
		t.Errorf("relu backward wrong: %v", grad)
	}
}

func TestShufflerDeterministicPermutation(t *testing.T) {
	a := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := append([]int(nil), a...)
	newShuffler(5)(a)
	newShuffler(5)(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffler not deterministic")
		}
	}
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatal("shuffler lost elements")
	}
}
