package kernels

import (
	"sync"
	"testing"

	"mixedrel/internal/rng"
)

func newTestRand(seed uint64) *rng.Rand { return rng.New(seed) }

var (
	mnistOnce sync.Once
	mnistInst *MNIST

	yoloOnce sync.Once
	yoloInst *YOLO
)

// newTestMNIST returns a shared trained MNIST instance; training takes a
// noticeable fraction of a second, so tests share one.
func newTestMNIST(t *testing.T) *MNIST {
	t.Helper()
	mnistOnce.Do(func() { mnistInst = NewMNIST(10, 2026) })
	return mnistInst
}

// newTestYOLO returns a shared YOLO instance.
func newTestYOLO(t *testing.T) *YOLO {
	t.Helper()
	yoloOnce.Do(func() { yoloInst = NewYOLO(2026) })
	return yoloInst
}
