package kernels

import "mixedrel/internal/rng"

// This file procedurally renders handwritten-digit-like images. The
// paper classifies MNIST digits; the dataset itself is not available
// offline, so we substitute a deterministic generator that draws each
// digit as a seven-segment glyph with random position jitter, stroke
// thickness, per-pixel intensity variation, and background noise. The
// classes are visually distinct but noisy enough that classification is
// a real (if easy) task — which is all the criticality analysis needs:
// "did a fault flip the predicted class" is meaningful for any
// classifier that is confident on clean inputs.

// DigitSize is the square image edge length, matching MNIST's 28x28.
const DigitSize = 28

// segment bit masks: the classic seven segments.
const (
	segA = 1 << iota // top
	segB             // top right
	segC             // bottom right
	segD             // bottom
	segE             // bottom left
	segF             // top left
	segG             // middle
)

// digitSegments maps digit -> active segments.
var digitSegments = [10]int{
	segA | segB | segC | segD | segE | segF,        // 0
	segB | segC,                                    // 1
	segA | segB | segG | segE | segD,               // 2
	segA | segB | segG | segC | segD,               // 3
	segF | segG | segB | segC,                      // 4
	segA | segF | segG | segC | segD,               // 5
	segA | segF | segG | segE | segC | segD,        // 6
	segA | segB | segC,                             // 7
	segA | segB | segC | segD | segE | segF | segG, // 8
	segA | segB | segC | segD | segF | segG,        // 9
}

// RenderDigit draws digit d (0-9) into a DigitSize x DigitSize image
// with pixel values in [0, 1], using r for jitter and noise. It panics
// for an out-of-range digit.
func RenderDigit(d int, r *rng.Rand) []float64 {
	if d < 0 || d > 9 {
		panic("kernels: digit out of range")
	}
	img := make([]float64, DigitSize*DigitSize)

	// Glyph box with jitter: roughly 12 wide x 18 tall, offset by up to
	// +-2 pixels.
	ox := 8 + r.Intn(5) - 2
	oy := 5 + r.Intn(5) - 2
	gw, gh := 12, 18
	th := 2 + r.Intn(2) // stroke thickness 2-3

	fill := func(x0, y0, x1, y1 int) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				if x >= 0 && x < DigitSize && y >= 0 && y < DigitSize {
					// Ink intensity varies per pixel.
					img[y*DigitSize+x] = 0.75 + 0.25*r.Float64()
				}
			}
		}
	}

	segs := digitSegments[d]
	mid := oy + gh/2
	if segs&segA != 0 {
		fill(ox, oy, ox+gw, oy+th)
	}
	if segs&segD != 0 {
		fill(ox, oy+gh-th, ox+gw, oy+gh)
	}
	if segs&segG != 0 {
		fill(ox, mid-th/2, ox+gw, mid-th/2+th)
	}
	if segs&segF != 0 {
		fill(ox, oy, ox+th, mid)
	}
	if segs&segB != 0 {
		fill(ox+gw-th, oy, ox+gw, mid)
	}
	if segs&segE != 0 {
		fill(ox, mid, ox+th, oy+gh)
	}
	if segs&segC != 0 {
		fill(ox+gw-th, mid, ox+gw, oy+gh)
	}

	// Background noise and slight blur-like speckle.
	for i := range img {
		img[i] += 0.05 * r.Float64()
		if img[i] > 1 {
			img[i] = 1
		}
	}
	return img
}

// DigitSet is a labeled collection of rendered digits.
type DigitSet struct {
	Images [][]float64
	Labels []int
}

// NewDigitSet renders perClass examples of each digit 0-9,
// deterministically from seed.
func NewDigitSet(perClass int, seed uint64) *DigitSet {
	r := rng.New(seed)
	s := &DigitSet{}
	for d := 0; d < 10; d++ {
		for i := 0; i < perClass; i++ {
			s.Images = append(s.Images, RenderDigit(d, r))
			s.Labels = append(s.Labels, d)
		}
	}
	return s
}

// Len returns the number of examples.
func (s *DigitSet) Len() int { return len(s.Images) }
