package kernels

// This file implements full backpropagation training for the MNIST
// network — stochastic gradient descent with momentum through both
// convolution layers, the average pools, the ReLUs and the dense
// readout. Training runs once, in float64, exactly like the paper's
// setup (the network is trained in one precision and the weights are
// converted to the others without retraining). All of it is
// training-time machinery: the reliability campaigns only ever exercise
// the precision-generic forward path.

// convGrads accumulates parameter gradients for a convLayer.
type convGrads struct {
	weight []float64
	bias   []float64
}

func newConvGrads(l *convLayer) *convGrads {
	return &convGrads{
		weight: make([]float64, len(l.weight)),
		bias:   make([]float64, len(l.bias)),
	}
}

func (g *convGrads) zero() {
	for i := range g.weight {
		g.weight[i] = 0
	}
	for i := range g.bias {
		g.bias[i] = 0
	}
}

// convBackward accumulates dL/dW and dL/db for layer l given the input
// activation and the output gradient, and returns dL/dInput (nil when
// wantInputGrad is false — the first layer needs no input gradient).
func convBackward(l *convLayer, in []float64, h, w int, gradOut []float64, g *convGrads, wantInputGrad bool) []float64 {
	oh, ow := l.outShape(h, w)
	k := l.k
	var gradIn []float64
	if wantInputGrad {
		gradIn = make([]float64, l.inC*h*w)
	}
	for oc := 0; oc < l.outC; oc++ {
		wBase := oc * l.inC * k * k
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				d := gradOut[(oc*oh+y)*ow+x]
				if d == 0 {
					continue
				}
				g.bias[oc] += d
				for ic := 0; ic < l.inC; ic++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							inIdx := (ic*h+y+ky)*w + x + kx
							g.weight[wBase+(ic*k+ky)*k+kx] += d * in[inIdx]
							if wantInputGrad {
								gradIn[inIdx] += d * l.weight[wBase+(ic*k+ky)*k+kx]
							}
						}
					}
				}
			}
		}
	}
	return gradIn
}

// avgPoolBackward spreads the pooled gradient evenly over each 2x2
// window.
func avgPoolBackward(gradOut []float64, c, h, w int) []float64 {
	oh, ow := h/2, w/2
	gradIn := make([]float64, c*h*w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				d := gradOut[(ch*oh+y)*ow+x] * 0.25
				gradIn[(ch*h+2*y)*w+2*x] = d
				gradIn[(ch*h+2*y)*w+2*x+1] = d
				gradIn[(ch*h+2*y+1)*w+2*x] = d
				gradIn[(ch*h+2*y+1)*w+2*x+1] = d
			}
		}
	}
	return gradIn
}

// reluBackward zeroes gradients where the pre-activation was clipped.
func reluBackward(grad, pre []float64) {
	for i, p := range pre {
		if p <= 0 {
			grad[i] = 0
		}
	}
}

// fwdState keeps the activations one backward pass needs.
type fwdState struct {
	c1Pre, c1Post, p1 []float64 // conv1 pre-ReLU, post-ReLU, pooled
	c2Pre, c2Post, p2 []float64
	probs             []float64
	h1, w1, ph1, pw1  int
	h2, w2            int
}

// forwardTrain runs the float64 forward pass keeping intermediates.
func (m *MNIST) forwardTrain(img []float64) *fwdState {
	s := &fwdState{}
	s.c1Pre, s.h1, s.w1 = m.conv1.forward64(img, DigitSize, DigitSize)
	s.c1Post = append([]float64(nil), s.c1Pre...)
	relu64(s.c1Post)
	s.p1, s.ph1, s.pw1 = avgPool2x64(s.c1Post, m.conv1.outC, s.h1, s.w1)
	s.c2Pre, s.h2, s.w2 = m.conv2.forward64(s.p1, s.ph1, s.pw1)
	s.c2Post = append([]float64(nil), s.c2Pre...)
	relu64(s.c2Post)
	var ph2, pw2 int
	s.p2, ph2, pw2 = avgPool2x64(s.c2Post, m.conv2.outC, s.h2, s.w2)
	_ = ph2
	_ = pw2
	s.probs = softmax64(m.fc.forward64(s.p2))
	return s
}

// trainFull runs minibatch SGD with momentum through the whole network.
func (m *MNIST) trainFull(set *DigitSet, epochs int, lr, momentum float64, batch int, shuffleSeed uint64) {
	n := set.Len()
	g1 := newConvGrads(m.conv1)
	g2 := newConvGrads(m.conv2)
	gw := make([]float64, len(m.fc.weight))
	gb := make([]float64, len(m.fc.bias))
	v1 := newConvGrads(m.conv1)
	v2 := newConvGrads(m.conv2)
	vw := make([]float64, len(m.fc.weight))
	vb := make([]float64, len(m.fc.bias))

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	shuffler := newShuffler(shuffleSeed)

	for e := 0; e < epochs; e++ {
		shuffler(order)
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			g1.zero()
			g2.zero()
			for i := range gw {
				gw[i] = 0
			}
			for i := range gb {
				gb[i] = 0
			}
			for _, idx := range order[start:end] {
				img := set.Images[idx]
				st := m.forwardTrain(img)

				// Softmax cross-entropy gradient on logits.
				dLogits := append([]float64(nil), st.probs...)
				dLogits[set.Labels[idx]] -= 1

				// Dense layer.
				dFeats := make([]float64, m.fc.in)
				for o := 0; o < m.fc.out; o++ {
					base := o * m.fc.in
					gb[o] += dLogits[o]
					for i := 0; i < m.fc.in; i++ {
						gw[base+i] += dLogits[o] * st.p2[i]
						dFeats[i] += dLogits[o] * m.fc.weight[base+i]
					}
				}

				// Pool2 / ReLU2 / conv2.
				dC2 := avgPoolBackward(dFeats, m.conv2.outC, st.h2, st.w2)
				reluBackward(dC2, st.c2Pre)
				dP1 := convBackward(m.conv2, st.p1, st.ph1, st.pw1, dC2, g2, true)

				// Pool1 / ReLU1 / conv1.
				dC1 := avgPoolBackward(dP1, m.conv1.outC, st.h1, st.w1)
				reluBackward(dC1, st.c1Pre)
				convBackward(m.conv1, img, DigitSize, DigitSize, dC1, g1, false)
			}

			scale := lr / float64(end-start)
			sgdStep(m.conv1.weight, g1.weight, v1.weight, scale, momentum)
			sgdStep(m.conv1.bias, g1.bias, v1.bias, scale, momentum)
			sgdStep(m.conv2.weight, g2.weight, v2.weight, scale, momentum)
			sgdStep(m.conv2.bias, g2.bias, v2.bias, scale, momentum)
			sgdStep(m.fc.weight, gw, vw, scale, momentum)
			sgdStep(m.fc.bias, gb, vb, scale, momentum)
		}
	}
}

// sgdStep applies one momentum-SGD update in place.
func sgdStep(params, grads, velocity []float64, scale, momentum float64) {
	for i := range params {
		velocity[i] = momentum*velocity[i] - scale*grads[i]
		params[i] += velocity[i]
	}
}

// newShuffler returns a deterministic in-place permutation function.
func newShuffler(seed uint64) func([]int) {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return func(order []int) {
		for i := len(order) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
	}
}
