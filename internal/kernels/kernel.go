// Package kernels implements the paper's six workloads as
// precision-generic computations over an fp.Env:
//
//   - GEMM (the paper's MxM): dense matrix multiply, FMA-dominated
//   - LavaMD: particle-potential kernel (dot products + exp), from Rodinia
//   - LUD: LU decomposition of a diagonally dominant system, from Rodinia
//   - Micro-{ADD,MUL,FMA}: register-resident synthetic op chains
//   - MNIST: a small CNN classifier on procedurally generated digits
//   - YOLO-lite: a YOLO-style convolutional object detector on synthetic
//     scenes
//
// A Kernel carries its own deterministic inputs (generated from a seed at
// construction) and executes entirely through the fp.Env handed to Run,
// so the same kernel code produces the golden output, the op-count
// profile, and — when the Env is an injecting wrapper — the faulty
// output.
package kernels

import (
	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// Kernel is a precision-generic workload.
type Kernel interface {
	// Name returns the workload's short name as used in the paper
	// (e.g. "MxM", "LavaMD").
	Name() string
	// Key returns a string that uniquely identifies this kernel
	// instance's computation — name, shape parameters, and input seed —
	// so fault-free artifacts (goldens, profiles) can be memoized per
	// process. Two kernels with equal keys must produce identical
	// Inputs and Run behavior. An empty key opts the instance out of
	// caching (constructed-by-literal instances without a key are
	// simply recomputed every time).
	Key() string
	// Inputs returns a fresh, caller-owned copy of the kernel's input
	// arrays encoded in format f. Fault injectors may mutate the copy
	// before passing it to Run.
	Inputs(f fp.Format) [][]fp.Bits
	// Run executes the kernel through env on the given inputs and
	// returns its outputs encoded in env's format. Run must not retain
	// or mutate in beyond the call.
	//
	// Run may be aborted mid-flight by a panic from the environment:
	// injecting envs raise emulated crashes/hangs (control-state
	// faults, watchdog, FP traps — see internal/inject), and campaign
	// runners recover them in the execution engine (exec.Guard).
	// Kernels must never recover() themselves — a kernel that swallows
	// the abort would corrupt DUE classification (enforced by the
	// panicsafety analyzer).
	Run(env fp.Env, in [][]fp.Bits) []fp.Bits
}

// OutputKernel is implemented by kernels whose Run can write its output
// into a caller-provided buffer, letting campaign runners reuse one
// output slice across thousands of faulty runs. RunInto behaves exactly
// like Run but writes into out when cap(out) suffices (allocating
// otherwise) and returns the slice actually used; Run(env, in) must be
// equivalent to RunInto(env, in, nil).
type OutputKernel interface {
	Kernel
	RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits
}

// ensureBits returns out resized to n elements, reallocating only when
// the capacity is insufficient. The contents are unspecified.
func ensureBits(out []fp.Bits, n int) []fp.Bits {
	if cap(out) < n {
		return make([]fp.Bits, n)
	}
	return out[:n]
}

// encode converts a float64 slice into format f.
func encode(f fp.Format, xs []float64) []fp.Bits {
	out := make([]fp.Bits, len(xs))
	fp.FromFloat64N(f, out, xs)
	return out
}

// Decode converts raw outputs in format f to float64 for comparison.
func Decode(f fp.Format, bs []fp.Bits) []float64 {
	out := make([]float64, len(bs))
	fp.ToFloat64N(f, out, bs)
	return out
}

// Golden runs k fault-free in format f and returns its output.
func Golden(k Kernel, f fp.Format) []fp.Bits {
	return GoldenWith(k, f, nil)
}

// GoldenWith runs k fault-free in format f with an environment
// transform (e.g. a platform's software exp) applied above the machine.
func GoldenWith(k Kernel, f fp.Format, wrap func(fp.Env) fp.Env) []fp.Bits {
	var env fp.Env = fp.NewMachine(f)
	if wrap != nil {
		env = wrap(env)
	}
	return k.Run(env, k.Inputs(f))
}

// Profile runs k fault-free in format f and returns its dynamic
// operation counts (with Loads/Stores set from the input/output sizes).
func Profile(k Kernel, f fp.Format) fp.OpCounts {
	return ProfileWith(k, f, nil)
}

// ProfileWith profiles k with an environment transform applied above
// the counting layer, so decomposed operations (software
// transcendentals) are counted individually.
func ProfileWith(k Kernel, f fp.Format, wrap func(fp.Env) fp.Env) fp.OpCounts {
	counting := fp.NewCounting(fp.NewMachine(f))
	var env fp.Env = counting
	if wrap != nil {
		env = wrap(env)
	}
	in := k.Inputs(f)
	out := k.Run(env, in)
	for _, arr := range in {
		counting.Counts.Loads += uint64(len(arr))
	}
	counting.Counts.Stores += uint64(len(out))
	return counting.Counts
}

// uniform fills a slice with uniform values in [lo, hi).
func uniform(r *rng.Rand, n int, lo, hi float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*r.Float64()
	}
	return xs
}
