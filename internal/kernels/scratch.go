package kernels

import (
	"sync"

	"mixedrel/internal/fp"
)

// scratchBuf boxes a pooled scratch slice behind a pointer so that
// returning it to the pool does not allocate an interface header.
type scratchBuf struct{ s []fp.Bits }

var bitsPool = sync.Pool{New: func() any { return new(scratchBuf) }}

// getBuf returns a pooled scratch buffer whose slice has length n and
// unspecified contents. Return it with putBuf when done; the slice must
// not be retained past that point.
func getBuf(n int) *scratchBuf {
	b := bitsPool.Get().(*scratchBuf)
	if cap(b.s) < n {
		b.s = make([]fp.Bits, n)
	}
	b.s = b.s[:n]
	return b
}

func putBuf(b *scratchBuf) { bitsPool.Put(b) }
