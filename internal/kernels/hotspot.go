package kernels

import (
	"fmt"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// Hotspot is the Rodinia thermal-simulation kernel: an iterative 2D
// stencil that evolves a chip's temperature grid under a power map. The
// paper's group uses it throughout their GPU reliability studies (it
// appears in the DSN'18 code-dependence paper the discussion cites), and
// it complements the shipped set with a memory-coupled, ADD-dominated
// stencil — the opposite corner of the design space from the
// FMA-dominated GEMM.
//
// Per step, for every interior cell:
//
//	T'[r][c] = T[r][c] + k * (power[r][c]
//	          + (T[r+1][c] + T[r-1][c] - 2 T[r][c]) * Ry
//	          + (T[r][c+1] + T[r][c-1] - 2 T[r][c]) * Rx
//	          + (Tamb - T[r][c]) * Rz)
//
// Border cells stay at their initial (ambient boundary) temperature.
type Hotspot struct {
	n     int // grid edge
	steps int
	temp  []float64
	power []float64
	key   string
}

// Stencil coefficients (Rodinia's defaults, scaled to keep half-range).
const (
	hotspotK    = 0.0625
	hotspotRx   = 0.25
	hotspotRy   = 0.25
	hotspotRz   = 0.0625
	hotspotTamb = 80.0
)

// NewHotspot creates an n x n grid evolved for steps iterations with
// deterministic initial temperature and power maps. It panics for
// non-positive shape parameters.
func NewHotspot(n, steps int, seed uint64) *Hotspot {
	if n < 3 || steps <= 0 {
		panic(fmt.Sprintf("kernels: Hotspot shape %dx%d", n, steps))
	}
	r := rng.New(seed)
	h := &Hotspot{
		n:     n,
		steps: steps,
		temp:  uniform(r, n*n, 70, 90),
		power: uniform(r, n*n, 0, 2),
		key:   fmt.Sprintf("hotspot/n%d/t%d/s%d", n, steps, seed),
	}
	return h
}

// Name implements Kernel.
func (h *Hotspot) Name() string { return "Hotspot" }

// Key implements Kernel.
func (h *Hotspot) Key() string { return h.key }

// N returns the grid edge length.
func (h *Hotspot) N() int { return h.n }

// Steps returns the iteration count.
func (h *Hotspot) Steps() int { return h.steps }

// Inputs implements Kernel: element 0 is the initial temperature grid,
// element 1 the power map.
func (h *Hotspot) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, h.temp), encode(f, h.power)}
}

// Run implements Kernel: the output is the final temperature grid.
func (h *Hotspot) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return h.RunInto(env, in, nil)
}

// RunInto implements OutputKernel. The double-buffered grids come from
// the scratch pool; only the final copy touches out.
func (h *Hotspot) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	n := h.n
	buf := getBuf(2 * n * n)
	defer putBuf(buf)
	cur := buf.s[:n*n]
	copy(cur, in[0])
	next := buf.s[n*n:]
	copy(next, in[0]) // borders keep their boundary temperature
	power := in[1]

	k := env.FromFloat64(hotspotK)
	rx := env.FromFloat64(hotspotRx)
	ry := env.FromFloat64(hotspotRy)
	rz := env.FromFloat64(hotspotRz)
	tamb := env.FromFloat64(hotspotTamb)
	negTwo := env.FromFloat64(-2)

	// Every cell's update is one dependent chain mixing Add/Sub/FMA over
	// five neighbours; batching across cells would reorder the op stream.
	//mixedrelvet:allow batchops dependent per-cell stencil chain
	for s := 0; s < h.steps; s++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				t := cur[r*n+c]
				// Vertical and horizontal second differences.
				dv := env.Add(cur[(r+1)*n+c], cur[(r-1)*n+c])
				dv = env.FMA(negTwo, t, dv)
				dh := env.Add(cur[r*n+c+1], cur[r*n+c-1])
				dh = env.FMA(negTwo, t, dh)
				acc := power[r*n+c]
				acc = env.FMA(dv, ry, acc)
				acc = env.FMA(dh, rx, acc)
				acc = env.FMA(env.Sub(tamb, t), rz, acc)
				next[r*n+c] = env.FMA(k, acc, t)
			}
		}
		cur, next = next, cur
	}
	res := ensureBits(out, n*n)
	copy(res, cur)
	return res
}
