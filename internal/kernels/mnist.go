package kernels

import (
	"fmt"
	"math"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// MNIST is the paper's small LeNet-like CNN classifier. Topology:
//
//	input 1x28x28
//	conv 5x5, 4 filters  -> 4x24x24, ReLU
//	avgpool 2x2          -> 4x12x12
//	conv 5x5, 8 filters  -> 8x8x8,   ReLU
//	avgpool 2x2          -> 8x4x4 = 128
//	dense 128 -> 10, softmax
//
// Following the paper, the network is trained once (in float64, playing
// the role of the paper's single-precision training) and the same
// weights are converted to every precision without retraining. Training
// runs on procedurally rendered digits (see digits.go): a fast
// softmax-regression warm start of the readout, then full
// backpropagation through both convolutions (see train.go), reaching
// ~98% accuracy on held-out renders.
//
// One execution classifies a batch of test images; the output vector is
// the concatenated per-image softmax probabilities (Batch x 10), which is
// what the golden comparison and the classification-criticality analysis
// consume.
type MNIST struct {
	Batch  int
	conv1  *convLayer
	conv2  *convLayer
	fc     *denseLayer
	test   *DigitSet
	labels []int
	acc    float64
	key    string
}

// NewMNIST builds and trains the classifier and prepares a deterministic
// test batch of the given size. It panics if batch <= 0.
func NewMNIST(batch int, seed uint64) *MNIST {
	if batch <= 0 {
		panic(fmt.Sprintf("kernels: MNIST batch %d", batch))
	}
	r := rng.New(seed)
	m := &MNIST{
		Batch: batch,
		conv1: newConvLayer(1, 4, 5, r),
		conv2: newConvLayer(4, 8, 5, r),
		fc:    newDenseLayer(128, 10, r),
	}

	train := NewDigitSet(30, r.Uint64())
	holdout := NewDigitSet(10, r.Uint64())
	// Warm-start the readout on the initial random features, then
	// fine-tune the whole network with backpropagation (see train.go).
	m.trainReadout(train)
	m.trainFull(train, 6, 0.001, 0.9, 10, r.Uint64())
	m.acc = m.accuracy64(holdout)

	m.test = NewDigitSet((batch+9)/10, r.Uint64())
	m.test.Images = m.test.Images[:batch]
	m.labels = m.test.Labels[:batch]
	m.key = fmt.Sprintf("mnist/b%d/s%d", batch, seed)
	return m
}

// Name implements Kernel.
func (m *MNIST) Name() string { return "MNIST" }

// Key implements Kernel.
func (m *MNIST) Key() string { return m.key }

// CleanAccuracy returns the fault-free float64 accuracy on a held-out
// render set.
func (m *MNIST) CleanAccuracy() float64 { return m.acc }

// Labels returns the true labels of the test batch.
func (m *MNIST) Labels() []int { return m.labels }

// features64 runs the fixed convolutional stack in float64.
func (m *MNIST) features64(img []float64) []float64 {
	x, h, w := m.conv1.forward64(img, DigitSize, DigitSize)
	relu64(x)
	x, h, w = avgPool2x64(x, m.conv1.outC, h, w)
	x, h, w = m.conv2.forward64(x, h, w)
	relu64(x)
	x, _, _ = avgPool2x64(x, m.conv2.outC, h, w)
	return x
}

// trainReadout fits the dense layer with full-batch softmax-regression
// gradient descent on the frozen convolutional features. Features are
// standardized for training and the standardization affine is folded
// back into the dense weights afterwards, so the inference path stays a
// plain dense layer.
func (m *MNIST) trainReadout(set *DigitSet) {
	n := set.Len()
	feats := make([][]float64, n)
	for i, img := range set.Images {
		feats[i] = m.features64(img)
	}
	nf := m.fc.in
	mu := make([]float64, nf)
	sigma := make([]float64, nf)
	for _, f := range feats {
		for i, v := range f {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(n)
	}
	for _, f := range feats {
		for i, v := range f {
			sigma[i] += (v - mu[i]) * (v - mu[i])
		}
	}
	for i := range sigma {
		sigma[i] = math.Sqrt(sigma[i]/float64(n)) + 1e-6
	}
	for _, f := range feats {
		for i := range f {
			f[i] = (f[i] - mu[i]) / sigma[i]
		}
	}
	const (
		iters = 600
		lr    = 0.5
	)
	w, b := m.fc.weight, m.fc.bias
	gw := make([]float64, len(w))
	gb := make([]float64, len(b))
	for it := 0; it < iters; it++ {
		for i := range gw {
			gw[i] = 0
		}
		for i := range gb {
			gb[i] = 0
		}
		for s := 0; s < n; s++ {
			p := softmax64(m.fc.forward64(feats[s]))
			for o := 0; o < 10; o++ {
				d := p[o]
				if o == set.Labels[s] {
					d -= 1
				}
				gb[o] += d
				base := o * m.fc.in
				for i, f := range feats[s] {
					gw[base+i] += d * f
				}
			}
		}
		inv := lr / float64(n)
		for i := range w {
			w[i] -= inv * gw[i]
		}
		for i := range b {
			b[i] -= inv * gb[i]
		}
	}
	// Fold the standardization into the layer:
	// W((f-mu)/sigma)+b == (W/sigma)f + (b - W mu/sigma).
	for o := 0; o < m.fc.out; o++ {
		base := o * nf
		for i := 0; i < nf; i++ {
			w[base+i] /= sigma[i]
			b[o] -= w[base+i] * mu[i]
		}
	}
}

// accuracy64 evaluates clean float64 accuracy on a digit set.
func (m *MNIST) accuracy64(set *DigitSet) float64 {
	correct := 0
	for i, img := range set.Images {
		p := softmax64(m.fc.forward64(m.features64(img)))
		if Argmax(p) == set.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(set.Len())
}

// Inputs implements Kernel. Element 0 is the concatenated test batch
// (Batch x 784); elements 1..6 are the network parameters (conv1 w/b,
// conv2 w/b, fc w/b), so memory-fault injection covers weights exactly
// as CAROL-FI's random-variable flips do.
func (m *MNIST) Inputs(f fp.Format) [][]fp.Bits {
	imgs := make([]float64, 0, m.Batch*DigitSize*DigitSize)
	for _, img := range m.test.Images {
		imgs = append(imgs, img...)
	}
	w1, b1 := m.conv1.encodeParams(f)
	w2, b2 := m.conv2.encodeParams(f)
	wf, bf := m.fc.encodeParams(f)
	return [][]fp.Bits{encode(f, imgs), w1, b1, w2, b2, wf, bf}
}

// Run implements Kernel: output is Batch x 10 softmax probabilities.
func (m *MNIST) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	imgs, w1, b1, w2, b2, wf, bf := in[0], in[1], in[2], in[3], in[4], in[5], in[6]
	out := make([]fp.Bits, 0, m.Batch*10)
	px := DigitSize * DigitSize
	for bIdx := 0; bIdx < m.Batch; bIdx++ {
		t := tensor{c: 1, h: DigitSize, w: DigitSize,
			data: imgs[bIdx*px : (bIdx+1)*px]}
		x := m.conv1.forward(env, t, w1, b1)
		reluT(env, x)
		x = avgPool2(env, x)
		x = m.conv2.forward(env, x, w2, b2)
		reluT(env, x)
		x = avgPool2(env, x)
		logits := m.fc.forward(env, x.data, wf, bf)
		out = append(out, softmaxT(env, logits)...)
	}
	return out
}

// Classify decodes a Run output into one predicted class per image.
func (m *MNIST) Classify(out []float64) []int {
	preds := make([]int, m.Batch)
	for i := 0; i < m.Batch; i++ {
		preds[i] = Argmax(out[i*10 : (i+1)*10])
	}
	return preds
}
