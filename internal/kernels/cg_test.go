package kernels

import (
	"testing"

	"mixedrel/internal/fp"
)

func TestCGSolvesSystem(t *testing.T) {
	c := NewCG(16, 16, 3)
	x := Decode(fp.Double, Golden(c, fp.Double))
	// After n iterations CG is (in exact arithmetic) the direct answer;
	// in float64 the residual should be tiny relative to ||b|| ~ 3.
	if res := c.Residual(x); res > 1e-8 {
		t.Errorf("residual %v after full CG", res)
	}
}

func TestCGMatrixSymmetricPositive(t *testing.T) {
	c := NewCG(12, 4, 5)
	n := c.n
	for i := 0; i < n; i++ {
		if c.a[i*n+i] <= 0 {
			t.Fatalf("non-positive diagonal at %d", i)
		}
		for j := 0; j < n; j++ {
			if c.a[i*n+j] != c.a[j*n+i] {
				t.Fatalf("asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestCGConvergesWithIterations(t *testing.T) {
	few := NewCG(16, 2, 7)
	many := NewCG(16, 12, 7)
	rFew := few.Residual(Decode(fp.Double, Golden(few, fp.Double)))
	rMany := many.Residual(Decode(fp.Double, Golden(many, fp.Double)))
	if !(rMany < rFew) {
		t.Errorf("more iterations did not reduce the residual: %v vs %v", rFew, rMany)
	}
}

func TestCGPrecisionLimitsConvergence(t *testing.T) {
	c := NewCG(12, 12, 9)
	rd := c.Residual(Decode(fp.Double, Golden(c, fp.Double)))
	rh := c.Residual(Decode(fp.Half, Golden(c, fp.Half)))
	if !(rd < rh) {
		t.Errorf("half residual %v not above double %v", rh, rd)
	}
}

// The algorithmic-masking property: a fault injected in an EARLY
// iteration is substantially absorbed by later convergence, while the
// same fault in the LAST iteration survives to the output.
func TestCGAbsorbsEarlyFaults(t *testing.T) {
	c := NewCG(16, 16, 11)
	f := fp.Double
	golden := Golden(c, f)
	goldenRes := c.Residual(Decode(f, golden))
	total := Profile(c, f).Total()

	residualWithFaultAt := func(idx uint64) float64 {
		env := fp.NewMachine(f)
		in := c.Inputs(f)
		// Flip a high mantissa bit of one operation's result.
		faulty := c.Run(&singleFaultEnv{Env: env, idx: idx, bit: 50}, in)
		return c.Residual(Decode(f, faulty))
	}
	// A fault at 40% of the run leaves ~9 iterations of convergence to
	// absorb it; a fault at 99% lands in the final x update and
	// survives to the output.
	early := residualWithFaultAt(total * 2 / 5)
	late := residualWithFaultAt(total * 99 / 100)
	if !(early < late/100) {
		t.Errorf("early fault residual %v not well below late %v (golden %v)",
			early, late, goldenRes)
	}
}

// singleFaultEnv flips a bit of operation #idx's result (a minimal local
// injector to avoid an import cycle with internal/inject).
type singleFaultEnv struct {
	fp.Env
	ctr, idx uint64
	bit      int
}

func (e *singleFaultEnv) maybe(b fp.Bits) fp.Bits {
	if e.ctr == e.idx {
		b = e.Env.Format().FlipBit(b, e.bit)
	}
	e.ctr++
	return b
}

func (e *singleFaultEnv) Add(a, b fp.Bits) fp.Bits { return e.maybe(e.Env.Add(a, b)) }
func (e *singleFaultEnv) Sub(a, b fp.Bits) fp.Bits { return e.maybe(e.Env.Sub(a, b)) }
func (e *singleFaultEnv) Mul(a, b fp.Bits) fp.Bits { return e.maybe(e.Env.Mul(a, b)) }
func (e *singleFaultEnv) Div(a, b fp.Bits) fp.Bits { return e.maybe(e.Env.Div(a, b)) }
func (e *singleFaultEnv) Sqrt(a fp.Bits) fp.Bits   { return e.maybe(e.Env.Sqrt(a)) }
func (e *singleFaultEnv) Exp(a fp.Bits) fp.Bits    { return e.maybe(e.Env.Exp(a)) }
func (e *singleFaultEnv) FMA(a, b, c fp.Bits) fp.Bits {
	return e.maybe(e.Env.FMA(a, b, c))
}

func TestCGPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCG(0, 1) did not panic")
		}
	}()
	NewCG(0, 1, 1)
}
