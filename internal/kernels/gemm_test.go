package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

func TestGEMMMatchesFloat64Reference(t *testing.T) {
	g := NewGEMM(12, 1)
	out := Decode(fp.Double, Golden(g, fp.Double))
	n := g.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want = math.FMA(g.a[i*n+k], g.b[k*n+j], want)
			}
			if got := out[i*n+j]; got != want {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestGEMMDeterministic(t *testing.T) {
	a := NewGEMM(8, 42)
	b := NewGEMM(8, 42)
	for _, f := range fp.Formats {
		ga, gb := Golden(a, f), Golden(b, f)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("%v: outputs differ at %d", f, i)
			}
		}
	}
}

func TestGEMMSeedsDiffer(t *testing.T) {
	a, b := NewGEMM(8, 1), NewGEMM(8, 2)
	ga, gb := Golden(a, fp.Double), Golden(b, fp.Double)
	same := true
	for i := range ga {
		if ga[i] != gb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical outputs")
	}
}

func TestGEMMPrecisionAccuracyOrdering(t *testing.T) {
	g := NewGEMM(24, 7)
	ref := Decode(fp.Double, Golden(g, fp.Double))
	errHalf := fp.MaxRelErr(ref, Decode(fp.Half, Golden(g, fp.Half)))
	errSingle := fp.MaxRelErr(ref, Decode(fp.Single, Golden(g, fp.Single)))
	if !(errHalf > errSingle) {
		t.Errorf("half error %v not worse than single %v", errHalf, errSingle)
	}
	// Converting to lower precision costs < 2% accuracy for these sizes,
	// matching the paper's observation (Section 3.2: TRE < 2% without
	// faults when lowering precision).
	if errHalf > 0.02 {
		t.Errorf("half-precision drift %v exceeds the paper's 2%% bound", errHalf)
	}
}

func TestGEMMRunDoesNotMutateInputs(t *testing.T) {
	g := NewGEMM(6, 3)
	in := g.Inputs(fp.Single)
	snapshot := append([]fp.Bits(nil), in[0]...)
	g.Run(fp.NewMachine(fp.Single), in)
	for i := range snapshot {
		if in[0][i] != snapshot[i] {
			t.Fatal("Run mutated its input")
		}
	}
}

func TestGEMMProfileIsFMAOnly(t *testing.T) {
	g := NewGEMM(10, 5)
	p := Profile(g, fp.Single)
	if p.ByOp[fp.OpFMA] != 1000 {
		t.Errorf("FMA count = %d, want 1000", p.ByOp[fp.OpFMA])
	}
	if p.Total() != p.ByOp[fp.OpFMA] {
		t.Errorf("GEMM should be pure FMA, got %+v", p.ByOp)
	}
	if p.Loads != 200 || p.Stores != 100 {
		t.Errorf("loads/stores = %d/%d, want 200/100", p.Loads, p.Stores)
	}
}

func TestGEMMPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGEMM(0) did not panic")
		}
	}()
	NewGEMM(0, 1)
}
