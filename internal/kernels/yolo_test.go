package kernels

import (
	"math"
	"testing"

	"mixedrel/internal/fp"
)

func TestYOLOGoldenDetections(t *testing.T) {
	y := newTestYOLO(t)
	for _, f := range fp.Formats {
		head := Decode(f, Golden(y, f))
		if len(head) != yoloHeadChannels*YOLOGrid*YOLOGrid {
			t.Fatalf("%v: head length %d", f, len(head))
		}
		dets := y.Detections(head)
		if len(dets) == 0 {
			t.Fatalf("%v: no golden detections — threshold calibration broken", f)
		}
		for _, d := range dets {
			if d.X < 0 || d.X > 1 || d.Y < 0 || d.Y > 1 ||
				d.W < 0 || d.W > 1 || d.H < 0 || d.H > 1 {
				t.Errorf("%v: box out of unit square: %+v", f, d)
			}
			if d.Score < y.threshold {
				t.Errorf("%v: kept detection below threshold: %+v", f, d)
			}
			if d.Class < 0 || d.Class >= y.numClasses {
				t.Errorf("%v: class out of range: %+v", f, d)
			}
		}
	}
}

func TestYOLODeterministic(t *testing.T) {
	a, b := NewYOLO(5), NewYOLO(5)
	ga, gb := Golden(a, fp.Single), Golden(b, fp.Single)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
	if a.threshold != b.threshold {
		t.Fatal("thresholds differ between identically seeded instances")
	}
}

func TestYOLONMSSuppressesOverlaps(t *testing.T) {
	y := newTestYOLO(t)
	dets := y.Detections(Decode(fp.Double, Golden(y, fp.Double)))
	for i := range dets {
		for j := i + 1; j < len(dets); j++ {
			if v := iou(dets[i], dets[j]); v > 0.5 {
				t.Errorf("detections %d and %d overlap with IoU %v after NMS", i, j, v)
			}
		}
	}
}

func TestIoU(t *testing.T) {
	a := Detection{X: 0.5, Y: 0.5, W: 0.2, H: 0.2}
	if v := iou(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("self IoU = %v", v)
	}
	b := Detection{X: 0.9, Y: 0.9, W: 0.1, H: 0.1}
	if v := iou(a, b); v != 0 {
		t.Errorf("disjoint IoU = %v", v)
	}
	// Half-overlapping equal boxes: intersection w/2*h, union 1.5*w*h.
	c := Detection{X: 0.6, Y: 0.5, W: 0.2, H: 0.2}
	if v := iou(a, c); math.Abs(v-1.0/3) > 1e-12 {
		t.Errorf("half-overlap IoU = %v, want 1/3", v)
	}
	// Degenerate zero-area boxes.
	z := Detection{X: 0.5, Y: 0.5}
	if v := iou(z, z); v != 0 {
		t.Errorf("zero-area IoU = %v", v)
	}
}

func TestCompareDetectionsTolerable(t *testing.T) {
	g := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Score: 0.9, Class: 1}}
	f := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Score: 0.8, Class: 1}}
	if got := CompareDetections(g, f); got != DetectionsTolerable {
		t.Errorf("score-only change classified as %v", got)
	}
}

func TestCompareDetectionsBoxMoved(t *testing.T) {
	g := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Class: 1}}
	f := []Detection{{X: 0.8, Y: 0.8, W: 0.2, H: 0.2, Class: 1}}
	if got := CompareDetections(g, f); got != DetectionChanged {
		t.Errorf("moved box classified as %v", got)
	}
}

func TestCompareDetectionsCountChanged(t *testing.T) {
	g := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Class: 1}}
	if got := CompareDetections(g, nil); got != DetectionChanged {
		t.Errorf("vanished box classified as %v", got)
	}
	if got := CompareDetections(nil, g); got != DetectionChanged {
		t.Errorf("phantom box classified as %v", got)
	}
}

func TestCompareDetectionsClassFlip(t *testing.T) {
	g := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Class: 1}}
	f := []Detection{{X: 0.5, Y: 0.5, W: 0.2, H: 0.2, Class: 2}}
	if got := CompareDetections(g, f); got != ClassificationChanged {
		t.Errorf("class flip classified as %v", got)
	}
	// Class flip dominates a simultaneous box change elsewhere.
	g2 := append(g, Detection{X: 0.1, Y: 0.1, W: 0.1, H: 0.1, Class: 0})
	if got := CompareDetections(g2, f); got != ClassificationChanged {
		t.Errorf("class flip + missing box classified as %v", got)
	}
}

func TestCompareDetectionsBothEmpty(t *testing.T) {
	if got := CompareDetections(nil, nil); got != DetectionsTolerable {
		t.Errorf("empty vs empty = %v", got)
	}
}

func TestDetectionOutcomeStrings(t *testing.T) {
	if DetectionsTolerable.String() != "tolerable" ||
		DetectionChanged.String() != "detection" ||
		ClassificationChanged.String() != "classification" {
		t.Error("unexpected outcome names")
	}
	if DetectionOutcome(9).String() != "outcome?" {
		t.Error("unknown outcome should stringify to outcome?")
	}
}

func TestYOLOHeadPanicsOnBadLength(t *testing.T) {
	y := newTestYOLO(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Detections on short head did not panic")
		}
	}()
	y.Detections(make([]float64, 3))
}

func TestYOLOCorruptedHeadChangesDetections(t *testing.T) {
	y := newTestYOLO(t)
	head := Decode(fp.Double, Golden(y, fp.Double))
	golden := y.Detections(head)
	// Push one golden cell's objectness strongly negative: its box
	// disappears.
	corrupted := append([]float64(nil), head...)
	found := false
	for cell := 0; cell < YOLOGrid*YOLOGrid; cell++ {
		if sigmoid64(corrupted[cell]) >= y.threshold {
			corrupted[cell] = -50
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no active cell to corrupt")
	}
	if got := CompareDetections(golden, y.Detections(corrupted)); got == DetectionsTolerable {
		t.Error("suppressing an active cell should not be tolerable")
	}
}
