package kernels

import (
	"fmt"
	"math"

	"mixedrel/internal/fp"
	"mixedrel/internal/rng"
)

// CG solves a dense symmetric positive-definite system A x = b with a
// fixed number of conjugate-gradient iterations. Iterative solvers are
// the classic counter-example to "every fault matters": a corrupted
// intermediate perturbs the search direction, and later iterations steer
// back toward the solution — soft errors are partially *absorbed* by
// convergence rather than propagated. The ext-solver experiment
// quantifies that against the direct solvers (LUD), extending the
// paper's masking discussion (Section 2.1) with an algorithmic masking
// mechanism.
//
// The matrix is generated as A = M^T M / n + I (symmetric positive
// definite, moderate condition number), b is dense, and the output is
// the iterate x after Iters steps.
type CG struct {
	n     int
	iters int
	a     []float64
	b     []float64
	key   string
}

// NewCG creates an n x n SPD system solved with iters CG steps.
// It panics for non-positive shape parameters.
func NewCG(n, iters int, seed uint64) *CG {
	if n <= 0 || iters <= 0 {
		panic(fmt.Sprintf("kernels: CG shape %dx%d", n, iters))
	}
	r := rng.New(seed)
	m := uniform(r, n*n, -1, 1)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[k*n+i] * m[k*n+j]
			}
			s /= float64(n)
			if i == j {
				s += 1
			}
			a[i*n+j] = s
			a[j*n+i] = s
		}
	}
	return &CG{n: n, iters: iters, a: a, b: uniform(r, n, 0.5, 1),
		key: fmt.Sprintf("cg/n%d/i%d/s%d", n, iters, seed)}
}

// Name implements Kernel.
func (c *CG) Name() string { return "CG" }

// Key implements Kernel.
func (c *CG) Key() string { return c.key }

// N returns the system dimension.
func (c *CG) N() int { return c.n }

// Iters returns the iteration count.
func (c *CG) Iters() int { return c.iters }

// Inputs implements Kernel: element 0 is A (row-major), element 1 is b.
func (c *CG) Inputs(f fp.Format) [][]fp.Bits {
	return [][]fp.Bits{encode(f, c.a), encode(f, c.b)}
}

// Run implements Kernel: textbook CG from x0 = 0, fixed iteration count
// (no convergence test — branches on corrupted data would make golden
// comparison ambiguous; the paper's codes likewise run fixed workloads).
func (c *CG) Run(env fp.Env, in [][]fp.Bits) []fp.Bits {
	return c.RunInto(env, in, nil)
}

// RunInto implements OutputKernel. Dot products and the matrix-vector
// product run as DotFMA chains (identical dynamic op order to the
// scalar loops they replace); the vector updates stay scalar because
// their interleaving carries semantic weight for fault indices.
func (c *CG) RunInto(env fp.Env, in [][]fp.Bits, out []fp.Bits) []fp.Bits {
	n := c.n
	a, b := in[0], in[1]
	zero := env.FromFloat64(0)
	negOne := env.FromFloat64(-1)

	x := ensureBits(out, n)
	buf := getBuf(3 * n)
	defer putBuf(buf)
	r := buf.s[:n]
	p := buf.s[n : 2*n]
	ap := buf.s[2*n : 3*n]
	for i := 0; i < n; i++ {
		x[i] = zero
		r[i] = b[i] // r = b - A*0
		p[i] = b[i]
	}

	rs := fp.DotFMA(env, zero, r, r)
	for it := 0; it < c.iters; it++ {
		// Standard exact-convergence exit: once the residual norm
		// underflows the format (routine in half precision), further
		// steps would divide zero by zero.
		if env.Format().IsZero(rs) {
			break
		}
		// ap = A p: n single-column chains against the shared vector p.
		fp.GemmFMA(env, ap, nil, a, p, n, 1, n)
		alpha := env.Div(rs, fp.DotFMA(env, zero, p, ap))
		//mixedrelvet:allow batchops one scalar per iteration, not an element-wise batch
		negAlpha := env.Mul(alpha, negOne)
		// x and r advance in lockstep (x[i] then r[i]); two AXPY calls
		// would reorder the dynamic op stream and move fault indices.
		//mixedrelvet:allow batchops interleaved x/r update must keep scalar op order
		for i := 0; i < n; i++ {
			x[i] = env.FMA(alpha, p[i], x[i])
			r[i] = env.FMA(negAlpha, ap[i], r[i])
		}
		rsNew := fp.DotFMA(env, zero, r, r)
		beta := env.Div(rsNew, rs)
		// p = beta*p + r broadcasts onto the multiply side of the FMA,
		// which no batch op expresses.
		//mixedrelvet:allow batchops broadcast-times-destination has no batch form
		for i := 0; i < n; i++ {
			p[i] = env.FMA(beta, p[i], r[i])
		}
		rs = rsNew
	}
	return x
}

// Residual returns the float64 residual norm ||A x - b|| of a decoded
// output, the solver-quality measure the absorption analysis uses.
func (c *CG) Residual(x []float64) float64 {
	n := c.n
	var sum float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += c.a[i*n+j] * x[j]
		}
		d := s - c.b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
