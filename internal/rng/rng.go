// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the simulator (beam
// strike sampling, fault-site selection, workload input generation).
//
// Reproducibility is a hard requirement for the experiment harness: a
// campaign seeded with the same 64-bit seed must produce bit-identical
// results on every platform. The generator is xoshiro256** seeded through
// splitmix64, following the reference constructions by Blackman and
// Vigna. Streams are splittable: Split derives an independent child
// stream, so concurrent campaign shards never share state.
package rng

import "math"

// Rand is a deterministic xoshiro256** stream. The zero value is not
// usable; construct streams with New or Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is
// used only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero outputs, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child stream. The child is seeded from the
// parent's output, so parent and child sequences are decorrelated and the
// parent advances by exactly one step.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Lemire's nearly-divisionless method with rejection keeps the result
// exactly uniform.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means
// it uses Knuth's product method; for large means a normal approximation
// with continuity correction, which is accurate to well under the
// statistical noise of any campaign at mean >= 64.
func (r *Rand) Poisson(mean float64) int64 {
	if mean < 0 || math.IsNaN(mean) {
		panic("rng: Poisson with negative or NaN mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 64 {
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := math.Round(mean + math.Sqrt(mean)*r.NormFloat64())
	if n < 0 {
		return 0
	}
	return int64(n)
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
