package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stream looks degenerate")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must differ from a fresh continuation of the parent.
	diverged := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("child stream tracks parent stream")
	}
}

// TestSplitStreamsAreIndependent guards the splittable-stream contract
// the determinism analyzer assumes: after Split, parent and child are
// fully decoupled, so the order in which the two streams are consumed —
// which under the parallel scheduler depends on worker count, not on
// interleaving — can never change either stream's outputs.
func TestSplitStreamsAreIndependent(t *testing.T) {
	const n = 512
	p1 := New(0xfeedface)
	c1 := p1.Split()
	p2 := New(0xfeedface)
	c2 := p2.Split()

	// Pair 1: drain the child in one burst, then the parent.
	cOut1 := make([]uint64, n)
	for i := range cOut1 {
		cOut1[i] = c1.Uint64()
	}
	pOut1 := make([]uint64, n)
	for i := range pOut1 {
		pOut1[i] = p1.Uint64()
	}
	// Pair 2: alternate parent and child draws.
	pOut2 := make([]uint64, n)
	cOut2 := make([]uint64, n)
	for i := 0; i < n; i++ {
		pOut2[i] = p2.Uint64()
		cOut2[i] = c2.Uint64()
	}

	for i := 0; i < n; i++ {
		if pOut1[i] != pOut2[i] {
			t.Fatalf("parent output %d depends on child consumption: %#x vs %#x", i, pOut1[i], pOut2[i])
		}
		if cOut1[i] != cOut2[i] {
			t.Fatalf("child output %d depends on parent consumption: %#x vs %#x", i, cOut1[i], cOut2[i])
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~1/12", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.NormFloat64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	r := New(23)
	const mean, n = 3.5, 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	if got := sum / n; math.Abs(got-mean) > 0.05 {
		t.Errorf("Poisson(%v) sample mean = %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := New(29)
	const mean, n = 500.0, 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	if got := sum / n; math.Abs(got-mean) > 2 {
		t.Errorf("Poisson(%v) sample mean = %v", mean, got)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(41)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: %v", s)
	}
}

// Property: Uint64n(n) < n for arbitrary nonzero n.
func TestUint64nPropertyBounded(t *testing.T) {
	r := New(43)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same seed, same k-th output, for arbitrary seeds.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(steps); i++ {
			a.Uint64()
			b.Uint64()
		}
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
