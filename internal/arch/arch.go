// Package arch defines the abstractions shared by the three device
// models (internal/fpga, internal/xeonphi, internal/gpu): sensitive
// resource accounting, compiled kernel mappings with analytic timing,
// and the device interface the beam and injection campaigns consume.
//
// The central quantity is the exposure of a mapping: for every class of
// hardware resource, the number of radiation-sensitive bits it keeps
// live during an execution, times a per-bit upset cross-section. Beam
// FIT is the product of exposure and the probability that a strike on
// that resource corrupts the output — the first factor comes from the
// device model, the second from actually executing the workload with an
// injected fault. This is exactly the decomposition the paper uses when
// it combines beam data (exposure x propagation) with fault-injection
// data (propagation only); see Section 3.3.
package arch

import (
	"fmt"
	"time"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

// ResourceClass identifies a kind of radiation-sensitive hardware.
type ResourceClass int

const (
	// ConfigMemory is FPGA configuration SRAM: faults are persistent —
	// the implemented circuit stays corrupted until reprogramming.
	ConfigMemory ResourceClass = iota
	// RegisterFile is architectural register state.
	RegisterFile
	// FunctionalUnit is datapath logic (adders, multipliers, FMA trees).
	FunctionalUnit
	// ControlLogic is schedulers, sequencers, and address paths; strikes
	// there cause DUEs (crashes/hangs) rather than data corruption.
	ControlLogic
	// MemorySRAM is on-chip data memory: caches, shared memory, BRAM.
	MemorySRAM
	numResourceClasses
)

// NumResourceClasses is the number of distinct resource classes.
const NumResourceClasses = int(numResourceClasses)

func (c ResourceClass) String() string {
	switch c {
	case ConfigMemory:
		return "config-memory"
	case RegisterFile:
		return "register-file"
	case FunctionalUnit:
		return "functional-unit"
	case ControlLogic:
		return "control-logic"
	case MemorySRAM:
		return "memory-sram"
	}
	return "resource?"
}

// Exposure is the sensitive-bit accounting for one resource class of one
// mapping.
type Exposure struct {
	Class ResourceClass
	// Bits is the time-averaged number of sensitive bits live during an
	// execution (fractional values arise from residency weighting).
	Bits float64
	// CrossSection is the per-bit upset probability per unit fluence,
	// in arbitrary units consistent across devices.
	CrossSection float64
	// Protected marks ECC/parity-corrected state (e.g. the Xeon Phi
	// register file under MCA): strikes are corrected and masked.
	Protected bool
	// DUEFraction is the probability that a strike on this class kills
	// the execution outright (control logic). The remainder is masked.
	// This is the legacy constant-rate model, calibrated from the
	// paper's beam data; beam experiments with BehavioralDUE set ignore
	// it and derive the DUE rate from actual control-state fault
	// injection (see internal/inject's control fault classes).
	DUEFraction float64
	// VulnFraction is the probability that a strike on this class
	// reaches architectural state at all (e.g. the fraction of a
	// functional unit's latches that are live for the executing
	// operation). Zero means the default of 1. This is what makes a
	// double-precision core — bigger, more live state per op — more
	// vulnerable per operation than the single/half core (paper Fig 12).
	VulnFraction float64
	// OpWeights distributes FunctionalUnit strikes over operation kinds
	// proportionally to each kind's activity x unit complexity. Unused
	// for other classes.
	OpWeights [fp.NumOps]float64
	// IntStateWeight is the per-site weight of the workload's integer
	// sequencing state (software-routine table indices and shift
	// counts), in the same units as OpWeights. FunctionalUnit strikes
	// land on integer state with probability proportional to
	// IntStateWeight x the mapping's counted IntSites.
	IntStateWeight float64
}

// Rate returns the exposure rate contribution Bits x CrossSection.
func (e Exposure) Rate() float64 { return e.Bits * e.CrossSection }

// Vuln returns the effective VulnFraction (1 when unset).
func (e Exposure) Vuln() float64 {
	if e.VulnFraction <= 0 {
		return 1
	}
	return e.VulnFraction
}

// Mapping is a kernel compiled onto a device in one precision. It holds
// everything a campaign needs: the executable (small-scale) kernel, the
// paper-scale exposure and timing models, and the fault-translation
// parameters.
type Mapping struct {
	// DeviceName and Kernel identify the configuration.
	DeviceName string
	Kernel     kernels.Kernel
	Format     fp.Format

	// Exposures lists sensitive resources at paper scale.
	Exposures []Exposure

	// Time is the modeled execution time at paper scale.
	Time time.Duration

	// UnrollFactor is the number of hardware instances each operation
	// kind is time-multiplexed over. Persistent (FPGA) faults corrupt
	// one instance, i.e. every UnrollFactor-th dynamic operation.
	// Zero means persistent faults are not applicable.
	UnrollFactor uint64

	// Counts is the executable kernel's dynamic op profile in Format,
	// with Wrap applied (software transcendentals appear as their
	// constituent operations).
	Counts fp.OpCounts

	// Wrap, when non-nil, transforms the arithmetic environment the
	// kernel runs against — e.g. installing the platform's software exp
	// so its intermediate steps become fault sites. Campaigns must
	// apply it between the kernel and the (possibly fault-injecting)
	// base environment.
	Wrap func(fp.Env) fp.Env

	// WrapKey identifies Wrap's arithmetic behavior for golden/profile
	// memoization (e.g. fp.ExpShape.Key). Empty when Wrap is nil, or to
	// opt the mapping out of caching.
	WrapKey string

	// Resources holds device-specific synthesis results (FPGA LUT/DSP/
	// BRAM, Phi register allocation, GPU occupancy) for reporting.
	Resources map[string]float64
}

// TotalRate returns the summed exposure rate of unprotected resources —
// the scale factor that converts outcome fractions into FIT (a.u.).
func (m *Mapping) TotalRate() float64 {
	var r float64
	for _, e := range m.Exposures {
		if !e.Protected {
			r += e.Rate()
		}
	}
	return r
}

// Env applies the mapping's Wrap (if any) to a base environment.
func (m *Mapping) Env(base fp.Env) fp.Env {
	if m.Wrap != nil {
		return m.Wrap(base)
	}
	return base
}

// ExposureFor returns the exposure entry for a class, or a zero Exposure
// if the mapping has none.
func (m *Mapping) ExposureFor(c ResourceClass) Exposure {
	for _, e := range m.Exposures {
		if e.Class == c {
			return e
		}
	}
	return Exposure{Class: c}
}

// Validate checks internal consistency; device model tests call it.
func (m *Mapping) Validate() error {
	if m.Kernel == nil {
		return fmt.Errorf("arch: mapping %s has no kernel", m.DeviceName)
	}
	if m.Time <= 0 {
		return fmt.Errorf("arch: mapping %s/%s/%v has non-positive time %v",
			m.DeviceName, m.Kernel.Name(), m.Format, m.Time)
	}
	if len(m.Exposures) == 0 {
		return fmt.Errorf("arch: mapping %s/%s/%v has no exposures",
			m.DeviceName, m.Kernel.Name(), m.Format)
	}
	for _, e := range m.Exposures {
		if e.Bits < 0 || e.CrossSection < 0 {
			return fmt.Errorf("arch: mapping %s/%s/%v has negative exposure %+v",
				m.DeviceName, m.Kernel.Name(), m.Format, e)
		}
		if e.DUEFraction < 0 || e.DUEFraction > 1 {
			return fmt.Errorf("arch: mapping %s/%s/%v has DUEFraction %v",
				m.DeviceName, m.Kernel.Name(), m.Format, e.DUEFraction)
		}
	}
	if m.TotalRate() <= 0 {
		return fmt.Errorf("arch: mapping %s/%s/%v has zero unprotected exposure",
			m.DeviceName, m.Kernel.Name(), m.Format)
	}
	return nil
}

// Workload pairs an executable kernel instance with the scale factors
// that relate it to the paper-sized run. Fault-propagation behavior is
// measured on the executable instance; exposure and timing are reported
// at paper scale: dynamic operation counts are multiplied by OpScale and
// resident data sizes by DataScale (they differ — GEMM ops grow as n^3
// but data as n^2). Scale-invariance of the propagation probability is
// the standard assumption behind every sampling fault-injection
// methodology.
type Workload struct {
	Kernel    kernels.Kernel
	OpScale   float64
	DataScale float64
}

// NewWorkload builds a Workload; non-positive scales default to 1.
func NewWorkload(k kernels.Kernel, opScale, dataScale float64) Workload {
	if opScale <= 0 {
		opScale = 1
	}
	if dataScale <= 0 {
		dataScale = 1
	}
	return Workload{Kernel: k, OpScale: opScale, DataScale: dataScale}
}

// Device is a hardware model that can compile (map) a workload at a
// given precision.
type Device interface {
	// Name returns the device's name as used in the paper's tables.
	Name() string
	// Supports reports whether the device implements format f (the Xeon
	// Phi has no half-precision hardware).
	Supports(f fp.Format) bool
	// Map compiles the workload for format f, returning exposure and
	// timing at paper scale. It returns an error for unsupported
	// formats.
	Map(w Workload, f fp.Format) (*Mapping, error)
}

// ErrUnsupported is returned (wrapped) by Map for unsupported formats.
var ErrUnsupported = fmt.Errorf("arch: format not supported by device")
