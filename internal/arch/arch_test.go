package arch

import (
	"testing"
	"time"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func testMapping() *Mapping {
	return &Mapping{
		DeviceName: "test",
		Kernel:     kernels.NewGEMM(4, 1),
		Format:     fp.Single,
		Time:       time.Second,
		Exposures: []Exposure{
			{Class: FunctionalUnit, Bits: 100, CrossSection: 1},
			{Class: RegisterFile, Bits: 50, CrossSection: 2, Protected: true},
		},
	}
}

func TestResourceClassStrings(t *testing.T) {
	names := map[ResourceClass]string{
		ConfigMemory: "config-memory", RegisterFile: "register-file",
		FunctionalUnit: "functional-unit", ControlLogic: "control-logic",
		MemorySRAM: "memory-sram",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if ResourceClass(99).String() != "resource?" {
		t.Error("unknown class should stringify to resource?")
	}
}

func TestExposureRateAndVuln(t *testing.T) {
	e := Exposure{Bits: 10, CrossSection: 0.5}
	if e.Rate() != 5 {
		t.Errorf("Rate = %v", e.Rate())
	}
	if e.Vuln() != 1 {
		t.Errorf("default Vuln = %v, want 1", e.Vuln())
	}
	e.VulnFraction = 0.25
	if e.Vuln() != 0.25 {
		t.Errorf("Vuln = %v", e.Vuln())
	}
}

func TestMappingTotalRateSkipsProtected(t *testing.T) {
	m := testMapping()
	if got := m.TotalRate(); got != 100 {
		t.Errorf("TotalRate = %v, want 100 (protected excluded)", got)
	}
}

func TestMappingExposureFor(t *testing.T) {
	m := testMapping()
	if e := m.ExposureFor(FunctionalUnit); e.Bits != 100 {
		t.Errorf("ExposureFor(FU).Bits = %v", e.Bits)
	}
	if e := m.ExposureFor(ControlLogic); e.Bits != 0 || e.Class != ControlLogic {
		t.Errorf("missing class should return zero exposure, got %+v", e)
	}
}

func TestMappingValidate(t *testing.T) {
	if err := testMapping().Validate(); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}

	m := testMapping()
	m.Kernel = nil
	if m.Validate() == nil {
		t.Error("nil kernel accepted")
	}

	m = testMapping()
	m.Time = 0
	if m.Validate() == nil {
		t.Error("zero time accepted")
	}

	m = testMapping()
	m.Exposures = nil
	if m.Validate() == nil {
		t.Error("no exposures accepted")
	}

	m = testMapping()
	m.Exposures[0].Bits = -1
	if m.Validate() == nil {
		t.Error("negative bits accepted")
	}

	m = testMapping()
	m.Exposures[0].DUEFraction = 1.5
	if m.Validate() == nil {
		t.Error("DUEFraction > 1 accepted")
	}

	m = testMapping()
	m.Exposures[0].Protected = true
	if m.Validate() == nil {
		t.Error("all-protected mapping accepted")
	}
}

func TestNewWorkloadDefaults(t *testing.T) {
	k := kernels.NewGEMM(4, 1)
	w := NewWorkload(k, 0, -3)
	if w.OpScale != 1 || w.DataScale != 1 {
		t.Errorf("scales = %v/%v, want 1/1", w.OpScale, w.DataScale)
	}
	w = NewWorkload(k, 64, 16)
	if w.OpScale != 64 || w.DataScale != 16 {
		t.Errorf("scales = %v/%v", w.OpScale, w.DataScale)
	}
}
