package metrics

import (
	"math"
	"testing"
	"time"

	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func TestMEBF(t *testing.T) {
	// FIT 2 (errors per unit time), 0.5s per execution: errors per
	// execution = 1, so MEBF = 1.
	if got := MEBF(2, 500*time.Millisecond); math.Abs(got-1) > 1e-12 {
		t.Errorf("MEBF = %v, want 1", got)
	}
	// Halving the execution time doubles MEBF.
	if got := MEBF(2, 250*time.Millisecond); math.Abs(got-2) > 1e-12 {
		t.Errorf("MEBF = %v, want 2", got)
	}
	if !math.IsInf(MEBF(0, time.Second), 1) {
		t.Error("zero FIT should give infinite MEBF")
	}
	if !math.IsInf(MEBF(1, 0), 1) {
		t.Error("zero time should give infinite MEBF")
	}
}

func TestTRECurveBasics(t *testing.T) {
	relErrs := []float64{0.00005, 0.005, 0.05, 0.5, math.Inf(1)}
	pts := TRECurve(10, relErrs, []float64{0, 0.001, 0.01, 0.1, 1})
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// TRE=0: everything above zero is still an error.
	if pts[0].FIT != 10 || pts[0].Reduction != 0 {
		t.Errorf("TRE=0 point %+v", pts[0])
	}
	// TRE=0.001 drops the 0.00005 error: 4/5 remain.
	if math.Abs(pts[1].FIT-8) > 1e-9 {
		t.Errorf("TRE=0.001 FIT %v, want 8", pts[1].FIT)
	}
	// TRE=1 leaves only the Inf error.
	if math.Abs(pts[4].FIT-2) > 1e-9 || math.Abs(pts[4].Reduction-0.8) > 1e-9 {
		t.Errorf("TRE=1 point %+v", pts[4])
	}
	// Monotone non-increasing FIT.
	for i := 1; i < len(pts); i++ {
		if pts[i].FIT > pts[i-1].FIT {
			t.Errorf("TRE curve not monotone at %d", i)
		}
	}
}

func TestTRECurveBoundaryExclusive(t *testing.T) {
	// An error exactly at the tolerance is tolerated (<= TRE is ok).
	pts := TRECurve(1, []float64{0.01}, []float64{0.01})
	if pts[0].FIT != 0 {
		t.Errorf("error exactly at TRE should be tolerated, FIT %v", pts[0].FIT)
	}
}

func TestTRECurveEmpty(t *testing.T) {
	pts := TRECurve(5, nil, nil)
	if len(pts) != len(DefaultTREs) {
		t.Fatalf("default thresholds not used")
	}
	for _, p := range pts {
		if p.FIT != 0 && p.TRE > 0 {
			t.Errorf("no SDCs: residual FIT should be 0 at TRE %v", p.TRE)
		}
	}
}

func TestClassifyMNIST(t *testing.T) {
	m := kernels.NewMNIST(2, 99)
	golden := kernels.Decode(fp.Double, kernels.Golden(m, fp.Double))
	// A faulty output identical to golden except a tiny probability
	// wiggle that does not change the argmax: tolerable.
	tolerable := append([]float64(nil), golden...)
	tolerable[1] += 1e-6
	// A faulty output with image 0's top class forced elsewhere.
	critical := append([]float64(nil), golden...)
	top := kernels.Argmax(critical[:10])
	critical[top] = -1
	critical[(top+1)%10] = 2

	res := ClassifyMNIST(m, golden, [][]float64{tolerable, critical})
	if res.SDCs != 2 || res.Tolerable != 1 || res.Critical != 1 {
		t.Errorf("classification %+v", res)
	}
	if res.CriticalFraction() != 0.5 {
		t.Errorf("critical fraction %v", res.CriticalFraction())
	}
}

func TestMNISTCriticalityEmpty(t *testing.T) {
	var c MNISTCriticality
	if c.CriticalFraction() != 0 {
		t.Error("empty criticality should be 0")
	}
}

func TestClassifyYOLO(t *testing.T) {
	y := kernels.NewYOLO(2026)
	golden := kernels.Decode(fp.Double, kernels.Golden(y, fp.Double))

	// Tolerable: tiny head perturbation.
	tolerable := append([]float64(nil), golden...)
	tolerable[len(tolerable)-1] += 1e-9

	// Detection change: suppress an active cell's objectness.
	suppress := append([]float64(nil), golden...)
	dets := y.Detections(golden)
	if len(dets) == 0 {
		t.Fatal("no golden detections")
	}
	for cell := 0; cell < kernels.YOLOGrid*kernels.YOLOGrid; cell++ {
		if 1/(1+math.Exp(-suppress[cell])) >= dets[len(dets)-1].Score {
			suppress[cell] = -40
			break
		}
	}

	res := ClassifyYOLO(y, golden, [][]float64{tolerable, suppress})
	if res.SDCs != 2 {
		t.Fatalf("SDCs %d", res.SDCs)
	}
	if res.Tolerable != 1 {
		t.Errorf("tolerable %d, want 1", res.Tolerable)
	}
	if res.Detection+res.Classification != 1 {
		t.Errorf("changed %d+%d, want 1", res.Detection, res.Classification)
	}
	tf, df, cf := res.Fractions()
	if math.Abs(tf+df+cf-1) > 1e-12 {
		t.Errorf("fractions do not sum to 1: %v %v %v", tf, df, cf)
	}
}

func TestYOLOCriticalityEmpty(t *testing.T) {
	var c YOLOCriticality
	tf, df, cf := c.Fractions()
	if tf != 0 || df != 0 || cf != 0 {
		t.Error("empty fractions should be 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 1})
	if out[1] != 1 || out[0] != 0.5 || out[2] != 0.25 {
		t.Errorf("normalized %v", out)
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Errorf("zero input changed: %v", zeros)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != "inf" {
		t.Error("division by zero should format as inf")
	}
	if Ratio(3, 2) != "1.50" {
		t.Errorf("Ratio(3,2) = %q", Ratio(3, 2))
	}
}
