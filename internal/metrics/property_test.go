package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mixedrel/internal/rng"
)

// Property: a TRE curve is monotone non-increasing in FIT and monotone
// non-decreasing in reduction, for arbitrary error populations and
// threshold sets.
func TestTRECurveMonotoneProperty(t *testing.T) {
	r := rng.New(61)
	prop := func(seed uint64, nErr, nThr uint8) bool {
		rr := rng.New(seed ^ r.Uint64())
		errs := make([]float64, int(nErr))
		for i := range errs {
			errs[i] = math.Exp(rr.NormFloat64() * 5) // wide spread
		}
		thresholds := make([]float64, int(nThr%12)+2)
		for i := range thresholds {
			thresholds[i] = rr.Float64() * 0.2
		}
		sort.Float64s(thresholds)
		pts := TRECurve(100, errs, thresholds)
		for i := 1; i < len(pts); i++ {
			if pts[i].FIT > pts[i-1].FIT+1e-9 {
				return false
			}
			if pts[i].Reduction+1e-9 < pts[i-1].Reduction {
				return false
			}
		}
		for _, p := range pts {
			if p.Reduction < -1e-9 || p.Reduction > 1+1e-9 {
				return false
			}
			if p.FIT < -1e-9 || p.FIT > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FIT + reduction are consistent: FIT = FIT0 * (1 - Reduction).
func TestTRECurveConsistencyProperty(t *testing.T) {
	r := rng.New(67)
	prop := func(seed uint64, n uint8) bool {
		rr := rng.New(seed ^ r.Uint64())
		errs := make([]float64, int(n))
		for i := range errs {
			errs[i] = rr.Float64()
		}
		for _, p := range TRECurve(7, errs, nil) {
			if math.Abs(p.FIT-7*(1-p.Reduction)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize output is scale-invariant with max exactly 1 for
// nonzero inputs.
func TestNormalizeProperty(t *testing.T) {
	r := rng.New(71)
	prop := func(seed uint64, n uint8) bool {
		rr := rng.New(seed ^ r.Uint64())
		xs := make([]float64, int(n%20)+1)
		allZero := true
		for i := range xs {
			xs[i] = rr.Float64() * 100
			if xs[i] != 0 {
				allZero = false
			}
		}
		out := Normalize(xs)
		if allZero {
			return true
		}
		max := 0.0
		for i, v := range out {
			if v < 0 || v > 1+1e-12 {
				return false
			}
			if v > max {
				max = v
			}
			// Ratios preserved.
			if xs[i] != 0 && out[i] == 0 {
				return false
			}
		}
		return math.Abs(max-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MEBF is inversely proportional to both FIT and time.
func TestMEBFScalingProperty(t *testing.T) {
	prop := func(fitRaw, timeRaw uint16) bool {
		fit := float64(fitRaw%1000) + 1
		secs := (float64(timeRaw%1000) + 1) / 100
		base := MEBF(fit, secsToDuration(secs))
		doubleFIT := MEBF(2*fit, secsToDuration(secs))
		doubleTime := MEBF(fit, secsToDuration(2*secs))
		return math.Abs(base/doubleFIT-2) < 1e-9 && math.Abs(base/doubleTime-2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func secsToDuration(s float64) (d time.Duration) {
	return time.Duration(s * float64(time.Second))
}
