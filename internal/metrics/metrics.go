// Package metrics computes the paper's derived reliability measures from
// campaign outputs: Mean Executions Between Failures (MEBF), Tolerated
// Relative Error (TRE) FIT-reduction curves, and the CNN criticality
// classifications (MNIST: tolerable vs critical; YOLO: tolerable /
// detection changed / classification changed).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mixedrel/internal/kernels"
)

// MEBF returns the mean number of correct executions completed between
// failures: the reciprocal of the per-execution error probability
// FIT x execution time (paper Section 3.2, [35]). Units are arbitrary
// but consistent across configurations, like the paper's.
func MEBF(fitSDC float64, execTime time.Duration) float64 {
	secs := execTime.Seconds()
	if fitSDC <= 0 || secs <= 0 {
		return math.Inf(1)
	}
	return 1 / (fitSDC * secs)
}

// TREPoint is one point of a FIT-vs-tolerance curve.
type TREPoint struct {
	// TRE is the tolerated relative error (0.001 = 0.1%).
	TRE float64
	// FIT is the residual FIT counting only SDCs whose worst
	// element-wise relative error exceeds TRE.
	FIT float64
	// Reduction is 1 - FIT/FIT0: the fraction of errors that became
	// tolerable.
	Reduction float64
}

// DefaultTREs are the tolerance levels swept in the paper's figures.
var DefaultTREs = []float64{0, 0.0001, 0.001, 0.01, 0.02, 0.05, 0.1}

// TRECurve computes the FIT reduction as the output-tolerance margin
// grows: an SDC whose corrupted values all lie within TRE of the
// expected values is re-classified as tolerable (paper Figs. 4, 8, 11).
// fitSDC is the campaign's TRE=0 FIT; relErrs holds one max-relative-
// error per observed SDC.
func TRECurve(fitSDC float64, relErrs []float64, tres []float64) []TREPoint {
	if len(tres) == 0 {
		tres = DefaultTREs
	}
	sorted := append([]float64(nil), relErrs...)
	sort.Float64s(sorted)
	n := len(sorted)
	out := make([]TREPoint, 0, len(tres))
	for _, tre := range tres {
		// Count SDCs with relErr > tre (still errors at this margin).
		idx := sort.SearchFloat64s(sorted, tre)
		for idx < n && sorted[idx] == tre {
			idx++
		}
		surviving := n - idx
		var frac float64
		if n > 0 {
			frac = float64(surviving) / float64(n)
		}
		out = append(out, TREPoint{
			TRE:       tre,
			FIT:       fitSDC * frac,
			Reduction: 1 - frac,
		})
	}
	return out
}

// MNISTCriticality classifies the SDCs of an MNIST campaign: an SDC is
// critical when the predicted class of any batch image changed relative
// to the golden prediction, tolerable otherwise (paper Fig. 3).
type MNISTCriticality struct {
	SDCs, Critical, Tolerable int
}

// CriticalFraction returns Critical/SDCs (0 for an empty campaign).
func (c MNISTCriticality) CriticalFraction() float64 {
	if c.SDCs == 0 {
		return 0
	}
	return float64(c.Critical) / float64(c.SDCs)
}

// ClassifyMNIST classifies faulty outputs against the golden output of
// the same precision.
func ClassifyMNIST(m *kernels.MNIST, golden []float64, faulty [][]float64) MNISTCriticality {
	goldenPred := m.Classify(golden)
	res := MNISTCriticality{SDCs: len(faulty)}
	for _, out := range faulty {
		pred := m.Classify(out)
		critical := false
		for i := range pred {
			if pred[i] != goldenPred[i] {
				critical = true
				break
			}
		}
		if critical {
			res.Critical++
		} else {
			res.Tolerable++
		}
	}
	return res
}

// YOLOCriticality tallies the paper's Fig. 11c taxonomy over a
// campaign's SDCs.
type YOLOCriticality struct {
	SDCs int
	// Counts per outcome kind.
	Tolerable, Detection, Classification int
}

// Fractions returns the per-category shares (each 0 when SDCs == 0).
func (c YOLOCriticality) Fractions() (tolerable, detection, classification float64) {
	if c.SDCs == 0 {
		return 0, 0, 0
	}
	n := float64(c.SDCs)
	return float64(c.Tolerable) / n, float64(c.Detection) / n, float64(c.Classification) / n
}

// ClassifyYOLO decodes each faulty head and compares its detections to
// the golden detections of the same precision.
func ClassifyYOLO(y *kernels.YOLO, golden []float64, faulty [][]float64) YOLOCriticality {
	goldenDets := y.Detections(golden)
	res := YOLOCriticality{SDCs: len(faulty)}
	for _, out := range faulty {
		switch kernels.CompareDetections(goldenDets, y.Detections(out)) {
		case kernels.DetectionsTolerable:
			res.Tolerable++
		case kernels.DetectionChanged:
			res.Detection++
		case kernels.ClassificationChanged:
			res.Classification++
		}
	}
	return res
}

// Normalize scales a set of values so the largest is 1, for reporting in
// the paper's arbitrary units. It returns a new slice; an all-zero input
// comes back unchanged.
func Normalize(values []float64) []float64 {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(values))
	if max == 0 {
		copy(out, values)
		return out
	}
	for i, v := range values {
		out[i] = v / max
	}
	return out
}

// Ratio formats a/b defensively for report rows.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}
