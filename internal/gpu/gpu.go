// Package gpu models the NVIDIA Titan V (Volta) the paper irradiates.
// The Volta properties that drive its mixed-precision reliability
// behaviour are explicit model inputs:
//
//   - separate core pools: 2,688 FP64 cores versus 5,376 FP32 cores; a
//     half-precision instruction runs two operations paired on an FP32
//     core (half2), so single and half share the same silicon;
//   - per-operation latency depends only on the data precision: 8 clock
//     cycles for double, 4 for single, 6 for two half operations (Jia et
//     al., cited as [25] in the paper);
//   - per-core datapath complexity depends on the operation: an FMA tree
//     carries more sensitive logic than a multiplier, which carries far
//     more than an adder (whose exposure is dominated by the fixed
//     alignment/normalization logic, letting the doubled core count of
//     single/half overtake double for ADD — the paper's Fig. 10a
//     inversion);
//   - the Titan V has no ECC: register file and cache SRAM are exposed
//     (the paper triplicates data in HBM2, so main memory is excluded);
//   - double-precision cores keep more live state per operation, making
//     a strike during a double op more likely to corrupt the result —
//     the per-operation vulnerability difference of Fig. 12.
package gpu

import (
	"fmt"
	"time"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
)

// Machine constants for the Titan V model.
const (
	fp64Cores = 2688
	fp32Cores = 5376
	// clockHz is calibrated so that the paper's microbenchmarks (1e9
	// dependent operations per thread) land on Table 3: 1e9 * 8 cycles
	// / 1.33 GHz = 6.0 s for double.
	clockHz = 1.33e9

	sigmaSRAM  = 1.0
	sigmaLogic = 1.0
	sigmaCtrl  = 0.4

	// residentThreads is the dispatched thread count of the paper's
	// microbenchmark setup (256 threads on each of 80 SMs).
	residentThreads = 20480

	regBitsWord = 32
	// regResidency is the fraction of a register's content that is
	// architecturally live (between write and last read) on average.
	regResidency = 0.05

	l2CacheBits = 6 * 1024 * 1024 * 8 // 6 MB L2

	ctrlBaseBits = 1.6e5
	ctrlDUEFrac  = 0.5
	memBWBytes   = 550e9 // HBM2 effective
)

// cyclesPerOp returns the per-operation latency in cycles. Half executes
// two operations in 6 cycles; per operation that is 3.
func cyclesPerOp(f fp.Format) float64 {
	switch f {
	case fp.Double:
		return 8
	case fp.Single:
		return 4
	default:
		// half and bfloat16 pair two operations on an FP32 core in 6
		// cycles: 3 per operation.
		return 3
	}
}

// activeCores returns the core pool available to a format.
func activeCores(f fp.Format) float64 {
	if f == fp.Double {
		return fp64Cores
	}
	return fp32Cores
}

// coreComplexity is the per-core sensitive logic (latch/combinational
// bit equivalents) engaged by one operation of each kind. Multiplier
// arrays grow superlinearly with significand width; adders are dominated
// by fixed alignment/normalization logic; FMA combines both plus the
// wide accumulate path. Half shares the FP32 core; its entries count the
// logic engaged by a paired half2 operation.
var coreComplexity = map[fp.Op]map[fp.Format]float64{
	// The FP32 core embeds the paired-half2 SIMD datapath, so its adder
	// stage is not smaller than the FP64 adder's (alignment and leading-
	// zero logic are width-insensitive); that is what lets the doubled
	// core count invert the ADD trend (Fig. 10a).
	fp.OpAdd:  {fp.Double: 150, fp.Single: 160, fp.Half: 165, fp.BFloat16: 165},
	fp.OpSub:  {fp.Double: 150, fp.Single: 160, fp.Half: 165, fp.BFloat16: 165},
	fp.OpMul:  {fp.Double: 1300, fp.Single: 420, fp.Half: 330, fp.BFloat16: 280},
	fp.OpFMA:  {fp.Double: 1560, fp.Single: 640, fp.Half: 500, fp.BFloat16: 440},
	fp.OpDiv:  {fp.Double: 2600, fp.Single: 950, fp.Half: 750, fp.BFloat16: 700},
	fp.OpSqrt: {fp.Double: 2400, fp.Single: 900, fp.Half: 700, fp.BFloat16: 650},
	// exp runs in software on the SFU/FMA path (the paper contrasts
	// this with the Phi's dedicated transcendental units).
	fp.OpExp: {fp.Double: 9400, fp.Single: 3900, fp.Half: 3000, fp.BFloat16: 2800},
}

// expShapes is the CUDA software exp: the paper notes GPUs run
// transcendentals like exp in software (Section 6.3). The double variant
// is moderately longer; half uses a short polynomial on the paired
// cores.
var expShapes = map[fp.Format]fp.ExpShape{
	// CUDA's exp is branch-free polynomial code at every precision: one
	// reduction quotient, no tables (the paper contrasts this with the
	// Phi's dedicated transcendental handling).
	fp.Double:   {Terms: 10, Squarings: 1, IntSites: 1},
	fp.Single:   {Terms: 6, Squarings: 1, IntSites: 1},
	fp.Half:     {Terms: 4, Squarings: 0, IntSites: 1},
	fp.BFloat16: {Terms: 3, Squarings: 0, IntSites: 1},
}

// gpuIntStateWeight is the per-site integer-state weight in the same
// (complexity) units as the GPU op weights — small: a quotient latch
// next to thousand-bit FMA datapaths.
const gpuIntStateWeight = 50

// ExpShapeFor returns the GPU software-exp shape for format f.
func ExpShapeFor(f fp.Format) fp.ExpShape { return expShapes[f] }

// coreVulnerability is the probability that a strike on an active core
// corrupts the in-flight operation's result: double cores hold more live
// state; single and half share a core and therefore a vulnerability.
var coreVulnerability = map[fp.Format]float64{
	fp.Double:   0.50,
	fp.Single:   0.35,
	fp.Half:     0.35,
	fp.BFloat16: 0.35, // shares the FP32/half core
}

// perfMode selects the timing model of a kernel family.
type perfMode int

const (
	// modeLatency: dependent per-thread op chains; time is chain length
	// times per-op latency (the microbenchmarks).
	modeLatency perfMode = iota
	// modeStream: bandwidth-bound streaming plus a fixed launch
	// overhead (LavaMD).
	modeStream
	// modeMemEff: bandwidth-bound with per-precision memory efficiency
	// (uncoalesced MxM: narrower accesses waste transaction bytes).
	modeMemEff
	// modeCompute: throughput-bound compute plus host overhead, with an
	// optional half-precision per-layer conversion penalty (YOLO).
	modeCompute
)

// profile is the per-kernel calibration table.
type profile struct {
	mode           perfMode
	regsPerThread  float64 // 32-bit registers per thread in single
	cacheResidency float64 // live fraction of cached data
	branchiness    float64 // control-flow intensity (DUE driver)
	streamFactor   float64 // elements moved per op (stream/memEff modes)
	launchOverhead float64 // seconds of fixed host/launch time
	halfConvSecs   float64 // half-precision conversion overhead (YOLO)
	memEff         map[fp.Format]float64
}

var profiles = map[string]profile{
	"Micro-ADD": {mode: modeLatency, regsPerThread: 2, cacheResidency: 0.01, branchiness: 0.1},
	"Micro-MUL": {mode: modeLatency, regsPerThread: 2, cacheResidency: 0.01, branchiness: 0.1},
	"Micro-FMA": {mode: modeLatency, regsPerThread: 2, cacheResidency: 0.01, branchiness: 0.1},
	"LavaMD": {mode: modeStream, regsPerThread: 48, cacheResidency: 0.15, branchiness: 1.0,
		streamFactor: 1.0, launchOverhead: 0.037},
	"MxM": {mode: modeMemEff, regsPerThread: 32, cacheResidency: 0.85, branchiness: 1.0,
		streamFactor: 1.0, memEff: map[fp.Format]float64{fp.Double: 1.0, fp.Single: 0.61, fp.Half: 0.49, fp.BFloat16: 0.49}},
	"YOLOv3": {mode: modeCompute, regsPerThread: 64, cacheResidency: 0.45, branchiness: 4.0,
		launchOverhead: 0.061, halfConvSecs: 0.209},
	"MNIST": {mode: modeCompute, regsPerThread: 40, cacheResidency: 0.30, branchiness: 1.5,
		launchOverhead: 0.002},
	"LUD": {mode: modeCompute, regsPerThread: 28, cacheResidency: 0.40, branchiness: 1.2,
		launchOverhead: 0.010},
	"Hotspot": {mode: modeStream, regsPerThread: 24, cacheResidency: 0.55, branchiness: 1.1,
		streamFactor: 1.0, launchOverhead: 0.005},
	"CG": {mode: modeCompute, regsPerThread: 36, cacheResidency: 0.50, branchiness: 1.4,
		launchOverhead: 0.008},
}

var defaultProfile = profile{mode: modeCompute, regsPerThread: 32, cacheResidency: 0.3,
	branchiness: 1.0, launchOverhead: 0.010}

// Device is the Titan V model.
type Device struct{}

// New returns the Volta device model.
func New() *Device { return &Device{} }

// Name implements arch.Device.
func (d *Device) Name() string { return "TitanV" }

// Supports implements arch.Device: Volta accelerates the paper's three
// formats; BFloat16 is accepted as a forward-looking extension study
// (pairing on the FP32 cores exactly like half2 — the arrangement later
// silicon adopted).
func (d *Device) Supports(f fp.Format) bool {
	return f == fp.Half || f == fp.Single || f == fp.Double || f == fp.BFloat16
}

// Map implements arch.Device.
func (d *Device) Map(w arch.Workload, f fp.Format) (*arch.Mapping, error) {
	if !d.Supports(f) {
		return nil, fmt.Errorf("%w: %s does not implement %v", arch.ErrUnsupported, d.Name(), f)
	}
	if w.Kernel == nil {
		return nil, fmt.Errorf("gpu: workload has no kernel")
	}
	opScale := w.OpScale
	if opScale <= 0 {
		opScale = 1
	}
	dataScale := w.DataScale
	if dataScale <= 0 {
		dataScale = 1
	}
	baseCounts := exec.Artifact(w.Kernel, f, "", nil).Counts
	if baseCounts.Total() == 0 {
		return nil, fmt.Errorf("gpu: kernel %s executes no operations", w.Kernel.Name())
	}
	// exp runs in software on the GPU; decompose it so its steps are
	// individually exposed. Memory-traffic models keep using the base
	// (undcomposed) counts — data volume does not grow with the
	// transcendental's instruction count.
	var wrap func(fp.Env) fp.Env
	var wrapKey string
	counts := baseCounts
	if baseCounts.ByOp[fp.OpExp] > 0 {
		shape := expShapes[f]
		wrap = fp.WrapExp(shape)
		wrapKey = shape.Key()
		counts = exec.Artifact(w.Kernel, f, wrapKey, wrap).Counts
	}
	total := counts.Total()
	prof, ok := profiles[w.Kernel.Name()]
	if !ok {
		prof = defaultProfile
	}
	execSeconds := d.timeFor(w, f, prof, baseCounts, counts)

	// Functional-unit exposure: active cores times the activity-weighted
	// per-core complexity of the kernel's op mix.
	var fuBits float64
	var opWeights [fp.NumOps]float64
	for op := fp.Op(0); int(op) < fp.NumOps; op++ {
		n := counts.ByOp[op]
		if n == 0 {
			continue
		}
		share := float64(n) / float64(total)
		c := coreComplexity[op][f]
		fuBits += share * c * activeCores(f)
		opWeights[op] = float64(n) * c
	}

	// Register file (no ECC on the Titan V): double needs twice the
	// 32-bit registers; half does not reduce the count (paper Section 6).
	regs := prof.regsPerThread
	if f == fp.Double {
		regs *= 2
	}
	regBits := residentThreads * regs * regBitsWord * regResidency

	// Cache/shared-memory exposure: the resident fraction of the data
	// footprint, capped at capacity (no ECC).
	var dataBits float64
	for _, a := range w.Kernel.Inputs(f) {
		dataBits += float64(len(a) * f.Width())
	}
	dataBits *= dataScale
	if dataBits > l2CacheBits {
		dataBits = l2CacheBits
	}
	// Data exposure scales with how long each datum waits in cache for
	// the processing units — "the longer data sitting in caches or
	// registers is exposed, the higher the FIT rate" (paper Section
	// 6.1). Normalizing to the single-precision time keeps the scale
	// comparable across kernels. The half-precision conversion overhead
	// is format shuffling, not resident working-set time, so it does not
	// count toward exposure.
	singleTime := d.timeFor(w, fp.Single, prof, baseCounts, counts)
	exposureSeconds := execSeconds
	if f == fp.Half && prof.mode == modeCompute {
		exposureSeconds -= prof.halfConvSecs
	}
	cacheBits := dataBits * prof.cacheResidency * exposureSeconds / singleTime

	// Control logic: grows with control-flow intensity and (weakly) with
	// execution time — long-running kernels keep schedulers and address
	// paths exposed longer per unit of work in flight.
	ctrlBits := ctrlBaseBits * prof.branchiness * (0.35 + 0.65*execSeconds/singleTime)

	m := &arch.Mapping{
		DeviceName: d.Name(),
		Kernel:     w.Kernel,
		Format:     f,
		Counts:     counts,
		Wrap:       wrap,
		WrapKey:    wrapKey,
		Time:       time.Duration(execSeconds * float64(time.Second)),
		Exposures: []arch.Exposure{
			{
				Class:          arch.FunctionalUnit,
				Bits:           fuBits,
				CrossSection:   sigmaLogic,
				VulnFraction:   coreVulnerability[f],
				OpWeights:      opWeights,
				IntStateWeight: gpuIntStateWeight,
			},
			{
				Class:        arch.RegisterFile,
				Bits:         regBits,
				CrossSection: sigmaSRAM,
			},
			{
				Class:        arch.MemorySRAM,
				Bits:         cacheBits,
				CrossSection: sigmaSRAM,
			},
			{
				Class:        arch.ControlLogic,
				Bits:         ctrlBits,
				CrossSection: sigmaCtrl,
				DUEFraction:  ctrlDUEFrac,
			},
		},
		Resources: map[string]float64{
			"activeCores":   activeCores(f),
			"regsPerThread": regs,
			"fuBits":        fuBits,
			"cacheBits":     cacheBits,
		},
	}
	return m, nil
}

// timeFor computes the execution-time model for an arbitrary format,
// used both for the mapping's Time and to normalize exposure terms.
// Memory-bound modes use the base (undecomposed) op counts — data
// traffic does not grow with software-transcendental instruction counts
// — while compute modes use the decomposed counts.
func (d *Device) timeFor(w arch.Workload, f fp.Format, prof profile, baseCounts, counts fp.OpCounts) float64 {
	opScale := w.OpScale
	if opScale <= 0 {
		opScale = 1
	}
	paperOps := float64(counts.Total()) * opScale
	paperBaseOps := float64(baseCounts.Total()) * opScale
	switch prof.mode {
	case modeLatency:
		return paperOps / residentThreads * cyclesPerOp(f) / clockHz
	case modeStream:
		return paperBaseOps*prof.streamFactor*float64(f.Bytes())/memBWBytes + prof.launchOverhead
	case modeMemEff:
		return paperBaseOps * prof.streamFactor * float64(f.Bytes()) / (memBWBytes * prof.memEff[f])
	default:
		t := paperOps*cyclesPerOp(f)/(activeCores(f)*clockHz) + prof.launchOverhead
		if f == fp.Half {
			t += prof.halfConvSecs
		}
		return t
	}
}
