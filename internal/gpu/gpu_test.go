package gpu

import (
	"math"
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func mapK(t *testing.T, k kernels.Kernel, f fp.Format, opScale float64) *arch.Mapping {
	t.Helper()
	m, err := New().Map(arch.NewWorkload(k, opScale, 1), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSupportsAllFormats(t *testing.T) {
	d := New()
	for _, f := range fp.Formats {
		if !d.Supports(f) {
			t.Errorf("Volta should support %v", f)
		}
	}
}

// Table 3: the microbenchmarks run 1e9 dependent ops per thread; the
// latency model must land on 6.0 / 3.0 / 2.25 s for D/S/H.
func microScale(t *testing.T, k kernels.Kernel) float64 {
	t.Helper()
	total := kernels.Profile(k, fp.Single).Total()
	const paperOps = 1e9 * residentThreads
	return paperOps / float64(total)
}

func TestMicroTimesMatchTable3(t *testing.T) {
	for _, op := range []kernels.MicroOp{kernels.MicroADD, kernels.MicroMUL, kernels.MicroFMA} {
		k := kernels.NewMicro(op, 4, 50, 1)
		scale := microScale(t, k)
		want := map[fp.Format]float64{fp.Double: 6.0, fp.Single: 3.0, fp.Half: 2.25}
		for f, w := range want {
			got := mapK(t, k, f, scale).Time.Seconds()
			if math.Abs(got-w)/w > 0.05 {
				t.Errorf("%v/%v: modeled %.2fs, Table 3 gives ~%.2fs", op, f, got, w)
			}
		}
	}
}

// The three micros share execution time at equal precision (paper: all
// ops have the same latency for a given precision).
func TestMicroTimesEqualAcrossOps(t *testing.T) {
	times := map[kernels.MicroOp]float64{}
	for _, op := range []kernels.MicroOp{kernels.MicroADD, kernels.MicroMUL, kernels.MicroFMA} {
		k := kernels.NewMicro(op, 4, 50, 1)
		times[op] = mapK(t, k, fp.Single, microScale(t, k)).Time.Seconds()
	}
	if times[kernels.MicroADD] != times[kernels.MicroMUL] || times[kernels.MicroMUL] != times[kernels.MicroFMA] {
		t.Errorf("micro times differ across ops: %v", times)
	}
}

// Fig. 10a orderings:
//   - MUL and FMA: double > single > half (core complexity dominates)
//   - ADD: single ~= half > double (core count dominates)
//   - at fixed precision: FMA > MUL > ADD.
func fuRate(t *testing.T, op kernels.MicroOp, f fp.Format) float64 {
	k := kernels.NewMicro(op, 4, 50, 1)
	x := mapK(t, k, f, 1e6).ExposureFor(arch.FunctionalUnit)
	return x.Rate() * x.Vuln()
}

func TestMicroFITOrderingAcrossPrecisions(t *testing.T) {
	for _, op := range []kernels.MicroOp{kernels.MicroMUL, kernels.MicroFMA} {
		d, s, h := fuRate(t, op, fp.Double), fuRate(t, op, fp.Single), fuRate(t, op, fp.Half)
		if !(d > s && s > h) {
			t.Errorf("%v: FU exposure not D>S>H: %v %v %v", op, d, s, h)
		}
	}
	d, s, h := fuRate(t, kernels.MicroADD, fp.Double), fuRate(t, kernels.MicroADD, fp.Single), fuRate(t, kernels.MicroADD, fp.Half)
	if !(s > d && h > d) {
		t.Errorf("ADD: double %v should be lowest (single %v, half %v)", d, s, h)
	}
	if math.Abs(s-h)/s > 0.25 {
		t.Errorf("ADD: single %v and half %v should be close", s, h)
	}
}

func TestMicroFITOrderingAcrossOps(t *testing.T) {
	for _, f := range fp.Formats {
		add := fuRate(t, kernels.MicroADD, f)
		mul := fuRate(t, kernels.MicroMUL, f)
		fma := fuRate(t, kernels.MicroFMA, f)
		if !(fma > mul && mul > add) {
			t.Errorf("%v: want FMA > MUL > ADD, got %v %v %v", f, fma, mul, add)
		}
	}
}

// Fig. 12: per-operation vulnerability — double above single, single
// equal to half (same core).
func TestCoreVulnerability(t *testing.T) {
	k := kernels.NewMicro(kernels.MicroFMA, 4, 50, 1)
	v := map[fp.Format]float64{}
	for _, f := range fp.Formats {
		v[f] = mapK(t, k, f, 1e6).ExposureFor(arch.FunctionalUnit).Vuln()
	}
	if !(v[fp.Double] > v[fp.Single]) {
		t.Errorf("double vulnerability %v not above single %v", v[fp.Double], v[fp.Single])
	}
	if v[fp.Single] != v[fp.Half] {
		t.Errorf("single %v and half %v share a core and must match", v[fp.Single], v[fp.Half])
	}
}

// Section 6: double needs ~2x the 32-bit registers; half does not reduce
// the count relative to single.
func TestRegisterModel(t *testing.T) {
	k := kernels.NewGEMM(8, 1)
	d := mapK(t, k, fp.Double, 1e6).Resources["regsPerThread"]
	s := mapK(t, k, fp.Single, 1e6).Resources["regsPerThread"]
	h := mapK(t, k, fp.Half, 1e6).Resources["regsPerThread"]
	if d != 2*s {
		t.Errorf("double regs %v != 2x single %v", d, s)
	}
	if h != s {
		t.Errorf("half regs %v != single %v", h, s)
	}
}

// No ECC on the Titan V: register file and cache exposures must be
// unprotected.
func TestNoECC(t *testing.T) {
	m := mapK(t, kernels.NewGEMM(8, 1), fp.Single, 1e6)
	for _, class := range []arch.ResourceClass{arch.RegisterFile, arch.MemorySRAM} {
		if m.ExposureFor(class).Protected {
			t.Errorf("%v must be unprotected on the Titan V", class)
		}
	}
}

// Fig. 10b: MxM's cache exposure dwarfs LavaMD's (memory-bound vs
// compute-bound).
func TestMxMCacheExposureExceedsLavaMD(t *testing.T) {
	mxm := mapK(t, kernels.NewGEMM(16, 1), fp.Single, 1e6)
	lava := mapK(t, kernels.NewLavaMD(2, 4, 1), fp.Single, 1e6)
	// Scale data to paper sizes: both exceed cache capacity, so compare
	// residency-weighted exposure.
	mx := mxm.ExposureFor(arch.MemorySRAM).Rate()
	lv := lava.ExposureFor(arch.MemorySRAM).Rate()
	if !(mx > 3*lv) {
		t.Errorf("MxM cache exposure %v not well above LavaMD %v", mx, lv)
	}
}

// Micro DUE exposure is about a tenth of the realistic codes' (paper
// Section 6.1).
func TestMicroDUETenthOfRealistic(t *testing.T) {
	micro := mapK(t, kernels.NewMicro(kernels.MicroMUL, 4, 50, 1), fp.Single, 1e6)
	lava := mapK(t, kernels.NewLavaMD(2, 4, 1), fp.Single, 1e6)
	mr := micro.ExposureFor(arch.ControlLogic).Rate()
	lr := lava.ExposureFor(arch.ControlLogic).Rate()
	if r := mr / lr; r > 0.25 {
		t.Errorf("micro/LavaMD DUE exposure ratio %.2f, want ~0.1", r)
	}
}

// Table 3 LavaMD: times roughly halve with each precision step.
func TestLavaMDStreamTiming(t *testing.T) {
	k := kernels.NewLavaMD(2, 4, 1)
	// Scale so double lands near 1.07s: traffic = ops*8/550e9 + 0.037.
	total := float64(kernels.Profile(k, fp.Double).Total())
	scale := (1.071 - 0.037) * 550e9 / 8 / total
	d := mapK(t, k, fp.Double, scale).Time.Seconds()
	s := mapK(t, k, fp.Single, scale).Time.Seconds()
	h := mapK(t, k, fp.Half, scale).Time.Seconds()
	for name, got := range map[string]struct{ got, want float64 }{
		"double": {d, 1.071}, "single": {s, 0.554}, "half": {h, 0.291},
	} {
		if math.Abs(got.got-got.want)/got.want > 0.08 {
			t.Errorf("LavaMD %s: modeled %.3fs, Table 3 gives %.3fs", name, got.got, got.want)
		}
	}
}

// Table 3 YOLOv3: half is slower than single (framework conversion
// overhead).
func TestYOLOHalfSlowdown(t *testing.T) {
	k := kernels.NewYOLO(1)
	total := float64(kernels.Profile(k, fp.Double).Total())
	// Scale so compute matches the calibration (3.2e13 cycles-equivalent ops).
	scale := 0.072 * 2688 * clockHz / 8 / total
	d := mapK(t, k, fp.Double, scale).Time.Seconds()
	s := mapK(t, k, fp.Single, scale).Time.Seconds()
	h := mapK(t, k, fp.Half, scale).Time.Seconds()
	if !(h > s) {
		t.Errorf("half %v must be slower than single %v (Table 3)", h, s)
	}
	if math.Abs(d-0.133) > 0.02 || math.Abs(s-0.079) > 0.02 || math.Abs(h-0.283) > 0.04 {
		t.Errorf("YOLO times (%.3f, %.3f, %.3f), Table 3 gives (0.133, 0.079, 0.283)", d, s, h)
	}
}

func TestMapRejectsNilKernel(t *testing.T) {
	if _, err := New().Map(arch.Workload{}, fp.Single); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestUnknownKernelDefaults(t *testing.T) {
	m := mapK(t, kernels.NewLUD(8, 1), fp.Half, 1e6)
	if m.Resources["activeCores"] != fp32Cores {
		t.Errorf("half should use the FP32 core pool, got %v", m.Resources["activeCores"])
	}
}
