// Package report renders experiment results as aligned ASCII tables and
// CSV, the two output formats of the reproduction harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact (a paper table or figure's
// data series).
type Table struct {
	// ID is the experiment identifier ("table1", "fig10a", ...).
	ID string
	// Title describes the artifact, e.g. "Table 1: Zynq execution times".
	Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds the data cells; each row must have len(Columns) cells.
	Rows [][]string
	// Notes are free-form lines printed under the table (paper-expected
	// shape, calibration remarks).
	Notes []string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNotef appends a formatted note line (e.g. a campaign's
// aborted-sample diagnostics).
func (t *Table) AddNotef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s [%s] ==\n", t.Title, t.ID); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
