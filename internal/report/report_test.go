package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "fig1",
		Title:   "Sample",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("beta-long-name", "22")
	return t
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("x")
	if len(tbl.Rows[0]) != 3 || tbl.Rows[0][0] != "x" || tbl.Rows[0][2] != "" {
		t.Errorf("short row not padded: %v", tbl.Rows[0])
	}
	tbl.AddRow("1", "2", "3", "4")
	if len(tbl.Rows[1]) != 3 {
		t.Errorf("long row not truncated: %v", tbl.Rows[1])
	}
}

func TestWriteASCII(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== Sample [fig1] ==", "name", "alpha", "beta-long-name", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "value" column starts at the same offset in the
	// header and in each row.
	lines := strings.Split(out, "\n")
	var headerIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			headerIdx = i
			break
		}
	}
	col := strings.Index(lines[headerIdx], "value")
	if col < 0 {
		t.Fatal("no value column")
	}
	if lines[headerIdx+2][col:col+1] != "1" {
		t.Errorf("row 1 misaligned: %q", lines[headerIdx+2])
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `has "quotes", and comma`)
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has \"\"quotes\"\", and comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteCSVPlain(t *testing.T) {
	var b strings.Builder
	tbl := &Table{Columns: []string{"x"}, Rows: [][]string{{"1"}, {"2"}}}
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x\n1\n2\n" {
		t.Errorf("CSV = %q", b.String())
	}
}

// failingWriter errors after n bytes, exercising the render error paths.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWrite
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWrite
	}
	return n, nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestWriteASCIIErrorPropagation(t *testing.T) {
	tbl := sample()
	for _, budget := range []int{0, 5, 30, 60, 90} {
		if err := tbl.WriteASCII(&failingWriter{left: budget}); err == nil {
			t.Errorf("budget %d: error not propagated", budget)
		}
	}
}

func TestWriteCSVErrorPropagation(t *testing.T) {
	tbl := sample()
	if err := tbl.WriteCSV(&failingWriter{left: 0}); err == nil {
		t.Error("CSV write error not propagated")
	}
	if err := tbl.WriteCSV(&failingWriter{left: 12}); err == nil {
		t.Error("CSV row write error not propagated")
	}
}

func TestFormatCI(t *testing.T) {
	if got := FormatCI(0.42134, 0.40161, 0.44101); got != "0.4213 [0.4016, 0.4410]" {
		t.Errorf("FormatCI = %q", got)
	}
	if got := FormatCI(0.5, 0, 1); got != "n/a [0, 1]" {
		t.Errorf("vacuous FormatCI = %q", got)
	}
	if got := FormatCI(0, 0, 0.003); got != "0.0000 [0.0000, 0.0030]" {
		t.Errorf("edge FormatCI = %q", got)
	}
}
