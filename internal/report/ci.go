package report

import "fmt"

// FormatCI renders an estimate with its confidence interval for table
// cells: "0.4213 [0.4016, 0.4410]". The vacuous interval [0, 1] — an
// estimator not yet defined over its whole space — renders as
// "p n/a [0, 1]" so a campaign that never covered every stratum is
// visibly different from one that converged.
func FormatCI(p, lo, hi float64) string {
	if lo == 0 && hi == 1 {
		return "n/a [0, 1]"
	}
	return fmt.Sprintf("%.4f [%.4f, %.4f]", p, lo, hi)
}
