package stats

import (
	"fmt"
	"math"
)

// This file is the estimator side of the variance-reduction sampling
// engine (DESIGN.md "Sampling engine"). A campaign partitions its fault
// space into strata with known population weights, samples each stratum
// independently, and recombines with the post-stratified estimator
//
//	p̂ = Σ_h W_h · k_h/n_h,   Var(p̂) = Σ_h W_h² · p_h(1-p_h)/n_h.
//
// The whole point is that Var(p̂) drops the between-strata variance a
// uniform sample pays for: strata that are almost always masked (low
// mantissa bits) or almost always corrupting (exponent bits) contribute
// nearly nothing, so the same confidence needs far fewer samples.
//
// Two deterministic allocators drive the sampling loop: proportional
// (n_h ∝ W_h, the design-unbiased default) and Neyman (n_h ∝ W_h·s_h,
// which minimizes Var(p̂) for a fixed total). Allocation scores use an
// Jeffreys-smoothed proportion so an all-masked stratum
// keeps drawing a shrinking-but-nonzero share of the budget instead of
// being written off after its first empty samples. The variance
// estimate itself uses the plain p̂_h(1-p̂_h): summing a smoothing
// floor over hundreds of near-deterministic strata would swamp the
// very between-strata variance the design removes, making the
// stratified CI *wider* than the uniform one it replaces. Honesty at
// the edges comes instead from the unsampled-stratum +Inf guard and
// from the sampling loop's per-stratum floor.

// StratumCount is one stratum's running tally: its population weight
// (the share of the uniform fault space it covers; weights sum to 1
// over a design) and the samples observed so far.
type StratumCount struct {
	Weight float64
	// N is the number of classified samples, K the successes (SDCs or
	// DUEs, depending on which probability is being estimated).
	N, K int64
}

// smoothed returns the Jeffreys-smoothed proportion (K+½)/(N+1) — the
// posterior mean under the Jeffreys Beta(½,½) prior. It keeps p̃(1-p̃)
// strictly positive so empty-looking strata are never written off by
// the allocator, while decaying fast enough (σ̃ ~ sqrt(0.5/N)) that
// near-deterministic strata stop soaking budget the optimum would
// spend on genuinely mixed ones.
func (s StratumCount) smoothed() float64 {
	return (float64(s.K) + 0.5) / (float64(s.N) + 1)
}

// SmoothedSigma returns the smoothed per-sample standard deviation
// sqrt(p̃(1-p̃)) used by Neyman allocation scores.
func (s StratumCount) SmoothedSigma() float64 {
	p := s.smoothed()
	return math.Sqrt(p * (1 - p))
}

// PostStratified returns the stratified estimate Σ W_h·p̂_h. Strata
// with no observations are excluded and the remaining weights
// renormalized (standard collapsed post-stratification); an entirely
// empty design returns 0.
func PostStratified(strata []StratumCount) float64 {
	var wSum, p float64
	for _, s := range strata {
		if s.N > 0 {
			wSum += s.Weight
			p += s.Weight * float64(s.K) / float64(s.N)
		}
	}
	if wSum == 0 {
		return 0
	}
	return p / wSum
}

// StratifiedVariance returns the estimated variance of the
// post-stratified estimator, Σ W_h²·p̂_h(1-p̂_h)/n_h. Any
// positive-weight stratum that has not been sampled yet makes the
// variance +Inf: the estimator is not yet defined over the whole
// space, so early stopping must not trigger.
func StratifiedVariance(strata []StratumCount) float64 {
	var v float64
	for _, s := range strata {
		if s.Weight == 0 {
			continue
		}
		if s.N == 0 {
			return math.Inf(1)
		}
		p := float64(s.K) / float64(s.N)
		v += s.Weight * s.Weight * p * (1 - p) / float64(s.N)
	}
	return v
}

// StratifiedCI returns the normal-approximation confidence interval
// p̂ ± z·sqrt(Var(p̂)) on the post-stratified estimate, clamped to
// [0, 1]. An unsampled stratum yields the vacuous interval [0, 1].
func StratifiedCI(strata []StratumCount, confidence float64) (lower, upper float64) {
	p := PostStratified(strata)
	v := StratifiedVariance(strata)
	if math.IsInf(v, 1) {
		return 0, 1
	}
	half := zFor(confidence) * math.Sqrt(v)
	lower = p - half
	upper = p + half
	if lower < 0 {
		lower = 0
	}
	if upper > 1 {
		upper = 1
	}
	return lower, upper
}

// StratifiedHalfWidth returns half the width of StratifiedCI — the
// stopping criterion of adaptive campaigns.
func StratifiedHalfWidth(strata []StratumCount, confidence float64) float64 {
	lo, hi := StratifiedCI(strata, confidence)
	return (hi - lo) / 2
}

// Alloc apportions budget samples across strata with target shares
// proportional to weights[h]·scores[h], by largest-remainder rounding
// (deterministic: ties break on the lower index). Every stratum with a
// positive weight first receives floor samples (so no stratum is
// starved before it has been observed at all); the remainder follows
// the scores. When every score is zero the allocation falls back to
// weights alone. If the budget cannot cover the floors, the whole
// budget is distributed by weight with no floor.
//
// The returned slice always sums to exactly budget (0 for a
// non-positive budget).
func Alloc(weights, scores []float64, budget, floor int) []int {
	if len(weights) != len(scores) {
		panic(fmt.Sprintf("stats: %d weights vs %d scores", len(weights), len(scores)))
	}
	n := len(weights)
	out := make([]int, n)
	if budget <= 0 || n == 0 {
		return out
	}
	eligible := 0
	for _, w := range weights {
		if w > 0 {
			eligible++
		}
	}
	if eligible == 0 {
		return out
	}
	if floor < 0 {
		floor = 0
	}
	if floor*eligible > budget {
		floor = 0
	}
	remaining := budget
	for h, w := range weights {
		if w > 0 {
			out[h] = floor
			remaining -= floor
		}
	}
	shares := make([]float64, n)
	var total float64
	for h, w := range weights {
		if w > 0 {
			shares[h] = w * scores[h]
			total += shares[h]
		}
	}
	if total == 0 {
		for h, w := range weights {
			if w > 0 {
				shares[h] = w
				total += w
			}
		}
	}
	// Largest-remainder apportionment of the post-floor remainder.
	base := 0
	fracs := make([]float64, n)
	for h := range shares {
		if shares[h] <= 0 {
			continue
		}
		q := shares[h] / total * float64(remaining)
		whole := math.Floor(q)
		out[h] += int(whole)
		base += int(whole)
		fracs[h] = q - whole
	}
	for left := remaining - base; left > 0; left-- {
		best := -1
		for h := range fracs {
			if shares[h] <= 0 {
				continue
			}
			if best < 0 || fracs[h] > fracs[best] {
				best = h
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		fracs[best] = -1
	}
	return out
}

// DeficitAlloc apportions a round's budget toward the cumulative
// Neyman target: with counts[h] samples already taken, the target
// allocation over (Σcounts + budget) total samples has shares
// proportional to weights[h]·scores[h], and the round's budget is
// distributed over each stratum's shortfall against that target
// (largest-remainder, deterministic ties). Strata already at or past
// their target receive nothing, so early over-allocation — e.g. the
// covering first round — self-corrects instead of compounding. When no
// stratum is short (or every score is zero), the budget falls back to
// Alloc on the same scores.
//
// The returned slice sums to exactly budget (0 for a non-positive
// budget).
func DeficitAlloc(weights, scores []float64, counts []int64, budget int) []int {
	if len(weights) != len(scores) || len(weights) != len(counts) {
		panic(fmt.Sprintf("stats: %d weights vs %d scores vs %d counts",
			len(weights), len(scores), len(counts)))
	}
	n := len(weights)
	out := make([]int, n)
	if budget <= 0 || n == 0 {
		return out
	}
	var spent int64
	var total float64
	for h, w := range weights {
		spent += counts[h]
		if w > 0 {
			total += w * scores[h]
		}
	}
	if total == 0 {
		return Alloc(weights, scores, budget, 0)
	}
	grand := float64(spent) + float64(budget)
	deficits := make([]float64, n)
	var defTotal float64
	for h, w := range weights {
		if w <= 0 {
			continue
		}
		if d := w * scores[h] / total * grand - float64(counts[h]); d > 0 {
			deficits[h] = d
			defTotal += d
		}
	}
	if defTotal == 0 {
		return Alloc(weights, scores, budget, 0)
	}
	// Largest-remainder apportionment of the budget over the deficits.
	base := 0
	fracs := make([]float64, n)
	for h, d := range deficits {
		if d <= 0 {
			fracs[h] = -1
			continue
		}
		q := d / defTotal * float64(budget)
		whole := math.Floor(q)
		out[h] += int(whole)
		base += int(whole)
		fracs[h] = q - whole
	}
	for left := budget - base; left > 0; left-- {
		best := -1
		for h, f := range fracs {
			if f < 0 {
				continue
			}
			if best < 0 || f > fracs[best] {
				best = h
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		fracs[best] = -1
	}
	return out
}

// ProportionalAlloc is Alloc with unit scores: n_h ∝ W_h.
func ProportionalAlloc(weights []float64, budget, floor int) []int {
	scores := make([]float64, len(weights))
	for i := range scores {
		scores[i] = 1
	}
	return Alloc(weights, scores, budget, floor)
}
