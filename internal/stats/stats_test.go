package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mixedrel/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = (%v, %v)", s.Min(), s.Max())
	}
	if s.StdErr() <= 0 {
		t.Error("StdErr should be positive")
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should be all zero")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Observe(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Error("single-element summary wrong")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint64) bool {
		rr := rng.New(seed ^ r.Uint64())
		n := 3 + rr.Intn(50)
		var s Summary
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = rr.NormFloat64() * 10
			s.Observe(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-wantVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoissonCIZeroEvents(t *testing.T) {
	lo, hi := PoissonCI(0, 0.95)
	if lo != 0 {
		t.Errorf("lower bound for 0 events = %v, want 0", lo)
	}
	// The exact 97.5% upper bound for 0 events is -ln(0.025) ~= 3.69.
	if hi < 2.5 || hi > 4.5 {
		t.Errorf("upper bound for 0 events = %v, want ~3.7", hi)
	}
}

func TestPoissonCIContainsCount(t *testing.T) {
	for _, k := range []int64{1, 5, 20, 100, 1000} {
		lo, hi := PoissonCI(k, 0.95)
		if !(lo < float64(k) && float64(k) < hi) {
			t.Errorf("k=%d: CI [%v, %v] does not contain k", k, lo, hi)
		}
		if lo < 0 {
			t.Errorf("k=%d: negative lower bound %v", k, lo)
		}
	}
}

func TestPoissonCINarrowsWithK(t *testing.T) {
	relWidth := func(k int64) float64 {
		lo, hi := PoissonCI(k, 0.95)
		return (hi - lo) / float64(k)
	}
	if !(relWidth(10) > relWidth(100) && relWidth(100) > relWidth(1000)) {
		t.Error("relative CI width should shrink with the count")
	}
}

func TestPoissonCILargeKMatchesNormal(t *testing.T) {
	// For large k the CI approaches k +- 1.96*sqrt(k).
	const k = 10000
	lo, hi := PoissonCI(k, 0.95)
	sd := math.Sqrt(k)
	if math.Abs(lo-(k-1.96*sd)) > 0.05*sd || math.Abs(hi-(k+1.96*sd)) > 0.05*sd {
		t.Errorf("CI [%v, %v] far from normal approximation [%v, %v]",
			lo, hi, k-1.96*sd, k+1.96*sd)
	}
}

func TestPoissonCIPanics(t *testing.T) {
	for _, c := range []struct {
		k    int64
		conf float64
	}{{-1, 0.95}, {1, 0}, {1, 1}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PoissonCI(%d, %v) did not panic", c.k, c.conf)
				}
			}()
			PoissonCI(c.k, c.conf)
		}()
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964},
		{0.84134, 1.0}, {0.999, 3.0902},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); math.Abs(got-c.z) > 5e-3 {
			t.Errorf("normQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestRateRatio(t *testing.T) {
	ratio, sigma := RateRatio(100, 50, 10, 10)
	if math.Abs(ratio-2) > 1e-12 {
		t.Errorf("ratio = %v, want 2", ratio)
	}
	want := math.Sqrt(1.0/100 + 1.0/50)
	if math.Abs(sigma-want) > 1e-12 {
		t.Errorf("relSigma = %v, want %v", sigma, want)
	}
	if r, _ := RateRatio(10, 0, 1, 1); !math.IsInf(r, 1) {
		t.Error("division by zero rate should be +Inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1)
	h.Observe(10)  // at the top edge -> overflow
	h.Observe(1e9) // far overflow
	h.Observe(math.NaN())
	for i, b := range h.Buckets {
		if b != 1 {
			t.Errorf("bucket %d = %d, want 1", i, b)
		}
	}
	if h.Underflow != 1 || h.Overflow != 3 {
		t.Errorf("under/over = %d/%d, want 1/3", h.Underflow, h.Overflow)
	}
	if h.Total() != 14 {
		t.Errorf("Total = %d, want 14", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 10) },
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("degenerate histogram did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if q := Quantile(s, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(s, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(s, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(s, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty sample should be NaN")
	}
	// Input must not be mutated.
	s2 := []float64{3, 1, 2}
	Quantile(s2, 0.5)
	if s2[0] != 3 || s2[1] != 1 || s2[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestClampNonFinite(t *testing.T) {
	in := []float64{1, math.Inf(1), math.Inf(-1), math.NaN(), -2}
	out := ClampNonFinite(in)
	if out[0] != 1 || out[4] != -2 {
		t.Error("finite values changed")
	}
	if out[1] != math.MaxFloat64 || out[3] != math.MaxFloat64 {
		t.Error("+Inf/NaN not clamped to +MaxFloat64")
	}
	if out[2] != -math.MaxFloat64 {
		t.Error("-Inf not clamped")
	}
	if math.IsInf(in[1], 0) != true {
		t.Error("input mutated")
	}
}
