package stats

import (
	"math"
	"testing"
)

func TestWilsonCIEdges(t *testing.T) {
	// n == 0: no data, vacuous interval.
	if lo, hi := WilsonCI(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("WilsonCI(0,0) = [%v,%v], want [0,1]", lo, hi)
	}
	// k == 0: exact zero lower bound, but a POSITIVE upper bound even
	// for tiny n — the interval must not collapse like Wald's does.
	for _, n := range []int64{1, 2, 3, 5, 10, 100} {
		lo, hi := WilsonCI(0, n, 0.95)
		if lo != 0 {
			t.Errorf("WilsonCI(0,%d) lower = %v, want 0", n, lo)
		}
		if hi <= 0 || hi > 1 {
			t.Errorf("WilsonCI(0,%d) upper = %v, want (0,1]", n, hi)
		}
		// k == n mirrors k == 0.
		lo2, hi2 := WilsonCI(n, n, 0.95)
		if hi2 != 1 {
			t.Errorf("WilsonCI(%d,%d) upper = %v, want 1", n, n, hi2)
		}
		if math.Abs(lo2-(1-hi)) > 1e-12 {
			t.Errorf("WilsonCI(%d,%d) lower = %v, want mirror of %v", n, n, lo2, 1-hi)
		}
	}
	// The k == 0 upper bound shrinks as n grows.
	_, prev := WilsonCI(0, 1, 0.95)
	for _, n := range []int64{2, 5, 20, 100, 1000} {
		_, hi := WilsonCI(0, n, 0.95)
		if hi >= prev {
			t.Errorf("WilsonCI(0,%d) upper %v did not shrink below %v", n, hi, prev)
		}
		prev = hi
	}
	// Wald at the same edges is degenerate — this asymmetry is the
	// whole reason stopping rules use Wilson.
	if lo, hi := WaldCI(0, 10, 0.95); lo != 0 || hi != 0 {
		t.Errorf("WaldCI(0,10) = [%v,%v], want the degenerate [0,0]", lo, hi)
	}
	if lo, hi := WaldCI(10, 10, 0.95); lo != 1 || hi != 1 {
		t.Errorf("WaldCI(10,10) = [%v,%v], want the degenerate [1,1]", lo, hi)
	}
}

func TestWilsonCIInterior(t *testing.T) {
	// Contains the point estimate and is inside [0,1].
	for _, tc := range [][2]int64{{1, 2}, {3, 7}, {50, 100}, {1, 1000}, {999, 1000}} {
		k, n := tc[0], tc[1]
		lo, hi := WilsonCI(k, n, 0.95)
		p := float64(k) / float64(n)
		if !(lo < p && p < hi) {
			t.Errorf("WilsonCI(%d,%d) = [%v,%v] does not contain %v", k, n, lo, hi, p)
		}
		if lo < 0 || hi > 1 {
			t.Errorf("WilsonCI(%d,%d) = [%v,%v] leaves [0,1]", k, n, lo, hi)
		}
		// Higher confidence widens the interval.
		lo99, hi99 := WilsonCI(k, n, 0.99)
		if hi99-lo99 <= hi-lo {
			t.Errorf("WilsonCI(%d,%d) 99%% interval not wider than 95%%", k, n)
		}
	}
}

func TestWilsonCIPanics(t *testing.T) {
	for _, tc := range [][2]int64{{-1, 5}, {6, 5}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WilsonCI(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			WilsonCI(tc[0], tc[1], 0.95)
		}()
	}
}

func TestPoissonCIEdges(t *testing.T) {
	// k == 0: an empty observation still excludes large rates.
	lo, hi := PoissonCI(0, 0.95)
	if lo != 0 {
		t.Errorf("PoissonCI(0) lower = %v, want 0", lo)
	}
	if hi <= 0 || hi > 10 {
		t.Errorf("PoissonCI(0) upper = %v, want a small positive bound", hi)
	}
	// Tiny counts: interval brackets k and is monotone in k.
	prevHi := hi
	for _, k := range []int64{1, 2, 3, 10} {
		lo, hi := PoissonCI(k, 0.95)
		if !(lo < float64(k) && float64(k) < hi) {
			t.Errorf("PoissonCI(%d) = [%v,%v] does not bracket %d", k, lo, hi, k)
		}
		if hi <= prevHi {
			t.Errorf("PoissonCI(%d) upper %v not above PoissonCI(%d)'s %v", k, hi, k-1, prevHi)
		}
		prevHi = hi
	}
}

func TestWilsonSamplesFor(t *testing.T) {
	for _, tc := range []struct {
		p, hw float64
	}{{0.5, 0.05}, {0.5, 0.01}, {0.1, 0.02}, {0.0, 0.01}, {1.0, 0.01}, {0.7, 0.005}} {
		n := WilsonSamplesFor(tc.p, tc.hw, 0.95)
		if n < 1 {
			t.Fatalf("WilsonSamplesFor(%v,%v) = %d", tc.p, tc.hw, n)
		}
		// n achieves the half-width, n-1 does not (when n > 1).
		z := zFor(0.95)
		width := func(m int64) float64 {
			lo, hi := wilsonBounds(tc.p, float64(m), z)
			return (hi - lo) / 2
		}
		if got := width(n); got > tc.hw {
			t.Errorf("WilsonSamplesFor(%v,%v) = %d but half-width %v > target", tc.p, tc.hw, n, got)
		}
		if n > 1 {
			if got := width(n - 1); got <= tc.hw {
				t.Errorf("WilsonSamplesFor(%v,%v) = %d but %d already suffices (%v)", tc.p, tc.hw, n, n-1, got)
			}
		}
	}
	// Worst case p = 0.5 needs roughly (z/hw)^2/4 samples.
	n := WilsonSamplesFor(0.5, 0.01, 0.95)
	if n < 9000 || n > 11000 {
		t.Errorf("WilsonSamplesFor(0.5, 0.01) = %d, want ~9600", n)
	}
}

func TestNormalQuantile(t *testing.T) {
	if z := NormalQuantile(0.975); math.Abs(z-1.959964) > 1e-3 {
		t.Errorf("NormalQuantile(0.975) = %v, want ~1.96", z)
	}
	if z := NormalQuantile(0.5); math.Abs(z) > 1e-9 {
		t.Errorf("NormalQuantile(0.5) = %v, want 0", z)
	}
}
