// Package stats provides the small statistical toolbox the reliability
// analyses need: summary statistics, Poisson confidence intervals for
// observed error counts (the standard treatment for beam-test data, cf.
// JEDEC JESD89A), and simple fixed-width histograms for error-magnitude
// distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds running moments of a sample.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Observe adds one observation (Welford's online algorithm).
func (s *Summary) Observe(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// PoissonCI returns an approximate central confidence interval for the
// rate parameter of a Poisson process from which k events were observed,
// at the given confidence level (e.g. 0.95). It uses the chi-square /
// Wilson–Hilferty relationship:
//
//	lower = (z-sqrt approximation of) chi2(alpha/2, 2k)/2
//	upper = chi2(1-alpha/2, 2k+2)/2
//
// with the exact special case lower = 0 when k == 0.
func PoissonCI(k int64, confidence float64) (lower, upper float64) {
	if k < 0 {
		panic("stats: negative event count")
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v out of (0,1)", confidence))
	}
	alpha := 1 - confidence
	if k == 0 {
		return 0, chi2Quantile(1-alpha/2, 2) / 2
	}
	return chi2Quantile(alpha/2, 2*float64(k)) / 2,
		chi2Quantile(1-alpha/2, 2*float64(k)+2) / 2
}

// chi2Quantile returns the p-quantile of a chi-square distribution with
// df degrees of freedom, via the Wilson–Hilferty normal approximation,
// which is accurate to a few percent for df >= 2 — ample for error bars.
func chi2Quantile(p, df float64) float64 {
	z := normQuantile(p)
	a := 2.0 / (9 * df)
	v := 1 - a + z*math.Sqrt(a)
	return df * v * v * v
}

// normQuantile returns the p-quantile of the standard normal
// distribution using the Beasley–Springer–Moro rational approximation.
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: normal quantile of %v", p))
	}
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pw := 1.0
	for i := 1; i < 9; i++ {
		pw *= r
		x += c[i] * pw
	}
	if y < 0 {
		return -x
	}
	return x
}

// RateRatio returns the ratio a/b of two event rates together with an
// approximate relative 1-sigma uncertainty assuming Poisson counting
// statistics for both numerators.
func RateRatio(eventsA, eventsB int64, exposureA, exposureB float64) (ratio, relSigma float64) {
	if eventsB == 0 || exposureA == 0 || exposureB == 0 {
		return math.Inf(1), math.Inf(1)
	}
	ra := float64(eventsA) / exposureA
	rb := float64(eventsB) / exposureB
	ratio = ra / rb
	var va, vb float64
	if eventsA > 0 {
		va = 1 / float64(eventsA)
	}
	vb = 1 / float64(eventsB)
	relSigma = math.Sqrt(va + vb)
	return ratio, relSigma
}

// Histogram is a fixed-width histogram over [Lo, Hi) with overflow and
// underflow buckets.
type Histogram struct {
	Lo, Hi              float64
	Buckets             []int64
	Underflow, Overflow int64
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics for a degenerate range or n <= 0.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	switch {
	case math.IsNaN(x) || x >= h.Hi:
		h.Overflow++
	case x < h.Lo:
		h.Underflow++
	default:
		i := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Buckets) { // guard float rounding at the top edge
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the count of all observations including over/underflow.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sample, using
// linear interpolation between order statistics. It sorts a copy.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i == len(s)-1 {
		return s[i]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// ClampNonFinite returns a copy of xs with NaN and infinities replaced
// by +-math.MaxFloat64, so the slice can be encoded as JSON (which has
// no non-finite numbers). NaN maps to +MaxFloat64, matching its
// treatment as an unbounded relative error.
func ClampNonFinite(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 1):
			out[i] = math.MaxFloat64
		case math.IsInf(x, -1):
			out[i] = -math.MaxFloat64
		default:
			out[i] = x
		}
	}
	return out
}
